package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"E1", "E12", "E13", "Fig.3a"} {
		if !strings.Contains(s, want) {
			t.Errorf("list output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSelected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E9,E10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E9:") || !strings.Contains(s, "== E10:") {
		t.Errorf("output:\n%s", s)
	}
}

func TestRunUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Error("unknown experiment not rejected")
	}
}
