// Command experiments regenerates the paper's tables and figures
// (experiments E1–E13 of DESIGN.md), printing one table per experiment.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -run E3,E7      # selected experiments
//	experiments -quick          # reduced dataset sizes
//	experiments -seed 42        # different generator seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"agenp/internal/experiments"
	"agenp/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runArg := fs.String("run", "", "comma-separated experiment ids (default: all)")
	quick := fs.Bool("quick", false, "reduced dataset sizes")
	seed := fs.Uint64("seed", 0, "generator seed (0 = default)")
	parallel := fs.Int("parallel", 0, "learner coverage-check workers (0 = GOMAXPROCS, 1 = serial)")
	list := fs.Bool("list", false, "list experiments and exit")
	stats := fs.Bool("stats", false, "dump the telemetry registry to stderr on exit")
	trace := fs.String("trace", "", "write span trace as JSON lines to this file (see agenptrace)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()
	if *trace != "" {
		stop, err := obs.StartTrace(*trace)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}
	if *stats {
		defer func() { _ = obs.Default.Snapshot().WriteText(os.Stderr) }()
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-4s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Parallelism: *parallel}

	ids := experiments.IDs()
	if *runArg != "" {
		ids = nil
		for _, id := range strings.Split(*runArg, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprint(stdout, table.String())
		fmt.Fprintf(stdout, "(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// startProfiles turns on the requested pprof outputs; the returned stop
// function finishes the CPU profile and snapshots the heap (after a GC,
// so the profile shows live objects rather than garbage).
func startProfiles(cpuFile, memFile string) (func(), error) {
	stop := func() {}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memFile != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}
