// Command golint-agenp runs the module's project-specific vet passes
// (internal/lintcheck) over a directory tree: lockcopy flags by-value
// copies of lock- or atomic-bearing struct types (an Engine or
// telemetry Histogram copied by value forks its lock), and atomicaccess
// flags plain reads/writes of fields documented as atomically accessed.
//
// Usage:
//
//	golint-agenp ./internal/... is not understood; pass directories:
//	golint-agenp internal cmd          # walk both trees
//	golint-agenp -json internal        # machine-readable output
//
// The exit status is nonzero when any diagnostic is reported. CI runs
// it next to go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"agenp/internal/lintcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != errFindings {
			fmt.Fprintln(os.Stderr, "golint-agenp:", err)
		}
		os.Exit(1)
	}
}

// errFindings signals diagnostics that were already printed.
var errFindings = fmt.Errorf("lint findings")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("golint-agenp", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	ds, err := lintcheck.RunDirs(roots, lintcheck.Analyzers())
	if err != nil {
		return err
	}
	if *jsonOut {
		if ds == nil {
			ds = []lintcheck.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ds); err != nil {
			return err
		}
	} else {
		for _, d := range ds {
			fmt.Fprintln(stdout, d)
		}
		if len(ds) == 0 {
			fmt.Fprintln(stdout, "ok: no findings")
		}
	}
	if len(ds) > 0 {
		return errFindings
	}
	return nil
}
