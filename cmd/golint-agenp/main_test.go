package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agenp/internal/lintcheck"
)

const badSource = `package bad

import "sync"

type Engine struct {
	mu sync.Mutex
}

func use(e Engine) {} // by-value copy
`

func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFindingsFailTheRun(t *testing.T) {
	dir := writeFixture(t, badSource)
	var out strings.Builder
	err := run([]string{dir}, &out)
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "[lockcopy]") || !strings.Contains(out.String(), "copies Engine") {
		t.Errorf("output = %q", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeFixture(t, badSource)
	var out strings.Builder
	if err := run([]string{"-json", dir}, &out); err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	var ds []lintcheck.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &ds); err != nil {
		t.Fatalf("decoding output: %v\n%s", err, out.String())
	}
	if len(ds) != 1 || ds[0].Analyzer != "lockcopy" {
		t.Errorf("diagnostics = %+v", ds)
	}
}

// TestModuleIsClean is the CI gate: the real source tree has no
// findings.
func TestModuleIsClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"../../internal", "../../cmd", "../.."}, &out); err != nil {
		t.Fatalf("module has findings: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: no findings") {
		t.Errorf("output = %q", out.String())
	}
}

func TestMissingDirectory(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"no-such-dir"}, &out); err == nil || err == errFindings {
		t.Errorf("missing directory err = %v", err)
	}
}
