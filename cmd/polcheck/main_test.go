package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agenp/internal/polcheck"
)

const corpus = "../../examples/verify"

func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestCleanCorpusPasses(t *testing.T) {
	out, err := runCLI(t, "", filepath.Join(corpus, "clean.xpol"))
	if err != nil {
		t.Fatalf("clean corpus failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok: no findings") {
		t.Errorf("output = %q, want ok line", out)
	}
}

func TestConflictCorpusFails(t *testing.T) {
	out, err := runCLI(t, "", filepath.Join(corpus, "conflict.xpol"))
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings\n%s", err, out)
	}
	for _, want := range []string{
		"error: conflict: export/allow_cleared",
		"witness:",
		"warning: shadowed: records/senior_doctor_read",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMinSeverityFilters(t *testing.T) {
	out, err := runCLI(t, "", "-min", "error", filepath.Join(corpus, "conflict.xpol"))
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	if strings.Contains(out, "shadowed") || strings.Contains(out, "redundant") {
		t.Errorf("-min error leaked lower-severity findings:\n%s", out)
	}
	if !strings.Contains(out, "conflict") {
		t.Errorf("-min error dropped the conflict:\n%s", out)
	}
}

// warningOnly has a shadowed rule but no conflict: findings top out at
// warning severity, so only -strict fails on it.
const warningOnly = `
policy "p" first-applicable {
  rule "wide" permit { target subject.role = doctor }
  rule "narrow" permit { target subject.role = doctor, subject.level >= 7 }
}
`

func TestStrictPromotesWarnings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warn.xpol")
	if err := os.WriteFile(path, []byte(warningOnly), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := runCLI(t, "", path); err != nil {
		t.Errorf("warnings failed without -strict: %v\n%s", err, out)
	}
	if _, err := runCLI(t, "", "-strict", path); err != errFindings {
		t.Errorf("-strict err = %v, want errFindings", err)
	}
}

func TestStdin(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(corpus, "clean.xpol"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, string(src))
	if err != nil {
		t.Fatalf("stdin run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok: no findings") {
		t.Errorf("output = %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, "", "-json", filepath.Join(corpus, "conflict.xpol"))
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	var reports []fileReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("decoding output: %v\n%s", err, out)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	rep := reports[0].Report
	var conflict *polcheck.Finding
	for i, f := range rep.Findings {
		if f.Kind == polcheck.KindConflict {
			conflict = &rep.Findings[i]
		}
	}
	if conflict == nil {
		t.Fatalf("no conflict finding in JSON: %+v", rep.Findings)
	}
	if conflict.Witness == "" || !conflict.Verified || conflict.Resolved != "Deny" {
		t.Errorf("conflict = %+v, want verified witness resolved to Deny", conflict)
	}
}

func TestDiffMode(t *testing.T) {
	genA := filepath.Join(corpus, "gen-a.xpol")
	genB := filepath.Join(corpus, "gen-b.xpol")

	out, err := runCLI(t, "", "-diff", genA, genB)
	if err != errFindings {
		t.Fatalf("diff err = %v, want errFindings\n%s", err, out)
	}
	for _, want := range []string{"1 decision flip", "Permit->Deny", "logistics"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	out, err = runCLI(t, "", "-diff", genA, genA)
	if err != nil {
		t.Fatalf("self-diff err = %v\n%s", err, out)
	}
	if !strings.Contains(out, "no decision changes") {
		t.Errorf("self-diff output = %q", out)
	}

	var d diffOutput
	jout, err := runCLI(t, "", "-diff", "-json", genA, genB)
	if err != errFindings {
		t.Fatalf("json diff err = %v", err)
	}
	if err := json.Unmarshal([]byte(jout), &d); err != nil {
		t.Fatalf("decoding diff JSON: %v\n%s", err, jout)
	}
	if !d.Changed || len(d.Diff.Flips) != 1 || !d.Diff.Flips[0].Verified {
		t.Errorf("diff JSON = %+v, want one verified flip", d)
	}

	if _, err := runCLI(t, "", "-diff", genA); err == nil {
		t.Error("-diff with one file not rejected")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := runCLI(t, "not a policy"); err == nil {
		t.Error("garbage stdin not rejected")
	}
	if _, err := runCLI(t, "", "-min", "chartreuse"); err == nil {
		t.Error("unknown severity not rejected")
	}
	if _, err := runCLI(t, "", "-combining", "coin-flip"); err == nil {
		t.Error("unknown combining algorithm not rejected")
	}
	if _, err := runCLI(t, "", filepath.Join(corpus, "no-such-file.xpol")); err == nil {
		t.Error("missing file not rejected")
	}
}
