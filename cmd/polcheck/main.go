// Command polcheck statically verifies XACML policy sets without
// enumerating the attribute domain: shadowed and unreachable rules,
// permit/deny conflict pairs with concrete witness requests (validated
// by replaying them through the compiled engine and the tree-walk
// oracle), redundant rules, cross-policy subsumption, and the symbolic
// change-impact between two policy-set generations.
//
// Inputs are corpus files in the compact textual policy form of
// internal/xacml (one or more policy blocks per file); the policies of
// each file form one policy set under -combining.
//
// Usage:
//
//	polcheck policies.xpol               # verify a policy set
//	polcheck -json policies.xpol         # machine-readable output
//	polcheck -strict policies.xpol       # warnings also fail the run
//	polcheck -min warning policies.xpol  # hide info findings
//	polcheck -combining first-applicable policies.xpol
//	polcheck -diff gen-a.xpol gen-b.xpol # generation change-impact
//	cat policies.xpol | polcheck         # read from stdin
//
// The exit status is nonzero when any error-severity finding is
// reported (with -strict, any warning), or when -diff detects decision
// flips.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"agenp/internal/polcheck"
	"agenp/internal/xacml"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if err != errFindings {
			fmt.Fprintln(os.Stderr, "polcheck:", err)
		}
		os.Exit(1)
	}
}

// errFindings signals a failing verification whose findings were
// already printed; main must not repeat it on stderr.
var errFindings = fmt.Errorf("findings at failing severity")

// fileReport pairs an input name with its report for -json output.
type fileReport struct {
	File   string           `json:"file"`
	Report *polcheck.Report `json:"report"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("polcheck", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	minName := fs.String("min", "info", "minimum severity to report: info, warning or error")
	strict := fs.Bool("strict", false, "exit nonzero on warnings, not just errors")
	combining := fs.String("combining", "deny-overrides", "policy-combining algorithm for each file's policy set")
	maxVectors := fs.Int("max-vectors", 0, "cap on symbolic region size (0: default 256)")
	noValidate := fs.Bool("no-validate", false, "skip replaying witnesses through the engine")
	diff := fs.Bool("diff", false, "change-impact mode: diff exactly two generation files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	min, err := polcheck.ParseSeverity(*minName)
	if err != nil {
		return err
	}
	alg, err := xacml.CombiningAlgFromString(*combining)
	if err != nil {
		return err
	}
	opts := polcheck.Options{MaxVectors: *maxVectors, SkipValidation: *noValidate}

	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two generation files")
		}
		return runDiff(fs.Arg(0), fs.Arg(1), alg, opts, *jsonOut, stdout)
	}

	var reports []fileReport
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		rep, err := analyzeSource("<stdin>", string(src), alg, opts)
		if err != nil {
			return err
		}
		reports = append(reports, fileReport{File: "<stdin>", Report: rep})
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rep, err := analyzeSource(path, string(src), alg, opts)
		if err != nil {
			return err
		}
		reports = append(reports, fileReport{File: path, Report: rep})
	}

	failed := false
	for i := range reports {
		rep := reports[i].Report
		rep.Findings = rep.Filter(min)
		if rep.Findings == nil {
			rep.Findings = []polcheck.Finding{}
		}
		threshold := polcheck.Error
		if *strict {
			threshold = polcheck.Warning
		}
		if len(rep.Filter(threshold)) > 0 {
			failed = true
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		total := 0
		for _, rep := range reports {
			for _, f := range rep.Report.Findings {
				fmt.Fprintf(stdout, "%s: %s\n", rep.File, f)
				total++
			}
		}
		if total == 0 {
			fmt.Fprintln(stdout, "ok: no findings")
		}
	}
	if failed {
		return errFindings
	}
	return nil
}

// analyzeSource parses one corpus file into a policy set and verifies
// it.
func analyzeSource(name, src string, alg xacml.CombiningAlg, opts polcheck.Options) (*polcheck.Report, error) {
	ps, err := parseSet(name, src, alg)
	if err != nil {
		return nil, err
	}
	return polcheck.AnalyzeSet(ps, opts), nil
}

func parseSet(name, src string, alg xacml.CombiningAlg) (*xacml.PolicySet, error) {
	pols, err := xacml.ParsePolicies(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &xacml.PolicySet{ID: name, Policies: pols, Combining: alg}, nil
}

// diffOutput is the -diff -json output shape.
type diffOutput struct {
	Old     string         `json:"old"`
	New     string         `json:"new"`
	Changed bool           `json:"changed"`
	Diff    *polcheck.Diff `json:"diff"`
}

// runDiff computes the symbolic change-impact between two generation
// files; any decision flip fails the run.
func runDiff(oldPath, newPath string, alg xacml.CombiningAlg, opts polcheck.Options, jsonOut bool, stdout io.Writer) error {
	oldSrc, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newSrc, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	oldSet, err := parseSet(oldPath, string(oldSrc), alg)
	if err != nil {
		return err
	}
	newSet, err := parseSet(newPath, string(newSrc), alg)
	if err != nil {
		return err
	}
	d, err := polcheck.DiffSets(oldSet, newSet, opts)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diffOutput{Old: oldPath, New: newPath, Changed: d.Changed(), Diff: d}); err != nil {
			return err
		}
	} else if d.Changed() {
		fmt.Fprintf(stdout, "%s -> %s: %d decision flip(s)\n%s\n", oldPath, newPath, len(d.Flips), d)
	} else {
		fmt.Fprintf(stdout, "%s -> %s: no decision changes\n", oldPath, newPath)
	}
	if d.Changed() {
		return errFindings
	}
	return nil
}
