// Command asplint statically checks ASP programs and answer set
// grammars before they reach the grounder: unsafe variables, undefined
// or misused predicates, non-stratified negation, dead comparisons,
// duplicate rules, and for grammars the CFG skeleton and annotation
// derivability. Findings carry exact line:column positions.
//
// Usage:
//
//	asplint policy.lp grammar.asg          # lint files (.asg -> grammar)
//	asplint -json policy.lp                # machine-readable output
//	asplint -context ctx.lp grammar.asg    # lint a grammar under a context
//	asplint -min warning policy.lp         # hide info findings
//	asplint -strict policy.lp              # warnings also fail the run
//	cat policy.lp | asplint                # read a program from stdin
//	cat g.asg | asplint -asg               # read a grammar from stdin
//
// The exit status is nonzero when any error-severity finding (including
// parse errors) is reported, or, with -strict, any warning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/aspcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if err != errFindings {
			fmt.Fprintln(os.Stderr, "asplint:", err)
		}
		os.Exit(1)
	}
}

// errFindings signals a failing lint whose findings were already
// printed; main must not repeat it on stderr.
var errFindings = fmt.Errorf("findings at failing severity")

// fileReport pairs an input name with its findings for -json output.
type fileReport struct {
	File     string            `json:"file"`
	Findings aspcheck.Findings `json:"findings"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("asplint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	asGrammar := fs.Bool("asg", false, "treat stdin as an answer set grammar instead of an ASP program")
	contextArg := fs.String("context", "", "ASP context for grammar inputs: inline program or path to a file")
	minName := fs.String("min", "info", "minimum severity to report: info, warning or error")
	strict := fs.Bool("strict", false, "exit nonzero on warnings, not just errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	min, err := aspcheck.ParseSeverity(*minName)
	if err != nil {
		return err
	}
	var ctx *asp.Program
	if *contextArg != "" {
		if ctx, err = loadContext(*contextArg); err != nil {
			return fmt.Errorf("loading context: %w", err)
		}
	}

	var reports []fileReport
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		reports = append(reports, fileReport{
			File:     "<stdin>",
			Findings: analyzeSource(string(src), *asGrammar, ctx),
		})
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		isGrammar := *asGrammar || filepath.Ext(path) == ".asg"
		reports = append(reports, fileReport{
			File:     path,
			Findings: analyzeSource(string(src), isGrammar, ctx),
		})
	}

	failed := false
	for i := range reports {
		reports[i].Findings = reports[i].Findings.Filter(min)
		if reports[i].Findings == nil {
			reports[i].Findings = aspcheck.Findings{}
		}
		threshold := aspcheck.Error
		if *strict {
			threshold = aspcheck.Warning
		}
		if len(reports[i].Findings.Filter(threshold)) > 0 {
			failed = true
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		total := 0
		for _, rep := range reports {
			for _, f := range rep.Findings {
				fmt.Fprintf(stdout, "%s\n", renderFinding(rep.File, f))
				total++
			}
		}
		if total == 0 {
			fmt.Fprintln(stdout, "ok: no findings")
		}
	}
	if failed {
		return errFindings
	}
	return nil
}

// analyzeSource dispatches to the program or grammar analyzer. A
// context only affects grammars: program analysis is context-free.
func analyzeSource(src string, isGrammar bool, ctx *asp.Program) aspcheck.Findings {
	if !isGrammar {
		return aspcheck.AnalyzeProgramSource(src)
	}
	g, err := asg.ParseASG(src)
	if err != nil {
		return aspcheck.AnalyzeGrammarSource(src) // re-parse to produce the parse finding
	}
	return aspcheck.AnalyzeGrammarWithContext(g, ctx)
}

// renderFinding prefixes a finding with its file, keeping the
// conventional file:line:col: head when a position is known.
func renderFinding(file string, f aspcheck.Finding) string {
	if f.Pos.Valid() {
		return fmt.Sprintf("%s:%s", file, f.String())
	}
	return fmt.Sprintf("%s: %s", file, f.String())
}

func loadContext(arg string) (*asp.Program, error) {
	if data, err := os.ReadFile(arg); err == nil {
		return asp.Parse(string(data))
	}
	return asp.Parse(arg)
}
