package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintProgramFile(t *testing.T) {
	path := writeFile(t, "bad.lp", "p(X) :- q.\nq.\n")
	var out strings.Builder
	err := run([]string{path}, strings.NewReader(""), &out)
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	got := out.String()
	if !strings.Contains(got, path+":1:3: error[unsafe-var]") {
		t.Errorf("missing positioned unsafe-var line in output:\n%s", got)
	}
}

func TestLintCleanFile(t *testing.T) {
	path := writeFile(t, "ok.lp", "p(X) :- q(X).\nq(a).\n:- p(b).\n")
	var out strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "ok: no findings") {
		t.Errorf("output = %q", out.String())
	}
}

func TestLintStdin(t *testing.T) {
	var out strings.Builder
	err := run(nil, strings.NewReader("p(X) :- q.\nq.\n"), &out)
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	if !strings.Contains(out.String(), "<stdin>:1:3: error[unsafe-var]") {
		t.Errorf("output = %q", out.String())
	}
}

func TestLintGrammarByExtension(t *testing.T) {
	path := writeFile(t, "g.asg", "start -> \"go\"\ndead -> \"x\"\n")
	var out strings.Builder
	// Warnings alone don't fail without -strict.
	if err := run([]string{path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "asg-unreachable") {
		t.Errorf("output = %q", out.String())
	}
	// With -strict the warning fails the run.
	out.Reset()
	if err := run([]string{"-strict", path}, strings.NewReader(""), &out); err != errFindings {
		t.Fatalf("strict err = %v, want errFindings", err)
	}
}

func TestLintGrammarWithContext(t *testing.T) {
	g := writeFile(t, "g.asg", `start -> policy {
  :- not ok@1.
}
policy -> "go" {
  ok :- weather(clear).
}
`)
	var out strings.Builder
	if err := run([]string{g}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "asg-underivable") {
		t.Errorf("expected underivable warning without context:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-context", "weather(clear).", g}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run with context: %v", err)
	}
	if strings.Contains(out.String(), "asg-underivable") {
		t.Errorf("context did not satisfy the reference:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeFile(t, "bad.lp", "p(X) :- q.\nq.\n")
	var out strings.Builder
	err := run([]string{"-json", path}, strings.NewReader(""), &out)
	if err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	var reports []struct {
		File     string `json:"file"`
		Findings []struct {
			Severity string `json:"severity"`
			Code     string `json:"code"`
			Message  string `json:"message"`
			Pos      struct {
				Line int `json:"line"`
				Col  int `json:"col"`
			} `json:"pos"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].File != path {
		t.Fatalf("reports = %+v", reports)
	}
	found := false
	for _, f := range reports[0].Findings {
		if f.Code == "unsafe-var" && f.Severity == "error" && f.Pos.Line == 1 && f.Pos.Col == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("no positioned unsafe-var in %+v", reports[0].Findings)
	}
}

func TestMinSeverityFilter(t *testing.T) {
	// clean.lp-style program with only an info finding.
	path := writeFile(t, "info.lp", "p.\n")
	var out strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "unused-pred") {
		t.Errorf("info finding missing at default -min:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-min", "warning", path}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "ok: no findings") {
		t.Errorf("-min warning did not hide info finding:\n%s", out.String())
	}
	if err := run([]string{"-min", "bogus", path}, strings.NewReader(""), &out); err == nil || err == errFindings {
		t.Errorf("bad -min accepted: %v", err)
	}
}

func TestParseErrorFailsRun(t *testing.T) {
	path := writeFile(t, "broken.lp", "p(a\n")
	var out strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out); err != errFindings {
		t.Fatalf("err = %v, want errFindings", err)
	}
	if !strings.Contains(out.String(), "parse-error") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCorpusFilesLintExactly(t *testing.T) {
	// The golden corpus drives the CLI too: unsafe.lp must fail, the
	// clean files must pass.
	base := filepath.Join("..", "..", "internal", "aspcheck", "testdata")
	var out strings.Builder
	if err := run([]string{filepath.Join(base, "unsafe.lp")}, strings.NewReader(""), &out); err != errFindings {
		t.Errorf("unsafe.lp: err = %v, want errFindings", err)
	}
	out.Reset()
	if err := run([]string{filepath.Join(base, "clean.lp"), filepath.Join(base, "clean.asg")}, strings.NewReader(""), &out); err != nil {
		t.Errorf("clean corpus failed: %v\n%s", err, out.String())
	}
}

func TestMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"no-such-file.lp"}, strings.NewReader(""), &out); err == nil || err == errFindings {
		t.Errorf("missing file: err = %v", err)
	}
}
