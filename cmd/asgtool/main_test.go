package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGrammar(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.asg")
	src := `
policy -> "fly" { :- not weather(clear). }
policy -> "drive"
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestShow(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-grammar", writeGrammar(t), "show"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `policy -> "fly"`) {
		t.Errorf("show output:\n%s", out.String())
	}
}

func TestValidate(t *testing.T) {
	g := writeGrammar(t)
	var out strings.Builder
	// weather/1 is context-supplied: a warning without -context, quiet
	// with one.
	if err := run([]string{"-grammar", g, "validate"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "asg-underivable") {
		t.Errorf("validate output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-grammar", g, "-context", "weather(clear).", "validate"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "asg-underivable") {
		t.Errorf("context not honoured by validate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 errors") {
		t.Errorf("missing summary line:\n%s", out.String())
	}

	// A grammar with an unsafe annotation variable fails validation.
	bad := filepath.Join(t.TempDir(), "bad.asg")
	if err := os.WriteFile(bad, []byte("policy -> \"fly\" { grant(X). }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-grammar", bad, "validate"}, &out); err == nil {
		t.Errorf("unsafe annotation accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "unsafe-var") {
		t.Errorf("validate output:\n%s", out.String())
	}
}

func TestCheck(t *testing.T) {
	g := writeGrammar(t)
	var out strings.Builder
	if err := run([]string{"-grammar", g, "-context", "weather(clear).", "check", "fly"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VALID") {
		t.Errorf("check output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-grammar", g, "check", "fly"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("check output:\n%s", out.String())
	}
}

func TestGenerate(t *testing.T) {
	g := writeGrammar(t)
	var out strings.Builder
	if err := run([]string{"-grammar", g, "generate"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "drive") || strings.Contains(s, "fly\n") {
		t.Errorf("generate output:\n%s", s)
	}
	out.Reset()
	if err := run([]string{"-grammar", g, "-context", "weather(clear).", "generate"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fly") {
		t.Errorf("generate with context:\n%s", out.String())
	}
}

func TestContextFromFile(t *testing.T) {
	g := writeGrammar(t)
	ctxPath := filepath.Join(t.TempDir(), "ctx.lp")
	if err := os.WriteFile(ctxPath, []byte("weather(clear)."), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-grammar", g, "-context", ctxPath, "check", "fly"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VALID") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestIntentCompilation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intent.txt")
	doc := "policy: allow or block tool\ntool: saw, drill\nnever allow saw when shift is night\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-intent", path, "show"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `policy -> "allow" tool`) {
		t.Errorf("compiled grammar:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-intent", path, "-context", "shift(night).", "check", "allow saw"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("check output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"show"}, &out); err == nil {
		t.Error("missing -grammar not rejected")
	}
	if err := run([]string{"-grammar", "a", "-intent", "b", "show"}, &out); err == nil {
		t.Error("mutually exclusive flags not rejected")
	}
	if err := run([]string{"-intent", "/nope.txt", "show"}, &out); err == nil {
		t.Error("missing intent file not rejected")
	}
	if err := run([]string{"-grammar", "/nope.asg", "show"}, &out); err == nil {
		t.Error("missing grammar file not rejected")
	}
	g := writeGrammar(t)
	if err := run([]string{"-grammar", g, "check"}, &out); err == nil {
		t.Error("check without string not rejected")
	}
	if err := run([]string{"-grammar", g, "frobnicate"}, &out); err == nil {
		t.Error("unknown subcommand not rejected")
	}
	if err := run([]string{"-grammar", g, "-context", "not valid asp", "show"}, &out); err == nil {
		t.Error("bad context not rejected")
	}
}
