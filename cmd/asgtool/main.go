// Command asgtool works with answer set grammars: it checks membership
// of policy strings, generates the (bounded) language of a grammar under
// a context, and pretty-prints grammars.
//
// Usage:
//
//	asgtool -grammar g.asg show
//	asgtool -grammar g.asg validate          # static analysis (aspcheck)
//	asgtool -grammar g.asg [-context "weather(rain)."] check "accept overtake"
//	asgtool -grammar g.asg [-context ctx.lp] generate [-max-nodes 16]
//	asgtool -intent policy.txt show          # compile controlled English
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/aspcheck"
	"agenp/internal/intent"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asgtool:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("asgtool", flag.ContinueOnError)
	grammarPath := fs.String("grammar", "", "path to the .asg grammar file")
	intentPath := fs.String("intent", "", "path to a controlled-English intent document to compile instead of -grammar")
	contextArg := fs.String("context", "", "ASP context: inline program or path to a file")
	maxNodes := fs.Int("max-nodes", 16, "derivation-tree size bound for generate")
	maxStrings := fs.Int("max-strings", 0, "cap on generated policies (0 = all within max-nodes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *asg.Grammar
	switch {
	case *grammarPath != "" && *intentPath != "":
		return fmt.Errorf("-grammar and -intent are mutually exclusive")
	case *grammarPath != "":
		src, err := os.ReadFile(*grammarPath)
		if err != nil {
			return err
		}
		g, err = asg.ParseASG(string(src))
		if err != nil {
			return err
		}
	case *intentPath != "":
		src, err := os.ReadFile(*intentPath)
		if err != nil {
			return err
		}
		g, err = intent.CompileSource(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -grammar or -intent is required")
	}
	ctx, err := loadContext(*contextArg)
	if err != nil {
		return err
	}
	bare := g
	g = g.WithContext(ctx)

	switch cmd := fs.Arg(0); cmd {
	case "show", "":
		fmt.Fprint(stdout, g.String())
		return nil
	case "validate":
		// Lint the grammar as written (not the G(C) merge) so finding
		// positions stay in the source file's coordinates; the context's
		// predicates still count as derivable.
		var lintCtx *asp.Program
		if ctx != nil && len(ctx.Rules) > 0 {
			lintCtx = ctx
		}
		findings := aspcheck.AnalyzeGrammarWithContext(bare, lintCtx)
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		fmt.Fprintln(stdout, findings.Summary())
		if findings.HasErrors() {
			return fmt.Errorf("grammar has errors")
		}
		return nil
	case "check":
		if fs.NArg() < 2 {
			return fmt.Errorf("check needs a policy string argument")
		}
		tokens := strings.Fields(fs.Arg(1))
		ok, err := g.Accepts(tokens, asg.AcceptOptions{})
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintf(stdout, "VALID: %q is in L(G(C))\n", fs.Arg(1))
		} else {
			fmt.Fprintf(stdout, "INVALID: %q is not in L(G(C))\n", fs.Arg(1))
		}
		return nil
	case "generate":
		out, err := g.Generate(asg.GenerateOptions{MaxNodes: *maxNodes, MaxStrings: *maxStrings})
		if err != nil {
			return err
		}
		for _, p := range out {
			fmt.Fprintln(stdout, p.Text())
		}
		fmt.Fprintf(stdout, "%% %d valid polic(ies) within %d nodes\n", len(out), *maxNodes)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want show, validate, check or generate)", cmd)
	}
}

func loadContext(arg string) (*asp.Program, error) {
	if arg == "" {
		return asp.NewProgram(), nil
	}
	if data, err := os.ReadFile(arg); err == nil {
		return asp.Parse(string(data))
	}
	return asp.Parse(arg)
}
