package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"agenp/internal/obs"
)

// summarizeAudit reads a flight-recorder dump (the agenpd /audit JSON)
// and prints an offline summary: top winning policies, effect mix,
// latency distribution with outliers, anomaly counts, and the
// generation flips observed across the tail.
func summarizeAudit(w io.Writer, r io.Reader) error {
	var dump obs.AuditDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return fmt.Errorf("decoding audit dump: %w", err)
	}
	if dump.Party != "" {
		fmt.Fprintf(w, "party %s generation %d\n", dump.Party, dump.Generation)
	}
	fmt.Fprintf(w, "recorder: %d recorded, %d events, %d slo breaches, %d effect flips, %d generation changes\n",
		dump.Stats.Recorded, dump.Stats.Events,
		dump.Stats.LatencySLO, dump.Stats.EffectFlips, dump.Stats.GenChanges)
	if len(dump.Records) == 0 {
		fmt.Fprintln(w, "no decision records in tail")
		return summarizeEvents(w, dump.Events)
	}
	fmt.Fprintf(w, "\ntail: %d decisions", len(dump.Records))
	span := dump.Records[len(dump.Records)-1].Time.Sub(dump.Records[0].Time)
	if span > 0 {
		fmt.Fprintf(w, " over %s", fmtDur(int64(span)))
	}
	fmt.Fprintln(w)

	// Effect mix and top winning policies.
	effects := map[string]int{}
	policies := map[string]int{}
	anomalies := map[string]int{}
	lats := make([]int64, 0, len(dump.Records))
	for _, rec := range dump.Records {
		effects[rec.Effect]++
		if rec.PolicyID != "" {
			policies[rec.PolicyID]++
		}
		for _, a := range rec.Anomalies {
			anomalies[a]++
		}
		lats = append(lats, rec.LatencyNs)
	}

	fmt.Fprintln(w, "\neffect mix:")
	for _, kv := range sortedCounts(effects) {
		fmt.Fprintf(w, "  %-16s %6d (%d%%)\n", kv.k, kv.n, 100*kv.n/len(dump.Records))
	}

	if len(policies) > 0 {
		fmt.Fprintln(w, "\ntop policies:")
		rows := sortedCounts(policies)
		if len(rows) > 10 {
			rows = rows[:10]
		}
		for _, kv := range rows {
			fmt.Fprintf(w, "  %-32s %6d\n", kv.k, kv.n)
		}
	}

	// Latency distribution: quartiles plus the slowest records as
	// outliers.
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	q := func(p int) int64 { return lats[(len(lats)-1)*p/100] }
	fmt.Fprintf(w, "\nlatency: min=%s p50=%s p95=%s p99=%s max=%s\n",
		fmtDur(lats[0]), fmtDur(q(50)), fmtDur(q(95)), fmtDur(q(99)), fmtDur(lats[len(lats)-1]))
	p99 := q(99)
	var outliers []obs.AuditRecord
	for _, rec := range dump.Records {
		if rec.LatencyNs > p99 {
			outliers = append(outliers, rec)
		}
	}
	if len(outliers) > 0 {
		sort.Slice(outliers, func(a, b int) bool { return outliers[a].LatencyNs > outliers[b].LatencyNs })
		if len(outliers) > 5 {
			outliers = outliers[:5]
		}
		fmt.Fprintln(w, "latency outliers (above p99):")
		for _, rec := range outliers {
			fmt.Fprintf(w, "  seq=%-8d %-24s %-14s %s\n", rec.Seq, rec.PolicyID, rec.Effect, fmtDur(rec.LatencyNs))
		}
	}

	if len(anomalies) > 0 {
		fmt.Fprintln(w, "\nanomalies in tail:")
		for _, kv := range sortedCounts(anomalies) {
			fmt.Fprintf(w, "  %-20s %6d\n", kv.k, kv.n)
		}
	}

	// Generation flips: where consecutive records changed generation.
	var flips int
	for i := 1; i < len(dump.Records); i++ {
		prev, cur := dump.Records[i-1], dump.Records[i]
		if prev.Generation != cur.Generation {
			flips++
			fmt.Fprintf(w, "\ngeneration flip at seq %d: %d -> %d (%s)\n",
				cur.Seq, prev.Generation, cur.Generation, cur.Time.Format("15:04:05.000"))
		}
	}
	if flips == 0 {
		fmt.Fprintf(w, "\nno generation flips in tail (generation %d throughout)\n", dump.Records[0].Generation)
	}

	return summarizeEvents(w, dump.Events)
}

func summarizeEvents(w io.Writer, events []obs.AuditRecord) error {
	if len(events) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\nevents (%d):\n", len(events))
	for _, ev := range events {
		extra := ""
		if len(ev.Anomalies) > 0 {
			extra = fmt.Sprintf(" %v", ev.Anomalies)
		}
		fmt.Fprintf(w, "  %s %-18s %-24s gen=%d %s%s\n",
			ev.Time.Format("15:04:05.000"), ev.Effect, ev.PolicyID, ev.Generation, fmtDur(ev.LatencyNs), extra)
	}
	return nil
}

type countRow struct {
	k string
	n int
}

// sortedCounts renders a count map as rows sorted by descending count,
// ties broken by name for deterministic output.
func sortedCounts(m map[string]int) []countRow {
	rows := make([]countRow, 0, len(m))
	for k, n := range m {
		rows = append(rows, countRow{k, n})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].n != rows[b].n {
			return rows[a].n > rows[b].n
		}
		return rows[a].k < rows[b].k
	})
	return rows
}
