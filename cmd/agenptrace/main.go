// Command agenptrace summarizes a JSONL span trace produced by the
// -trace flag of the framework CLIs (ilasp, asolve, experiments): a
// per-operation timing table and, with -tree, the span forest with
// durations and attributes — a poor man's trace viewer for the learner's
// search behaviour.
//
// With -audit it instead summarizes a decision flight-recorder dump (the
// JSON served by agenpd's /audit endpoint): top winning policies, the
// effect mix, latency quartiles and outliers, anomaly counts, and the
// generation flips observed in the tail.
//
// Usage:
//
//	ilasp -demo cav -trace cav.trace
//	agenptrace cav.trace
//	agenptrace -tree -top 20 cav.trace
//	curl -s localhost:8077/audit?n=1000 | agenptrace -audit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"agenp/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agenptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("agenptrace", flag.ContinueOnError)
	tree := fs.Bool("tree", false, "print the span forest instead of the summary table")
	top := fs.Int("top", 0, "limit tree children per span (0 = all)")
	audit := fs.Bool("audit", false, "input is a flight-recorder dump (agenpd /audit JSON), not a span trace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader
	switch fs.NArg() {
	case 0:
		in = stdin
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("expected at most one trace file, got %d", fs.NArg())
	}

	if *audit {
		return summarizeAudit(stdout, in)
	}

	spans, err := readSpans(in)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		fmt.Fprintln(stdout, "trace is empty")
		return nil
	}
	if *tree {
		printTree(stdout, spans, *top)
		return nil
	}
	printSummary(stdout, spans)
	return nil
}

func readSpans(r io.Reader) ([]obs.SpanData, error) {
	var out []obs.SpanData
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var d obs.SpanData
		if err := json.Unmarshal([]byte(text), &d); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// nameStats aggregates all spans sharing a name.
type nameStats struct {
	name     string
	count    int
	total    int64
	min, max int64
}

func printSummary(w io.Writer, spans []obs.SpanData) {
	byName := make(map[string]*nameStats)
	for _, d := range spans {
		st := byName[d.Name]
		if st == nil {
			st = &nameStats{name: d.Name, min: d.DurNs}
			byName[d.Name] = st
		}
		st.count++
		st.total += d.DurNs
		if d.DurNs < st.min {
			st.min = d.DurNs
		}
		if d.DurNs > st.max {
			st.max = d.DurNs
		}
	}
	rows := make([]*nameStats, 0, len(byName))
	for _, st := range byName {
		rows = append(rows, st)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].total > rows[b].total })

	fmt.Fprintf(w, "%-28s %8s %12s %12s %12s %12s\n",
		"span", "count", "total", "min", "avg", "max")
	for _, st := range rows {
		avg := st.total / int64(st.count)
		fmt.Fprintf(w, "%-28s %8d %12s %12s %12s %12s\n",
			st.name, st.count,
			fmtDur(st.total), fmtDur(st.min), fmtDur(avg), fmtDur(st.max))
	}
	fmt.Fprintf(w, "%d spans\n", len(spans))
}

func printTree(w io.Writer, spans []obs.SpanData, top int) {
	children := make(map[uint64][]obs.SpanData)
	ids := make(map[uint64]bool, len(spans))
	for _, d := range spans {
		ids[d.ID] = true
	}
	var roots []obs.SpanData
	for _, d := range spans {
		// A span whose parent never completed (or was emitted by another
		// process) is shown as a root rather than dropped.
		if d.Parent != 0 && ids[d.Parent] {
			children[d.Parent] = append(children[d.Parent], d)
		} else {
			roots = append(roots, d)
		}
	}
	byStart := func(s []obs.SpanData) {
		sort.Slice(s, func(a, b int) bool { return s[a].Start.Before(s[b].Start) })
	}
	byStart(roots)

	var render func(d obs.SpanData, depth int)
	render = func(d obs.SpanData, depth int) {
		var attrs strings.Builder
		for _, a := range d.Attrs {
			fmt.Fprintf(&attrs, " %s=%s", a.K, a.V)
		}
		fmt.Fprintf(w, "%s%s %s%s\n",
			strings.Repeat("  ", depth), d.Name, fmtDur(d.DurNs), attrs.String())
		kids := children[d.ID]
		byStart(kids)
		shown := kids
		if top > 0 && len(kids) > top {
			shown = kids[:top]
		}
		for _, k := range shown {
			render(k, depth+1)
		}
		if len(shown) < len(kids) {
			fmt.Fprintf(w, "%s… %d more\n", strings.Repeat("  ", depth+1), len(kids)-len(shown))
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}

// fmtDur renders a nanosecond duration compactly (µs under 1ms, ms
// under 1s, otherwise seconds with two decimals).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
