package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"agenp/internal/obs"
)

// writeAuditDump produces a real dump the way agenpd does: decisions and
// events committed through a live recorder, dumped to JSON.
func writeAuditDump(t *testing.T) string {
	t.Helper()
	rec := obs.NewRecorder(obs.RecorderOptions{LatencySLO: time.Millisecond})
	rec.NoteGeneration(1, []string{"share_image", "withhold_sigint"})
	rec.NoteGeneration(2, []string{"share_image", "withhold_sigint", "withhold_image"})
	base := time.Unix(1700000000, 0)
	n := int64(0)
	for i := 0; i < 30; i++ {
		n++
		rec.Commit(n, 1, "share_image", obs.EffectPermit, 0xaa, base.Add(time.Duration(n)*time.Millisecond), 200*time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		n++
		rec.Commit(n, 1, "withhold_sigint", obs.EffectDeny, 0xbb, base.Add(time.Duration(n)*time.Millisecond), 300*time.Nanosecond)
	}
	// One slow decision (SLO breach) and a generation flip.
	n++
	rec.Commit(n, 1, "share_image", obs.EffectPermit, 0xcc, base.Add(time.Duration(n)*time.Millisecond), 5*time.Millisecond)
	rec.Event(obs.EventImportAdopted, "withhold_image", 2, 40*time.Microsecond)
	n++
	rec.Commit(n, 2, "withhold_image", obs.EffectDeny, 0xaa, base.Add(time.Duration(n)*time.Millisecond), 250*time.Nanosecond)

	dump := rec.Dump(100)
	dump.Party = "party-a"
	dump.Generation = 2
	raw, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "audit.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAuditSummary(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-audit", writeAuditDump(t)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"party party-a generation 2",
		"42 decisions",
		"effect mix:",
		"Permit",
		"Deny",
		"top policies:",
		"share_image",
		"withhold_sigint",
		"latency:",
		"latency outliers",
		"latency-slo",
		"generation flip at seq",
		"1 -> 2",
		"import-adopted",
		"withhold_image",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("audit summary missing %q:\n%s", want, s)
		}
	}
}

func TestAuditEmptyDump(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderOptions{})
	raw, err := json.Marshal(rec.Dump(10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-audit"}, strings.NewReader(string(raw)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no decision records") {
		t.Errorf("empty dump summary:\n%s", out.String())
	}
}

func TestAuditRejectsGarbage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-audit"}, strings.NewReader("not json"), &out); err == nil {
		t.Error("garbage input not rejected")
	}
}
