package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"agenp/internal/obs"
)

// writeTrace produces a real trace the way the CLIs do: spans through a
// JSONL sink into a file.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	stop, err := obs.StartTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	root := obs.StartSpan("ilasp.search")
	for i := 0; i < 3; i++ {
		c := root.Child("ilasp.check")
		time.Sleep(time.Microsecond)
		c.End()
	}
	root.SetAttr("checks", "3")
	root.End()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	var out strings.Builder
	if err := run([]string{writeTrace(t)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"ilasp.search", "ilasp.check", "4 spans"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestTree(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tree", writeTrace(t)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "checks=3") {
		t.Errorf("tree missing root attrs:\n%s", s)
	}
	if !strings.Contains(s, "  ilasp.check") {
		t.Errorf("tree missing indented children:\n%s", s)
	}
}

func TestTreeTopLimit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tree", "-top", "2", writeTrace(t)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "… 1 more") {
		t.Errorf("top limit not applied:\n%s", out.String())
	}
}

func TestStdinAndEmpty(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace is empty") {
		t.Errorf("empty trace not reported:\n%s", out.String())
	}
}

func TestMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, nil, &out); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed line not diagnosed: %v", err)
	}
}
