// Command ilasp runs the inductive learner on built-in demonstration
// tasks, printing the hypothesis space statistics and the learned rules
// — a minimal stand-in for the ILASP system's command line.
//
// Usage:
//
//	ilasp -demo flies      # birds fly unless they are penguins
//	ilasp -demo access     # recover XACML-style policies from examples
//	ilasp -demo cav -n 40  # CAV driving-task policies from n scenarios
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"agenp/internal/apps/cav"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/obs"
	"agenp/internal/workload"
	"agenp/internal/xacml"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ilasp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ilasp", flag.ContinueOnError)
	demo := fs.String("demo", "flies", "demo task: flies, access, or cav")
	n := fs.Int("n", 40, "number of generated examples (access/cav demos)")
	seed := fs.Uint64("seed", 20260704, "generator seed")
	noise := fs.Bool("noise", false, "noise-tolerant search")
	parallel := fs.Int("parallel", 0, "coverage-check workers (0 = GOMAXPROCS, 1 = serial)")
	stats := fs.Bool("stats", false, "dump the telemetry registry to stderr on exit")
	trace := fs.String("trace", "", "write span trace as JSON lines to this file (see agenptrace)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()
	if *trace != "" {
		stop, err := obs.StartTrace(*trace)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}
	if *stats {
		defer func() { _ = obs.Default.Snapshot().WriteText(os.Stderr) }()
	}

	var (
		task *ilasp.Task
		opts ilasp.LearnOptions
	)
	switch *demo {
	case "flies":
		bg, err := asp.Parse("bird(tweety). bird(sam). penguin(sam).")
		if err != nil {
			return err
		}
		flies := func(s string) asp.Atom {
			return asp.NewAtom("flies", asp.Constant{Name: s})
		}
		task = &ilasp.Task{
			Background: bg,
			Bias: ilasp.Bias{
				Head:          []ilasp.ModeAtom{ilasp.M("flies", ilasp.Var("animal"))},
				Body:          []ilasp.ModeAtom{ilasp.M("bird", ilasp.Var("animal")), ilasp.M("penguin", ilasp.Var("animal"))},
				MaxVars:       1,
				MaxBody:       2,
				AllowNegation: true,
				RequireBody:   true,
			},
			Examples: []ilasp.Example{
				ilasp.PosExample("e1", []asp.Atom{flies("tweety")}, []asp.Atom{flies("sam")}, nil),
			},
		}
		opts = ilasp.LearnOptions{MaxRules: 1}
	case "access":
		ds := workload.GenXACML(*seed, *n)
		task = &ilasp.Task{
			Bias:     workload.AccessBias(ds.Schema, nil),
			Examples: workload.LearningExamples(ds.Examples, boolToWeight(*noise)),
		}
		opts = ilasp.LearnOptions{MaxRules: 4, Noise: *noise}
	case "cav":
		scenarios := cav.Generate(*seed, *n)
		task = &ilasp.Task{
			Background: cav.Background(),
			Bias:       cav.Bias(),
			Examples:   cav.LearningExamples(scenarios, boolToWeight(*noise)),
		}
		opts = ilasp.LearnOptions{MaxRules: 3, Noise: *noise}
	default:
		return fmt.Errorf("unknown demo %q (want flies, access, or cav)", *demo)
	}

	space, err := task.Bias.Space()
	if err == nil {
		fmt.Fprintf(stdout, "hypothesis space: %d candidate rules\n", len(space))
	}
	fmt.Fprintf(stdout, "examples: %d\n", len(task.Examples))
	opts.Parallelism = *parallel
	start := time.Now()
	res, err := task.LearnIndependent(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "learned in %s (%d coverage checks), cost %d, covered %d/%d:\n",
		time.Since(start).Round(time.Millisecond), res.Checks, res.Cost, res.Covered, res.Total)
	for _, r := range res.Hypothesis {
		fmt.Fprintf(stdout, "  %s\n", r.String())
	}
	if *demo == "access" {
		if pol, err := xacml.PolicyFromHypothesis(res.Hypothesis, "learned"); err == nil {
			fmt.Fprintln(stdout, "as XACML-style policy:")
			fmt.Fprint(stdout, pol.Format())
		}
	}
	return nil
}

// startProfiles turns on the requested pprof outputs; the returned stop
// function finishes the CPU profile and snapshots the heap (after a GC,
// so the profile shows live objects rather than garbage).
func startProfiles(cpuFile, memFile string) (func(), error) {
	stop := func() {}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memFile != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

func boolToWeight(noise bool) int {
	if noise {
		return 10
	}
	return 0
}
