package main

import (
	"strings"
	"testing"
)

func TestDemoFlies(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "flies"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flies(V1) :- bird(V1), not penguin(V1).") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDemoAccess(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "access", "-n", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "as XACML-style policy:") || !strings.Contains(s, "deny-overrides") {
		t.Errorf("output:\n%s", s)
	}
}

func TestDemoCAV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "cav", "-n", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decision(deny)") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDemoUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "nope"}, &out); err == nil {
		t.Error("unknown demo not rejected")
	}
}
