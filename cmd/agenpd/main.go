// Command agenpd runs a small coalition of autonomous management
// systems sharing data-sharing policies over TCP — a live demonstration
// of the Figure 2 architecture plus the CASWiki-style policy sharing of
// Section III.A.3.
//
// Each party runs the data-sharing generative policy model under its own
// trust context; party A generates its policies and shares them, and the
// other parties' Policy Checking Points adopt or reject them against
// their stricter contexts. Operator feedback then drives party A's
// Policy Adaptation Point: the model is evolved by the symbolic learner
// and policies are regenerated.
//
// With -metrics the daemon serves its telemetry registry as JSON on
// /metrics (plus expvar on /debug/vars and the pprof handlers on
// /debug/pprof/), answers live policy decisions on /decide
// (?party=party-b&action=share+image, action repeatable for a batched
// decision under one engine snapshot), and stays up after the round
// until interrupted.
//
// Usage:
//
//	agenpd [-parties 3] [-addr 127.0.0.1:0] [-metrics 127.0.0.1:8077]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/apps/datashare"
	"agenp/internal/asp"
	"agenp/internal/coalition"
	"agenp/internal/core"
	"agenp/internal/engine"
	"agenp/internal/obs"
	"agenp/internal/polcheck"
	"agenp/internal/xacml"
)

// Decision-endpoint telemetry: request latency includes JSON encoding,
// so it bounds what a caller of /decide actually observes; the engine's
// own compile/decide counters live in internal/engine. The windowed
// histogram reports p50/p95/p99 over the last 10s/1m/5m so a latency
// spike is visible in /metrics within one window of happening.
var (
	statDecideDur  = obs.H("agenpd.decide.duration")
	statDecideWin  = obs.W("agenpd.decide")
	statDecideReqs = obs.C("agenpd.decide.requests")
	statVerifyReqs = obs.C("agenpd.verify.requests")
	statAuditReqs  = obs.C("agenpd.audit.requests")
)

// decideServer serves PDP decisions over HTTP from the parties' compiled
// decision engines. Parties register as they join, so the handler can be
// mounted on the metrics mux before the coalition exists.
type decideServer struct {
	mu      sync.RWMutex
	members map[string]*agenp.AMS
	lead    string
}

func newDecideServer() *decideServer {
	return &decideServer{members: make(map[string]*agenp.AMS)}
}

func (s *decideServer) add(ams *agenp.AMS) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.members) == 0 {
		s.lead = ams.Name()
	}
	s.members[ams.Name()] = ams
}

// decideResult is one decision in a /decide response.
type decideResult struct {
	Action   string `json:"action"`
	Decision string `json:"decision"`
	PolicyID string `json:"policy_id,omitempty"`
	Error    string `json:"error,omitempty"`
}

// decideResponse is the /decide response body.
type decideResponse struct {
	Party      string         `json:"party"`
	Generation uint64         `json:"generation"`
	Results    []decideResult `json:"results"`
}

// ServeHTTP decides one or more actions (?action=... repeated) for a
// party (?party=..., default: the lead). Multiple actions are decided as
// one batch under a single engine snapshot.
func (s *decideServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer statDecideDur.ObserveSince(t0)
	defer statDecideWin.ObserveSince(t0)
	statDecideReqs.Inc()

	actions := r.URL.Query()["action"]
	if len(actions) == 0 {
		http.Error(w, "missing action parameter", http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	party := r.URL.Query().Get("party")
	if party == "" {
		party = s.lead
	}
	ams := s.members[party]
	s.mu.RUnlock()
	if ams == nil {
		http.Error(w, fmt.Sprintf("unknown party %q", party), http.StatusNotFound)
		return
	}

	reqs := make([]xacml.Request, len(actions))
	for i, a := range actions {
		reqs[i] = xacml.NewRequest().Set(xacml.Action, "id", xacml.S(a))
	}
	out, err := ams.DecideBatch(reqs, make([]engine.Result, 0, len(reqs)))
	if err != nil && !errors.Is(err, agenp.ErrNoPolicy) {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := decideResponse{Party: party, Generation: ams.Engine().Generation()}
	for i, res := range out {
		dr := decideResult{
			Action:   actions[i],
			Decision: res.Decision.String(),
			PolicyID: res.PolicyID,
		}
		if err != nil {
			dr.Error = err.Error()
		}
		resp.Results = append(resp.Results, dr)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// verifyResponse is the /verify response body.
type verifyResponse struct {
	Party      string           `json:"party"`
	Generation uint64           `json:"generation"`
	OK         bool             `json:"ok"`
	Report     *polcheck.Report `json:"report"`
}

// handleVerify runs the symbolic policy verifier over a party's live
// snapshot (?party=..., default: the lead) and reports the findings —
// conflicts with validated witness requests, shadowed and redundant
// rules, cross-policy subsumption.
func (s *decideServer) handleVerify(w http.ResponseWriter, r *http.Request) {
	statVerifyReqs.Inc()
	s.mu.RLock()
	party := r.URL.Query().Get("party")
	if party == "" {
		party = s.lead
	}
	ams := s.members[party]
	s.mu.RUnlock()
	if ams == nil {
		http.Error(w, fmt.Sprintf("unknown party %q", party), http.StatusNotFound)
		return
	}
	rep, err := ams.VerifySnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := verifyResponse{
		Party:      party,
		Generation: ams.Engine().Generation(),
		OK:         !rep.HasErrors(),
		Report:     rep,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleAudit dumps a party's decoded decision tail (?party=...,
// default: the lead; ?n=, default 100) — the flight recorder's recent
// records, anomaly copies, and import events as JSON.
func (s *decideServer) handleAudit(w http.ResponseWriter, r *http.Request) {
	statAuditReqs.Inc()
	s.mu.RLock()
	party := r.URL.Query().Get("party")
	if party == "" {
		party = s.lead
	}
	ams := s.members[party]
	s.mu.RUnlock()
	if ams == nil {
		http.Error(w, fmt.Sprintf("unknown party %q", party), http.StatusNotFound)
		return
	}
	rec := ams.Recorder()
	if rec == nil {
		http.Error(w, fmt.Sprintf("party %q has no flight recorder", party), http.StatusNotFound)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	dump := rec.Dump(n)
	dump.Party = party
	dump.Generation = ams.Engine().Generation()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(dump)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agenpd:", err)
		os.Exit(1)
	}
}

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests call run more than once per process.
var publishOnce sync.Once

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agenpd", flag.ContinueOnError)
	parties := fs.Int("parties", 3, "number of coalition parties (>= 2)")
	addr := fs.String("addr", "127.0.0.1:0", "hub listen address")
	metricsAddr := fs.String("metrics", "", "serve telemetry on this address (/metrics, /metrics/prom, /audit, /debug/vars, /debug/pprof/) and keep running until interrupted")
	slo := fs.Duration("slo", time.Millisecond, "decision latency SLO: slower decisions are flagged in the flight recorder and counted as window burn")
	sampleShift := fs.Uint("sample-shift", 0, "flight recorder samples every 2^shift-th decision (0 records all)")
	auditCap := fs.Int("audit-capacity", 1024, "flight recorder ring capacity per shard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sampleShift > 62 {
		return fmt.Errorf("sample-shift %d out of range", *sampleShift)
	}
	if *parties < 2 {
		return fmt.Errorf("need at least 2 parties")
	}

	// engine.decide aggregates sampled in-engine decision latencies
	// across all parties; agenpd.decide covers the HTTP request end to
	// end. Both burn against the same SLO.
	decideWin := obs.W("engine.decide")
	decideWin.SetSLO(*slo)
	statDecideWin.SetSLO(*slo)

	decider := newDecideServer()
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen: %w", err)
		}
		publishOnce.Do(func() { obs.Default.PublishExpvar("agenp") })
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default.Handler())
		mux.Handle("/metrics/prom", obs.Default.PromHandler())
		mux.Handle("/decide", decider)
		mux.HandleFunc("/verify", decider.handleVerify)
		mux.HandleFunc("/audit", decider.handleAudit)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(stdout, "metrics listening on http://%s/metrics\n", ln.Addr())
	}

	hub, err := coalition.NewTCPHub(*addr)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Close() }()
	fmt.Fprintf(stdout, "hub listening on %s\n", hub.Addr())

	// Party contexts alternate trust levels so PCP vetting differs.
	contexts := []string{
		"trust(high). quality(5).",
		"trust(medium). quality(5).",
		"trust(low). quality(5).",
		"trust(medium). quality(2).",
	}
	var members []*coalition.Party
	for i := 0; i < *parties; i++ {
		name := fmt.Sprintf("party-%c", 'a'+i)
		model, err := core.ParseGPM(datashare.GrammarSource)
		if err != nil {
			return err
		}
		pctx, err := asp.Parse(contexts[i%len(contexts)])
		if err != nil {
			return err
		}
		ams, err := agenp.New(agenp.Config{
			Name:    name,
			Model:   model,
			Space:   datashare.HypothesisSpace(),
			Context: &agenp.StaticContext{Program: pctx},
			Interpreter: &agenp.TokenInterpreter{
				PermitVerbs: []string{"share"},
				DenyVerbs:   []string{"withhold"},
			},
			AdaptThreshold: 2,
		})
		if err != nil {
			return err
		}
		// Each party gets its own flight recorder; every recorder
		// observes into the shared engine.decide window so /metrics
		// reports rolling percentiles over the whole coalition's
		// decision traffic.
		rec := obs.NewRecorder(obs.RecorderOptions{
			SampleShift:   uint8(*sampleShift),
			LatencySLO:    *slo,
			ShardCapacity: *auditCap,
			Window:        decideWin,
		})
		ams.AttachRecorder(rec)
		defer rec.Close()
		transport, err := coalition.DialTCP(hub.Addr())
		if err != nil {
			return err
		}
		defer func() { _ = transport.Close() }()
		p, err := coalition.Join(ams, transport)
		if err != nil {
			return err
		}
		defer p.Leave()
		members = append(members, p)
		decider.add(ams)
		fmt.Fprintf(stdout, "%s joined with context %q\n", name, contexts[i%len(contexts)])
	}

	// Party A generates its policies under its (permissive) context and
	// shares them with the coalition.
	lead := members[0]
	accepted, rejected, err := lead.AMS.Regenerate()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s generated %d policies (%d rejected by own PCP)\n",
		lead.AMS.Name(), len(accepted), len(rejected))
	if err := lead.SharePolicies(); err != nil {
		return err
	}

	// Wait for the coalition to settle.
	total := lead.AMS.Repository().Len()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, m := range members[1:] {
			i, r := m.ImportStats()
			if i+r < total {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, m := range members[1:] {
		imported, rej := m.ImportStats()
		fmt.Fprintf(stdout, "%s adopted %d and rejected %d shared policies; repository:\n",
			m.AMS.Name(), imported, rej)
		for _, p := range m.AMS.Repository().List() {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	}

	// Operator feedback drives the lead's Policy Adaptation Point:
	// sharing signals intelligence turned out to be inappropriate even at
	// high trust, so two negative observations reach the adaptation
	// threshold, the model is evolved by the symbolic learner, and
	// policies are regenerated under the stricter grammar.
	leadCtx, err := asp.Parse(contexts[0])
	if err != nil {
		return err
	}
	if _, err := lead.AMS.Observe(core.Feedback{
		Tokens: []string{"share", "image"}, Context: leadCtx, Valid: true,
	}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		adapted, err := lead.AMS.Observe(core.Feedback{
			Tokens: []string{"share", "sigint"}, Context: leadCtx, Valid: false,
		})
		if err != nil {
			return err
		}
		if adapted {
			fmt.Fprintf(stdout, "%s adapted its model (version %d) and now holds %d policies\n",
				lead.AMS.Name(), lead.AMS.Models().Version(), lead.AMS.Repository().Len())
		}
	}

	if *metricsAddr != "" {
		fmt.Fprintln(stdout, "round complete; serving metrics until interrupted")
		<-ctx.Done()
	}
	return nil
}
