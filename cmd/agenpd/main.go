// Command agenpd runs a small coalition of autonomous management
// systems sharing data-sharing policies over TCP — a live demonstration
// of the Figure 2 architecture plus the CASWiki-style policy sharing of
// Section III.A.3.
//
// Each party runs the data-sharing generative policy model under its own
// trust context; party A generates its policies and shares them, and the
// other parties' Policy Checking Points adopt or reject them against
// their stricter contexts.
//
// Usage:
//
//	agenpd [-parties 3] [-addr 127.0.0.1:0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/apps/datashare"
	"agenp/internal/asp"
	"agenp/internal/coalition"
	"agenp/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agenpd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agenpd", flag.ContinueOnError)
	parties := fs.Int("parties", 3, "number of coalition parties (>= 2)")
	addr := fs.String("addr", "127.0.0.1:0", "hub listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parties < 2 {
		return fmt.Errorf("need at least 2 parties")
	}

	hub, err := coalition.NewTCPHub(*addr)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Close() }()
	fmt.Fprintf(stdout, "hub listening on %s\n", hub.Addr())

	// Party contexts alternate trust levels so PCP vetting differs.
	contexts := []string{
		"trust(high). quality(5).",
		"trust(medium). quality(5).",
		"trust(low). quality(5).",
		"trust(medium). quality(2).",
	}
	var members []*coalition.Party
	for i := 0; i < *parties; i++ {
		name := fmt.Sprintf("party-%c", 'a'+i)
		model, err := core.ParseGPM(datashare.GrammarSource)
		if err != nil {
			return err
		}
		ctx, err := asp.Parse(contexts[i%len(contexts)])
		if err != nil {
			return err
		}
		ams, err := agenp.New(agenp.Config{
			Name:    name,
			Model:   model,
			Context: &agenp.StaticContext{Program: ctx},
			Interpreter: &agenp.TokenInterpreter{
				PermitVerbs: []string{"share"},
				DenyVerbs:   []string{"withhold"},
			},
		})
		if err != nil {
			return err
		}
		transport, err := coalition.DialTCP(hub.Addr())
		if err != nil {
			return err
		}
		defer func() { _ = transport.Close() }()
		p, err := coalition.Join(ams, transport)
		if err != nil {
			return err
		}
		defer p.Leave()
		members = append(members, p)
		fmt.Fprintf(stdout, "%s joined with context %q\n", name, contexts[i%len(contexts)])
	}

	// Party A generates its policies under its (permissive) context and
	// shares them with the coalition.
	lead := members[0]
	accepted, rejected, err := lead.AMS.Regenerate()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s generated %d policies (%d rejected by own PCP)\n",
		lead.AMS.Name(), len(accepted), len(rejected))
	if err := lead.SharePolicies(); err != nil {
		return err
	}

	// Wait for the coalition to settle.
	total := lead.AMS.Repository().Len()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, m := range members[1:] {
			i, r := m.ImportStats()
			if i+r < total {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, m := range members[1:] {
		imported, rej := m.ImportStats()
		fmt.Fprintf(stdout, "%s adopted %d and rejected %d shared policies; repository:\n",
			m.AMS.Name(), imported, rej)
		for _, p := range m.AMS.Repository().List() {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	}
	return nil
}
