package main

import (
	"strings"
	"testing"
)

func TestCoalitionRun(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-parties", "3", "-addr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"hub listening on",
		"party-a joined",
		"party-b joined",
		"party-c joined",
		"party-a generated 8 policies",
		"party-b adopted 7 and rejected 1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestTooFewParties(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-parties", "1"}, &out); err == nil {
		t.Error("single party not rejected")
	}
}
