package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"agenp/internal/obs"
)

func TestCoalitionRun(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-parties", "3", "-addr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"hub listening on",
		"party-a joined",
		"party-b joined",
		"party-c joined",
		"party-a generated 8 policies",
		"party-b adopted 7 and rejected 1",
		"party-a adapted its model (version 2)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestTooFewParties(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-parties", "1"}, &out); err == nil {
		t.Error("single party not rejected")
	}
}

// syncBuffer lets the test read the transcript while run is still
// writing it from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMetricsEndpoint runs the daemon with -metrics, scrapes /metrics
// after the round, and cross-checks the scraped counters against the
// printed transcript: coalition adopted/rejected totals must match the
// per-party lines exactly, and the grounding/solving/learning pipeline
// counters must all have advanced.
func TestMetricsEndpoint(t *testing.T) {
	// The registry is process-global and other tests advance it too, so
	// compare deltas against a snapshot taken before the run starts
	// (package tests run sequentially).
	base := map[string]int64{}
	for _, name := range []string{
		"coalition.policies.adopted",
		"coalition.policies.rejected",
		"coalition.policies.published",
		"coalition.hub.messages",
		"agenp.policies.generated",
		"agenp.adaptations",
		"asp.ground.calls",
		"asp.solve.calls",
		"ilasp.search.count",
	} {
		base[name] = obs.C(name).Value()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-parties", "3", "-metrics", "127.0.0.1:0"}, &out)
	}()

	waitFor := func(what string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := out.String(); strings.Contains(s, what) {
				return s
			}
			select {
			case err := <-errCh:
				t.Fatalf("daemon exited early (err=%v); output:\n%s", err, out.String())
			case <-time.After(5 * time.Millisecond):
			}
		}
		t.Fatalf("timeout waiting for %q; output:\n%s", what, out.String())
		return ""
	}
	s := waitFor("round complete; serving metrics until interrupted")

	m := regexp.MustCompile(`metrics listening on (http://\S+)`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no metrics address in output:\n%s", s)
	}
	resp, err := http.Get(m[1])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want JSON", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	delta := func(name string) int64 { return snap.Counters[name] - base[name] }

	// Transcript cross-check: summed per-party adopted/rejected lines
	// must equal the counter deltas.
	var wantAdopted, wantRejected int64
	for _, m := range regexp.MustCompile(`adopted (\d+) and rejected (\d+)`).FindAllStringSubmatch(s, -1) {
		a, _ := strconv.ParseInt(m[1], 10, 64)
		r, _ := strconv.ParseInt(m[2], 10, 64)
		wantAdopted += a
		wantRejected += r
	}
	if wantAdopted == 0 {
		t.Fatalf("transcript reports no adoptions:\n%s", s)
	}
	if got := delta("coalition.policies.adopted"); got != wantAdopted {
		t.Errorf("coalition.policies.adopted delta = %d, transcript says %d", got, wantAdopted)
	}
	if got := delta("coalition.policies.rejected"); got != wantRejected {
		t.Errorf("coalition.policies.rejected delta = %d, transcript says %d", got, wantRejected)
	}

	// Every pipeline stage must have fired during the round.
	for _, name := range []string{
		"coalition.policies.published",
		"coalition.hub.messages",
		"agenp.policies.generated",
		"agenp.adaptations",
		"asp.ground.calls",
		"asp.solve.calls",
		"ilasp.search.count",
	} {
		if delta(name) <= 0 {
			t.Errorf("counter %s did not advance (delta %d)", name, delta(name))
		}
	}
	if snap.Histograms["coalition.vet.duration"].Count == 0 {
		t.Error("coalition.vet.duration recorded no observations")
	}

	// The pprof index must be mounted on the same mux.
	pprofURL := strings.TrimSuffix(m[1], "/metrics") + "/debug/pprof/"
	pr, err := http.Get(pprofURL)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("GET %s = %d", pprofURL, pr.StatusCode)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
	if !strings.Contains(out.String(), "party-a adapted its model") {
		t.Errorf("transcript missing adaptation line:\n%s", out.String())
	}
}

// TestAuditAndPromEndpoints runs the daemon, drives decisions through
// /decide, and checks the observability surface built on them: /audit
// returns the decoded decision tail with generation, winning policy,
// effect and latency; /metrics/prom serves parseable Prometheus text
// exposition; the rolling-window decide percentiles appear in /metrics.
func TestAuditAndPromEndpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-parties", "2", "-metrics", "127.0.0.1:0"}, &out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var s string
	for time.Now().Before(deadline) {
		if s = out.String(); strings.Contains(s, "round complete") {
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited early (err=%v); output:\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	m := regexp.MustCompile(`metrics listening on (http://\S+)`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no metrics address in output:\n%s", s)
	}
	base := strings.TrimSuffix(m[1], "/metrics")

	// Drive decisions so the recorder and windows have data.
	for i := 0; i < 10; i++ {
		resp, err := http.Get(base + "/decide?party=party-a&action=image&action=teleport")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// /audit: decoded tail with the fields the acceptance criterion
	// names.
	aresp, err := http.Get(base + "/audit?party=party-a&n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /audit = %d", aresp.StatusCode)
	}
	if ct := aresp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/audit Content-Type = %q", ct)
	}
	var dump obs.AuditDump
	if err := json.NewDecoder(aresp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /audit: %v", err)
	}
	if dump.Party != "party-a" || dump.Generation == 0 {
		t.Fatalf("audit header: party=%q generation=%d", dump.Party, dump.Generation)
	}
	if len(dump.Records) < 20 {
		t.Fatalf("audit tail has %d records, want >= 20 (10 batches of 2)", len(dump.Records))
	}
	sawPolicy := false
	for _, rec := range dump.Records {
		if rec.Generation == 0 {
			t.Fatalf("record missing generation: %+v", rec)
		}
		if rec.Effect == "" {
			t.Fatalf("record missing effect: %+v", rec)
		}
		if rec.Effect == "Deny" && rec.PolicyID == "withhold_image" {
			sawPolicy = true
			if rec.LatencyNs <= 0 {
				t.Fatalf("decided record missing latency: %+v", rec)
			}
		}
	}
	if !sawPolicy {
		t.Fatalf("no withhold_image denial decoded in tail: %+v", dump.Records)
	}

	// Audit error paths.
	if resp, err := http.Get(base + "/audit?party=party-zz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("audit unknown party = %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(base + "/audit?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("audit bad n = %d, want 400", resp.StatusCode)
		}
	}

	// Prometheus exposition on the dedicated path and via ?format=prom.
	for _, url := range []string{base + "/metrics/prom", base + "/metrics?format=prom"} {
		presp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(presp.Body)
		presp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, presp.StatusCode)
		}
		if ct := presp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Errorf("%s Content-Type = %q", url, ct)
		}
		text := string(body)
		for _, want := range []string{
			"# TYPE engine_decisions_total counter",
			"engine_decisions_total ",
			"agenpd_decide_duration_seconds_count",
			`engine_decide_window_p99_seconds{window="10s"}`,
		} {
			if !strings.Contains(text, want) {
				t.Errorf("%s missing %q", url, want)
			}
		}
	}

	// 405 on mutation methods.
	if resp, err := http.Post(base+"/metrics/prom", "text/plain", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /metrics/prom = %d, want 405", resp.StatusCode)
		}
	}

	// The rolling-window percentiles appear in the JSON snapshot and
	// have observed the decide traffic within the current window.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	win, ok := snap.Windows["agenpd.decide"]
	if !ok {
		t.Fatalf("agenpd.decide window missing from /metrics: %v", snap.Windows)
	}
	if win["10s"].Count == 0 || win["10s"].P99Ns == 0 {
		t.Fatalf("10s decide window empty after traffic: %+v", win["10s"])
	}
	if _, ok := snap.Windows["engine.decide"]; !ok {
		t.Fatalf("engine.decide window missing from /metrics")
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
}

// TestDecideEndpoint runs the daemon with -metrics and exercises the
// /decide endpoint: single and batched decisions served from the
// compiled engines, plus the error paths.
func TestDecideEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-parties", "3", "-metrics", "127.0.0.1:0"}, &out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var s string
	for time.Now().Before(deadline) {
		if s = out.String(); strings.Contains(s, "round complete") {
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited early (err=%v); output:\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	m := regexp.MustCompile(`metrics listening on (http://\S+)`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no metrics address in output:\n%s", s)
	}
	base := strings.TrimSuffix(m[1], "/metrics")

	get := func(url string) (*http.Response, decideResponse) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dr decideResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
				t.Fatalf("decoding %s: %v", url, err)
			}
		}
		return resp, dr
	}

	// Batched decision under one snapshot. The action id is the object
	// phrase after the verb: "image" has both share_image (permit) and
	// withhold_image (deny) installed, so deny-overrides denies; an
	// unknown object is not applicable.
	resp, dr := get(base + "/decide?party=party-a&action=image&action=teleport")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /decide = %d", resp.StatusCode)
	}
	if dr.Party != "party-a" || len(dr.Results) != 2 {
		t.Fatalf("response = %+v", dr)
	}
	if dr.Generation == 0 {
		t.Error("generation = 0; engine never compiled")
	}
	if dr.Results[0].Decision != "Deny" || dr.Results[0].PolicyID != "withhold_image" {
		t.Errorf("image = %+v, want Deny by withhold_image", dr.Results[0])
	}
	if dr.Results[1].Decision != "NotApplicable" {
		t.Errorf("teleport = %+v, want NotApplicable", dr.Results[1])
	}

	// Default party is the lead.
	if _, def := get(base + "/decide?action=image"); def.Party != "party-a" {
		t.Errorf("default party = %q, want party-a", def.Party)
	}

	// Error paths.
	if resp, _ := get(base + "/decide?party=party-zz&action=x"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown party = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(base + "/decide?party=party-a"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing action = %d, want 400", resp.StatusCode)
	}

	// The /verify endpoint analyzes the live snapshot symbolically:
	// party-a holds share_image (permit) and withhold_image (deny) for
	// the same object, so the verifier reports a validated conflict.
	vresp, err := http.Get(base + "/verify?party=party-a")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /verify = %d", vresp.StatusCode)
	}
	var vr verifyResponse
	if err := json.NewDecoder(vresp.Body).Decode(&vr); err != nil {
		t.Fatalf("decoding /verify: %v", err)
	}
	if vr.Party != "party-a" || vr.Report == nil {
		t.Fatalf("verify response = %+v", vr)
	}
	if vr.OK {
		t.Errorf("share/withhold image pair should verify as conflicting: %+v", vr.Report)
	}
	foundConflict := false
	for _, f := range vr.Report.Findings {
		if f.Kind.String() == "cross-conflict" && f.Witness != "" {
			foundConflict = true
		}
	}
	if !foundConflict {
		t.Errorf("no witnessed cross-conflict in report: %+v", vr.Report.Findings)
	}
	if resp, err := http.Get(base + "/verify?party=party-zz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("verify unknown party = %d, want 404", resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
}
