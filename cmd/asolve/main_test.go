package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	err := run(nil, strings.NewReader("a :- not b. b :- not a."), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Answer 1: {a}", "Answer 2: {b}", "SATISFIABLE (2 answer set(s))"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFileAndMaxModels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.lp")
	if err := os.WriteFile(path, []byte("{x; y}."), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-n", "2", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SATISFIABLE (2 answer set(s))") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUnsat(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("p :- not p."), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "UNSATISFIABLE") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunGround(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-ground"}, strings.NewReader("p(a). q(X) :- p(X)."), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "q(a) :- p(a).") {
		t.Errorf("ground output:\n%s", out.String())
	}
}

func TestRunEngineFlag(t *testing.T) {
	// Both engines print the same sets; the non-tight program exercises
	// the CDNL unfounded-set check and the DFS reduct check.
	src := "a :- b. b :- a. a :- not c. c :- not a."
	// Enumeration order may differ between engines; the sets must not.
	for _, eng := range []string{"cdnl", "dfs"} {
		var out strings.Builder
		if err := run([]string{"-engine", eng}, strings.NewReader(src), &out); err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		got := out.String()
		for _, want := range []string{"{a, b}", "{c}", "SATISFIABLE (2 answer set(s))"} {
			if !strings.Contains(got, want) {
				t.Errorf("engine %s output missing %q:\n%s", eng, want, got)
			}
		}
	}
	var out strings.Builder
	if err := run([]string{"-engine", "bogus"}, strings.NewReader("a."), &out); err == nil {
		t.Error("unknown engine not rejected")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("p :-"), &out); err == nil {
		t.Error("parse error not reported")
	}
	if err := run([]string{"a", "b"}, nil, &out); err == nil {
		t.Error("extra args not rejected")
	}
	if err := run([]string{"/nonexistent/file.lp"}, nil, &out); err == nil {
		t.Error("missing file not reported")
	}
	if err := run([]string{"-budget", "1"}, strings.NewReader("{a;b;c;d;e}."), &out); err == nil {
		t.Error("budget exhaustion not reported")
	}
}
