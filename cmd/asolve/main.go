// Command asolve is the ASP solver CLI: it reads an answer set program
// from a file (or stdin) and prints its answer sets, standing in for the
// clingo binary the paper's framework shells out to.
//
// Usage:
//
//	asolve [-n max] [-engine cdnl|dfs] [-ground] [-plan] [program.lp]
//	echo "a :- not b. b :- not a." | asolve -n 0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"agenp/internal/asp"
	"agenp/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asolve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("asolve", flag.ContinueOnError)
	maxModels := fs.Int("n", 0, "maximum number of answer sets to print (0 = all)")
	showGround := fs.Bool("ground", false, "print the ground program instead of solving")
	showPlan := fs.Bool("plan", false, "print the compiled grounding plans (join orders and lowered ops) instead of solving")
	maxDecisions := fs.Int64("budget", 0, "abort after this many search decisions (0 = unlimited)")
	engine := fs.String("engine", "cdnl", "solving engine: cdnl (conflict-driven, default) or dfs (legacy oracle)")
	stats := fs.Bool("stats", false, "dump the telemetry registry to stderr on exit (includes solver conflicts, backjumps, and learned nogoods)")
	trace := fs.String("trace", "", "write span trace as JSON lines to this file (see agenptrace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var engineKind asp.EngineKind
	switch *engine {
	case "cdnl":
		engineKind = asp.EngineCDNL
	case "dfs":
		engineKind = asp.EngineDFS
	default:
		return fmt.Errorf("unknown engine %q (want cdnl or dfs)", *engine)
	}
	if *trace != "" {
		stop, err := obs.StartTrace(*trace)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}
	if *stats {
		defer func() { _ = obs.Default.Snapshot().WriteText(os.Stderr) }()
	}

	var (
		src []byte
		err error
	)
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("expected at most one program file, got %d", fs.NArg())
	}
	if err != nil {
		return err
	}

	prog, err := asp.Parse(string(src))
	if err != nil {
		return err
	}
	if *showPlan {
		_, plans, err := asp.GroundWithPlans(prog, asp.GroundingOptions{})
		if err != nil {
			return err
		}
		for _, pi := range plans {
			fmt.Fprint(stdout, pi.String())
		}
		return nil
	}
	ground, err := asp.Ground(prog, asp.GroundingOptions{})
	if err != nil {
		return err
	}
	if *showGround {
		fmt.Fprint(stdout, ground.String())
		return nil
	}
	models, err := asp.SolveGround(ground, asp.SolveOptions{
		MaxModels:    *maxModels,
		MaxDecisions: *maxDecisions,
		Engine:       engineKind,
	})
	if err != nil {
		return err
	}
	if len(models) == 0 {
		fmt.Fprintln(stdout, "UNSATISFIABLE")
		return nil
	}
	for i, m := range models {
		fmt.Fprintf(stdout, "Answer %d: %s\n", i+1, m)
	}
	fmt.Fprintf(stdout, "SATISFIABLE (%d answer set(s))\n", len(models))
	return nil
}
