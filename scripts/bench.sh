#!/bin/sh
# Runs the full benchmark suite and writes a JSON report. Each benchmark
# runs three times and benchjson keeps the best repetition: scheduler
# and GC interference on a shared machine only ever slow a run down, so
# the minimum is the stable wall-time estimate (allocs/op is
# deterministic across repetitions).
#
# Usage: scripts/bench.sh [output-file]
set -e
out="${1:-BENCH.json}"
cd "$(dirname "$0")/.."
go test -run '^$' -bench . -benchmem -count=3 . | tee /dev/stderr | go run ./scripts/benchjson > "$out"
echo "wrote $out" >&2
