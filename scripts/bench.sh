#!/bin/sh
# Runs the full benchmark suite and writes a JSON report.
#
# Usage: scripts/bench.sh [output-file]
set -e
out="${1:-BENCH.json}"
cd "$(dirname "$0")/.."
go test -run '^$' -bench . -benchmem . | tee /dev/stderr | go run ./scripts/benchjson > "$out"
echo "wrote $out" >&2
