// Command benchjson converts `go test -bench` output on stdin into a
// JSON report on stdout, for checking benchmark results into the repo
// (BENCH_<n>.json) and diffing them across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson > BENCH_n.json
//
// Compare mode diffs a fresh run against a checked-in snapshot and
// exits nonzero when any benchmark present in both regressed by more
// than the tolerance (default 10%) on ns/op or allocs/op:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson -compare BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the checked-in document. BaselineNsPerOp may be filled in
// by hand to record pre-change numbers for headline benchmarks when a
// PR claims a speedup.
type Report struct {
	Go              string             `json:"go,omitempty"`
	CPU             string             `json:"cpu,omitempty"`
	BaselineNsPerOp map[string]float64 `json:"baseline_ns_per_op,omitempty"`
	Results         []Result           `json:"results"`
}

func main() {
	compare := flag.String("compare", "", "snapshot JSON to diff against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative regression in compare mode")
	flag.Parse()

	rep := parseInput()
	if *compare == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if !compareReports(rep, *compare, *tolerance) {
		os.Exit(1)
	}
}

// compareReports diffs the fresh report against the snapshot at path,
// printing one line per benchmark present in both. Returns false when
// any such benchmark regressed beyond the tolerance on ns/op or
// allocs/op (allocs are compared only when both sides recorded them).
func compareReports(fresh Report, path string, tolerance float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return false
	}
	var snap Report
	if err := json.Unmarshal(data, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", path, err)
		return false
	}
	base := make(map[string]Result, len(snap.Results))
	for _, r := range snap.Results {
		base[r.Name] = r
	}
	ok := true
	matched := 0
	for _, r := range fresh.Results {
		b, found := base[r.Name]
		if !found {
			continue
		}
		matched++
		status := "ok"
		nsDelta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		if nsDelta > tolerance {
			status = "REGRESSION ns/op"
			ok = false
		}
		allocLine := ""
		if b.AllocsPerOp > 0 && r.AllocsPerOp > 0 {
			allocDelta := float64(r.AllocsPerOp-b.AllocsPerOp) / float64(b.AllocsPerOp)
			allocLine = fmt.Sprintf("  allocs %d -> %d (%+.1f%%)", b.AllocsPerOp, r.AllocsPerOp, 100*allocDelta)
			if allocDelta > tolerance {
				status = "REGRESSION allocs/op"
				ok = false
			}
		}
		fmt.Printf("%-60s ns/op %.0f -> %.0f (%+.1f%%)%s  [%s]\n",
			r.Name, b.NsPerOp, r.NsPerOp, 100*nsDelta, allocLine, status)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks in common with %s\n", path)
		return false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% vs %s\n", 100*tolerance, path)
	}
	return ok
}

func parseInput() Report {
	rep := Report{Results: []Result{}}
	byName := map[string]int{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparsable line: %s\n", line)
			continue
		}
		// With -count=N each benchmark appears N times; keep the best
		// repetition (minimum ns/op). Wall time on a shared machine is
		// one-sided noise — interference only ever slows a run down —
		// so the minimum is the stable estimate; allocs/op is
		// deterministic and identical across repetitions.
		if i, dup := byName[r.Name]; dup {
			if r.NsPerOp < rep.Results[i].NsPerOp {
				rep.Results[i] = r
			}
			continue
		}
		byName[r.Name] = len(rep.Results)
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	return rep
}

// parseLine parses "BenchmarkName-8  100  123456 ns/op [ 12 B/op  3 allocs/op ]".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
