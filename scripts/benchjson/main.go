// Command benchjson converts `go test -bench` output on stdin into a
// JSON report on stdout, for checking benchmark results into the repo
// (BENCH_<n>.json) and diffing them across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson > BENCH_n.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the checked-in document. BaselineNsPerOp may be filled in
// by hand to record pre-change numbers for headline benchmarks when a
// PR claims a speedup.
type Report struct {
	Go              string             `json:"go,omitempty"`
	CPU             string             `json:"cpu,omitempty"`
	BaselineNsPerOp map[string]float64 `json:"baseline_ns_per_op,omitempty"`
	Results         []Result           `json:"results"`
}

func main() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparsable line: %s\n", line)
			continue
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkName-8  100  123456 ns/op [ 12 B/op  3 allocs/op ]".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
