// Command promcheck validates a Prometheus text-exposition (version
// 0.0.4) document on stdin — the CI smoke gate for the /metrics/prom
// endpoint. Checks:
//
//   - every non-comment line is a sample: a legal metric name, an
//     optional well-formed {label="value"} set, and a float value
//   - every sample belongs to a family declared by a preceding # TYPE
//     line (histogram samples may use the _bucket/_sum/_count suffixes)
//   - histogram _bucket series are cumulative in le order and close
//     with le="+Inf"
//   - every metric name passed as an argument is present with at least
//     one sample
//
// Exit status is nonzero on any violation.
//
// Usage:
//
//	curl -s localhost:8077/metrics/prom | go run ./scripts/promcheck engine_decisions_total
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := check(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

type histState struct {
	prevCum   int64
	prevLe    float64
	sawInf    bool
	sawBucket bool
}

func check(required []string) error {
	types := map[string]string{} // family -> counter|gauge|histogram
	seen := map[string]bool{}    // sample names with >= 1 sample
	hists := map[string]*histState{}
	samples := 0

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := directive(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, typ, ok := family(name, types)
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE line", lineNo, name)
		}
		seen[name] = true
		samples++
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			if err := bucketStep(fam, labels, value, hists); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in input")
	}
	for fam, h := range hists {
		if h.sawBucket && !h.sawInf {
			return fmt.Errorf("histogram %s has buckets but no le=\"+Inf\" bucket", fam)
		}
	}
	for _, want := range required {
		if !seen[want] {
			return fmt.Errorf("required metric %s has no samples", want)
		}
	}
	fmt.Printf("promcheck: %d samples, %d families ok\n", samples, len(types))
	return nil
}

// directive validates a comment line and records # TYPE declarations.
func directive(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
		return nil // free-form comment
	}
	if fields[1] == "HELP" {
		return nil
	}
	if len(fields) != 4 {
		return fmt.Errorf("malformed TYPE line: %s", line)
	}
	name, typ := fields[2], fields[3]
	if !validName(name) {
		return fmt.Errorf("illegal metric name %q in TYPE line", name)
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("unknown metric type %q", typ)
	}
	types[name] = typ
	return nil
}

// parseSample splits `name{label="v",...} value` into its parts and
// validates each.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample: %s", line)
	}
	name = rest[:end]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("illegal metric name %q", name)
	}
	rest = rest[end:]
	labels = map[string]string{}
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set: %s", line)
		}
		for _, pair := range splitLabels(rest[1:close]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			k := pair[:eq]
			v, verr := strconv.Unquote(pair[eq+1:])
			if !validName(k) || verr != nil {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			labels[k] = v
		}
		rest = rest[close+1:]
	}
	val := strings.TrimSpace(rest)
	if strings.ContainsAny(val, " \t") {
		// A trailing timestamp is legal in 0.0.4; our exporter never
		// emits one, but tolerate it.
		val = strings.Fields(val)[0]
	}
	value, err = parseValue(val)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in sample %s: %v", line, err)
	}
	return name, labels, value, nil
}

func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func parseValue(s string) (float64, error) {
	if s == "+Inf" || s == "-Inf" || s == "NaN" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// family resolves a sample name to its declared TYPE family: the name
// itself, or the histogram/summary base when the name carries a
// _bucket/_sum/_count suffix.
func family(name string, types map[string]string) (fam, typ string, ok bool) {
	if t, found := types[name]; found {
		return name, t, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, found := types[base]; found && (t == "histogram" || t == "summary") {
			return base, t, true
		}
	}
	return "", "", false
}

// bucketStep checks one histogram _bucket sample for le ordering and
// cumulative counts.
func bucketStep(fam string, labels map[string]string, value float64, hists map[string]*histState) error {
	le, ok := labels["le"]
	if !ok {
		return fmt.Errorf("histogram %s bucket without le label", fam)
	}
	h := hists[fam]
	if h == nil {
		h = &histState{prevLe: -1 << 62}
		hists[fam] = h
	}
	var bound float64
	if le == "+Inf" {
		h.sawInf = true
		bound = 1 << 62
	} else {
		var err error
		if bound, err = strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("histogram %s bucket le=%q does not parse", fam, le)
		}
	}
	if h.sawBucket && bound <= h.prevLe {
		return fmt.Errorf("histogram %s buckets out of le order (%q after %g)", fam, le, h.prevLe)
	}
	cum := int64(value)
	if h.sawBucket && cum < h.prevCum {
		return fmt.Errorf("histogram %s bucket counts not cumulative (%d after %d)", fam, cum, h.prevCum)
	}
	h.sawBucket = true
	h.prevLe = bound
	h.prevCum = cum
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
