package agenp_test

import (
	"os"
	"testing"

	"agenp/internal/polcheck"
)

// TestPolcheckLatencyGuard is the CI regression gate for the symbolic
// verifier (set AGENP_BENCH_GUARD=1 to run): analyzing a 100-policy set
// must stay sub-millisecond, since the AMS runs the same analysis
// inline on every regeneration and coalition import when the
// verification gate is enabled. The pairwise sweep is quadratic in
// policies; the budget holds because region intersections fail fast on
// the first disjoint slot — a regression to eager materialization shows
// up as a ~100x blowout, not a near miss.
func TestPolcheckLatencyGuard(t *testing.T) {
	if os.Getenv("AGENP_BENCH_GUARD") == "" {
		t.Skip("set AGENP_BENCH_GUARD=1 to run the latency guard")
	}
	ps := polcheckFixture(100)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rep := polcheck.AnalyzeSet(ps, polcheck.Options{}); len(rep.Findings) != 0 {
				b.Fatalf("fixture has findings: %v", rep)
			}
		}
	})
	nsPerOp := float64(res.NsPerOp())
	t.Logf("AnalyzeSet(100 policies): %.0f ns/op", nsPerOp)
	if nsPerOp > 1e6 {
		t.Fatalf("AnalyzeSet at 100 policies takes %.2f ms/op, above the 1 ms budget", nsPerOp/1e6)
	}
}
