package agenp_test

import (
	"encoding/json"
	"os"
	"testing"

	framework "agenp/internal/agenp"
	"agenp/internal/engine"
)

// TestPDPThroughputGuard is the CI regression gate for the compiled
// decision path (set AGENP_BENCH_GUARD=1 to run): it re-measures the
// seed interpreter path against the compiled engine in-process and
// fails if the speedup falls below the 5x tentpole target, or below a
// third of the ratio recorded in BENCH_4.json (a deliberately tolerant
// noise threshold — CI machines are slower and noisier than the
// recording machine, but a real regression to the copy-per-request
// path shows up as a ~100x ratio collapse, not a 3x one).
func TestPDPThroughputGuard(t *testing.T) {
	if os.Getenv("AGENP_BENCH_GUARD") == "" {
		t.Skip("set AGENP_BENCH_GUARD=1 to run the throughput guard")
	}
	repo, reqs := pdpFixture(100)
	ti := &framework.TokenInterpreter{}

	interp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pols := repo.List()
			ti.Decide(pols, reqs[i%len(reqs)])
		}
	})
	eng := engine.New(repo, ti.CompileDecider)
	if _, err := eng.Refresh(); err != nil {
		t.Fatal(err)
	}
	compiled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Decide(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	interpNs := float64(interp.NsPerOp())
	engineNs := float64(compiled.NsPerOp())
	if engineNs <= 0 {
		t.Fatalf("degenerate measurement: engine %v ns/op", engineNs)
	}
	speedup := interpNs / engineNs
	t.Logf("interpreter %.0f ns/op, engine %.0f ns/op, speedup %.1fx", interpNs, engineNs, speedup)
	if speedup < 5 {
		t.Fatalf("compiled engine speedup %.1fx is below the 5x target", speedup)
	}

	var rec struct {
		BaselineNsPerOp map[string]float64 `json:"baseline_ns_per_op"`
	}
	data, err := os.ReadFile("BENCH_4.json")
	if err != nil {
		t.Logf("no BENCH_4.json baseline (%v); absolute gate only", err)
		return
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("BENCH_4.json: %v", err)
	}
	baseInterp := rec.BaselineNsPerOp["BenchmarkPDPThroughput/interpreter-list"]
	baseEngine := rec.BaselineNsPerOp["BenchmarkPDPThroughput/engine-single"]
	if baseInterp == 0 || baseEngine == 0 {
		t.Fatal("BENCH_4.json lacks the PDP baseline entries")
	}
	recorded := baseInterp / baseEngine
	if speedup < recorded/3 {
		t.Fatalf("speedup %.1fx regressed beyond noise from the recorded %.1fx", speedup, recorded)
	}
}
