// Package agenp is the public API of the AGENP library — a Go
// implementation of "Generative Policies for Coalition Systems — A
// Symbolic Learning Framework" (ICDCS 2019).
//
// The library provides, from the bottom up:
//
//   - an Answer Set Programming engine (parser, grounder, stable-model
//     solver) replacing the paper's clingo dependency;
//   - context-free grammars with an Earley parser and bounded generation;
//   - Answer Set Grammars (ASGs): CFGs annotated with ASP conditions,
//     the paper's core formalism (Section II);
//   - an ILASP-style inductive learner for ASP rules and for ASG
//     annotations from context-dependent examples (Definition 3);
//   - the generative policy model (GPM): ASG + context -> valid policies;
//   - the AGENP architecture of Figure 2 (PReP, PAdaP, PCP, PIP, PDP,
//     PEP) as a runnable autonomous management system;
//   - a coalition layer for policy sharing across parties (in-process
//     and TCP transports);
//   - policy quality assessment (Section V.A) and explainability
//     (Section V.B) over an XACML-style policy substrate;
//   - the paper's application domains: connected autonomous vehicles,
//     logistical resupply, access control, data sharing and federated
//     learning.
//
// Quick start — parse an answer set grammar, apply a context, and
// generate the valid policies:
//
//	model, err := agenp.ParseGPM(`
//	    policy -> "accept" task { :- task(overtake)@2, weather(rain). }
//	    policy -> "reject" task
//	    task -> "overtake" { task(overtake). }
//	    task -> "park" { task(park). }
//	`)
//	ctx, err := agenp.ParseASP("weather(rain).")
//	policies, err := model.Generate(ctx)
//
// Learning a model from examples (the Figure 1 workflow) goes through
// LearnASG; running a full autonomous management system through NewAMS.
// The deeper layers are importable directly from the internal packages'
// exported twins under this module; the symbols re-exported here are the
// stable surface.
package agenp

import (
	"agenp/internal/agenp"
	"agenp/internal/asg"
	"agenp/internal/asglearn"
	"agenp/internal/asp"
	"agenp/internal/aspcheck"
	"agenp/internal/core"
	"agenp/internal/engine"
	"agenp/internal/ilasp"
	"agenp/internal/intent"
	"agenp/internal/polcheck"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// Core model types.
type (
	// GPM is a generative policy model: a learned answer set grammar
	// plus generation bounds (the paper's primary contribution).
	GPM = core.GPM
	// Grammar is an answer set grammar (Definition 2).
	Grammar = asg.Grammar
	// HypothesisRule is a learnable annotation rule attached to a
	// production (an element of S_M in Definition 3).
	HypothesisRule = asg.HypothesisRule
	// Program is an ASP program.
	Program = asp.Program
	// Atom is an ASP atom.
	Atom = asp.Atom
	// Rule is an ASP rule.
	Rule = asp.Rule
	// AnswerSet is a stable model.
	AnswerSet = asp.AnswerSet
	// SolveOptions configures the ASP solver.
	SolveOptions = asp.SolveOptions
	// Policy is a generated policy with provenance.
	Policy = policy.Policy
	// Feedback is a validity observation used to evolve a model.
	Feedback = core.Feedback
	// Evolution is the outcome of evolving a GPM.
	Evolution = core.Evolution
)

// Static-analysis types (package aspcheck). LintProgram and LintGrammar
// run the checks; GPM.Lint runs them on a model under a context, and the
// AMS regeneration flow refuses models whose findings include errors.
type (
	// Finding is one positioned diagnostic.
	Finding = aspcheck.Finding
	// Findings is an ordered list of diagnostics.
	Findings = aspcheck.Findings
	// Severity ranks findings (Info, Warning, Error).
	Severity = aspcheck.Severity
)

// Severity levels of lint findings.
const (
	SeverityInfo    = aspcheck.Info
	SeverityWarning = aspcheck.Warning
	SeverityError   = aspcheck.Error
)

// Policy-verification types (package polcheck): symbolic analysis of
// XACML policy sets — shadowed/unreachable/redundant rules, permit/deny
// conflicts with validated witness requests, cross-policy subsumption,
// and generation change-impact — without enumerating the attribute
// domain. VerifyPolicySet analyzes a set, DiffPolicySets computes the
// symbolic diff of two generations, and AMSConfig.VerifyPolicies turns
// the same analysis into a regeneration/import gate inside the AMS.
type (
	// PolicySet is an XACML-style policy set, the verifier's input.
	PolicySet = xacml.PolicySet
	// VerifyReport is the outcome of verifying a policy set.
	VerifyReport = polcheck.Report
	// VerifyFinding is one verification result.
	VerifyFinding = polcheck.Finding
	// VerifyOptions bounds and tunes the verification.
	VerifyOptions = polcheck.Options
	// PolicySetDiff is the change-impact between two generations.
	PolicySetDiff = polcheck.Diff
)

// Policy-verification entry points.
var (
	// VerifyPolicySet symbolically verifies a policy set.
	VerifyPolicySet = polcheck.AnalyzeSet
	// DiffPolicySets computes the symbolic change-impact between two
	// policy-set generations.
	DiffPolicySets = polcheck.DiffSets
	// ParsePolicies parses a corpus of textual policy blocks.
	ParsePolicies = xacml.ParsePolicies
)

// Learning types.
type (
	// ASGExample is a context-dependent string example ⟨s, C⟩.
	ASGExample = asglearn.Example
	// ASGTask is a context-dependent ASG learning task (Definition 3).
	ASGTask = asglearn.Task
	// ILPExample is an ILASP-style partial-interpretation example.
	ILPExample = ilasp.Example
	// ILPTask is an ILASP-style learning task.
	ILPTask = ilasp.Task
	// Bias is a mode-declaration language bias.
	Bias = ilasp.Bias
	// LearnOptions configures hypothesis search.
	LearnOptions = ilasp.LearnOptions
)

// Framework types.
type (
	// AMS is an autonomous management system (Figure 2).
	AMS = agenp.AMS
	// AMSConfig wires an AMS.
	AMSConfig = agenp.Config
	// Interpreter maps generated policies to request decisions.
	Interpreter = agenp.Interpreter
	// Request is an attribute-based access/action request.
	Request = xacml.Request
	// Decision is a policy decision outcome.
	Decision = xacml.Decision
	// DecisionEngine is the compiled, hot-swappable decision engine that
	// serves the PDP: policies compile once per repository generation and
	// every Decide is lock-free against the published snapshot.
	DecisionEngine = engine.Engine
	// DecisionResult is one batch decision from the engine.
	DecisionResult = engine.Result
)

// ErrNoPolicy is reported by Decide when no policies are installed.
var ErrNoPolicy = agenp.ErrNoPolicy

// Constructors and entry points.
var (
	// ParseASP parses an ASP program.
	ParseASP = asp.Parse
	// ParseASG parses an answer set grammar.
	ParseASG = asg.ParseASG
	// ParseGPM parses an ASG source into a generative policy model.
	ParseGPM = core.ParseGPM
	// NewGPM wraps a grammar as a GPM.
	NewGPM = core.New
	// Solve grounds and solves an ASP program.
	Solve = asp.Solve
	// LintProgram statically analyzes a parsed ASP program.
	LintProgram = aspcheck.AnalyzeProgram
	// LintGrammar statically analyzes an answer set grammar.
	LintGrammar = aspcheck.AnalyzeGrammar
	// NewAMS assembles an autonomous management system.
	NewAMS = agenp.New
	// NewRequest builds an empty request.
	NewRequest = xacml.NewRequest
	// CompileIntent compiles a controlled-English policy intent document
	// into an answer set grammar (the paper's "from natural language to
	// grammar-based policies" direction).
	CompileIntent = intent.CompileSource
)

// LearnASG solves a context-dependent ASG learning task: given an
// initial grammar, a hypothesis space and examples, it returns the
// learned grammar (the Figure 1 workflow).
func LearnASG(initial *Grammar, space []HypothesisRule, examples []ASGExample, opts LearnOptions) (*asglearn.Result, error) {
	task := &asglearn.Task{Initial: initial, Space: space, Examples: examples}
	return task.Learn(opts)
}

// Version reports the library version.
const Version = "1.0.0"
