module agenp

go 1.22
