// Lint: static analysis gating the policy pipeline. A coalition partner
// hands over a generative policy model whose annotation contains an
// unsafe variable — a bug that would otherwise surface as a grounding
// failure (or worse, silently wrong generation) deep inside the AMS.
// The aspcheck pass catches it up front with exact positions, the AMS
// refuses to activate the model, and a corrected model sails through.
package main

import (
	"fmt"
	"log"

	"agenp"
)

// brokenGrammar's second annotation derives priority(P) without binding
// P: grant(R, P) is unsafe (P occurs only in the head).
const brokenGrammar = `
policy -> "share" resource {
  :- not allowed@2.
}
resource -> "logistics" {
  allowed :- clearance(low).
  grant(R, P) :- resource(R).
}
`

const fixedGrammar = `
policy -> "share" resource {
  :- not allowed@2.
}
resource -> "logistics" {
  allowed :- clearance(low).
  grant(R, P) :- resource(R), priority(R, P).
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Lint the incoming model before it goes anywhere near the AMS.
	broken, err := agenp.ParseASG(brokenGrammar)
	if err != nil {
		return err
	}
	findings := agenp.LintGrammar(broken)
	fmt.Println("incoming model:")
	for _, f := range findings {
		fmt.Println(" ", f)
	}
	if !findings.HasErrors() {
		return fmt.Errorf("expected the broken model to be rejected")
	}
	fmt.Println("=> rejected:", findings.Summary())

	// The same gate runs inside the AMS: a GPM with lint errors never
	// replaces the installed policies.
	model := agenp.NewGPM(broken)
	if fs := model.Lint(nil); fs.HasErrors() {
		fmt.Println("=> AMS would refuse to regenerate from this model")
	}

	// The corrected model passes (the remaining findings are warnings
	// about context-supplied predicates, which is expected: clearance,
	// resource and priority arrive with the deployment context).
	fixed, err := agenp.ParseASG(fixedGrammar)
	if err != nil {
		return err
	}
	ctx, err := agenp.ParseASP("clearance(low). resource(logistics). priority(logistics, 1).")
	if err != nil {
		return err
	}
	fixedFindings := agenp.NewGPM(fixed).Lint(ctx)
	fmt.Println("\nfixed model under the deployment context:")
	if len(fixedFindings) == 0 {
		fmt.Println("  no findings")
	}
	for _, f := range fixedFindings {
		fmt.Println(" ", f)
	}
	if fixedFindings.HasErrors() {
		return fmt.Errorf("fixed model still has errors")
	}

	policies, err := agenp.NewGPM(fixed).Generate(ctx)
	if err != nil {
		return err
	}
	fmt.Println("\ngenerated policies:")
	for _, p := range policies {
		fmt.Printf("  %s: %s\n", p.ID, p.Text())
	}
	return nil
}
