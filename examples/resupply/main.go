// Resupply example (paper Section IV.B): convoy route policies learned
// from accumulating mission outcomes, plus context-dependent plan
// generation from the resupply answer set grammar.
package main

import (
	"fmt"
	"log"

	"agenp/internal/apps/resupply"
	"agenp/internal/asg"
	"agenp/internal/ilasp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Learning from experience: accuracy as missions accumulate.
	all := resupply.Generate(21, 400)
	test := all[300:]
	fmt.Println("policy accuracy as missions accumulate:")
	for _, n := range []int{4, 8, 16, 32, 64} {
		learned, err := resupply.Learn(all[:n], ilasp.LearnOptions{})
		if err != nil {
			return err
		}
		acc, err := learned.Accuracy(test)
		if err != nil {
			return err
		}
		fmt.Printf("  %3d missions -> %.3f (%d rules)\n", n, acc, len(learned.Result.Hypothesis))
	}

	learned, err := resupply.Learn(all[:64], ilasp.LearnOptions{})
	if err != nil {
		return err
	}
	fmt.Println("final mission policy:")
	for _, r := range learned.Result.Hypothesis {
		fmt.Printf("  %s\n", r.String())
	}

	// Plan generation from the ASG under two contexts.
	g, err := resupply.Grammar()
	if err != nil {
		return err
	}
	for _, m := range []resupply.Mission{
		{Threat: "low", Escort: 3},
		{Threat: "high", Escort: 3},
	} {
		plans, err := g.WithContext(m.EnvContext()).Generate(asg.GenerateOptions{MaxNodes: 12})
		if err != nil {
			return err
		}
		fmt.Printf("valid plans under threat=%s:\n", m.Threat)
		if len(plans) == 0 {
			fmt.Println("  (none — hold at base)")
		}
		for _, p := range plans {
			fmt.Printf("  %s\n", p.Text())
		}
	}
	return nil
}
