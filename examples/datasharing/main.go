// Data-sharing example (paper Sections IV.D and IV.E): learn sharing
// policies from labelled offers, share generated policies across a
// two-party coalition over an in-process bus (CASWiki style), and gate a
// federated-learning fusion loop with the learned policy.
package main

import (
	"fmt"
	"log"
	"time"

	"agenp/internal/apps/datashare"
	"agenp/internal/apps/federated"
	"agenp/internal/asp"
	"agenp/internal/coalition"
	"agenp/internal/core"
	"agenp/internal/ilasp"

	framework "agenp/internal/agenp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Learn the sharing policy from labelled offers.
	offers := datashare.Generate(13, 260)
	learned, err := datashare.Learn(offers[:60], ilasp.LearnOptions{})
	if err != nil {
		return err
	}
	acc, err := learned.Accuracy(offers[60:])
	if err != nil {
		return err
	}
	fmt.Printf("learned sharing policy (test accuracy %.3f):\n", acc)
	for _, r := range learned.Result.Hypothesis {
		fmt.Printf("  %s\n", r.String())
	}

	// Coalition sharing: a permissive party's generated policies are
	// vetted by a stricter partner's PCP.
	bus := coalition.NewBus()
	defer func() { _ = bus.Close() }()
	mkParty := func(name, ctxSrc string) (*coalition.Party, error) {
		model, err := core.ParseGPM(datashare.GrammarSource)
		if err != nil {
			return nil, err
		}
		ctx, err := asp.Parse(ctxSrc)
		if err != nil {
			return nil, err
		}
		ams, err := framework.New(framework.Config{
			Name:    name,
			Model:   model,
			Context: &framework.StaticContext{Program: ctx},
			Interpreter: &framework.TokenInterpreter{
				PermitVerbs: []string{"share"},
				DenyVerbs:   []string{"withhold"},
			},
		})
		if err != nil {
			return nil, err
		}
		return coalition.Join(ams, bus)
	}
	alpha, err := mkParty("alpha", "trust(high). quality(5).")
	if err != nil {
		return err
	}
	defer alpha.Leave()
	bravo, err := mkParty("bravo", "trust(medium). quality(5).")
	if err != nil {
		return err
	}
	defer bravo.Leave()
	if _, _, err := alpha.AMS.Regenerate(); err != nil {
		return err
	}
	if err := alpha.SharePolicies(); err != nil {
		return err
	}
	total := alpha.AMS.Repository().Len()
	for deadline := time.Now().Add(3 * time.Second); ; {
		i, r := bravo.ImportStats()
		if i+r == total || time.Now().After(deadline) {
			fmt.Printf("bravo adopted %d and rejected %d of alpha's %d policies\n", i, r, total)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Federated learning: gate model updates with a learned policy.
	history := federated.Generate(7, 60)
	future := federated.Generate(8, 120)
	gate, err := federated.Learn(history, ilasp.LearnOptions{})
	if err != nil {
		return err
	}
	withPolicy, _, err := federated.Simulate(future, gate)
	if err != nil {
		return err
	}
	acceptAll, _, err := federated.Simulate(future, federated.AcceptAll())
	if err != nil {
		return err
	}
	oracle, _, err := federated.Simulate(future, federated.Oracle())
	if err != nil {
		return err
	}
	fmt.Printf("federated fusion quality after %d rounds: accept-all %.2f, learned policy %.2f, oracle %.2f\n",
		len(future), acceptAll, withPolicy, oracle)
	return nil
}
