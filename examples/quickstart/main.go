// Quickstart: the Figure 1 workflow in ~60 lines. An initial generative
// policy model (an answer set grammar with syntax only), examples of
// which policies are valid in which contexts, the ILASP-based learner,
// and the learned model generating context-dependent policy sets.
package main

import (
	"fmt"
	"log"

	"agenp"
	"agenp/internal/asglearn"
)

const initialGrammar = `
# A vehicle policy is "accept <task>" or "reject <task>".
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	initial, err := agenp.ParseASG(initialGrammar)
	if err != nil {
		return err
	}

	// The hypothesis space S_M: constraints the learner may attach to
	// the "accept" production (production 0).
	space := []agenp.HypothesisRule{
		asglearn.MustParseHypothesisRule(":- task(overtake)@2, weather(rain).", 0),
		asglearn.MustParseHypothesisRule(":- weather(rain).", 0),
		asglearn.MustParseHypothesisRule(":- task(park)@2.", 0),
	}

	rain, err := agenp.ParseASP("weather(rain).")
	if err != nil {
		return err
	}
	clear, err := agenp.ParseASP("weather(clear).")
	if err != nil {
		return err
	}

	// Context-dependent examples ⟨policy string, context⟩ (Definition 3).
	examples := []agenp.ASGExample{
		{ID: "e1", Tokens: []string{"accept", "overtake"}, Context: clear, Positive: true},
		{ID: "e2", Tokens: []string{"accept", "park"}, Context: rain, Positive: true},
		{ID: "e3", Tokens: []string{"accept", "overtake"}, Context: rain, Positive: false},
		{ID: "e4", Tokens: []string{"reject", "overtake"}, Context: rain, Positive: true},
	}

	res, err := agenp.LearnASG(initial, space, examples, agenp.LearnOptions{})
	if err != nil {
		return err
	}
	fmt.Println("learned annotation rules:")
	for _, h := range res.Hypothesis {
		fmt.Printf("  %s\n", h)
	}

	// The learned GPM generates different policy sets per context.
	model := agenp.NewGPM(res.Grammar)
	for name, ctx := range map[string]*agenp.Program{"rain": rain, "clear": clear} {
		policies, err := model.Generate(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("policies valid in %s:\n", name)
		for _, p := range policies {
			fmt.Printf("  %s\n", p.Text())
		}
	}
	return nil
}
