// Access-control example (paper Section IV.C): learn XACML-style
// policies from a log of access requests and decisions, render them in
// XACML form (Figure 3a), assess their quality (Section V.A), and
// explain a denial with a counterfactual (Section V.B).
package main

import (
	"fmt"
	"log"

	"agenp/internal/explain"
	"agenp/internal/ilasp"
	"agenp/internal/quality"
	"agenp/internal/workload"
	"agenp/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A "log of past decisions taken by administrators": the synthetic
	// conformance-style dataset.
	ds := workload.GenXACML(17, 80)
	fmt.Printf("dataset: %d request/decision examples over attributes %v\n",
		len(ds.Examples), xacml.BiasFromRequests(requests(ds)).Attributes())

	// Learn the policy from the log.
	task := &ilasp.Task{
		Bias:     workload.AccessBias(ds.Schema, nil),
		Examples: workload.LearningExamples(ds.Examples, 0),
	}
	res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 4})
	if err != nil {
		return err
	}
	learned, err := xacml.PolicyFromHypothesis(res.Hypothesis, "learned")
	if err != nil {
		return err
	}
	fmt.Println("\nlearned policy (cf. Fig. 3a):")
	fmt.Print(learned.Format())

	// Quality assessment over the attribute domain.
	domain := quality.FromBias(xacml.BiasFromRequests(requests(ds)))
	rep := quality.Assess(learned, domain, quality.Options{})
	fmt.Println("\nquality assessment:")
	fmt.Print(rep.String())

	// Explain a denial with a counterfactual.
	denied := xacml.NewRequest().
		Set(xacml.Subject, "role", xacml.S("guest")).
		Set(xacml.Subject, "age", xacml.I(30)).
		Set(xacml.Resource, "type", xacml.S("report")).
		Set(xacml.Action, "id", xacml.S("write"))
	trace := explain.Explain(learned, denied)
	fmt.Println("decision trace:")
	fmt.Print(trace.String())
	cfs := explain.Counterfactuals(learned, denied, domain, explain.CounterfactualOptions{
		Want: xacml.DecisionPermit,
	})
	fmt.Println("counterfactual explanations:")
	for _, cf := range cfs {
		fmt.Printf("  %s\n", cf)
	}
	return nil
}

func requests(ds *workload.Dataset) []xacml.Request {
	out := make([]xacml.Request, len(ds.Examples))
	for i, e := range ds.Examples {
		out[i] = e.Request
	}
	return out
}
