// CAV example (paper Section IV.A): a connected autonomous vehicle runs
// the full AGENP loop — the PReP generates driving-task policies from
// the GPM, the PDP/PEP serve requests and monitor outcomes, operator
// feedback feeds the PAdaP, and the model is adapted so the bad policies
// disappear. It then compares the symbolic learner against a decision
// tree on the same scenarios (the paper's sample-efficiency claim).
package main

import (
	"fmt"
	"log"

	"agenp"
	"agenp/internal/apps/cav"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
	"agenp/internal/xacml"

	framework "agenp/internal/agenp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: the AGENP adaptation loop ---
	model, err := agenp.ParseGPM(cav.LearnableGrammarSource)
	if err != nil {
		return err
	}
	space, err := cav.HypothesisSpace()
	if err != nil {
		return err
	}
	rainy := cav.Scenario{Weather: "rain", LOA: 5, RegionMin: 1}
	ctx := rainy.EnvContext()
	ctx.Extend(cav.Background())

	ams, err := agenp.NewAMS(framework.Config{
		Name:    "cav-1",
		Model:   model,
		Space:   space,
		Context: &framework.StaticContext{Program: ctx},
		Interpreter: &framework.TokenInterpreter{
			PermitVerbs: []string{"accept"},
			DenyVerbs:   []string{"reject"},
		},
	})
	if err != nil {
		return err
	}
	if _, _, err := ams.Regenerate(); err != nil {
		return err
	}
	fmt.Printf("initial repository: %d policies\n", ams.Repository().Len())

	// Operator feedback: accepting an overtake in rain was wrong.
	for i := 0; i < 3; i++ {
		if _, err := ams.Observe(agenp.Feedback{
			Tokens: []string{"accept", "overtake"}, Context: ctx, Valid: false,
		}); err != nil {
			return err
		}
	}
	fmt.Printf("after adaptation: %d model versions, %d policies\n",
		ams.Models().Version(), ams.Repository().Len())
	d, pid, err := ams.Decide(xacml.NewRequest().Set(xacml.Action, "id", xacml.S("overtake")))
	if err != nil {
		return err
	}
	fmt.Printf("overtake request in rain now decides %s (policy %s)\n", d, pid)

	// --- Part 2: symbolic vs shallow ML on the same task ---
	scenarios := cav.Generate(7, 250)
	train, test := workload.Split(scenarios, 25)
	learned, err := cav.Learn(train, ilasp.LearnOptions{})
	if err != nil {
		return err
	}
	symAcc, err := learned.Accuracy(test)
	if err != nil {
		return err
	}
	tree := mlbase.TrainID3(cav.Instances(train), mlbase.TreeOptions{})
	treeAcc := mlbase.Accuracy(tree, cav.Instances(test))
	fmt.Printf("from %d examples: symbolic %.3f vs decision tree %.3f\n", len(train), symAcc, treeAcc)
	fmt.Println("learned driving policy rules:")
	for _, r := range learned.Result.Hypothesis {
		fmt.Printf("  %s\n", r.String())
	}
	return nil
}
