// Intent example (paper Section III.B research direction): compile a
// controlled-English policy intent document into an answer set grammar,
// then drive it like any other generative policy model — including
// feeding it to a live AMS.
package main

import (
	"fmt"
	"log"

	"agenp"
	"agenp/internal/asg"
	"agenp/internal/intent"
	"agenp/internal/xacml"

	framework "agenp/internal/agenp"
)

const doc = `
# Convoy escort drone doctrine, as written by the operator.
policy: launch or hold drone
drone: scout, relay, strike
never launch strike when rules_of_engagement is tight
never launch any drone when weather is storm
require battery of at least 40 to launch any drone
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	grammar, err := intent.CompileSource(doc)
	if err != nil {
		return err
	}
	fmt.Println("compiled grammar:")
	fmt.Print(grammar.String())

	// Generate the valid policies in two situations.
	for _, situation := range []struct {
		name, ctx string
	}{
		{name: "permissive", ctx: "rules_of_engagement(loose). weather(clear). battery(80)."},
		{name: "tight ROE, low battery", ctx: "rules_of_engagement(tight). weather(clear). battery(30)."},
	} {
		prog, err := agenp.ParseASP(situation.ctx)
		if err != nil {
			return err
		}
		out, err := grammar.WithContext(prog).Generate(asg.GenerateOptions{MaxNodes: 10})
		if err != nil {
			return err
		}
		fmt.Printf("valid policies when %s:\n", situation.name)
		for _, p := range out {
			fmt.Printf("  %s\n", p.Text())
		}
	}

	// The compiled grammar is a drop-in GPM for a live AMS.
	ctxProg, err := agenp.ParseASP("rules_of_engagement(tight). weather(clear). battery(80).")
	if err != nil {
		return err
	}
	ams, err := agenp.NewAMS(framework.Config{
		Name:    "escort-drone",
		Model:   agenp.NewGPM(grammar),
		Context: &framework.StaticContext{Program: ctxProg},
		Interpreter: &framework.TokenInterpreter{
			PermitVerbs: []string{"launch"},
			DenyVerbs:   []string{"hold"},
		},
	})
	if err != nil {
		return err
	}
	if _, _, err := ams.Regenerate(); err != nil {
		return err
	}
	// Keep only the affirmative policies so the PDP answers "may this
	// drone launch?" (hold policies would deny-override everything).
	for _, p := range ams.Repository().List() {
		if p.Tokens[0] == "hold" {
			ams.Repository().Delete(p.ID)
		}
	}
	for _, drone := range []string{"scout", "strike"} {
		d, pid, err := ams.Decide(agenp.NewRequest().Set(xacml.Action, "id", xacml.S(drone)))
		if err != nil {
			return err
		}
		fmt.Printf("request %-6s -> %s (%s)\n", drone, d, pid)
	}
	return nil
}
