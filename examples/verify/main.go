// Verify: symbolic policy-set verification without enumerating the
// attribute domain. A coalition partner's policy set carries two seeded
// defects — a rule shadowed by an earlier first-applicable rule, and a
// permit/deny pair that overlaps on cleared subjects exporting sigint
// material. polcheck finds both by pairwise interval/set reasoning over
// the policies' constraint vectors, produces a concrete witness request
// for the conflict, and the witness reproduces through the compiled
// decision engine. A symbolic diff of two policy generations then shows
// change-impact analysis: exactly which request region flipped when the
// model was adapted.
//
// The same verifier runs as the `polcheck` CLI, as the AMS regeneration
// and import gate (agenp.Config.VerifyPolicies), and behind agenpd's
// /verify endpoint.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"agenp/internal/engine"
	"agenp/internal/polcheck"
	"agenp/internal/xacml"
)

//go:embed clean.xpol
var cleanSrc string

//go:embed conflict.xpol
var conflictSrc string

//go:embed gen-a.xpol
var genASrc string

//go:embed gen-b.xpol
var genBSrc string

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func parseSet(id, src string) (*xacml.PolicySet, error) {
	pols, err := xacml.ParsePolicies(src)
	if err != nil {
		return nil, err
	}
	return &xacml.PolicySet{ID: id, Policies: pols, Combining: xacml.DenyOverrides}, nil
}

func run() error {
	// A clean set verifies silently.
	clean, err := parseSet("clean", cleanSrc)
	if err != nil {
		return err
	}
	fmt.Println("clean set:")
	fmt.Println(" ", polcheck.AnalyzeSet(clean, polcheck.Options{}))

	// The seeded set: polcheck reports the shadowed rule and the
	// conflict pair, each located by policy/rule id.
	seeded, err := parseSet("seeded", conflictSrc)
	if err != nil {
		return err
	}
	rep := polcheck.AnalyzeSet(seeded, polcheck.Options{})
	fmt.Println("\nseeded set:")
	for _, f := range rep.Findings {
		fmt.Println(" ", f)
	}
	if !rep.HasErrors() {
		return fmt.Errorf("expected the seeded conflict to be reported")
	}

	// The conflict finding carries a concrete witness request. Replay it
	// through the compiled decision engine: the request really does
	// match both rules, and deny-overrides settles it to Deny — the
	// verifier's claim is not just symbolic.
	conflict := rep.Conflicts()[0]
	dec, err := engine.NewXACMLDecider(seeded)
	if err != nil {
		return err
	}
	decision, policyID := dec.Decide(conflict.Request)
	fmt.Printf("\nwitness %s replayed through the engine: %s by %s (verified=%v)\n",
		conflict.Witness, decision, policyID, conflict.Verified)

	// Change-impact between two generations: after adaptation the model
	// withholds logistics data. The diff names the flipped region
	// symbolically — no request enumeration — and validates a witness
	// against both generations.
	genA, err := parseSet("gen-a", genASrc)
	if err != nil {
		return err
	}
	genB, err := parseSet("gen-b", genBSrc)
	if err != nil {
		return err
	}
	d, err := polcheck.DiffSets(genA, genB, polcheck.Options{})
	if err != nil {
		return err
	}
	fmt.Println("\ngeneration diff (gen-a -> gen-b):")
	for _, fl := range d.Flips {
		fmt.Println(" ", fl)
	}
	if same, err := polcheck.DiffSets(genA, genA, polcheck.Options{}); err != nil {
		return err
	} else if same.Changed() {
		return fmt.Errorf("self-diff reported changes")
	}
	fmt.Println("self-diff of gen-a: no decision changes")
	return nil
}
