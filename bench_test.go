// Benchmarks regenerating every experiment of DESIGN.md (one per paper
// figure/claim, BenchmarkE1..BenchmarkE12) plus the ablation benchmarks
// for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package agenp_test

import (
	"fmt"
	"testing"
	"time"

	framework "agenp/internal/agenp"
	"agenp/internal/apps/cav"
	"agenp/internal/apps/datashare"
	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/cfg"
	"agenp/internal/engine"
	"agenp/internal/experiments"
	"agenp/internal/ilasp"
	"agenp/internal/obs"
	"agenp/internal/polcheck"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// mustASG builds the aⁿbⁿcⁿ grammar used by the membership ablation.
func mustASG(b *testing.B) *asg.Grammar {
	b.Helper()
	g, err := asg.ParseASG(`
start -> as bs cs {
    :- size(X)@1, size(Y)@2, X != Y.
    :- size(X)@2, size(Y)@3, X != Y.
}
as -> "a" as { size(X + 1) :- size(X)@2. }
as -> ε { size(0). }
bs -> "b" bs { size(X + 1) :- size(X)@2. }
bs -> ε { size(0). }
cs -> "c" cs { size(X + 1) :- size(X)@2. }
cs -> ε { size(0). }
`)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func asgAcceptOptions() asg.AcceptOptions { return asg.AcceptOptions{} }

func asgGenerateOptions(maxNodes int) asg.GenerateOptions {
	return asg.GenerateOptions{MaxNodes: maxNodes}
}

// benchExperiment runs one experiment per iteration in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Workflow(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Pipeline(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3CleanLearning(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4Overfitting(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5Restrictions(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6Noise(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7LearningCurve(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE9Quality(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Explain(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Coalition(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Resupply(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Serving(b *testing.B)      { benchExperiment(b, "E13") }

// E8 (scalability) is itself a measurement sweep; the bench variants
// below expose its components at benchmark granularity.

func BenchmarkE8ScalabilityLearner(b *testing.B) {
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("examples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			scenarios := cav.Generate(1, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cav.Learn(scenarios, ilasp.LearnOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8ScalabilitySolver(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("cycle=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			prog := coloringProgram(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := asp.Solve(prog, asp.SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func coloringProgram(n int) *asp.Program {
	src := "col(r). col(g). col(b).\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("node(n%d). edge(n%d, n%d).\n", i, i, (i+1)%n)
	}
	src += `
		{color(N, C)} :- node(N), col(C).
		colored(N) :- color(N, C).
		:- node(N), not colored(N).
		:- color(N, C1), color(N, C2), C1 != C2.
		:- edge(X, Y), color(X, C), color(Y, C).
	`
	p, err := asp.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// --- ablation benchmarks (design choices from DESIGN.md) ---

// BenchmarkAblationSolverBranching compares NAF-atom branching against
// naive full-atom branching on the same program. Branching over NAF
// atoms is a DFS-engine concept, so both arms pin EngineDFS — the
// engines themselves are A/B'd by BenchmarkSolveEngines.
func BenchmarkAblationSolverBranching(b *testing.B) {
	prog := coloringProgram(4)
	for _, naive := range []bool{false, true} {
		name := "naf-only"
		if naive {
			name = "all-atoms"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := asp.SolveOptions{Engine: asp.EngineDFS, NaiveBranching: naive}
				if _, err := asp.Solve(prog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveEngines A/Bs the CDNL engine against the legacy DFS
// oracle on a tight constraint program (graph coloring) and a non-tight
// one (coloring plus a positive reachability loop that exercises the
// unfounded-set check).
func BenchmarkSolveEngines(b *testing.B) {
	nonTight := coloringProgram(6)
	extra, err := asp.Parse(`
		reach(n0).
		reach(Y) :- reach(X), edge(X, Y).
		reach(X) :- reach(Y), edge(X, Y).
		:- node(N), not reach(N).
	`)
	if err != nil {
		b.Fatal(err)
	}
	nonTight = asp.NewProgram(append(nonTight.Rules, extra.Rules...)...)
	cases := []struct {
		name string
		prog *asp.Program
	}{
		{"tight", coloringProgram(6)},
		{"nontight", nonTight},
	}
	for _, tc := range cases {
		for _, eng := range []asp.EngineKind{asp.EngineCDNL, asp.EngineDFS} {
			name := tc.name + "/cdnl"
			if eng == asp.EngineDFS {
				name = tc.name + "/dfs"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				g, err := asp.Ground(tc.prog, asp.GroundingOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sc := &asp.SolverScratch{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := asp.SolveGroundScratch(g, asp.SolveOptions{Engine: eng}, sc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// groundBenchCorpus is the join-heavy program set for the grounding
// benchmarks: recursive closure over a dense graph, filtered cross
// products, and arithmetic chains — the shapes where join planning
// (delta pinning, index probes, early filters) matters.
func groundBenchCorpus(b *testing.B) []*asp.Program {
	b.Helper()
	srcs := []string{
		// Filtered triple cross product.
		`a(1..12). b(1..12). c(1..12).
		 t(X,Y,Z) :- a(X), b(Y), c(Z), X < Y, Y < Z, Z < X + 6.`,
		// Arithmetic chain with binders and negation.
		`num(0).
		 num(N + 1) :- num(N), N < 80.
		 even(N) :- num(N), N \ 2 = 0.
		 odd(N) :- num(N), not even(N).
		 pair(X,Y) :- even(X), odd(Y), Y = X + 1.`,
		// Windowed self-join composed with itself: the second rule joins
		// a derived 4-wide band relation against itself through Y.
		`e(1..50).
		 w(X,Y) :- e(X), e(Y), X < Y, Y < X + 4.
		 v(X,Z) :- w(X,Y), w(Y,Z).`,
	}
	progs := make([]*asp.Program, len(srcs))
	for i, src := range srcs {
		p, err := asp.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		progs[i] = p
	}
	return progs
}

// BenchmarkGroundPrograms measures batch grounding over the join-heavy
// corpus: compiled grounding plans (default) against the greedy
// backtracking oracle (NaivePlan ablation).
func BenchmarkGroundPrograms(b *testing.B) {
	progs := groundBenchCorpus(b)
	for _, naivePlan := range []bool{false, true} {
		name := "planned"
		if naivePlan {
			name = "naive-plan"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range progs {
					if _, err := asp.Ground(p, asp.GroundingOptions{NaivePlan: naivePlan}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationGrounding compares semi-naive against naive
// re-instantiation on a recursive program.
func BenchmarkAblationGrounding(b *testing.B) {
	src := "num(0).\nnum(N + 1) :- num(N), N < 120.\neven(N) :- num(N), N \\ 2 = 0.\npair(X, Y) :- even(X), even(Y), X < Y, Y < 20.\n"
	prog, err := asp.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, naive := range []bool{false, true} {
		name := "semi-naive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := asp.Ground(prog, asp.GroundingOptions{Naive: naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLearnerPruning compares the set-cover fast path
// against the exhaustive subset search, both solving the same
// data-sharing task to optimality.
func BenchmarkAblationLearnerPruning(b *testing.B) {
	offers := datashare.Generate(2, 8)
	mkTask := func() *ilasp.Task {
		return &ilasp.Task{
			Bias:     datashare.Bias(),
			Examples: datashare.LearningExamples(offers, 0),
		}
	}
	// Establish the optimum once so both engines search to the same
	// bound.
	ref, err := mkTask().LearnIndependent(ilasp.LearnOptions{MaxRules: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast-path", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mkTask().LearnIndependent(ilasp.LearnOptions{MaxRules: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mkTask().Learn(ilasp.LearnOptions{MaxRules: 3, MaxCost: ref.Cost})
			if err != nil {
				b.Fatal(err)
			}
			if res.Cost != ref.Cost {
				b.Fatalf("engines disagree: %d vs %d", res.Cost, ref.Cost)
			}
		}
	})
}

// BenchmarkAblationMembership compares Earley-backed ASG membership
// against exhaustive generate-and-compare on the aⁿbⁿcⁿ grammar.
func BenchmarkAblationMembership(b *testing.B) {
	g := mustASG(b)
	tokens := []string{"a", "a", "b", "b", "c", "c"}
	b.Run("earley-membership", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, err := g.Accepts(tokens, asgAcceptOptions())
			if err != nil || !ok {
				b.Fatalf("accept = %v, %v", ok, err)
			}
		}
	})
	b.Run("generate-and-compare", func(b *testing.B) {
		b.ReportAllocs()
		want := "a a b b c c"
		for i := 0; i < b.N; i++ {
			found := false
			out, err := g.Generate(asgGenerateOptions(16))
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range out {
				if s.Text() == want {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("string not generated")
			}
		}
	})
}

// BenchmarkCoverageCheck measures one learner coverage check — the unit
// of work the search engine issues millions of times — as a full
// ground-and-solve of background ∪ hypothesis ∪ context on a CAV task.
func BenchmarkCoverageCheck(b *testing.B) {
	scenarios := cav.Generate(1, 20)
	task := &ilasp.Task{
		Background: cav.Background(),
		Bias:       cav.Bias(),
		Examples:   cav.LearningExamples(scenarios, 0),
	}
	res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 3})
	if err != nil {
		b.Fatal(err)
	}
	ex := task.Examples[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Covers(res.Hypothesis, ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInterning compares the interned, argument-indexed
// grounder against the string-keyed full-scan ablation
// (GroundingOptions.StringKeyed) on a join-heavy program where candidate
// lookup dominates.
func BenchmarkAblationInterning(b *testing.B) {
	src := ""
	for i := 0; i < 300; i++ {
		src += fmt.Sprintf("succ(%d, %d).\n", i, i+1)
	}
	src += "hop(X, Z) :- succ(X, Y), succ(Y, Z).\nskip(X, Z) :- hop(X, Y), hop(Y, Z).\n"
	prog, err := asp.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, sk := range []bool{false, true} {
		name := "interned-indexed"
		if sk {
			name = "string-keyed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := asp.Ground(prog, asp.GroundingOptions{StringKeyed: sk}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- PDP serving path (compile-once, serve-many) ---

// pdpFixture installs n token policies (half permit, half deny, across
// n/2 distinct actions so deny-overrides has work to do) and returns the
// repository plus a request mix of hits and misses.
func pdpFixture(n int) (*policy.Repository, []xacml.Request) {
	repo := policy.NewRepository()
	verbs := []string{"permit", "deny"}
	for i := 0; i < n; i++ {
		action := fmt.Sprintf("task-%03d", i/2)
		repo.Put(policy.Policy{
			ID:     fmt.Sprintf("p%03d", i),
			Tokens: []string{verbs[i%2], "do", action},
		})
	}
	var reqs []xacml.Request
	for i := 0; i < n/2; i++ {
		reqs = append(reqs, xacml.NewRequest().Set(xacml.Action, "id", xacml.S(fmt.Sprintf("do task-%03d", i))))
	}
	reqs = append(reqs, xacml.NewRequest().Set(xacml.Action, "id", xacml.S("do nothing")))
	return repo, reqs
}

// BenchmarkPDPThroughput compares the seed decision path (copy the
// repository, re-interpret every policy string per request) against the
// compiled DecisionEngine, single-request and batched, at 100 policies.
// BENCH_4.json records the results; the tentpole target is >= 5x on
// single-request throughput.
func BenchmarkPDPThroughput(b *testing.B) {
	const nPolicies = 100
	repo, reqs := pdpFixture(nPolicies)
	ti := &framework.TokenInterpreter{}

	b.Run("interpreter-list", func(b *testing.B) {
		// The pre-engine PDP: one full repository copy plus a linear
		// policy scan per request.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pols := repo.List()
			ti.Decide(pols, reqs[i%len(reqs)])
		}
	})

	eng := engine.New(repo, ti.CompileDecider)
	if _, err := eng.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.Run("engine-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Decide(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("engine-batch", func(b *testing.B) {
		b.ReportAllocs()
		const batch = 64
		buf := make([]xacml.Request, batch)
		var out []engine.Result
		for i := 0; i < b.N; i += batch {
			k := batch
			if rem := b.N - i; rem < k {
				k = rem
			}
			for j := 0; j < k; j++ {
				buf[j] = reqs[(i+j)%len(reqs)]
			}
			var err error
			out, err = eng.DecideBatch(buf[:k], out[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineRecorder measures the flight-recorder tax on the hot
// decision path: the engine-single loop with no recorder attached, with
// the agenpd deployment shape (a rolling window plus a sampling
// recorder at shift 10, recording every 1024th decision), and with full
// recording (shift 0: every decision pays digest, commit, and window
// observation). BENCH_6.json records the results; the CI gate is
// TestRecorderOverheadGuard, which re-measures off vs sampled in-process
// and fails beyond a 10% ratio.
func BenchmarkEngineRecorder(b *testing.B) {
	repo, reqs := pdpFixture(100)
	ti := &framework.TokenInterpreter{}
	run := func(b *testing.B, rec *obs.Recorder) {
		eng := engine.New(repo, ti.CompileDecider)
		if _, err := eng.Refresh(); err != nil {
			b.Fatal(err)
		}
		if rec != nil {
			eng.SetRecorder(rec)
			defer rec.Close()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Decide(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("recorder-off", func(b *testing.B) { run(b, nil) })
	b.Run("recorder-sampled", func(b *testing.B) {
		run(b, obs.NewRecorder(obs.RecorderOptions{
			SampleShift: 10,
			LatencySLO:  time.Millisecond,
			Window:      obs.NewRegistry().Window("decide"),
		}))
	})
	b.Run("recorder-full", func(b *testing.B) {
		run(b, obs.NewRecorder(obs.RecorderOptions{
			LatencySLO: time.Millisecond,
			Window:     obs.NewRegistry().Window("decide"),
		}))
	})
}

// BenchmarkXACMLEvaluate compares the tree-walk XACML evaluator against
// the compiled policy set (interned slots, memoized matches, target
// index) on a 100-policy set.
func BenchmarkXACMLEvaluate(b *testing.B) {
	ps := &xacml.PolicySet{ID: "bench", Combining: xacml.DenyOverrides}
	for i := 0; i < 100; i++ {
		ps.Policies = append(ps.Policies, &xacml.Policy{
			ID: fmt.Sprintf("p%03d", i),
			Target: xacml.Target{
				{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S(fmt.Sprintf("act-%03d", i))},
				{Category: xacml.Subject, Attr: "level", Op: xacml.OpGeq, Value: xacml.I(i % 5)},
			},
			Rules: []xacml.Rule{
				{ID: "allow", Effect: xacml.Permit},
				{ID: "deny-low", Effect: xacml.Deny, Condition: &xacml.Condition{
					Match: &xacml.Match{Category: xacml.Subject, Attr: "level", Op: xacml.OpLt, Value: xacml.I(2)},
				}},
			},
			Combining: xacml.DenyOverrides,
		})
	}
	var reqs []xacml.Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, xacml.NewRequest().
			Set(xacml.Action, "id", xacml.S(fmt.Sprintf("act-%03d", i*7%100))).
			Set(xacml.Subject, "level", xacml.I(i%6)))
	}

	b.Run("tree-walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ps.Evaluate(reqs[i%len(reqs)])
		}
	})
	cs, err := xacml.CompilePolicySet(ps)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		ev := cs.NewEvaluator()
		for i := 0; i < b.N; i++ {
			ev.Evaluate(reqs[i%len(reqs)])
		}
	})
}

// polcheckFixture builds a conflict-free n-policy set in the shape the
// verifier meets in production: per-action policies with a permit rule
// for cleared levels and a deny rule below the threshold.
func polcheckFixture(n int) *xacml.PolicySet {
	ps := &xacml.PolicySet{ID: "bench", Combining: xacml.DenyOverrides}
	for i := 0; i < n; i++ {
		ps.Policies = append(ps.Policies, &xacml.Policy{
			ID:        fmt.Sprintf("p%03d", i),
			Combining: xacml.DenyOverrides,
			Target: xacml.Target{
				{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S(fmt.Sprintf("act-%03d", i))},
			},
			Rules: []xacml.Rule{
				{ID: "deny-low", Effect: xacml.Deny, Target: xacml.Target{
					{Category: xacml.Subject, Attr: "level", Op: xacml.OpLt, Value: xacml.I(2)},
				}},
				{ID: "allow", Effect: xacml.Permit, Target: xacml.Target{
					{Category: xacml.Subject, Attr: "level", Op: xacml.OpGeq, Value: xacml.I(2)},
				}},
			},
		})
	}
	return ps
}

// BenchmarkPolcheck measures the symbolic policy-set verifier
// (internal/polcheck) — full AnalyzeSet including the pairwise
// cross-policy sweep and subsumption, and the generation diff. The
// TestPolcheckLatencyGuard gate keeps analysis sub-millisecond at 100
// policies.
func BenchmarkPolcheck(b *testing.B) {
	for _, n := range []int{10, 100} {
		ps := polcheckFixture(n)
		b.Run(fmt.Sprintf("analyze=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if rep := polcheck.AnalyzeSet(ps, polcheck.Options{}); len(rep.Findings) != 0 {
					b.Fatalf("fixture has findings: %v", rep)
				}
			}
		})
	}
	old, new := polcheckFixture(100), polcheckFixture(100)
	new.Policies[50].Rules[1].Effect = xacml.Deny // one generation flip
	b.Run("diff=100", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := polcheck.DiffSets(old, new, polcheck.Options{SkipValidation: true})
			if err != nil || !d.Changed() {
				b.Fatalf("diff = %v, %v", d, err)
			}
		}
	})
}

// --- micro-benchmarks of the substrates ---

func BenchmarkSolverStratified(b *testing.B) {
	b.ReportAllocs()
	src := "edge(a,b). edge(b,c). edge(c,d). edge(d,e).\npath(X,Y) :- edge(X,Y).\npath(X,Z) :- edge(X,Y), path(Y,Z).\nunreach(X) :- edge(X, Y), not path(Y, X).\n"
	prog, err := asp.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asp.Solve(prog, asp.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEarleyParse(b *testing.B) {
	b.ReportAllocs()
	g, err := cfg.ParseGrammar("e -> t | t \"+\" e\nt -> \"a\" | \"(\" e \")\"\n")
	if err != nil {
		b.Fatal(err)
	}
	tokens := cfg.Tokenize("( a + a ) + ( a + ( a + a ) ) + a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.Accepts(tokens) {
			b.Fatal("reject")
		}
	}
}

func BenchmarkBiasSpaceGeneration(b *testing.B) {
	b.ReportAllocs()
	bias := cav.Bias()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bias.Space(); err != nil {
			b.Fatal(err)
		}
	}
}
