package agenp_test

import (
	"os"
	"testing"
	"time"

	framework "agenp/internal/agenp"
	"agenp/internal/engine"
	"agenp/internal/obs"
)

// TestRecorderOverheadGuard is the CI regression gate for the decision
// flight recorder (set AGENP_BENCH_GUARD=1 to run): it re-measures
// engine.Decide in-process with no recorder attached against the agenpd
// deployment shape (sampling recorder at shift 10 feeding a rolling
// window) and fails if the sampled path costs more than 10% over the
// bare path, or if any recorder configuration allocates on the hot
// path. Full recording (shift 0) pays digest + commit + window
// observation per decision, so it gets an allocation gate only — its
// ns/op is recorded in BENCH_6.json for reference, not gated.
func TestRecorderOverheadGuard(t *testing.T) {
	if os.Getenv("AGENP_BENCH_GUARD") == "" {
		t.Skip("set AGENP_BENCH_GUARD=1 to run the recorder overhead guard")
	}
	repo, reqs := pdpFixture(100)
	ti := &framework.TokenInterpreter{}

	mkEngine := func(rec *obs.Recorder) *engine.Engine {
		eng := engine.New(repo, ti.CompileDecider)
		if _, err := eng.Refresh(); err != nil {
			t.Fatal(err)
		}
		if rec != nil {
			eng.SetRecorder(rec)
		}
		return eng
	}
	measure := func(eng *engine.Engine, label string) testing.BenchmarkResult {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Decide(reqs[i%len(reqs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		if allocs := r.AllocsPerOp(); allocs != 0 {
			t.Fatalf("%s Decide allocated %d allocs/op", label, allocs)
		}
		return r
	}

	sampledRec := obs.NewRecorder(obs.RecorderOptions{
		SampleShift: 10,
		LatencySLO:  time.Millisecond,
		Window:      obs.NewRegistry().Window("decide"),
	})
	defer sampledRec.Close()
	fullRec := obs.NewRecorder(obs.RecorderOptions{
		LatencySLO: time.Millisecond,
		Window:     obs.NewRegistry().Window("decide"),
	})
	defer fullRec.Close()
	engOff, engSampled, engFull := mkEngine(nil), mkEngine(sampledRec), mkEngine(fullRec)

	// The ratio gate is tight (1.10x on a ~30ns/op loop), so interleave
	// the two sides and take the floor of each: alternating runs see the
	// same thermal/frequency drift instead of one side absorbing all of
	// it, and the min discards scheduler noise.
	var offNs, sampledNs float64
	for i := 0; i < 5; i++ {
		o := float64(measure(engOff, "recorder-off").NsPerOp())
		s := float64(measure(engSampled, "recorder-sampled").NsPerOp())
		if i == 0 || o < offNs {
			offNs = o
		}
		if i == 0 || s < sampledNs {
			sampledNs = s
		}
	}
	full := measure(engFull, "recorder-full")

	if offNs <= 0 {
		t.Fatalf("degenerate measurement: off %v ns/op", offNs)
	}
	overhead := sampledNs/offNs - 1
	t.Logf("off %.1f ns/op, sampled %.1f ns/op (%+.1f%%), full %d ns/op",
		offNs, sampledNs, 100*overhead, full.NsPerOp())
	if overhead > 0.10 {
		t.Fatalf("sampled recorder overhead %.1f%% exceeds the 10%% budget", 100*overhead)
	}
}
