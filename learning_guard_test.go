package agenp_test

import (
	"os"
	"testing"

	"agenp/internal/apps/cav"
	"agenp/internal/experiments"
	"agenp/internal/ilasp"
)

// TestLearningAllocGuard is the CI regression gate for the learning hot
// path (set AGENP_BENCH_GUARD=1 to run). It holds the two budgets the
// bitset-signature rework bought:
//
//   - E3 (clean learning, quick mode) must stay under 90k allocs/op —
//     the level after per-candidate coverage bitsets, per-worker
//     evaluator scratch, and the space-enumeration sort fix. The
//     pre-signature path allocated ~450k/op, so a fallback to
//     re-solve coverage or per-call evaluator allocation shows up as a
//     multi-x blowout, not a near miss.
//   - One coverage check (ground-and-solve of background ∪ hypothesis ∪
//     context on a 20-scenario CAV task) must stay under 150 µs/op,
//     guarding the grounder/solver scratch reuse.
//   - E6 (noisy learning, quick mode) must stay under 60 ms/op — the
//     level after the CDNL solving core plus the per-depth
//     status-byte coverNoisy rework (BENCH_5 recorded 89 ms, the PR's
//     target was ≤44.5 ms steady-state; 60 ms leaves headroom for a
//     cold cache while still catching a fallback to the quadratic
//     per-node example rescan).
func TestLearningAllocGuard(t *testing.T) {
	if os.Getenv("AGENP_BENCH_GUARD") == "" {
		t.Skip("set AGENP_BENCH_GUARD=1 to run the allocation guard")
	}

	e3 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run("E3", experiments.Options{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("E3 quick: %d ns/op, %d allocs/op", e3.NsPerOp(), e3.AllocsPerOp())
	if e3.AllocsPerOp() > 90_000 {
		t.Errorf("E3 allocates %d/op, above the 90k budget", e3.AllocsPerOp())
	}

	e6 := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run("E6", experiments.Options{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("E6 quick: %d ns/op", e6.NsPerOp())
	if e6.NsPerOp() > 60_000_000 {
		t.Errorf("E6 takes %d ns/op, above the 60 ms budget", e6.NsPerOp())
	}

	scenarios := cav.Generate(1, 20)
	task := &ilasp.Task{
		Background: cav.Background(),
		Bias:       cav.Bias(),
		Examples:   cav.LearningExamples(scenarios, 0),
	}
	res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 3})
	if err != nil {
		t.Fatal(err)
	}
	ex := task.Examples[0]
	cov := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := task.Covers(res.Hypothesis, ex); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("coverage check: %d ns/op", cov.NsPerOp())
	if cov.NsPerOp() > 150_000 {
		t.Errorf("coverage check takes %d ns/op, above the 150 µs budget", cov.NsPerOp())
	}
}
