package agenp_test

import (
	"testing"

	"agenp"
	"agenp/internal/asglearn"
)

const grammar = `
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

func TestFacadeGenerate(t *testing.T) {
	model, err := agenp.ParseGPM(grammar)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := agenp.ParseASP("weather(clear).")
	if err != nil {
		t.Fatal(err)
	}
	policies, err := model.Generate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 4 {
		t.Errorf("generated %d policies, want 4", len(policies))
	}
}

func TestFacadeLearnASG(t *testing.T) {
	initial, err := agenp.ParseASG(grammar)
	if err != nil {
		t.Fatal(err)
	}
	space := []agenp.HypothesisRule{
		asglearn.MustParseHypothesisRule(":- task(overtake)@2, weather(rain).", 0),
	}
	rain, err := agenp.ParseASP("weather(rain).")
	if err != nil {
		t.Fatal(err)
	}
	clear, err := agenp.ParseASP("weather(clear).")
	if err != nil {
		t.Fatal(err)
	}
	examples := []agenp.ASGExample{
		{ID: "n", Tokens: []string{"accept", "overtake"}, Context: rain, Positive: false},
		{ID: "p", Tokens: []string{"accept", "overtake"}, Context: clear, Positive: true},
	}
	res, err := agenp.LearnASG(initial, space, examples, agenp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Errorf("hypothesis = %v", res.Hypothesis)
	}
}

func TestFacadeSolve(t *testing.T) {
	prog, err := agenp.ParseASP("a :- not b. b :- not a.")
	if err != nil {
		t.Fatal(err)
	}
	models, err := agenp.Solve(prog, agenp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Errorf("models = %d, want 2", len(models))
	}
}

func TestVersion(t *testing.T) {
	if agenp.Version == "" {
		t.Error("empty version")
	}
}
