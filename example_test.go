package agenp_test

import (
	"fmt"

	"agenp"
	"agenp/internal/asglearn"
)

// Example demonstrates the core idea of the paper: an answer set grammar
// whose context selects the valid policies.
func Example() {
	model, err := agenp.ParseGPM(`
policy -> "accept" task { :- task(overtake)@2, weather(rain). }
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rain, _ := agenp.ParseASP("weather(rain).")
	policies, _ := model.Generate(rain)
	for _, p := range policies {
		fmt.Println(p.Text())
	}
	// Output:
	// accept park
	// reject overtake
	// reject park
}

// ExampleLearnASG shows the Figure 1 workflow: learning the semantic
// conditions of a grammar from context-dependent examples.
func ExampleLearnASG() {
	initial, _ := agenp.ParseASG(`
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`)
	space := []agenp.HypothesisRule{
		asglearn.MustParseHypothesisRule(":- task(overtake)@2, weather(rain).", 0),
		asglearn.MustParseHypothesisRule(":- weather(rain).", 0),
	}
	rain, _ := agenp.ParseASP("weather(rain).")
	clear, _ := agenp.ParseASP("weather(clear).")
	examples := []agenp.ASGExample{
		{ID: "e1", Tokens: []string{"accept", "overtake"}, Context: clear, Positive: true},
		{ID: "e2", Tokens: []string{"accept", "park"}, Context: rain, Positive: true},
		{ID: "e3", Tokens: []string{"accept", "overtake"}, Context: rain, Positive: false},
	}
	res, _ := agenp.LearnASG(initial, space, examples, agenp.LearnOptions{})
	for _, h := range res.Hypothesis {
		fmt.Println(h)
	}
	// Output:
	// [prod 0] :- task(overtake)@2, weather(rain).
}

// ExampleSolve runs the embedded ASP solver directly.
func ExampleSolve() {
	prog, _ := agenp.ParseASP(`
		bird(tweety). bird(sam). penguin(sam).
		flies(X) :- bird(X), not penguin(X).
	`)
	models, _ := agenp.Solve(prog, agenp.SolveOptions{})
	fmt.Println(models[0].AtomsOf("flies"))
	// Output:
	// [flies(tweety)]
}

// ExampleCompileIntent compiles controlled English into a generative
// policy model.
func ExampleCompileIntent() {
	grammar, err := agenp.CompileIntent(`
policy: launch or hold drone
drone: scout, strike
never launch strike when roe is tight
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tight, _ := agenp.ParseASP("roe(tight).")
	model := agenp.NewGPM(grammar)
	policies, _ := model.Generate(tight)
	for _, p := range policies {
		fmt.Println(p.Text())
	}
	// Output:
	// launch scout
	// hold scout
	// hold strike
}
