package agenp_test

import (
	"os"
	"testing"

	"agenp/internal/asp"
)

// TestGroundingLatencyGuard is the CI regression gate for the compiled
// grounding planner (set AGENP_BENCH_GUARD=1 to run). It holds the two
// budgets the per-rule join plans bought:
//
//   - Planned grounding of the join-heavy corpus must stay at least 3x
//     faster than the NaivePlan greedy oracle. A planner regression
//     (lost delta pinning, dead index probes, per-step rescans leaking
//     back in) collapses this ratio rather than nudging it.
//   - One planned pass over the corpus must stay under 4 ms/op —
//     roughly 4x headroom over the level the plan VM + grounder
//     pooling reached (~0.9 ms locally), loose enough for CI hardware,
//     tight enough to catch a fallback to the greedy path (~3.6 ms).
func TestGroundingLatencyGuard(t *testing.T) {
	if os.Getenv("AGENP_BENCH_GUARD") == "" {
		t.Skip("set AGENP_BENCH_GUARD=1 to run the grounding latency guard")
	}

	srcs := []string{
		`a(1..12). b(1..12). c(1..12).
		 t(X,Y,Z) :- a(X), b(Y), c(Z), X < Y, Y < Z, Z < X + 6.`,
		`num(0).
		 num(N + 1) :- num(N), N < 80.
		 even(N) :- num(N), N \ 2 = 0.
		 odd(N) :- num(N), not even(N).
		 pair(X,Y) :- even(X), odd(Y), Y = X + 1.`,
		`e(1..50).
		 w(X,Y) :- e(X), e(Y), X < Y, Y < X + 4.
		 v(X,Z) :- w(X,Y), w(Y,Z).`,
	}
	progs := make([]*asp.Program, len(srcs))
	for i, src := range srcs {
		p, err := asp.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}

	run := func(naivePlan bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range progs {
					if _, err := asp.Ground(p, asp.GroundingOptions{NaivePlan: naivePlan}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}

	planned := run(false)
	naive := run(true)
	t.Logf("planned: %d ns/op, naive-plan: %d ns/op (%.2fx)",
		planned.NsPerOp(), naive.NsPerOp(), float64(naive.NsPerOp())/float64(planned.NsPerOp()))
	if planned.NsPerOp()*3 > naive.NsPerOp() {
		t.Errorf("planned grounding only %.2fx faster than the greedy oracle, below the 3x budget",
			float64(naive.NsPerOp())/float64(planned.NsPerOp()))
	}
	if planned.NsPerOp() > 4_000_000 {
		t.Errorf("planned grounding takes %d ns/op, above the 4 ms budget", planned.NsPerOp())
	}
}
