package lintcheck

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) []Diagnostic {
	t.Helper()
	pass, err := ParseSources(map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return Run(pass, Analyzers())
}

func messages(ds []Diagnostic) string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// The engine-shaped fixture: an Engine carrying a mutex and an atomic
// snapshot pointer, copied by value in a receiver, a parameter and a
// result, plus a struct embedding it by value.
const lockCopyFixture = `
package engine

import (
	"sync"
	"sync/atomic"
)

type Snapshot struct {
	Generation uint64
}

type Engine struct {
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]
}

// wrapper embeds the engine by value, so it is lock-bearing too.
type wrapper struct {
	inner Engine
}

func (e Engine) Generation() uint64 { return 0 }   // bad: value receiver
func refresh(e Engine) {}                          // bad: value parameter
func snapshotOf(w wrapper) {}                      // bad: transitively bearing
func makeEngine() Engine { return Engine{} }       // bad: value result
func generationOf(e *Engine) uint64 { return 0 }   // good: pointer
func plain(s Snapshot) {}                          // good: no lock state
`

func TestLockCopyFindings(t *testing.T) {
	ds := analyze(t, lockCopyFixture)
	var lock []Diagnostic
	for _, d := range ds {
		if d.Analyzer == "lockcopy" {
			lock = append(lock, d)
		}
	}
	if len(lock) != 4 {
		t.Fatalf("lockcopy findings = %d, want 4:\n%s", len(lock), messages(ds))
	}
	for _, want := range []string{
		"receiver of Generation copies Engine",
		"parameter of refresh copies Engine",
		"parameter of snapshotOf copies wrapper",
		"result of makeEngine copies Engine",
	} {
		if !strings.Contains(messages(lock), want) {
			t.Errorf("missing %q in:\n%s", want, messages(lock))
		}
	}
	for _, d := range lock {
		if strings.Contains(d.Message, "Snapshot") || strings.Contains(d.Message, "generationOf") {
			t.Errorf("false positive: %s", d)
		}
	}
}

const atomicFixture = `
package repo

import "sync/atomic"

type Repository struct {
	// gen is the repository generation, accessed atomically so readers
	// detect staleness with a single atomic load.
	gen uint64

	// count uses the atomic wrapper type: safe by construction.
	count atomic.Int64
}

func (r *Repository) Generation() uint64 {
	return atomic.LoadUint64(&r.gen) // good: through sync/atomic
}

func (r *Repository) bump() {
	atomic.AddUint64(&r.gen, 1) // good
	r.gen = 0                   // bad: plain write
	_ = r.gen + 1               // bad: plain read
	r.count.Add(1)              // good: wrapper type is not tracked
}
`

func TestAtomicAccessFindings(t *testing.T) {
	ds := analyze(t, atomicFixture)
	var at []Diagnostic
	for _, d := range ds {
		if d.Analyzer == "atomicaccess" {
			at = append(at, d)
		}
	}
	if len(at) != 2 {
		t.Fatalf("atomicaccess findings = %d, want 2:\n%s", len(at), messages(ds))
	}
	for _, d := range at {
		if !strings.Contains(d.Message, "field gen") {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if at[0].Pos.Line >= at[1].Pos.Line {
		t.Errorf("diagnostics not in source order: %v", at)
	}
}

func TestCleanFixture(t *testing.T) {
	ds := analyze(t, `
package ok

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g *Guarded) Inc() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}
`)
	if len(ds) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", messages(ds))
	}
}

// TestRepositoryIsClean runs both analyzers over the real module: the
// decision-path packages must carry zero findings (the same gate CI
// runs via cmd/golint-agenp).
func TestRepositoryIsClean(t *testing.T) {
	ds, err := RunDirs([]string{"../.."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("module has lint findings:\n%s", messages(ds))
	}
}
