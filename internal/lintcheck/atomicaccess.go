package lintcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// AtomicAccess flags plain reads and writes of struct fields whose doc
// comment documents atomic access but whose type is a bare integer or
// pointer. A field commented "accessed atomically" is a contract: every
// use must go through sync/atomic (atomic.LoadUint64(&x.gen), ...); a
// direct x.gen read compiles fine and races. Fields typed as
// sync/atomic wrappers (atomic.Uint64 etc.) are safe by construction
// and are not tracked.
var AtomicAccess = &Analyzer{
	Name: "atomicaccess",
	Doc:  "flag non-atomic access to fields documented as atomic",
	Run:  runAtomicAccess,
}

// atomicDoc matches the doc conventions for atomically-accessed plain
// fields ("accessed atomically", "atomic loads/stores", "atomically
// published", ...).
var atomicDoc = regexp.MustCompile(`(?i)\batomic`)

// isAtomicWrapper reports whether the field type already is a
// sync/atomic wrapper (atomic.Uint64, atomic.Pointer[T], ...).
func isAtomicWrapper(expr ast.Expr) bool {
	switch t := expr.(type) {
	case *ast.SelectorExpr:
		pkg, ok := t.X.(*ast.Ident)
		return ok && pkg.Name == "atomic"
	case *ast.IndexExpr:
		return isAtomicWrapper(t.X)
	case *ast.IndexListExpr:
		return isAtomicWrapper(t.X)
	}
	return false
}

// atomicFields collects the names of plain-typed struct fields whose
// doc or trailing comment documents atomic access.
func atomicFields(pass *Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				text := fld.Doc.Text() + " " + fld.Comment.Text()
				if !atomicDoc.MatchString(text) || isAtomicWrapper(fld.Type) {
					continue
				}
				for _, name := range fld.Names {
					out[name.Name] = true
				}
			}
			return true
		})
	}
	return out
}

func runAtomicAccess(pass *Pass) []Diagnostic {
	fields := atomicFields(pass)
	if len(fields) == 0 {
		return nil
	}

	// First sweep: every &x.field passed to an atomic.* call is a
	// sanctioned access site.
	sanctioned := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := fun.X.(*ast.Ident); !ok || pkg.Name != "atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := un.X.(*ast.SelectorExpr); ok {
					sanctioned[sel.Sel.Pos()] = true
				}
			}
			return true
		})
	}

	// Second sweep: any other selector landing on a tracked field name
	// is a plain (racy) access. Field declarations themselves are not
	// selector expressions, so they never trigger.
	var out []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if !fields[name] || sanctioned[sel.Sel.Pos()] {
				return true
			}
			out = append(out, Diagnostic{
				Pos:      pass.Fset.Position(sel.Sel.Pos()),
				Analyzer: "atomicaccess",
				Message:  fmt.Sprintf("field %s is documented as atomically accessed; use sync/atomic, not a plain read/write", name),
			})
			return true
		})
	}
	return out
}
