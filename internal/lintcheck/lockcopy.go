package lintcheck

import (
	"fmt"
	"go/ast"
)

// LockCopy flags by-value receivers, parameters and results whose type
// is an in-package struct that (transitively) carries a mutex or
// sync/atomic state. Copying such a value forks the lock or the atomic
// cell: the copy guards nothing, and updates to it are invisible to
// every other holder — exactly the bug class the engine's pinned
// Snapshot/Engine types invite.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flag by-value copies of lock- or atomic-bearing struct types",
	Run:  runLockCopy,
}

// syncNoCopy lists the sync types that must not be copied after first
// use (each embeds state the runtime tracks by address).
var syncNoCopy = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
	"Pool": true, "Once": true, "Map": true,
}

// atomicNoCopy lists the sync/atomic wrapper types; all of them pin
// their address.
var atomicNoCopy = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// lockBearingTypes collects the names of in-package struct types that
// directly or transitively (through in-package value fields, arrays or
// embedding) contain sync or sync/atomic state. Pointer fields do not
// propagate: holding *Engine is fine, holding Engine is not.
func lockBearingTypes(pass *Pass) map[string]bool {
	structs := make(map[string]*ast.StructType)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					structs[ts.Name.Name] = st
				}
			}
		}
	}

	bearing := make(map[string]bool)
	// typeBears reports whether a field type expression carries lock or
	// atomic state by value. visiting guards recursive type cycles.
	var typeBears func(expr ast.Expr, visiting map[string]bool) bool
	typeBears = func(expr ast.Expr, visiting map[string]bool) bool {
		switch t := expr.(type) {
		case *ast.SelectorExpr:
			pkg, ok := t.X.(*ast.Ident)
			if !ok {
				return false
			}
			return (pkg.Name == "sync" && syncNoCopy[t.Sel.Name]) ||
				(pkg.Name == "atomic" && atomicNoCopy[t.Sel.Name])
		case *ast.IndexExpr: // generic instantiation, e.g. atomic.Pointer[T]
			return typeBears(t.X, visiting)
		case *ast.IndexListExpr:
			return typeBears(t.X, visiting)
		case *ast.ArrayType:
			return typeBears(t.Elt, visiting)
		case *ast.Ident:
			st, ok := structs[t.Name]
			if !ok || visiting[t.Name] {
				return false
			}
			if bearing[t.Name] {
				return true
			}
			visiting[t.Name] = true
			defer delete(visiting, t.Name)
			for _, fld := range st.Fields.List {
				if typeBears(fld.Type, visiting) {
					return true
				}
			}
			return false
		default:
			// Pointers, maps, slices, channels, funcs: share, not copy.
			return false
		}
	}

	for name := range structs {
		if typeBears(&ast.Ident{Name: name}, map[string]bool{}) {
			bearing[name] = true
		}
	}
	return bearing
}

// valueTypeName returns the named type of a by-value field list entry
// ("" when the type is a pointer or not a plain named type).
func valueTypeName(expr ast.Expr) string {
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func runLockCopy(pass *Pass) []Diagnostic {
	bearing := lockBearingTypes(pass)
	if len(bearing) == 0 {
		return nil
	}
	var out []Diagnostic
	report := func(pos ast.Node, role, typ, fn string) {
		out = append(out, Diagnostic{
			Pos:      pass.Fset.Position(pos.Pos()),
			Analyzer: "lockcopy",
			Message:  fmt.Sprintf("%s of %s copies %s by value; it carries lock or atomic state — use *%s", role, fn, typ, typ),
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				for _, fld := range fd.Recv.List {
					if t := valueTypeName(fld.Type); bearing[t] {
						report(fld, "receiver", t, fd.Name.Name)
					}
				}
			}
			if fd.Type.Params != nil {
				for _, fld := range fd.Type.Params.List {
					if t := valueTypeName(fld.Type); bearing[t] {
						report(fld, "parameter", t, fd.Name.Name)
					}
				}
			}
			if fd.Type.Results != nil {
				for _, fld := range fd.Type.Results.List {
					if t := valueTypeName(fld.Type); bearing[t] {
						report(fld, "result", t, fd.Name.Name)
					}
				}
			}
		}
	}
	return out
}
