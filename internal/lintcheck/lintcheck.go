// Package lintcheck is a small, dependency-free static-analysis driver
// for this module's Go sources, shaped after golang.org/x/tools
// go/analysis (Analyzer / Pass / Diagnostic) but self-contained: it
// parses packages with go/parser and reasons syntactically, so it runs
// in environments without the x/tools module.
//
// Two project-specific analyzers guard the concurrency invariants of
// the decision path (internal/engine and friends):
//
//   - lockcopy flags by-value receivers, parameters and results of
//     in-package struct types that (transitively) carry mutexes or
//     sync/atomic state — copying an Engine or a telemetry Histogram
//     silently forks its lock/counters;
//   - atomicaccess flags plain reads and writes of struct fields whose
//     doc comment documents atomic access ("accessed atomically", "...
//     atomic loads") but whose type is a bare integer: every use must
//     go through the sync/atomic package.
//
// The cmd/golint-agenp command runs both over a directory tree; CI runs
// it next to go vet.
package lintcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named analysis over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "lockcopy".
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the diagnostics for one package.
	Run func(pass *Pass) []Diagnostic
}

// Pass is the per-package input handed to an analyzer.
type Pass struct {
	// Fset maps AST positions back to source.
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the package name.
	Pkg string
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the registered analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCopy, AtomicAccess}
}

// ParseSources parses named source strings into a Pass (test and tool
// entry point for in-memory sources).
func ParseSources(sources map[string]string) (*Pass, error) {
	fset := token.NewFileSet()
	pass := &Pass{Fset: fset}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pass.Files = append(pass.Files, f)
		pass.Pkg = f.Name.Name
	}
	return pass, nil
}

// ParsePackageDir parses every non-test .go file of one directory into
// a Pass. It returns a nil Pass when the directory holds no Go files.
func ParsePackageDir(dir string) (*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pass := &Pass{Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pass.Files = append(pass.Files, f)
		pass.Pkg = f.Name.Name
	}
	if len(pass.Files) == 0 {
		return nil, nil
	}
	return pass, nil
}

// Run applies the analyzers to the pass and returns the merged
// diagnostics in source order.
func Run(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		out = append(out, a.Run(pass)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return out
}

// RunDirs walks the given roots, analyzes every package directory
// (skipping testdata and hidden directories), and returns the merged
// diagnostics.
func RunDirs(roots []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if base == "testdata" || (strings.HasPrefix(base, ".") && path != root) {
				return filepath.SkipDir
			}
			if seen[path] {
				return nil
			}
			seen[path] = true
			pass, err := ParsePackageDir(path)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if pass != nil {
				out = append(out, Run(pass, analyzers)...)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
