// Package engine implements the compiled, hot-swappable decision path
// of the AGENP architecture: policies are compiled once per policy-set
// generation into an immutable Snapshot, published through an atomic
// pointer, and every Decide serves lock-free from the current snapshot.
//
// The AGENP loop (paper Fig. 2) regenerates policies rarely — on context
// change, adaptation, or coalition sharing — but enforces them on every
// request. Re-reading the repository and re-interpreting policy strings
// per request inverts that cost profile; this package restores it by
// separating the two rates:
//
//   - compile once: when the repository generation moves, the engine
//     compiles the new policy set into a directly executable decision
//     program (a Decider) and swaps it in atomically;
//   - serve many: Decide is two atomic loads plus the compiled program —
//     no repository lock, no policy-list copy, no per-request parsing —
//     and the ErrNoPolicy path performs zero allocations.
//
// Readers never observe a half-built policy set: a snapshot is immutable
// after publication, and a batch is decided entirely under one snapshot
// even while a regeneration swaps in the next one.
package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"agenp/internal/obs"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// ErrNoPolicy is reported when the engine has no policies to decide
// with. It is a sentinel: the no-policy path allocates nothing.
var ErrNoPolicy = errors.New("agenp: no applicable policy")

// Decider is a compiled decision program over one immutable policy set:
// it returns the decision and the id of the policy that determined it
// ("" when no policy applies). Implementations must be safe for
// concurrent use and must not retain or mutate requests.
type Decider interface {
	Decide(req xacml.Request) (xacml.Decision, string)
}

// Result is one batch decision.
type Result struct {
	Decision xacml.Decision
	PolicyID string
}

// BatchDecider is optionally implemented by Deciders with a faster
// whole-batch path. len(out) == len(reqs) is guaranteed by the caller.
type BatchDecider interface {
	DecideBatch(reqs []xacml.Request, out []Result)
}

// CompileFunc builds a Decider from a policy snapshot. The slice is the
// repository's immutable snapshot storage: implementations may index or
// retain it but must not mutate it.
type CompileFunc func(policies []policy.Policy) (Decider, error)

// Snapshot is one compiled policy-set generation: the repository
// contents it was built from plus the executable decision program.
// Snapshots are immutable after publication.
type Snapshot struct {
	// Generation is the repository generation this snapshot compiled.
	Generation uint64
	// Policies is the repository snapshot (sorted by id, read-only).
	Policies []policy.Policy

	decider Decider
}

// Decide runs the compiled program. It does not check for emptiness —
// use Engine.Decide for the ErrNoPolicy contract.
func (s *Snapshot) Decide(req xacml.Request) (xacml.Decision, string) {
	return s.decider.Decide(req)
}

// Engine is the compile-once, serve-many decision engine. The current
// snapshot is published via an atomic pointer: Decide and DecideBatch
// are lock-free in the steady state, and Refresh swaps in a newly
// compiled snapshot when the repository generation moves (regeneration,
// adaptation, coalition adoption, or direct repository edits).
type Engine struct {
	repo    *policy.Repository
	compile CompileFunc

	// mu serializes compilation only; serving never takes it.
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]

	// rec, when set, is the decision flight recorder. The serving path
	// pays one atomic pointer load to find it and one mask test to skip
	// a non-sampled decision; only sampled-in decisions pay the full
	// record (digest, clock reads, ring stores).
	rec atomic.Pointer[obs.Recorder]
}

// New wires an engine to a repository. The first Decide (or an explicit
// Refresh) compiles the initial snapshot.
func New(repo *policy.Repository, compile CompileFunc) *Engine {
	return &Engine{repo: repo, compile: compile}
}

// Generation returns the generation of the currently served snapshot
// (0 before the first successful compile).
func (e *Engine) Generation() uint64 {
	if s := e.cur.Load(); s != nil {
		return s.Generation
	}
	return 0
}

// Current returns the currently served snapshot without refreshing
// (nil before the first compile).
func (e *Engine) Current() *Snapshot { return e.cur.Load() }

// SetRecorder attaches (or, with nil, detaches) the decision flight
// recorder. The currently served generation's policy ids are registered
// immediately so records decode to names from the first commit.
func (e *Engine) SetRecorder(r *obs.Recorder) {
	e.rec.Store(r)
	if r == nil {
		return
	}
	if s := e.cur.Load(); s != nil {
		r.NoteGeneration(s.Generation, policyIDs(s.Policies))
	}
}

// Recorder returns the attached flight recorder (nil when none).
func (e *Engine) Recorder() *obs.Recorder { return e.rec.Load() }

func policyIDs(ps []policy.Policy) []string {
	ids := make([]string, len(ps))
	for i := range ps {
		ids[i] = ps[i].ID
	}
	return ids
}

// Refresh compiles the repository's current generation if the served
// snapshot is stale and atomically publishes the result. Concurrent
// Decides keep serving the previous snapshot until the swap. On compile
// failure the previous snapshot stays published and the error is
// returned.
func (e *Engine) Refresh() (*Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs := e.repo.Snapshot()
	if s := e.cur.Load(); s != nil && s.Generation == rs.Generation {
		return s, nil
	}
	t0 := time.Now()
	d, err := e.compile(rs.Policies)
	if err != nil {
		return e.cur.Load(), err
	}
	statCompileDur.ObserveSince(t0)
	statCompiles.Inc()
	statGeneration.Set(int64(rs.Generation))
	statPolicies.Set(int64(len(rs.Policies)))
	s := &Snapshot{Generation: rs.Generation, Policies: rs.Policies, decider: d}
	e.cur.Store(s)
	if r := e.rec.Load(); r != nil {
		r.NoteGeneration(s.Generation, policyIDs(s.Policies))
	}
	return s, nil
}

// snapshot returns the current snapshot, refreshing first when the
// repository generation moved. The staleness probe is two atomic loads.
func (e *Engine) snapshot() (*Snapshot, error) {
	if s := e.cur.Load(); s != nil && s.Generation == e.repo.Generation() {
		return s, nil
	}
	return e.Refresh()
}

// Decide evaluates a request against the current compiled snapshot.
// With no policies installed it returns ErrNoPolicy without allocating.
//
// The decisions counter doubles as the flight-recorder sampling cadence:
// its post-increment value is the decision ordinal, and a recorder at
// SampleShift k records every 2^k-th ordinal. Decisions that sample out
// pay one atomic pointer load and a mask test on top of the bare path.
func (e *Engine) Decide(req xacml.Request) (xacml.Decision, string, error) {
	s, err := e.snapshot()
	if err != nil {
		return xacml.DecisionIndeterminate, "", err
	}
	n := statDecisions.Bump()
	if len(s.Policies) == 0 {
		return xacml.DecisionNotApplicable, "", ErrNoPolicy
	}
	if r := e.rec.Load(); r != nil && r.Sampled(n) {
		t0 := time.Now()
		d, pid := s.decider.Decide(req)
		lat := time.Since(t0)
		r.Commit(n, s.Generation, pid, uint8(d), req.Digest(), t0, lat)
		return d, pid, nil
	}
	d, pid := s.decider.Decide(req)
	return d, pid, nil
}

// DecideBatch evaluates every request under one consistent snapshot —
// a regeneration racing the batch never splits it across generations.
// Results are appended to out (reusing its capacity) and returned; with
// no policies installed every request decides NotApplicable and
// ErrNoPolicy is returned alongside the filled results.
func (e *Engine) DecideBatch(reqs []xacml.Request, out []Result) ([]Result, error) {
	s, err := e.snapshot()
	if err != nil {
		return out, err
	}
	base := len(out)
	if n := base + len(reqs); cap(out) < n {
		grown := make([]Result, n)
		copy(grown, out[:base])
		out = grown
	} else {
		out = out[:n]
	}
	dst := out[base:]
	last := statDecisions.BumpN(int64(len(reqs)))
	first := last - int64(len(reqs)) + 1
	statBatches.Inc()
	if len(s.Policies) == 0 {
		for i := range dst {
			dst[i] = Result{Decision: xacml.DecisionNotApplicable}
		}
		return out, ErrNoPolicy
	}
	// A batch containing a sampled ordinal records through the
	// per-request path so sampled decisions get individual latencies;
	// batches that sample out entirely keep the whole-batch fast path.
	if r := e.rec.Load(); r != nil && r.SampledIn(first, last) {
		for i, q := range reqs {
			ord := first + int64(i)
			if r.Sampled(ord) {
				t0 := time.Now()
				d, pid := s.decider.Decide(q)
				lat := time.Since(t0)
				dst[i] = Result{Decision: d, PolicyID: pid}
				r.Commit(ord, s.Generation, pid, uint8(d), q.Digest(), t0, lat)
			} else {
				dst[i].Decision, dst[i].PolicyID = s.decider.Decide(q)
			}
		}
		return out, nil
	}
	if bd, ok := s.decider.(BatchDecider); ok {
		bd.DecideBatch(reqs, dst)
		return out, nil
	}
	for i, r := range reqs {
		dst[i].Decision, dst[i].PolicyID = s.decider.Decide(r)
	}
	return out, nil
}
