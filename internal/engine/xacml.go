package engine

import (
	"sync"

	"agenp/internal/xacml"
)

// XACMLDecider serves a compiled XACML policy set as an engine Decider:
// the set is compiled once (interned attributes, match programs,
// precompiled combining, indexed targets) and per-goroutine evaluator
// scratch is pooled so concurrent Decides neither contend nor allocate
// evaluators per request.
type XACMLDecider struct {
	set  *xacml.CompiledPolicySet
	pool sync.Pool
}

var _ Decider = (*XACMLDecider)(nil)

// NewXACMLDecider compiles the policy set into a Decider.
func NewXACMLDecider(ps *xacml.PolicySet) (*XACMLDecider, error) {
	cs, err := xacml.CompilePolicySet(ps)
	if err != nil {
		return nil, err
	}
	d := &XACMLDecider{set: cs}
	d.pool.New = func() any { return cs.NewEvaluator() }
	return d, nil
}

// Set exposes the compiled policy set (for stats and tests).
func (d *XACMLDecider) Set() *xacml.CompiledPolicySet { return d.set }

// Decide implements Decider; the winning policy id is the one whose
// decision the combining algorithm settled on.
func (d *XACMLDecider) Decide(req xacml.Request) (xacml.Decision, string) {
	ev := d.pool.Get().(*xacml.Evaluator)
	dec, id := ev.Evaluate(req)
	d.pool.Put(ev)
	return dec, id
}

// DecideBatch implements BatchDecider, reusing one evaluator for the
// whole batch.
func (d *XACMLDecider) DecideBatch(reqs []xacml.Request, out []Result) {
	ev := d.pool.Get().(*xacml.Evaluator)
	for i, r := range reqs {
		out[i].Decision, out[i].PolicyID = ev.Evaluate(r)
	}
	d.pool.Put(ev)
}
