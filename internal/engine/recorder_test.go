package engine_test

import (
	"testing"
	"time"

	"agenp/internal/obs"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

func TestEngineRecordsDecisions(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p-allow", "permit", "overtake"))
	repo.Put(tokenPolicy("p-deny", "deny", "share", "sigint"))
	e := newTokenEngine(repo)
	rec := obs.NewRecorder(obs.RecorderOptions{})
	e.SetRecorder(rec)
	if e.Recorder() != rec {
		t.Fatalf("Recorder accessor")
	}

	if _, _, err := e.Decide(actionReq("overtake")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Decide(actionReq("share sigint")); err != nil {
		t.Fatal(err)
	}

	tail := rec.Tail(10)
	if len(tail) != 2 {
		t.Fatalf("recorded %d decisions, want 2", len(tail))
	}
	if tail[0].Effect != "Permit" || tail[0].PolicyID != "p-allow" {
		t.Fatalf("record 1: %+v", tail[0])
	}
	if tail[1].Effect != "Deny" || tail[1].PolicyID != "p-deny" {
		t.Fatalf("record 2: %+v", tail[1])
	}
	if tail[0].Generation == 0 || tail[0].Generation != e.Generation() {
		t.Fatalf("generation not stamped: %+v", tail[0])
	}
	if tail[0].Digest == "" {
		t.Fatalf("digest not stamped: %+v", tail[0])
	}
}

func TestEngineRecordsBatch(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p-allow", "permit", "overtake"))
	e := newTokenEngine(repo)
	rec := obs.NewRecorder(obs.RecorderOptions{})
	e.SetRecorder(rec)

	reqs := []xacml.Request{actionReq("overtake"), actionReq("share"), actionReq("overtake")}
	out, err := e.DecideBatch(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("batch results: %d", len(out))
	}
	if out[0].Decision != xacml.DecisionPermit || out[0].PolicyID != "p-allow" {
		t.Fatalf("batch result 1: %+v", out[0])
	}
	tail := rec.Tail(10)
	if len(tail) != 3 {
		t.Fatalf("recorded %d batch decisions, want 3", len(tail))
	}
}

func TestEngineBatchSamplingConsistency(t *testing.T) {
	// At SampleShift 2 only every 4th decision records, but batch
	// results must be identical to the unsampled path.
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p-allow", "permit", "overtake"))
	e := newTokenEngine(repo)
	rec := obs.NewRecorder(obs.RecorderOptions{SampleShift: 2})
	e.SetRecorder(rec)

	reqs := make([]xacml.Request, 10)
	for i := range reqs {
		reqs[i] = actionReq("overtake")
	}
	out, err := e.DecideBatch(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Decision != xacml.DecisionPermit || r.PolicyID != "p-allow" {
			t.Fatalf("result %d under sampling: %+v", i, r)
		}
	}
	got := rec.Stats().Recorded
	if got < 2 || got > 3 {
		t.Fatalf("10 decisions at shift 2 recorded %d, want 2-3", got)
	}
}

func TestEngineGenerationChangeAnomaly(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	e := newTokenEngine(repo)
	rec := obs.NewRecorder(obs.RecorderOptions{})
	e.SetRecorder(rec)

	if _, _, err := e.Decide(actionReq("overtake")); err != nil {
		t.Fatal(err)
	}
	// Repository change → new generation → next decision flags the swap.
	repo.Put(tokenPolicy("p0", "deny", "overtake"))
	if _, _, err := e.Decide(actionReq("overtake")); err != nil {
		t.Fatal(err)
	}
	tail := rec.Tail(10)
	if len(tail) != 2 {
		t.Fatalf("recorded %d, want 2", len(tail))
	}
	found := false
	for _, a := range tail[1].Anomalies {
		if a == "generation-change" {
			found = true
		}
	}
	if !found {
		t.Fatalf("generation swap not flagged: %+v", tail[1])
	}
	// The new generation's ids resolve (Refresh noted them).
	if tail[1].PolicyID != "p0" {
		t.Fatalf("post-swap policy id: %+v", tail[1])
	}
}

func TestEngineEffectFlipAnomaly(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	e := newTokenEngine(repo)
	rec := obs.NewRecorder(obs.RecorderOptions{})
	e.SetRecorder(rec)

	req := actionReq("overtake")
	if _, _, err := e.Decide(req); err != nil {
		t.Fatal(err)
	}
	repo.Put(tokenPolicy("p0", "deny", "overtake"))
	if _, _, err := e.Decide(req); err != nil {
		t.Fatal(err)
	}
	tail := rec.Tail(10)
	flip := false
	for _, a := range tail[len(tail)-1].Anomalies {
		if a == "effect-flip" {
			flip = true
		}
	}
	if !flip {
		t.Fatalf("deny-after-permit on same request not flagged: %+v", tail[len(tail)-1])
	}
	if rec.Stats().EffectFlips != 1 {
		t.Fatalf("flip stats: %+v", rec.Stats())
	}
}

func TestEngineDecideRecorderDoesNotAllocate(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	e := newTokenEngine(repo)
	rec := obs.NewRecorder(obs.RecorderOptions{Window: obs.W("engine.test.decide")})
	e.SetRecorder(rec)
	req := actionReq("overtake")
	if _, _, err := e.Decide(req); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = e.Decide(req)
	})
	if allocs != 0 {
		t.Errorf("recorded Decide allocates %v per op, want 0", allocs)
	}
}

func TestEngineRecorderSLOWindow(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	e := newTokenEngine(repo)
	w := obs.NewRegistry().Window("decide")
	rec := obs.NewRecorder(obs.RecorderOptions{Window: w, LatencySLO: time.Nanosecond})
	e.SetRecorder(rec)
	for i := 0; i < 50; i++ {
		if _, _, err := e.Decide(actionReq("overtake")); err != nil {
			t.Fatal(err)
		}
	}
	snap := w.Snapshot()["10s"]
	if snap.Count != 50 {
		t.Fatalf("window did not observe decisions: %+v", snap)
	}
	// Every decision takes ≥1ns, so the 1ns SLO flags all of them.
	if rec.Stats().LatencySLO == 0 {
		t.Fatalf("latency SLO never triggered: %+v", rec.Stats())
	}
}
