package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"agenp/internal/agenp"
	"agenp/internal/engine"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

func tokenPolicy(id string, tokens ...string) policy.Policy {
	return policy.Policy{ID: id, Tokens: tokens}
}

func actionReq(action string) xacml.Request {
	return xacml.NewRequest().Set(xacml.Action, "id", xacml.S(action))
}

func newTokenEngine(repo *policy.Repository) *engine.Engine {
	ti := &agenp.TokenInterpreter{}
	return engine.New(repo, ti.CompileDecider)
}

func TestEngineEmptyRepoNoPolicy(t *testing.T) {
	repo := policy.NewRepository()
	e := newTokenEngine(repo)
	d, pid, err := e.Decide(actionReq("overtake"))
	if !errors.Is(err, engine.ErrNoPolicy) {
		t.Fatalf("err = %v, want ErrNoPolicy", err)
	}
	if d != xacml.DecisionNotApplicable || pid != "" {
		t.Errorf("decision = %v, %q", d, pid)
	}
	// The agenp sentinel is the engine's sentinel: callers using either
	// errors.Is target keep working.
	if !errors.Is(err, agenp.ErrNoPolicy) {
		t.Error("agenp.ErrNoPolicy is not aliased to engine.ErrNoPolicy")
	}
}

func TestEngineErrNoPolicyDoesNotAllocate(t *testing.T) {
	repo := policy.NewRepository()
	e := newTokenEngine(repo)
	req := actionReq("overtake")
	if _, _, err := e.Decide(req); !errors.Is(err, engine.ErrNoPolicy) {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = e.Decide(req)
	})
	if allocs != 0 {
		t.Errorf("ErrNoPolicy path allocates %v per op, want 0", allocs)
	}
}

func TestEngineDecideDoesNotAllocate(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	repo.Put(tokenPolicy("p2", "deny", "share", "sigint"))
	e := newTokenEngine(repo)
	req := actionReq("overtake")
	if _, _, err := e.Decide(req); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = e.Decide(req)
	})
	if allocs != 0 {
		t.Errorf("compiled token Decide allocates %v per op, want 0", allocs)
	}
}

func TestEngineLazyRefreshOnRepositoryChange(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	e := newTokenEngine(repo)

	d, pid, err := e.Decide(actionReq("overtake"))
	if err != nil || d != xacml.DecisionPermit || pid != "p1" {
		t.Fatalf("initial = %v, %q, %v", d, pid, err)
	}
	gen1 := e.Generation()

	// Direct repository edit, no explicit Refresh: Decide self-heals.
	repo.Put(tokenPolicy("p0", "deny", "overtake"))
	d, pid, err = e.Decide(actionReq("overtake"))
	if err != nil || d != xacml.DecisionDeny || pid != "p0" {
		t.Fatalf("after put = %v, %q, %v", d, pid, err)
	}
	if e.Generation() <= gen1 {
		t.Errorf("generation did not advance: %d -> %d", gen1, e.Generation())
	}

	// Unchanged repository: same snapshot is served, no recompile.
	s1 := e.Current()
	if _, _, err := e.Decide(actionReq("overtake")); err != nil {
		t.Fatal(err)
	}
	if e.Current() != s1 {
		t.Error("snapshot recompiled without repository change")
	}
}

func TestEngineRefreshKeepsOldSnapshotOnCompileError(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	fail := false
	ti := &agenp.TokenInterpreter{}
	e := engine.New(repo, func(ps []policy.Policy) (engine.Decider, error) {
		if fail {
			return nil, errors.New("boom")
		}
		return ti.CompileDecider(ps)
	})
	if _, err := e.Refresh(); err != nil {
		t.Fatal(err)
	}
	good := e.Current()

	fail = true
	repo.Put(tokenPolicy("p2", "deny", "overtake"))
	if _, err := e.Refresh(); err == nil {
		t.Fatal("Refresh succeeded with failing compiler")
	}
	if e.Current() != good {
		t.Error("failed compile replaced the served snapshot")
	}
	// Serving continues on the previous snapshot's decisions; Decide
	// surfaces the compile error.
	if _, _, err := e.Decide(actionReq("overtake")); err == nil {
		t.Error("Decide hid the compile error")
	}

	fail = false
	d, pid, err := e.Decide(actionReq("overtake"))
	if err != nil || d != xacml.DecisionDeny || pid != "p2" {
		t.Errorf("after recovery = %v, %q, %v", d, pid, err)
	}
}

func TestEngineDecideBatch(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("p1", "permit", "overtake"))
	repo.Put(tokenPolicy("p2", "deny", "share", "sigint"))
	e := newTokenEngine(repo)

	reqs := []xacml.Request{
		actionReq("overtake"),
		actionReq("share sigint"),
		actionReq("park"),
		xacml.NewRequest(), // no action attribute
	}
	out, err := e.DecideBatch(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.Result{
		{Decision: xacml.DecisionPermit, PolicyID: "p1"},
		{Decision: xacml.DecisionDeny, PolicyID: "p2"},
		{Decision: xacml.DecisionNotApplicable},
		{Decision: xacml.DecisionIndeterminate},
	}
	if len(out) != len(want) {
		t.Fatalf("len(out) = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %+v, want %+v", i, out[i], want[i])
		}
		// Batch and single-request paths agree.
		d, pid, err := e.Decide(reqs[i])
		if err != nil || d != out[i].Decision || pid != out[i].PolicyID {
			t.Errorf("single[%d] = %v, %q, %v; batch %+v", i, d, pid, err, out[i])
		}
	}

	// Appends to an existing slice, reusing capacity.
	buf := make([]engine.Result, 1, 16)
	buf[0] = engine.Result{PolicyID: "sentinel"}
	out2, err := e.DecideBatch(reqs[:2], buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 3 || out2[0].PolicyID != "sentinel" || &out2[0] != &buf[0] {
		t.Errorf("append semantics broken: len=%d first=%+v", len(out2), out2[0])
	}

	// Empty repository: results filled NotApplicable, ErrNoPolicy returned.
	empty := newTokenEngine(policy.NewRepository())
	out3, err := empty.DecideBatch(reqs[:2], nil)
	if !errors.Is(err, engine.ErrNoPolicy) {
		t.Fatalf("empty err = %v", err)
	}
	for i, r := range out3 {
		if r.Decision != xacml.DecisionNotApplicable {
			t.Errorf("empty out[%d] = %+v", i, r)
		}
	}
}

// TestTokenProgramDifferential drives the compiled TokenProgram and the
// legacy TokenInterpreter over generated policy sets and requests; they
// must agree on decision and winning policy id for every request.
func TestTokenProgramDifferential(t *testing.T) {
	verbs := []string{"permit", "accept", "allow", "deny", "reject", "forbid", "unknown"}
	objects := [][]string{
		{"overtake"}, {"park"}, {"share", "sigint"}, {"share", "images"}, {"refuel"},
	}
	ti := &agenp.TokenInterpreter{}

	// Deterministic exhaustive-ish sweep: every (verb, object) pair plus
	// short policies and duplicate actions, in varying orders.
	var pols []policy.Policy
	n := 0
	for _, v := range verbs {
		for _, obj := range objects {
			pols = append(pols, tokenPolicy(fmt.Sprintf("p%02d", n), append([]string{v}, obj...)...))
			n++
		}
	}
	pols = append(pols,
		tokenPolicy("short", "permit"),
		tokenPolicy("empty"),
		tokenPolicy("dup-deny", "reject", "overtake"),
		tokenPolicy("dup-permit", "allow", "overtake"),
	)

	// Several policy-order permutations (rotations) exercise first-match
	// tie-breaking.
	for rot := 0; rot < len(pols); rot += 7 {
		ordered := append(append([]policy.Policy{}, pols[rot:]...), pols[:rot]...)
		prog := engine.NewTokenProgram(
			[]string{"permit", "accept", "allow"},
			[]string{"deny", "reject", "forbid"},
			ordered,
		)
		reqs := []xacml.Request{xacml.NewRequest()}
		for _, obj := range append(objects, []string{"unmatched"}) {
			reqs = append(reqs, actionReq(joinTokens(obj)))
		}
		for _, req := range reqs {
			wantD, wantID := ti.Decide(ordered, req)
			gotD, gotID := prog.Decide(req)
			if gotD != wantD || gotID != wantID {
				t.Fatalf("rot=%d req=%s: compiled = %v, %q; interpreter = %v, %q",
					rot, req, gotD, gotID, wantD, wantID)
			}
		}
	}
}

func joinTokens(tokens []string) string {
	s := tokens[0]
	for _, tok := range tokens[1:] {
		s += " " + tok
	}
	return s
}

// TestTokenProgramVerbInBothSets pins the deny-verb precedence: a verb
// classified as both permit and deny acts as deny, exactly like the
// interpreter's case order.
func TestTokenProgramVerbInBothSets(t *testing.T) {
	ti := &agenp.TokenInterpreter{PermitVerbs: []string{"do"}, DenyVerbs: []string{"do"}}
	pols := []policy.Policy{tokenPolicy("p1", "do", "overtake")}
	prog := engine.NewTokenProgram([]string{"do"}, []string{"do"}, pols)
	req := actionReq("overtake")
	wantD, wantID := ti.Decide(pols, req)
	gotD, gotID := prog.Decide(req)
	if gotD != wantD || gotID != wantID {
		t.Fatalf("compiled = %v, %q; interpreter = %v, %q", gotD, gotID, wantD, wantID)
	}
	if gotD != xacml.DecisionDeny {
		t.Errorf("verb in both sets = %v, want Deny", gotD)
	}
}

// TestEngineConcurrentDecideDuringSwap hammers Decide and DecideBatch
// from many goroutines while the repository is regenerated concurrently.
// Run under -race. Every observed decision must be internally consistent
// with SOME published generation (per-generation policies flip the
// decision atomically: all-permit or all-deny, never a mix within a
// batch).
func TestEngineConcurrentDecideDuringSwap(t *testing.T) {
	repo := policy.NewRepository()
	repo.Put(tokenPolicy("gen-a", "permit", "overtake"))
	e := newTokenEngine(repo)
	req := actionReq("overtake")

	const writers = 2
	const readers = 4
	const swaps = 200
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < swaps; i++ {
				if (i+w)%2 == 0 {
					repo.ReplaceAll([]policy.Policy{tokenPolicy("gen-a", "permit", "overtake")})
				} else {
					repo.ReplaceAll([]policy.Policy{tokenPolicy("gen-b", "deny", "overtake")})
				}
				if _, err := e.Refresh(); err != nil {
					t.Errorf("Refresh: %v", err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			reqs := []xacml.Request{req, req, req}
			var out []engine.Result
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, pid, err := e.Decide(req)
				if err != nil {
					t.Errorf("Decide: %v", err)
					return
				}
				okA := d == xacml.DecisionPermit && pid == "gen-a"
				okB := d == xacml.DecisionDeny && pid == "gen-b"
				if !okA && !okB {
					t.Errorf("torn decision: %v, %q", d, pid)
					return
				}
				out, err = e.DecideBatch(reqs, out[:0])
				if err != nil {
					t.Errorf("DecideBatch: %v", err)
					return
				}
				for i := 1; i < len(out); i++ {
					if out[i] != out[0] {
						t.Errorf("batch split across generations: %+v vs %+v", out[0], out[i])
						return
					}
				}
			}
		}()
	}

	writerWg.Wait()
	close(stop)
	readerWg.Wait()
}
