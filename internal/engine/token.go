package engine

import (
	"strings"

	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// TokenProgram is the compiled form of the verb–object token policy
// language ("permit overtake", "withhold share sigint", ...): the whole
// policy set reduced to one hash lookup per request. Compilation
// interns each policy's object phrase (the joined tokens after the
// verb) once, so serving never joins or scans token slices, and
// resolves the deny-overrides combining statically: per action phrase
// only the first denying and first permitting policy ids (in policy-id
// order) can ever win, so only those are kept.
//
// The program is immutable and safe for concurrent use.
type TokenProgram struct {
	entries map[string]tokenEntry
}

// tokenEntry is the precombined outcome for one action phrase.
type tokenEntry struct {
	denyID   string
	permitID string
	deny     bool
	permit   bool
}

// NewTokenProgram compiles policies against permit/deny verb sets. The
// semantics are exactly TokenInterpreter.Decide's: a policy applies when
// its object tokens equal the request's action id; any applicable deny
// wins (deny-overrides) with the first denying policy as decider,
// otherwise the first applicable permit decides; policies shorter than
// two tokens or with unknown verbs are inert. Policies must already be
// in decision order (the repository snapshot's id order).
func NewTokenProgram(permitVerbs, denyVerbs []string, policies []policy.Policy) *TokenProgram {
	permit := make(map[string]bool, len(permitVerbs))
	for _, v := range permitVerbs {
		permit[v] = true
	}
	deny := make(map[string]bool, len(denyVerbs))
	for _, v := range denyVerbs {
		deny[v] = true
	}
	entries := make(map[string]tokenEntry, len(policies))
	for _, p := range policies {
		if len(p.Tokens) < 2 {
			continue
		}
		verb := p.Tokens[0]
		isDeny, isPermit := deny[verb], permit[verb]
		if !isDeny && !isPermit {
			continue
		}
		action := strings.Join(p.Tokens[1:], " ")
		e := entries[action]
		switch {
		case isDeny:
			if !e.deny {
				e.deny, e.denyID = true, p.ID
			}
		default: // permit verb
			if !e.permit {
				e.permit, e.permitID = true, p.ID
			}
		}
		entries[action] = e
	}
	return &TokenProgram{entries: entries}
}

var _ Decider = (*TokenProgram)(nil)

// Len returns the number of distinct action phrases in the program.
func (t *TokenProgram) Len() int { return len(t.entries) }

// Decide implements Decider: one attribute fetch and one map probe.
func (t *TokenProgram) Decide(req xacml.Request) (xacml.Decision, string) {
	action, ok := req.Get(xacml.Action, "id")
	if !ok {
		return xacml.DecisionIndeterminate, ""
	}
	e, ok := t.entries[action.String()]
	switch {
	case !ok:
		return xacml.DecisionNotApplicable, ""
	case e.deny:
		return xacml.DecisionDeny, e.denyID
	case e.permit:
		return xacml.DecisionPermit, e.permitID
	default:
		return xacml.DecisionNotApplicable, ""
	}
}
