package engine

import "agenp/internal/obs"

// Telemetry for the serving path. Decide pays one counter increment;
// compilation (rare) records its own latency and publishes the served
// generation so operators can watch hot-swaps happen.
var (
	statCompiles   = obs.C("engine.compiles")
	statCompileDur = obs.H("engine.compile.duration")
	statGeneration = obs.G("engine.generation")
	statPolicies   = obs.G("engine.policies")
	statDecisions  = obs.C("engine.decisions")
	statBatches    = obs.C("engine.batches")
)
