// Package explain implements the policy explainability of the paper's
// Section V.B: rule-level decision traces ("which rules within a policy
// were the ones that were applied to the request") and counterfactual
// explanations in the style of Wachter et al. ("if your income had been
// $45,000, you would have been offered a loan").
package explain

import (
	"fmt"
	"sort"
	"strings"

	"agenp/internal/quality"
	"agenp/internal/xacml"
)

// Trace explains a single decision: the outcome and the rules that
// fired, in evaluation order.
type Trace struct {
	Request  xacml.Request
	Decision xacml.Decision
	// Fired lists the rules that matched, with their effects.
	Fired []FiredRule
	// PolicyID names the evaluated policy.
	PolicyID string
}

// FiredRule is one rule that applied to the request.
type FiredRule struct {
	RuleID string
	Effect xacml.Effect
	// Decisive marks the rule that determined the final decision under
	// the policy's combining algorithm.
	Decisive bool
}

// Explain evaluates the policy and produces a decision trace.
func Explain(p *xacml.Policy, r xacml.Request) *Trace {
	decision, firedIDs := p.EvaluateTraced(r)
	tr := &Trace{Request: r, Decision: decision, PolicyID: p.ID}
	byID := make(map[string]xacml.Rule, len(p.Rules))
	for _, ru := range p.Rules {
		byID[ru.ID] = ru
	}
	for _, id := range firedIDs {
		tr.Fired = append(tr.Fired, FiredRule{RuleID: id, Effect: byID[id].Effect})
	}
	// The decisive rule is the one whose effect equals the decision;
	// under deny-overrides it is the first deny, under permit-overrides
	// the first permit, under first-applicable the first fired.
	for i := range tr.Fired {
		effectMatches := (decision == xacml.DecisionPermit && tr.Fired[i].Effect == xacml.Permit) ||
			(decision == xacml.DecisionDeny && tr.Fired[i].Effect == xacml.Deny)
		if effectMatches {
			tr.Fired[i].Decisive = true
			break
		}
	}
	return tr
}

func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s -> %s\n", t.Request, t.Decision)
	for _, f := range t.Fired {
		marker := " "
		if f.Decisive {
			marker = "*"
		}
		fmt.Fprintf(&sb, "  %s %s (%s)\n", marker, f.RuleID, f.Effect)
	}
	return sb.String()
}

// Counterfactual is a minimal change to the request that flips the
// decision.
type Counterfactual struct {
	// Changes maps "category.attr" to the new value.
	Changes map[string]xacml.Value
	// Decision is the outcome after the changes.
	Decision xacml.Decision
}

func (c Counterfactual) String() string {
	keys := make([]string, 0, len(c.Changes))
	for k := range c.Changes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s = %s", k, c.Changes[k])
	}
	return fmt.Sprintf("if %s then %s", strings.Join(parts, " and "), c.Decision)
}

// CounterfactualOptions bounds the counterfactual search.
type CounterfactualOptions struct {
	// MaxChanges bounds the number of attributes changed (default 2).
	MaxChanges int
	// MaxResults bounds the number of counterfactuals returned
	// (default 3).
	MaxResults int
	// Want restricts the target decision (0 = any different decision).
	Want xacml.Decision
}

// Counterfactuals searches the attribute domain for minimal changes to
// the request that change the policy decision. Results are ordered by
// the number of changed attributes (minimality first), matching the
// counterfactual-explanation notion of Section V.B.
func Counterfactuals(p *xacml.Policy, r xacml.Request, d *quality.Domain, opts CounterfactualOptions) []Counterfactual {
	maxChanges := opts.MaxChanges
	if maxChanges <= 0 {
		maxChanges = 2
	}
	maxResults := opts.MaxResults
	if maxResults <= 0 {
		maxResults = 3
	}
	base := p.Evaluate(r)

	type coord struct {
		cat  xacml.Category
		attr string
		vals []xacml.Value
	}
	var coords []coord
	for cat, attrs := range d.Values {
		for a, vals := range attrs {
			coords = append(coords, coord{cat: cat, attr: a, vals: vals})
		}
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].cat != coords[j].cat {
			return coords[i].cat < coords[j].cat
		}
		return coords[i].attr < coords[j].attr
	})

	var out []Counterfactual
	// Breadth-first over the number of changed attributes guarantees
	// minimality.
	var rec func(start int, changed map[string]xacml.Value, req xacml.Request, budget int)
	rec = func(start int, changed map[string]xacml.Value, req xacml.Request, budget int) {
		if len(out) >= maxResults || budget == 0 {
			return
		}
		for i := start; i < len(coords); i++ {
			c := coords[i]
			orig, had := req.Get(c.cat, c.attr)
			for _, v := range c.vals {
				if had && v.Equal(orig) {
					continue
				}
				req.Set(c.cat, c.attr, v)
				key := fmt.Sprintf("%s.%s", c.cat, c.attr)
				changed[key] = v
				dNew := p.Evaluate(req)
				flip := dNew != base
				if opts.Want != 0 {
					flip = dNew == opts.Want && dNew != base
				}
				if flip {
					cp := make(map[string]xacml.Value, len(changed))
					for k, val := range changed {
						cp[k] = val
					}
					out = append(out, Counterfactual{Changes: cp, Decision: dNew})
					if len(out) >= maxResults {
						delete(changed, key)
						restore(req, c.cat, c.attr, orig, had)
						return
					}
				} else {
					rec(i+1, changed, req, budget-1)
				}
				delete(changed, key)
			}
			restore(req, c.cat, c.attr, orig, had)
		}
	}
	// Depth-bounded iterative deepening for minimality.
	for depth := 1; depth <= maxChanges && len(out) == 0; depth++ {
		rec(0, make(map[string]xacml.Value), r.Clone(), depth)
	}
	return out
}

func restore(r xacml.Request, cat xacml.Category, attr string, v xacml.Value, had bool) {
	if had {
		r.Set(cat, attr, v)
		return
	}
	if m, ok := r[cat]; ok {
		delete(m, attr)
	}
}
