package explain

import (
	"strings"
	"testing"

	"agenp/internal/quality"
	"agenp/internal/xacml"
)

func loanPolicy() *xacml.Policy {
	// The paper's GDPR loan example, as a policy: permit a loan when
	// income >= 45000, deny otherwise when income attribute is present.
	return &xacml.Policy{
		ID:        "loan",
		Combining: xacml.FirstApplicable,
		Rules: []xacml.Rule{
			{
				ID:     "permit-high-income",
				Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "income", Op: xacml.OpGeq, Value: xacml.I(45000)}},
			},
			{
				ID:     "deny-low-income",
				Effect: xacml.Deny,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "income", Op: xacml.OpLt, Value: xacml.I(45000)}},
			},
		},
	}
}

func loanDomain() *quality.Domain {
	return quality.NewDomain().
		Add(xacml.Subject, "income", xacml.I(40000), xacml.I(45000), xacml.I(50000)).
		Add(xacml.Subject, "history", xacml.S("good"), xacml.S("bad"))
}

func TestExplainTrace(t *testing.T) {
	p := loanPolicy()
	r := xacml.NewRequest().Set(xacml.Subject, "income", xacml.I(40000))
	tr := Explain(p, r)
	if tr.Decision != xacml.DecisionDeny {
		t.Fatalf("decision = %v", tr.Decision)
	}
	if len(tr.Fired) != 1 || tr.Fired[0].RuleID != "deny-low-income" || !tr.Fired[0].Decisive {
		t.Errorf("Fired = %+v", tr.Fired)
	}
	s := tr.String()
	if !strings.Contains(s, "* deny-low-income") {
		t.Errorf("trace rendering missing decisive marker:\n%s", s)
	}
}

func TestExplainDecisiveUnderDenyOverrides(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "permit-any", Effect: xacml.Permit},
			{ID: "deny-minors", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Subject, Attr: "age", Op: xacml.OpLt, Value: xacml.I(18)}}},
		},
	}
	r := xacml.NewRequest().Set(xacml.Subject, "age", xacml.I(15))
	tr := Explain(p, r)
	if tr.Decision != xacml.DecisionDeny {
		t.Fatalf("decision = %v", tr.Decision)
	}
	var decisive string
	for _, f := range tr.Fired {
		if f.Decisive {
			decisive = f.RuleID
		}
	}
	if decisive != "deny-minors" {
		t.Errorf("decisive = %q, want deny-minors (fired: %+v)", decisive, tr.Fired)
	}
}

func TestExplainNotApplicable(t *testing.T) {
	p := loanPolicy()
	r := xacml.NewRequest().Set(xacml.Subject, "history", xacml.S("good"))
	tr := Explain(p, r)
	if tr.Decision != xacml.DecisionNotApplicable || len(tr.Fired) != 0 {
		t.Errorf("trace = %+v", tr)
	}
}

func TestCounterfactualLoanExample(t *testing.T) {
	// The paper's example: "You were denied a loan because your annual
	// income was $40,000. If your income had been $45,000, you would
	// have been offered a loan."
	p := loanPolicy()
	r := xacml.NewRequest().
		Set(xacml.Subject, "income", xacml.I(40000)).
		Set(xacml.Subject, "history", xacml.S("good"))
	if p.Evaluate(r) != xacml.DecisionDeny {
		t.Fatal("setup: should be denied")
	}
	cfs := Counterfactuals(p, r, loanDomain(), CounterfactualOptions{Want: xacml.DecisionPermit})
	if len(cfs) == 0 {
		t.Fatal("no counterfactuals found")
	}
	first := cfs[0]
	if len(first.Changes) != 1 {
		t.Fatalf("counterfactual not minimal: %v", first)
	}
	v, ok := first.Changes["subject.income"]
	if !ok || !v.IsInt || v.Int < 45000 {
		t.Errorf("counterfactual = %v, want income >= 45000", first)
	}
	if first.Decision != xacml.DecisionPermit {
		t.Errorf("target decision = %v", first.Decision)
	}
	if !strings.Contains(first.String(), "subject.income = 45000") {
		t.Errorf("String = %q", first.String())
	}
}

func TestCounterfactualMinimality(t *testing.T) {
	// A policy needing two changes: permit only dba with high clearance.
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.FirstApplicable,
		Rules: []xacml.Rule{
			{
				ID:     "strict",
				Effect: xacml.Permit,
				Target: xacml.Target{
					{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")},
					{Category: xacml.Subject, Attr: "clearance", Op: xacml.OpGeq, Value: xacml.I(3)},
				},
			},
		},
	}
	d := quality.NewDomain().
		Add(xacml.Subject, "role", xacml.S("dba"), xacml.S("dev")).
		Add(xacml.Subject, "clearance", xacml.I(1), xacml.I(3))
	r := xacml.NewRequest().
		Set(xacml.Subject, "role", xacml.S("dev")).
		Set(xacml.Subject, "clearance", xacml.I(1))
	cfs := Counterfactuals(p, r, d, CounterfactualOptions{MaxChanges: 2, Want: xacml.DecisionPermit})
	if len(cfs) == 0 {
		t.Fatal("no counterfactuals found")
	}
	if len(cfs[0].Changes) != 2 {
		t.Errorf("needs both changes, got %v", cfs[0])
	}
}

func TestCounterfactualNoneWithinBudget(t *testing.T) {
	p := loanPolicy()
	r := xacml.NewRequest().Set(xacml.Subject, "income", xacml.I(40000))
	// Domain without any income >= 45000: no counterfactual exists.
	d := quality.NewDomain().Add(xacml.Subject, "income", xacml.I(40000), xacml.I(41000))
	cfs := Counterfactuals(p, r, d, CounterfactualOptions{Want: xacml.DecisionPermit})
	if len(cfs) != 0 {
		t.Errorf("unexpected counterfactuals: %v", cfs)
	}
}

func TestCounterfactualRequestUnchanged(t *testing.T) {
	p := loanPolicy()
	r := xacml.NewRequest().Set(xacml.Subject, "income", xacml.I(40000))
	Counterfactuals(p, r, loanDomain(), CounterfactualOptions{})
	if v, _ := r.Get(xacml.Subject, "income"); v.Int != 40000 {
		t.Error("Counterfactuals mutated the input request")
	}
}

func TestCounterfactualMaxResults(t *testing.T) {
	p := loanPolicy()
	r := xacml.NewRequest().Set(xacml.Subject, "income", xacml.I(40000))
	cfs := Counterfactuals(p, r, loanDomain(), CounterfactualOptions{MaxResults: 1})
	if len(cfs) != 1 {
		t.Errorf("MaxResults ignored: %d results", len(cfs))
	}
}
