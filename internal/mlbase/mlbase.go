// Package mlbase provides the shallow statistical-learning baselines the
// paper compares the symbolic learner against (Section IV.A: "the ASG
// based GPM outperforms shallow Machine Learning techniques ... as fewer
// examples are required to achieve a greater accuracy"): an ID3 decision
// tree, a categorical naive Bayes classifier, and a majority-class
// baseline, all over categorical features.
package mlbase

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Instance is one training or test example: categorical features and a
// class label.
type Instance struct {
	Features map[string]string
	Label    string
}

// Classifier predicts a label from features.
type Classifier interface {
	Predict(features map[string]string) string
}

// Accuracy scores a classifier on a test set.
func Accuracy(c Classifier, test []Instance) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for _, in := range test {
		if c.Predict(in.Features) == in.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}

// --- majority baseline ---

// Majority always predicts the most frequent training label.
type Majority struct {
	label string
}

var _ Classifier = (*Majority)(nil)

// TrainMajority fits the majority baseline.
func TrainMajority(train []Instance) *Majority {
	counts := make(map[string]int)
	for _, in := range train {
		counts[in.Label]++
	}
	best, bestN := "", -1
	for _, l := range sortedKeys(counts) {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return &Majority{label: best}
}

// Predict implements Classifier.
func (m *Majority) Predict(map[string]string) string { return m.label }

// --- ID3 decision tree ---

// TreeNode is a node of an ID3 decision tree.
type TreeNode struct {
	// Leaf label when Feature is empty.
	Label string
	// Feature tested at this node.
	Feature string
	// Children maps feature values to subtrees.
	Children map[string]*TreeNode
	// Default label for unseen feature values.
	Default string
}

// DecisionTree is an ID3-trained classifier.
type DecisionTree struct {
	root *TreeNode
}

var _ Classifier = (*DecisionTree)(nil)

// TreeOptions configures ID3.
type TreeOptions struct {
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int
	// MinSamples stops splitting below this many instances (default 1).
	MinSamples int
}

// TrainID3 fits a decision tree with information-gain splitting.
func TrainID3(train []Instance, opts TreeOptions) *DecisionTree {
	minSamples := opts.MinSamples
	if minSamples <= 0 {
		minSamples = 1
	}
	features := make(map[string]struct{})
	for _, in := range train {
		for f := range in.Features {
			features[f] = struct{}{}
		}
	}
	fs := make([]string, 0, len(features))
	for f := range features {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	return &DecisionTree{root: id3(train, fs, opts.MaxDepth, minSamples, 0)}
}

func id3(data []Instance, features []string, maxDepth, minSamples, depth int) *TreeNode {
	maj := majorityLabel(data)
	if len(data) == 0 {
		return &TreeNode{Label: maj}
	}
	if pure(data) || len(features) == 0 || len(data) < minSamples ||
		(maxDepth > 0 && depth >= maxDepth) {
		return &TreeNode{Label: maj}
	}
	// Pick the best information-gain feature; zero-gain splits are
	// allowed (ties broken by feature order) as long as the feature
	// actually partitions the data — without this, parity-style concepts
	// like XOR, where every single feature is individually uninformative,
	// would be unlearnable.
	bestF, bestGain := "", -1.0
	for _, f := range features {
		if distinctValues(data, f) < 2 {
			continue
		}
		g := gain(data, f)
		if g > bestGain {
			bestF, bestGain = f, g
		}
	}
	if bestF == "" {
		return &TreeNode{Label: maj}
	}
	node := &TreeNode{Feature: bestF, Children: make(map[string]*TreeNode), Default: maj}
	rest := make([]string, 0, len(features)-1)
	for _, f := range features {
		if f != bestF {
			rest = append(rest, f)
		}
	}
	parts := make(map[string][]Instance)
	for _, in := range data {
		parts[in.Features[bestF]] = append(parts[in.Features[bestF]], in)
	}
	for _, v := range sortedKeys(parts) {
		node.Children[v] = id3(parts[v], rest, maxDepth, minSamples, depth+1)
	}
	return node
}

func distinctValues(data []Instance, feature string) int {
	seen := make(map[string]struct{})
	for _, in := range data {
		seen[in.Features[feature]] = struct{}{}
	}
	return len(seen)
}

func pure(data []Instance) bool {
	for i := 1; i < len(data); i++ {
		if data[i].Label != data[0].Label {
			return false
		}
	}
	return true
}

func majorityLabel(data []Instance) string {
	counts := make(map[string]int)
	for _, in := range data {
		counts[in.Label]++
	}
	best, bestN := "", -1
	for _, l := range sortedKeys(counts) {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return best
}

func entropy(data []Instance) float64 {
	counts := make(map[string]int)
	for _, in := range data {
		counts[in.Label]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func gain(data []Instance, feature string) float64 {
	parts := make(map[string][]Instance)
	for _, in := range data {
		parts[in.Features[feature]] = append(parts[in.Features[feature]], in)
	}
	h := entropy(data)
	n := float64(len(data))
	for _, part := range parts {
		h -= float64(len(part)) / n * entropy(part)
	}
	return h
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(features map[string]string) string {
	node := t.root
	for node.Feature != "" {
		child, ok := node.Children[features[node.Feature]]
		if !ok {
			return node.Default
		}
		node = child
	}
	return node.Label
}

// Depth returns the tree depth (a single leaf has depth 1).
func (t *DecisionTree) Depth() int {
	var rec func(n *TreeNode) int
	rec = func(n *TreeNode) int {
		if n.Feature == "" {
			return 1
		}
		max := 0
		for _, c := range n.Children {
			if d := rec(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return rec(t.root)
}

// String renders the tree for inspection.
func (t *DecisionTree) String() string {
	var sb strings.Builder
	var rec func(n *TreeNode, indent string)
	rec = func(n *TreeNode, indent string) {
		if n.Feature == "" {
			fmt.Fprintf(&sb, "%s-> %s\n", indent, n.Label)
			return
		}
		for _, v := range sortedNodeKeys(n.Children) {
			fmt.Fprintf(&sb, "%s%s = %s:\n", indent, n.Feature, v)
			rec(n.Children[v], indent+"  ")
		}
	}
	rec(t.root, "")
	return sb.String()
}

// --- naive Bayes ---

// NaiveBayes is a categorical naive Bayes classifier with Laplace
// smoothing.
type NaiveBayes struct {
	labels []string
	prior  map[string]float64
	// cond[label][feature][value] = P(value | label), smoothed.
	cond map[string]map[string]map[string]float64
	// vocab[feature] = number of distinct values (for smoothing).
	vocab map[string]int
}

var _ Classifier = (*NaiveBayes)(nil)

// TrainNaiveBayes fits the classifier.
func TrainNaiveBayes(train []Instance) *NaiveBayes {
	nb := &NaiveBayes{
		prior: make(map[string]float64),
		cond:  make(map[string]map[string]map[string]float64),
		vocab: make(map[string]int),
	}
	labelCounts := make(map[string]int)
	valueSets := make(map[string]map[string]struct{})
	counts := make(map[string]map[string]map[string]int)
	for _, in := range train {
		labelCounts[in.Label]++
		if counts[in.Label] == nil {
			counts[in.Label] = make(map[string]map[string]int)
		}
		for f, v := range in.Features {
			if valueSets[f] == nil {
				valueSets[f] = make(map[string]struct{})
			}
			valueSets[f][v] = struct{}{}
			if counts[in.Label][f] == nil {
				counts[in.Label][f] = make(map[string]int)
			}
			counts[in.Label][f][v]++
		}
	}
	for f, vs := range valueSets {
		nb.vocab[f] = len(vs)
	}
	n := float64(len(train))
	nb.labels = sortedKeys(labelCounts)
	for _, l := range nb.labels {
		nb.prior[l] = float64(labelCounts[l]) / n
		nb.cond[l] = make(map[string]map[string]float64)
		for f := range valueSets {
			nb.cond[l][f] = make(map[string]float64)
			total := 0
			for _, c := range counts[l][f] {
				total += c
			}
			for v := range valueSets[f] {
				nb.cond[l][f][v] = (float64(counts[l][f][v]) + 1) / (float64(total) + float64(nb.vocab[f]))
			}
		}
	}
	return nb
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(features map[string]string) string {
	best, bestScore := "", math.Inf(-1)
	for _, l := range nb.labels {
		score := math.Log(nb.prior[l])
		for f, v := range features {
			p, ok := nb.cond[l][f][v]
			if !ok {
				// Unseen value: uniform smoothing mass.
				p = 1 / float64(nb.vocab[f]+1)
			}
			score += math.Log(p)
		}
		if score > bestScore {
			best, bestScore = l, score
		}
	}
	return best
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedNodeKeys(m map[string]*TreeNode) []string {
	return sortedKeys(m)
}
