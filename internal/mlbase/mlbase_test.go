package mlbase

import (
	"strings"
	"testing"
)

// xorData is a dataset a linear/shallow model struggles with but ID3
// solves: label = a XOR b.
func xorData() []Instance {
	var out []Instance
	for _, a := range []string{"0", "1"} {
		for _, b := range []string{"0", "1"} {
			label := "no"
			if a != b {
				label = "yes"
			}
			out = append(out, Instance{Features: map[string]string{"a": a, "b": b}, Label: label})
		}
	}
	return out
}

func TestMajority(t *testing.T) {
	train := []Instance{
		{Features: map[string]string{"x": "1"}, Label: "permit"},
		{Features: map[string]string{"x": "2"}, Label: "permit"},
		{Features: map[string]string{"x": "3"}, Label: "deny"},
	}
	m := TrainMajority(train)
	if m.Predict(map[string]string{"x": "9"}) != "permit" {
		t.Error("majority should predict permit")
	}
	if acc := Accuracy(m, train); acc < 0.66 || acc > 0.67 {
		t.Errorf("accuracy = %f", acc)
	}
}

func TestID3LearnsXOR(t *testing.T) {
	data := xorData()
	tree := TrainID3(data, TreeOptions{})
	if acc := Accuracy(tree, data); acc != 1.0 {
		t.Errorf("ID3 on XOR accuracy = %f, want 1.0\n%s", acc, tree)
	}
	if d := tree.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3 (two splits + leaf)", d)
	}
}

func TestID3PureLeafShortCircuit(t *testing.T) {
	data := []Instance{
		{Features: map[string]string{"a": "0"}, Label: "yes"},
		{Features: map[string]string{"a": "1"}, Label: "yes"},
	}
	tree := TrainID3(data, TreeOptions{})
	if tree.Depth() != 1 {
		t.Errorf("pure data should give a single leaf, depth = %d", tree.Depth())
	}
}

func TestID3MaxDepth(t *testing.T) {
	tree := TrainID3(xorData(), TreeOptions{MaxDepth: 1})
	if d := tree.Depth(); d > 2 {
		t.Errorf("MaxDepth ignored: depth = %d", d)
	}
}

func TestID3UnseenValueFallsBack(t *testing.T) {
	data := []Instance{
		{Features: map[string]string{"color": "red"}, Label: "stop"},
		{Features: map[string]string{"color": "red"}, Label: "stop"},
		{Features: map[string]string{"color": "green"}, Label: "go"},
	}
	tree := TrainID3(data, TreeOptions{})
	// Unseen "blue" falls back to the node default (majority = stop).
	if got := tree.Predict(map[string]string{"color": "blue"}); got != "stop" {
		t.Errorf("unseen value prediction = %q, want stop", got)
	}
}

func TestID3String(t *testing.T) {
	tree := TrainID3(xorData(), TreeOptions{})
	s := tree.String()
	if !strings.Contains(s, "a = 0") && !strings.Contains(s, "b = 0") {
		t.Errorf("tree rendering unexpected:\n%s", s)
	}
}

func TestNaiveBayesSimple(t *testing.T) {
	train := []Instance{
		{Features: map[string]string{"weather": "rain"}, Label: "deny"},
		{Features: map[string]string{"weather": "rain"}, Label: "deny"},
		{Features: map[string]string{"weather": "clear"}, Label: "permit"},
		{Features: map[string]string{"weather": "clear"}, Label: "permit"},
	}
	nb := TrainNaiveBayes(train)
	if nb.Predict(map[string]string{"weather": "rain"}) != "deny" {
		t.Error("rain should be denied")
	}
	if nb.Predict(map[string]string{"weather": "clear"}) != "permit" {
		t.Error("clear should be permitted")
	}
	// Unseen value: falls back without panicking.
	_ = nb.Predict(map[string]string{"weather": "fog"})
	if acc := Accuracy(nb, train); acc != 1.0 {
		t.Errorf("accuracy = %f", acc)
	}
}

func TestNaiveBayesFailsOnXOR(t *testing.T) {
	// XOR is the canonical counterexample for NB's independence
	// assumption: both features are individually uninformative.
	data := xorData()
	nb := TrainNaiveBayes(data)
	if acc := Accuracy(nb, data); acc > 0.75 {
		t.Errorf("NB should not solve XOR, accuracy = %f", acc)
	}
}

func TestAccuracyEmptyTestSet(t *testing.T) {
	if Accuracy(TrainMajority(nil), nil) != 0 {
		t.Error("empty test set accuracy should be 0")
	}
}

func TestDeterministicTraining(t *testing.T) {
	data := xorData()
	t1 := TrainID3(data, TreeOptions{}).String()
	t2 := TrainID3(data, TreeOptions{}).String()
	if t1 != t2 {
		t.Error("ID3 training not deterministic")
	}
}
