package agenp

import (
	"fmt"
	"io"

	"agenp/internal/asg"
)

// State persistence: an AMS snapshots its policy repository and its
// learned hypothesis so a rebooting device (the "self-adaptive" parties
// of Section I operate in unstable environments) resumes with the
// policies and model it had learned, not the factory-initial GPM.
//
// The grammar itself is not serialized: the initial GPM and the
// hypothesis space are configuration, so the learned model is recovered
// by replaying the learned hypothesis rules (stored by their index in
// the space) onto the configured initial grammar.

// SavePolicies writes the policy repository snapshot.
func (a *AMS) SavePolicies(w io.Writer) error {
	return a.repo.Save(w)
}

// LoadPolicies restores the policy repository from a snapshot.
func (a *AMS) LoadPolicies(r io.Reader) error {
	return a.repo.Load(r)
}

// LearnedHypothesis returns the hypothesis rules accumulated by all
// adaptations so far, as indices into the configured hypothesis space
// (-1 entries mark rules that are not in the space, which cannot be
// persisted this way).
func (a *AMS) LearnedHypothesis() []asg.HypothesisRule {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]asg.HypothesisRule, len(a.learned))
	copy(out, a.learned)
	return out
}

// RestoreHypothesis replays previously learned hypothesis rules onto the
// *initial* model (version 0 of the representations repository), pushes
// the resulting model, and regenerates policies. Use after constructing
// an AMS with the same Config that produced the snapshot.
func (a *AMS) RestoreHypothesis(h []asg.HypothesisRule) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	base, err := a.models.At(0)
	if err != nil {
		return err
	}
	grammar, err := base.Grammar.WithHypothesis(h)
	if err != nil {
		return fmt.Errorf("agenp: restoring hypothesis: %w", err)
	}
	restored := *base
	restored.Grammar = grammar
	a.models.Push(&restored)
	a.learned = append(a.learned[:0], h...)
	_, _, err = a.regenerateLocked()
	return err
}
