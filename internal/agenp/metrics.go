package agenp

import "agenp/internal/obs"

// Telemetry for the AMS component flows. Counters are flushed at natural
// batch points (one Regenerate, one adaptation, one shared-policy vet),
// so the steady-state cost is a handful of atomic adds per cycle.
var (
	statRegens      = obs.C("agenp.regenerations")
	statGenerated   = obs.C("agenp.policies.generated")
	statAccepted    = obs.C("agenp.policies.accepted")
	statRejected    = obs.C("agenp.policies.rejected")
	statAdaptations = obs.C("agenp.adaptations")

	// PCP vetting latency: filter is the whole-generation batch during
	// Regenerate; check is one shared policy during ImportShared.
	statFilterDur = obs.H("agenp.pcp.filter.duration")
	statCheckDur  = obs.H("agenp.pcp.check.duration")

	// Symbolic verification gate: candidate generations or imports
	// rejected for introducing new permit/deny conflicts.
	statVerifyVetoes = obs.C("agenp.verify.vetoes")
)
