// Package agenp implements the AGENP architecture of the paper's
// Figure 2: the Autonomous Management System (AMS) with its Policy
// Refinement Point (PReP), Policy Adaptation Point (PAdaP), Policy
// Checking Point (PCP), Policy Information Point (PIP), Policy Decision
// Point (PDP) and Policy Enforcement Point (PEP), wired around a policy
// repository, a representations repository of learned generative policy
// models, and a monitoring log that feeds adaptation.
package agenp

import (
	"fmt"
	"sort"
	"strings"

	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/engine"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// ContextProvider is the PIP-facing source of the current operating
// context (paper Section III.A.3: external conditions that affect the
// operation of the AMS).
type ContextProvider interface {
	// Current returns the context as an ASP program of facts.
	Current() *asp.Program
}

// StaticContext is a fixed context, useful for tests and planning-phase
// policies.
type StaticContext struct {
	Program *asp.Program
}

var _ ContextProvider = (*StaticContext)(nil)

// Current implements ContextProvider.
func (s *StaticContext) Current() *asp.Program {
	if s.Program == nil {
		return asp.NewProgram()
	}
	return s.Program
}

// ContextKey canonically renders a context for change detection.
func ContextKey(p *asp.Program) string {
	if p == nil {
		return ""
	}
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// PIP caches the latest context from a provider and reports changes.
type PIP struct {
	provider ContextProvider
	lastKey  string
}

// NewPIP wraps a provider.
func NewPIP(p ContextProvider) *PIP {
	return &PIP{provider: p}
}

// Acquire fetches the current context and reports whether it changed
// since the previous acquisition.
func (p *PIP) Acquire() (*asp.Program, bool) {
	ctx := p.provider.Current()
	key := ContextKey(ctx)
	changed := key != p.lastKey
	p.lastKey = key
	return ctx, changed
}

// Validator checks one generated or shared policy; a non-nil error marks
// the policy invalid (the PCP's Violation Detector role).
type Validator interface {
	// Check returns nil when the policy is acceptable in the context.
	Check(p policy.Policy, ctx *asp.Program) error
}

// ValidatorFunc adapts a function to Validator.
type ValidatorFunc func(p policy.Policy, ctx *asp.Program) error

// Check implements Validator.
func (f ValidatorFunc) Check(p policy.Policy, ctx *asp.Program) error { return f(p, ctx) }

// MembershipValidator accepts policies that are in the language of the
// GPM under the context — the natural validity notion for ASG-based
// GPMs, also used to vet policies shared by other coalition parties.
type MembershipValidator struct {
	Models *core.Representations
}

var _ Validator = (*MembershipValidator)(nil)

// Check implements Validator.
func (v *MembershipValidator) Check(p policy.Policy, ctx *asp.Program) error {
	ok, err := v.Models.Latest().Validate(p.Tokens, ctx)
	if err != nil {
		return fmt.Errorf("agenp: membership check: %w", err)
	}
	if !ok {
		return fmt.Errorf("agenp: policy %q not in GPM language for current context", p.Text())
	}
	return nil
}

// PCP is the Policy Checking Point: it runs every validator over a
// policy (violation detection) and exposes quality assessment hooks.
type PCP struct {
	validators []Validator
}

// NewPCP builds a PCP from validators.
func NewPCP(validators ...Validator) *PCP {
	return &PCP{validators: validators}
}

// Check runs all validators; the first error is returned.
func (c *PCP) Check(p policy.Policy, ctx *asp.Program) error {
	for _, v := range c.validators {
		if err := v.Check(p, ctx); err != nil {
			return err
		}
	}
	return nil
}

// Filter partitions policies into accepted and rejected (with reasons).
func (c *PCP) Filter(ps []policy.Policy, ctx *asp.Program) (accepted []policy.Policy, rejected map[string]error) {
	rejected = make(map[string]error)
	for _, p := range ps {
		if err := c.Check(p, ctx); err != nil {
			rejected[p.ID] = err
			continue
		}
		accepted = append(accepted, p)
	}
	return accepted, rejected
}

// Interpreter turns the repository's generated policies into decisions
// for concrete requests. The mapping from policy strings to decisions is
// domain-specific; each application (CAV, resupply, data sharing)
// supplies its own. The policies slice is the repository's immutable
// snapshot storage: implementations must not mutate or retain it.
type Interpreter interface {
	// Decide returns the decision and the id of the policy that
	// determined it ("" when no policy applies).
	Decide(policies []policy.Policy, req xacml.Request) (xacml.Decision, string)
}

// DeciderCompiler is optionally implemented by Interpreters that can
// compile a policy set into a standalone decision program once per
// generation instead of re-interpreting it per request. The PDP uses the
// compiled path when available.
type DeciderCompiler interface {
	CompileDecider(policies []policy.Policy) (engine.Decider, error)
}

// ErrNoPolicy is reported when the PDP has no applicable policy. It is
// the engine's sentinel: the no-policy decision path does not allocate.
var ErrNoPolicy = engine.ErrNoPolicy

// interpreterDecider adapts a plain Interpreter to the engine's Decider
// over one frozen policy snapshot: the slice is captured at compile time,
// so serving performs no repository reads or copies.
type interpreterDecider struct {
	in       Interpreter
	policies []policy.Policy
}

func (d interpreterDecider) Decide(req xacml.Request) (xacml.Decision, string) {
	return d.in.Decide(d.policies, req)
}

// PDP is the Policy Decision Point. It serves requests from a compiled
// DecisionEngine snapshot: the policy set is compiled once per
// repository generation (by the interpreter's DeciderCompiler when
// implemented, otherwise by freezing the snapshot under the plain
// Interpreter) and hot-swapped atomically on regeneration, so Decide
// never copies the repository or takes its lock.
type PDP struct {
	repo        *policy.Repository
	interpreter Interpreter
	engine      *engine.Engine
}

// NewPDP builds a PDP.
func NewPDP(repo *policy.Repository, in Interpreter) *PDP {
	compile := func(policies []policy.Policy) (engine.Decider, error) {
		if c, ok := in.(DeciderCompiler); ok {
			return c.CompileDecider(policies)
		}
		return interpreterDecider{in: in, policies: policies}, nil
	}
	return &PDP{repo: repo, interpreter: in, engine: engine.New(repo, compile)}
}

// Engine exposes the underlying decision engine (generation inspection,
// explicit refresh).
func (d *PDP) Engine() *engine.Engine { return d.engine }

// Refresh eagerly recompiles the decision engine if the repository moved
// since the served snapshot. Decide self-heals lazily even without it;
// regeneration points call it so the swap cost is paid at update time,
// not on the first request after.
func (d *PDP) Refresh() error {
	_, err := d.engine.Refresh()
	return err
}

// Decide evaluates a request against the current policies.
func (d *PDP) Decide(req xacml.Request) (xacml.Decision, string, error) {
	return d.engine.Decide(req)
}

// DecideBatch evaluates requests under one consistent snapshot,
// appending to out (see engine.Engine.DecideBatch).
func (d *PDP) DecideBatch(reqs []xacml.Request, out []engine.Result) ([]engine.Result, error) {
	return d.engine.DecideBatch(reqs, out)
}

// Outcome is what the PEP observed when executing a decision.
type Outcome struct {
	Decision xacml.Decision
	PolicyID string
	// Violation marks that executing the decision violated operational
	// expectations (detected by monitoring or operator feedback).
	Violation bool
	// Err carries enforcement failures.
	Err error
}

// Effector applies permitted actions to the managed resources and
// reports whether the effect was acceptable. Implementations simulate
// the managed system.
type Effector interface {
	Execute(req xacml.Request, decision xacml.Decision) (violation bool, err error)
}

// EffectorFunc adapts a function to Effector.
type EffectorFunc func(req xacml.Request, decision xacml.Decision) (bool, error)

// Execute implements Effector.
func (f EffectorFunc) Execute(req xacml.Request, d xacml.Decision) (bool, error) {
	return f(req, d)
}

// PEP is the Policy Enforcement Point: it executes PDP decisions on the
// managed resources and records monitoring history.
type PEP struct {
	pdp      *PDP
	effector Effector
	log      *policy.MonitorLog
}

// NewPEP builds a PEP.
func NewPEP(pdp *PDP, eff Effector, log *policy.MonitorLog) *PEP {
	return &PEP{pdp: pdp, effector: eff, log: log}
}

// Enforce decides and executes a request, recording the outcome.
func (e *PEP) Enforce(req xacml.Request, ctx *asp.Program) Outcome {
	decision, pid, err := e.pdp.Decide(req)
	out := Outcome{Decision: decision, PolicyID: pid}
	outcome := "ok"
	switch {
	case err != nil:
		out.Err = err
		outcome = "no-policy"
	default:
		violation, execErr := e.effector.Execute(req, decision)
		out.Violation = violation
		out.Err = execErr
		if violation {
			outcome = "violation"
		}
		if execErr != nil {
			outcome = "error"
		}
	}
	e.log.Append(policy.DecisionRecord{
		RequestKey: req.Key(),
		ContextKey: ContextKey(ctx),
		Decision:   decision.String(),
		PolicyID:   pid,
		Outcome:    outcome,
	})
	return out
}
