package agenp

import (
	"strings"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/xacml"
)

func TestPolicyPersistenceRoundTrip(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ams.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := newTestAMS(t, ctx)
	if err := fresh.LoadPolicies(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if fresh.Repository().Len() != ams.Repository().Len() {
		t.Errorf("restored %d policies, want %d", fresh.Repository().Len(), ams.Repository().Len())
	}
	// Decisions resume immediately without regeneration.
	d, _, err := fresh.Decide(actionReq("overtake"))
	if err != nil {
		t.Fatal(err)
	}
	if d != xacml.DecisionDeny {
		t.Errorf("restored decision = %v", d)
	}
}

func TestHypothesisRestore(t *testing.T) {
	rainCtx := &dynamicContext{}
	rainCtx.set(t, "weather(rain).")
	ams := newTestAMS(t, rainCtx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	rain, err := asp.Parse("weather(rain).")
	if err != nil {
		t.Fatal(err)
	}
	clear, err := asp.Parse("weather(clear).")
	if err != nil {
		t.Fatal(err)
	}
	// Drive an adaptation.
	for i := 0; i < 3; i++ {
		if _, err := ams.Observe(core.Feedback{Tokens: []string{"accept", "overtake"}, Context: rain, Valid: false}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ams.Observe(core.Feedback{Tokens: []string{"accept", "overtake"}, Context: clear, Valid: true}); err != nil {
		t.Fatal(err)
	}
	learned := ams.LearnedHypothesis()
	if len(learned) == 0 {
		t.Fatal("no learned hypothesis recorded")
	}

	// A fresh AMS with the same config restores the learned model.
	fresh := newTestAMS(t, rainCtx)
	if err := fresh.RestoreHypothesis(learned); err != nil {
		t.Fatal(err)
	}
	if fresh.Models().Version() != 2 {
		t.Errorf("restored versions = %d", fresh.Models().Version())
	}
	if _, ok := fresh.Repository().Get("accept_overtake"); ok {
		t.Error("restored model still generates accept_overtake in rain")
	}
	// The restored hypothesis is reported back.
	if len(fresh.LearnedHypothesis()) != len(learned) {
		t.Error("restored hypothesis not tracked")
	}
}

func TestRestoreHypothesisBadRule(t *testing.T) {
	ams := newTestAMS(t, &StaticContext{})
	bad, err := asp.ParseRule(":- x.")
	if err != nil {
		t.Fatal(err)
	}
	if err := ams.RestoreHypothesis([]asg.HypothesisRule{{Rule: bad, ProdID: 99}}); err == nil {
		t.Error("out-of-range production accepted")
	}
}
