package agenp

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"agenp/internal/asg"
	"agenp/internal/asglearn"
	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

const drivingGrammar = `
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

// dynamicContext is a mutable ContextProvider.
type dynamicContext struct {
	mu   sync.Mutex
	prog *asp.Program
}

func (d *dynamicContext) Current() *asp.Program {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.prog == nil {
		return asp.NewProgram()
	}
	return d.prog
}

func (d *dynamicContext) set(t *testing.T, src string) {
	t.Helper()
	p, err := asp.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	d.prog = p
	d.mu.Unlock()
}

func newTestAMS(t *testing.T, ctx ContextProvider) *AMS {
	t.Helper()
	model, err := core.ParseGPM(drivingGrammar)
	if err != nil {
		t.Fatal(err)
	}
	space := []asg.HypothesisRule{
		asglearn.MustParseHypothesisRule(":- task(overtake)@2, weather(rain).", 0),
		asglearn.MustParseHypothesisRule(":- weather(rain).", 0),
	}
	ams, err := New(Config{
		Name:        "cav-1",
		Model:       model,
		Space:       space,
		Context:     ctx,
		Interpreter: &TokenInterpreter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ams
}

func actionReq(id string) xacml.Request {
	return xacml.NewRequest().Set(xacml.Action, "id", xacml.S(id))
}

func TestRegenerateInstallsPolicies(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	accepted, rejected, err := ams.Regenerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(accepted) != 4 || len(rejected) != 0 {
		t.Fatalf("accepted %d rejected %d", len(accepted), len(rejected))
	}
	if ams.Repository().Len() != 4 {
		t.Errorf("repository has %d policies", ams.Repository().Len())
	}
}

func TestRegenerateRejectsUnsafeModel(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	// grant(X) is unsafe: the lint gate must refuse to install policies
	// from this model.
	model, err := core.ParseGPM(`policy -> "fly" { grant(X). }`)
	if err != nil {
		t.Fatal(err)
	}
	ams, err := New(Config{
		Name:        "bad",
		Model:       model,
		Context:     ctx,
		Interpreter: &TokenInterpreter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ams.Regenerate()
	if err == nil {
		t.Fatal("unsafe model regenerated")
	}
	if !strings.Contains(err.Error(), "lint") || !strings.Contains(err.Error(), "unsafe") {
		t.Errorf("error does not explain the lint rejection: %v", err)
	}
	if ams.Repository().Len() != 0 {
		t.Errorf("repository has %d policies from a rejected model", ams.Repository().Len())
	}
}

func TestDecideAndEnforce(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	// "accept overtake" and "reject overtake" are both generated; the
	// deny-overrides interpreter rejects.
	d, pid, err := ams.Decide(actionReq("overtake"))
	if err != nil {
		t.Fatal(err)
	}
	if d != xacml.DecisionDeny || pid != "reject_overtake" {
		t.Errorf("Decide = %v by %q", d, pid)
	}
	out := ams.Enforce(actionReq("park"))
	if out.Decision != xacml.DecisionDeny {
		t.Errorf("Enforce park = %v", out.Decision)
	}
	if ams.MonitorLog().Len() != 1 {
		t.Errorf("monitoring log = %d records", ams.MonitorLog().Len())
	}
}

func TestDecideNoPolicies(t *testing.T) {
	ams := newTestAMS(t, &StaticContext{})
	_, _, err := ams.Decide(actionReq("overtake"))
	if !errors.Is(err, ErrNoPolicy) {
		t.Errorf("err = %v, want ErrNoPolicy", err)
	}
}

func TestObserveTriggersAdaptation(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(rain).")
	ams := newTestAMS(t, ctx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	rain, _ := asp.Parse("weather(rain).")
	clear, _ := asp.Parse("weather(clear).")

	// Positive observations (park is fine in rain, overtake in clear).
	if adapted, err := ams.Observe(core.Feedback{Tokens: []string{"accept", "park"}, Context: rain, Valid: true}); err != nil || adapted {
		t.Fatalf("unexpected adaptation: %v %v", adapted, err)
	}
	if _, err := ams.Observe(core.Feedback{Tokens: []string{"accept", "overtake"}, Context: clear, Valid: true}); err != nil {
		t.Fatal(err)
	}
	// Three violations of accept-overtake-in-rain reach the threshold.
	for i := 0; i < 2; i++ {
		adapted, err := ams.Observe(core.Feedback{Tokens: []string{"accept", "overtake"}, Context: rain, Valid: false})
		if err != nil || adapted {
			t.Fatalf("iteration %d: adapted=%v err=%v", i, adapted, err)
		}
	}
	adapted, err := ams.Observe(core.Feedback{Tokens: []string{"accept", "overtake"}, Context: rain, Valid: false})
	if err != nil {
		t.Fatal(err)
	}
	if !adapted {
		t.Fatal("threshold reached but no adaptation")
	}
	if ams.Adaptations() != 1 || ams.Models().Version() != 2 {
		t.Errorf("adaptations=%d versions=%d", ams.Adaptations(), ams.Models().Version())
	}
	// After adaptation + regeneration in the rain context, the repository
	// no longer contains accept_overtake.
	if _, ok := ams.Repository().Get("accept_overtake"); ok {
		t.Error("accept_overtake survived adaptation in rain context")
	}
	if _, ok := ams.Repository().Get("accept_park"); !ok {
		t.Error("accept_park should remain valid")
	}
	// And the PDP now denies overtaking.
	d, _, err := ams.Decide(actionReq("overtake"))
	if err != nil {
		t.Fatal(err)
	}
	if d != xacml.DecisionDeny {
		t.Errorf("post-adaptation decision = %v", d)
	}
}

func TestAdaptWithoutFeedbackFails(t *testing.T) {
	ams := newTestAMS(t, &StaticContext{})
	if err := ams.Adapt(); err == nil {
		t.Error("Adapt with no feedback should fail")
	}
}

func TestImportShared(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	// A valid shared policy is accepted.
	err := ams.ImportShared(policy.Policy{Tokens: []string{"reject", "overtake"}}, "cav-2")
	if err != nil {
		t.Fatalf("ImportShared: %v", err)
	}
	p, ok := ams.Repository().Get("reject_overtake")
	if !ok || p.Source != policy.SourceShared || p.Origin != "cav-2" {
		t.Errorf("shared policy = %+v, %v", p, ok)
	}
	// A policy outside the GPM language is rejected by the PCP.
	err = ams.ImportShared(policy.Policy{Tokens: []string{"accept", "teleport"}}, "cav-2")
	if err == nil {
		t.Error("out-of-language shared policy accepted")
	}
}

func TestRunRegeneratesOnContextChange(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	before := ams.Stats().Regenerations

	ams.Run(5 * time.Millisecond)
	defer ams.Shutdown()

	// Unchanged context: no regeneration.
	time.Sleep(25 * time.Millisecond)
	if got := ams.Stats().Regenerations; got != before {
		t.Errorf("regenerated without context change: %d -> %d", before, got)
	}
	// Context change triggers regeneration.
	ctx.set(t, "weather(rain).")
	deadline := time.Now().Add(2 * time.Second)
	for ams.Stats().Regenerations == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ams.Stats().Regenerations == before {
		t.Error("context change did not trigger regeneration")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	ams := newTestAMS(t, &StaticContext{})
	ams.Shutdown() // not running: no-op
	ams.Run(time.Hour)
	ams.Run(time.Hour) // second Run is a no-op
	ams.Shutdown()
	ams.Shutdown()
}

func TestStats(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	ams.Enforce(actionReq("park"))
	s := ams.Stats()
	if s.Regenerations != 1 || s.Decisions != 1 || s.ModelVersions != 1 || s.Policies != 4 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestPIPChangeDetection(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	pip := NewPIP(ctx)
	_, changed := pip.Acquire()
	if !changed {
		t.Error("first acquisition should report change")
	}
	_, changed = pip.Acquire()
	if changed {
		t.Error("unchanged context reported as changed")
	}
	ctx.set(t, "weather(rain).")
	_, changed = pip.Acquire()
	if !changed {
		t.Error("changed context not detected")
	}
}

func TestContextKeyOrderIndependent(t *testing.T) {
	a, _ := asp.Parse("weather(rain). loa(3).")
	b, _ := asp.Parse("loa(3). weather(rain).")
	if ContextKey(a) != ContextKey(b) {
		t.Error("ContextKey depends on rule order")
	}
	if ContextKey(nil) != "" {
		t.Error("nil context key")
	}
}

func TestTokenInterpreter(t *testing.T) {
	ti := &TokenInterpreter{}
	ps := []policy.Policy{
		{ID: "a", Tokens: []string{"accept", "share", "images"}},
		{ID: "b", Tokens: []string{"reject", "share", "video"}},
		{ID: "junk", Tokens: []string{"malformed"}},
	}
	tests := []struct {
		action string
		want   xacml.Decision
		pid    string
	}{
		{action: "share images", want: xacml.DecisionPermit, pid: "a"},
		{action: "share video", want: xacml.DecisionDeny, pid: "b"},
		{action: "share audio", want: xacml.DecisionNotApplicable, pid: ""},
	}
	for _, tt := range tests {
		d, pid := ti.Decide(ps, actionReq(tt.action))
		if d != tt.want || pid != tt.pid {
			t.Errorf("Decide(%q) = %v, %q; want %v, %q", tt.action, d, pid, tt.want, tt.pid)
		}
	}
	// Missing action attribute.
	d, _ := ti.Decide(ps, xacml.NewRequest())
	if d != xacml.DecisionIndeterminate {
		t.Errorf("missing action = %v", d)
	}
	// Deny overrides permit for the same action.
	both := []policy.Policy{
		{ID: "p", Tokens: []string{"accept", "x"}},
		{ID: "d", Tokens: []string{"reject", "x"}},
	}
	d, pid := ti.Decide(both, actionReq("x"))
	if d != xacml.DecisionDeny || pid != "d" {
		t.Errorf("deny-overrides broken: %v %q", d, pid)
	}
}

func TestPCPFilterAndValidators(t *testing.T) {
	rejectLong := ValidatorFunc(func(p policy.Policy, _ *asp.Program) error {
		if len(p.Tokens) > 2 {
			return errors.New("too long")
		}
		return nil
	})
	pcp := NewPCP(rejectLong)
	accepted, rejected := pcp.Filter([]policy.Policy{
		{ID: "ok", Tokens: []string{"a", "b"}},
		{ID: "bad", Tokens: []string{"a", "b", "c"}},
	}, nil)
	if len(accepted) != 1 || accepted[0].ID != "ok" {
		t.Errorf("accepted = %v", accepted)
	}
	if len(rejected) != 1 || rejected["bad"] == nil {
		t.Errorf("rejected = %v", rejected)
	}
}

func TestEffectorViolationRecorded(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	model, err := core.ParseGPM(drivingGrammar)
	if err != nil {
		t.Fatal(err)
	}
	ams, err := New(Config{
		Name:        "x",
		Model:       model,
		Context:     ctx,
		Interpreter: &TokenInterpreter{},
		Effector: EffectorFunc(func(req xacml.Request, d xacml.Decision) (bool, error) {
			// Executing a permitted overtake always goes wrong.
			if v, _ := req.Get(xacml.Action, "id"); v.Str == "overtake" && d == xacml.DecisionPermit {
				return true, nil
			}
			return false, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	// Remove the reject policy so the permit applies.
	ams.Repository().Delete("reject_overtake")
	out := ams.Enforce(actionReq("overtake"))
	if !out.Violation {
		t.Fatal("violation not reported")
	}
	if len(ams.MonitorLog().Violations()) != 1 {
		t.Error("violation not recorded in monitor log")
	}
	// FeedbackFromViolations reconstructs learner feedback.
	rain, _ := asp.Parse("weather(clear).")
	fb := ams.FeedbackFromViolations(func(string) *asp.Program { return rain })
	if len(fb) != 1 || fb[0].Valid || fb[0].Tokens[1] != "overtake" {
		t.Errorf("feedback = %+v", fb)
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing model not rejected")
	}
	model, _ := core.ParseGPM(drivingGrammar)
	if _, err := New(Config{Model: model}); err == nil {
		t.Error("missing interpreter not rejected")
	}
}
