package agenp

import (
	"errors"
	"sync"
	"testing"

	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/engine"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// TestConcurrentDecideDuringAdaptation hammers the PDP's compiled
// decision path from reader goroutines while the AMS evolves its model
// (Observe -> Evolve -> regenerate -> engine hot-swap) and regenerates
// on context flips. Run under -race: the readers must never observe a
// torn snapshot, an unexpected error, or a batch split across
// generations.
func TestConcurrentDecideDuringAdaptation(t *testing.T) {
	ctx := &dynamicContext{}
	ctx.set(t, "weather(clear).")
	ams := newTestAMS(t, ctx)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}

	rain, _ := asp.Parse("weather(rain).")
	req := actionReq("overtake")
	stop := make(chan struct{})
	var readerWg sync.WaitGroup

	for r := 0; r < 4; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			reqs := []xacml.Request{req, req}
			var out []engine.Result
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, pid, err := ams.Decide(req)
				switch {
				case errors.Is(err, ErrNoPolicy):
					// A regeneration can momentarily install zero
					// policies under a restrictive context.
				case err != nil:
					t.Errorf("Decide: %v", err)
					return
				case d == xacml.DecisionPermit || d == xacml.DecisionDeny:
					if pid == "" {
						t.Errorf("decision %v without a winning policy", d)
						return
					}
				case d == xacml.DecisionNotApplicable:
				default:
					t.Errorf("unexpected decision %v (policy %q)", d, pid)
					return
				}
				var berr error
				out, berr = ams.DecideBatch(reqs, out[:0])
				if berr != nil && !errors.Is(berr, ErrNoPolicy) {
					t.Errorf("DecideBatch: %v", berr)
					return
				}
				if len(out) == 2 && out[0] != out[1] {
					t.Errorf("batch split across generations: %+v vs %+v", out[0], out[1])
					return
				}
			}
		}()
	}

	// Writer: context flips regenerate; accumulated violations evolve the
	// model (the expensive path, a few cycles is plenty under -race).
	for cycle := 0; cycle < 3; cycle++ {
		ctx.set(t, "weather(rain).")
		if _, _, err := ams.Regenerate(); err != nil {
			t.Fatal(err)
		}
		pos := core.Feedback{Tokens: []string{"accept", "park"}, Context: rain, Valid: true}
		if _, err := ams.Observe(pos); err != nil {
			t.Fatalf("Observe cycle %d: %v", cycle, err)
		}
		for i := 0; i < 3; i++ {
			fb := core.Feedback{Tokens: []string{"accept", "overtake"}, Context: rain, Valid: false}
			if _, err := ams.Observe(fb); err != nil {
				t.Fatalf("Observe cycle %d: %v", cycle, err)
			}
		}
		ctx.set(t, "weather(clear).")
		if _, _, err := ams.Regenerate(); err != nil {
			t.Fatal(err)
		}
		if err := ams.ImportShared(
			policy.Policy{Tokens: []string{"reject", "park"}}, "peer"); err != nil {
			t.Fatalf("ImportShared cycle %d: %v", cycle, err)
		}
	}
	close(stop)
	readerWg.Wait()

	// The engine generation tracked every repository change.
	if got, want := ams.Engine().Generation(), ams.Repository().Generation(); got != want {
		t.Errorf("engine generation %d != repository generation %d", got, want)
	}
	if ams.Adaptations() == 0 {
		t.Error("no adaptation happened; the test did not cover Evolve")
	}
}
