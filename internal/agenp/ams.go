package agenp

import (
	"fmt"
	"sync"
	"time"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/aspcheck"
	"agenp/internal/core"
	"agenp/internal/engine"
	"agenp/internal/ilasp"
	"agenp/internal/obs"
	"agenp/internal/polcheck"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// Config wires an Autonomous Management System.
type Config struct {
	// Name identifies the AMS (coalition party name).
	Name string
	// Model is the initial generative policy model handed down by the
	// policy-based management system (the PBMS's CFG + constraints,
	// refined into an ASG).
	Model *core.GPM
	// Space is the hypothesis space the PAdaP may learn from.
	Space []asg.HypothesisRule
	// Context supplies the operating context (PIP source).
	Context ContextProvider
	// Interpreter maps generated policies to request decisions.
	Interpreter Interpreter
	// Effector executes decisions on the managed resources.
	Effector Effector
	// Validators vet generated and shared policies (PCP). A
	// MembershipValidator over the representations repository is always
	// prepended.
	Validators []Validator
	// AdaptThreshold is the number of observed violations that triggers
	// adaptation (default 3).
	AdaptThreshold int
	// LearnOptions passes through to the learner during adaptation.
	LearnOptions ilasp.LearnOptions
	// MonitorCapacity bounds the decision log (default 1024).
	MonitorCapacity int
	// VerifyPolicies turns on the symbolic verification gate:
	// regenerations and shared-policy imports that would introduce a
	// permit/deny conflict absent from the installed generation are
	// rejected. Requires a policy-set view, from Adapter or an
	// Interpreter implementing PolicySetAdapter.
	VerifyPolicies bool
	// Adapter renders repository snapshots as XACML policy sets for
	// verification; when nil, the Interpreter is used if it implements
	// PolicySetAdapter.
	Adapter PolicySetAdapter
	// VerifyOptions tunes the symbolic analyzer (zero value: defaults).
	VerifyOptions polcheck.Options
}

// AMS is an autonomous managed system: the full Figure 2 assembly.
type AMS struct {
	name string

	mu       sync.Mutex
	models   *core.Representations
	repo     *policy.Repository
	log      *policy.MonitorLog
	pip      *PIP
	pcp      *PCP
	pdp      *PDP
	pep      *PEP
	space    []asg.HypothesisRule
	learn    ilasp.LearnOptions
	feedback []core.Feedback
	learned  []asg.HypothesisRule // accumulated across adaptations
	adaptAt  int

	// symbolic verification gate (see verify.go)
	verify         bool
	verifyAdapter  PolicySetAdapter
	verifyOpts     polcheck.Options
	verifyBaseline map[string]bool
	lastVerify     *polcheck.Report

	// lifecycle for the background loop
	stop chan struct{}
	done chan struct{}

	// stats
	adaptations int
	regenerated int
}

// New assembles an AMS.
func New(cfg Config) (*AMS, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("agenp: config needs an initial model")
	}
	if cfg.Context == nil {
		cfg.Context = &StaticContext{}
	}
	if cfg.Interpreter == nil {
		return nil, fmt.Errorf("agenp: config needs an interpreter")
	}
	if cfg.Effector == nil {
		cfg.Effector = EffectorFunc(func(xacml.Request, xacml.Decision) (bool, error) { return false, nil })
	}
	adaptAt := cfg.AdaptThreshold
	if adaptAt <= 0 {
		adaptAt = 3
	}
	monCap := cfg.MonitorCapacity
	if monCap <= 0 {
		monCap = 1024
	}

	models := core.NewRepresentations(cfg.Model)
	repo := policy.NewRepository()
	log := policy.NewMonitorLog(monCap)
	validators := append([]Validator{&MembershipValidator{Models: models}}, cfg.Validators...)
	pcp := NewPCP(validators...)
	pdp := NewPDP(repo, cfg.Interpreter)
	pep := NewPEP(pdp, cfg.Effector, log)

	adapter := cfg.Adapter
	if adapter == nil {
		if ad, ok := cfg.Interpreter.(PolicySetAdapter); ok {
			adapter = ad
		}
	}
	if cfg.VerifyPolicies && adapter == nil {
		return nil, fmt.Errorf("agenp: VerifyPolicies needs a policy-set adapter (Config.Adapter or an Interpreter implementing PolicySetAdapter)")
	}

	return &AMS{
		name:           cfg.Name,
		models:         models,
		repo:           repo,
		log:            log,
		pip:            NewPIP(cfg.Context),
		pcp:            pcp,
		pdp:            pdp,
		pep:            pep,
		space:          cfg.Space,
		learn:          cfg.LearnOptions,
		adaptAt:        adaptAt,
		verify:         cfg.VerifyPolicies,
		verifyAdapter:  adapter,
		verifyOpts:     cfg.VerifyOptions,
		verifyBaseline: make(map[string]bool),
	}, nil
}

// Name returns the AMS name.
func (a *AMS) Name() string { return a.name }

// AttachRecorder wires a decision flight recorder into the serving
// path: every sampled PDP decision commits one audit record, and
// coalition imports land in its events ring. Pass nil to detach.
func (a *AMS) AttachRecorder(r *obs.Recorder) { a.pdp.Engine().SetRecorder(r) }

// Recorder returns the attached flight recorder (nil when none).
func (a *AMS) Recorder() *obs.Recorder { return a.pdp.Engine().Recorder() }

// Repository exposes the policy repository (for inspection and sharing).
func (a *AMS) Repository() *policy.Repository { return a.repo }

// Models exposes the representations repository.
func (a *AMS) Models() *core.Representations { return a.models }

// MonitorLog exposes the decision history.
func (a *AMS) MonitorLog() *policy.MonitorLog { return a.log }

// PCP exposes the policy checking point.
func (a *AMS) PCP() *PCP { return a.pcp }

// Adaptations returns how many times the model was evolved.
func (a *AMS) Adaptations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.adaptations
}

// Regenerate runs the PReP flow: acquire the context, generate the
// policies of the current GPM under it, vet them through the PCP, and
// install the survivors in the policy repository. It returns the
// accepted policies and the PCP rejections.
func (a *AMS) Regenerate() ([]policy.Policy, map[string]error, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.regenerateLocked()
}

func (a *AMS) regenerateLocked() ([]policy.Policy, map[string]error, error) {
	ctx, _ := a.pip.Acquire()
	model := a.models.Latest()
	// Static analysis gate: a model whose grammar has error-severity
	// findings (unsafe annotation variables, parse-level damage) would
	// fail or mislead deep inside grounding; refuse to install policies
	// from it and keep the repository on the previous generation.
	if findings := model.Lint(ctx); findings.HasErrors() {
		errs := findings.Filter(aspcheck.Error)
		return nil, nil, fmt.Errorf("agenp: PReP lint: model rejected (%s): %s", findings.Summary(), errs[0])
	}
	generated, err := model.Generate(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("agenp: PReP generation: %w", err)
	}
	t0 := time.Now()
	accepted, rejected := a.pcp.Filter(generated, ctx)
	statFilterDur.ObserveSince(t0)
	// Symbolic verification gate: refuse to install a generation that
	// introduces a permit/deny conflict the current one does not have.
	// The repository stays on the previous generation, like a lint veto.
	if err := a.verifyCandidateLocked(accepted, "PReP"); err != nil {
		return nil, rejected, err
	}
	a.repo.ReplaceAll(accepted)
	// Eagerly recompile the decision engine so the swap cost lands here,
	// at the (rare) regeneration, not on the first request after it.
	if err := a.pdp.Refresh(); err != nil {
		return nil, nil, fmt.Errorf("agenp: PReP recompile: %w", err)
	}
	a.regenerated++
	statRegens.Inc()
	statGenerated.Add(int64(len(generated)))
	statAccepted.Add(int64(len(accepted)))
	statRejected.Add(int64(len(rejected)))
	return accepted, rejected, nil
}

// Decide runs the PDP flow on a request under the current policies.
func (a *AMS) Decide(req xacml.Request) (xacml.Decision, string, error) {
	return a.pdp.Decide(req)
}

// DecideBatch evaluates requests under one consistent compiled snapshot
// (see engine.Engine.DecideBatch).
func (a *AMS) DecideBatch(reqs []xacml.Request, out []engine.Result) ([]engine.Result, error) {
	return a.pdp.DecideBatch(reqs, out)
}

// PDP exposes the policy decision point.
func (a *AMS) PDP() *PDP { return a.pdp }

// Engine exposes the PDP's compiled decision engine.
func (a *AMS) Engine() *engine.Engine { return a.pdp.Engine() }

// Enforce runs the PDP+PEP flow and records monitoring history.
func (a *AMS) Enforce(req xacml.Request) Outcome {
	a.mu.Lock()
	ctx, _ := a.pip.Acquire()
	a.mu.Unlock()
	return a.pep.Enforce(req, ctx)
}

// Observe hands the PAdaP a validity observation about a policy in a
// context (from monitoring analysis or an operator). When the number of
// negative observations since the last adaptation reaches the adaptation
// threshold, the model is evolved and policies are regenerated.
func (a *AMS) Observe(fb core.Feedback) (adapted bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.feedback = append(a.feedback, fb)
	negatives := 0
	for _, f := range a.feedback {
		if !f.Valid {
			negatives++
		}
	}
	if negatives < a.adaptAt {
		return false, nil
	}
	if err := a.adaptLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// Adapt forces an adaptation cycle from the accumulated feedback.
func (a *AMS) Adapt() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.adaptLocked()
}

func (a *AMS) adaptLocked() error {
	if len(a.feedback) == 0 {
		return fmt.Errorf("agenp: no feedback to adapt from")
	}
	sp := obs.StartSpan("agenp.adapt")
	defer sp.End()
	examples := core.ExamplesFromFeedback(a.feedback)
	evo, err := a.models.Latest().Evolve(a.space, examples, core.EvolveOptions{Learn: a.learn})
	if err != nil {
		return fmt.Errorf("agenp: PAdaP adaptation: %w", err)
	}
	a.models.Push(evo.Model)
	a.learned = append(a.learned, evo.Hypothesis...)
	a.adaptations++
	statAdaptations.Inc()
	a.feedback = a.feedback[:0]
	_, _, err = a.regenerateLocked()
	return err
}

// ImportShared vets a policy shared by another coalition party through
// the PCP and installs it when acceptable (the CASWiki-style shared
// policy flow of Section III.A.3).
func (a *AMS) ImportShared(p policy.Policy, origin string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	ctx, _ := a.pip.Acquire()
	p.Source = policy.SourceShared
	p.Origin = origin
	if p.ID == "" {
		p.ID = core.PolicyID(p.Tokens)
	}
	t0 := time.Now()
	err := a.pcp.Check(p, ctx)
	statCheckDur.ObserveSince(t0)
	if err != nil {
		return err
	}
	// Symbolic verification gate: vet the post-import snapshot before
	// adopting the shared policy, so a partner cannot push us into a
	// conflicting decision surface.
	candidate := make([]policy.Policy, 0, a.repo.Len()+1)
	for _, q := range a.repo.Snapshot().Policies {
		if q.ID != p.ID {
			candidate = append(candidate, q)
		}
	}
	candidate = append(candidate, p)
	if err := a.verifyCandidateLocked(candidate, "import"); err != nil {
		return err
	}
	a.repo.Put(p)
	// An adopted remote policy changes the decision surface immediately.
	return a.pdp.Refresh()
}

// FeedbackFromViolations converts monitored violations into negative
// feedback for the learner: each violating decision's policy is marked
// invalid in the context it was applied in. Contexts are reconstructed
// through the provided resolver (monitoring stores only context keys).
func (a *AMS) FeedbackFromViolations(resolve func(contextKey string) *asp.Program) []core.Feedback {
	var out []core.Feedback
	for _, rec := range a.log.Violations() {
		p, ok := a.repo.Get(rec.PolicyID)
		if !ok {
			continue
		}
		out = append(out, core.Feedback{
			Tokens:  p.Tokens,
			Context: resolve(rec.ContextKey),
			Valid:   false,
		})
	}
	return out
}

// Run starts the autonomic loop: on every tick the PIP is polled and, if
// the context changed, policies are regenerated (Section III.A: "Such an
// update would be triggered if ... there has been a change in context").
// Stop with Shutdown.
func (a *AMS) Run(interval time.Duration) {
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		return // already running
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	stop, done := a.stop, a.done
	a.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				a.mu.Lock()
				_, changed := a.pip.Acquire()
				if changed {
					_, _, _ = a.regenerateLocked()
				}
				a.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
}

// Shutdown stops the autonomic loop and waits for it to exit.
func (a *AMS) Shutdown() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Stats summarizes AMS activity.
type Stats struct {
	Regenerations int
	Adaptations   int
	Decisions     int
	Violations    int
	ModelVersions int
	Policies      int
}

// Stats returns a snapshot of activity counters.
func (a *AMS) Stats() Stats {
	a.mu.Lock()
	regen, adapt := a.regenerated, a.adaptations
	a.mu.Unlock()
	return Stats{
		Regenerations: regen,
		Adaptations:   adapt,
		Decisions:     a.log.Len(),
		Violations:    len(a.log.Violations()),
		ModelVersions: a.models.Version(),
		Policies:      a.repo.Len(),
	}
}
