package agenp

import (
	"strings"

	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// TokenInterpreter is the default interpreter for verb-object policy
// languages ("accept overtake", "deny share images", ...): a policy
// applies when its object tokens equal the request's action id, and the
// leading verb selects the effect. Conflicts resolve deny-overrides,
// matching the safety posture of coalition policy systems.
type TokenInterpreter struct {
	// PermitVerbs and DenyVerbs classify the leading policy token
	// (defaults: permit/accept/allow and deny/reject/forbid).
	PermitVerbs []string
	DenyVerbs   []string
}

var _ Interpreter = (*TokenInterpreter)(nil)

func (t *TokenInterpreter) permitVerbs() []string {
	if len(t.PermitVerbs) > 0 {
		return t.PermitVerbs
	}
	return []string{"permit", "accept", "allow"}
}

func (t *TokenInterpreter) denyVerbs() []string {
	if len(t.DenyVerbs) > 0 {
		return t.DenyVerbs
	}
	return []string{"deny", "reject", "forbid"}
}

// Decide implements Interpreter.
func (t *TokenInterpreter) Decide(policies []policy.Policy, req xacml.Request) (xacml.Decision, string) {
	action, ok := req.Get(xacml.Action, "id")
	if !ok {
		return xacml.DecisionIndeterminate, ""
	}
	want := action.String()
	decision := xacml.DecisionNotApplicable
	decider := ""
	for _, p := range policies {
		if len(p.Tokens) < 2 {
			continue
		}
		if strings.Join(p.Tokens[1:], " ") != want {
			continue
		}
		verb := p.Tokens[0]
		switch {
		case contains(t.denyVerbs(), verb):
			return xacml.DecisionDeny, p.ID // deny-overrides
		case contains(t.permitVerbs(), verb):
			if decision != xacml.DecisionPermit {
				decision = xacml.DecisionPermit
				decider = p.ID
			}
		}
	}
	return decision, decider
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
