package agenp

import (
	"strings"
	"sync"

	"agenp/internal/engine"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// TokenInterpreter is the default interpreter for verb-object policy
// languages ("accept overtake", "deny share images", ...): a policy
// applies when its object tokens equal the request's action id, and the
// leading verb selects the effect. Conflicts resolve deny-overrides,
// matching the safety posture of coalition policy systems.
//
// Verb classification is precomputed into sets on first use; the verb
// slices must not be mutated after the interpreter starts deciding.
type TokenInterpreter struct {
	// PermitVerbs and DenyVerbs classify the leading policy token
	// (defaults: permit/accept/allow and deny/reject/forbid).
	PermitVerbs []string
	DenyVerbs   []string

	once   sync.Once
	permit map[string]bool
	deny   map[string]bool
}

var (
	_ Interpreter     = (*TokenInterpreter)(nil)
	_ DeciderCompiler = (*TokenInterpreter)(nil)
)

func (t *TokenInterpreter) permitVerbs() []string {
	if len(t.PermitVerbs) > 0 {
		return t.PermitVerbs
	}
	return []string{"permit", "accept", "allow"}
}

func (t *TokenInterpreter) denyVerbs() []string {
	if len(t.DenyVerbs) > 0 {
		return t.DenyVerbs
	}
	return []string{"deny", "reject", "forbid"}
}

// verbSets builds the verb lookup sets once per interpreter.
func (t *TokenInterpreter) verbSets() (permit, deny map[string]bool) {
	t.once.Do(func() {
		t.permit = verbSet(t.permitVerbs())
		t.deny = verbSet(t.denyVerbs())
	})
	return t.permit, t.deny
}

func verbSet(verbs []string) map[string]bool {
	m := make(map[string]bool, len(verbs))
	for _, v := range verbs {
		m[v] = true
	}
	return m
}

// Decide implements Interpreter.
func (t *TokenInterpreter) Decide(policies []policy.Policy, req xacml.Request) (xacml.Decision, string) {
	action, ok := req.Get(xacml.Action, "id")
	if !ok {
		return xacml.DecisionIndeterminate, ""
	}
	permit, deny := t.verbSets()
	want := action.String()
	decision := xacml.DecisionNotApplicable
	decider := ""
	for _, p := range policies {
		if len(p.Tokens) < 2 {
			continue
		}
		if strings.Join(p.Tokens[1:], " ") != want {
			continue
		}
		verb := p.Tokens[0]
		switch {
		case deny[verb]:
			return xacml.DecisionDeny, p.ID // deny-overrides
		case permit[verb]:
			if decision != xacml.DecisionPermit {
				decision = xacml.DecisionPermit
				decider = p.ID
			}
		}
	}
	return decision, decider
}

// CompileDecider implements DeciderCompiler: the policy set collapses to
// one action-phrase hash lookup per request, with the deny-overrides
// combining resolved at compile time.
func (t *TokenInterpreter) CompileDecider(policies []policy.Policy) (engine.Decider, error) {
	return engine.NewTokenProgram(t.permitVerbs(), t.denyVerbs(), policies), nil
}
