package agenp

import (
	"fmt"
	"strings"

	"agenp/internal/polcheck"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// Symbolic verification gate: when Config.VerifyPolicies is set, the
// AMS refuses to install a policy generation (PReP/PAdaP regeneration)
// or adopt a shared policy (coalition import) that would introduce a
// permit/deny conflict the currently-installed generation does not have.
// Pre-existing conflicts are baselined rather than fatal, so enabling
// the gate on a noisy repository blocks regressions without bricking
// the loop.

// PolicySetAdapter renders a repository snapshot as an XACML policy set
// so it can be verified symbolically. Interpreters whose policy
// language has a faithful XACML reading implement it; the adapter must
// preserve decision semantics (same request → same decision as the
// interpreter) for gate verdicts to be meaningful.
type PolicySetAdapter interface {
	PolicySetOf(policies []policy.Policy) (*xacml.PolicySet, error)
}

// PolicySetOf implements PolicySetAdapter for the verb-object token
// language: each policy becomes a one-rule XACML policy matching
// action.id against the object phrase, and the interpreter's
// deny-overrides conflict resolution becomes the set's combining
// algorithm. Unclassified-verb policies never decide, so they are
// omitted.
func (t *TokenInterpreter) PolicySetOf(policies []policy.Policy) (*xacml.PolicySet, error) {
	permit, deny := t.verbSets()
	ps := &xacml.PolicySet{ID: "token-policies", Combining: xacml.DenyOverrides}
	for _, p := range policies {
		if len(p.Tokens) < 2 {
			continue
		}
		verb := p.Tokens[0]
		var effect xacml.Effect
		switch {
		case permit[verb]:
			effect = xacml.Permit
		case deny[verb]:
			effect = xacml.Deny
		default:
			continue
		}
		phrase := strings.Join(p.Tokens[1:], " ")
		ps.Policies = append(ps.Policies, &xacml.Policy{
			ID:        p.ID,
			Combining: xacml.DenyOverrides,
			Rules: []xacml.Rule{{
				ID:     "apply",
				Effect: effect,
				Target: xacml.Target{{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S(phrase)}},
			}},
		})
	}
	return ps, nil
}

// adapter resolves the policy-set view: an explicit Config.Adapter
// wins, otherwise an Interpreter that is also a PolicySetAdapter.
func (a *AMS) adapterFor() PolicySetAdapter {
	if a.verifyAdapter != nil {
		return a.verifyAdapter
	}
	return nil
}

// verifyCandidate analyzes a candidate snapshot and rejects it when it
// introduces conflict pairs absent from the baseline. On acceptance the
// baseline and the last report advance. Callers hold a.mu.
func (a *AMS) verifyCandidateLocked(candidate []policy.Policy, stage string) error {
	ad := a.adapterFor()
	if !a.verify || ad == nil {
		return nil
	}
	ps, err := ad.PolicySetOf(candidate)
	if err != nil {
		return fmt.Errorf("agenp: %s verify: %w", stage, err)
	}
	rep := polcheck.AnalyzeSet(ps, a.verifyOpts)
	keys := rep.ConflictKeys()
	var introduced []string
	for k := range keys {
		if !a.verifyBaseline[k] {
			introduced = append(introduced, k)
		}
	}
	if len(introduced) > 0 {
		statVerifyVetoes.Inc()
		conflicts := rep.Conflicts()
		detail := introduced[0]
		for _, f := range conflicts {
			if f.Witness != "" {
				detail = f.String()
				break
			}
		}
		return fmt.Errorf("agenp: %s verify: candidate introduces %d new conflict(s): %s", stage, len(introduced), detail)
	}
	a.verifyBaseline = keys
	a.lastVerify = rep
	return nil
}

// VerifySnapshot runs the symbolic verifier over the currently
// installed policy snapshot and returns the report. It requires a
// policy-set adapter (Config.Adapter, or an Interpreter implementing
// PolicySetAdapter) but not the VerifyPolicies gate.
func (a *AMS) VerifySnapshot() (*polcheck.Report, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ad := a.adapterFor()
	if ad == nil {
		return nil, fmt.Errorf("agenp: no policy-set adapter configured for verification")
	}
	ps, err := ad.PolicySetOf(a.repo.Snapshot().Policies)
	if err != nil {
		return nil, fmt.Errorf("agenp: verify: %w", err)
	}
	rep := polcheck.AnalyzeSet(ps, a.verifyOpts)
	a.lastVerify = rep
	return rep, nil
}

// LastVerify returns the most recent verification report (nil when the
// verifier has not run).
func (a *AMS) LastVerify() *polcheck.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastVerify
}
