package agenp

import (
	"strings"
	"testing"

	"agenp/internal/core"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// oneSidedGrammar generates only permits: conflict-free on its own.
const oneSidedGrammar = `
policy -> "accept" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

func newVerifiedAMS(t *testing.T, grammar string) *AMS {
	t.Helper()
	model, err := core.ParseGPM(grammar)
	if err != nil {
		t.Fatal(err)
	}
	ams, err := New(Config{
		Name:           "verified",
		Model:          model,
		Context:        &StaticContext{},
		Interpreter:    &TokenInterpreter{},
		VerifyPolicies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ams
}

func TestVerifyGateAllowsCleanGeneration(t *testing.T) {
	ams := newVerifiedAMS(t, oneSidedGrammar)
	accepted, _, err := ams.Regenerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(accepted) != 2 {
		t.Fatalf("accepted %d", len(accepted))
	}
	rep := ams.LastVerify()
	if rep == nil || rep.HasErrors() {
		t.Fatalf("clean generation should verify: %v", rep)
	}
}

func TestVerifyGateVetoesConflictingGeneration(t *testing.T) {
	// The two-verb grammar generates accept overtake AND reject
	// overtake: a permit/deny conflict the gate must refuse to install.
	ams := newVerifiedAMS(t, drivingGrammar)
	_, _, err := ams.Regenerate()
	if err == nil {
		t.Fatal("conflicting generation installed")
	}
	if !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("error does not explain the conflict veto: %v", err)
	}
	if ams.Repository().Len() != 0 {
		t.Fatalf("repository gained %d policies from a vetoed generation", ams.Repository().Len())
	}
}

func TestVerifyGateVetoesConflictingImport(t *testing.T) {
	ams := newVerifiedAMS(t, oneSidedGrammar)
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	before := ams.Repository().Len()

	// A shared policy denying an already-permitted action introduces a
	// conflict. Bypass membership by vetting against a permissive PCP:
	// the shared policy IS in the language of a grammar with reject, so
	// use a model that admits it but whose own generation is one-sided.
	shared := policy.Policy{Tokens: []string{"reject", "overtake"}}
	err := ams.ImportShared(shared, "partner")
	if err == nil {
		t.Fatal("conflicting import accepted")
	}
	// The membership validator may reject first (reject ∉ grammar);
	// force the verify path with a policy in-language but conflicting.
	if ams.Repository().Len() != before {
		t.Fatalf("repository changed on rejected import")
	}
}

func TestVerifyGateImportConflictAfterMembership(t *testing.T) {
	// Grammar admits both verbs, but only "accept overtake" and "reject
	// park" contexts... simpler: import a policy that IS in the language
	// and conflicts with an installed one.
	ams := newVerifiedAMS(t, drivingGrammar)
	// Install a conflict-free subset directly (bypassing generation).
	ams.Repository().Put(policy.Policy{ID: "p1", Tokens: []string{"accept", "overtake"}})
	if err := ams.PDP().Refresh(); err != nil {
		t.Fatal(err)
	}
	err := ams.ImportShared(policy.Policy{Tokens: []string{"reject", "overtake"}}, "partner")
	if err == nil {
		t.Fatal("conflicting import accepted")
	}
	if !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("error does not explain the conflict veto: %v", err)
	}
	// A non-conflicting import passes the gate.
	if err := ams.ImportShared(policy.Policy{Tokens: []string{"reject", "park"}}, "partner"); err != nil {
		t.Fatal(err)
	}
	// And the decision surface reflects only the accepted import.
	if d, _, _ := ams.Decide(actionReq("park")); d != xacml.DecisionDeny {
		t.Fatalf("park decided %v", d)
	}
	if d, _, _ := ams.Decide(actionReq("overtake")); d != xacml.DecisionPermit {
		t.Fatalf("overtake decided %v", d)
	}
}

func TestVerifySnapshotOnDemand(t *testing.T) {
	ams := newTestAMS(t, &StaticContext{})
	// VerifyPolicies off: the on-demand report still works because the
	// TokenInterpreter is a PolicySetAdapter.
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}
	rep, err := ams.VerifySnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// drivingGrammar generates accept+reject for both tasks: conflicts.
	if !rep.HasErrors() {
		t.Fatalf("expected conflicts in two-verb generation: %v", rep)
	}
	for _, f := range rep.Conflicts() {
		if !f.Verified {
			t.Fatalf("unverified conflict witness: %+v", f)
		}
	}
	if got := ams.LastVerify(); got != rep {
		t.Fatal("LastVerify should return the latest report")
	}
}

func TestTokenAdapterMatchesInterpreter(t *testing.T) {
	// The XACML view must agree with the interpreter's decisions.
	in := &TokenInterpreter{}
	policies := []policy.Policy{
		{ID: "a", Tokens: []string{"accept", "overtake"}},
		{ID: "b", Tokens: []string{"reject", "overtake"}},
		{ID: "c", Tokens: []string{"accept", "share", "images"}},
	}
	ps, err := in.PolicySetOf(policies)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"overtake", "park", "share images"} {
		req := actionReq(id)
		want, _ := in.Decide(policies, req)
		got, _ := ps.EvaluateWinner(req)
		if want == xacml.DecisionNotApplicable {
			// The set returns NotApplicable too; both mean "no policy".
			if got != xacml.DecisionNotApplicable {
				t.Fatalf("%s: interpreter %v, set %v", id, want, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("%s: interpreter %v, set %v", id, want, got)
		}
	}
}
