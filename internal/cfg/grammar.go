// Package cfg implements context-free grammars: a textual grammar
// format, an Earley parser that enumerates all parse trees of a token
// string, and a bounded generator that enumerates the language of a
// grammar.
//
// Grammars here underpin the paper's Answer Set Grammars (Section II):
// they fix the syntax of a policy language, while ASP annotations
// (package asg) restrict which syntactically valid policies are
// acceptable in a context. Parse-tree nodes expose their trace — the
// child-index path from the root — which the ASG layer uses to localize
// ASP programs (Definition 2 of the paper).
package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is a grammar symbol: a terminal token or a nonterminal name.
type Symbol struct {
	Name     string
	Terminal bool
}

// T builds a terminal symbol.
func T(name string) Symbol { return Symbol{Name: name, Terminal: true} }

// NT builds a nonterminal symbol.
func NT(name string) Symbol { return Symbol{Name: name} }

func (s Symbol) String() string {
	if s.Terminal {
		return fmt.Sprintf("%q", s.Name)
	}
	return s.Name
}

// Production is a rule Lhs -> Rhs[0] ... Rhs[k-1]. An empty Rhs denotes
// an epsilon production. ID is the index of the production within its
// grammar and identifies the production in ASG hypothesis spaces.
type Production struct {
	ID  int
	Lhs string
	Rhs []Symbol
}

func (p Production) String() string {
	if len(p.Rhs) == 0 {
		return p.Lhs + " -> ε"
	}
	parts := make([]string, len(p.Rhs))
	for i, s := range p.Rhs {
		parts[i] = s.String()
	}
	return p.Lhs + " -> " + strings.Join(parts, " ")
}

// Grammar is a context-free grammar.
type Grammar struct {
	Start       string
	Productions []Production

	byLhs map[string][]int // production ids by left-hand side
}

// New builds a grammar from a start symbol and productions, assigning
// production IDs in order. It validates that the start symbol and every
// nonterminal on a right-hand side has at least one production.
func New(start string, prods []Production) (*Grammar, error) {
	g := &Grammar{Start: start, byLhs: make(map[string][]int)}
	for i, p := range prods {
		p.ID = i
		g.Productions = append(g.Productions, p)
		g.byLhs[p.Lhs] = append(g.byLhs[p.Lhs], i)
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Grammar) validate() error {
	if _, ok := g.byLhs[g.Start]; !ok {
		return fmt.Errorf("start symbol %q has no productions", g.Start)
	}
	for _, p := range g.Productions {
		for _, s := range p.Rhs {
			if s.Terminal {
				continue
			}
			if _, ok := g.byLhs[s.Name]; !ok {
				return fmt.Errorf("nonterminal %q used in %q has no productions", s.Name, p)
			}
		}
	}
	return nil
}

// ProductionsFor returns the productions whose left-hand side is lhs.
func (g *Grammar) ProductionsFor(lhs string) []Production {
	ids := g.byLhs[lhs]
	out := make([]Production, len(ids))
	for i, id := range ids {
		out[i] = g.Productions[id]
	}
	return out
}

// Nonterminals returns the sorted set of nonterminal names.
func (g *Grammar) Nonterminals() []string {
	out := make([]string, 0, len(g.byLhs))
	for n := range g.byLhs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Terminals returns the sorted set of terminal tokens.
func (g *Grammar) Terminals() []string {
	set := make(map[string]struct{})
	for _, p := range g.Productions {
		for _, s := range p.Rhs {
			if s.Terminal {
				set[s.Name] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func (g *Grammar) String() string {
	var sb strings.Builder
	for _, p := range g.Productions {
		sb.WriteString(p.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseGrammar parses the textual grammar format:
//
//	start      -> policy_list
//	policy_list -> policy | policy policy_list
//	policy     -> "permit" "(" subject ")"
//	subject    -> "alice" | "bob"
//	empty      -> ε
//
// One rule per '\n'-separated line (blank lines and '#' comments are
// skipped); alternatives separated by '|'; terminals are double-quoted;
// an empty alternative (or the token ε) denotes epsilon. The first rule's
// left-hand side is the start symbol.
func ParseGrammar(src string) (*Grammar, error) {
	var (
		prods []Production
		start string
	)
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lhs, rhs, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("line %d: missing '->' in %q", lineNo+1, line)
		}
		lhsName := strings.TrimSpace(lhs)
		if lhsName == "" || strings.ContainsAny(lhsName, " \t\"") {
			return nil, fmt.Errorf("line %d: invalid left-hand side %q", lineNo+1, lhsName)
		}
		if start == "" {
			start = lhsName
		}
		for _, alt := range strings.Split(rhs, "|") {
			syms, err := parseSymbols(alt)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			prods = append(prods, Production{Lhs: lhsName, Rhs: syms})
		}
	}
	if start == "" {
		return nil, fmt.Errorf("empty grammar")
	}
	return New(start, prods)
}

func parseSymbols(s string) ([]Symbol, error) {
	var syms []Symbol
	i := 0
	n := len(s)
	for i < n {
		switch {
		case s[i] == ' ' || s[i] == '\t':
			i++
		case s[i] == '"':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if s[j] == '\\' && j+1 < n {
					sb.WriteByte(s[j+1])
					j += 2
					continue
				}
				if s[j] == '"' {
					closed = true
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated terminal in %q", s)
			}
			syms = append(syms, T(sb.String()))
			i = j + 1
		default:
			j := i
			for j < n && s[j] != ' ' && s[j] != '\t' && s[j] != '"' {
				j++
			}
			word := s[i:j]
			if word != "ε" && word != "epsilon" {
				syms = append(syms, NT(word))
			}
			i = j
		}
	}
	return syms, nil
}

// Tokenize splits a policy string into tokens: maximal runs of
// non-separator characters, with the punctuation characters ( ) , ; = < >
// emitted as single-character tokens. It is the default lexer for policy
// languages whose terminals are words and punctuation.
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch r {
		case ' ', '\t', '\n', '\r':
			flush()
		case '(', ')', ',', ';', '=', '<', '>':
			flush()
			toks = append(toks, string(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}
