package cfg

// GenerateOptions bounds language enumeration.
type GenerateOptions struct {
	// MaxNodes bounds the size (node count) of generated derivation
	// trees. Must be positive.
	MaxNodes int

	// MaxTrees caps the total number of trees generated (0 = unlimited
	// within MaxNodes).
	MaxTrees int
}

// Generate enumerates derivation trees of the grammar's start symbol with
// at most opts.MaxNodes nodes, invoking yield for each. Enumeration is
// deterministic (productions in ID order, smaller subtrees first) and
// stops early when yield returns false or MaxTrees is reached.
//
// The ASG layer filters this enumeration through ASP annotations to
// produce the policies a generative policy model admits in a context.
func (g *Grammar) Generate(opts GenerateOptions, yield func(*Tree) bool) {
	if opts.MaxNodes <= 0 {
		return
	}
	gen := &generator{g: g, opts: opts, yield: yield}
	gen.symbol(NT(g.Start), opts.MaxNodes, func(t *Tree) bool {
		gen.count++
		if !yield(t) {
			gen.stopped = true
			return false
		}
		if opts.MaxTrees > 0 && gen.count >= opts.MaxTrees {
			gen.stopped = true
			return false
		}
		return true
	})
}

// GenerateStrings collects the derived token strings (joined by spaces)
// of Generate, deduplicated, in generation order.
func (g *Grammar) GenerateStrings(opts GenerateOptions) []string {
	seen := make(map[string]struct{})
	var out []string
	g.Generate(opts, func(t *Tree) bool {
		s := t.Text()
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
		return true
	})
	return out
}

type generator struct {
	g       *Grammar
	opts    GenerateOptions
	yield   func(*Tree) bool
	count   int
	stopped bool
}

// symbol enumerates trees for sym with at most budget nodes.
func (gen *generator) symbol(sym Symbol, budget int, emit func(*Tree) bool) bool {
	if gen.stopped || budget < 1 {
		return true
	}
	if sym.Terminal {
		return emit(Leaf(sym.Name))
	}
	for _, id := range gen.g.byLhs[sym.Name] {
		p := gen.g.Productions[id]
		if !gen.sequence(p.Rhs, budget-1, func(children []*Tree) bool {
			kids := make([]*Tree, len(children))
			copy(kids, children)
			return emit(Node(p, kids...))
		}) {
			return false
		}
		if gen.stopped {
			return true
		}
	}
	return true
}

// sequence enumerates lists of trees for the symbols with total node
// budget.
func (gen *generator) sequence(syms []Symbol, budget int, emit func([]*Tree) bool) bool {
	if gen.stopped {
		return true
	}
	if len(syms) == 0 {
		return emit(nil)
	}
	if budget < minNodes(syms) {
		return true
	}
	head, rest := syms[0], syms[1:]
	restMin := minNodes(rest)
	ok := true
	gen.symbolBounded(head, budget-restMin, func(t *Tree) bool {
		used := t.Size()
		cont := gen.sequence(rest, budget-used, func(tail []*Tree) bool {
			return emit(append([]*Tree{t}, tail...))
		})
		if !cont {
			ok = false
		}
		return cont && !gen.stopped
	})
	return ok
}

// symbolBounded is symbol() with emit allowed to stop enumeration.
func (gen *generator) symbolBounded(sym Symbol, budget int, emit func(*Tree) bool) {
	gen.symbol(sym, budget, emit)
}

// minNodes returns a lower bound on the node count needed to derive the
// symbols (1 per symbol; cheap but sound).
func minNodes(syms []Symbol) int {
	return len(syms)
}
