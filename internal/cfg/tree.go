package cfg

import (
	"strconv"
	"strings"
)

// Tree is a parse/derivation tree. Interior nodes carry the production
// applied at that node; leaves are terminal symbols (Prod == nil).
type Tree struct {
	Sym      Symbol
	Prod     *Production // nil for terminal leaves
	Children []*Tree
}

// Leaf builds a terminal leaf node.
func Leaf(token string) *Tree {
	return &Tree{Sym: T(token)}
}

// Node builds an interior node for a production with the given children.
func Node(p Production, children ...*Tree) *Tree {
	prod := p
	return &Tree{Sym: NT(p.Lhs), Prod: &prod, Children: children}
}

// Tokens returns the terminal tokens of the tree read left to right (the
// string the tree derives).
func (t *Tree) Tokens() []string {
	var out []string
	t.appendTokens(&out)
	return out
}

func (t *Tree) appendTokens(out *[]string) {
	if t.Prod == nil && t.Sym.Terminal {
		*out = append(*out, t.Sym.Name)
		return
	}
	for _, c := range t.Children {
		c.appendTokens(out)
	}
}

// Text returns the derived string with tokens joined by spaces.
func (t *Tree) Text() string {
	return strings.Join(t.Tokens(), " ")
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the height of the tree (a leaf has depth 1).
func (t *Tree) Depth() int {
	max := 0
	for _, c := range t.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Trace identifies a node by the child-index path from the root; indices
// are 1-based following the paper ("the i-th child of the root is [i]").
type Trace []int

// String renders the trace as e.g. "[1,2]"; the root is "[]".
func (tr Trace) String() string {
	parts := make([]string, len(tr))
	for i, x := range tr {
		parts[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Key renders a compact unique encoding usable in predicate manglings.
func (tr Trace) Key() string {
	if len(tr) == 0 {
		return "r"
	}
	parts := make([]string, len(tr))
	for i, x := range tr {
		parts[i] = strconv.Itoa(x)
	}
	return "r_" + strings.Join(parts, "_")
}

// Child extends the trace with a 1-based child index.
func (tr Trace) Child(i int) Trace {
	out := make(Trace, len(tr)+1)
	copy(out, tr)
	out[len(tr)] = i
	return out
}

// Walk visits every node of the tree in depth-first order together with
// its trace. Returning false from the visitor stops the walk.
func (t *Tree) Walk(visit func(node *Tree, trace Trace) bool) {
	var rec func(node *Tree, trace Trace) bool
	rec = func(node *Tree, trace Trace) bool {
		if !visit(node, trace) {
			return false
		}
		for i, c := range node.Children {
			if !rec(c, trace.Child(i+1)) {
				return false
			}
		}
		return true
	}
	rec(t, Trace{})
}

// Pretty renders the tree with indentation, for debugging and docs.
func (t *Tree) Pretty() string {
	var sb strings.Builder
	var rec func(node *Tree, depth int)
	rec = func(node *Tree, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if node.Prod == nil {
			sb.WriteString(node.Sym.String())
		} else {
			sb.WriteString(node.Sym.Name)
		}
		sb.WriteByte('\n')
		for _, c := range node.Children {
			rec(c, depth+1)
		}
	}
	rec(t, 0)
	return sb.String()
}
