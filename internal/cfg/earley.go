package cfg

import (
	"fmt"
)

// ParseOptions configures parse-tree extraction.
type ParseOptions struct {
	// MaxTrees caps the number of parse trees returned per string
	// (0 = DefaultMaxTrees). Ambiguous grammars can have exponentially
	// many trees; callers typically only need a few.
	MaxTrees int
}

// DefaultMaxTrees is the default cap on parse trees per string.
const DefaultMaxTrees = 64

// Accepts reports whether the grammar derives the token string.
func (g *Grammar) Accepts(tokens []string) bool {
	c := g.buildChart(tokens)
	return c.derivable(g.Start, 0, len(tokens))
}

// ParseAll returns parse trees of the token string, up to the cap. The
// trees use the grammar's original productions, preserving production IDs
// (required by the ASG layer). Unit-cycle pumping derivations (a
// nonterminal deriving itself over the same span) are excluded, so the
// returned set contains all minimal trees.
func (g *Grammar) ParseAll(tokens []string, opts ParseOptions) []*Tree {
	maxTrees := opts.MaxTrees
	if maxTrees <= 0 {
		maxTrees = DefaultMaxTrees
	}
	c := g.buildChart(tokens)
	if !c.derivable(g.Start, 0, len(tokens)) {
		return nil
	}
	ex := &extractor{
		g:        g,
		chart:    c,
		tokens:   tokens,
		maxTrees: maxTrees,
		memoBusy: make(map[spanKey]bool),
	}
	return ex.trees(g.Start, 0, len(tokens), maxTrees)
}

// Parse returns one parse tree, or an error if the string is not in the
// language.
func (g *Grammar) Parse(tokens []string) (*Tree, error) {
	trees := g.ParseAll(tokens, ParseOptions{MaxTrees: 1})
	if len(trees) == 0 {
		return nil, fmt.Errorf("cfg: string %v not in language of grammar (start %s)", tokens, g.Start)
	}
	return trees[0], nil
}

// --- Earley recognition ---

type earleyItem struct {
	prod   int // production index
	dot    int // position in RHS
	origin int // start position of the derivation
}

type chart struct {
	// complete[lhs] -> map from origin -> set of end positions (the spans
	// over which lhs completes), with the producing production ids.
	complete map[string]map[int]map[int][]int // lhs -> origin -> end -> prod ids
}

func (c *chart) derivable(lhs string, i, j int) bool {
	m, ok := c.complete[lhs]
	if !ok {
		return false
	}
	ends, ok := m[i]
	if !ok {
		return false
	}
	_, ok = ends[j]
	return ok
}

func (c *chart) prodsFor(lhs string, i, j int) []int {
	m, ok := c.complete[lhs]
	if !ok {
		return nil
	}
	ends, ok := m[i]
	if !ok {
		return nil
	}
	return ends[j]
}

func (c *chart) record(lhs string, i, j, prod int) bool {
	m, ok := c.complete[lhs]
	if !ok {
		m = make(map[int]map[int][]int)
		c.complete[lhs] = m
	}
	ends, ok := m[i]
	if !ok {
		ends = make(map[int][]int)
		m[i] = ends
	}
	for _, p := range ends[j] {
		if p == prod {
			return false
		}
	}
	ends[j] = append(ends[j], prod)
	return true
}

// buildChart runs the Earley algorithm and returns the completion chart.
func (g *Grammar) buildChart(tokens []string) *chart {
	n := len(tokens)
	c := &chart{complete: make(map[string]map[int]map[int][]int)}

	sets := make([][]earleyItem, n+1)
	inSet := make([]map[earleyItem]bool, n+1)
	for i := range inSet {
		inSet[i] = make(map[earleyItem]bool)
	}
	add := func(pos int, it earleyItem) bool {
		if inSet[pos][it] {
			return false
		}
		inSet[pos][it] = true
		sets[pos] = append(sets[pos], it)
		return true
	}

	for _, id := range g.byLhs[g.Start] {
		add(0, earleyItem{prod: id, origin: 0})
	}

	for pos := 0; pos <= n; pos++ {
		// Worklist loop: predictions and completions can cascade,
		// including through epsilon productions.
		for idx := 0; idx < len(sets[pos]); idx++ {
			it := sets[pos][idx]
			p := g.Productions[it.prod]
			if it.dot == len(p.Rhs) {
				// Completion.
				if c.record(p.Lhs, it.origin, pos, it.prod) {
					// Advance every item in the origin set waiting on
					// p.Lhs. (Re-scan is fine: item sets are small.)
					for _, wait := range sets[it.origin] {
						wp := g.Productions[wait.prod]
						if wait.dot < len(wp.Rhs) && !wp.Rhs[wait.dot].Terminal && wp.Rhs[wait.dot].Name == p.Lhs {
							add(pos, earleyItem{prod: wait.prod, dot: wait.dot + 1, origin: wait.origin})
						}
					}
				} else {
					// Already recorded, but this item instance may still
					// need to advance waiters discovered since; re-run
					// the waiter scan (idempotent thanks to add()).
					for _, wait := range sets[it.origin] {
						wp := g.Productions[wait.prod]
						if wait.dot < len(wp.Rhs) && !wp.Rhs[wait.dot].Terminal && wp.Rhs[wait.dot].Name == p.Lhs {
							add(pos, earleyItem{prod: wait.prod, dot: wait.dot + 1, origin: wait.origin})
						}
					}
				}
				continue
			}
			next := p.Rhs[it.dot]
			if next.Terminal {
				if pos < n && tokens[pos] == next.Name {
					add(pos+1, earleyItem{prod: it.prod, dot: it.dot + 1, origin: it.origin})
				}
				continue
			}
			// Prediction.
			for _, id := range g.byLhs[next.Name] {
				add(pos, earleyItem{prod: id, origin: pos})
			}
			// Magical completion for already-completed nullable/complete
			// spans starting here (handles epsilon and completions that
			// happened earlier in this set's worklist).
			for _, pid := range c.prodsFor(next.Name, pos, pos) {
				_ = pid
				add(pos, earleyItem{prod: it.prod, dot: it.dot + 1, origin: it.origin})
			}
		}
	}
	return c
}

// --- tree extraction ---

type spanKey struct {
	sym  string
	i, j int
}

type extractor struct {
	g        *Grammar
	chart    *chart
	tokens   []string
	maxTrees int
	memoBusy map[spanKey]bool
}

// trees enumerates up to limit parse trees for nonterminal sym over span
// [i, j). Spans currently being expanded are skipped to break derivation
// cycles (unit cycles deriving the same span).
func (e *extractor) trees(sym string, i, j, limit int) []*Tree {
	key := spanKey{sym: sym, i: i, j: j}
	if e.memoBusy[key] {
		return nil
	}
	e.memoBusy[key] = true
	defer func() { e.memoBusy[key] = false }()

	var out []*Tree
	for _, prodID := range e.chart.prodsFor(sym, i, j) {
		p := e.g.Productions[prodID]
		for _, children := range e.split(p.Rhs, i, j, limit-len(out)) {
			out = append(out, Node(p, children...))
			if len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// split enumerates ways to derive rhs over [i, j): lists of child trees.
func (e *extractor) split(rhs []Symbol, i, j, limit int) [][]*Tree {
	if limit <= 0 {
		return nil
	}
	if len(rhs) == 0 {
		if i == j {
			return [][]*Tree{{}}
		}
		return nil
	}
	var out [][]*Tree
	head, rest := rhs[0], rhs[1:]
	if head.Terminal {
		if i < j && e.tokens[i] == head.Name {
			for _, tail := range e.split(rest, i+1, j, limit) {
				out = append(out, append([]*Tree{Leaf(head.Name)}, tail...))
				if len(out) >= limit {
					return out
				}
			}
		}
		return out
	}
	// Nonterminal head: try every split point where head completes.
	ends, ok := e.chart.complete[head.Name]
	if !ok {
		return nil
	}
	spans, ok := ends[i]
	if !ok {
		return nil
	}
	// Deterministic order over split points.
	for mid := i; mid <= j; mid++ {
		if _, ok := spans[mid]; !ok {
			continue
		}
		headTrees := e.trees(head.Name, i, mid, limit)
		if len(headTrees) == 0 {
			continue
		}
		tails := e.split(rest, mid, j, limit)
		for _, ht := range headTrees {
			for _, tail := range tails {
				out = append(out, append([]*Tree{ht}, tail...))
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
