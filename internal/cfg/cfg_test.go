package cfg

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mustGrammar(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := ParseGrammar(src)
	if err != nil {
		t.Fatalf("ParseGrammar: %v", err)
	}
	return g
}

const exprGrammar = `
# arithmetic over a and b
expr -> term | term "+" expr
term -> "a" | "b" | "(" expr ")"
`

func TestParseGrammarBasics(t *testing.T) {
	g := mustGrammar(t, exprGrammar)
	if g.Start != "expr" {
		t.Errorf("start = %q, want expr", g.Start)
	}
	if len(g.Productions) != 5 {
		t.Errorf("got %d productions, want 5", len(g.Productions))
	}
	wantNT := []string{"expr", "term"}
	if got := g.Nonterminals(); !reflect.DeepEqual(got, wantNT) {
		t.Errorf("nonterminals = %v, want %v", got, wantNT)
	}
	wantT := []string{"(", ")", "+", "a", "b"}
	if got := g.Terminals(); !reflect.DeepEqual(got, wantT) {
		t.Errorf("terminals = %v, want %v", got, wantT)
	}
}

func TestParseGrammarErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "no arrow", give: "expr term"},
		{name: "undefined nonterminal", give: `expr -> term`},
		{name: "empty", give: "   \n  # comment only\n"},
		{name: "bad lhs", give: `"x" -> "y"`},
		{name: "unterminated terminal", give: `expr -> "abc`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseGrammar(tt.give); err == nil {
				t.Errorf("ParseGrammar(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestAccepts(t *testing.T) {
	g := mustGrammar(t, exprGrammar)
	tests := []struct {
		give string
		want bool
	}{
		{give: "a", want: true},
		{give: "b", want: true},
		{give: "a + b", want: true},
		{give: "a + b + a", want: true},
		{give: "( a + b )", want: true},
		{give: "( a + ( b + a ) )", want: true},
		{give: "a +", want: false},
		{give: "+ a", want: false},
		{give: "( a", want: false},
		{give: "c", want: false},
		{give: "", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			if got := g.Accepts(Tokenize(tt.give)); got != tt.want {
				t.Errorf("Accepts(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestAcceptsEpsilon(t *testing.T) {
	g := mustGrammar(t, `
list -> ε | item list
item -> "x"
`)
	tests := []struct {
		give []string
		want bool
	}{
		{give: nil, want: true},
		{give: []string{"x"}, want: true},
		{give: []string{"x", "x", "x"}, want: true},
		{give: []string{"y"}, want: false},
	}
	for _, tt := range tests {
		if got := g.Accepts(tt.give); got != tt.want {
			t.Errorf("Accepts(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParseTreeStructure(t *testing.T) {
	g := mustGrammar(t, exprGrammar)
	tree, err := g.Parse(Tokenize("a + b"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := tree.Text(); got != "a + b" {
		t.Errorf("Text = %q", got)
	}
	if tree.Sym.Name != "expr" {
		t.Errorf("root symbol = %v", tree.Sym)
	}
	if tree.Prod == nil || tree.Prod.Lhs != "expr" {
		t.Errorf("root production = %v", tree.Prod)
	}
	if tree.Size() < 5 {
		t.Errorf("tree too small: %d nodes\n%s", tree.Size(), tree.Pretty())
	}
}

func TestParseAllAmbiguous(t *testing.T) {
	// Classic ambiguous grammar: two trees for "a + a + a".
	g := mustGrammar(t, `
e -> e "+" e | "a"
`)
	trees := g.ParseAll(Tokenize("a + a + a"), ParseOptions{})
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2 (left/right association)", len(trees))
	}
	for _, tr := range trees {
		if tr.Text() != "a + a + a" {
			t.Errorf("tree derives %q", tr.Text())
		}
	}
	// With a cap of 1.
	capped := g.ParseAll(Tokenize("a + a + a"), ParseOptions{MaxTrees: 1})
	if len(capped) != 1 {
		t.Errorf("got %d capped trees, want 1", len(capped))
	}
}

func TestParseNotInLanguage(t *testing.T) {
	g := mustGrammar(t, exprGrammar)
	if _, err := g.Parse(Tokenize("a b")); err == nil {
		t.Error("Parse of invalid string should fail")
	}
	if trees := g.ParseAll([]string{"zzz"}, ParseOptions{}); trees != nil {
		t.Errorf("ParseAll of invalid string = %v, want nil", trees)
	}
}

func TestParseUnitCycle(t *testing.T) {
	// a -> b, b -> a | "x": minimal tree still found despite the cycle.
	g := mustGrammar(t, `
a -> b
b -> a | "x"
`)
	tree, err := g.Parse([]string{"x"})
	if err != nil {
		t.Fatalf("Parse through unit cycle: %v", err)
	}
	if tree.Text() != "x" {
		t.Errorf("Text = %q", tree.Text())
	}
}

func TestTraces(t *testing.T) {
	g := mustGrammar(t, `
s -> "p" s | "q"
`)
	tree, err := g.Parse([]string{"p", "p", "q"})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string) // trace -> symbol
	tree.Walk(func(n *Tree, tr Trace) bool {
		got[tr.String()] = n.Sym.Name
		return true
	})
	want := map[string]string{
		"[]":      "s",
		"[1]":     "p",
		"[2]":     "s",
		"[2,1]":   "p",
		"[2,2]":   "s",
		"[2,2,1]": "q",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("traces = %v, want %v", got, want)
	}
}

func TestTraceKeyAndChild(t *testing.T) {
	root := Trace{}
	if root.Key() != "r" || root.String() != "[]" {
		t.Errorf("root trace: key=%q str=%q", root.Key(), root.String())
	}
	c := root.Child(2).Child(1)
	if c.Key() != "r_2_1" || c.String() != "[2,1]" {
		t.Errorf("child trace: key=%q str=%q", c.Key(), c.String())
	}
	// Child must not alias the parent's backing array.
	a := root.Child(1)
	b := root.Child(2)
	if a[0] != 1 || b[0] != 2 {
		t.Errorf("trace aliasing: a=%v b=%v", a, b)
	}
}

func TestGenerateFiniteLanguage(t *testing.T) {
	g := mustGrammar(t, `
policy -> "permit" subject | "deny" subject
subject -> "alice" | "bob"
`)
	got := g.GenerateStrings(GenerateOptions{MaxNodes: 10})
	sort.Strings(got)
	want := []string{"deny alice", "deny bob", "permit alice", "permit bob"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("language = %v, want %v", got, want)
	}
}

func TestGenerateRecursiveBounded(t *testing.T) {
	g := mustGrammar(t, `
s -> "x" | "x" s
`)
	got := g.GenerateStrings(GenerateOptions{MaxNodes: 7})
	// Trees: s("x") = 2 nodes; s("x", s) adds 2 per level.
	want := []string{"x", "x x", "x x x"}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bounded language = %v, want %v", got, want)
	}
}

func TestGenerateMaxTrees(t *testing.T) {
	g := mustGrammar(t, `
s -> "x" | "x" s
`)
	count := 0
	g.Generate(GenerateOptions{MaxNodes: 100, MaxTrees: 5}, func(*Tree) bool {
		count++
		return true
	})
	if count != 5 {
		t.Errorf("generated %d trees, want 5", count)
	}
}

func TestGenerateYieldStop(t *testing.T) {
	g := mustGrammar(t, `
s -> "x" | "x" s
`)
	count := 0
	g.Generate(GenerateOptions{MaxNodes: 50}, func(*Tree) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("yield stop ignored: %d trees", count)
	}
}

// TestGenerateParseRoundTrip: every generated string parses, and one of
// its parse trees derives the same string.
func TestGenerateParseRoundTrip(t *testing.T) {
	grammars := []string{
		exprGrammar,
		"s -> \"x\" | \"x\" s\n",
		"p -> \"permit\" \"(\" who \")\" | \"deny\" \"(\" who \")\"\nwho -> \"alice\" | \"bob\" | \"carol\"\n",
	}
	for _, src := range grammars {
		g := mustGrammar(t, src)
		var trees []*Tree
		g.Generate(GenerateOptions{MaxNodes: 9, MaxTrees: 50}, func(tr *Tree) bool {
			trees = append(trees, tr)
			return true
		})
		if len(trees) == 0 {
			t.Fatalf("no trees generated for %q", src)
		}
		for _, tr := range trees {
			toks := tr.Tokens()
			if !g.Accepts(toks) {
				t.Errorf("generated string %v not accepted (grammar %q)", toks, src)
			}
		}
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		give string
		want []string
	}{
		{give: "permit(alice, read)", want: []string{"permit", "(", "alice", ",", "read", ")"}},
		{give: "a  +  b", want: []string{"a", "+", "b"}},
		{give: "x<=3", want: []string{"x", "<", "=", "3"}},
		{give: "", want: nil},
		{give: "  \t ", want: nil},
	}
	for _, tt := range tests {
		if got := Tokenize(tt.give); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestTreeAccessors(t *testing.T) {
	g := mustGrammar(t, exprGrammar)
	tree, err := g.Parse(Tokenize("( a + b )"))
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d < 3 {
		t.Errorf("Depth = %d, want >= 3", d)
	}
	pretty := tree.Pretty()
	for _, want := range []string{"expr", "term", `"a"`} {
		if !strings.Contains(pretty, want) {
			t.Errorf("Pretty output missing %q:\n%s", want, pretty)
		}
	}
}

func TestProductionString(t *testing.T) {
	p := Production{Lhs: "s", Rhs: []Symbol{T("x"), NT("s")}}
	if got := p.String(); got != `s -> "x" s` {
		t.Errorf("String = %q", got)
	}
	eps := Production{Lhs: "s"}
	if got := eps.String(); got != "s -> ε" {
		t.Errorf("epsilon String = %q", got)
	}
}

// TestAcceptsMatchesGeneration (property): for random small token strings
// over the terminal alphabet, Accepts agrees with membership in the
// bounded generated language when the string is short enough that the
// generation bound is exhaustive.
func TestAcceptsMatchesGeneration(t *testing.T) {
	g := mustGrammar(t, `
s -> "x" | "y" | "x" s
`)
	// All strings of <= 3 tokens in the language: x, y, x x, x y, x x x,
	// x x y. Generation with enough nodes covers them.
	lang := make(map[string]struct{})
	for _, s := range g.GenerateStrings(GenerateOptions{MaxNodes: 8}) {
		lang[s] = struct{}{}
	}
	f := func(pattern uint8, length uint8) bool {
		n := int(length%3) + 1
		toks := make([]string, n)
		for i := 0; i < n; i++ {
			if pattern&(1<<i) != 0 {
				toks[i] = "x"
			} else {
				toks[i] = "y"
			}
		}
		_, inLang := lang[strings.Join(toks, " ")]
		return g.Accepts(toks) == inLang
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
