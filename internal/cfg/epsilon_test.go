package cfg

import (
	"testing"
)

// Epsilon-heavy grammars stress the Earley same-set completion logic
// (nullable prediction/completion cascades).

func TestNullableChain(t *testing.T) {
	g := mustGrammar(t, `
s -> a b c
a -> ε | "x"
b -> ε | "y"
c -> ε | "z"
`)
	tests := []struct {
		give []string
		want bool
	}{
		{give: nil, want: true},
		{give: []string{"x"}, want: true},
		{give: []string{"y"}, want: true},
		{give: []string{"z"}, want: true},
		{give: []string{"x", "y"}, want: true},
		{give: []string{"x", "z"}, want: true},
		{give: []string{"y", "z"}, want: true},
		{give: []string{"x", "y", "z"}, want: true},
		{give: []string{"y", "x"}, want: false},
		{give: []string{"z", "x"}, want: false},
		{give: []string{"x", "x"}, want: false},
	}
	for _, tt := range tests {
		if got := g.Accepts(tt.give); got != tt.want {
			t.Errorf("Accepts(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestNullableIndirect(t *testing.T) {
	// Nullability through a chain of unit productions.
	g := mustGrammar(t, `
s -> a "end"
a -> b
b -> c
c -> ε
`)
	if !g.Accepts([]string{"end"}) {
		t.Error("indirectly nullable prefix rejected")
	}
	tree, err := g.Parse([]string{"end"})
	if err != nil {
		t.Fatal(err)
	}
	// The parse tree threads through a, b, c even though they derive ε.
	depth := tree.Depth()
	if depth < 4 {
		t.Errorf("tree depth = %d, want the full nullable chain\n%s", depth, tree.Pretty())
	}
}

func TestNullableBetweenTerminals(t *testing.T) {
	g := mustGrammar(t, `
s -> "a" gap "b"
gap -> ε | "," gap
`)
	tests := []struct {
		give []string
		want bool
	}{
		{give: []string{"a", "b"}, want: true},
		{give: []string{"a", ",", "b"}, want: true},
		{give: []string{"a", ",", ",", ",", "b"}, want: true},
		{give: []string{"a", ",", ","}, want: false},
	}
	for _, tt := range tests {
		if got := g.Accepts(tt.give); got != tt.want {
			t.Errorf("Accepts(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestAmbiguousNullableTrees(t *testing.T) {
	// Two ways to derive the empty prefix: via a or via b.
	g := mustGrammar(t, `
s -> a "t" | b "t"
a -> ε
b -> ε
`)
	trees := g.ParseAll([]string{"t"}, ParseOptions{})
	if len(trees) != 2 {
		t.Errorf("got %d trees, want 2 (one per nullable route)", len(trees))
	}
}

func TestEpsilonOnlyGrammar(t *testing.T) {
	g := mustGrammar(t, "s -> ε\n")
	if !g.Accepts(nil) {
		t.Error("epsilon grammar rejects empty string")
	}
	if g.Accepts([]string{"x"}) {
		t.Error("epsilon grammar accepts non-empty string")
	}
	strs := g.GenerateStrings(GenerateOptions{MaxNodes: 3})
	if len(strs) != 1 || strs[0] != "" {
		t.Errorf("generated %v", strs)
	}
}
