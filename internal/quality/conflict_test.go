package quality

import (
	"testing"

	"agenp/internal/xacml"
)

// conflicted is a policy where minor DBAs trigger both effects: a
// general permit (1 match) against a more specific deny (2 matches).
func conflicted() *xacml.Policy {
	return &xacml.Policy{
		ID:        "conflicted",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "permit-dba", Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
			{ID: "deny-minor-dba", Effect: xacml.Deny,
				Target: xacml.Target{
					{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")},
					{Category: xacml.Subject, Attr: "age", Op: xacml.OpLt, Value: xacml.I(18)},
				}},
			{ID: "permit-minor-reader", Effect: xacml.Permit,
				Target: xacml.Target{
					{Category: xacml.Subject, Attr: "age", Op: xacml.OpLt, Value: xacml.I(18)},
					{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("read")},
					{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")},
				}},
		},
	}
}

func minorDBA(action string) xacml.Request {
	return xacml.NewRequest().
		Set(xacml.Subject, "role", xacml.S("dba")).
		Set(xacml.Subject, "age", xacml.I(16)).
		Set(xacml.Action, "id", xacml.S(action))
}

func adultDBA() xacml.Request {
	return xacml.NewRequest().
		Set(xacml.Subject, "role", xacml.S("dba")).
		Set(xacml.Subject, "age", xacml.I(30))
}

func TestResolveStrategies(t *testing.T) {
	p := conflicted()
	writeReq := minorDBA("write") // permit(1) vs deny(2)
	readReq := minorDBA("read")   // permit(1), deny(2), permit(3)
	tests := []struct {
		name string
		s    Strategy
		r    xacml.Request
		want xacml.Decision
	}{
		{name: "deny wins", s: DenyWins, r: writeReq, want: xacml.DecisionDeny},
		{name: "permit wins", s: PermitWins, r: writeReq, want: xacml.DecisionPermit},
		{name: "more specific deny", s: MoreSpecificWins, r: writeReq, want: xacml.DecisionDeny},
		{name: "even more specific permit", s: MoreSpecificWins, r: readReq, want: xacml.DecisionPermit},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Resolve(p, tt.r, tt.s); got != tt.want {
				t.Errorf("Resolve = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestResolveNoConflict(t *testing.T) {
	p := conflicted()
	// Adult DBA: only the permit fires; every strategy agrees.
	for _, s := range Strategies() {
		if got := Resolve(p, adultDBA(), s); got != xacml.DecisionPermit {
			t.Errorf("%s on non-conflicting request = %v", s, got)
		}
	}
	// Nothing fires.
	guest := xacml.NewRequest().Set(xacml.Subject, "role", xacml.S("guest"))
	if got := Resolve(p, guest, DenyWins); got != xacml.DecisionNotApplicable {
		t.Errorf("no-fire = %v", got)
	}
	// Policy target gates.
	gated := conflicted()
	gated.Target = xacml.Target{{Category: xacml.Resource, Attr: "x", Op: xacml.OpEq, Value: xacml.S("y")}}
	if got := Resolve(gated, adultDBA(), DenyWins); got != xacml.DecisionNotApplicable {
		t.Errorf("gated = %v", got)
	}
}

func TestLearnStrategyFromHumanDecisions(t *testing.T) {
	p := conflicted()
	// The operator resolved minor-DBA conflicts by specificity: deny
	// writes, permit reads.
	cases := []ResolutionCase{
		{Request: minorDBA("write"), Decision: xacml.DecisionDeny},
		{Request: minorDBA("read"), Decision: xacml.DecisionPermit},
		{Request: minorDBA("write"), Decision: xacml.DecisionDeny},
	}
	s, agree, err := LearnStrategy(p, cases)
	if err != nil {
		t.Fatal(err)
	}
	if s != MoreSpecificWins {
		t.Errorf("learned %v, want MoreSpecificWins", s)
	}
	if agree != 1.0 {
		t.Errorf("agreement = %f", agree)
	}
	// Pure-deny operator.
	denyCases := []ResolutionCase{
		{Request: minorDBA("write"), Decision: xacml.DecisionDeny},
		{Request: minorDBA("read"), Decision: xacml.DecisionDeny},
	}
	s, _, err = LearnStrategy(p, denyCases)
	if err != nil || s != DenyWins {
		t.Errorf("learned %v, %v; want DenyWins", s, err)
	}
	if _, _, err := LearnStrategy(p, nil); err == nil {
		t.Error("empty cases should fail")
	}
}

func TestConflictFreeRewrite(t *testing.T) {
	p := conflicted()
	reqs := []xacml.Request{minorDBA("write"), minorDBA("read"), adultDBA()}
	for _, s := range Strategies() {
		rewritten := ConflictFreeRewrite(p, s)
		for _, r := range reqs {
			want := Resolve(p, r, s)
			if got := rewritten.Evaluate(r); got != want {
				t.Errorf("%s: rewrite decides %v, Resolve %v on %s", s, got, want, r)
			}
		}
	}
	// The rewrite must not mutate the original rule order.
	if p.Rules[0].ID != "permit-dba" {
		t.Error("original policy mutated")
	}
}

func TestStrategyString(t *testing.T) {
	if DenyWins.String() != "deny-wins" || MoreSpecificWins.String() != "more-specific-wins" {
		t.Error("Strategy.String broken")
	}
	if Strategy(99).String() != "invalid-strategy" {
		t.Error("invalid strategy string")
	}
}
