package quality

import (
	"fmt"

	"agenp/internal/xacml"
)

// This file implements the conflict-resolution approach the paper
// sketches in Section V.A: "use a static analysis to identify potential
// conflicts and then at run-time use a conflict resolution algorithm to
// solve conflicts … one may need to decide which strategy to adopt
// depending on the context. Approaches like learning from human
// decisions about conflict resolutions can be adopted."
//
// Static detection is Assess (the Conflicts field); this file adds the
// runtime strategies and a small learner that picks the strategy most
// consistent with observed human resolutions.

// Strategy is a runtime conflict-resolution algorithm.
type Strategy int

// Available strategies.
const (
	// DenyWins resolves every permit/deny conflict to Deny (the safety
	// posture of coalition systems).
	DenyWins Strategy = iota + 1
	// PermitWins resolves every conflict to Permit.
	PermitWins
	// MoreSpecificWins resolves to the effect of the rule with the more
	// specific target (more matches); ties fall back to Deny.
	MoreSpecificWins
)

func (s Strategy) String() string {
	switch s {
	case DenyWins:
		return "deny-wins"
	case PermitWins:
		return "permit-wins"
	case MoreSpecificWins:
		return "more-specific-wins"
	default:
		return "invalid-strategy"
	}
}

// Strategies lists every strategy.
func Strategies() []Strategy {
	return []Strategy{DenyWins, PermitWins, MoreSpecificWins}
}

// Resolve evaluates the policy's rules on the request individually and
// combines the fired effects under the strategy, ignoring the policy's
// own combining algorithm. It returns NotApplicable when nothing fires.
func Resolve(p *xacml.Policy, r xacml.Request, s Strategy) xacml.Decision {
	if !p.Target.Matches(r) {
		return xacml.DecisionNotApplicable
	}
	var (
		permitBest = -1 // most specific firing permit rule's target size
		denyBest   = -1
	)
	for _, ru := range p.Rules {
		if !ru.Applies(r) {
			continue
		}
		size := len(ru.Target)
		if ru.Effect == xacml.Permit {
			if size > permitBest {
				permitBest = size
			}
		} else {
			if size > denyBest {
				denyBest = size
			}
		}
	}
	switch {
	case permitBest < 0 && denyBest < 0:
		return xacml.DecisionNotApplicable
	case permitBest < 0:
		return xacml.DecisionDeny
	case denyBest < 0:
		return xacml.DecisionPermit
	}
	// Genuine conflict: both effects fired.
	switch s {
	case DenyWins:
		return xacml.DecisionDeny
	case PermitWins:
		return xacml.DecisionPermit
	case MoreSpecificWins:
		if permitBest > denyBest {
			return xacml.DecisionPermit
		}
		return xacml.DecisionDeny
	default:
		return xacml.DecisionIndeterminate
	}
}

// ResolutionCase is one observed human decision on a conflicting
// request.
type ResolutionCase struct {
	Request  xacml.Request
	Decision xacml.Decision
}

// LearnStrategy returns the strategy that agrees with the most observed
// resolutions (ties broken toward the safer strategy in Strategies()
// order), along with its agreement rate. It errors when no cases are
// given.
func LearnStrategy(p *xacml.Policy, cases []ResolutionCase) (Strategy, float64, error) {
	if len(cases) == 0 {
		return 0, 0, fmt.Errorf("quality: no resolution cases to learn from")
	}
	best := DenyWins
	bestAgree := -1
	for _, s := range Strategies() {
		agree := 0
		for _, c := range cases {
			if Resolve(p, c.Request, s) == c.Decision {
				agree++
			}
		}
		if agree > bestAgree {
			best, bestAgree = s, agree
		}
	}
	return best, float64(bestAgree) / float64(len(cases)), nil
}

// ConflictFreeRewrite returns a copy of the policy whose combining
// algorithm realizes the strategy where XACML can express it, so the
// resolved behaviour can be installed in a standard PDP:
// DenyWins -> deny-overrides, PermitWins -> permit-overrides.
// MoreSpecificWins has no direct XACML combining algorithm; the rewrite
// orders rules by descending target specificity under first-applicable,
// which matches MoreSpecificWins on every request where a unique most
// specific rule fires.
func ConflictFreeRewrite(p *xacml.Policy, s Strategy) *xacml.Policy {
	out := &xacml.Policy{ID: p.ID + "-" + s.String(), Target: p.Target}
	out.Rules = append(out.Rules, p.Rules...)
	switch s {
	case DenyWins:
		out.Combining = xacml.DenyOverrides
	case PermitWins:
		out.Combining = xacml.PermitOverrides
	case MoreSpecificWins:
		out.Combining = xacml.FirstApplicable
		// Stable sort by descending target size; ties keep author order
		// except deny precedes permit (the strategy's tie-break).
		rules := out.Rules
		for i := 1; i < len(rules); i++ {
			for j := i; j > 0 && lessSpecific(rules[j-1], rules[j]); j-- {
				rules[j-1], rules[j] = rules[j], rules[j-1]
			}
		}
	}
	return out
}

func lessSpecific(a, b xacml.Rule) bool {
	if len(a.Target) != len(b.Target) {
		return len(a.Target) < len(b.Target)
	}
	// Tie: deny first.
	return a.Effect == xacml.Permit && b.Effect == xacml.Deny
}
