// Package quality implements the policy quality assessment of the
// paper's Section V.A (and [14]): consistency, relevance, minimality and
// completeness of a policy set over a finite attribute domain, plus the
// coalition-specific requirements the paper proposes — enforceability
// and risk. It backs the Policy Checking Point (PCP) of the AGENP
// architecture.
package quality

import (
	"fmt"
	"sort"
	"strings"

	"agenp/internal/xacml"
)

// Domain is a finite attribute domain: the possible values of every
// attribute the managed system can encounter. Quality requirements are
// decided by (bounded) enumeration of this domain.
type Domain struct {
	Values map[xacml.Category]map[string][]xacml.Value
}

// NewDomain builds an empty domain.
func NewDomain() *Domain {
	return &Domain{Values: make(map[xacml.Category]map[string][]xacml.Value)}
}

// Add declares the possible values of an attribute and returns the
// domain for chaining.
func (d *Domain) Add(cat xacml.Category, attr string, vals ...xacml.Value) *Domain {
	m, ok := d.Values[cat]
	if !ok {
		m = make(map[string][]xacml.Value)
		d.Values[cat] = m
	}
	m[attr] = append(m[attr], vals...)
	return d
}

// FromBias builds a domain from an observed request bias.
func FromBias(b *xacml.LearningBias) *Domain {
	d := NewDomain()
	for cat, attrs := range b.Values {
		for a, vals := range attrs {
			d.Add(cat, a, vals...)
		}
	}
	return d
}

// Size returns the number of requests in the full cartesian domain.
func (d *Domain) Size() int {
	n := 1
	for _, attrs := range d.Values {
		for _, vals := range attrs {
			n *= len(vals)
		}
	}
	return n
}

// slot is one (category, attr) coordinate of the domain.
type slot struct {
	cat  xacml.Category
	attr string
	vals []xacml.Value
}

func (d *Domain) slots() []slot {
	var out []slot
	for cat, attrs := range d.Values {
		for a, vals := range attrs {
			out = append(out, slot{cat: cat, attr: a, vals: vals})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cat != out[j].cat {
			return out[i].cat < out[j].cat
		}
		return out[i].attr < out[j].attr
	})
	return out
}

// Enumerate yields every request of the domain (full assignment of every
// attribute) until yield returns false.
func (d *Domain) Enumerate(yield func(xacml.Request) bool) {
	slots := d.slots()
	if len(slots) == 0 {
		return
	}
	idx := make([]int, len(slots))
	for {
		r := xacml.NewRequest()
		for i, s := range slots {
			r.Set(s.cat, s.attr, s.vals[idx[i]])
		}
		if !yield(r) {
			return
		}
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(slots[k].vals) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return
		}
	}
}

// Conflict is a request on which rules with opposite effects both fire —
// the paper's consistency requirement ("a policy that allows a subject
// to perform an action ... and another policy that prohibits it").
type Conflict struct {
	Request    xacml.Request
	PermitRule string
	DenyRule   string
}

func (c Conflict) String() string {
	return fmt.Sprintf("conflict on %s: %s vs %s", c.Request, c.PermitRule, c.DenyRule)
}

// Report is a quality assessment of a policy over a domain.
type Report struct {
	// Consistent is true when no request triggers rules of both effects.
	Consistent bool
	// Conflicts lists up to MaxFindings distinct conflicting rule pairs
	// (deduplicated across requests), each with the first witnessing
	// request of the enumeration, in stable (PermitRule, DenyRule)
	// order.
	Conflicts []Conflict

	// Irrelevant lists rules that fire on no request of the domain
	// (relevance requirement).
	Irrelevant []string

	// Redundant lists rules whose removal leaves every decision
	// unchanged (minimality requirement).
	Redundant []string

	// Completeness is the fraction of domain requests with an applicable
	// decision (Permit or Deny); Uncovered samples the gaps.
	Completeness float64
	Uncovered    []xacml.Request

	// Checked counts the requests examined.
	Checked int
}

// Options bounds the assessment.
type Options struct {
	// MaxRequests bounds domain enumeration (0 = the whole domain).
	MaxRequests int
	// MaxFindings bounds sampled conflicts/uncovered requests
	// (default 5).
	MaxFindings int
}

// Assess evaluates the four quality requirements of Section V.A for a
// policy over a domain.
func Assess(p *xacml.Policy, d *Domain, opts Options) *Report {
	maxFindings := opts.MaxFindings
	if maxFindings <= 0 {
		maxFindings = 5
	}
	rep := &Report{Consistent: true}

	fired := make(map[string]bool, len(p.Rules))
	seenConflict := make(map[[2]string]bool)
	// decisionsWithout[i] tracks whether dropping rule i ever changes a
	// decision.
	changedWithout := make([]bool, len(p.Rules))

	d.Enumerate(func(r xacml.Request) bool {
		if opts.MaxRequests > 0 && rep.Checked >= opts.MaxRequests {
			return false
		}
		rep.Checked++

		decision := p.Evaluate(r)
		if decision == xacml.DecisionPermit || decision == xacml.DecisionDeny {
			rep.Completeness++
		} else if len(rep.Uncovered) < maxFindings {
			rep.Uncovered = append(rep.Uncovered, r.Clone())
		}

		// Which rules fire, for relevance and consistency. Every
		// (permit, deny) pair firing together is one conflict; the pair
		// is reported once, with the first witnessing request, no matter
		// how many requests exhibit it.
		var permitFired, denyFired []string
		if p.Target.Matches(r) {
			for _, ru := range p.Rules {
				if !ru.Applies(r) {
					continue
				}
				fired[ru.ID] = true
				if ru.Effect == xacml.Permit {
					permitFired = append(permitFired, ru.ID)
				} else {
					denyFired = append(denyFired, ru.ID)
				}
			}
		}
		if len(permitFired) > 0 && len(denyFired) > 0 {
			rep.Consistent = false
			for _, pr := range permitFired {
				for _, dr := range denyFired {
					key := [2]string{pr, dr}
					if seenConflict[key] {
						continue
					}
					seenConflict[key] = true
					if len(rep.Conflicts) < maxFindings {
						rep.Conflicts = append(rep.Conflicts, Conflict{
							Request:    r.Clone(),
							PermitRule: pr,
							DenyRule:   dr,
						})
					}
				}
			}
		}

		// Minimality: does dropping rule i change this decision?
		for i := range p.Rules {
			if changedWithout[i] {
				continue
			}
			reduced := *p
			reduced.Rules = append(append([]xacml.Rule{}, p.Rules[:i]...), p.Rules[i+1:]...)
			if reduced.Evaluate(r) != decision {
				changedWithout[i] = true
			}
		}
		return true
	})

	for _, ru := range p.Rules {
		if !fired[ru.ID] {
			rep.Irrelevant = append(rep.Irrelevant, ru.ID)
		}
	}
	for i := range p.Rules {
		if !changedWithout[i] {
			rep.Redundant = append(rep.Redundant, p.Rules[i].ID)
		}
	}
	if rep.Checked > 0 {
		rep.Completeness /= float64(rep.Checked)
	}
	sort.Strings(rep.Irrelevant)
	sort.Strings(rep.Redundant)
	sort.Slice(rep.Conflicts, func(i, j int) bool {
		a, b := &rep.Conflicts[i], &rep.Conflicts[j]
		if a.PermitRule != b.PermitRule {
			return a.PermitRule < b.PermitRule
		}
		return a.DenyRule < b.DenyRule
	})
	return rep
}

// SetConflict is a request on which one member policy of a set permits
// while another denies.
type SetConflict struct {
	Request      xacml.Request
	PermitPolicy string
	DenyPolicy   string
}

func (c SetConflict) String() string {
	return fmt.Sprintf("conflict on %s: %s permits vs %s denies", c.Request, c.PermitPolicy, c.DenyPolicy)
}

// SetReport is the set-level consistency assessment.
type SetReport struct {
	// Consistent is true when no request is permitted by one member
	// policy and denied by another.
	Consistent bool
	// Conflicts lists up to MaxFindings distinct conflicting policy
	// pairs, deduplicated across requests, in stable (PermitPolicy,
	// DenyPolicy) order.
	Conflicts []SetConflict
	// Checked counts the requests examined.
	Checked int
}

// AssessSet enumerates the domain and reports cross-policy permit/deny
// conflicts inside a policy set — the enumeration oracle the symbolic
// verifier (internal/polcheck) is differentially tested against.
func AssessSet(ps *xacml.PolicySet, d *Domain, opts Options) *SetReport {
	maxFindings := opts.MaxFindings
	if maxFindings <= 0 {
		maxFindings = 5
	}
	rep := &SetReport{Consistent: true}
	seen := make(map[[2]string]bool)

	d.Enumerate(func(r xacml.Request) bool {
		if opts.MaxRequests > 0 && rep.Checked >= opts.MaxRequests {
			return false
		}
		rep.Checked++
		if !ps.Target.Matches(r) {
			return true
		}
		var permits, denies []string
		for _, p := range ps.Policies {
			switch p.Evaluate(r) {
			case xacml.DecisionPermit:
				permits = append(permits, p.ID)
			case xacml.DecisionDeny:
				denies = append(denies, p.ID)
			}
		}
		if len(permits) == 0 || len(denies) == 0 {
			return true
		}
		rep.Consistent = false
		for _, pp := range permits {
			for _, dp := range denies {
				key := [2]string{pp, dp}
				if seen[key] {
					continue
				}
				seen[key] = true
				if len(rep.Conflicts) < maxFindings {
					rep.Conflicts = append(rep.Conflicts, SetConflict{
						Request:      r.Clone(),
						PermitPolicy: pp,
						DenyPolicy:   dp,
					})
				}
			}
		}
		return true
	})

	sort.Slice(rep.Conflicts, func(i, j int) bool {
		a, b := &rep.Conflicts[i], &rep.Conflicts[j]
		if a.PermitPolicy != b.PermitPolicy {
			return a.PermitPolicy < b.PermitPolicy
		}
		return a.DenyPolicy < b.DenyPolicy
	})
	return rep
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "consistent: %v (%d conflicts sampled)\n", r.Consistent, len(r.Conflicts))
	fmt.Fprintf(&sb, "irrelevant rules: %v\n", r.Irrelevant)
	fmt.Fprintf(&sb, "redundant rules: %v\n", r.Redundant)
	fmt.Fprintf(&sb, "completeness: %.3f over %d requests\n", r.Completeness, r.Checked)
	return sb.String()
}

// Enforceability (paper Section V.A): a policy is enforceable when every
// attribute it references can actually be acquired by the managed party
// in its context.

// AttributeSet is the set of attributes a PIP can supply.
type AttributeSet map[string]struct{}

// NewAttributeSet builds a set from "category.attr" strings.
func NewAttributeSet(attrs ...string) AttributeSet {
	s := make(AttributeSet, len(attrs))
	for _, a := range attrs {
		s[a] = struct{}{}
	}
	return s
}

// EnforceabilityReport lists the attributes a policy needs but the
// managed party cannot acquire.
type EnforceabilityReport struct {
	// Missing maps rule id -> unavailable "category.attr" references.
	Missing map[string][]string
}

// Enforceable reports whether every rule's references are available.
func (e *EnforceabilityReport) Enforceable() bool { return len(e.Missing) == 0 }

// CheckEnforceability scans the policy's targets and conditions for
// attribute references outside the available set.
func CheckEnforceability(p *xacml.Policy, available AttributeSet) *EnforceabilityReport {
	rep := &EnforceabilityReport{Missing: make(map[string][]string)}
	refOf := func(m xacml.Match) string { return fmt.Sprintf("%s.%s", m.Category, m.Attr) }
	var condRefs func(c *xacml.Condition, into map[string]struct{})
	condRefs = func(c *xacml.Condition, into map[string]struct{}) {
		switch {
		case c == nil:
		case c.Match != nil:
			into[refOf(*c.Match)] = struct{}{}
		case c.Not != nil:
			condRefs(c.Not, into)
		default:
			for i := range c.And {
				condRefs(&c.And[i], into)
			}
			for i := range c.Or {
				condRefs(&c.Or[i], into)
			}
		}
	}
	for _, ru := range p.Rules {
		refs := make(map[string]struct{})
		for _, m := range ru.Target {
			refs[refOf(m)] = struct{}{}
		}
		condRefs(ru.Condition, refs)
		var missing []string
		for ref := range refs {
			if _, ok := available[ref]; !ok {
				missing = append(missing, ref)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			rep.Missing[ru.ID] = missing
		}
	}
	return rep
}

// RiskModel scores the risk of applying a policy in a context
// (paper Section V.A: "possible risks that may result from the
// application of a policy").
type RiskModel interface {
	// Score returns the risk in [0, 1] of the decision on the request.
	Score(r xacml.Request, d xacml.Decision) float64
}

// RiskFunc adapts a function to a RiskModel.
type RiskFunc func(r xacml.Request, d xacml.Decision) float64

// Score implements RiskModel.
func (f RiskFunc) Score(r xacml.Request, d xacml.Decision) float64 { return f(r, d) }

// AssessRisk averages the risk model over the domain (bounded by
// maxRequests; 0 = whole domain).
func AssessRisk(p *xacml.Policy, d *Domain, model RiskModel, maxRequests int) float64 {
	total, n := 0.0, 0
	d.Enumerate(func(r xacml.Request) bool {
		if maxRequests > 0 && n >= maxRequests {
			return false
		}
		total += model.Score(r, p.Evaluate(r))
		n++
		return true
	})
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
