package quality

import (
	"strings"
	"testing"

	"agenp/internal/xacml"
)

func smallDomain() *Domain {
	return NewDomain().
		Add(xacml.Subject, "role", xacml.S("dba"), xacml.S("dev")).
		Add(xacml.Subject, "age", xacml.I(15), xacml.I(30)).
		Add(xacml.Action, "id", xacml.S("read"), xacml.S("write"))
}

func TestDomainSizeAndEnumerate(t *testing.T) {
	d := smallDomain()
	if d.Size() != 8 {
		t.Fatalf("Size = %d, want 8", d.Size())
	}
	seen := make(map[string]struct{})
	d.Enumerate(func(r xacml.Request) bool {
		seen[r.Key()] = struct{}{}
		return true
	})
	if len(seen) != 8 {
		t.Errorf("enumerated %d distinct requests, want 8", len(seen))
	}
}

func TestDomainEnumerateEarlyStop(t *testing.T) {
	d := smallDomain()
	n := 0
	d.Enumerate(func(xacml.Request) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop ignored: %d", n)
	}
}

func TestAssessConsistency(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "permit-dba", Effect: xacml.Permit, Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
			{ID: "deny-minors", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Subject, Attr: "age", Op: xacml.OpLt, Value: xacml.I(18)}}},
		},
	}
	rep := Assess(p, smallDomain(), Options{})
	if rep.Consistent {
		t.Error("minor dba triggers both effects; should be inconsistent")
	}
	if len(rep.Conflicts) == 0 {
		t.Fatal("no conflicts sampled")
	}
	c := rep.Conflicts[0]
	if c.PermitRule != "permit-dba" || c.DenyRule != "deny-minors" {
		t.Errorf("conflict = %+v", c)
	}
	if !strings.Contains(c.String(), "permit-dba") {
		t.Errorf("Conflict.String = %q", c.String())
	}
}

func TestAssessConsistentPolicy(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.FirstApplicable,
		Rules: []xacml.Rule{
			{ID: "permit-read", Effect: xacml.Permit, Target: xacml.Target{{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("read")}}},
			{ID: "deny-write", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("write")}}},
		},
	}
	rep := Assess(p, smallDomain(), Options{})
	if !rep.Consistent {
		t.Errorf("disjoint targets should be consistent: %v", rep.Conflicts)
	}
	if rep.Completeness != 1.0 {
		t.Errorf("completeness = %f, want 1.0 (read/write both covered)", rep.Completeness)
	}
	if len(rep.Irrelevant) != 0 || len(rep.Redundant) != 0 {
		t.Errorf("unexpected irrelevant=%v redundant=%v", rep.Irrelevant, rep.Redundant)
	}
}

func TestAssessRelevance(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "r1", Effect: xacml.Permit},
			{ID: "never", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("ghost")}}},
		},
	}
	rep := Assess(p, smallDomain(), Options{})
	if len(rep.Irrelevant) != 1 || rep.Irrelevant[0] != "never" {
		t.Errorf("Irrelevant = %v", rep.Irrelevant)
	}
}

func TestAssessMinimality(t *testing.T) {
	anyDBA := xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "r1", Effect: xacml.Permit, Target: anyDBA},
			{ID: "r2-duplicate", Effect: xacml.Permit, Target: anyDBA},
		},
	}
	rep := Assess(p, smallDomain(), Options{})
	// Each rule alone suffices, so both are individually redundant.
	if len(rep.Redundant) != 2 {
		t.Errorf("Redundant = %v, want both duplicates", rep.Redundant)
	}
}

func TestAssessCompletenessGaps(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "dba-only", Effect: xacml.Permit, Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
		},
	}
	rep := Assess(p, smallDomain(), Options{})
	if rep.Completeness != 0.5 {
		t.Errorf("completeness = %f, want 0.5", rep.Completeness)
	}
	if len(rep.Uncovered) == 0 {
		t.Error("no uncovered requests sampled")
	}
	if rep.Checked != 8 {
		t.Errorf("Checked = %d, want 8", rep.Checked)
	}
}

func TestAssessMaxRequests(t *testing.T) {
	p := &xacml.Policy{ID: "p", Combining: xacml.DenyOverrides}
	rep := Assess(p, smallDomain(), Options{MaxRequests: 3})
	if rep.Checked != 3 {
		t.Errorf("Checked = %d, want 3", rep.Checked)
	}
}

func TestReportString(t *testing.T) {
	p := &xacml.Policy{ID: "p", Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{{ID: "r", Effect: xacml.Permit}}}
	rep := Assess(p, smallDomain(), Options{})
	s := rep.String()
	for _, want := range []string{"consistent: true", "completeness: 1.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String missing %q:\n%s", want, s)
		}
	}
}

func TestCheckEnforceability(t *testing.T) {
	cond := xacml.Condition{Not: &xacml.Condition{Match: &xacml.Match{Category: xacml.Environment, Attr: "threat", Op: xacml.OpEq, Value: xacml.S("high")}}}
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{
				ID:     "r1",
				Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}},
			},
			{
				ID:        "r2",
				Effect:    xacml.Deny,
				Target:    xacml.Target{{Category: xacml.Subject, Attr: "clearance", Op: xacml.OpLt, Value: xacml.I(3)}},
				Condition: &cond,
			},
		},
	}
	available := NewAttributeSet("subject.role", "subject.clearance")
	rep := CheckEnforceability(p, available)
	if rep.Enforceable() {
		t.Fatal("environment.threat is unavailable; should not be enforceable")
	}
	missing := rep.Missing["r2"]
	if len(missing) != 1 || missing[0] != "environment.threat" {
		t.Errorf("Missing = %v", rep.Missing)
	}
	full := NewAttributeSet("subject.role", "subject.clearance", "environment.threat")
	if !CheckEnforceability(p, full).Enforceable() {
		t.Error("fully available policy flagged unenforceable")
	}
}

func TestAssessRisk(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules:     []xacml.Rule{{ID: "allow-all", Effect: xacml.Permit}},
	}
	// Risk 1 for permitting writes, 0 otherwise.
	model := RiskFunc(func(r xacml.Request, d xacml.Decision) float64 {
		if d != xacml.DecisionPermit {
			return 0
		}
		if v, ok := r.Get(xacml.Action, "id"); ok && v.Str == "write" {
			return 1
		}
		return 0
	})
	risk := AssessRisk(p, smallDomain(), model, 0)
	if risk != 0.5 {
		t.Errorf("risk = %f, want 0.5 (half the domain writes)", risk)
	}
	if AssessRisk(p, NewDomain(), model, 0) != 0 {
		t.Error("empty domain risk should be 0")
	}
}

func TestFromBias(t *testing.T) {
	reqs := []xacml.Request{
		xacml.NewRequest().Set(xacml.Subject, "role", xacml.S("dba")),
		xacml.NewRequest().Set(xacml.Subject, "role", xacml.S("dev")),
	}
	d := FromBias(xacml.BiasFromRequests(reqs))
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
}

// TestAssessConflictDedup: the same rule pair conflicts on many domain
// requests (every dba, any age, any action), but is reported exactly
// once; distinct pairs are reported in stable sorted order.
func TestAssessConflictDedup(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "permit-dba", Effect: xacml.Permit, Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
			{ID: "deny-dba", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
			{ID: "deny-minors", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Subject, Attr: "age", Op: xacml.OpLt, Value: xacml.I(18)}}},
		},
	}
	rep := Assess(p, smallDomain(), Options{})
	if rep.Consistent {
		t.Fatal("should be inconsistent")
	}
	// 4 dba requests × 2 pairs each, but only the 2 distinct pairs
	// survive, sorted by (PermitRule, DenyRule).
	if len(rep.Conflicts) != 2 {
		t.Fatalf("conflicts = %+v, want exactly 2 deduped pairs", rep.Conflicts)
	}
	if rep.Conflicts[0].DenyRule != "deny-dba" || rep.Conflicts[1].DenyRule != "deny-minors" {
		t.Errorf("pair order = %+v, want deny-dba before deny-minors", rep.Conflicts)
	}
	for _, c := range rep.Conflicts {
		if c.PermitRule != "permit-dba" || c.Request == nil {
			t.Errorf("conflict = %+v", c)
		}
	}
}

func TestAssessSet(t *testing.T) {
	permit := &xacml.Policy{ID: "permit-dba", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
		{ID: "r", Effect: xacml.Permit, Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
	}}
	deny := &xacml.Policy{ID: "deny-writes", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
		{ID: "r", Effect: xacml.Deny, Target: xacml.Target{{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("write")}}},
	}}
	unrelated := &xacml.Policy{ID: "deny-read-devs", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
		{ID: "r", Effect: xacml.Deny, Target: xacml.Target{
			{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dev")},
			{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("read")},
		}},
	}}
	ps := &xacml.PolicySet{ID: "s", Combining: xacml.DenyOverrides, Policies: []*xacml.Policy{permit, deny, unrelated}}

	rep := AssessSet(ps, smallDomain(), Options{})
	if rep.Consistent {
		t.Fatal("dba writing is permitted by one policy and denied by another")
	}
	// Deduped to the single conflicting policy pair: a dba never matches
	// deny-read-devs, so only (permit-dba, deny-writes) conflicts —
	// despite two domain requests (ages 15 and 30) exhibiting it.
	if len(rep.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v, want exactly 1", rep.Conflicts)
	}
	c := rep.Conflicts[0]
	if c.PermitPolicy != "permit-dba" || c.DenyPolicy != "deny-writes" {
		t.Errorf("conflict = %+v", c)
	}
	if !strings.Contains(c.String(), "deny-writes") {
		t.Errorf("SetConflict.String = %q", c.String())
	}

	// A permit-only set is consistent.
	clean := &xacml.PolicySet{ID: "s2", Combining: xacml.DenyOverrides, Policies: []*xacml.Policy{permit}}
	if rep := AssessSet(clean, smallDomain(), Options{}); !rep.Consistent || rep.Checked != 8 {
		t.Errorf("clean set: %+v", rep)
	}
}
