package aspcheck

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestGoldenCorpus analyzes every .lp and .asg file under testdata/ and
// compares the rendered findings against the matching .golden file, one
// Finding.String() per line. Run with -update to regenerate.
func TestGoldenCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*"))
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, path := range paths {
		ext := filepath.Ext(path)
		if ext != ".lp" && ext != ".asg" {
			continue
		}
		ran++
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var fs Findings
			if ext == ".asg" {
				fs = AnalyzeGrammarSource(string(src))
			} else {
				fs = AnalyzeProgramSource(string(src))
			}
			var b strings.Builder
			for _, f := range fs {
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := path + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no corpus files found under testdata/")
	}
}
