// Package aspcheck is the static-analysis front end of the AGENP policy
// pipeline: it inspects parsed ASP programs and answer set grammars and
// reports positioned findings before any grounding or solving happens.
// Real ASP systems (ILASP, clingo) pre-validate their inputs the same
// way; rejecting a malformed annotation or an unproductive grammar rule
// here is far cheaper than failing deep inside the grounder, and the
// diagnostics carry exact source spans instead of a rendered rule dump.
//
// Program checks (AnalyzeProgram):
//
//	unsafe-var      (error)   variable not bound by any positive body literal
//	undefined-pred  (warning) predicate used in a body but never defined
//	arity-mismatch  (warning) one predicate name used with several arities
//	non-stratified  (warning) negation inside a dependency cycle
//	never-true      (warning) comparison that can never hold (X < X, 1 > 2)
//	duplicate-rule  (warning) textually identical rule appears twice
//	unused-pred     (info)    predicate defined but never consumed
//
// Grammar checks (AnalyzeGrammar) additionally cover the CFG skeleton
// and the annotation programs of an ASG:
//
//	asg-unreachable  (warning) nonterminal unreachable from the start symbol
//	asg-unproductive (warning) nonterminal that derives no terminal string
//	asg-underivable  (warning) annotation references a predicate no
//	                           production can derive at that node
//
// Parse failures surface as parse-error (error) findings from the
// *Source convenience entry points.
package aspcheck

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"agenp/internal/asp"
)

// Severity ranks findings.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota + 1
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the lowercase severity names.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity converts a severity name to its value.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	default:
		return 0, fmt.Errorf("unknown severity %q (want info, warning or error)", name)
	}
}

// Finding codes. Codes are stable identifiers: CLI output, golden tests
// and downstream tooling key on them.
const (
	CodeParse         = "parse-error"
	CodeUnsafeVar     = "unsafe-var"
	CodeUndefinedPred = "undefined-pred"
	CodeUnusedPred    = "unused-pred"
	CodeArityMismatch = "arity-mismatch"
	CodeNonStratified = "non-stratified"
	CodeNeverTrue     = "never-true"
	CodeDuplicateRule = "duplicate-rule"
	CodeUnreachable   = "asg-unreachable"
	CodeUnproductive  = "asg-unproductive"
	CodeUnderivable   = "asg-underivable"
)

// Finding is one diagnostic: a severity, a stable code, a human message
// and the source position it anchors to (zero when unknown, e.g. for
// whole-grammar findings).
type Finding struct {
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
	Pos      asp.Pos  `json:"pos"`
	// Context optionally renders the offending rule or production.
	Context string `json:"context,omitempty"`
}

func (f Finding) String() string {
	if f.Pos.Valid() {
		return fmt.Sprintf("%s: %s[%s]: %s", f.Pos, f.Severity, f.Code, f.Message)
	}
	return fmt.Sprintf("%s[%s]: %s", f.Severity, f.Code, f.Message)
}

// Findings is an ordered list of diagnostics.
type Findings []Finding

// Sort orders findings by position, then severity (most severe first),
// then code and message — a deterministic order for output and tests.
func (fs Findings) Sort() {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any finding has Error severity.
func (fs Findings) HasErrors() bool {
	for _, f := range fs {
		if f.Severity >= Error {
			return true
		}
	}
	return false
}

// Filter returns the findings at or above the given severity.
func (fs Findings) Filter(min Severity) Findings {
	var out Findings
	for _, f := range fs {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// Counts tallies findings per severity: errors, warnings, infos.
func (fs Findings) Counts() (errors, warnings, infos int) {
	for _, f := range fs {
		switch f.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// Summary renders "2 errors, 1 warning" style totals.
func (fs Findings) Summary() string {
	e, w, i := fs.Counts()
	plural := func(n int, what string) string {
		if n == 1 {
			return fmt.Sprintf("1 %s", what)
		}
		return fmt.Sprintf("%d %ss", n, what)
	}
	return fmt.Sprintf("%s, %s, %s", plural(e, "error"), plural(w, "warning"), plural(i, "info"))
}

// analyzer carries the rendering hooks that differ between plain ASP
// programs and ASG annotation programs (predicate display names, rule
// rendering, position shifting into the enclosing grammar file).
type analyzer struct {
	findings Findings

	// display renders a predicate name for messages (identity for plain
	// programs; decodes the `pred@child` intermediate encoding for ASG
	// annotations).
	display func(pred string) string
	// ruleStr renders a rule for finding context.
	ruleStr func(r asp.Rule) string
	// shift maps a position inside the analyzed program to the reported
	// position (identity for plain programs; adds the annotation block
	// offset for ASG annotations).
	shift func(p asp.Pos) asp.Pos
}

func newAnalyzer() *analyzer {
	return &analyzer{
		display: func(pred string) string { return pred },
		ruleStr: func(r asp.Rule) string { return r.String() },
		shift:   func(p asp.Pos) asp.Pos { return p },
	}
}

func (a *analyzer) addf(sev Severity, code string, pos asp.Pos, context string, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Severity: sev,
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
		Pos:      a.shift(pos),
		Context:  context,
	})
}

// AnalyzeProgram runs every program-level check over a parsed ASP
// program and returns the findings in deterministic order.
func AnalyzeProgram(p *asp.Program) Findings {
	if p == nil {
		return nil
	}
	a := newAnalyzer()
	a.ruleChecks(p)
	a.predicateChecks(p)
	a.stratificationCheck(p)
	a.findings.Sort()
	return a.findings
}

// AnalyzeProgramSource parses src as an ASP program and analyzes it.
// Parse failures are returned as a single parse-error finding, so the
// function never fails: bad input is just a finding.
func AnalyzeProgramSource(src string) Findings {
	prog, err := asp.Parse(src)
	if err != nil {
		return Findings{parseFinding(err)}
	}
	return AnalyzeProgram(prog)
}

// parseFinding converts a parse error into an Error finding, recovering
// the source position when the error chain contains an *asp.ParseError.
func parseFinding(err error) Finding {
	f := Finding{Severity: Error, Code: CodeParse, Message: err.Error()}
	var pe *asp.ParseError
	if errors.As(err, &pe) {
		f.Pos = pe.Pos()
	}
	return f
}
