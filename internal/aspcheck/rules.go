package aspcheck

import (
	"strings"

	"agenp/internal/asp"
)

// ruleChecks runs the per-rule analyses: unsafe variables, comparisons
// that can never hold, and duplicate rules.
func (a *analyzer) ruleChecks(p *asp.Program) {
	seen := make(map[string]asp.Pos, len(p.Rules))
	for _, r := range p.Rules {
		a.unsafeVarCheck(r)
		a.neverTrueCheck(r)

		key := r.Key()
		if first, dup := seen[key]; dup {
			firstAt := ""
			if first.Valid() {
				firstAt = " (first defined at " + first.String() + ")"
			}
			a.addf(Warning, CodeDuplicateRule, r.Pos, a.ruleStr(r),
				"duplicate rule %q%s", a.ruleStr(r), firstAt)
			continue
		}
		seen[key] = a.shift(r.Pos)
	}
}

// unsafeVarCheck reports each variable of the rule that no positive body
// literal or computable equality binds, with every source occurrence.
func (a *analyzer) unsafeVarCheck(r asp.Rule) {
	err := asp.CheckSafety(r)
	if err == nil {
		return
	}
	se, ok := err.(*asp.SafetyError)
	if !ok {
		a.addf(Error, CodeUnsafeVar, r.Pos, a.ruleStr(r), "%v", err)
		return
	}
	for _, v := range se.Vars {
		var at []string
		pos := r.Pos
		for _, occ := range se.Occurrences {
			if occ.Name != v || !occ.Pos.Valid() {
				continue
			}
			if len(at) == 0 {
				pos = occ.Pos
			}
			at = append(at, a.shift(occ.Pos).String())
		}
		where := ""
		if len(at) > 0 {
			where = " (occurs at " + strings.Join(at, ", ") + ")"
		}
		a.addf(Error, CodeUnsafeVar, pos, a.ruleStr(r),
			"unsafe variable %s in rule %q: not bound by any positive body literal%s", v, a.ruleStr(r), where)
	}
}

// neverTrueCheck flags body comparisons that cannot hold for any
// binding: identical sides under an irreflexive operator (X < X, X != X,
// f(X) > f(X)) and variable-free comparisons that evaluate to false.
func (a *analyzer) neverTrueCheck(r asp.Rule) {
	for _, l := range r.Body {
		if !l.IsCmp {
			continue
		}
		if asp.TermKey(l.Lhs) == asp.TermKey(l.Rhs) {
			switch l.Op {
			case asp.CmpLt, asp.CmpGt, asp.CmpNeq:
				a.addf(Warning, CodeNeverTrue, l.Pos, a.ruleStr(r),
					"comparison %s %s %s can never hold; rule %q never fires", l.Lhs, l.Op, l.Rhs, a.ruleStr(r))
			}
			continue
		}
		if len(l.Variables()) > 0 {
			continue
		}
		ok, err := asp.EvalCmp(l)
		if err != nil {
			continue // e.g. arithmetic over non-integers; the grounder reports it
		}
		if !ok {
			a.addf(Warning, CodeNeverTrue, l.Pos, a.ruleStr(r),
				"comparison %s %s %s is always false; rule %q never fires", l.Lhs, l.Op, l.Rhs, a.ruleStr(r))
		}
	}
}
