package aspcheck

import (
	"strings"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/asp"
)

func codes(fs Findings) map[string]int {
	out := make(map[string]int)
	for _, f := range fs {
		out[f.Code]++
	}
	return out
}

func findByCode(fs Findings, code string) (Finding, bool) {
	for _, f := range fs {
		if f.Code == code {
			return f, true
		}
	}
	return Finding{}, false
}

func analyze(t *testing.T, src string) Findings {
	t.Helper()
	prog, err := asp.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return AnalyzeProgram(prog)
}

func TestUnsafeVariable(t *testing.T) {
	fs := analyze(t, "p(X) :- q.\nq.")
	f, ok := findByCode(fs, CodeUnsafeVar)
	if !ok {
		t.Fatalf("no unsafe-var finding in %v", fs)
	}
	if f.Severity != Error {
		t.Errorf("severity = %v, want error", f.Severity)
	}
	if f.Pos.Line != 1 || f.Pos.Col != 3 {
		t.Errorf("pos = %s, want 1:3 (the occurrence of X)", f.Pos)
	}
	if !strings.Contains(f.Message, "X") {
		t.Errorf("message does not name the variable: %s", f.Message)
	}
}

func TestUnsafeVariableMultipleOccurrences(t *testing.T) {
	// X occurs twice (head and comparison); both occurrences reported.
	fs := analyze(t, "p(X) :- q(Y), X > Y.\nq(1).")
	f, ok := findByCode(fs, CodeUnsafeVar)
	if !ok {
		t.Fatalf("no unsafe-var finding in %v", fs)
	}
	if !strings.Contains(f.Message, "1:3") || !strings.Contains(f.Message, "1:15") {
		t.Errorf("message should list occurrences 1:3 and 1:15: %s", f.Message)
	}
}

func TestSafeProgramNoErrors(t *testing.T) {
	fs := analyze(t, "p(X) :- q(X).\nq(a).\nr :- p(a).")
	if fs.HasErrors() {
		t.Errorf("unexpected errors: %v", fs)
	}
}

func TestAnonymousVariables(t *testing.T) {
	// `_` in a positive body literal is bound; the head variable rides on r.
	fs := analyze(t, "p(X) :- r(_, X).\nr(a, b).")
	if _, ok := findByCode(fs, CodeUnsafeVar); ok {
		t.Errorf("anonymous variable in positive body flagged unsafe: %v", fs)
	}
	// `_` in a fact head is unbound, hence unsafe.
	fs = analyze(t, "p(_).")
	if _, ok := findByCode(fs, CodeUnsafeVar); !ok {
		t.Errorf("anonymous variable in fact head not flagged: %v", fs)
	}
}

func TestComparisonBoundVariables(t *testing.T) {
	// Y is bound through the equality chain Y = X * 2 + 1.
	fs := analyze(t, "p(Y) :- q(X), Y = X * 2 + 1.\nq(1).")
	if _, ok := findByCode(fs, CodeUnsafeVar); ok {
		t.Errorf("equality-bound variable flagged unsafe: %v", fs)
	}
	// An inequality binds nothing: Y stays unsafe.
	fs = analyze(t, "p(Y) :- q(X), Y > X.\nq(1).")
	if _, ok := findByCode(fs, CodeUnsafeVar); !ok {
		t.Errorf("inequality treated as binding: %v", fs)
	}
	// Equality whose other side uses an unbound variable binds nothing.
	fs = analyze(t, "p(Y) :- Y = Z + 1.")
	f, ok := findByCode(fs, CodeUnsafeVar)
	if !ok {
		t.Fatalf("chained unbound equality not flagged: %v", fs)
	}
	if !strings.Contains(f.Message, "Y") && !strings.Contains(f.Message, "Z") {
		t.Errorf("message should name an unbound variable: %s", f.Message)
	}
}

func TestArithmeticInHead(t *testing.T) {
	fs := analyze(t, "p(X + 1) :- q(X).\nq(1).")
	if _, ok := findByCode(fs, CodeUnsafeVar); ok {
		t.Errorf("head arithmetic over bound variable flagged: %v", fs)
	}
	fs = analyze(t, "p(X + 1) :- q.\nq.")
	if _, ok := findByCode(fs, CodeUnsafeVar); !ok {
		t.Errorf("head arithmetic over unbound variable not flagged: %v", fs)
	}
}

func TestChoiceRuleBodies(t *testing.T) {
	fs := analyze(t, "{a(X); b(X)} :- c(X).\nc(1).")
	if _, ok := findByCode(fs, CodeUnsafeVar); ok {
		t.Errorf("safe choice rule flagged: %v", fs)
	}
	fs = analyze(t, "{a(X)} :- X < 3.")
	if _, ok := findByCode(fs, CodeUnsafeVar); !ok {
		t.Errorf("choice head variable bound only by comparison not flagged: %v", fs)
	}
}

func TestUndefinedAndUnusedPredicates(t *testing.T) {
	fs := analyze(t, "p :- q.\nr.")
	if f, ok := findByCode(fs, CodeUndefinedPred); !ok {
		t.Errorf("undefined q not flagged: %v", fs)
	} else if !strings.Contains(f.Message, "q/0") {
		t.Errorf("message should name q/0: %s", f.Message)
	}
	// p is head-only and never consumed; r likewise.
	if c := codes(fs)[CodeUnusedPred]; c != 2 {
		t.Errorf("unused-pred count = %d, want 2 (p, r): %v", c, fs)
	}
}

func TestArityMismatch(t *testing.T) {
	fs := analyze(t, "w(1).\nw(1, 2).\nuse :- w(X), w(X, X).")
	f, ok := findByCode(fs, CodeArityMismatch)
	if !ok {
		t.Fatalf("arity mismatch not flagged: %v", fs)
	}
	if !strings.Contains(f.Message, "w/2") || !strings.Contains(f.Message, "w/1") {
		t.Errorf("message should name both arities: %s", f.Message)
	}
	if f.Pos.Line != 2 {
		t.Errorf("pos = %s, want line 2 (first w/2 site)", f.Pos)
	}
}

func TestStratification(t *testing.T) {
	// Even loop: classic non-stratified program.
	fs := analyze(t, "a :- not b.\nb :- not a.")
	if c := codes(fs)[CodeNonStratified]; c != 2 {
		t.Errorf("non-stratified count = %d, want 2: %v", c, fs)
	}
	// Stratified negation: no warning.
	fs = analyze(t, "p(X) :- q(X), not r(X).\nq(a).\nr(b).")
	if _, ok := findByCode(fs, CodeNonStratified); ok {
		t.Errorf("stratified program flagged: %v", fs)
	}
	// Positive recursion alone is fine.
	fs = analyze(t, "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\nedge(a, b).")
	if _, ok := findByCode(fs, CodeNonStratified); ok {
		t.Errorf("positive recursion flagged: %v", fs)
	}
	// Negation into a different SCC through a longer cycle is caught.
	fs = analyze(t, "p :- q.\nq :- not p.")
	if _, ok := findByCode(fs, CodeNonStratified); !ok {
		t.Errorf("two-step negative cycle not flagged: %v", fs)
	}
}

func TestNeverTrueComparisons(t *testing.T) {
	fs := analyze(t, "p(X) :- q(X), X < X.\nq(1).")
	f, ok := findByCode(fs, CodeNeverTrue)
	if !ok {
		t.Fatalf("X < X not flagged: %v", fs)
	}
	if f.Pos.Line != 1 || f.Pos.Col != 15 {
		t.Errorf("pos = %s, want 1:15", f.Pos)
	}
	fs = analyze(t, "p :- 1 > 2.")
	if _, ok := findByCode(fs, CodeNeverTrue); !ok {
		t.Errorf("1 > 2 not flagged: %v", fs)
	}
	// Satisfiable comparisons stay quiet.
	fs = analyze(t, "p(X) :- q(X), X < 3.\nq(1).")
	if _, ok := findByCode(fs, CodeNeverTrue); ok {
		t.Errorf("satisfiable comparison flagged: %v", fs)
	}
	// X != Y is fine; X != X is not.
	fs = analyze(t, "p :- q(X), r(Y), X != Y.\nq(1). r(2).")
	if _, ok := findByCode(fs, CodeNeverTrue); ok {
		t.Errorf("X != Y flagged: %v", fs)
	}
}

func TestDuplicateRules(t *testing.T) {
	fs := analyze(t, "p :- q.\nq.\np :- q.")
	f, ok := findByCode(fs, CodeDuplicateRule)
	if !ok {
		t.Fatalf("duplicate not flagged: %v", fs)
	}
	if f.Pos.Line != 3 {
		t.Errorf("duplicate reported at %s, want line 3", f.Pos)
	}
	if !strings.Contains(f.Message, "1:1") {
		t.Errorf("message should point at the first definition: %s", f.Message)
	}
}

func TestAnalyzeProgramSourceParseError(t *testing.T) {
	fs := AnalyzeProgramSource("p(a)")
	if len(fs) != 1 || fs[0].Code != CodeParse || fs[0].Severity != Error {
		t.Fatalf("findings = %v, want single parse-error", fs)
	}
	if !fs[0].Pos.Valid() {
		t.Errorf("parse-error finding has no position: %v", fs[0])
	}
}

func TestGrammarUnreachableAndUnproductive(t *testing.T) {
	fs := AnalyzeGrammarSource(`
start -> "go"
dead -> "never"
loop -> "x" loop
`)
	got := codes(fs)
	if got[CodeUnreachable] != 2 {
		t.Errorf("unreachable count = %d, want 2 (dead, loop): %v", got[CodeUnreachable], fs)
	}
	if got[CodeUnproductive] != 1 {
		t.Errorf("unproductive count = %d, want 1 (loop): %v", got[CodeUnproductive], fs)
	}
}

func TestGrammarUnderivableAnnotation(t *testing.T) {
	fs := AnalyzeGrammarSource(`
start -> policy {
  :- not ok@1.
  :- missing(X)@1, ok@1.
}
policy -> "go" {
  ok.
}
`)
	got := codes(fs)
	if got[CodeUnderivable] != 1 {
		t.Fatalf("underivable count = %d, want 1 (missing/1): %v", got[CodeUnderivable], fs)
	}
	f, _ := findByCode(fs, CodeUnderivable)
	if !strings.Contains(f.Message, "missing/1") {
		t.Errorf("message should name missing/1: %s", f.Message)
	}
	// ok@1 is derivable via the child production; no finding for it.
	if strings.Contains(f.Message, "ok/0") {
		t.Errorf("ok@1 wrongly flagged: %s", f.Message)
	}
}

func TestGrammarContextDerivedPredicate(t *testing.T) {
	src := `
start -> policy {
  :- not ok@1.
}
policy -> "go" {
  ok :- weather(clear).
}
`
	g, err := asg.ParseASG(src)
	if err != nil {
		t.Fatal(err)
	}
	// Without a context, weather/1 is underivable.
	fs := AnalyzeGrammar(g)
	if _, ok := findByCode(fs, CodeUnderivable); !ok {
		t.Errorf("weather/1 not flagged without context: %v", fs)
	}
	// A context defining weather/1 satisfies the reference.
	ctx, err := asp.Parse("weather(clear).")
	if err != nil {
		t.Fatal(err)
	}
	fs = AnalyzeGrammarWithContext(g, ctx)
	if _, ok := findByCode(fs, CodeUnderivable); ok {
		t.Errorf("context-defined predicate still flagged: %v", fs)
	}
	// A context defining a different arity does not.
	ctx, err = asp.Parse("weather(clear, today).")
	if err != nil {
		t.Fatal(err)
	}
	fs = AnalyzeGrammarWithContext(g, ctx)
	f, ok := findByCode(fs, CodeUnderivable)
	if !ok {
		t.Fatalf("wrong-arity context accepted: %v", fs)
	}
	if !strings.Contains(f.Message, "context does not define it") {
		t.Errorf("message should mention the given context: %s", f.Message)
	}
}

func TestGrammarParentDerivedPredicate(t *testing.T) {
	// The parent pushes mark@1 down to the child; the child's own
	// annotation consumes it unannotated.
	fs := AnalyzeGrammarSource(`
start -> policy {
  mark@1.
}
policy -> "go" {
  ok :- mark.
}
`)
	for _, f := range fs {
		if f.Code == CodeUnderivable && strings.Contains(f.Message, "mark") {
			t.Errorf("parent-derived predicate flagged: %v", f)
		}
	}
}

func TestGrammarAnnotationPositionsShifted(t *testing.T) {
	src := `start -> policy {
  ok :- good@1.
}
policy -> "go" {
  good.
  bad(X).
}
`
	fs := AnalyzeGrammarSource(src)
	f, ok := findByCode(fs, CodeUnsafeVar)
	if !ok {
		t.Fatalf("unsafe var in annotation not flagged: %v", fs)
	}
	// bad(X). is block line 3 of the annotation starting at file line 4.
	if f.Pos.Line != 6 {
		t.Errorf("pos = %s, want line 6 of the .asg file", f.Pos)
	}
}

func TestGrammarUnsafeAnnotationRendersSurfaceSyntax(t *testing.T) {
	fs := AnalyzeGrammarSource(`
start -> policy {
  ok(X) :- size(X)@1, bad(Y)@1.
}
policy -> "go" {
  size(1).
  bad(2).
}
`)
	if fs.HasErrors() {
		t.Errorf("safe annotation flagged: %v", fs)
	}
	fs = AnalyzeGrammarSource(`
start -> policy {
  ok(X) :- size(Y)@1.
}
policy -> "go" {
  size(1).
}
`)
	f, ok := findByCode(fs, CodeUnsafeVar)
	if !ok {
		t.Fatalf("unsafe annotation variable not flagged: %v", fs)
	}
	if !strings.Contains(f.Context, "size(Y)@1") {
		t.Errorf("context should render surface syntax: %q", f.Context)
	}
}

func TestAnalyzeGrammarNilSafe(t *testing.T) {
	if fs := AnalyzeGrammar(nil); fs != nil {
		t.Errorf("AnalyzeGrammar(nil) = %v", fs)
	}
	if fs := AnalyzeProgram(nil); fs != nil {
		t.Errorf("AnalyzeProgram(nil) = %v", fs)
	}
}

func TestProgrammaticGrammarNoPositions(t *testing.T) {
	// Grammars built in code have no .asg source; findings must still
	// appear, just without positions.
	g := asg.MustParseASG(`start -> "go"`)
	prog, err := asp.Parse("p(X) :- q.")
	if err != nil {
		t.Fatal(err)
	}
	g.Annotations[0] = prog
	g.AnnLines = nil
	fs := AnalyzeGrammar(g)
	f, ok := findByCode(fs, CodeUnsafeVar)
	if !ok {
		t.Fatalf("unsafe var not found: %v", fs)
	}
	// Positions remain block-relative (line 1) since no offset is known.
	if f.Pos.Line != 1 {
		t.Errorf("pos = %s, want block-relative line 1", f.Pos)
	}
}

func TestFindingsSortAndSummary(t *testing.T) {
	fs := Findings{
		{Severity: Info, Code: "b", Pos: asp.Pos{Line: 2, Col: 1}},
		{Severity: Error, Code: "a", Pos: asp.Pos{Line: 2, Col: 1}},
		{Severity: Warning, Code: "c", Pos: asp.Pos{Line: 1, Col: 9}},
	}
	fs.Sort()
	if fs[0].Code != "c" || fs[1].Code != "a" || fs[2].Code != "b" {
		t.Errorf("sort order wrong: %v", fs)
	}
	if got := fs.Summary(); got != "1 error, 1 warning, 1 info" {
		t.Errorf("summary = %q", got)
	}
	if !fs.HasErrors() {
		t.Error("HasErrors = false")
	}
	if got := len(fs.Filter(Warning)); got != 2 {
		t.Errorf("Filter(Warning) kept %d, want 2", got)
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		parsed, err := ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip %v: %v %v", s, parsed, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) should fail")
	}
}
