package aspcheck

import (
	"testing"
)

// FuzzAnalyze checks the analyzer front door never panics: arbitrary
// text is either a parse-error finding or a (possibly empty) list of
// diagnostics, and rendering every finding is total.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q.",
		"p(X) :- q(Y), X > Y.",
		"a :- not b. b :- not a.",
		"{a(X); b(X)} :- c(X).",
		"p(X) :- q(X), X < X.",
		"w(1). w(1, 2). u :- w(X), w(X, X).",
		"p :- q.\np :- q.\nq.",
		"n(1..4). p(Y) :- n(X), Y = X * 2.",
		"p(_).",
		"broken(",
		":-:-.",
		"p@q.",
		"% only a comment",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fs := AnalyzeProgramSource(src)
		for _, finding := range fs {
			if finding.String() == "" {
				t.Fatalf("empty rendering for finding %#v from %q", finding, src)
			}
			if finding.Severity.String() == "unknown" {
				t.Fatalf("finding with unset severity %#v from %q", finding, src)
			}
		}
	})
}

// FuzzAnalyzeGrammar does the same for the grammar entry point, seeded
// with both well-formed ASGs and truncated/garbage inputs.
func FuzzAnalyzeGrammar(f *testing.F) {
	seeds := []string{
		"start -> \"go\"",
		"start -> policy {\n  :- not ok@1.\n}\npolicy -> \"go\" {\n  ok.\n}",
		"start -> rule {\n  :- quota(X)@1, X > 5.\n}\nrule -> \"allow\"",
		"loop -> \"x\" loop",
		"start -> policy {\n  bad(X).\n}\npolicy -> \"go\"",
		"start -> policy {",
		"-> \"x\"",
		"start -> policy { p( }",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fs := AnalyzeGrammarSource(src)
		for _, finding := range fs {
			if finding.String() == "" {
				t.Fatalf("empty rendering for finding %#v from %q", finding, src)
			}
		}
	})
}
