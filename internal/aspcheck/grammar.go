package aspcheck

import (
	"errors"
	"fmt"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/cfg"
)

// AnalyzeGrammar runs the static checks specific to answer set
// grammars: the CFG skeleton (reachability, productivity), the per-rule
// checks on every annotation program, and a derivability analysis of the
// predicates annotations refer to. Positions are reported in the
// coordinates of the source .asg file when the grammar was parsed with
// ParseASG; programmatically built grammars get position-less findings.
func AnalyzeGrammar(g *asg.Grammar) Findings {
	return AnalyzeGrammarWithContext(g, nil)
}

// AnalyzeGrammarWithContext analyzes g like AnalyzeGrammar, but treats
// predicates defined by the context program's heads as derivable at
// every node: under G(C) the context is added to every annotation, so
// references to context predicates are satisfied. The context program
// itself is not linted here — run AnalyzeProgram on it to keep its
// findings in its own file's coordinates.
func AnalyzeGrammarWithContext(g *asg.Grammar, ctx *asp.Program) Findings {
	if g == nil || g.CFG == nil {
		return nil
	}
	var out Findings
	out = append(out, cfgFindings(g.CFG)...)
	for id, ann := range g.Annotations {
		if ann == nil {
			continue
		}
		a := annotationAnalyzer(g, id)
		a.ruleChecks(ann)
		out = append(out, a.findings...)
	}
	out = append(out, derivabilityFindings(g, ctx)...)
	Findings(out).Sort()
	return out
}

// AnalyzeGrammarSource parses src as an .asg grammar and analyzes it.
// Parse failures become a single parse-error finding.
func AnalyzeGrammarSource(src string) Findings {
	g, err := asg.ParseASG(src)
	if err != nil {
		return Findings{grammarParseFinding(err)}
	}
	return AnalyzeGrammar(g)
}

// grammarParseFinding wraps an ASG parse error; when the failure came
// from an embedded annotation program the wrapped *asp.ParseError still
// carries a (block-relative) position.
func grammarParseFinding(err error) Finding {
	f := Finding{Severity: Error, Code: CodeParse, Message: err.Error()}
	var pe *asp.ParseError
	if errors.As(err, &pe) {
		f.Pos = pe.Pos()
	}
	return f
}

// annotationAnalyzer builds an analyzer that renders annotation rules in
// `pred@child` surface syntax and shifts positions by the annotation
// block's line offset in the grammar file.
func annotationAnalyzer(g *asg.Grammar, prod int) *analyzer {
	a := newAnalyzer()
	a.display = func(pred string) string {
		name, child, ok := asg.DecodeAnnotated(pred)
		if !ok {
			return pred
		}
		return fmt.Sprintf("%s@%d", name, child)
	}
	a.ruleStr = asg.DisplayRule
	if line := g.AnnLine(prod); line > 0 {
		a.shift = func(p asp.Pos) asp.Pos {
			if !p.Valid() {
				return p
			}
			return asp.Pos{Line: p.Line + line - 1, Col: p.Col}
		}
	}
	return a
}

// cfgFindings checks the grammar skeleton: every nonterminal should be
// reachable from the start symbol and able to derive a terminal string.
// An unreachable nonterminal is dead weight; an unproductive one makes
// every production mentioning it underivable, silently shrinking the
// policy language.
func cfgFindings(g *cfg.Grammar) Findings {
	var out Findings

	reachable := map[string]bool{g.Start: true}
	queue := []string{g.Start}
	for len(queue) > 0 {
		nt := queue[0]
		queue = queue[1:]
		for _, p := range g.ProductionsFor(nt) {
			for _, s := range p.Rhs {
				if s.Terminal || reachable[s.Name] {
					continue
				}
				reachable[s.Name] = true
				queue = append(queue, s.Name)
			}
		}
	}

	productive := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, p := range g.Productions {
			if productive[p.Lhs] {
				continue
			}
			ok := true
			for _, s := range p.Rhs {
				if !s.Terminal && !productive[s.Name] {
					ok = false
					break
				}
			}
			if ok {
				productive[p.Lhs] = true
				changed = true
			}
		}
	}

	for _, nt := range g.Nonterminals() {
		if !reachable[nt] {
			out = append(out, Finding{
				Severity: Warning,
				Code:     CodeUnreachable,
				Message:  fmt.Sprintf("nonterminal %q is unreachable from start symbol %q", nt, g.Start),
				Context:  firstProduction(g, nt),
			})
		}
		if !productive[nt] {
			out = append(out, Finding{
				Severity: Warning,
				Code:     CodeUnproductive,
				Message:  fmt.Sprintf("nonterminal %q cannot derive any terminal string (unproductive)", nt),
				Context:  firstProduction(g, nt),
			})
		}
	}
	return out
}

func firstProduction(g *cfg.Grammar, nt string) string {
	ps := g.ProductionsFor(nt)
	if len(ps) == 0 {
		return ""
	}
	return ps[0].String()
}

// derivabilityFindings checks that every predicate an annotation's body
// refers to can actually be derived at the node it is localized to:
// unannotated atoms by the node's own productions, its parent's `p@i`
// heads, or the context program; annotated atoms by the corresponding
// child. A body atom nothing derives can only be satisfied by a context
// supplied later — worth a warning, since a missing context fact
// silently empties the language.
func derivabilityFindings(g *asg.Grammar, ctx *asp.Program) Findings {
	ctxDefs := make(map[sig]struct{})
	if ctx != nil {
		for _, r := range ctx.Rules {
			if r.Head != nil {
				ctxDefs[sig{name: r.Head.Predicate, arity: len(r.Head.Args)}] = struct{}{}
			}
			for _, c := range r.Choice {
				ctxDefs[sig{name: c.Predicate, arity: len(c.Args)}] = struct{}{}
			}
		}
	}
	type childKey struct {
		prod  int
		child int
	}
	nodeDefs := make(map[string]map[sig]struct{})    // nonterminal -> unannotated head sigs of its productions
	childDefs := make(map[childKey]map[sig]struct{}) // production/child -> `p@i` head sigs
	add := func(m map[sig]struct{}, s sig) map[sig]struct{} {
		if m == nil {
			m = make(map[sig]struct{})
		}
		m[s] = struct{}{}
		return m
	}

	heads := func(r asp.Rule) []asp.Atom {
		var hs []asp.Atom
		if r.Head != nil {
			hs = append(hs, *r.Head)
		}
		hs = append(hs, r.Choice...)
		return hs
	}

	for id, ann := range g.Annotations {
		if ann == nil {
			continue
		}
		lhs := g.CFG.Productions[id].Lhs
		for _, r := range ann.Rules {
			for _, h := range heads(r) {
				name, child, annotated := asg.DecodeAnnotated(h.Predicate)
				s := sig{name: name, arity: len(h.Args)}
				if annotated {
					k := childKey{prod: id, child: child}
					childDefs[k] = add(childDefs[k], s)
				} else {
					nodeDefs[lhs] = add(nodeDefs[lhs], s)
				}
			}
		}
	}

	// parentDefs: predicates a node can receive from any parent
	// production's `p@i` heads, keyed by the node's nonterminal.
	parentDefs := make(map[string]map[sig]struct{})
	for k, defs := range childDefs {
		rhs := g.CFG.Productions[k.prod].Rhs
		if k.child < 1 || k.child > len(rhs) {
			continue
		}
		sym := rhs[k.child-1]
		if sym.Terminal {
			continue
		}
		for s := range defs {
			parentDefs[sym.Name] = add(parentDefs[sym.Name], s)
		}
	}

	has := func(m map[sig]struct{}, s sig) bool {
		_, ok := m[s]
		return ok
	}

	var out Findings
	for id, ann := range g.Annotations {
		if ann == nil {
			continue
		}
		prod := g.CFG.Productions[id]
		a := annotationAnalyzer(g, id)
		for _, r := range ann.Rules {
			for _, l := range r.Body {
				if l.IsCmp {
					continue
				}
				name, child, annotated := asg.DecodeAnnotated(l.Atom.Predicate)
				if internalPred(name) {
					continue
				}
				s := sig{name: name, arity: len(l.Atom.Args)}
				ctxSuffix := " (it can only hold if supplied by the context)"
				if ctx != nil {
					ctxSuffix = " (and the given context does not define it)"
				}
				if annotated {
					k := childKey{prod: id, child: child}
					derivable := has(childDefs[k], s)
					if !derivable && child >= 1 && child <= len(prod.Rhs) {
						sym := prod.Rhs[child-1]
						if sym.Terminal {
							// Terminals carry no annotations — not even the
							// context program is localized there — so nothing
							// is ever derived at that child.
							a.addf(Warning, CodeUnderivable, l.Atom.Pos, asg.DisplayRule(r),
								"annotation of %q refers to %s@%d, but child %d is the terminal %q, which derives no predicates",
								prod.String(), a.displaySig(s), child, child, sym.Name)
							continue
						}
						if has(nodeDefs[sym.Name], s) || has(ctxDefs, s) {
							derivable = true
						}
					}
					if !derivable {
						a.addf(Warning, CodeUnderivable, l.Atom.Pos, asg.DisplayRule(r),
							"annotation of %q refers to %s@%d, but no production of child %d derives %s%s",
							prod.String(), a.displaySig(s), child, child, a.displaySig(s), ctxSuffix)
					}
					continue
				}
				if !has(nodeDefs[prod.Lhs], s) && !has(parentDefs[prod.Lhs], s) && !has(ctxDefs, s) {
					a.addf(Warning, CodeUnderivable, l.Atom.Pos, asg.DisplayRule(r),
						"annotation of %q refers to %s, but no production derives it at this node%s",
						prod.String(), a.displaySig(s), ctxSuffix)
				}
			}
		}
		out = append(out, a.findings...)
	}
	return out
}
