package aspcheck

import (
	"fmt"
	"sort"
	"strings"

	"agenp/internal/asp"
)

// sig identifies a predicate by name and arity; in ASP p/1 and p/2 are
// distinct predicates, which is precisely why mixing them is worth a
// diagnostic.
type sig struct {
	name  string
	arity int
}

func (s sig) String() string { return fmt.Sprintf("%s/%d", s.name, s.arity) }

// predInfo accumulates the definition and use sites of one predicate.
type predInfo struct {
	defs []asp.Pos // head, choice-head and fact sites
	uses []asp.Pos // body atom sites (positive and negated)
}

// internalPred reports grounder- and learner-internal predicate names
// that analyses must not flag.
func internalPred(name string) bool { return strings.HasPrefix(name, "_") }

// predicateChecks builds the predicate table and reports undefined
// predicates, unused predicates and arity mismatches.
func (a *analyzer) predicateChecks(p *asp.Program) {
	table := make(map[sig]*predInfo)
	var order []sig // first-appearance order, for deterministic reports
	at := func(s sig) *predInfo {
		info, ok := table[s]
		if !ok {
			info = &predInfo{}
			table[s] = info
			order = append(order, s)
		}
		return info
	}
	def := func(atom asp.Atom) {
		s := sig{name: atom.Predicate, arity: len(atom.Args)}
		at(s).defs = append(at(s).defs, atom.Pos)
	}
	use := func(atom asp.Atom) {
		s := sig{name: atom.Predicate, arity: len(atom.Args)}
		at(s).uses = append(at(s).uses, atom.Pos)
	}
	for _, r := range p.Rules {
		if r.Head != nil {
			def(*r.Head)
		}
		for _, c := range r.Choice {
			def(c)
		}
		for _, l := range r.Body {
			if !l.IsCmp {
				use(l.Atom)
			}
		}
	}

	for _, s := range order {
		info := table[s]
		if internalPred(s.name) {
			continue
		}
		if len(info.defs) == 0 && len(info.uses) > 0 {
			a.addf(Warning, CodeUndefinedPred, info.uses[0], "",
				"predicate %s is used in a body but never defined by any head or fact", a.displaySig(s))
		}
		if len(info.uses) == 0 && len(info.defs) > 0 {
			a.addf(Info, CodeUnusedPred, info.defs[0], "",
				"predicate %s is defined but never used in any rule body", a.displaySig(s))
		}
	}

	// Arity mismatches: one name, several arities. The first-seen arity
	// is the reference; each other arity is reported at its first site.
	byName := make(map[string][]sig)
	for _, s := range order {
		if internalPred(s.name) {
			continue
		}
		byName[s.name] = append(byName[s.name], s)
	}
	names := make([]string, 0, len(byName))
	for n, sigs := range byName {
		if len(sigs) > 1 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		sigs := byName[n]
		ref := sigs[0]
		refPos := firstSite(table[ref])
		for _, s := range sigs[1:] {
			pos := firstSite(table[s])
			refAt := ""
			if p := a.shift(refPos); p.Valid() {
				refAt = " (at " + p.String() + ")"
			}
			a.addf(Warning, CodeArityMismatch, pos, "",
				"predicate %s also appears with arity %d%s; %s and %s are distinct predicates",
				a.displaySig(s), ref.arity, refAt, a.displaySig(s), a.displaySig(ref))
		}
	}
}

func (a *analyzer) displaySig(s sig) string {
	return fmt.Sprintf("%s/%d", a.display(s.name), s.arity)
}

// firstSite returns the earliest recorded site of a predicate,
// preferring definitions.
func firstSite(info *predInfo) asp.Pos {
	if len(info.defs) > 0 {
		return info.defs[0]
	}
	if len(info.uses) > 0 {
		return info.uses[0]
	}
	return asp.Pos{}
}

// stratificationCheck builds the predicate dependency graph (an edge
// head -> body-atom per rule, marked negative under "not") and warns on
// every negative edge that lies inside a strongly connected component:
// such programs are not stratified, so the solver cannot evaluate them
// bottom-up and falls back to guess-and-check search.
func (a *analyzer) stratificationCheck(p *asp.Program) {
	type edge struct {
		from, to sig
		neg      bool
		pos      asp.Pos // position of the body literal
		rule     asp.Rule
	}
	var edges []edge
	nodes := make(map[sig]struct{})
	for _, r := range p.Rules {
		heads := make([]sig, 0, 1+len(r.Choice))
		if r.Head != nil {
			heads = append(heads, sig{r.Head.Predicate, len(r.Head.Args)})
		}
		for _, c := range r.Choice {
			heads = append(heads, sig{c.Predicate, len(c.Args)})
		}
		for _, h := range heads {
			nodes[h] = struct{}{}
		}
		for _, l := range r.Body {
			if l.IsCmp {
				continue
			}
			b := sig{l.Atom.Predicate, len(l.Atom.Args)}
			nodes[b] = struct{}{}
			pos := l.Pos
			if !pos.Valid() {
				pos = l.Atom.Pos
			}
			for _, h := range heads {
				edges = append(edges, edge{from: h, to: b, neg: l.Negated, pos: pos, rule: r})
			}
		}
	}

	comp := sccs(nodes, func(visit func(from, to sig)) {
		for _, e := range edges {
			visit(e.from, e.to)
		}
	})

	reported := make(map[string]struct{})
	for _, e := range edges {
		if !e.neg || comp[e.from] != comp[e.to] {
			continue
		}
		key := e.from.String() + "|" + e.to.String()
		if _, dup := reported[key]; dup {
			continue
		}
		reported[key] = struct{}{}
		a.addf(Warning, CodeNonStratified, e.pos, a.ruleStr(e.rule),
			"%s depends on \"not %s\" inside a dependency cycle (non-stratified negation; the solver falls back to guess-and-check)",
			a.displaySig(e.from), a.displaySig(e.to))
	}
}

// sccs computes strongly connected components with Tarjan's algorithm
// (iterative) and returns a component id per node.
func sccs(nodes map[sig]struct{}, forEachEdge func(visit func(from, to sig))) map[sig]int {
	adj := make(map[sig][]sig, len(nodes))
	forEachEdge(func(from, to sig) {
		adj[from] = append(adj[from], to)
	})

	index := make(map[sig]int, len(nodes))
	low := make(map[sig]int, len(nodes))
	onStack := make(map[sig]bool, len(nodes))
	comp := make(map[sig]int, len(nodes))
	var stack []sig
	next, nComp := 0, 0

	// Deterministic iteration order keeps component ids stable.
	ordered := make([]sig, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].arity < ordered[j].arity
	})

	type frame struct {
		node sig
		edge int
	}
	for _, root := range ordered {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.edge < len(adj[f.node]) {
				child := adj[f.node][f.edge]
				f.edge++
				if _, seen := index[child]; !seen {
					index[child], low[child] = next, next
					next++
					stack = append(stack, child)
					onStack[child] = true
					work = append(work, frame{node: child})
				} else if onStack[child] && index[child] < low[f.node] {
					low[f.node] = index[child]
				}
				continue
			}
			// Pop the frame; fold lowlink into the parent.
			n := f.node
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp[top] = nComp
					if top == n {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
