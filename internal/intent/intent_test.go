package intent

import (
	"strings"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/asp"
)

const cavIntent = `
# Connected-vehicle driving policy.
policy: accept or reject task
task: overtake, park, lane_change
never accept overtake when weather is rain
never accept any task when threat is high
require loa of at least 3 to accept any task
`

func TestParseDocument(t *testing.T) {
	doc, err := Parse(cavIntent)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Verbs) != 2 || doc.Verbs[0] != "accept" || doc.Verbs[1] != "reject" {
		t.Errorf("verbs = %v", doc.Verbs)
	}
	if doc.Category != "task" || len(doc.Objects) != 3 {
		t.Errorf("category %q objects %v", doc.Category, doc.Objects)
	}
	if len(doc.Constraints) != 3 {
		t.Fatalf("constraints = %d", len(doc.Constraints))
	}
	c0 := doc.Constraints[0]
	if c0.Kind != NeverObjectWhen || c0.Verb != "accept" || c0.Object != "overtake" ||
		c0.Attr != "weather" || c0.Value != "rain" {
		t.Errorf("constraint 0 = %+v", c0)
	}
	c1 := doc.Constraints[1]
	if c1.Kind != NeverAnyWhen || c1.Attr != "threat" || c1.Value != "high" {
		t.Errorf("constraint 1 = %+v", c1)
	}
	c2 := doc.Constraints[2]
	if c2.Kind != RequireAtLeast || c2.Attr != "loa" || c2.Min != 3 || c2.Verb != "accept" {
		t.Errorf("constraint 2 = %+v", c2)
	}
}

func ctx(t *testing.T, src string) *asp.Program {
	t.Helper()
	p, err := asp.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompiledGrammarBehaviour(t *testing.T) {
	g, err := CompileSource(cavIntent)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		context string
		policy  string
		want    bool
	}{
		{name: "clear accept overtake", context: "weather(clear). threat(low). loa(5).", policy: "accept overtake", want: true},
		{name: "rain accept overtake", context: "weather(rain). threat(low). loa(5).", policy: "accept overtake", want: false},
		{name: "rain accept park", context: "weather(rain). threat(low). loa(5).", policy: "accept park", want: true},
		{name: "rain reject overtake", context: "weather(rain). threat(low). loa(5).", policy: "reject overtake", want: true},
		{name: "high threat accept park", context: "weather(clear). threat(high). loa(5).", policy: "accept park", want: false},
		{name: "high threat reject park", context: "weather(clear). threat(high). loa(5).", policy: "reject park", want: true},
		{name: "low loa accept", context: "weather(clear). threat(low). loa(2).", policy: "accept lane_change", want: false},
		{name: "loa exactly 3", context: "weather(clear). threat(low). loa(3).", policy: "accept lane_change", want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := g.WithContext(ctx(t, tt.context)).Accepts(strings.Fields(tt.policy), asg.AcceptOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Accepts(%q | %q) = %v, want %v", tt.policy, tt.context, got, tt.want)
			}
		})
	}
}

func TestCompiledGrammarGeneration(t *testing.T) {
	g, err := CompileSource(cavIntent)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.WithContext(ctx(t, "weather(rain). threat(low). loa(5).")).
		Generate(asg.GenerateOptions{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, o := range out {
		got[o.Text()] = true
	}
	if got["accept overtake"] {
		t.Error("accept overtake generated in rain")
	}
	for _, want := range []string{"accept park", "accept lane_change", "reject overtake"} {
		if !got[want] {
			t.Errorf("missing %q in %v", want, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "no policy statement", give: "task: a, b"},
		{name: "no category", give: "policy: allow or deny thing"},
		{name: "gibberish", give: "policy: allow thing\nthing: a\nfnord grep blub"},
		{name: "unknown verb in never", give: "policy: allow thing\nthing: a\nnever revoke a when x is y"},
		{name: "unknown object", give: "policy: allow thing\nthing: a\nnever allow b when x is y"},
		{name: "bad never shape", give: "policy: allow thing\nthing: a\nnever allow a when x equals y"},
		{name: "bad require number", give: "policy: allow thing\nthing: a\nrequire loa of at least many to allow any thing"},
		{name: "bad require shape", give: "policy: allow thing\nthing: a\nrequire loa minimum 3 to allow any thing"},
		{name: "empty category", give: "policy: allow thing\nthing:  ,  "},
		{name: "bad object ident", give: "policy: allow thing\nthing: a-b"},
		{name: "category mismatch", give: "policy: allow widget\nthing: a"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := CompileSource(tt.give); err == nil {
				t.Errorf("CompileSource(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestIntentRoundTripWithAMS(t *testing.T) {
	// The compiled grammar is a drop-in GPM.
	g, err := CompileSource(cavIntent)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.CFG.Productions) != 5 {
		t.Errorf("productions = %d, want 5 (2 verbs + 3 objects)", len(g.CFG.Productions))
	}
	// Verbs without constraints carry no annotation.
	if g.Annotations[1] != nil {
		t.Error("reject production should be unannotated")
	}
	if g.Annotations[0] == nil || len(g.Annotations[0].Rules) != 3 {
		t.Errorf("accept production should carry all 3 constraints")
	}
}
