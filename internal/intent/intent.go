// Package intent implements the paper's "from natural language to
// grammar-based policies" research direction (Section III.B):
// "policies are initially defined by end users or organizations in
// natural language … these constructs must be transformed into the
// grammars that are the basis of the generative policy approaches."
//
// The package compiles a controlled-English intent document into an
// answer set grammar: verb/object statements become productions, domain
// enumerations become object productions emitting facts, and
// "never …" / "require …" statements become ASP annotations. The result
// plugs directly into the GPM/AGENP machinery.
//
// Supported statement forms (one per line; case-insensitive keywords):
//
//	policy: accept or reject task          -> verb productions
//	task: overtake, park, lane_change     -> object productions + facts
//	never accept overtake when weather is rain
//	never accept any task when threat is high
//	require loa of at least 3 to accept any task
//
// Comments start with '#'.
package intent

import (
	"fmt"
	"strconv"
	"strings"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/cfg"
)

// Document is a parsed intent document before grammar compilation.
type Document struct {
	// Verbs are the policy verbs in declaration order.
	Verbs []string
	// Category is the object category name (e.g. "task").
	Category string
	// Objects enumerate the category's members.
	Objects []string
	// Constraints are the semantic statements.
	Constraints []Constraint
}

// ConstraintKind distinguishes the constraint statement forms.
type ConstraintKind int

// Constraint statement forms.
const (
	// NeverObjectWhen: never <verb> <object> when <attr> is <value>.
	NeverObjectWhen ConstraintKind = iota + 1
	// NeverAnyWhen: never <verb> any <category> when <attr> is <value>.
	NeverAnyWhen
	// RequireAtLeast: require <attr> of at least <n> to <verb> any
	// <category>.
	RequireAtLeast
)

// Constraint is one semantic statement.
type Constraint struct {
	Kind   ConstraintKind
	Verb   string
	Object string // NeverObjectWhen only
	Attr   string
	Value  string // NeverObjectWhen / NeverAnyWhen
	Min    int    // RequireAtLeast
	// Source preserves the original line for explanations.
	Source string
}

// Parse reads an intent document.
func Parse(src string) (*Document, error) {
	doc := &Document{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "policy:"):
			if err := doc.parsePolicy(line); err != nil {
				return nil, fmt.Errorf("intent: line %d: %w", lineNo+1, err)
			}
		case strings.HasPrefix(lower, "never "):
			c, err := parseNever(line)
			if err != nil {
				return nil, fmt.Errorf("intent: line %d: %w", lineNo+1, err)
			}
			doc.Constraints = append(doc.Constraints, c)
		case strings.HasPrefix(lower, "require "):
			c, err := parseRequire(line)
			if err != nil {
				return nil, fmt.Errorf("intent: line %d: %w", lineNo+1, err)
			}
			doc.Constraints = append(doc.Constraints, c)
		case strings.Contains(line, ":"):
			if err := doc.parseCategory(line); err != nil {
				return nil, fmt.Errorf("intent: line %d: %w", lineNo+1, err)
			}
		default:
			return nil, fmt.Errorf("intent: line %d: cannot understand %q", lineNo+1, line)
		}
	}
	if len(doc.Verbs) == 0 {
		return nil, fmt.Errorf("intent: no 'policy:' statement")
	}
	if doc.Category == "" {
		return nil, fmt.Errorf("intent: no category enumeration (e.g. \"task: overtake, park\")")
	}
	return doc, nil
}

// parsePolicy handles "policy: accept or reject task".
func (d *Document) parsePolicy(line string) error {
	_, rest, _ := strings.Cut(line, ":")
	words := strings.Fields(strings.ToLower(rest))
	if len(words) < 2 {
		return fmt.Errorf("expected \"policy: <verb> [or <verb>]... <category>\"")
	}
	category := words[len(words)-1]
	for _, w := range words[:len(words)-1] {
		if w == "or" {
			continue
		}
		d.Verbs = append(d.Verbs, w)
	}
	if len(d.Verbs) == 0 {
		return fmt.Errorf("no verbs in policy statement")
	}
	if d.Category == "" {
		d.Category = category
	} else if d.Category != category {
		return fmt.Errorf("policy category %q does not match enumeration %q", category, d.Category)
	}
	return nil
}

// parseCategory handles "task: overtake, park, lane_change".
func (d *Document) parseCategory(line string) error {
	name, rest, _ := strings.Cut(line, ":")
	name = strings.TrimSpace(strings.ToLower(name))
	if d.Category != "" && d.Category != name {
		return fmt.Errorf("category %q conflicts with %q", name, d.Category)
	}
	d.Category = name
	for _, obj := range strings.Split(rest, ",") {
		obj = strings.TrimSpace(strings.ToLower(obj))
		if obj == "" {
			continue
		}
		if !isIdent(obj) {
			return fmt.Errorf("object %q is not a simple identifier", obj)
		}
		d.Objects = append(d.Objects, obj)
	}
	if len(d.Objects) == 0 {
		return fmt.Errorf("category %q has no objects", name)
	}
	return nil
}

// parseNever handles the two "never" forms.
func parseNever(line string) (Constraint, error) {
	words := strings.Fields(strings.ToLower(line))
	// never <verb> <object|any CATEGORY> when <attr> is <value>
	whenIdx := indexOf(words, "when")
	if whenIdx < 3 || whenIdx+4 > len(words) || words[whenIdx+2] != "is" {
		return Constraint{}, fmt.Errorf("expected \"never <verb> <object> when <attr> is <value>\"")
	}
	c := Constraint{Verb: words[1], Attr: words[whenIdx+1], Value: words[whenIdx+3], Source: line}
	if words[2] == "any" {
		c.Kind = NeverAnyWhen
	} else {
		c.Kind = NeverObjectWhen
		c.Object = words[2]
	}
	return c, nil
}

// parseRequire handles "require <attr> of at least <n> to <verb> any
// <category>".
func parseRequire(line string) (Constraint, error) {
	words := strings.Fields(strings.ToLower(line))
	// require attr of at least N to verb any category
	if len(words) < 9 || words[2] != "of" || words[3] != "at" || words[4] != "least" || words[6] != "to" {
		return Constraint{}, fmt.Errorf("expected \"require <attr> of at least <n> to <verb> any <category>\"")
	}
	n, err := strconv.Atoi(words[5])
	if err != nil {
		return Constraint{}, fmt.Errorf("threshold %q is not a number", words[5])
	}
	return Constraint{
		Kind:   RequireAtLeast,
		Attr:   words[1],
		Min:    n,
		Verb:   words[7],
		Source: line,
	}, nil
}

// Compile turns the document into an answer set grammar. The first verb
// production for each constrained verb carries the compiled ASP
// annotations.
func (d *Document) Compile() (*asg.Grammar, error) {
	var prods []cfg.Production
	verbProd := make(map[string]int, len(d.Verbs))
	for _, v := range d.Verbs {
		verbProd[v] = len(prods)
		prods = append(prods, cfg.Production{
			Lhs: "policy",
			Rhs: []cfg.Symbol{cfg.T(v), cfg.NT(d.Category)},
		})
	}
	annotations := make(map[int]*asp.Program)
	for _, obj := range d.Objects {
		id := len(prods)
		prods = append(prods, cfg.Production{
			Lhs: d.Category,
			Rhs: []cfg.Symbol{cfg.T(obj)},
		})
		annotations[id] = asp.NewProgram(asp.NewFact(
			asp.NewAtom(d.Category, asp.Constant{Name: obj}),
		))
	}

	objSet := make(map[string]struct{}, len(d.Objects))
	for _, o := range d.Objects {
		objSet[o] = struct{}{}
	}
	for _, c := range d.Constraints {
		id, ok := verbProd[c.Verb]
		if !ok {
			return nil, fmt.Errorf("intent: %q uses unknown verb %q", c.Source, c.Verb)
		}
		rule, err := c.compile(d.Category, objSet)
		if err != nil {
			return nil, err
		}
		if annotations[id] == nil {
			annotations[id] = asp.NewProgram()
		}
		annotations[id].Add(rule)
	}

	grammar, err := cfg.New("policy", prods)
	if err != nil {
		return nil, fmt.Errorf("intent: %w", err)
	}
	return asg.New(grammar, annotations)
}

// compile renders one constraint as an annotated ASP rule for the verb
// production (whose child 2 is the category node).
func (c Constraint) compile(category string, objects map[string]struct{}) (asp.Rule, error) {
	switch c.Kind {
	case NeverObjectWhen:
		if _, ok := objects[c.Object]; !ok {
			return asp.Rule{}, fmt.Errorf("intent: %q names unknown %s %q", c.Source, category, c.Object)
		}
		return asp.NewConstraint(
			asp.PosLit(asp.Atom{
				Predicate: asg.EncodeAnnotated(category, 2),
				Args:      []asp.Term{asp.Constant{Name: c.Object}},
			}),
			asp.PosLit(asp.NewAtom(c.Attr, asp.Constant{Name: c.Value})),
		), nil
	case NeverAnyWhen:
		return asp.NewConstraint(
			asp.PosLit(asp.NewAtom(c.Attr, asp.Constant{Name: c.Value})),
		), nil
	case RequireAtLeast:
		v := asp.Variable{Name: "V"}
		return asp.NewConstraint(
			asp.PosLit(asp.NewAtom(c.Attr, v)),
			asp.Cmp(v, asp.CmpLt, asp.Integer{Value: c.Min}),
		), nil
	default:
		return asp.Rule{}, fmt.Errorf("intent: unknown constraint kind for %q", c.Source)
	}
}

// CompileSource parses and compiles in one step.
func CompileSource(src string) (*asg.Grammar, error) {
	doc, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return doc.Compile()
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_':
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return s != ""
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
