package policy

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRepositoryPutGetVersioning(t *testing.T) {
	r := NewRepository()
	fixed := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })

	p := r.Put(Policy{ID: "p1", Tokens: []string{"permit", "alice"}, Source: SourceGenerated})
	if p.Version != 1 || !p.CreatedAt.Equal(fixed) {
		t.Fatalf("first put: %+v", p)
	}
	p2 := r.Put(Policy{ID: "p1", Tokens: []string{"deny", "alice"}})
	if p2.Version != 2 {
		t.Errorf("version = %d, want 2", p2.Version)
	}
	got, ok := r.Get("p1")
	if !ok || got.Text() != "deny alice" {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("missing id found")
	}
}

func TestRepositoryTokenIsolation(t *testing.T) {
	r := NewRepository()
	toks := []string{"permit", "alice"}
	r.Put(Policy{ID: "p1", Tokens: toks})
	toks[0] = "deny"
	got, _ := r.Get("p1")
	if got.Tokens[0] != "permit" {
		t.Error("repository shares token storage with caller")
	}
}

func TestRepositoryListSortedAndLen(t *testing.T) {
	r := NewRepository()
	r.Put(Policy{ID: "b"})
	r.Put(Policy{ID: "a"})
	r.Put(Policy{ID: "c"})
	list := r.List()
	if len(list) != 3 || list[0].ID != "a" || list[2].ID != "c" {
		t.Errorf("List = %v", list)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRepositoryDelete(t *testing.T) {
	r := NewRepository()
	r.Put(Policy{ID: "p"})
	if !r.Delete("p") {
		t.Error("Delete existing = false")
	}
	if r.Delete("p") {
		t.Error("Delete missing = true")
	}
}

func TestRepositoryReplaceAll(t *testing.T) {
	r := NewRepository()
	r.Put(Policy{ID: "old"})
	r.Put(Policy{ID: "keep"})
	r.ReplaceAll([]Policy{{ID: "keep"}, {ID: "new"}})
	if _, ok := r.Get("old"); ok {
		t.Error("old policy survived ReplaceAll")
	}
	keep, _ := r.Get("keep")
	if keep.Version != 2 {
		t.Errorf("kept policy version = %d, want 2", keep.Version)
	}
	n, _ := r.Get("new")
	if n.Version != 1 {
		t.Errorf("new policy version = %d, want 1", n.Version)
	}
}

func TestRepositorySubscribe(t *testing.T) {
	r := NewRepository()
	ch, cancel := r.Subscribe(4)
	r.Put(Policy{ID: "p1"})
	r.Delete("p1")
	ev1 := <-ch
	if ev1.Kind != "put" || ev1.Policy.ID != "p1" {
		t.Errorf("event 1 = %+v", ev1)
	}
	ev2 := <-ch
	if ev2.Kind != "delete" {
		t.Errorf("event 2 = %+v", ev2)
	}
	cancel()
	if _, open := <-ch; open {
		t.Error("channel not closed by cancel")
	}
	// Further puts must not panic after cancel.
	r.Put(Policy{ID: "p2"})
}

func TestRepositoryConcurrency(t *testing.T) {
	r := NewRepository()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := string(rune('a' + i))
				r.Put(Policy{ID: id, Tokens: []string{"t"}})
				r.Get(id)
				r.List()
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Errorf("Len = %d, want 8", r.Len())
	}
	p, _ := r.Get("a")
	if p.Version != 100 {
		t.Errorf("version = %d, want 100", p.Version)
	}
}

func TestRepositorySnapshotCachedPerGeneration(t *testing.T) {
	r := NewRepository()
	if got := r.Generation(); got != 0 {
		t.Fatalf("fresh Generation = %d, want 0", got)
	}
	empty := r.Snapshot()
	if empty.Len() != 0 || empty.Generation != 0 {
		t.Fatalf("empty snapshot = %+v", empty)
	}
	if r.Snapshot() != empty {
		t.Error("unchanged repository rebuilt its snapshot")
	}

	r.Put(Policy{ID: "b", Tokens: []string{"permit", "x"}})
	r.Put(Policy{ID: "a", Tokens: []string{"deny", "x"}})
	s1 := r.Snapshot()
	if s1 == empty {
		t.Fatal("snapshot not invalidated by Put")
	}
	if s1.Generation != 2 || s1.Len() != 2 || s1.Policies[0].ID != "a" || s1.Policies[1].ID != "b" {
		t.Fatalf("snapshot = %+v", s1)
	}
	if r.Snapshot() != s1 {
		t.Error("snapshot of unchanged generation not shared")
	}

	// Delete of a missing id is not a mutation; a real delete is.
	r.Delete("nope")
	if r.Snapshot() != s1 {
		t.Error("no-op delete invalidated the snapshot")
	}
	r.Delete("a")
	s2 := r.Snapshot()
	if s2 == s1 || s2.Generation != 3 || s2.Len() != 1 {
		t.Fatalf("post-delete snapshot = %+v", s2)
	}
	r.ReplaceAll([]Policy{{ID: "c"}})
	s3 := r.Snapshot()
	if s3.Generation != 4 || s3.Len() != 1 || s3.Policies[0].ID != "c" {
		t.Fatalf("post-replace snapshot = %+v", s3)
	}
	// The old snapshot is immutable history.
	if s1.Len() != 2 || s1.Policies[0].ID != "a" {
		t.Errorf("old snapshot mutated: %+v", s1)
	}
}

func TestRepositorySnapshotListIsolation(t *testing.T) {
	r := NewRepository()
	r.Put(Policy{ID: "p", Tokens: []string{"permit", "x"}})
	list := r.List()
	list[0].ID = "mutated"
	if r.Snapshot().Policies[0].ID != "p" {
		t.Error("List shares backing array with Snapshot")
	}
}

func TestRepositorySnapshotConcurrency(t *testing.T) {
	r := NewRepository()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Put(Policy{ID: string(rune('a' + i)), Tokens: []string{"t"}})
				s := r.Snapshot()
				for k := 1; k < len(s.Policies); k++ {
					if s.Policies[k-1].ID >= s.Policies[k].ID {
						t.Error("snapshot unsorted")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if gen := r.Generation(); gen != 800 {
		t.Errorf("Generation = %d, want 800", gen)
	}
}

func TestPolicyString(t *testing.T) {
	p := Policy{ID: "p1", Tokens: []string{"permit", "x"}, Source: SourceShared, Version: 3}
	s := p.String()
	for _, want := range []string{"p1", "v3", "shared", "permit x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if SourceGenerated.String() != "generated" || SourceRefined.String() != "refined" {
		t.Error("Source.String broken")
	}
}

func TestMonitorLogAppendBound(t *testing.T) {
	l := NewMonitorLog(3)
	for i := 0; i < 5; i++ {
		l.Append(DecisionRecord{RequestKey: string(rune('a' + i))})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	snap := l.Snapshot()
	if snap[0].RequestKey != "c" || snap[2].RequestKey != "e" {
		t.Errorf("eviction order wrong: %v", snap)
	}
}

func TestMonitorLogCountByAndViolations(t *testing.T) {
	l := NewMonitorLog(0)
	l.Append(DecisionRecord{Decision: "Permit", Outcome: "ok"})
	l.Append(DecisionRecord{Decision: "Deny", Outcome: "violation"})
	l.Append(DecisionRecord{Decision: "Permit", Outcome: "violation"})
	counts := l.CountBy(func(r DecisionRecord) string { return r.Decision })
	if counts["Permit"] != 2 || counts["Deny"] != 1 {
		t.Errorf("CountBy = %v", counts)
	}
	v := l.Violations()
	if len(v) != 2 {
		t.Errorf("Violations = %d, want 2", len(v))
	}
}

func TestMonitorLogSnapshotIsolation(t *testing.T) {
	l := NewMonitorLog(0)
	l.Append(DecisionRecord{Decision: "Permit"})
	snap := l.Snapshot()
	snap[0].Decision = "Deny"
	if l.Snapshot()[0].Decision != "Permit" {
		t.Error("Snapshot not isolated")
	}
}

func TestMonitorLogConcurrency(t *testing.T) {
	l := NewMonitorLog(100)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Append(DecisionRecord{Decision: "Permit"})
				l.Len()
				l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 100 {
		t.Errorf("Len = %d, want 100 (bounded)", l.Len())
	}
}
