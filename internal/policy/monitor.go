package policy

import (
	"sync"
	"time"
)

// DecisionRecord is one monitored PDP decision together with the effect
// the PEP observed, the raw material the Policy Adaptation Point learns
// from (paper Section III.A: "the operations of the PDP and PEP are
// monitored to produce a history of the decisions ... and the effects
// they have had").
type DecisionRecord struct {
	// RequestKey canonically identifies the request that was decided.
	RequestKey string
	// ContextKey canonically identifies the context at decision time.
	ContextKey string
	// Decision is the PDP outcome (e.g. "Permit", "Deny",
	// "NotApplicable").
	Decision string
	// PolicyID names the policy that produced the decision ("" if none).
	PolicyID string
	// Outcome records the PEP-observed effect: "ok", "violation",
	// "no-policy", etc.
	Outcome string
	// At is the decision time.
	At time.Time
}

// MonitorLog is a bounded, thread-safe decision history.
type MonitorLog struct {
	mu      sync.Mutex
	records []DecisionRecord
	max     int
}

// NewMonitorLog builds a log keeping at most max records (0 = unbounded).
func NewMonitorLog(max int) *MonitorLog {
	return &MonitorLog{max: max}
}

// Append records a decision, evicting the oldest entry when full.
func (l *MonitorLog) Append(rec DecisionRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, rec)
	if l.max > 0 && len(l.records) > l.max {
		l.records = l.records[len(l.records)-l.max:]
	}
}

// Snapshot returns a copy of the current records.
func (l *MonitorLog) Snapshot() []DecisionRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]DecisionRecord, len(l.records))
	copy(out, l.records)
	return out
}

// Len returns the number of records.
func (l *MonitorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// CountBy tallies records by a projection (e.g. Decision or Outcome).
func (l *MonitorLog) CountBy(project func(DecisionRecord) string) map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int)
	for _, r := range l.records {
		out[project(r)]++
	}
	return out
}

// Violations returns the records whose outcome marks a violation.
func (l *MonitorLog) Violations() []DecisionRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []DecisionRecord
	for _, r := range l.records {
		if r.Outcome == "violation" {
			out = append(out, r)
		}
	}
	return out
}
