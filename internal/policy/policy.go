// Package policy provides the generic policy model shared by the AGENP
// framework components (Figure 2 of the paper): policies as strings of a
// policy language with provenance metadata, a thread-safe versioned
// policy repository, a representations repository for learned generative
// policy models, and monitoring records of PDP/PEP activity consumed by
// the Policy Adaptation Point.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Source describes where a policy came from.
type Source int

// Policy provenance.
const (
	// SourceGenerated marks policies generated locally from the GPM.
	SourceGenerated Source = iota + 1
	// SourceShared marks policies received from another coalition party.
	SourceShared
	// SourceRefined marks policies installed by the global policy
	// refinement of the PBMS.
	SourceRefined
)

func (s Source) String() string {
	switch s {
	case SourceGenerated:
		return "generated"
	case SourceShared:
		return "shared"
	case SourceRefined:
		return "refined"
	default:
		return "unknown"
	}
}

// Policy is one policy of the managed system: a string of the policy
// language plus provenance.
type Policy struct {
	// ID identifies the policy within a repository.
	ID string
	// Tokens is the policy string (tokens of the policy grammar).
	Tokens []string
	// Source records provenance.
	Source Source
	// Origin names the party the policy came from (for shared policies).
	Origin string
	// Version is maintained by the repository.
	Version int
	// CreatedAt is stamped by the repository.
	CreatedAt time.Time
}

// Text returns the policy string with tokens joined by spaces.
func (p Policy) Text() string { return strings.Join(p.Tokens, " ") }

func (p Policy) String() string {
	return fmt.Sprintf("%s v%d [%s] %q", p.ID, p.Version, p.Source, p.Text())
}

// Event is a repository change notification.
type Event struct {
	// Kind is "put" or "delete".
	Kind string
	// Policy is the affected policy (zero value for deletes of unknown
	// ids).
	Policy Policy
}

// Snapshot is an immutable, versioned view of a repository: the policies
// sorted by id, stamped with the generation that produced them. Snapshots
// are shared between callers — the slice and the policies inside it must
// be treated as read-only (copy before mutating, as List does).
type Snapshot struct {
	// Generation is the repository mutation counter at capture time.
	// Two snapshots with equal generations have identical contents.
	Generation uint64
	// Policies is sorted by id. Read-only.
	Policies []Policy
}

// Len returns the number of policies in the snapshot.
func (s *Snapshot) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Policies)
}

// Repository is a thread-safe, versioned policy store with change
// notification, playing the Policy Repository role of the architecture.
// Every mutation bumps a generation counter; Snapshot captures the
// current contents copy-on-write, so unchanged repositories hand out the
// same immutable snapshot without re-sorting or re-copying.
type Repository struct {
	mu       sync.RWMutex
	policies map[string]Policy
	subs     []chan Event
	now      func() time.Time

	// gen counts mutations; readable lock-free so serving layers can
	// detect staleness with a single atomic load.
	gen atomic.Uint64
	// snap caches the snapshot of the current generation; mutations
	// leave it in place and Snapshot rebuilds when generations diverge.
	snap atomic.Pointer[Snapshot]
}

// NewRepository builds an empty repository.
func NewRepository() *Repository {
	return &Repository{
		policies: make(map[string]Policy),
		now:      time.Now,
	}
}

// Generation returns the mutation counter (0 for a fresh repository).
// It is readable without taking the repository lock.
func (r *Repository) Generation() uint64 { return r.gen.Load() }

// Snapshot returns the immutable snapshot of the current generation,
// building (and caching) it only when the repository changed since the
// last capture. Callers must not mutate the returned policies.
func (r *Repository) Snapshot() *Snapshot {
	if s := r.snap.Load(); s != nil && s.Generation == r.gen.Load() {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Re-check under the lock: a concurrent Snapshot may have filled it.
	gen := r.gen.Load()
	if s := r.snap.Load(); s != nil && s.Generation == gen {
		return s
	}
	out := make([]Policy, 0, len(r.policies))
	for _, p := range r.policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	s := &Snapshot{Generation: gen, Policies: out}
	r.snap.Store(s)
	return s
}

// SetClock injects a clock for tests.
func (r *Repository) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Put inserts or updates a policy, bumping its version, and returns the
// stored value.
func (r *Repository) Put(p Policy) Policy {
	r.mu.Lock()
	if p.Source == 0 {
		p.Source = SourceGenerated
	}
	if old, ok := r.policies[p.ID]; ok {
		p.Version = old.Version + 1
	} else {
		p.Version = 1
	}
	p.CreatedAt = r.now()
	// Copy the token slice so callers cannot mutate stored state.
	toks := make([]string, len(p.Tokens))
	copy(toks, p.Tokens)
	p.Tokens = toks
	r.policies[p.ID] = p
	r.gen.Add(1)
	subs := append([]chan Event(nil), r.subs...)
	r.mu.Unlock()

	for _, ch := range subs {
		select {
		case ch <- Event{Kind: "put", Policy: p}:
		default: // subscriber not keeping up; drop rather than block
		}
	}
	return p
}

// Get returns a policy by id.
func (r *Repository) Get(id string) (Policy, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.policies[id]
	return p, ok
}

// Delete removes a policy and reports whether it existed.
func (r *Repository) Delete(id string) bool {
	r.mu.Lock()
	p, ok := r.policies[id]
	if ok {
		delete(r.policies, id)
		r.gen.Add(1)
	}
	subs := append([]chan Event(nil), r.subs...)
	r.mu.Unlock()
	if ok {
		for _, ch := range subs {
			select {
			case ch <- Event{Kind: "delete", Policy: p}:
			default:
			}
		}
	}
	return ok
}

// List returns all policies sorted by id. The returned slice is the
// caller's to mutate; serving paths that only read should use Snapshot,
// which shares one immutable slice per generation instead of copying.
func (r *Repository) List() []Policy {
	s := r.Snapshot()
	out := make([]Policy, len(s.Policies))
	copy(out, s.Policies)
	return out
}

// Len returns the number of stored policies.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.policies)
}

// ReplaceAll atomically replaces the repository contents with the given
// policies (used by the PReP when regenerating from a new GPM).
func (r *Repository) ReplaceAll(policies []Policy) {
	r.mu.Lock()
	old := r.policies
	r.policies = make(map[string]Policy, len(policies))
	for _, p := range policies {
		if prev, ok := old[p.ID]; ok {
			p.Version = prev.Version + 1
		} else if p.Version == 0 {
			p.Version = 1
		}
		p.CreatedAt = r.now()
		r.policies[p.ID] = p
	}
	r.gen.Add(1)
	r.mu.Unlock()
}

// Subscribe registers a change channel; the caller owns draining it. The
// returned cancel function unsubscribes.
func (r *Repository) Subscribe(buffer int) (<-chan Event, func()) {
	ch := make(chan Event, buffer)
	r.mu.Lock()
	r.subs = append(r.subs, ch)
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, c := range r.subs {
			if c == ch {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, cancel
}
