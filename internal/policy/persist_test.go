package policy

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := NewRepository()
	fixed := time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })
	r.Put(Policy{ID: "p1", Tokens: []string{"accept", "park"}, Source: SourceGenerated})
	r.Put(Policy{ID: "p1", Tokens: []string{"accept", "park"}}) // bump to v2
	r.Put(Policy{ID: "p2", Tokens: []string{"share", "image"}, Source: SourceShared, Origin: "ally"})

	var buf strings.Builder
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewRepository()
	if err := restored.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d policies", restored.Len())
	}
	p1, ok := restored.Get("p1")
	if !ok || p1.Version != 2 || !p1.CreatedAt.Equal(fixed) || p1.Text() != "accept park" {
		t.Errorf("p1 = %+v", p1)
	}
	p2, _ := restored.Get("p2")
	if p2.Source != SourceShared || p2.Origin != "ally" {
		t.Errorf("p2 = %+v", p2)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.json")
	r := NewRepository()
	r.Put(Policy{ID: "x", Tokens: []string{"a"}, Source: SourceRefined})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewRepository()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Get("x")
	if !ok || got.Source != SourceRefined {
		t.Errorf("restored = %+v, %v", got, ok)
	}
	if err := restored.LoadFile("/nonexistent/nope.json"); err == nil {
		t.Error("missing file not reported")
	}
}

func TestLoadErrors(t *testing.T) {
	r := NewRepository()
	if err := r.Load(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := r.Load(strings.NewReader(`{"policies":[{"id":"x","source":"martian"}]}`)); err == nil {
		t.Error("unknown source accepted")
	}
	// Failed loads must not corrupt existing state... (Load replaces only
	// on success).
	r.Put(Policy{ID: "keep", Tokens: []string{"t"}})
	_ = r.Load(strings.NewReader("{bad"))
	if _, ok := r.Get("keep"); !ok {
		t.Error("failed load wiped repository")
	}
}
