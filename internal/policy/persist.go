package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Snapshotting: the policy repository serializes to JSON so an AMS can
// persist its policies across restarts (coalition parties are devices
// that reboot; Section I's "self-adaptive" systems need durable state).

// snapshotPolicy is the wire form of a Policy.
type snapshotPolicy struct {
	ID        string    `json:"id"`
	Tokens    []string  `json:"tokens"`
	Source    string    `json:"source"`
	Origin    string    `json:"origin,omitempty"`
	Version   int       `json:"version"`
	CreatedAt time.Time `json:"createdAt"`
}

type snapshot struct {
	Policies []snapshotPolicy `json:"policies"`
}

func sourceFromString(s string) (Source, error) {
	switch s {
	case "generated":
		return SourceGenerated, nil
	case "shared":
		return SourceShared, nil
	case "refined":
		return SourceRefined, nil
	default:
		return 0, fmt.Errorf("policy: unknown source %q", s)
	}
}

// Save writes the repository contents as JSON.
func (r *Repository) Save(w io.Writer) error {
	snap := snapshot{}
	for _, p := range r.List() {
		snap.Policies = append(snap.Policies, snapshotPolicy{
			ID:        p.ID,
			Tokens:    p.Tokens,
			Source:    p.Source.String(),
			Origin:    p.Origin,
			Version:   p.Version,
			CreatedAt: p.CreatedAt,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the repository contents from a JSON snapshot, preserving
// versions and timestamps.
func (r *Repository) Load(reader io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(reader).Decode(&snap); err != nil {
		return fmt.Errorf("policy: decoding snapshot: %w", err)
	}
	policies := make([]Policy, 0, len(snap.Policies))
	for _, sp := range snap.Policies {
		src, err := sourceFromString(sp.Source)
		if err != nil {
			return err
		}
		policies = append(policies, Policy{
			ID:        sp.ID,
			Tokens:    sp.Tokens,
			Source:    src,
			Origin:    sp.Origin,
			Version:   sp.Version,
			CreatedAt: sp.CreatedAt,
		})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policies = make(map[string]Policy, len(policies))
	for _, p := range policies {
		r.policies[p.ID] = p
	}
	return nil
}

// SaveFile writes a snapshot to a file.
func (r *Repository) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := r.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores a snapshot from a file.
func (r *Repository) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return r.Load(f)
}
