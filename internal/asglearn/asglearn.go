// Package asglearn implements the context-dependent ASG learning task of
// the paper's Definition 3: given an initial answer set grammar G, a
// hypothesis space S_M of (rule, production) pairs, and examples
// ⟨string, context⟩ labelled positive or negative, find a minimal
// hypothesis H ⊆ S_M such that every positive ⟨s, C⟩ has s ∈ L(G(C):H)
// and every negative ⟨s, C⟩ has s ∉ L(G(C):H).
//
// Following Section II.B, the learning problem is transformed into a
// task solved by the ILASP engine: the optimal subset search of package
// ilasp runs over S_M with ASG membership as the coverage oracle.
package asglearn

import (
	"fmt"
	"strings"
	"sync"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
)

// Example is a context-dependent string example ⟨s, C⟩ (Definition 3).
type Example struct {
	// ID labels the example in diagnostics.
	ID string
	// Tokens is the policy string s.
	Tokens []string
	// Context is the ASP context program C (may be nil).
	Context *asp.Program
	// Positive marks whether s must be in L(G(C):H) (true) or must not
	// (false).
	Positive bool
	// Weight is the noise penalty; 0 marks a hard example.
	Weight int
}

func (e Example) String() string {
	pol := "#neg"
	if e.Positive {
		pol = "#pos"
	}
	return fmt.Sprintf("%s(%s) %q", pol, e.ID, strings.Join(e.Tokens, " "))
}

// Task is a context-dependent ASG learning task ⟨G, S_M, E+, E−⟩.
type Task struct {
	// Initial is the initial grammar G.
	Initial *asg.Grammar
	// Space is the hypothesis space S_M.
	Space []asg.HypothesisRule
	// Examples are E+ and E− merged (polarity per example).
	Examples []Example
	// MaxParseTrees caps ambiguity handling in membership checks.
	MaxParseTrees int
}

// Covers reports whether hypothesis H covers the example:
// s ∈ L(G(C):H) for positive examples, s ∉ L(G(C):H) for negative ones.
func (t *Task) Covers(h []asg.HypothesisRule, e Example) (bool, error) {
	g, err := t.Initial.WithHypothesis(h)
	if err != nil {
		return false, err
	}
	ok, err := g.WithContext(e.Context).Accepts(e.Tokens, asg.AcceptOptions{MaxTrees: t.MaxParseTrees})
	if err != nil {
		return false, fmt.Errorf("asglearn: example %s: %w", e.ID, err)
	}
	if e.Positive {
		return ok, nil
	}
	return !ok, nil
}

// Result is a learned generative policy model.
type Result struct {
	// Hypothesis is the learned (rule, production) set.
	Hypothesis []asg.HypothesisRule
	// Grammar is the learned ASG (G : H).
	Grammar *asg.Grammar
	// Cost is the hypothesis cost; Covered/Total count examples; Checks
	// counts membership checks performed.
	Cost, Covered, Total, Checks int
}

func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cost %d, covered %d/%d\n", r.Cost, r.Covered, r.Total)
	for _, h := range r.Hypothesis {
		sb.WriteString(h.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Learn searches S_M for an optimal hypothesis using the shared ILASP
// search engine.
func (t *Task) Learn(opts ilasp.LearnOptions) (*Result, error) {
	oracle := &asgOracle{task: t}
	weights := make([]int, len(t.Examples))
	for i, e := range t.Examples {
		weights[i] = e.Weight
	}
	sol, err := ilasp.Search(oracle, weights, opts)
	if err != nil {
		return nil, err
	}
	hyp := make([]asg.HypothesisRule, len(sol.Chosen))
	cost := 0
	for i, ci := range sol.Chosen {
		hyp[i] = t.Space[ci]
		cost += t.Space[ci].Cost()
	}
	learned, err := t.Initial.WithHypothesis(hyp)
	if err != nil {
		return nil, err
	}
	return &Result{
		Hypothesis: hyp,
		Grammar:    learned,
		Cost:       cost,
		Covered:    sol.Covered,
		Total:      len(t.Examples),
		Checks:     sol.Checks,
	}, nil
}

// asgOracle adapts the task to the ILASP search engine. Covers is safe
// for the search's concurrent calls: membership checks build fresh
// grammars per call, and the memo is mutex-guarded.
type asgOracle struct {
	task  *Task
	cands []ilasp.Candidate

	mu    sync.Mutex
	cache map[string][]int8
}

var _ ilasp.Oracle = (*asgOracle)(nil)

func (o *asgOracle) Candidates() []ilasp.Candidate {
	if o.cands == nil {
		o.cands = make([]ilasp.Candidate, len(o.task.Space))
		for i, h := range o.task.Space {
			o.cands[i] = ilasp.Candidate{Rule: h.Rule, Cost: h.Cost()}
		}
	}
	return o.cands
}

func (o *asgOracle) Covers(chosen []int, exampleIdx int) (bool, error) {
	var kb strings.Builder
	for _, c := range chosen {
		fmt.Fprintf(&kb, "%d,", c)
	}
	key := kb.String()
	o.mu.Lock()
	if o.cache == nil {
		o.cache = make(map[string][]int8)
	}
	row := o.cache[key]
	if row == nil {
		row = make([]int8, len(o.task.Examples))
		o.cache[key] = row
	}
	v := row[exampleIdx]
	o.mu.Unlock()
	if v != 0 {
		return v == 1, nil
	}
	h := make([]asg.HypothesisRule, len(chosen))
	for i, ci := range chosen {
		h[i] = o.task.Space[ci]
	}
	ok, err := o.task.Covers(h, o.task.Examples[exampleIdx])
	if err != nil {
		return false, err
	}
	o.mu.Lock()
	if ok {
		row[exampleIdx] = 1
	} else {
		row[exampleIdx] = -1
	}
	o.mu.Unlock()
	return ok, nil
}

// ProductionBias pairs an ILASP language bias with the production(s) its
// rules may be attached to, for building hypothesis spaces.
type ProductionBias struct {
	// ProdIDs lists the productions each generated rule may annotate.
	ProdIDs []int
	// Bias defines the rule shapes. Mode atoms may reference child
	// annotations via predicates built with asg.EncodeAnnotated.
	Bias ilasp.Bias
}

// BuildSpace expands production biases into a hypothesis space S_M.
func BuildSpace(g *asg.Grammar, biases []ProductionBias) ([]asg.HypothesisRule, error) {
	var out []asg.HypothesisRule
	for _, pb := range biases {
		cands, err := pb.Bias.Space()
		if err != nil {
			return nil, err
		}
		for _, id := range pb.ProdIDs {
			if id < 0 || id >= len(g.CFG.Productions) {
				return nil, fmt.Errorf("asglearn: bias references unknown production %d", id)
			}
			for _, c := range cands {
				out = append(out, asg.HypothesisRule{Rule: c.Rule, ProdID: id})
			}
		}
	}
	return out, nil
}

// ParseHypothesisRule parses a rule in ASG annotation syntax (atoms may
// carry @k annotations) targeted at a production, for hand-built spaces.
func ParseHypothesisRule(src string, prodID int) (asg.HypothesisRule, error) {
	prog, err := asp.ParseAnnotated(src, asg.AnnotationHook)
	if err != nil {
		return asg.HypothesisRule{}, err
	}
	if len(prog.Rules) != 1 {
		return asg.HypothesisRule{}, fmt.Errorf("asglearn: expected one rule, got %d", len(prog.Rules))
	}
	return asg.HypothesisRule{Rule: prog.Rules[0], ProdID: prodID}, nil
}

// MustParseHypothesisRule is ParseHypothesisRule panicking on error, for
// tests and literals.
func MustParseHypothesisRule(src string, prodID int) asg.HypothesisRule {
	h, err := ParseHypothesisRule(src, prodID)
	if err != nil {
		panic(err)
	}
	return h
}
