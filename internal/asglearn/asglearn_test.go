package asglearn

import (
	"errors"
	"strings"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
)

func toks(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Fields(s)
}

func ctx(t *testing.T, src string) *asp.Program {
	t.Helper()
	p, err := asp.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

// cavGrammar is a miniature of the paper's CAV policy language: a policy
// accepts or rejects a driving task.
const cavGrammar = `
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

func cavTask(t *testing.T, examples []Example) *Task {
	t.Helper()
	g, err := asg.ParseASG(cavGrammar)
	if err != nil {
		t.Fatal(err)
	}
	// Space: constraints on the accept production referencing the task
	// child and context weather/loa facts.
	space := []asg.HypothesisRule{
		MustParseHypothesisRule(":- task(overtake)@2, weather(rain).", 0),
		MustParseHypothesisRule(":- task(park)@2, weather(rain).", 0),
		MustParseHypothesisRule(":- task(overtake)@2.", 0),
		MustParseHypothesisRule(":- weather(rain).", 0),
		MustParseHypothesisRule(":- loa(1).", 0),
	}
	return &Task{Initial: g, Space: space, Examples: examples}
}

func TestLearnContextDependentConstraint(t *testing.T) {
	// Ground truth: accepting an overtake is invalid in rain.
	task := cavTask(t, []Example{
		{ID: "p1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(clear). loa(5)."), Positive: true},
		{ID: "p2", Tokens: toks("accept park"), Context: ctx(t, "weather(rain). loa(5)."), Positive: true},
		{ID: "n1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain). loa(5)."), Positive: false},
		{ID: "p3", Tokens: toks("reject overtake"), Context: ctx(t, "weather(rain). loa(5)."), Positive: true},
	})
	res, err := task.Learn(ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("hypothesis = %v", res.Hypothesis)
	}
	got := asg.DisplayRule(res.Hypothesis[0].Rule)
	if got != ":- task(overtake)@2, weather(rain)." {
		t.Errorf("learned %q", got)
	}
	if res.Hypothesis[0].ProdID != 0 {
		t.Errorf("rule attached to production %d, want 0", res.Hypothesis[0].ProdID)
	}
	if res.Covered != 4 || res.Total != 4 {
		t.Errorf("coverage %d/%d", res.Covered, res.Total)
	}

	// The learned grammar behaves per Definition 3 on fresh contexts.
	rain := ctx(t, "weather(rain).")
	ok, err := res.Grammar.WithContext(rain).Accepts(toks("accept overtake"), asg.AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("learned GPM should reject accept-overtake in rain")
	}
	clear := ctx(t, "weather(clear).")
	ok, err = res.Grammar.WithContext(clear).Accepts(toks("accept overtake"), asg.AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("learned GPM should admit accept-overtake in clear weather")
	}
}

func TestLearnPrefersCheaperHypothesis(t *testing.T) {
	// With only a negative rain example and no positive overtake-in-rain
	// counterweight, the cheaper blanket constraint ":- weather(rain)."
	// suffices (cost 1 vs cost 2).
	task := cavTask(t, []Example{
		{ID: "n1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: false},
		{ID: "p1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(clear)."), Positive: true},
	})
	res, err := task.Learn(ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("hypothesis = %v", res.Hypothesis)
	}
	got := asg.DisplayRule(res.Hypothesis[0].Rule)
	if got != ":- weather(rain)." {
		t.Errorf("learned %q, want the minimal blanket constraint", got)
	}
}

func TestLearnEmptyHypothesis(t *testing.T) {
	task := cavTask(t, []Example{
		{ID: "p1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(clear)."), Positive: true},
	})
	res, err := task.Learn(ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 0 {
		t.Errorf("want empty hypothesis, got %v", res.Hypothesis)
	}
}

func TestLearnNoSolution(t *testing.T) {
	// Contradictory examples: same string, same context, both polarities.
	task := cavTask(t, []Example{
		{ID: "p", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: true},
		{ID: "n", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: false},
	})
	_, err := task.Learn(ilasp.LearnOptions{})
	if !errors.Is(err, ilasp.ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
}

func TestLearnNoiseTolerant(t *testing.T) {
	// One mislabeled example (accept overtake in rain marked positive,
	// weight 1) against two heavier examples of the rain rule.
	task := cavTask(t, []Example{
		{ID: "good1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: false, Weight: 10},
		{ID: "good2", Tokens: toks("accept park"), Context: ctx(t, "weather(rain)."), Positive: true, Weight: 10},
		{ID: "good3", Tokens: toks("accept overtake"), Context: ctx(t, "weather(clear)."), Positive: true, Weight: 10},
		{ID: "noisy", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: true, Weight: 1},
	})
	res, err := task.Learn(ilasp.LearnOptions{Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 3 {
		t.Errorf("covered = %d, want 3 (noisy sacrificed)", res.Covered)
	}
	if len(res.Hypothesis) != 1 || asg.DisplayRule(res.Hypothesis[0].Rule) != ":- task(overtake)@2, weather(rain)." {
		t.Errorf("hypothesis = %v", res.Hypothesis)
	}
}

func TestLearnCheckBudget(t *testing.T) {
	task := cavTask(t, []Example{
		{ID: "p", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: true},
		{ID: "n", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: false},
	})
	_, err := task.Learn(ilasp.LearnOptions{MaxChecks: 2})
	if !errors.Is(err, ilasp.ErrCheckBudget) {
		t.Errorf("err = %v, want ErrCheckBudget", err)
	}
}

func TestBuildSpace(t *testing.T) {
	g, err := asg.ParseASG(cavGrammar)
	if err != nil {
		t.Fatal(err)
	}
	bias := ilasp.Bias{
		Body: []ilasp.ModeAtom{
			ilasp.M(asg.EncodeAnnotated("task", 2), ilasp.Const("t")),
			ilasp.M("weather", ilasp.Const("w")),
		},
		Constants: map[string][]asp.Term{
			"t": {asp.Constant{Name: "overtake"}, asp.Constant{Name: "park"}},
			"w": {asp.Constant{Name: "rain"}, asp.Constant{Name: "clear"}},
		},
		AllowConstraints: true,
		MaxBody:          2,
	}
	space, err := BuildSpace(g, []ProductionBias{{ProdIDs: []int{0, 1}, Bias: bias}})
	if err != nil {
		t.Fatal(err)
	}
	if len(space) == 0 {
		t.Fatal("empty space")
	}
	// The ground-truth rule must be in the space for production 0.
	want := ":- task(overtake)@2, weather(rain)."
	found := false
	for _, h := range space {
		if h.ProdID == 0 && asg.DisplayRule(h.Rule) == want {
			found = true
		}
	}
	if !found {
		t.Errorf("space missing %q", want)
	}
	// And learning over the generated space works end to end.
	task := &Task{
		Initial: g,
		Space:   space,
		Examples: []Example{
			{ID: "p1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(clear)."), Positive: true},
			{ID: "p2", Tokens: toks("accept park"), Context: ctx(t, "weather(rain)."), Positive: true},
			{ID: "n1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: false},
			{ID: "p3", Tokens: toks("reject overtake"), Context: ctx(t, "weather(rain)."), Positive: true},
		},
	}
	res, err := task.Learn(ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 || asg.DisplayRule(res.Hypothesis[0].Rule) != want {
		t.Errorf("learned %v", res.Hypothesis)
	}
}

func TestBuildSpaceUnknownProduction(t *testing.T) {
	g, err := asg.ParseASG(cavGrammar)
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildSpace(g, []ProductionBias{{ProdIDs: []int{99}, Bias: ilasp.Bias{
		Body:             []ilasp.ModeAtom{ilasp.M("weather", ilasp.Const("w"))},
		Constants:        map[string][]asp.Term{"w": {asp.Constant{Name: "rain"}}},
		AllowConstraints: true,
	}}})
	if err == nil {
		t.Error("expected unknown production error")
	}
}

func TestParseHypothesisRuleErrors(t *testing.T) {
	if _, err := ParseHypothesisRule("not a rule", 0); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseHypothesisRule("a. b.", 0); err == nil {
		t.Error("expected one-rule error")
	}
}

func TestExampleString(t *testing.T) {
	e := Example{ID: "e1", Tokens: toks("accept park"), Positive: true}
	if got := e.String(); got != `#pos(e1) "accept park"` {
		t.Errorf("String = %q", got)
	}
}

func TestResultString(t *testing.T) {
	task := cavTask(t, []Example{
		{ID: "n1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(rain)."), Positive: false},
		{ID: "p1", Tokens: toks("accept overtake"), Context: ctx(t, "weather(clear)."), Positive: true},
	})
	res, err := task.Learn(ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "covered 2/2") || !strings.Contains(s, "weather(rain)") {
		t.Errorf("Result.String = %q", s)
	}
	if res.Checks == 0 {
		t.Error("checks not counted")
	}
}
