package ilasp

import (
	"errors"
	"testing"

	"agenp/internal/asp"
)

func TestLearnIndependentSimple(t *testing.T) {
	task := &Task{
		Background: prog(t, "bird(tweety). bird(sam). penguin(sam)."),
		Bias: Bias{
			Head:          []ModeAtom{M("flies", Var("animal"))},
			Body:          []ModeAtom{M("bird", Var("animal")), M("penguin", Var("animal"))},
			MaxVars:       1,
			MaxBody:       2,
			AllowNegation: true,
			RequireBody:   true,
		},
		Examples: []Example{
			PosExample("e1", []asp.Atom{atom(t, "flies(tweety)")}, []asp.Atom{atom(t, "flies(sam)")}, nil),
		},
	}
	res, err := task.LearnIndependent(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 || res.Hypothesis[0].String() != "flies(V1) :- bird(V1), not penguin(V1)." {
		t.Errorf("learned %v", res.Hypothesis)
	}
	if res.Covered != 1 || res.Checks == 0 {
		t.Errorf("stats = %+v", res)
	}
}

// TestLearnIndependentAgreesWithLearn: on independent tasks both engines
// find hypotheses of the same optimal cost with the same coverage.
func TestLearnIndependentAgreesWithLearn(t *testing.T) {
	mkTask := func() *Task {
		return &Task{
			Background: prog(t, "subject(role, dba). subject(age, 20)."),
			Bias: Bias{
				Head: []ModeAtom{M("decision", Const("effect"))},
				Body: []ModeAtom{
					M("subject", Const("roleattr"), Const("role")),
					M("subject", Const("ageattr"), Var("num")),
				},
				Constants: map[string][]asp.Term{
					"effect":   consts("permit", "deny"),
					"role":     consts("dba", "guest"),
					"roleattr": consts("role"),
					"ageattr":  consts("age"),
				},
				Comparisons: []CmpSpec{{
					Type:   "num",
					Ops:    []asp.CmpOp{asp.CmpGeq},
					Values: []asp.Term{asp.Integer{Value: 18}},
				}},
				MaxVars:     1,
				MaxBody:     2,
				RequireBody: true,
			},
			Examples: []Example{
				PosExample("permit dba",
					[]asp.Atom{atom(t, "decision(permit)")},
					[]asp.Atom{atom(t, "decision(deny)")}, nil),
			},
		}
	}
	exact, err := mkTask().Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := mkTask().LearnIndependent(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cost != fast.Cost {
		t.Errorf("cost mismatch: exact %d (%v) vs fast %d (%v)", exact.Cost, exact.Hypothesis, fast.Cost, fast.Hypothesis)
	}
	if exact.Covered != fast.Covered {
		t.Errorf("coverage mismatch: %d vs %d", exact.Covered, fast.Covered)
	}
}

func TestLearnIndependentMultiRuleCover(t *testing.T) {
	// Two contexts need two different rules.
	task := &Task{
		Bias: Bias{
			Head: []ModeAtom{M("decision", Const("effect"))},
			Body: []ModeAtom{M("subject", Const("attr"), Const("role"))},
			Constants: map[string][]asp.Term{
				"effect": consts("permit", "deny"),
				"attr":   consts("role"),
				"role":   consts("dba", "guest", "dev"),
			},
			MaxBody:     2,
			RequireBody: true,
		},
		Examples: []Example{
			PosExample("dba permitted",
				[]asp.Atom{atom(t, "decision(permit)")},
				[]asp.Atom{atom(t, "decision(deny)")},
				prog(t, "subject(role, dba).")),
			PosExample("guest denied",
				[]asp.Atom{atom(t, "decision(deny)")},
				[]asp.Atom{atom(t, "decision(permit)")},
				prog(t, "subject(role, guest).")),
			PosExample("dev nothing",
				nil,
				[]asp.Atom{atom(t, "decision(permit)"), atom(t, "decision(deny)")},
				prog(t, "subject(role, dev).")),
		},
	}
	res, err := task.LearnIndependent(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range res.Hypothesis {
		got[r.String()] = true
	}
	if !got["decision(permit) :- subject(role,dba)."] || !got["decision(deny) :- subject(role,guest)."] {
		t.Errorf("learned %v", got)
	}
	if len(res.Hypothesis) != 2 {
		t.Errorf("hypothesis size = %d", len(res.Hypothesis))
	}
}

func TestLearnIndependentNoSolution(t *testing.T) {
	task := &Task{
		Bias: Bias{
			Head:        []ModeAtom{M("decision", Const("effect"))},
			Body:        []ModeAtom{M("subject", Const("attr"), Const("role"))},
			Constants:   map[string][]asp.Term{"effect": consts("permit"), "attr": consts("role"), "role": consts("dba")},
			MaxBody:     1,
			RequireBody: true,
		},
		Examples: []Example{
			// Same context, contradictory labels.
			PosExample("a", []asp.Atom{atom(t, "decision(permit)")}, nil, prog(t, "subject(role, dba).")),
			PosExample("b", nil, []asp.Atom{atom(t, "decision(permit)")}, prog(t, "subject(role, dba).")),
		},
	}
	_, err := task.LearnIndependent(LearnOptions{})
	if !errors.Is(err, ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
}

func TestLearnIndependentNoise(t *testing.T) {
	task := &Task{
		Bias: Bias{
			Head:        []ModeAtom{M("decision", Const("effect"))},
			Body:        []ModeAtom{M("subject", Const("attr"), Const("role"))},
			Constants:   map[string][]asp.Term{"effect": consts("permit"), "attr": consts("role"), "role": consts("dba")},
			MaxBody:     1,
			RequireBody: true,
		},
		Examples: []Example{
			{ID: "good1", Positive: true, Inclusions: []asp.Atom{atom(t, "decision(permit)")}, Context: prog(t, "subject(role, dba)."), Weight: 10},
			{ID: "good2", Positive: true, Inclusions: []asp.Atom{atom(t, "decision(permit)")}, Context: prog(t, "subject(role, dba)."), Weight: 10},
			{ID: "noisy", Positive: true, Exclusions: []asp.Atom{atom(t, "decision(permit)")}, Context: prog(t, "subject(role, dba)."), Weight: 1},
		},
	}
	res, err := task.LearnIndependent(LearnOptions{Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 || res.Covered != 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestLearnIndependentRejectsNegativeExamples(t *testing.T) {
	task := &Task{
		Bias: Bias{
			Head:        []ModeAtom{M("p")},
			Body:        []ModeAtom{M("q")},
			MaxBody:     1,
			RequireBody: true,
		},
		Examples: []Example{NegExample("n", []asp.Atom{atom(t, "p")}, nil, prog(t, "q."))},
	}
	if _, err := task.LearnIndependent(LearnOptions{}); err == nil {
		t.Error("negative examples should be rejected")
	}
}

func TestLearnIndependentRejectsRecursiveSpace(t *testing.T) {
	r1, _ := asp.ParseRule("p :- q.")
	r2, _ := asp.ParseRule("q :- p.")
	task := &Task{
		Space:    []Candidate{{Rule: r1, Cost: 2}, {Rule: r2, Cost: 2}},
		Examples: []Example{PosExample("e", []asp.Atom{atom(t, "p")}, nil, nil)},
	}
	if _, err := task.LearnIndependent(LearnOptions{}); err == nil {
		t.Error("recursive space should be rejected")
	}
}

func TestLearnIndependentRejectsConstraintCandidates(t *testing.T) {
	r, _ := asp.ParseRule(":- q.")
	task := &Task{
		Space:    []Candidate{{Rule: r, Cost: 1}},
		Examples: []Example{PosExample("e", nil, nil, prog(t, "q."))},
	}
	if _, err := task.LearnIndependent(LearnOptions{}); err == nil {
		t.Error("constraint candidates should be rejected")
	}
}

func TestLearnIndependentRejectsNondeterministicBackground(t *testing.T) {
	task := &Task{
		Background: prog(t, "{a; b}."),
		Bias: Bias{
			Head:        []ModeAtom{M("p")},
			Body:        []ModeAtom{M("a")},
			MaxBody:     1,
			RequireBody: true,
		},
		Examples: []Example{PosExample("e", []asp.Atom{atom(t, "p")}, nil, nil)},
	}
	if _, err := task.LearnIndependent(LearnOptions{}); err == nil {
		t.Error("nondeterministic background should be rejected")
	}
}

func TestLearnIndependentEmptyHypothesis(t *testing.T) {
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:        []ModeAtom{M("q")},
			Body:        []ModeAtom{M("p")},
			MaxBody:     1,
			RequireBody: true,
		},
		Examples: []Example{PosExample("e", []asp.Atom{atom(t, "p")}, nil, nil)},
	}
	res, err := task.LearnIndependent(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 0 {
		t.Errorf("hypothesis = %v, want empty", res.Hypothesis)
	}
}

func TestLearnIndependentMaxRules(t *testing.T) {
	// Needs 2 rules but MaxRules is 1.
	task := &Task{
		Bias: Bias{
			Head: []ModeAtom{M("decision", Const("effect"))},
			Body: []ModeAtom{M("subject", Const("attr"), Const("role"))},
			Constants: map[string][]asp.Term{
				"effect": consts("permit", "deny"),
				"attr":   consts("role"),
				"role":   consts("dba", "guest"),
			},
			MaxBody:     1,
			RequireBody: true,
		},
		Examples: []Example{
			PosExample("a", []asp.Atom{atom(t, "decision(permit)")}, []asp.Atom{atom(t, "decision(deny)")}, prog(t, "subject(role, dba).")),
			PosExample("b", []asp.Atom{atom(t, "decision(deny)")}, []asp.Atom{atom(t, "decision(permit)")}, prog(t, "subject(role, guest).")),
		},
	}
	if _, err := task.LearnIndependent(LearnOptions{MaxRules: 1}); !errors.Is(err, ErrNoSolution) {
		t.Error("MaxRules not enforced")
	}
	res, err := task.LearnIndependent(LearnOptions{MaxRules: 2})
	if err != nil || len(res.Hypothesis) != 2 {
		t.Errorf("MaxRules 2: %v, %v", res, err)
	}
}
