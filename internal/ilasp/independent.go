package ilasp

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"agenp/internal/asp"
	"agenp/internal/obs"
)

// LearnIndependent is the scalable fast path of the learner for
// *non-recursive* hypothesis spaces: candidate rules whose bodies only
// reference predicates derived by the background and example contexts,
// never other candidates' heads. Under that independence condition a
// candidate's contribution to an answer set is a one-step evaluation
// against the background model, coverage becomes a per-rule vector, and
// optimal search reduces to a weighted set-cover solved by branch and
// bound — no ASP solving inside the search loop.
//
// This realizes the ILASP-style relevance optimisations the paper calls
// for under "Performance Optimization" (Section III.B): the exhaustive
// Learn search and LearnIndependent return equally optimal hypotheses on
// independent tasks, but the latter scales to the dataset sizes of the
// access-control and CAV experiments.
//
// Restrictions (checked, returning an error when unmet):
//   - every example is positive (express negatives as exclusions);
//   - every candidate has a head, and no candidate's head predicate
//     occurs in any candidate body or anywhere in the background or the
//     example contexts;
//   - background ∪ context has exactly one answer set per example.
func (t *Task) LearnIndependent(opts LearnOptions) (*Result, error) {
	t0 := time.Now()
	sp := obs.StartSpan("ilasp.learn_independent")
	defer sp.End()
	space, err := t.space()
	if err != nil {
		return nil, err
	}
	if err := checkIndependence(t, space); err != nil {
		return nil, err
	}

	maxRules := opts.MaxRules
	if maxRules <= 0 {
		maxRules = 3
	}

	// Candidate rules are evaluated |space| × |examples| times; check
	// safety and reject choice rules once here so the per-example workers
	// can use the prepared fast path.
	for _, c := range space {
		if c.Rule.IsChoice() {
			return nil, fmt.Errorf("ilasp: evaluating candidate %q: asp: EvalRule does not support choice rules", c.Rule.String())
		}
		if err := asp.CheckSafety(c.Rule); err != nil {
			return nil, fmt.Errorf("ilasp: evaluating candidate %q: %w", c.Rule.String(), err)
		}
	}

	checks := 0
	// Per-example base models and requirement vectors. Requirements (one
	// per (example, needed inclusion) pair) get global indices assigned in
	// example order: reqOff[ei] is example ei's first requirement bit.
	infos := make([]exampleInfo, len(t.Examples))
	reqOff := make([]int, len(t.Examples)+1)
	// fireIdx[r] lists the global requirement indices rule r satisfies;
	// violIdx[r] lists the examples where r derives an excluded atom.
	// Both become bitset signatures once the total counts are known.
	fireIdx := make([][]int32, len(space))
	violIdx := make([][]int32, len(space))

	for ei := range t.Examples {
		e := &t.Examples[ei]
		reqOff[ei+1] = reqOff[ei]
		if !e.Positive {
			return nil, fmt.Errorf("ilasp: LearnIndependent requires positive examples; express %q via exclusions", e.ID)
		}
		prog := asp.NewProgram()
		if t.Background != nil {
			prog.Extend(t.Background)
		}
		if e.Context != nil {
			prog.Extend(e.Context)
		}
		models, err := asp.Solve(prog, asp.SolveOptions{MaxModels: 2})
		if err != nil {
			return nil, fmt.Errorf("ilasp: base model of example %s: %w", e.ID, err)
		}
		if len(models) != 1 {
			return nil, fmt.Errorf("ilasp: example %s background has %d answer sets; LearnIndependent needs exactly 1", e.ID, len(models))
		}
		base := models[0]

		info := exampleInfo{feasible: true}
		for _, a := range e.Exclusions {
			if base.Contains(a) {
				info.feasible = false // background itself violates: no H can fix it
			}
		}
		for _, a := range e.Inclusions {
			if !base.Contains(a) {
				info.needs = append(info.needs, a)
			}
		}
		infos[ei] = info
		if !info.feasible {
			continue
		}
		reqOff[ei+1] = reqOff[ei] + len(info.needs)

		// Candidate evaluation is the hot loop (|space| × |examples|
		// one-step evaluations); shard it across workers over a
		// predicate-indexed view of the base model. Each worker owns its
		// Evaluator scratch and writes disjoint rows of fireIdx/violIdx,
		// so no locking beyond the error slot is needed. Derived atoms
		// are matched against the example's few needs and exclusions by
		// structural comparison — no per-atom key strings.
		ix := asp.NewModelIndex(base)
		needs := info.needs
		excl := e.Exclusions
		workers := opts.Parallelism
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(space) {
			workers = len(space)
		}
		if workers < 1 {
			workers = 1
		}
		var (
			wg      sync.WaitGroup
			errOnce sync.Once
			evalErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ev := asp.NewEvaluator()
				for ri := w; ri < len(space); ri += workers {
					derived, err := ev.EvalPrepared(ix, space[ri].Rule)
					if err != nil {
						errOnce.Do(func() {
							evalErr = fmt.Errorf("ilasp: evaluating candidate %q: %w", space[ri].Rule.String(), err)
						})
						return
					}
					for _, d := range derived {
						for _, x := range excl {
							if asp.AtomsEqual(d, x) {
								violIdx[ri] = append(violIdx[ri], int32(ei))
								break
							}
						}
						for ni := range needs {
							if asp.AtomsEqual(d, needs[ni]) {
								fireIdx[ri] = append(fireIdx[ri], int32(reqOff[ei]+ni))
								break
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		checks += len(space)
		if evalErr != nil {
			return nil, evalErr
		}
	}

	// Pack the per-rule verdicts into bitset signatures.
	nreq := reqOff[len(t.Examples)]
	fireSig := make([]sigWords, len(space))
	violSig := make([]sigWords, len(space))
	for ri := range space {
		fireSig[ri] = newSig(nreq)
		for _, q := range fireIdx[ri] {
			fireSig[ri].set(int(q))
		}
		violSig[ri] = newSig(len(t.Examples))
		for _, ei := range violIdx[ri] {
			violSig[ri].set(int(ei))
		}
	}

	// Candidate pool: rules that help somewhere. Rules deriving no
	// needed atom can only add cost or violations, so optimal solutions
	// never include them. Candidates whose signatures duplicate a
	// cheaper (or equal-cost, earlier) pool member are collapsed away:
	// in the decomposed set-cover they are interchangeable with their
	// representative, and the representative's branch is explored first.
	var pool []int
	for ri := range space {
		if len(fireIdx[ri]) > 0 {
			pool = append(pool, ri)
		}
	}
	sort.SliceStable(pool, func(a, b int) bool { return space[pool[a]].Cost < space[pool[b]].Cost })
	seenSig := make(map[string]struct{}, len(pool))
	var sigKey []byte
	dedup := pool[:0]
	for _, ri := range pool {
		sigKey = sigKey[:0]
		for _, w := range fireSig[ri] {
			sigKey = binary.LittleEndian.AppendUint64(sigKey, w)
		}
		sigKey = append(sigKey, '|')
		for _, w := range violSig[ri] {
			sigKey = binary.LittleEndian.AppendUint64(sigKey, w)
		}
		if _, dup := seenSig[string(sigKey)]; dup {
			statSigCollapsed.Inc()
			continue
		}
		seenSig[string(sigKey)] = struct{}{}
		dedup = append(dedup, ri)
	}
	pool = dedup

	cv := &indepVectors{
		examples: t.Examples,
		infos:    infos,
		reqOff:   reqOff,
		nreq:     nreq,
		fire:     fireSig,
		viol:     violSig,
	}
	var sol []int
	var covered int
	if opts.Noise {
		sol, covered, err = coverNoisy(cv, space, pool, maxRules, opts.MaxCost)
	} else {
		sol, covered, err = coverHard(cv, space, pool, maxRules, opts.MaxCost)
	}
	if err != nil {
		return nil, err
	}
	sort.Ints(sol)
	rules := make([]asp.Rule, len(sol))
	cost := 0
	for i, ri := range sol {
		rules[i] = space[ri].Rule
		cost += space[ri].Cost
	}
	statIndependentLearns.Inc()
	statIndependentChecks.Add(int64(checks))
	statIndependentDur.ObserveSince(t0)
	if obs.TracingEnabled() {
		sp.SetAttr("candidates", strconv.Itoa(len(space)))
		sp.SetAttr("examples", strconv.Itoa(len(t.Examples)))
		sp.SetAttr("chosen", strconv.Itoa(len(sol)))
	}
	return &Result{
		Hypothesis: rules,
		Cost:       cost,
		Covered:    covered,
		Total:      len(t.Examples),
		Checks:     checks,
	}, nil
}

// exampleInfo captures, per example, whether any hypothesis can cover
// it and which inclusion atoms the background does not already derive.
type exampleInfo struct {
	feasible bool
	needs    []asp.Atom
}

// checkIndependence verifies the non-recursiveness condition.
func checkIndependence(t *Task, space []Candidate) error {
	headPreds := make(map[string]struct{})
	for _, c := range space {
		if c.Rule.Head == nil {
			return fmt.Errorf("ilasp: LearnIndependent requires headed candidates, found constraint %q", c.Rule.String())
		}
		headPreds[c.Rule.Head.Predicate] = struct{}{}
	}
	checkProgram := func(p *asp.Program, where string) error {
		if p == nil {
			return nil
		}
		for _, r := range p.Rules {
			for _, l := range r.Body {
				if l.IsCmp {
					continue
				}
				if _, clash := headPreds[l.Atom.Predicate]; clash {
					return fmt.Errorf("ilasp: %s rule %q references candidate head predicate %s; use Learn", where, r.String(), l.Atom.Predicate)
				}
			}
			if r.Head != nil {
				if _, clash := headPreds[r.Head.Predicate]; clash {
					return fmt.Errorf("ilasp: %s rule %q defines candidate head predicate %s; use Learn", where, r.String(), r.Head.Predicate)
				}
			}
		}
		return nil
	}
	for _, c := range space {
		for _, l := range c.Rule.Body {
			if l.IsCmp {
				continue
			}
			if _, clash := headPreds[l.Atom.Predicate]; clash {
				return fmt.Errorf("ilasp: candidate %q is recursive over %s; use Learn", c.Rule.String(), l.Atom.Predicate)
			}
		}
	}
	if err := checkProgram(t.Background, "background"); err != nil {
		return err
	}
	for _, e := range t.Examples {
		if err := checkProgram(e.Context, "context of "+e.ID); err != nil {
			return err
		}
	}
	return nil
}

// indepVectors bundles the bitset coverage state LearnIndependent hands
// to the set-cover searches: one requirement bit per (example, needed
// inclusion) pair in example order, per-candidate fire signatures over
// requirement bits, and violation signatures over examples.
type indepVectors struct {
	examples []Example
	infos    []exampleInfo
	reqOff   []int
	nreq     int
	fire     []sigWords
	viol     []sigWords
}

// coverHard finds the minimal-cost subset of pool covering every
// example: all needs derived, no violations.
func coverHard(cv *indepVectors, space []Candidate, pool []int, maxRules, maxCost int) ([]int, int, error) {
	// Hard mode: a rule violating any example is unusable.
	var usable []int
	for _, ri := range pool {
		if cv.viol[ri].empty() {
			usable = append(usable, ri)
		}
	}
	for ei := range cv.examples {
		if !cv.infos[ei].feasible {
			return nil, 0, ErrNoSolution
		}
	}

	// options[q] = usable rules satisfying requirement bit q.
	options := make([][]int, cv.nreq)
	for qi := range options {
		for _, ri := range usable {
			if cv.fire[ri].get(qi) {
				options[qi] = append(options[qi], ri)
			}
		}
		if len(options[qi]) == 0 {
			return nil, 0, ErrNoSolution
		}
	}

	bestCost := maxCost
	if bestCost <= 0 {
		bestCost = 1 << 30
	}
	bestCost++ // exclusive bound
	var best []int
	chosen := make(map[int]bool)
	satisfied := make([]bool, cv.nreq)
	flipped := make([]int, 0, cv.nreq)

	var dfs func(cost int)
	dfs = func(cost int) {
		if cost >= bestCost {
			return
		}
		// Find the unsatisfied requirement with fewest options.
		pick := -1
		for qi := range options {
			if satisfied[qi] {
				continue
			}
			if pick == -1 || len(options[qi]) < len(options[pick]) {
				pick = qi
			}
		}
		if pick == -1 {
			bestCost = cost
			best = make([]int, 0, len(chosen))
			for ri := range chosen {
				best = append(best, ri)
			}
			return
		}
		if len(chosen) == maxRules {
			return
		}
		for _, ri := range options[pick] {
			if chosen[ri] {
				continue // already in: requirement would've been satisfied
			}
			chosen[ri] = true
			mark := len(flipped)
			for qi := range options {
				if !satisfied[qi] && cv.fire[ri].get(qi) {
					satisfied[qi] = true
					flipped = append(flipped, qi)
				}
			}
			dfs(cost + space[ri].Cost)
			for _, qi := range flipped[mark:] {
				satisfied[qi] = false
			}
			flipped = flipped[:mark]
			delete(chosen, ri)
		}
	}
	dfs(0)
	if best == nil {
		return nil, 0, ErrNoSolution
	}
	return best, len(cv.examples), nil
}

// Example status in the coverNoisy search, tracked per depth.
const (
	cnPending byte = iota // some requirement still unmet
	cnCovered             // all requirements met, no violation
	cnBroken              // infeasible or violated by a chosen rule
)

// coverNoisy maximises weighted coverage minus cost. Hard (zero-weight)
// examples must be covered. The search branches on the first unmet
// requirement: either one of the rules providing it is added, or the
// whole example is abandoned (paying its weight) — a complete
// branch-and-bound whose branching factor is the number of providers per
// requirement rather than the pool size. Example status is kept in
// per-depth byte arrays: a push copies the parent level and revisits
// only the pushed rule's affected examples (inverted fire/viol lists),
// so the per-node scan reads one byte per example instead of running a
// word-range allSet over its requirement bits.
func coverNoisy(cv *indepVectors, space []Candidate, pool []int, maxRules, maxCost int) ([]int, int, error) {
	if maxCost <= 0 {
		maxCost = 1 << 30
	}
	examples := cv.examples
	infos := cv.infos
	n := len(examples)

	// providers[ei][ni] = pool rules deriving need ni of example ei, in
	// cost order. fireEx/violEx invert the candidate signatures into
	// affected-example lists for the incremental status updates.
	providers := make([][][]int, n)
	for ei := range examples {
		providers[ei] = make([][]int, len(infos[ei].needs))
	}
	fireEx := make([][]int32, len(space))
	violEx := make([][]int32, len(space))
	for _, ri := range pool {
		for ei := range examples {
			fires := false
			for ni := range infos[ei].needs {
				if cv.fire[ri].get(cv.reqOff[ei] + ni) {
					providers[ei][ni] = append(providers[ei][ni], ri)
					fires = true
				}
			}
			if fires {
				fireEx[ri] = append(fireEx[ri], int32(ei))
			}
			if cv.viol[ri].get(ei) {
				violEx[ri] = append(violEx[ri], int32(ei))
			}
		}
	}

	type state struct {
		chosen    []int
		cost      int
		abandoned []bool
		abandList []int // currently abandoned examples, in path order
	}
	bestObj := 1 << 30
	var best []int
	bestCovered := -1
	found := false

	// uReq[d] holds the union fire signature of the first d chosen rules
	// (needed for first-unmet-need lookup and covered re-checks); a push
	// at depth d writes level d+1 only, so parent levels survive the
	// recursion. status[d] holds the per-example status bytes at depth d,
	// with lostD/coveredD/hardBrokenD the matching aggregates (soft
	// weight lost to broken examples, covered count, any hard example
	// broken) so a node never rescans the whole example set.
	uReq := make([]sigWords, maxRules+1)
	status := make([][]byte, maxRules+1)
	lostD := make([]int, maxRules+1)
	coveredD := make([]int, maxRules+1)
	hardBrokenD := make([]bool, maxRules+1)
	for d := 0; d <= maxRules; d++ {
		uReq[d] = newSig(cv.nreq)
		status[d] = make([]byte, n)
	}
	for ei := range examples {
		switch {
		case !infos[ei].feasible:
			status[0][ei] = cnBroken
			if examples[ei].Weight <= 0 {
				hardBrokenD[0] = true
			} else {
				lostD[0] += examples[ei].Weight
			}
		case uReq[0].allSet(cv.reqOff[ei], cv.reqOff[ei+1]):
			status[0][ei] = cnCovered
			coveredD[0]++
		}
	}

	// dfs evaluates the node for the current chosen set. from is a lower
	// bound on the first pending example: statuses only move
	// pending→covered/broken and the abandoned set only grows down a
	// path, so the first pending index is non-decreasing with depth.
	var dfs func(st *state, from int) error
	dfs = func(st *state, from int) error {
		d := len(st.chosen)
		stat := status[d]
		if hardBrokenD[d] {
			return nil // hard example broken: infeasible branch
		}
		// Lower bound: cost plus weights of examples already lost.
		// Abandoned examples pay their weight whatever their status;
		// broken ones are already in lostD, the rest adjust here.
		lost := lostD[d]
		covered := coveredD[d]
		for _, ei := range st.abandList {
			switch stat[ei] {
			case cnPending:
				lost += examples[ei].Weight
			case cnCovered:
				lost += examples[ei].Weight
				covered--
			}
		}
		if st.cost+lost >= bestObj {
			return nil
		}
		firstPending := -1
		for ei := from; ei < n; ei++ {
			if stat[ei] == cnPending && !st.abandoned[ei] {
				firstPending = ei
				break
			}
		}
		if firstPending == -1 {
			obj := st.cost + lost
			if obj < bestObj || (obj == bestObj && covered > bestCovered) {
				bestObj = obj
				best = append([]int(nil), st.chosen...)
				bestCovered = covered
				found = true
			}
			return nil
		}
		// The pending example's first unmet need.
		req := uReq[d]
		firstNeed := -1
		for ni := range infos[firstPending].needs {
			if !req.get(cv.reqOff[firstPending] + ni) {
				firstNeed = ni
				break
			}
		}
		// Option 1: add a provider of the first unmet requirement.
		if len(st.chosen) < maxRules {
			for _, ri := range providers[firstPending][firstNeed] {
				already := false
				for _, c := range st.chosen {
					if c == ri {
						already = true
						break
					}
				}
				if already || cv.viol[ri].get(firstPending) {
					continue
				}
				c := space[ri].Cost
				if st.cost+c > maxCost || st.cost+c+lost >= bestObj {
					continue
				}
				copy(uReq[d+1], req)
				cv.fire[ri].orInto(uReq[d+1])
				child := status[d+1]
				copy(child, stat)
				lost2, cov2, hard2 := lostD[d], coveredD[d], false
				for _, ei := range violEx[ri] {
					if child[ei] == cnBroken {
						continue
					}
					if child[ei] == cnCovered {
						cov2--
					}
					child[ei] = cnBroken // violation trumps coverage
					if examples[ei].Weight <= 0 {
						hard2 = true
					} else {
						lost2 += examples[ei].Weight
					}
				}
				childReq := uReq[d+1]
				for _, ei := range fireEx[ri] {
					if child[ei] == cnPending && childReq.allSet(cv.reqOff[ei], cv.reqOff[ei+1]) {
						child[ei] = cnCovered
						cov2++
					}
				}
				lostD[d+1], coveredD[d+1], hardBrokenD[d+1] = lost2, cov2, hard2
				st.chosen = append(st.chosen, ri)
				st.cost += c
				if err := dfs(st, firstPending); err != nil {
					return err
				}
				st.chosen = st.chosen[:len(st.chosen)-1]
				st.cost -= c
			}
		}
		// Option 2: abandon the pending example (soft examples only).
		if examples[firstPending].Weight > 0 {
			st.abandoned[firstPending] = true
			st.abandList = append(st.abandList, firstPending)
			if err := dfs(st, firstPending+1); err != nil {
				return err
			}
			st.abandList = st.abandList[:len(st.abandList)-1]
			st.abandoned[firstPending] = false
		}
		return nil
	}
	st := &state{abandoned: make([]bool, n)}
	if err := dfs(st, 0); err != nil {
		return nil, 0, err
	}
	if !found {
		return nil, 0, ErrNoSolution
	}
	return best, bestCovered, nil
}
