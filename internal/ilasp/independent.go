package ilasp

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"agenp/internal/asp"
	"agenp/internal/obs"
)

// LearnIndependent is the scalable fast path of the learner for
// *non-recursive* hypothesis spaces: candidate rules whose bodies only
// reference predicates derived by the background and example contexts,
// never other candidates' heads. Under that independence condition a
// candidate's contribution to an answer set is a one-step evaluation
// against the background model, coverage becomes a per-rule vector, and
// optimal search reduces to a weighted set-cover solved by branch and
// bound — no ASP solving inside the search loop.
//
// This realizes the ILASP-style relevance optimisations the paper calls
// for under "Performance Optimization" (Section III.B): the exhaustive
// Learn search and LearnIndependent return equally optimal hypotheses on
// independent tasks, but the latter scales to the dataset sizes of the
// access-control and CAV experiments.
//
// Restrictions (checked, returning an error when unmet):
//   - every example is positive (express negatives as exclusions);
//   - every candidate has a head, and no candidate's head predicate
//     occurs in any candidate body or anywhere in the background or the
//     example contexts;
//   - background ∪ context has exactly one answer set per example.
func (t *Task) LearnIndependent(opts LearnOptions) (*Result, error) {
	t0 := time.Now()
	sp := obs.StartSpan("ilasp.learn_independent")
	defer sp.End()
	space, err := t.space()
	if err != nil {
		return nil, err
	}
	if err := checkIndependence(t, space); err != nil {
		return nil, err
	}

	maxRules := opts.MaxRules
	if maxRules <= 0 {
		maxRules = 3
	}

	// Candidate rules are evaluated |space| × |examples| times; check
	// safety and reject choice rules once here so the per-example workers
	// can use the prepared fast path.
	for _, c := range space {
		if c.Rule.IsChoice() {
			return nil, fmt.Errorf("ilasp: evaluating candidate %q: asp: EvalRule does not support choice rules", c.Rule.String())
		}
		if err := asp.CheckSafety(c.Rule); err != nil {
			return nil, fmt.Errorf("ilasp: evaluating candidate %q: %w", c.Rule.String(), err)
		}
	}

	checks := 0
	// Per-example base models and requirement vectors.
	infos := make([]exampleInfo, len(t.Examples))
	// fires[r][e] lists needed atoms rule r derives in example e;
	// violates[r][e] marks r deriving an excluded atom of e.
	fires := make([][][]int, len(space)) // rule -> example -> indices into needs
	violates := make([][]bool, len(space))
	for r := range space {
		fires[r] = make([][]int, len(t.Examples))
		violates[r] = make([]bool, len(t.Examples))
	}

	for ei, e := range t.Examples {
		if !e.Positive {
			return nil, fmt.Errorf("ilasp: LearnIndependent requires positive examples; express %q via exclusions", e.ID)
		}
		prog := asp.NewProgram()
		if t.Background != nil {
			prog.Extend(t.Background)
		}
		if e.Context != nil {
			prog.Extend(e.Context)
		}
		models, err := asp.Solve(prog, asp.SolveOptions{MaxModels: 2})
		if err != nil {
			return nil, fmt.Errorf("ilasp: base model of example %s: %w", e.ID, err)
		}
		if len(models) != 1 {
			return nil, fmt.Errorf("ilasp: example %s background has %d answer sets; LearnIndependent needs exactly 1", e.ID, len(models))
		}
		base := models[0]

		info := exampleInfo{feasible: true}
		for _, a := range e.Exclusions {
			if base.Contains(a) {
				info.feasible = false // background itself violates: no H can fix it
			}
		}
		for _, a := range e.Inclusions {
			if !base.Contains(a) {
				info.needs = append(info.needs, a)
			}
		}
		infos[ei] = info
		if !info.feasible {
			continue
		}

		exclKeys := make(map[string]struct{}, len(e.Exclusions))
		for _, a := range e.Exclusions {
			exclKeys[a.Key()] = struct{}{}
		}
		needKey := make(map[string]int, len(info.needs))
		for i, a := range info.needs {
			needKey[a.Key()] = i
		}
		// Candidate evaluation is the hot loop (|space| × |examples|
		// one-step evaluations); shard it across workers over a
		// predicate-indexed view of the base model. Each worker writes
		// disjoint rows of fires/violates, so no locking beyond the
		// error slot is needed.
		ix := asp.NewModelIndex(base)
		workers := opts.Parallelism
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(space) {
			workers = len(space)
		}
		if workers < 1 {
			workers = 1
		}
		var (
			wg      sync.WaitGroup
			errOnce sync.Once
			evalErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ri := w; ri < len(space); ri += workers {
					derived, err := ix.EvalPrepared(space[ri].Rule)
					if err != nil {
						errOnce.Do(func() {
							evalErr = fmt.Errorf("ilasp: evaluating candidate %q: %w", space[ri].Rule.String(), err)
						})
						return
					}
					for _, d := range derived {
						if _, bad := exclKeys[d.Key()]; bad {
							violates[ri][ei] = true
						}
						if ni, ok := needKey[d.Key()]; ok {
							fires[ri][ei] = append(fires[ri][ei], ni)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		checks += len(space)
		if evalErr != nil {
			return nil, evalErr
		}
	}

	// Candidate pool: rules that help somewhere. Rules deriving no
	// needed atom can only add cost or violations, so optimal solutions
	// never include them.
	var pool []int
	for ri := range space {
		helps := false
		for ei := range t.Examples {
			if len(fires[ri][ei]) > 0 {
				helps = true
				break
			}
		}
		if helps {
			pool = append(pool, ri)
		}
	}
	sort.SliceStable(pool, func(a, b int) bool { return space[pool[a]].Cost < space[pool[b]].Cost })

	var sol []int
	var covered int
	if opts.Noise {
		sol, covered, err = coverNoisy(t.Examples, space, pool, infos, fires, violates, maxRules, opts.MaxCost)
	} else {
		sol, covered, err = coverHard(t.Examples, space, pool, infos, fires, violates, maxRules, opts.MaxCost)
	}
	if err != nil {
		return nil, err
	}
	sort.Ints(sol)
	rules := make([]asp.Rule, len(sol))
	cost := 0
	for i, ri := range sol {
		rules[i] = space[ri].Rule
		cost += space[ri].Cost
	}
	statIndependentLearns.Inc()
	statIndependentChecks.Add(int64(checks))
	statIndependentDur.ObserveSince(t0)
	if obs.TracingEnabled() {
		sp.SetAttr("candidates", strconv.Itoa(len(space)))
		sp.SetAttr("examples", strconv.Itoa(len(t.Examples)))
		sp.SetAttr("chosen", strconv.Itoa(len(sol)))
	}
	return &Result{
		Hypothesis: rules,
		Cost:       cost,
		Covered:    covered,
		Total:      len(t.Examples),
		Checks:     checks,
	}, nil
}

// exampleInfo captures, per example, whether any hypothesis can cover
// it and which inclusion atoms the background does not already derive.
type exampleInfo struct {
	feasible bool
	needs    []asp.Atom
}

// checkIndependence verifies the non-recursiveness condition.
func checkIndependence(t *Task, space []Candidate) error {
	headPreds := make(map[string]struct{})
	for _, c := range space {
		if c.Rule.Head == nil {
			return fmt.Errorf("ilasp: LearnIndependent requires headed candidates, found constraint %q", c.Rule.String())
		}
		headPreds[c.Rule.Head.Predicate] = struct{}{}
	}
	checkProgram := func(p *asp.Program, where string) error {
		if p == nil {
			return nil
		}
		for _, r := range p.Rules {
			for _, l := range r.Body {
				if l.IsCmp {
					continue
				}
				if _, clash := headPreds[l.Atom.Predicate]; clash {
					return fmt.Errorf("ilasp: %s rule %q references candidate head predicate %s; use Learn", where, r.String(), l.Atom.Predicate)
				}
			}
			if r.Head != nil {
				if _, clash := headPreds[r.Head.Predicate]; clash {
					return fmt.Errorf("ilasp: %s rule %q defines candidate head predicate %s; use Learn", where, r.String(), r.Head.Predicate)
				}
			}
		}
		return nil
	}
	for _, c := range space {
		for _, l := range c.Rule.Body {
			if l.IsCmp {
				continue
			}
			if _, clash := headPreds[l.Atom.Predicate]; clash {
				return fmt.Errorf("ilasp: candidate %q is recursive over %s; use Learn", c.Rule.String(), l.Atom.Predicate)
			}
		}
	}
	if err := checkProgram(t.Background, "background"); err != nil {
		return err
	}
	for _, e := range t.Examples {
		if err := checkProgram(e.Context, "context of "+e.ID); err != nil {
			return err
		}
	}
	return nil
}

// requirement identifies one needed atom of one example.
type requirement struct {
	example int
	need    int
}

// coverHard finds the minimal-cost subset of pool covering every
// example: all needs derived, no violations.
func coverHard(examples []Example, space []Candidate, pool []int,
	infos []exampleInfo, fires [][][]int, violates [][]bool, maxRules, maxCost int) ([]int, int, error) {

	// Hard mode: a rule violating any example is unusable.
	var usable []int
	for _, ri := range pool {
		bad := false
		for ei := range examples {
			if violates[ri][ei] {
				bad = true
				break
			}
		}
		if !bad {
			usable = append(usable, ri)
		}
	}

	var reqs []requirement
	for ei := range examples {
		if !infos[ei].feasible {
			return nil, 0, ErrNoSolution
		}
		for ni := range infos[ei].needs {
			reqs = append(reqs, requirement{example: ei, need: ni})
		}
	}
	// options[q] = usable rules satisfying requirement q.
	options := make([][]int, len(reqs))
	for qi, q := range reqs {
		for _, ri := range usable {
			for _, ni := range fires[ri][q.example] {
				if ni == q.need {
					options[qi] = append(options[qi], ri)
					break
				}
			}
		}
		if len(options[qi]) == 0 {
			return nil, 0, ErrNoSolution
		}
	}

	bestCost := maxCost
	if bestCost <= 0 {
		bestCost = 1 << 30
	}
	bestCost++ // exclusive bound
	var best []int
	chosen := make(map[int]bool)
	satisfied := make([]bool, len(reqs))

	satisfies := func(ri, qi int) bool {
		q := reqs[qi]
		for _, ni := range fires[ri][q.example] {
			if ni == q.need {
				return true
			}
		}
		return false
	}

	var dfs func(cost int)
	dfs = func(cost int) {
		if cost >= bestCost {
			return
		}
		// Find the unsatisfied requirement with fewest options.
		pick := -1
		for qi := range reqs {
			if satisfied[qi] {
				continue
			}
			if pick == -1 || len(options[qi]) < len(options[pick]) {
				pick = qi
			}
		}
		if pick == -1 {
			bestCost = cost
			best = make([]int, 0, len(chosen))
			for ri := range chosen {
				best = append(best, ri)
			}
			return
		}
		if len(chosen) == maxRules {
			return
		}
		for _, ri := range options[pick] {
			if chosen[ri] {
				continue // already in: requirement would've been satisfied
			}
			chosen[ri] = true
			var flipped []int
			for qi := range reqs {
				if !satisfied[qi] && satisfies(ri, qi) {
					satisfied[qi] = true
					flipped = append(flipped, qi)
				}
			}
			dfs(cost + space[ri].Cost)
			for _, qi := range flipped {
				satisfied[qi] = false
			}
			delete(chosen, ri)
		}
	}
	dfs(0)
	if best == nil {
		return nil, 0, ErrNoSolution
	}
	return best, len(examples), nil
}

// coverNoisy maximises weighted coverage minus cost. Hard (zero-weight)
// examples must be covered. The search branches on the first unmet
// requirement: either one of the rules providing it is added, or the
// whole example is abandoned (paying its weight) — a complete
// branch-and-bound whose branching factor is the number of providers per
// requirement rather than the pool size.
func coverNoisy(examples []Example, space []Candidate, pool []int,
	infos []exampleInfo, fires [][][]int, violates [][]bool, maxRules, maxCost int) ([]int, int, error) {

	if maxCost <= 0 {
		maxCost = 1 << 30
	}
	n := len(examples)

	// providers[ei][ni] = pool rules deriving need ni of example ei,
	// in cost order.
	providers := make([][][]int, n)
	for ei := range examples {
		providers[ei] = make([][]int, len(infos[ei].needs))
		for _, ri := range pool {
			for _, ni := range fires[ri][ei] {
				providers[ei][ni] = append(providers[ei][ni], ri)
			}
		}
	}

	type state struct {
		chosen    []int
		cost      int
		abandoned []bool
	}
	bestObj := 1 << 30
	var best []int
	bestCovered := -1
	found := false

	// exampleStatus computes, under the chosen rules, whether example ei
	// is fully covered, pending (not covered, not broken), or broken
	// (violated by a chosen rule or infeasible).
	status := func(st *state, ei int) (covered, broken bool) {
		if !infos[ei].feasible {
			return false, true
		}
		for _, ri := range st.chosen {
			if violates[ri][ei] {
				return false, true
			}
		}
		for ni := range infos[ei].needs {
			has := false
			for _, ri := range st.chosen {
				for _, f := range fires[ri][ei] {
					if f == ni {
						has = true
						break
					}
				}
				if has {
					break
				}
			}
			if !has {
				return false, false
			}
		}
		return true, false
	}

	var dfs func(st *state) error
	dfs = func(st *state) error {
		// Lower bound: cost plus weights of examples already lost.
		lost := 0
		covered := 0
		firstPending := -1
		firstNeed := -1
		for ei := range examples {
			if st.abandoned[ei] {
				if examples[ei].Weight <= 0 {
					return nil // hard example abandoned: infeasible branch
				}
				lost += examples[ei].Weight
				continue
			}
			cov, broken := status(st, ei)
			switch {
			case broken:
				if examples[ei].Weight <= 0 {
					return nil
				}
				lost += examples[ei].Weight
			case cov:
				covered++
			default:
				if firstPending == -1 {
					firstPending = ei
					// Find its first unmet need.
					for ni := range infos[ei].needs {
						has := false
						for _, ri := range st.chosen {
							for _, f := range fires[ri][ei] {
								if f == ni {
									has = true
									break
								}
							}
							if has {
								break
							}
						}
						if !has {
							firstNeed = ni
							break
						}
					}
				}
			}
		}
		if st.cost+lost >= bestObj {
			return nil
		}
		if firstPending == -1 {
			obj := st.cost + lost
			if obj < bestObj || (obj == bestObj && covered > bestCovered) {
				bestObj = obj
				best = append([]int(nil), st.chosen...)
				bestCovered = covered
				found = true
			}
			return nil
		}
		// Option 1: add a provider of the first unmet requirement.
		if len(st.chosen) < maxRules {
			for _, ri := range providers[firstPending][firstNeed] {
				already := false
				for _, c := range st.chosen {
					if c == ri {
						already = true
						break
					}
				}
				if already || violates[ri][firstPending] {
					continue
				}
				c := space[ri].Cost
				if st.cost+c > maxCost || st.cost+c+lost >= bestObj {
					continue
				}
				st.chosen = append(st.chosen, ri)
				st.cost += c
				if err := dfs(st); err != nil {
					return err
				}
				st.chosen = st.chosen[:len(st.chosen)-1]
				st.cost -= c
			}
		}
		// Option 2: abandon the pending example (soft examples only).
		if examples[firstPending].Weight > 0 {
			st.abandoned[firstPending] = true
			if err := dfs(st); err != nil {
				return err
			}
			st.abandoned[firstPending] = false
		}
		return nil
	}
	st := &state{abandoned: make([]bool, n)}
	if err := dfs(st); err != nil {
		return nil, 0, err
	}
	if !found {
		return nil, 0, ErrNoSolution
	}
	return best, bestCovered, nil
}
