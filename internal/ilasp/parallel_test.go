package ilasp_test

import (
	"errors"
	"strings"
	"testing"

	"agenp/internal/apps/datashare"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
)

// datashareTask builds an exhaustive-learnable sharing task: offers are
// restricted to non-sigint types so the ground truth needs only two deny
// rules (low trust, low quality) and the exact search stays small.
func datashareTask(t *testing.T) *ilasp.Task {
	t.Helper()
	var offers []datashare.Offer
	for _, o := range datashare.Generate(7, 40) {
		if o.Type == "sigint" {
			continue
		}
		offers = append(offers, o)
		if len(offers) == 12 {
			break
		}
	}
	if len(offers) < 12 {
		t.Fatalf("sample too small: %d offers", len(offers))
	}
	return &ilasp.Task{
		Bias:     datashare.Bias(),
		Examples: datashare.LearningExamples(offers, 0),
	}
}

func resultsEqual(a, b *ilasp.Result) bool {
	if a.Cost != b.Cost || a.Covered != b.Covered || a.Total != b.Total || a.Checks != b.Checks {
		return false
	}
	if len(a.Hypothesis) != len(b.Hypothesis) {
		return false
	}
	for i := range a.Hypothesis {
		if a.Hypothesis[i].String() != b.Hypothesis[i].String() {
			return false
		}
	}
	return true
}

// TestParallelLearnMatchesSerial runs the exhaustive learner serially and
// with an 8-wide worker pool on the same datashare task: the hypothesis,
// cost, coverage, and check count must be byte-identical. Run under
// -race this also exercises the oracle's concurrency safety.
func TestParallelLearnMatchesSerial(t *testing.T) {
	opts := ilasp.LearnOptions{MaxRules: 2}

	opts.Parallelism = 1
	serial, err := datashareTask(t).Learn(opts)
	if err != nil {
		t.Fatalf("serial Learn: %v", err)
	}
	opts.Parallelism = 8
	parallel, err := datashareTask(t).Learn(opts)
	if err != nil {
		t.Fatalf("parallel Learn: %v", err)
	}
	if !resultsEqual(serial, parallel) {
		t.Fatalf("parallel result differs from serial:\nserial:   %v (checks %d)\nparallel: %v (checks %d)",
			serial, serial.Checks, parallel, parallel.Checks)
	}
	if serial.Covered != serial.Total {
		t.Fatalf("covered %d/%d, want full coverage", serial.Covered, serial.Total)
	}
	if len(serial.Hypothesis) == 0 {
		t.Fatal("expected a non-empty hypothesis")
	}
}

// TestParallelNoisyLearnMatchesSerial repeats the determinism check in
// noise-tolerant mode, whose branch-and-bound cutoffs depend on the
// replay order of speculative checks.
func TestParallelNoisyLearnMatchesSerial(t *testing.T) {
	mk := func() *ilasp.Task {
		task := datashareTask(t)
		for i := range task.Examples {
			task.Examples[i].Weight = 1 + i%3
		}
		return task
	}
	opts := ilasp.LearnOptions{MaxRules: 2, Noise: true}

	opts.Parallelism = 1
	serial, err := mk().Learn(opts)
	if err != nil {
		t.Fatalf("serial Learn: %v", err)
	}
	opts.Parallelism = 8
	parallel, err := mk().Learn(opts)
	if err != nil {
		t.Fatalf("parallel Learn: %v", err)
	}
	if !resultsEqual(serial, parallel) {
		t.Fatalf("parallel result differs from serial:\nserial:   %v (checks %d)\nparallel: %v (checks %d)",
			serial, serial.Checks, parallel, parallel.Checks)
	}
}

// TestParallelLearnPropagatesError checks first-error cancellation: an
// example whose context fails to ground must abort a parallel search
// with the same wrapped error a serial run reports.
func TestParallelLearnPropagatesError(t *testing.T) {
	unsafe := asp.NewRule(asp.NewAtom("p", asp.Variable{Name: "X"})) // p(X). — unsafe
	task := datashareTask(t)
	task.Examples[4].Context.Add(unsafe)

	opts := ilasp.LearnOptions{MaxRules: 2}
	opts.Parallelism = 1
	_, serialErr := task.Learn(opts)
	opts.Parallelism = 8
	_, parallelErr := task.Learn(opts)

	for _, err := range []error{serialErr, parallelErr} {
		if err == nil {
			t.Fatal("expected an error from the unsafe example context")
		}
		if !strings.Contains(err.Error(), "checking example o5") {
			t.Fatalf("error %q does not name the failing example", err)
		}
	}
	if serialErr.Error() != parallelErr.Error() {
		t.Fatalf("serial and parallel errors differ:\nserial:   %v\nparallel: %v", serialErr, parallelErr)
	}
}

// TestParallelCheckBudget checks that MaxChecks accounting is unchanged
// by parallelism: the budget error fires on the same logical check.
func TestParallelCheckBudget(t *testing.T) {
	for _, par := range []int{1, 8} {
		opts := ilasp.LearnOptions{MaxRules: 2, MaxChecks: 5, Parallelism: par}
		_, err := datashareTask(t).Learn(opts)
		if !errors.Is(err, ilasp.ErrCheckBudget) {
			t.Fatalf("parallelism %d: err = %v, want ErrCheckBudget", par, err)
		}
	}
}
