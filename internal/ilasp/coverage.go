package ilasp

import (
	"fmt"
	"strconv"

	"agenp/internal/asp"
)

// coverageEngine performs example-coverage checks with ground-once
// caching: the fixed part of every check — background ∪ example context
// plus the example's inclusion/exclusion constraints — is grounded once
// per example into an asp.IncrementalGrounder, and every candidate rule
// is compiled once up front. A coverage check then extends the cached
// grounding with the hypothesis's compiled rules (re-instantiating only
// the base rules the hypothesis can affect through the predicate
// dependency graph) instead of re-grounding the whole program.
//
// Per-example grounders are built lazily, so examples the search never
// reaches cost nothing.
//
// Concurrency: covers may be called concurrently for *distinct* example
// indices (each index owns its grounder), but never concurrently for the
// same index. The search's chunked fan-out guarantees this: a chunk
// checks distinct examples of one hypothesis.
type coverageEngine struct {
	task  *Task
	space []Candidate

	// compiled[i] is candidate i pre-compiled for Extend; compileErr[i]
	// holds its compile (safety) error, surfaced when the candidate is
	// first used — matching the lazy error behaviour of Task.Covers.
	compiled   []*asp.CompiledRules
	compileErr []error

	slots []engineSlot
}

// engineSlot is the per-example cached grounding, plus the example's
// reusable solver scratch and extension-list buffer. Slots are never
// shared across examples, so per-slot scratch keeps the engine safe for
// the search's concurrent distinct-example checks.
type engineSlot struct {
	ig    *asp.IncrementalGrounder
	err   error
	init  bool
	sc    asp.SolverScratch
	parts []*asp.CompiledRules
}

func newCoverageEngine(t *Task, space []Candidate) *coverageEngine {
	ce := &coverageEngine{
		task:       t,
		space:      space,
		compiled:   make([]*asp.CompiledRules, len(space)),
		compileErr: make([]error, len(space)),
		slots:      make([]engineSlot, len(t.Examples)),
	}
	for i, c := range space {
		ce.compiled[i], ce.compileErr[i] =
			asp.CompileExtension([]asp.Rule{c.Rule}, "h"+strconv.Itoa(i))
	}
	return ce
}

// covers reports whether the hypothesis (candidate indices) covers
// example ei, with the same semantics as Task.Covers: brave entailment
// of the partial interpretation for positive examples, absence of a
// witnessing answer set for negative ones.
func (ce *coverageEngine) covers(chosen []int, ei int) (bool, error) {
	e := ce.task.Examples[ei]
	slot := &ce.slots[ei]
	if !slot.init {
		slot.init = true
		prog := asp.NewProgram()
		if ce.task.Background != nil {
			prog.Extend(ce.task.Background)
		}
		if e.Context != nil {
			prog.Extend(e.Context)
		}
		// Force the partial interpretation: a witnessing answer set must
		// contain all inclusions and no exclusions.
		for _, a := range e.Inclusions {
			prog.Add(asp.NewConstraint(asp.Neg(a)))
		}
		for _, a := range e.Exclusions {
			prog.Add(asp.NewConstraint(asp.PosLit(a)))
		}
		slot.ig, slot.err = asp.NewIncrementalGrounder(prog, asp.GroundingOptions{})
	}
	if slot.err != nil {
		return false, fmt.Errorf("ilasp: checking example %s: %w", e.ID, slot.err)
	}
	parts := slot.parts[:0]
	for _, ci := range chosen {
		if err := ce.compileErr[ci]; err != nil {
			return false, fmt.Errorf("ilasp: checking example %s: %w", e.ID, err)
		}
		parts = append(parts, ce.compiled[ci])
	}
	slot.parts = parts
	gp, err := slot.ig.Extend(parts...)
	if err != nil {
		return false, fmt.Errorf("ilasp: checking example %s: %w", e.ID, err)
	}
	models, err := asp.SolveGroundScratch(gp, asp.SolveOptions{MaxModels: 1}, &slot.sc)
	slot.ig.Reset()
	if err != nil {
		return false, fmt.Errorf("ilasp: checking example %s: %w", e.ID, err)
	}
	witness := len(models) > 0
	if e.Positive {
		return witness, nil
	}
	return !witness, nil
}
