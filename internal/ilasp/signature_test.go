package ilasp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"agenp/internal/asp"
)

func TestSigWordsAllSet(t *testing.T) {
	s := newSig(200)
	for i := 10; i < 140; i++ {
		s.set(i)
	}
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{10, 140, true},
		{9, 140, false},
		{10, 141, false},
		{10, 11, true},
		{0, 0, true},    // empty range
		{64, 128, true}, // whole middle word
		{63, 65, true},  // straddles a word boundary
		{139, 140, true},
		{140, 141, false},
	}
	for _, c := range cases {
		if got := s.allSet(c.lo, c.hi); got != c.want {
			t.Errorf("allSet(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestSigWordsSubsetEmpty(t *testing.T) {
	a, b := newSig(130), newSig(130)
	if !a.empty() {
		t.Fatal("fresh sig not empty")
	}
	a.set(5)
	a.set(129)
	if a.empty() {
		t.Fatal("set sig reported empty")
	}
	if a.subsetOf(b) {
		t.Fatal("non-empty subset of empty")
	}
	a.orInto(b)
	b.set(64)
	if !a.subsetOf(b) {
		t.Fatal("subset after orInto failed")
	}
	if b.subsetOf(a) {
		t.Fatal("superset reported as subset")
	}
}

// sigTask builds a vectorizable task with an explicit candidate space:
// candidate heads (q/1) feed nothing, the background has one answer set
// per example, and the space contains an identical-signature duplicate
// pair (q(1) :- p(1) versus the costlier q(1) :- p(1), p(2)).
func sigTask(t testing.TB, weight int) *Task {
	t.Helper()
	bg, err := asp.Parse("p(1). p(2). p(3).")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := asp.Parse(`
		q(X) :- p(X).
		q(1) :- p(1).
		q(2) :- p(2).
		q(3) :- p(3).
		r(1) :- p(1).
		q(1) :- p(1), p(2).
	`)
	if err != nil {
		t.Fatal(err)
	}
	var space []Candidate
	for _, r := range rules.Rules {
		space = append(space, Candidate{Rule: r, Cost: len(r.Body) + 1})
	}
	q := func(v int) asp.Atom { return asp.NewAtom("q", asp.Integer{Value: v}) }
	r1 := asp.NewAtom("r", asp.Integer{Value: 1})
	return &Task{
		Background: bg,
		Space:      space,
		Examples: []Example{
			{ID: "e1", Positive: true, Inclusions: []asp.Atom{q(1), q(2)}, Exclusions: []asp.Atom{r1}},
			{ID: "e2", Positive: true, Inclusions: []asp.Atom{q(2)}},
			{ID: "e3", Positive: false, Inclusions: []asp.Atom{q(3)}, Weight: weight},
			{ID: "e4", Positive: true, Inclusions: []asp.Atom{q(1)}, Weight: weight},
		},
	}
}

// TestSignatureDifferential checks the tentpole invariant two ways:
// the signature-served search returns the same hypothesis and coverage
// as the re-solve oracle path (dominance and subsumption pruning may
// legitimately evaluate fewer hypotheses, so Checks can only shrink),
// and within each path a parallel run is byte-identical to a serial one
// — including the check count.
func TestSignatureDifferential(t *testing.T) {
	for _, noise := range []bool{false, true} {
		t.Run(fmt.Sprintf("noise=%v", noise), func(t *testing.T) {
			weight := 0
			if noise {
				weight = 5
			}
			run := func(noVectors bool, par int) (*Solution, *taskOracle, error) {
				task := sigTask(t, weight)
				o := newTaskOracle(task, task.Space)
				o.noVectors = noVectors
				sol, err := Search(o, ExampleWeights(task.Examples),
					LearnOptions{MaxRules: 3, Noise: noise, Parallelism: par})
				return sol, o, err
			}

			want, _, wantErr := run(true, 1)
			got, sig, gotErr := run(false, 1)
			if wantErr != nil || gotErr != nil {
				t.Fatalf("errors: oracle=%v signatures=%v", wantErr, gotErr)
			}
			if sig.vec == nil {
				t.Fatal("task unexpectedly not vectorizable")
			}
			if !reflect.DeepEqual(want.Chosen, got.Chosen) {
				t.Errorf("Chosen: oracle %v, signatures %v", want.Chosen, got.Chosen)
			}
			if want.Covered != got.Covered {
				t.Errorf("Covered: oracle %d, signatures %d", want.Covered, got.Covered)
			}
			if got.Checks > want.Checks {
				t.Errorf("signature path issued %d checks, more than the oracle path's %d", got.Checks, want.Checks)
			}
			if want.Classes != nil {
				t.Errorf("re-solve path reported Classes %v", want.Classes)
			}
			if got.Classes == nil || len(got.Classes) != len(got.Chosen) {
				t.Errorf("signature path Classes = %v, want one class per chosen", got.Classes)
			}

			// Serial/parallel byte-identity within each path.
			for _, noVec := range []bool{false, true} {
				serial, _, err1 := run(noVec, 1)
				parallel, _, err2 := run(noVec, 4)
				if err1 != nil || err2 != nil {
					t.Fatalf("noVectors=%v: errors: serial=%v parallel=%v", noVec, err1, err2)
				}
				if !reflect.DeepEqual(serial.Chosen, parallel.Chosen) ||
					serial.Covered != parallel.Covered || serial.Checks != parallel.Checks {
					t.Errorf("noVectors=%v: serial (%v, %d, %d) != parallel (%v, %d, %d)",
						noVec, serial.Chosen, serial.Covered, serial.Checks,
						parallel.Chosen, parallel.Covered, parallel.Checks)
				}
			}
		})
	}
}

// TestSignatureBudgetDifferential: MaxChecks must exhaust at the same
// logical check on both paths.
func TestSignatureBudgetDifferential(t *testing.T) {
	for _, budget := range []int{1, 3, 7} {
		opts := LearnOptions{MaxRules: 3, MaxChecks: budget}

		task := sigTask(t, 0)
		ref := newTaskOracle(task, task.Space)
		ref.noVectors = true
		_, wantErr := Search(ref, ExampleWeights(task.Examples), opts)

		task2 := sigTask(t, 0)
		sig := newTaskOracle(task2, task2.Space)
		_, gotErr := Search(sig, ExampleWeights(task2.Examples), opts)

		if !errors.Is(wantErr, ErrCheckBudget) || !errors.Is(gotErr, ErrCheckBudget) {
			t.Fatalf("budget %d: oracle err %v, signature err %v; want ErrCheckBudget on both", budget, wantErr, gotErr)
		}
	}
}

// TestSignatureClasses: a chosen candidate's dominance class lists every
// identical-signature candidate, cheapest first, and the costlier
// duplicate is never chosen.
func TestSignatureClasses(t *testing.T) {
	task := sigTask(t, 0)
	o := newTaskOracle(task, task.Space)
	sol, err := Search(o, ExampleWeights(task.Examples), LearnOptions{MaxRules: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Candidate 1 is q(1) :- p(1); candidate 5 is the same-signature
	// q(1) :- p(1), p(2) at higher cost.
	foundDup := false
	for k, ci := range sol.Chosen {
		if ci == 5 {
			t.Error("costlier duplicate (index 5) chosen over its representative")
		}
		if ci == 1 {
			if !reflect.DeepEqual(sol.Classes[k], []int{1, 5}) {
				t.Errorf("class of candidate 1 = %v, want [1 5]", sol.Classes[k])
			}
			foundDup = true
		}
	}
	if !foundDup {
		t.Fatalf("expected candidate 1 in solution, got %v", sol.Chosen)
	}
}

// TestVectorizeFallbacks: recursive spaces, choice candidates, and
// multi-model backgrounds must all return nil (full oracle fallback).
func TestVectorizeFallbacks(t *testing.T) {
	bg, err := asp.Parse("p(1).")
	if err != nil {
		t.Fatal(err)
	}
	recursive, err := asp.Parse("q(X) :- p(X).\np(X) :- q(X).")
	if err != nil {
		t.Fatal(err)
	}
	var space []Candidate
	for _, r := range recursive.Rules {
		space = append(space, Candidate{Rule: r, Cost: 1})
	}
	task := &Task{Background: bg, Space: space,
		Examples: []Example{{ID: "e", Positive: true}}}
	if v := vectorize(task, space); v != nil {
		t.Error("recursive space vectorized")
	}

	multi, err := asp.Parse("p(1).\n{a}.")
	if err != nil {
		t.Fatal(err)
	}
	qRule, err := asp.Parse("q(X) :- p(X).")
	if err != nil {
		t.Fatal(err)
	}
	space2 := []Candidate{{Rule: qRule.Rules[0], Cost: 1}}
	task2 := &Task{Background: multi, Space: space2,
		Examples: []Example{{ID: "e", Positive: true}}}
	if v := vectorize(task2, space2); v != nil {
		t.Error("multi-model background vectorized")
	}
}

// TestLearnIndependentMatchesSearch: the bitset set-cover and the
// general search agree on the independent task (both optimal).
// LearnIndependent requires positive examples, so the negative example
// of sigTask is re-expressed as a positive one with an exclusion.
func TestLearnIndependentMatchesSearch(t *testing.T) {
	for _, noise := range []bool{false, true} {
		weight := 0
		if noise {
			weight = 5
		}
		task := sigTask(t, weight)
		q3 := asp.NewAtom("q", asp.Integer{Value: 3})
		task.Examples[2] = Example{ID: "e3", Positive: true, Exclusions: []asp.Atom{q3}, Weight: weight}
		opts := LearnOptions{MaxRules: 3, Noise: noise}
		fast, err := task.LearnIndependent(opts)
		if err != nil {
			t.Fatalf("noise=%v: LearnIndependent: %v", noise, err)
		}
		slow, err := task.Learn(opts)
		if err != nil {
			t.Fatalf("noise=%v: Learn: %v", noise, err)
		}
		if fast.Cost != slow.Cost || fast.Covered != slow.Covered {
			t.Errorf("noise=%v: LearnIndependent (cost %d, covered %d) != Learn (cost %d, covered %d)",
				noise, fast.Cost, fast.Covered, slow.Cost, slow.Covered)
		}
	}
}
