package ilasp_test

import (
	"testing"

	"agenp/internal/ilasp"
	"agenp/internal/obs"
)

// TestChecksBackedByCounter pins down the deprecation contract of
// Solution.Checks: the field stays byte-identical between serial and
// parallel runs, and the same total is flushed to the telemetry counter
// "ilasp.search.checks" — so callers migrating off the field lose no
// information. Tests in a package run sequentially, so counter deltas
// around a Learn call are attributable to it.
func TestChecksBackedByCounter(t *testing.T) {
	checksCtr := obs.C("ilasp.search.checks")
	hypsCtr := obs.C("ilasp.search.hypotheses")

	learn := func(par int) *ilasp.Result {
		t.Helper()
		res, err := datashareTask(t).Learn(ilasp.LearnOptions{MaxRules: 2, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: Learn: %v", par, err)
		}
		return res
	}

	base := checksCtr.Value()
	serial := learn(1)
	serialDelta := checksCtr.Value() - base
	if int64(serial.Checks) != serialDelta {
		t.Fatalf("serial: Solution.Checks = %d but counter delta = %d", serial.Checks, serialDelta)
	}

	hypsBase := hypsCtr.Value()
	base = checksCtr.Value()
	parallel := learn(8)
	parallelDelta := checksCtr.Value() - base
	if int64(parallel.Checks) != parallelDelta {
		t.Fatalf("parallel: Solution.Checks = %d but counter delta = %d", parallel.Checks, parallelDelta)
	}

	if serial.Checks != parallel.Checks {
		t.Fatalf("check counts diverge: serial %d, parallel %d", serial.Checks, parallel.Checks)
	}
	if serialDelta != parallelDelta {
		t.Fatalf("counter deltas diverge: serial %d, parallel %d", serialDelta, parallelDelta)
	}
	if hypsCtr.Value() == hypsBase {
		t.Fatal("ilasp.search.hypotheses did not advance during Learn")
	}
}
