package ilasp

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"agenp/internal/obs"
)

// Oracle abstracts a learning problem for the optimal subset search: a
// candidate space and a per-example coverage check. Package ilasp's own
// tasks and package asglearn's answer-set-grammar tasks (Definition 3 of
// the paper) both reduce to this interface — realizing the paper's
// "transformation into a task that can be solved by the ILASP system":
// both searches are the same optimal subset search, differing only in
// the coverage oracle.
//
// Covers must be safe for concurrent calls with distinct example indices
// (the search fans coverage checks out across a worker pool); it is never
// called concurrently for the same index.
type Oracle interface {
	// Candidates returns the hypothesis space.
	Candidates() []Candidate
	// Covers reports whether the hypothesis (candidate indices) covers
	// example i.
	Covers(chosen []int, i int) (bool, error)
}

// Solution is the outcome of a Search.
type Solution struct {
	// Chosen lists indices into the oracle's candidate space.
	Chosen []int
	// Classes, when the search ran on coverage signatures, lists for each
	// chosen candidate its dominance equivalence class: every candidate
	// index with an identical coverage signature (the chosen one
	// included), cheapest first. Swapping a chosen candidate for any
	// same-cost member of its class yields an equally optimal hypothesis.
	// Nil when the oracle was not vectorizable.
	Classes [][]int
	// Covered counts covered examples.
	Covered int
	// Checks counts coverage queries the search issued. Memoized oracles
	// may answer some from cache; the count is of logical queries, so it
	// is identical for serial and parallel runs.
	//
	// Deprecated: Checks is kept for compatibility; it is backed by the
	// obs counter "ilasp.search.checks" (the checker counts once and
	// flushes the same total to both), so new code should read the
	// telemetry registry instead. The value remains byte-identical
	// between serial and parallel runs.
	Checks int
}

// Search finds an optimal hypothesis for an oracle over len(weights)
// examples.
//
// Hard mode (default): minimal total cost covering every example, found
// by iterative deepening on exact cost (ILASP-style optimality).
// Noise mode (opts.Noise): minimises cost + sum of weights of uncovered
// soft examples; zero-weight (hard) examples must be covered;
// branch-and-bound prunes subtrees whose cost already exceeds the best
// objective.
//
// Coverage checks run on a bounded worker pool of opts.Parallelism
// workers (GOMAXPROCS when 0). Parallelism never changes the result:
// checks are fetched speculatively in chunks and replayed in example
// order, so the chosen hypothesis, coverage, check count, and MaxChecks
// budgeting are byte-identical to a serial run.
func Search(o Oracle, weights []int, opts LearnOptions) (*Solution, error) {
	t0 := time.Now()
	sp := obs.StartSpan("ilasp.search")
	defer sp.End()
	maxRules := opts.MaxRules
	if maxRules <= 0 {
		maxRules = 3
	}
	cands := o.Candidates()
	// Candidates must be in non-decreasing cost order for pruning.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cands[order[a]].Cost < cands[order[b]].Cost })

	maxCost := opts.MaxCost
	if maxCost <= 0 {
		// Default: the maxRules most expensive candidates.
		costs := make([]int, len(cands))
		for i, c := range cands {
			costs[i] = c.Cost
		}
		sort.Sort(sort.Reverse(sort.IntSlice(costs)))
		for i := 0; i < len(costs) && i < maxRules; i++ {
			maxCost += costs[i]
		}
	}

	c := newChecker(o, len(weights), opts)
	defer c.close()

	// Signature fast path: when the oracle decomposes into per-candidate
	// coverage bitsets, serve every check from word-wide OR/AND, collapse
	// identical-signature candidates into dominance classes, and let the
	// noisy search skip subsumed branches. Verdict replay stays in
	// example order, so the solution, check count, and budgeting are
	// byte-identical to the re-solve path.
	var classes [][]int
	var classOf []int
	var skip []bool
	if so, ok := o.(sigOracle); ok {
		if vec := so.signatures(); vec != nil && vec.n == len(weights) {
			c.vec = vec
			c.uLevels = make([]unionSig, maxRules+1)
			classes, classOf, skip = collapseClasses(cands, order, vec)
			statSigSearches.Inc()
		}
	}

	var sol *Solution
	var err error
	if opts.Noise {
		sol, err = searchNoisy(c, cands, weights, order, maxRules, maxCost, skip)
	} else {
		sol, err = searchHard(c, cands, order, maxRules, maxCost, skip)
	}
	statSearches.Inc()
	statSearchDur.ObserveSince(t0)
	if err != nil {
		return nil, err
	}
	sol.Checks = c.checks
	if classes != nil {
		sol.Classes = make([][]int, len(sol.Chosen))
		for k, ci := range sol.Chosen {
			sol.Classes[k] = append([]int(nil), classes[classOf[ci]]...)
		}
	}
	if obs.TracingEnabled() {
		sp.SetAttr("candidates", strconv.Itoa(len(cands)))
		sp.SetAttr("hypotheses", strconv.FormatInt(c.hyps, 10))
		sp.SetAttr("checks", strconv.Itoa(c.checks))
		sp.SetAttr("chosen", strconv.Itoa(len(sol.Chosen)))
	}
	return sol, nil
}

// checker issues coverage checks for the search, owning the check count,
// the MaxChecks budget, and the worker pool. Checks for one hypothesis
// are fetched in chunks of the parallelism width and then replayed in
// example order; speculative results past an abort point (error,
// uncovered hard example, budget) are discarded uncounted, which keeps
// every observable — outcome, count, budget — equal to a serial run's.
type checker struct {
	o         Oracle
	n         int // examples
	par       int // worker-pool width == chunk size
	maxChecks int
	checks    int

	// Per-search telemetry, flushed to the obs registry by close():
	// hyps counts hypotheses whose coverage was evaluated, pruned counts
	// subtrees cut by the cost bound.
	hyps   int64
	pruned int64

	// ctx cancels outstanding speculative work on first error.
	ctx    context.Context
	cancel context.CancelFunc

	// Per-chunk result buffers, reused across fetches.
	oks  []bool
	errs []error

	// vec, when non-nil, serves checks from coverage signatures instead
	// of the oracle. uLevels[d] is the reusable union scratch for
	// hypotheses of size d; indexing by size keeps a parent dfs node's
	// union valid while its children recompute theirs.
	vec     *coverVectors
	uLevels []unionSig
}

func newChecker(o Oracle, n int, opts LearnOptions) *checker {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n && n > 0 {
		par = n
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &checker{
		o: o, n: n, par: par, maxChecks: opts.MaxChecks,
		ctx: ctx, cancel: cancel,
		oks: make([]bool, n), errs: make([]error, n),
	}
}

func (c *checker) close() {
	c.cancel()
	statChecks.Add(int64(c.checks))
	statHyps.Add(c.hyps)
	statPruned.Add(c.pruned)
}

// fetch obtains verdicts for examples [lo,hi) of the hypothesis,
// concurrently when the pool is wider than one. It returns only after
// every launched check has finished, so the caller's replay never races
// with a worker.
func (c *checker) fetch(chosen []int, lo, hi int) {
	t0 := time.Now()
	if hi-lo <= 1 {
		for i := lo; i < hi; i++ {
			c.oks[i], c.errs[i] = c.timedCovers(chosen, i)
		}
	} else {
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := c.ctx.Err(); err != nil {
					c.oks[i], c.errs[i] = false, err
					return
				}
				c.oks[i], c.errs[i] = c.timedCovers(chosen, i)
			}(i)
		}
		wg.Wait()
	}
	statFetchChunks.Inc()
	statFetchWall.Add(int64(time.Since(t0)))
}

// timedCovers wraps one oracle query with per-check timing; the busy
// total across workers against the chunk wall time gives pool
// utilisation and queue wait.
func (c *checker) timedCovers(chosen []int, i int) (bool, error) {
	t0 := time.Now()
	ok, err := c.o.Covers(chosen, i)
	d := time.Since(t0)
	statCheckDur.Observe(d)
	statWorkerBusy.Add(int64(d))
	return ok, err
}

// checkAll verifies coverage of every example, aborting at the first
// failure. It returns (covered count, all covered).
func (c *checker) checkAll(chosen []int) (int, bool, error) {
	c.hyps++
	if c.vec != nil {
		return c.checkAllBits(chosen)
	}
	covered := 0
	for lo := 0; lo < c.n; lo += c.par {
		hi := lo + c.par
		if hi > c.n {
			hi = c.n
		}
		c.fetch(chosen, lo, hi)
		for i := lo; i < hi; i++ {
			c.checks++
			if c.maxChecks > 0 && c.checks > c.maxChecks {
				c.cancel()
				return covered, false, ErrCheckBudget
			}
			if err := c.errs[i]; err != nil {
				c.cancel()
				return covered, false, err
			}
			if !c.oks[i] {
				return covered, false, nil
			}
			covered++
		}
	}
	return covered, true, nil
}

// checkAllBits is checkAll on the signature path: one union over the
// chosen signatures, then a per-example verdict replay in example order
// with the same counting and budget semantics as the oracle path.
func (c *checker) checkAllBits(chosen []int) (int, bool, error) {
	u := &c.uLevels[len(chosen)]
	c.vec.unionInto(u, chosen)
	covered := 0
	for i := 0; i < c.n; i++ {
		c.checks++
		if c.maxChecks > 0 && c.checks > c.maxChecks {
			c.cancel()
			return covered, false, ErrCheckBudget
		}
		if !c.vec.covered(u, i) {
			return covered, false, nil
		}
		covered++
	}
	return covered, true, nil
}

func searchHard(c *checker, cands []Candidate, order []int, maxRules, maxCost int, skip []bool) (*Solution, error) {
	for target := 0; target <= maxCost; target++ {
		var found *Solution
		var dfs func(pos, remaining, rules int, chosen []int) error
		dfs = func(pos, remaining, rules int, chosen []int) error {
			if found != nil {
				return nil
			}
			if remaining == 0 {
				covered, ok, err := c.checkAll(chosen)
				if err != nil {
					return err
				}
				if ok {
					found = &Solution{Chosen: append([]int(nil), chosen...), Covered: covered}
				}
				return nil
			}
			if rules == 0 {
				return nil
			}
			for i := pos; i < len(order); i++ {
				ci := order[i]
				if skip != nil && skip[ci] {
					c.pruned++
					continue // dominated duplicate of a cheaper class representative
				}
				cost := cands[ci].Cost
				if cost > remaining {
					c.pruned += int64(len(order) - i)
					break // sorted: everything after costs at least as much
				}
				if err := dfs(i+1, remaining-cost, rules-1, append(chosen, ci)); err != nil {
					return err
				}
				if found != nil {
					return nil
				}
			}
			return nil
		}
		if err := dfs(0, target, maxRules, nil); err != nil {
			return nil, err
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, ErrNoSolution
}

func searchNoisy(c *checker, cands []Candidate, weights []int, order []int, maxRules, maxCost int, skip []bool) (*Solution, error) {
	var (
		best    *Solution
		bestObj = int(^uint(0) >> 1) // max int
	)
	evaluate := func(chosen []int, cost int) error {
		if cost >= bestObj {
			c.pruned++
			return nil
		}
		c.hyps++
		covered := 0
		penalty := 0
		if c.vec != nil {
			// Signature path: one union, then verdict replay in example
			// order with identical counting, penalty cutoff, and budget
			// semantics. The union stays in uLevels[len(chosen)] for the
			// caller's subsumption checks.
			u := &c.uLevels[len(chosen)]
			c.vec.unionInto(u, chosen)
			for i := 0; i < c.n; i++ {
				c.checks++
				if c.maxChecks > 0 && c.checks > c.maxChecks {
					c.cancel()
					return ErrCheckBudget
				}
				if c.vec.covered(u, i) {
					covered++
					continue
				}
				if weights[i] <= 0 {
					return nil // hard example uncovered: infeasible
				}
				penalty += weights[i]
				if cost+penalty >= bestObj {
					return nil
				}
			}
		} else {
			for lo := 0; lo < c.n; lo += c.par {
				hi := lo + c.par
				if hi > c.n {
					hi = c.n
				}
				c.fetch(chosen, lo, hi)
				for i := lo; i < hi; i++ {
					c.checks++
					if c.maxChecks > 0 && c.checks > c.maxChecks {
						c.cancel()
						return ErrCheckBudget
					}
					if err := c.errs[i]; err != nil {
						c.cancel()
						return err
					}
					if c.oks[i] {
						covered++
						continue
					}
					if weights[i] <= 0 {
						return nil // hard example uncovered: infeasible
					}
					penalty += weights[i]
					if cost+penalty >= bestObj {
						return nil
					}
				}
			}
		}
		obj := cost + penalty
		if obj < bestObj {
			bestObj = obj
			best = &Solution{Chosen: append([]int(nil), chosen...), Covered: covered}
		}
		return nil
	}

	var dfs func(pos, cost, rules int, chosen []int) error
	dfs = func(pos, cost, rules int, chosen []int) error {
		if err := evaluate(chosen, cost); err != nil {
			return err
		}
		if rules == 0 {
			return nil
		}
		for i := pos; i < len(order); i++ {
			ci := order[i]
			if skip != nil && skip[ci] {
				c.pruned++
				continue // dominated duplicate of a cheaper class representative
			}
			cc := cands[ci].Cost
			if cost+cc > maxCost || cost+cc >= bestObj {
				c.pruned += int64(len(order) - i)
				break
			}
			// Subsumption skip: when ci's signature adds no requirement
			// and no violation beyond the already-chosen union, every
			// extension containing ci has an identical-coverage,
			// strictly-cheaper counterpart without it — and that
			// counterpart is explored regardless, so the first optimal
			// solution is unchanged. The union in uLevels[len(chosen)] is
			// valid here: evaluate computed it before any branching, and
			// reaching this loop implies evaluate passed its entry prune
			// (cost < bestObj, else cost+cc >= bestObj broke above).
			if c.vec != nil && cc > 0 && c.vec.subsumed(ci, &c.uLevels[len(chosen)]) {
				c.pruned++
				statSigSubsumed.Inc()
				continue
			}
			if err := dfs(i+1, cost+cc, rules-1, append(chosen, ci)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, 0, maxRules, nil); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoSolution
	}
	return best, nil
}

// ExampleWeights extracts the weight vector of a task's examples for
// Search.
func ExampleWeights(examples []Example) []int {
	w := make([]int, len(examples))
	for i, e := range examples {
		w[i] = e.Weight
	}
	return w
}
