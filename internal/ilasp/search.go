package ilasp

import (
	"sort"
)

// Oracle abstracts a learning problem for the optimal subset search: a
// candidate space and a per-example coverage check. Package ilasp's own
// tasks and package asglearn's answer-set-grammar tasks (Definition 3 of
// the paper) both reduce to this interface — realizing the paper's
// "transformation into a task that can be solved by the ILASP system":
// both searches are the same optimal subset search, differing only in
// the coverage oracle.
type Oracle interface {
	// Candidates returns the hypothesis space.
	Candidates() []Candidate
	// Covers reports whether the hypothesis (candidate indices) covers
	// example i.
	Covers(chosen []int, i int) (bool, error)
}

// Solution is the outcome of a Search.
type Solution struct {
	// Chosen lists indices into the oracle's candidate space.
	Chosen []int
	// Covered counts covered examples.
	Covered int
}

// Search finds an optimal hypothesis for an oracle over len(weights)
// examples.
//
// Hard mode (default): minimal total cost covering every example, found
// by iterative deepening on exact cost (ILASP-style optimality).
// Noise mode (opts.Noise): minimises cost + sum of weights of uncovered
// soft examples; zero-weight (hard) examples must be covered;
// branch-and-bound prunes subtrees whose cost already exceeds the best
// objective.
func Search(o Oracle, weights []int, opts LearnOptions) (*Solution, error) {
	maxRules := opts.MaxRules
	if maxRules <= 0 {
		maxRules = 3
	}
	cands := o.Candidates()
	// Candidates must be in non-decreasing cost order for pruning.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cands[order[a]].Cost < cands[order[b]].Cost })

	maxCost := opts.MaxCost
	if maxCost <= 0 {
		// Default: the maxRules most expensive candidates.
		costs := make([]int, len(cands))
		for i, c := range cands {
			costs[i] = c.Cost
		}
		sort.Sort(sort.Reverse(sort.IntSlice(costs)))
		for i := 0; i < len(costs) && i < maxRules; i++ {
			maxCost += costs[i]
		}
	}

	if opts.Noise {
		return searchNoisy(o, weights, order, maxRules, maxCost)
	}
	return searchHard(o, weights, order, maxRules, maxCost)
}

func searchHard(o Oracle, weights []int, order []int, maxRules, maxCost int) (*Solution, error) {
	cands := o.Candidates()
	for target := 0; target <= maxCost; target++ {
		var found *Solution
		var dfs func(pos, remaining, rules int, chosen []int) error
		dfs = func(pos, remaining, rules int, chosen []int) error {
			if found != nil {
				return nil
			}
			if remaining == 0 {
				covered, ok, err := checkAll(o, len(weights), chosen)
				if err != nil {
					return err
				}
				if ok {
					found = &Solution{Chosen: append([]int(nil), chosen...), Covered: covered}
				}
				return nil
			}
			if rules == 0 {
				return nil
			}
			for i := pos; i < len(order); i++ {
				ci := order[i]
				c := cands[ci].Cost
				if c > remaining {
					break // sorted: everything after costs at least as much
				}
				if err := dfs(i+1, remaining-c, rules-1, append(chosen, ci)); err != nil {
					return err
				}
				if found != nil {
					return nil
				}
			}
			return nil
		}
		if err := dfs(0, target, maxRules, nil); err != nil {
			return nil, err
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, ErrNoSolution
}

// checkAll verifies coverage of every example, aborting at the first
// failure. It returns (covered count, all covered).
func checkAll(o Oracle, n int, chosen []int) (int, bool, error) {
	covered := 0
	for i := 0; i < n; i++ {
		ok, err := o.Covers(chosen, i)
		if err != nil {
			return covered, false, err
		}
		if !ok {
			return covered, false, nil
		}
		covered++
	}
	return covered, true, nil
}

func searchNoisy(o Oracle, weights []int, order []int, maxRules, maxCost int) (*Solution, error) {
	cands := o.Candidates()
	var (
		best    *Solution
		bestObj = int(^uint(0) >> 1) // max int
	)
	evaluate := func(chosen []int, cost int) error {
		if cost >= bestObj {
			return nil
		}
		covered := 0
		penalty := 0
		for i, w := range weights {
			ok, err := o.Covers(chosen, i)
			if err != nil {
				return err
			}
			if ok {
				covered++
				continue
			}
			if w <= 0 {
				return nil // hard example uncovered: infeasible
			}
			penalty += w
			if cost+penalty >= bestObj {
				return nil
			}
		}
		obj := cost + penalty
		if obj < bestObj {
			bestObj = obj
			best = &Solution{Chosen: append([]int(nil), chosen...), Covered: covered}
		}
		return nil
	}

	var dfs func(pos, cost, rules int, chosen []int) error
	dfs = func(pos, cost, rules int, chosen []int) error {
		if err := evaluate(chosen, cost); err != nil {
			return err
		}
		if rules == 0 {
			return nil
		}
		for i := pos; i < len(order); i++ {
			ci := order[i]
			c := cands[ci].Cost
			if cost+c > maxCost || cost+c >= bestObj {
				break
			}
			if err := dfs(i+1, cost+c, rules-1, append(chosen, ci)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, 0, maxRules, nil); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoSolution
	}
	return best, nil
}

// ExampleWeights extracts the weight vector of a task's examples for
// Search.
func ExampleWeights(examples []Example) []int {
	w := make([]int, len(examples))
	for i, e := range examples {
		w[i] = e.Weight
	}
	return w
}
