package ilasp

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// slowOracle is a deterministic-coverage oracle with artificial latency
// and an optional failing example, for exercising the checker's chunked
// fan-out, in-order replay, and cancellation.
type slowOracle struct {
	cands  []Candidate
	n      int
	failAt int   // example index returning errBoom (-1 = never)
	calls  int64 // atomic
}

var errBoom = errors.New("boom")

func (o *slowOracle) Candidates() []Candidate { return o.cands }

func (o *slowOracle) Covers(chosen []int, i int) (bool, error) {
	atomic.AddInt64(&o.calls, 1)
	// Vary the latency so parallel completions arrive out of order.
	time.Sleep(time.Duration(50+(i*37)%200) * time.Microsecond)
	if i == o.failAt && len(chosen) > 0 {
		return false, errBoom
	}
	// Coverage needs every candidate; keeps the search evaluating
	// multi-candidate hypotheses.
	return len(chosen) == len(o.cands), nil
}

func newSlowOracle(nCands, nExamples, failAt int) *slowOracle {
	o := &slowOracle{n: nExamples, failAt: failAt}
	for i := 0; i < nCands; i++ {
		o.cands = append(o.cands, Candidate{Cost: 1})
	}
	return o
}

// TestCheckerCancelMidChunk: an oracle error in the middle of a
// speculative chunk must surface as exactly that example's error (in-
// order replay), cancel the remaining speculative work, and leave no
// worker goroutines behind.
func TestCheckerCancelMidChunk(t *testing.T) {
	before := runtime.NumGoroutine()
	o := newSlowOracle(3, 16, 5) // failAt=5: mid-chunk for par=8
	weights := make([]int, o.n)
	_, err := Search(o, weights, LearnOptions{MaxRules: 3, Parallelism: 8})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Search error = %v, want errBoom", err)
	}
	// fetch waits for its whole chunk, so by the time Search returns no
	// checker goroutine may remain. Allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestCheckerReplayDeterminism: with out-of-order completions inside
// each chunk, parallel runs must still match the serial run on every
// observable — hypothesis, coverage, and check count.
func TestCheckerReplayDeterminism(t *testing.T) {
	run := func(par int) (*Solution, int64) {
		o := newSlowOracle(3, 12, -1)
		weights := make([]int, o.n)
		sol, err := Search(o, weights, LearnOptions{MaxRules: 3, Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return sol, atomic.LoadInt64(&o.calls)
	}
	serial, serialCalls := run(1)
	for _, par := range []int{2, 8} {
		sol, calls := run(par)
		if fmt.Sprint(sol.Chosen) != fmt.Sprint(serial.Chosen) ||
			sol.Covered != serial.Covered || sol.Checks != serial.Checks {
			t.Errorf("par=%d: (%v, %d, %d) != serial (%v, %d, %d)",
				par, sol.Chosen, sol.Covered, sol.Checks,
				serial.Chosen, serial.Covered, serial.Checks)
		}
		if calls < serialCalls {
			t.Errorf("par=%d issued fewer oracle calls (%d) than serial (%d)", par, calls, serialCalls)
		}
	}
}

// TestCheckerBudgetCancelNoLeak: exhausting MaxChecks mid-chunk cancels
// outstanding speculation without leaking workers.
func TestCheckerBudgetCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	o := newSlowOracle(3, 16, -1)
	weights := make([]int, o.n)
	_, err := Search(o, weights, LearnOptions{MaxRules: 3, Parallelism: 8, MaxChecks: 5})
	if !errors.Is(err, ErrCheckBudget) {
		t.Fatalf("Search error = %v, want ErrCheckBudget", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}
