package ilasp

import (
	"errors"
	"strings"
	"testing"

	"agenp/internal/asp"
)

func atom(t *testing.T, s string) asp.Atom {
	t.Helper()
	a, err := asp.ParseAtom(s)
	if err != nil {
		t.Fatalf("ParseAtom(%q): %v", s, err)
	}
	return a
}

func prog(t *testing.T, src string) *asp.Program {
	t.Helper()
	p, err := asp.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func consts(names ...string) []asp.Term {
	out := make([]asp.Term, len(names))
	for i, n := range names {
		out[i] = asp.Constant{Name: n}
	}
	return out
}

func TestBiasSpaceBasics(t *testing.T) {
	b := Bias{
		Head:    []ModeAtom{M("flies", Var("animal"))},
		Body:    []ModeAtom{M("bird", Var("animal")), M("penguin", Var("animal"))},
		MaxVars: 1,
		MaxBody: 2,
	}
	space, err := b.Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(space) == 0 {
		t.Fatal("empty space")
	}
	want := "flies(V1) :- bird(V1), penguin(V1)."
	found := false
	for _, c := range space {
		if c.Rule.String() == want {
			found = true
			if c.Cost != 3 {
				t.Errorf("cost of %q = %d, want 3", want, c.Cost)
			}
		}
		// Everything must be safe.
		if err := asp.CheckSafety(c.Rule); err != nil {
			t.Errorf("unsafe candidate %q", c.Rule.String())
		}
	}
	if !found {
		t.Errorf("space missing %q; got %v", want, space)
	}
}

func TestBiasSpaceNegationAndDedup(t *testing.T) {
	b := Bias{
		Head:          []ModeAtom{M("flies", Var("animal"))},
		Body:          []ModeAtom{M("bird", Var("animal")), M("penguin", Var("animal"))},
		MaxVars:       2,
		MaxBody:       2,
		AllowNegation: true,
	}
	space, err := b.Space()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, c := range space {
		seen[c.Rule.String()]++
	}
	for s, n := range seen {
		if n > 1 {
			t.Errorf("duplicate candidate %q (%d times)", s, n)
		}
	}
	// The classic rule must be present.
	if _, ok := seen["flies(V1) :- bird(V1), not penguin(V1)."]; !ok {
		t.Errorf("space missing the flies rule; %d candidates", len(space))
	}
	// Unsafe rules like "flies(V1) :- not penguin(V1)." must be absent.
	if _, ok := seen["flies(V1) :- not penguin(V1)."]; ok {
		t.Error("unsafe rule in space")
	}
	// Alpha-variants must be collapsed: V2-only version of a V1 rule.
	for s := range seen {
		if strings.Contains(s, "V2") && !strings.Contains(s, "V1") {
			t.Errorf("non-canonical candidate %q", s)
		}
	}
}

func TestBiasSpaceConstants(t *testing.T) {
	b := Bias{
		Head:      []ModeAtom{M("grant", Const("role"))},
		Body:      []ModeAtom{M("active", Const("role"))},
		Constants: map[string][]asp.Term{"role": consts("dba", "dev")},
		MaxBody:   1,
	}
	space, err := b.Space()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"grant(dba).":                true,
		"grant(dev).":                true,
		"grant(dba) :- active(dba).": true,
		"grant(dba) :- active(dev).": true,
		"grant(dev) :- active(dba).": true,
		"grant(dev) :- active(dev).": true,
	}
	got := make(map[string]bool)
	for _, c := range space {
		got[c.Rule.String()] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("space missing %q; got %v", w, got)
		}
	}
}

func TestBiasSpaceMissingConstantPool(t *testing.T) {
	b := Bias{Head: []ModeAtom{M("p", Const("missing"))}}
	if _, err := b.Space(); err == nil {
		t.Error("expected error for missing constant pool")
	}
}

func TestBiasSpaceComparisons(t *testing.T) {
	b := Bias{
		Head: []ModeAtom{M("adult", Var("person"))},
		Body: []ModeAtom{M("age", Var("person"), Var("num"))},
		Comparisons: []CmpSpec{{
			Type:   "num",
			Ops:    []asp.CmpOp{asp.CmpGeq},
			Values: []asp.Term{asp.Integer{Value: 18}},
		}},
		MaxVars: 2,
		MaxBody: 2,
	}
	space, err := b.Space()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range space {
		if c.Rule.String() == "adult(V1) :- age(V1,V2), V2 >= 18." {
			found = true
		}
	}
	if !found {
		var all []string
		for _, c := range space {
			all = append(all, c.Rule.String())
		}
		t.Errorf("space missing comparison rule; got %v", all)
	}
}

func TestLearnFliesNotPenguin(t *testing.T) {
	task := &Task{
		Background: prog(t, "bird(tweety). bird(sam). penguin(sam)."),
		Bias: Bias{
			Head:          []ModeAtom{M("flies", Var("animal"))},
			Body:          []ModeAtom{M("bird", Var("animal")), M("penguin", Var("animal"))},
			MaxVars:       1,
			MaxBody:       2,
			AllowNegation: true,
		},
		Examples: []Example{
			PosExample("e1", []asp.Atom{atom(t, "flies(tweety)")}, []asp.Atom{atom(t, "flies(sam)")}, nil),
		},
	}
	res, err := task.Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("hypothesis size = %d, want 1:\n%s", len(res.Hypothesis), res)
	}
	if got := res.Hypothesis[0].String(); got != "flies(V1) :- bird(V1), not penguin(V1)." {
		t.Errorf("learned %q", got)
	}
	if res.Cost != 3 {
		t.Errorf("cost = %d, want 3", res.Cost)
	}
	if res.Covered != 1 || res.Total != 1 {
		t.Errorf("coverage %d/%d", res.Covered, res.Total)
	}
}

func TestLearnConstraintFromNegatives(t *testing.T) {
	task := &Task{
		Background: prog(t, "{p; q}."),
		Bias: Bias{
			Body:             []ModeAtom{M("p"), M("q")},
			AllowConstraints: true,
			MaxBody:          2,
		},
		Examples: []Example{
			PosExample("both ok separately", []asp.Atom{atom(t, "p")}, []asp.Atom{atom(t, "q")}, nil),
			PosExample("q alone", []asp.Atom{atom(t, "q")}, []asp.Atom{atom(t, "p")}, nil),
			NegExample("never together", []asp.Atom{atom(t, "p"), atom(t, "q")}, nil, nil),
		},
	}
	res, err := task.Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 || res.Hypothesis[0].String() != ":- p, q." {
		t.Errorf("learned %v, want the mutual-exclusion constraint", res.Hypothesis)
	}
}

func TestLearnEmptyHypothesisWhenBackgroundSuffices(t *testing.T) {
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:    []ModeAtom{M("q")},
			Body:    []ModeAtom{M("p")},
			MaxBody: 1,
		},
		Examples: []Example{
			PosExample("p holds", []asp.Atom{atom(t, "p")}, nil, nil),
		},
	}
	res, err := task.Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 0 || res.Cost != 0 {
		t.Errorf("want empty hypothesis, got %s", res)
	}
}

func TestLearnContextDependentExamples(t *testing.T) {
	// fly is acceptable only in clear weather; the context varies per
	// example (this is what makes CDPIs context-dependent).
	task := &Task{
		Background: asp.NewProgram(),
		Bias: Bias{
			Head:          []ModeAtom{M("allow")},
			Body:          []ModeAtom{M("weather", Const("w"))},
			Constants:     map[string][]asp.Term{"w": consts("clear", "storm")},
			MaxBody:       1,
			AllowNegation: true,
		},
		Examples: []Example{
			PosExample("clear allows", []asp.Atom{atom(t, "allow")}, nil, prog(t, "weather(clear).")),
			NegExample("storm forbids", []asp.Atom{atom(t, "allow")}, nil, prog(t, "weather(storm).")),
		},
	}
	res, err := task.Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("hypothesis = %v", res.Hypothesis)
	}
	got := res.Hypothesis[0].String()
	// Either "allow :- weather(clear)." or "allow :- not weather(storm)."
	// covers both examples at equal cost; both are correct.
	if got != "allow :- weather(clear)." && got != "allow :- not weather(storm)." {
		t.Errorf("learned %q", got)
	}
}

func TestLearnAgeThreshold(t *testing.T) {
	task := &Task{
		Background: prog(t, "age(alice, 20). age(bob, 15)."),
		Bias: Bias{
			Head: []ModeAtom{M("adult", Var("person"))},
			Body: []ModeAtom{M("age", Var("person"), Var("num"))},
			Comparisons: []CmpSpec{{
				Type:   "num",
				Ops:    []asp.CmpOp{asp.CmpGeq},
				Values: []asp.Term{asp.Integer{Value: 18}},
			}},
			MaxVars: 2,
			MaxBody: 2,
		},
		Examples: []Example{
			PosExample("alice adult, bob not",
				[]asp.Atom{atom(t, "adult(alice)")},
				[]asp.Atom{atom(t, "adult(bob)")}, nil),
		},
	}
	res, err := task.Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("hypothesis = %v", res.Hypothesis)
	}
	if got := res.Hypothesis[0].String(); got != "adult(V1) :- age(V1,V2), V2 >= 18." {
		t.Errorf("learned %q", got)
	}
}

func TestLearnNoSolution(t *testing.T) {
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:    []ModeAtom{M("q")},
			Body:    []ModeAtom{M("p")},
			MaxBody: 1,
		},
		Examples: []Example{
			// r is not even mentionable: cannot be covered.
			PosExample("impossible", []asp.Atom{atom(t, "r")}, nil, nil),
		},
	}
	_, err := task.Learn(LearnOptions{})
	if !errors.Is(err, ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
}

func TestLearnNoiseTolerant(t *testing.T) {
	// Ground truth: q :- p. One mislabeled example says q should not
	// follow from p; with noise-tolerant learning and enough weight on
	// the good examples, the rule is still learned.
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:    []ModeAtom{M("q")},
			Body:    []ModeAtom{M("p")},
			MaxBody: 1,
		},
		Examples: []Example{
			{ID: "good1", Positive: true, Inclusions: []asp.Atom{atom(t, "q")}, Weight: 10},
			{ID: "good2", Positive: true, Inclusions: []asp.Atom{atom(t, "q")}, Weight: 10},
			{ID: "noisy", Positive: false, Inclusions: []asp.Atom{atom(t, "q")}, Weight: 1},
		},
	}
	res, err := task.Learn(LearnOptions{Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("hypothesis = %v", res.Hypothesis)
	}
	if res.Covered != 2 {
		t.Errorf("covered = %d, want 2 (noisy one sacrificed)", res.Covered)
	}
	// Flipped weights: dropping the two good examples is cheaper than
	// contradicting the (now heavy) negative.
	task.Examples[0].Weight = 1
	task.Examples[1].Weight = 1
	task.Examples[2].Weight = 10
	res, err = task.Learn(LearnOptions{Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 0 {
		t.Errorf("want empty hypothesis when negatives outweigh, got %v", res.Hypothesis)
	}
}

func TestLearnNoiseHardExamplesStillHard(t *testing.T) {
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:    []ModeAtom{M("q")},
			Body:    []ModeAtom{M("p")},
			MaxBody: 1,
		},
		Examples: []Example{
			{ID: "hard pos", Positive: true, Inclusions: []asp.Atom{atom(t, "q")}}, // weight 0 = hard
			{ID: "soft neg", Positive: false, Inclusions: []asp.Atom{atom(t, "q")}, Weight: 100},
		},
	}
	res, err := task.Learn(LearnOptions{Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	// The hard positive forces learning q despite the heavy soft negative.
	if len(res.Hypothesis) != 1 {
		t.Errorf("hypothesis = %v, want the q rule", res.Hypothesis)
	}
}

func TestLearnCheckBudget(t *testing.T) {
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:          []ModeAtom{M("q"), M("r"), M("s")},
			Body:          []ModeAtom{M("p"), M("q"), M("r")},
			MaxBody:       2,
			AllowNegation: true,
		},
		Examples: []Example{
			PosExample("impossible", []asp.Atom{atom(t, "zzz")}, nil, nil),
		},
	}
	_, err := task.Learn(LearnOptions{MaxChecks: 3})
	if !errors.Is(err, ErrCheckBudget) {
		t.Errorf("err = %v, want ErrCheckBudget", err)
	}
}

func TestLearnMultiRuleHypothesis(t *testing.T) {
	// Needs two rules: q :- p. and r :- q.
	task := &Task{
		Background: prog(t, "p."),
		Bias: Bias{
			Head:        []ModeAtom{M("q"), M("r")},
			Body:        []ModeAtom{M("p"), M("q")},
			MaxBody:     1,
			RequireBody: true, // otherwise the facts "q." and "r." win
		},
		Examples: []Example{
			PosExample("both", []asp.Atom{atom(t, "q"), atom(t, "r")}, nil, nil),
		},
	}
	res, err := task.Learn(LearnOptions{MaxRules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 2 {
		t.Fatalf("hypothesis = %v, want 2 rules", res.Hypothesis)
	}
	got := map[string]bool{}
	for _, r := range res.Hypothesis {
		got[r.String()] = true
	}
	if !got["q :- p."] || !(got["r :- q."] || got["r :- p."]) {
		t.Errorf("learned %v", got)
	}
}

func TestCoversSemantics(t *testing.T) {
	task := &Task{Background: prog(t, "{p; q}. r :- p.")}
	tests := []struct {
		name string
		e    Example
		want bool
	}{
		{
			name: "brave inclusion",
			e:    PosExample("", []asp.Atom{atom(t, "p"), atom(t, "r")}, nil, nil),
			want: true,
		},
		{
			name: "exclusion respected",
			e:    PosExample("", []asp.Atom{atom(t, "p")}, []asp.Atom{atom(t, "q")}, nil),
			want: true,
		},
		{
			name: "impossible combination",
			e:    PosExample("", []asp.Atom{atom(t, "r")}, []asp.Atom{atom(t, "p")}, nil),
			want: false,
		},
		{
			name: "negative of possible is uncovered",
			e:    NegExample("", []asp.Atom{atom(t, "p")}, nil, nil),
			want: false,
		},
		{
			name: "negative of impossible is covered",
			e:    NegExample("", []asp.Atom{atom(t, "r")}, []asp.Atom{atom(t, "p")}, nil),
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := task.Covers(nil, tt.e)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Covers = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExampleString(t *testing.T) {
	e := Example{
		ID:         "e1",
		Positive:   true,
		Inclusions: []asp.Atom{{Predicate: "p"}},
		Exclusions: []asp.Atom{{Predicate: "q"}},
		Weight:     5,
	}
	got := e.String()
	want := "#pos(e1) {p} {q}@5"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	n := NegExample("", nil, nil, nil)
	if n.String() != "#neg {} {}" {
		t.Errorf("neg String = %q", n.String())
	}
}

func TestResultString(t *testing.T) {
	r, _ := asp.ParseRule("q :- p.")
	res := &Result{Hypothesis: []asp.Rule{r}, Cost: 2, Covered: 3, Total: 4}
	s := res.String()
	if !strings.Contains(s, "cost 2") || !strings.Contains(s, "q :- p.") {
		t.Errorf("Result.String = %q", s)
	}
	if res.HypothesisProgram().Rules[0].String() != "q :- p." {
		t.Error("HypothesisProgram mismatch")
	}
}

func TestExplicitSpaceOverridesBias(t *testing.T) {
	r, _ := asp.ParseRule("q :- p.")
	task := &Task{
		Background: prog(t, "p."),
		Space:      []Candidate{{Rule: r, Cost: 2}},
		Examples: []Example{
			PosExample("", []asp.Atom{atom(t, "q")}, nil, nil),
		},
	}
	res, err := task.Learn(LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 || res.Hypothesis[0].String() != "q :- p." {
		t.Errorf("hypothesis = %v", res.Hypothesis)
	}
	if res.Checks == 0 {
		t.Error("checks not counted")
	}
}

func TestModeAtomString(t *testing.T) {
	m := M("age", Var("person"), Const("num"))
	if got := m.String(); got != "age(var(person),const(num))" {
		t.Errorf("String = %q", got)
	}
	if M("p").String() != "p" {
		t.Error("zero-arg mode")
	}
}
