// Package ilasp implements an inductive learner for answer set programs
// in the style of the ILASP system the paper relies on (Law, Russo,
// Broda): hypothesis spaces defined by mode declarations, brave
// coverage of context-dependent partial-interpretation examples, and an
// optimal (minimal-cost) hypothesis search, with a noise-tolerant variant
// that maximises weighted coverage minus hypothesis cost.
//
// The paper's learning workflow (Figure 1) feeds examples of valid and
// invalid policies to this learner to obtain ASP hypotheses; package
// asglearn layers the answer-set-grammar task of Definition 3 on top of
// the same search engine.
package ilasp

import (
	"fmt"
	"sort"
	"strings"

	"agenp/internal/asp"
)

// ArgKind distinguishes the placeholder kinds in mode declarations.
type ArgKind int

// Placeholder kinds.
const (
	// ArgVar is a typed variable placeholder: var(type).
	ArgVar ArgKind = iota + 1
	// ArgConst is a typed constant placeholder: const(type), expanded
	// from the bias's constant pool.
	ArgConst
)

// ArgSpec is one argument slot of a mode atom.
type ArgSpec struct {
	Kind ArgKind
	Type string
}

// Var builds a variable placeholder of a type.
func Var(typeName string) ArgSpec { return ArgSpec{Kind: ArgVar, Type: typeName} }

// Const builds a constant placeholder of a type.
func Const(typeName string) ArgSpec { return ArgSpec{Kind: ArgConst, Type: typeName} }

// ModeAtom is a mode declaration: a predicate schema usable in hypothesis
// rules.
type ModeAtom struct {
	Predicate string
	Args      []ArgSpec
}

// M builds a mode atom.
func M(pred string, args ...ArgSpec) ModeAtom {
	return ModeAtom{Predicate: pred, Args: args}
}

func (m ModeAtom) String() string {
	if len(m.Args) == 0 {
		return m.Predicate
	}
	parts := make([]string, len(m.Args))
	for i, a := range m.Args {
		switch a.Kind {
		case ArgConst:
			parts[i] = "const(" + a.Type + ")"
		default:
			parts[i] = "var(" + a.Type + ")"
		}
	}
	return m.Predicate + "(" + strings.Join(parts, ",") + ")"
}

// CmpSpec allows comparison literals `V op value` between a variable of
// the given type and each listed value, for every listed operator.
type CmpSpec struct {
	Type   string
	Ops    []asp.CmpOp
	Values []asp.Term
}

// Bias is the language bias defining a hypothesis space (ILASP's mode
// declarations).
type Bias struct {
	// Head lists modeh declarations. An empty Head with AllowConstraints
	// yields a constraint-only space.
	Head []ModeAtom
	// Body lists modeb declarations.
	Body []ModeAtom
	// Constants maps a type name to its constant pool.
	Constants map[string][]asp.Term
	// Comparisons adds comparison literals to the body alphabet.
	Comparisons []CmpSpec
	// VarComparisons additionally admits comparisons between two
	// distinct variables of each Comparisons spec's type (e.g. V1 < V2),
	// enabling relational rules such as "the vehicle LOA is below the
	// region minimum".
	VarComparisons bool

	// MaxVars bounds distinct variables per rule (default 2).
	MaxVars int
	// MaxBody bounds body literals per rule (default 2).
	MaxBody int
	// AllowConstraints admits headless rules.
	AllowConstraints bool
	// AllowNegation admits negation-as-failure body literals.
	AllowNegation bool
	// RequireBody excludes bodyless rules (bare facts) from the space.
	RequireBody bool
	// RequireHeadVarInBody is implied by ASP safety and always enforced;
	// the field documents the invariant.
	RequireHeadVarInBody bool
}

// Candidate is one rule of the hypothesis space.
type Candidate struct {
	Rule asp.Rule
	// Cost is the rule length: 1 for a head plus 1 per body literal
	// (ILASP's default optimisation objective).
	Cost int
}

func (c Candidate) String() string {
	return fmt.Sprintf("%s (cost %d)", c.Rule.String(), c.Cost)
}

// varNames provides deterministic variable names V1, V2, ...
func varName(i int) string { return fmt.Sprintf("V%d", i+1) }

// bodyLit is an element of the body alphabet: an instantiated literal
// schema whose variable slots carry types.
type bodyLit struct {
	lit     asp.Literal
	varType map[string]string // variable name -> type
}

// Space enumerates the hypothesis space defined by the bias: all
// distinct, safe rules with at most MaxBody body literals and MaxVars
// variables, with canonical variable naming. The result is sorted by
// (cost, text) for deterministic search order.
func (b Bias) Space() ([]Candidate, error) {
	maxVars := b.MaxVars
	if maxVars <= 0 {
		maxVars = 2
	}
	maxBody := b.MaxBody
	if maxBody <= 0 {
		maxBody = 2
	}

	headAtoms, err := b.instantiateModes(b.Head, maxVars)
	if err != nil {
		return nil, err
	}
	bodyAtoms, err := b.instantiateModes(b.Body, maxVars)
	if err != nil {
		return nil, err
	}

	// Build the body alphabet: positive, optionally negated, plus
	// comparisons.
	var alphabet []bodyLit
	for _, ba := range bodyAtoms {
		alphabet = append(alphabet, bodyLit{lit: asp.PosLit(ba.atom), varType: ba.varType})
		if b.AllowNegation {
			alphabet = append(alphabet, bodyLit{lit: asp.Neg(ba.atom), varType: ba.varType})
		}
	}
	for _, cs := range b.Comparisons {
		for v := 0; v < maxVars; v++ {
			vn := varName(v)
			for _, op := range cs.Ops {
				for _, val := range cs.Values {
					alphabet = append(alphabet, bodyLit{
						lit:     asp.Cmp(asp.Variable{Name: vn}, op, val),
						varType: map[string]string{vn: cs.Type},
					})
				}
			}
		}
		if b.VarComparisons {
			for i := 0; i < maxVars; i++ {
				for j := 0; j < maxVars; j++ {
					if i == j {
						continue
					}
					vi, vj := varName(i), varName(j)
					for _, op := range cs.Ops {
						alphabet = append(alphabet, bodyLit{
							lit:     asp.Cmp(asp.Variable{Name: vi}, op, asp.Variable{Name: vj}),
							varType: map[string]string{vi: cs.Type, vj: cs.Type},
						})
					}
				}
			}
		}
	}

	var heads []*headAtom
	for i := range headAtoms {
		heads = append(heads, &headAtoms[i])
	}
	if b.AllowConstraints {
		heads = append(heads, nil) // headless
	}

	seen := make(map[string]struct{})
	var out []Candidate
	var keys []string // keys[i] is out[i].Rule.String(), computed once for dedup
	addRule := func(head *headAtom, body []bodyLit) {
		if head == nil && len(body) == 0 {
			return // the empty constraint would reject every model
		}
		if b.RequireBody && len(body) == 0 {
			return
		}
		r := asp.Rule{}
		if head != nil {
			h := head.atom
			r.Head = &h
		}
		types := make(map[string]string)
		if head != nil {
			for v, ty := range head.varType {
				types[v] = ty
			}
		}
		for _, bl := range body {
			for v, ty := range bl.varType {
				if t0, ok := types[v]; ok && t0 != ty {
					return // type clash
				}
				types[v] = ty
			}
			r.Body = append(r.Body, bl.lit)
		}
		if len(types) > maxVars {
			return
		}
		if asp.CheckSafety(r) != nil {
			return
		}
		canon := canonicalizeRule(r)
		key := canon.String()
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		cost := len(canon.Body)
		if canon.Head != nil {
			cost++
		}
		if cost == 0 {
			cost = 1
		}
		out = append(out, Candidate{Rule: canon, Cost: cost})
		keys = append(keys, key)
	}

	// Enumerate bodies of size 0..maxBody as non-decreasing index tuples
	// (order in a body is irrelevant).
	var rec func(start int, body []bodyLit, head *headAtom)
	rec = func(start int, body []bodyLit, head *headAtom) {
		addRule(head, body)
		if len(body) == maxBody {
			return
		}
		for i := start; i < len(alphabet); i++ {
			rec(i+1, append(body, alphabet[i]), head)
		}
	}
	for _, h := range heads {
		rec(0, nil, h)
	}

	// Sort by (cost, text) via a permutation over the dedup keys — the
	// key IS the canonical rule text, so no re-rendering per comparison.
	perm := make([]int, len(out))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		pi, pj := perm[i], perm[j]
		if out[pi].Cost != out[pj].Cost {
			return out[pi].Cost < out[pj].Cost
		}
		return keys[pi] < keys[pj]
	})
	sorted := make([]Candidate, len(out))
	for i, p := range perm {
		sorted[i] = out[p]
	}
	return sorted, nil
}

type headAtom struct {
	atom    asp.Atom
	varType map[string]string
}

// instantiateModes expands mode atoms into concrete atoms: constant
// placeholders take every pool value, variable placeholders take every
// variable name V1..Vmax (all combinations).
func (b Bias) instantiateModes(modes []ModeAtom, maxVars int) ([]headAtom, error) {
	var out []headAtom
	for _, m := range modes {
		choices := make([][]asp.Term, len(m.Args))
		for i, a := range m.Args {
			switch a.Kind {
			case ArgConst:
				pool := b.Constants[a.Type]
				if len(pool) == 0 {
					return nil, fmt.Errorf("ilasp: mode %s uses const(%s) but the bias has no constants of that type", m, a.Type)
				}
				choices[i] = pool
			case ArgVar:
				vars := make([]asp.Term, maxVars)
				for v := 0; v < maxVars; v++ {
					vars[v] = asp.Variable{Name: varName(v)}
				}
				choices[i] = vars
			default:
				return nil, fmt.Errorf("ilasp: mode %s has an argument with no kind", m)
			}
		}
		cartesian(choices, func(args []asp.Term) {
			varType := make(map[string]string)
			for i, t := range args {
				if v, ok := t.(asp.Variable); ok {
					varType[v.Name] = m.Args[i].Type
				}
			}
			atomArgs := make([]asp.Term, len(args))
			copy(atomArgs, args)
			out = append(out, headAtom{
				atom:    asp.Atom{Predicate: m.Predicate, Args: atomArgs},
				varType: varType,
			})
		})
	}
	return out, nil
}

// cartesian invokes f for every combination of one term per slot.
func cartesian(choices [][]asp.Term, f func([]asp.Term)) {
	if len(choices) == 0 {
		f(nil)
		return
	}
	idx := make([]int, len(choices))
	buf := make([]asp.Term, len(choices))
	for {
		for i, j := range idx {
			buf[i] = choices[i][j]
		}
		f(buf)
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(choices[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return
		}
	}
}

// canonicalizeRule renames variables in first-occurrence order (scanning
// the head, then body literals in sorted masked order) and sorts body
// literals, so that alpha-equivalent rules share a key.
func canonicalizeRule(r asp.Rule) asp.Rule {
	// Sort body by variable-masked rendering for a stable literal order.
	body := append([]asp.Literal(nil), r.Body...)
	sort.Slice(body, func(i, j int) bool {
		return maskedLiteral(body[i]) < maskedLiteral(body[j])
	})
	out := asp.Rule{Head: r.Head, Body: body}

	rename := make(asp.Binding)
	counter := 0
	var renameTerm func(t asp.Term) asp.Term
	renameTerm = func(t asp.Term) asp.Term {
		switch tt := t.(type) {
		case asp.Variable:
			if nv, ok := rename[tt.Name]; ok {
				return nv
			}
			nv := asp.Variable{Name: varName(counter)}
			counter++
			rename[tt.Name] = nv
			return nv
		case asp.Compound:
			args := make([]asp.Term, len(tt.Args))
			for i, a := range tt.Args {
				args[i] = renameTerm(a)
			}
			return asp.Compound{Functor: tt.Functor, Args: args}
		case asp.Arith:
			return asp.Arith{Op: tt.Op, L: renameTerm(tt.L), R: renameTerm(tt.R)}
		default:
			return t
		}
	}
	renameAtom := func(a asp.Atom) asp.Atom {
		args := make([]asp.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = renameTerm(t)
		}
		return asp.Atom{Predicate: a.Predicate, Args: args}
	}
	if out.Head != nil {
		h := renameAtom(*out.Head)
		out.Head = &h
	}
	for i, l := range out.Body {
		if l.IsCmp {
			out.Body[i] = asp.Literal{IsCmp: true, Op: l.Op, Lhs: renameTerm(l.Lhs), Rhs: renameTerm(l.Rhs)}
			continue
		}
		out.Body[i] = asp.Literal{Atom: renameAtom(l.Atom), Negated: l.Negated}
	}
	return out
}

// maskedLiteral renders a literal with variable names replaced by "_",
// used to order body literals independently of naming.
func maskedLiteral(l asp.Literal) string {
	var mask func(t asp.Term) string
	mask = func(t asp.Term) string {
		switch tt := t.(type) {
		case asp.Variable:
			return "_"
		case asp.Compound:
			parts := make([]string, len(tt.Args))
			for i, a := range tt.Args {
				parts[i] = mask(a)
			}
			return tt.Functor + "(" + strings.Join(parts, ",") + ")"
		case asp.Arith:
			return "(" + mask(tt.L) + tt.Op.String() + mask(tt.R) + ")"
		default:
			return t.String()
		}
	}
	if l.IsCmp {
		// The "~~" prefix sorts comparisons after atom literals, keeping
		// the guard-style reading "atoms first, comparisons last".
		return "~~" + mask(l.Lhs) + l.Op.String() + mask(l.Rhs)
	}
	s := l.Atom.Predicate
	parts := make([]string, len(l.Atom.Args))
	for i, a := range l.Atom.Args {
		parts[i] = mask(a)
	}
	if len(parts) > 0 {
		s += "(" + strings.Join(parts, ",") + ")"
	}
	if l.Negated {
		s = "~" + s
	}
	return s
}
