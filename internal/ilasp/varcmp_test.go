package ilasp

import (
	"testing"

	"agenp/internal/asp"
)

func TestBiasSpaceVarComparisons(t *testing.T) {
	b := Bias{
		Head: []ModeAtom{M("deny")},
		Body: []ModeAtom{M("loa", Var("num")), M("min", Var("num"))},
		Comparisons: []CmpSpec{{
			Type: "num",
			Ops:  []asp.CmpOp{asp.CmpLt},
		}},
		VarComparisons: true,
		MaxVars:        2,
		MaxBody:        3,
		RequireBody:    true,
	}
	space, err := b.Space()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range space {
		if c.Rule.String() == "deny :- loa(V1), min(V2), V1 < V2." {
			found = true
		}
	}
	if !found {
		var all []string
		for _, c := range space {
			all = append(all, c.Rule.String())
		}
		t.Errorf("space missing relational rule; got %v", all)
	}
}

func TestLearnRelationalRule(t *testing.T) {
	// Only the relational form separates these examples: absolute
	// thresholds are not in the bias.
	task := &Task{
		Bias: Bias{
			Head: []ModeAtom{M("deny")},
			Body: []ModeAtom{M("loa", Var("num")), M("min", Var("num"))},
			Comparisons: []CmpSpec{{
				Type: "num",
				Ops:  []asp.CmpOp{asp.CmpLt},
			}},
			VarComparisons: true,
			MaxVars:        2,
			MaxBody:        3,
			RequireBody:    true,
		},
		Examples: []Example{
			PosExample("below", []asp.Atom{atom(t, "deny")}, nil, prog(t, "loa(2). min(4).")),
			PosExample("above", nil, []asp.Atom{atom(t, "deny")}, prog(t, "loa(4). min(2).")),
			PosExample("equal", nil, []asp.Atom{atom(t, "deny")}, prog(t, "loa(3). min(3).")),
			// The same numeric pairs with swapped roles, so neither
			// single-variable projection works.
			PosExample("below2", []asp.Atom{atom(t, "deny")}, nil, prog(t, "loa(1). min(2).")),
			PosExample("above2", nil, []asp.Atom{atom(t, "deny")}, prog(t, "loa(2). min(1).")),
		},
	}
	res, err := task.LearnIndependent(LearnOptions{MaxRules: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) != 1 || res.Hypothesis[0].String() != "deny :- loa(V1), min(V2), V1 < V2." {
		t.Errorf("learned %v", res.Hypothesis)
	}
}
