package ilasp

import "agenp/internal/obs"

// Telemetry for the hypothesis search. Per-search totals (hypotheses
// enumerated, subtrees pruned, checks issued) are accumulated on the
// checker and flushed once when the search finishes; per-check timings
// go straight to histograms (atomic adds, safe from worker goroutines).
//
// Worker-pool utilisation under LearnOptions.Parallelism is derivable
// from the counters: ilasp.worker.busy_ns is the summed wall time all
// workers spent inside coverage checks, ilasp.fetch.wall_ns the summed
// wall time of the chunked fetches that dispatched them — their ratio
// times the pool width is the fraction of the pool kept busy; the gap
// is queue wait (stragglers holding a chunk open).
var (
	statSearches  = obs.C("ilasp.search.count")
	statSearchDur = obs.H("ilasp.search.duration")
	statHyps      = obs.C("ilasp.search.hypotheses")
	statPruned    = obs.C("ilasp.search.pruned")
	statChecks    = obs.C("ilasp.search.checks")

	statCheckDur    = obs.H("ilasp.check.duration")
	statWorkerBusy  = obs.C("ilasp.worker.busy_ns")
	statFetchChunks = obs.C("ilasp.fetch.chunks")
	statFetchWall   = obs.C("ilasp.fetch.wall_ns")

	statCacheHits   = obs.C("ilasp.cache.hits")
	statCacheMisses = obs.C("ilasp.cache.misses")

	statIndependentLearns = obs.C("ilasp.independent.learns")
	statIndependentChecks = obs.C("ilasp.independent.checks")
	statIndependentDur    = obs.H("ilasp.independent.duration")

	// Signature fast path: searches served from per-candidate coverage
	// bitsets, candidates collapsed into dominance classes before search,
	// and branches skipped because a candidate's signature was subsumed
	// by the already-chosen set.
	statSigSearches  = obs.C("ilasp.sig.searches")
	statSigCollapsed = obs.C("ilasp.sig.collapsed")
	statSigSubsumed  = obs.C("ilasp.sig.subsumed")
)
