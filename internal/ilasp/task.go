package ilasp

import (
	"fmt"
	"strings"
	"sync"

	"agenp/internal/asp"
)

// Example is a context-dependent partial-interpretation example (a CDPI
// in ILASP terms). A positive example is covered when some answer set of
// B ∪ H ∪ Context includes every Inclusion and no Exclusion (brave
// entailment); a negative example is covered when no such answer set
// exists.
type Example struct {
	// ID labels the example in diagnostics.
	ID string
	// Positive marks the example polarity.
	Positive bool
	// Inclusions must all hold in a witnessing answer set.
	Inclusions []asp.Atom
	// Exclusions must all be absent from the witnessing answer set.
	Exclusions []asp.Atom
	// Context is example-specific extra knowledge (may be nil).
	Context *asp.Program
	// Weight is the penalty for leaving the example uncovered in
	// noise-tolerant learning. Weight 0 marks a hard example that every
	// solution must cover.
	Weight int
}

func (e Example) String() string {
	var sb strings.Builder
	if e.Positive {
		sb.WriteString("#pos")
	} else {
		sb.WriteString("#neg")
	}
	if e.ID != "" {
		fmt.Fprintf(&sb, "(%s)", e.ID)
	}
	sb.WriteString(" {")
	for i, a := range e.Inclusions {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString("} {")
	for i, a := range e.Exclusions {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString("}")
	if e.Weight > 0 {
		fmt.Fprintf(&sb, "@%d", e.Weight)
	}
	return sb.String()
}

// Pos builds a positive hard example.
func PosExample(id string, incl, excl []asp.Atom, ctx *asp.Program) Example {
	return Example{ID: id, Positive: true, Inclusions: incl, Exclusions: excl, Context: ctx}
}

// NegExample builds a negative hard example.
func NegExample(id string, incl, excl []asp.Atom, ctx *asp.Program) Example {
	return Example{ID: id, Positive: false, Inclusions: incl, Exclusions: excl, Context: ctx}
}

// Task is an ILASP learning task: background knowledge, a hypothesis
// space (from a Bias or given explicitly), and examples.
type Task struct {
	// Background is the fixed program B.
	Background *asp.Program
	// Bias defines the hypothesis space when Space is nil.
	Bias Bias
	// Space overrides the bias with an explicit candidate list.
	Space []Candidate
	// Examples to cover.
	Examples []Example
}

// space materializes the hypothesis space.
func (t *Task) space() ([]Candidate, error) {
	if t.Space != nil {
		return t.Space, nil
	}
	return t.Bias.Space()
}

// Covers reports whether hypothesis H (rules) covers the example under
// the task's background: brave entailment of the partial interpretation
// for positive examples, absence of a witnessing answer set for negative
// ones.
func (t *Task) Covers(h []asp.Rule, e Example) (bool, error) {
	prog := asp.NewProgram()
	if t.Background != nil {
		prog.Extend(t.Background)
	}
	prog.Add(h...)
	if e.Context != nil {
		prog.Extend(e.Context)
	}
	// Force the partial interpretation: a witnessing answer set must
	// contain all inclusions and no exclusions.
	for _, a := range e.Inclusions {
		prog.Add(asp.NewConstraint(asp.Neg(a)))
	}
	for _, a := range e.Exclusions {
		prog.Add(asp.NewConstraint(asp.PosLit(a)))
	}
	witness, err := asp.HasAnswerSet(prog)
	if err != nil {
		return false, fmt.Errorf("ilasp: checking example %s: %w", e.ID, err)
	}
	if e.Positive {
		return witness, nil
	}
	return !witness, nil
}

// Result is a learned hypothesis.
type Result struct {
	// Hypothesis is the learned rule set (nil-able: the empty hypothesis
	// is a valid solution when the background already covers everything).
	Hypothesis []asp.Rule
	// Cost is the total rule cost of the hypothesis.
	Cost int
	// Covered counts covered examples; Total counts all examples.
	Covered, Total int
	// Checks counts coverage checks performed during search (stats for
	// the paper's scalability discussion).
	Checks int
}

// HypothesisProgram returns the hypothesis as a program.
func (r *Result) HypothesisProgram() *asp.Program {
	return asp.NewProgram(r.Hypothesis...)
}

func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cost %d, covered %d/%d\n", r.Cost, r.Covered, r.Total)
	for _, rule := range r.Hypothesis {
		sb.WriteString(rule.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LearnOptions configures hypothesis search.
type LearnOptions struct {
	// MaxRules bounds hypothesis cardinality (default 3).
	MaxRules int
	// MaxCost bounds total hypothesis cost (default: unlimited within
	// MaxRules).
	MaxCost int
	// Noise enables noise-tolerant search: uncovered soft examples incur
	// their Weight as penalty; the returned hypothesis minimises
	// cost + penalty. Without Noise, every example is hard.
	Noise bool
	// MaxChecks aborts after this many coverage checks (0 = unlimited);
	// guards the paper's real-time requirement.
	MaxChecks int
	// Parallelism bounds the coverage-check worker pool (0 = GOMAXPROCS,
	// 1 = serial). Results are independent of the setting: parallel runs
	// return the same hypothesis, cost, and check count as serial ones.
	Parallelism int
}

// ErrNoSolution is returned when no hypothesis within the bounds covers
// the examples.
var ErrNoSolution = fmt.Errorf("ilasp: no hypothesis within bounds covers the examples")

// ErrCheckBudget is returned when MaxChecks is exhausted.
var ErrCheckBudget = fmt.Errorf("ilasp: coverage-check budget exhausted")

// Learn searches the hypothesis space for an optimal hypothesis.
//
// Exact (default): returns a minimal-cost hypothesis covering every
// example, searching subsets in increasing total cost (ILASP's
// optimality). Noise-tolerant (opts.Noise): returns the hypothesis
// minimising cost plus the weights of uncovered soft examples; hard
// (zero-weight) examples must still be covered.
func (t *Task) Learn(opts LearnOptions) (*Result, error) {
	space, err := t.space()
	if err != nil {
		return nil, err
	}
	oracle := newTaskOracle(t, space)
	sol, err := Search(oracle, ExampleWeights(t.Examples), opts)
	if err != nil {
		return nil, err
	}
	rules := make([]asp.Rule, len(sol.Chosen))
	cost := 0
	for i, ci := range sol.Chosen {
		rules[i] = space[ci].Rule
		cost += space[ci].Cost
	}
	return &Result{
		Hypothesis: rules,
		Cost:       cost,
		Covered:    sol.Covered,
		Total:      len(t.Examples),
		Checks:     sol.Checks,
	}, nil
}

// taskOracle adapts a Task to the generic search engine: a ground-once
// coverage engine behind a memo of (hypothesis, example) verdicts. Safe
// for the search's concurrent Covers calls (distinct example indices).
//
// When the task is vectorizable (see vectorize), the oracle also serves
// the search per-candidate coverage signatures; the search then never
// calls Covers at all.
type taskOracle struct {
	task   *Task
	space  []Candidate
	engine *coverageEngine

	// noVectors forces the re-solve path; differential-test knob.
	noVectors bool
	vecOnce   sync.Once
	vec       *coverVectors

	// cache memoizes verdict rows by a hash of the chosen index set,
	// with collision buckets compared on the actual indices — no string
	// key allocation per query.
	mu    sync.Mutex
	cache map[uint64][]hypEntry
}

// hypEntry is one memoized hypothesis: its chosen indices and the
// per-example verdict row (0 unknown, 1 covered, -1 uncovered).
type hypEntry struct {
	chosen []int
	row    []int8
}

var _ Oracle = (*taskOracle)(nil)
var _ sigOracle = (*taskOracle)(nil)

func newTaskOracle(t *Task, space []Candidate) *taskOracle {
	return &taskOracle{
		task:   t,
		space:  space,
		engine: newCoverageEngine(t, space),
		cache:  make(map[uint64][]hypEntry),
	}
}

func (o *taskOracle) Candidates() []Candidate { return o.space }

// signatures vectorizes the task once; nil (permanent fallback to
// Covers) when the task does not decompose.
func (o *taskOracle) signatures() *coverVectors {
	if o.noVectors {
		return nil
	}
	o.vecOnce.Do(func() { o.vec = vectorize(o.task, o.space) })
	return o.vec
}

func (o *taskOracle) Covers(chosen []int, exampleIdx int) (bool, error) {
	h := hypHash(chosen)
	o.mu.Lock()
	var row []int8
	for _, e := range o.cache[h] {
		if intsEqual(e.chosen, chosen) {
			row = e.row
			break
		}
	}
	if row == nil {
		row = make([]int8, len(o.task.Examples))
		o.cache[h] = append(o.cache[h], hypEntry{chosen: append([]int(nil), chosen...), row: row})
	}
	v := row[exampleIdx]
	o.mu.Unlock()
	if v != 0 {
		statCacheHits.Inc()
		return v == 1, nil
	}
	statCacheMisses.Inc()
	ok, err := o.engine.covers(chosen, exampleIdx)
	if err != nil {
		return false, err
	}
	o.mu.Lock()
	if ok {
		row[exampleIdx] = 1
	} else {
		row[exampleIdx] = -1
	}
	o.mu.Unlock()
	return ok, nil
}

// hypHash is FNV-1a over the chosen candidate indices.
func hypHash(chosen []int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range chosen {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
