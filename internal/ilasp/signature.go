package ilasp

import (
	"encoding/binary"
	"runtime"
	"sync"

	"agenp/internal/asp"
)

// Coverage signatures: for independent hypothesis spaces (candidate
// heads feed nothing — the LearnIndependent condition), a hypothesis's
// coverage of an example decomposes over its candidates. Each candidate
// then gets a pair of bitsets computed once up front:
//
//   - req:  over the global requirement index (one bit per (example,
//     needed inclusion) pair) — which requirements the candidate's
//     one-step derivation satisfies;
//   - viol: over examples — where the candidate derives an excluded atom.
//
// A hypothesis H admits a witnessing answer set for example e iff the
// base is feasible for e, no chosen candidate violates e, and the OR of
// the chosen req signatures covers e's requirement range. Coverage is
// the witness bit for positive examples and its negation for negative
// ones. checkAll then becomes word-wide OR/AND over []uint64 instead of
// a ground-and-solve per (hypothesis, example) pair, with verdicts
// replayed in example order so check counting, MaxChecks budgeting, and
// the chosen solution stay byte-identical to the re-solve path.

// sigWords is a little-endian bitset.
type sigWords []uint64

func newSig(nbits int) sigWords { return make(sigWords, (nbits+63)/64) }

func (s sigWords) set(i int)      { s[i>>6] |= 1 << (uint(i) & 63) }
func (s sigWords) get(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// empty reports whether no bit is set.
func (s sigWords) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s sigWords) clear() {
	for w := range s {
		s[w] = 0
	}
}

// orInto ORs s into dst (same length).
func (s sigWords) orInto(dst sigWords) {
	for w := range s {
		dst[w] |= s[w]
	}
}

// subsetOf reports whether every bit of s is set in u.
func (s sigWords) subsetOf(u sigWords) bool {
	for w := range s {
		if s[w]&^u[w] != 0 {
			return false
		}
	}
	return true
}

// allSet reports whether every bit in [lo,hi) is set.
func (s sigWords) allSet(lo, hi int) bool {
	if lo >= hi {
		return true
	}
	wlo, whi := lo>>6, (hi-1)>>6
	if wlo == whi {
		mask := (^uint64(0) >> (64 - uint(hi-lo))) << (uint(lo) & 63)
		return s[wlo]&mask == mask
	}
	first := ^uint64(0) << (uint(lo) & 63)
	if s[wlo]&first != first {
		return false
	}
	for w := wlo + 1; w < whi; w++ {
		if s[w] != ^uint64(0) {
			return false
		}
	}
	last := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	return s[whi]&last == last
}

// coverVectors holds the per-candidate signatures of a vectorizable
// task. Immutable after vectorize; safe for concurrent reads.
type coverVectors struct {
	n    int // examples
	nreq int // total requirement bits

	// reqOff[e]..reqOff[e+1] is example e's requirement bit range.
	reqOff   []int
	feasible []bool // base solvable and no exclusion pre-derived
	positive []bool // example polarity

	req  []sigWords // per candidate, over requirement bits
	viol []sigWords // per candidate, over examples
}

// unionSig is the OR of the chosen candidates' signatures — the scratch
// state of one hypothesis evaluation.
type unionSig struct {
	req  sigWords
	viol sigWords
}

// unionInto recomputes u as the union over the chosen candidates,
// reusing u's buffers.
func (v *coverVectors) unionInto(u *unionSig, chosen []int) {
	if u.req == nil {
		u.req = newSig(v.nreq)
		u.viol = newSig(v.n)
	}
	u.req.clear()
	u.viol.clear()
	for _, ci := range chosen {
		v.req[ci].orInto(u.req)
		v.viol[ci].orInto(u.viol)
	}
}

// witness reports whether the hypothesis with union u admits a
// witnessing answer set for example e.
func (v *coverVectors) witness(u *unionSig, e int) bool {
	if !v.feasible[e] {
		return false
	}
	if u.viol.get(e) {
		return false
	}
	return u.req.allSet(v.reqOff[e], v.reqOff[e+1])
}

// covered reports example e's verdict under the hypothesis with union u.
func (v *coverVectors) covered(u *unionSig, e int) bool {
	if v.positive[e] {
		return v.witness(u, e)
	}
	return !v.witness(u, e)
}

// subsumed reports whether candidate ci adds nothing to the union:
// every requirement it fires and every violation it causes is already
// present, so extending any superset of the chosen set with ci leaves
// every example verdict unchanged and only adds cost.
func (v *coverVectors) subsumed(ci int, u *unionSig) bool {
	return v.req[ci].subsetOf(u.req) && v.viol[ci].subsetOf(u.viol)
}

// sigOracle is implemented by oracles that can express per-candidate
// coverage as precomputed signatures. signatures returns nil when the
// task is not vectorizable (or vectorization is disabled), in which
// case the search falls back to per-hypothesis oracle checks.
type sigOracle interface {
	signatures() *coverVectors
}

// vectorize computes coverage signatures for a task, or nil when the
// task does not decompose: candidates must be headed, safe, non-choice
// rules whose head predicates feed nothing (checkIndependence), and
// background ∪ context must have at most one answer set per example
// (zero models make the example infeasible but stay vectorizable).
//
// Any error — unsafe candidate, solver failure, arithmetic error during
// evaluation — returns nil rather than surfacing: the fallback re-solve
// path then reproduces the engine's lazy error behaviour exactly.
func vectorize(t *Task, space []Candidate) *coverVectors {
	if checkIndependence(t, space) != nil {
		return nil
	}
	for _, c := range space {
		if c.Rule.IsChoice() || asp.CheckSafety(c.Rule) != nil {
			return nil
		}
	}

	v := &coverVectors{n: len(t.Examples)}
	v.reqOff = make([]int, v.n+1)
	v.feasible = make([]bool, v.n)
	v.positive = make([]bool, v.n)

	type exState struct {
		ix    *asp.ModelIndex
		needs []asp.Atom
		excl  []asp.Atom
	}
	states := make([]exState, v.n)
	for ei, e := range t.Examples {
		v.positive[ei] = e.Positive
		v.reqOff[ei+1] = v.reqOff[ei]
		prog := asp.NewProgram()
		if t.Background != nil {
			prog.Extend(t.Background)
		}
		if e.Context != nil {
			prog.Extend(e.Context)
		}
		models, err := asp.Solve(prog, asp.SolveOptions{MaxModels: 2})
		if err != nil || len(models) > 1 {
			return nil
		}
		if len(models) == 0 {
			continue // infeasible: no H yields a witness
		}
		base := models[0]
		feasible := true
		for _, a := range e.Exclusions {
			if base.Contains(a) {
				feasible = false // background itself violates
				break
			}
		}
		if !feasible {
			continue
		}
		v.feasible[ei] = true
		var needs []asp.Atom
		for _, a := range e.Inclusions {
			if !base.Contains(a) {
				needs = append(needs, a)
			}
		}
		states[ei] = exState{ix: asp.NewModelIndex(base), needs: needs, excl: e.Exclusions}
		v.reqOff[ei+1] = v.reqOff[ei] + len(needs)
	}
	v.nreq = v.reqOff[v.n]

	v.req = make([]sigWords, len(space))
	v.viol = make([]sigWords, len(space))
	for ri := range space {
		v.req[ri] = newSig(v.nreq)
		v.viol[ri] = newSig(v.n)
	}

	// One-step evaluation of every candidate against every feasible
	// example's base model, sharded by candidate so each worker owns
	// disjoint signature rows and its own Evaluator scratch.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(space) {
		workers = len(space)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		failed  bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := asp.NewEvaluator()
			for ri := w; ri < len(space); ri += workers {
				for ei := range states {
					st := &states[ei]
					if st.ix == nil {
						continue
					}
					derived, err := ev.EvalPrepared(st.ix, space[ri].Rule)
					if err != nil {
						errOnce.Do(func() { failed = true })
						return
					}
					for _, d := range derived {
						for _, x := range st.excl {
							if asp.AtomsEqual(d, x) {
								v.viol[ri].set(ei)
								break
							}
						}
						for ni := range st.needs {
							if asp.AtomsEqual(d, st.needs[ni]) {
								v.req[ri].set(v.reqOff[ei] + ni)
								break
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if failed {
		return nil
	}
	return v
}

// collapseClasses groups candidates with identical signature pairs into
// dominance equivalence classes. Candidates are visited in the search's
// cost-stable order, so the first member of each class — its
// representative — is the cheapest (ties by candidate order, matching
// the branch the search would pick first anyway). skip marks every
// non-representative with positive cost: interchangeable with its
// representative in any hypothesis at no lower cost, so dropping it
// cannot change the first optimal solution the search finds. Zero-cost
// duplicates are kept — under iterative deepening on exact cost they
// can pad a hypothesis to hit a target cost.
func collapseClasses(cands []Candidate, order []int, v *coverVectors) (classes [][]int, classOf []int, skip []bool) {
	classOf = make([]int, len(cands))
	skip = make([]bool, len(cands))
	byKey := make(map[string]int, len(cands))
	var key []byte
	collapsed := 0
	for _, ci := range order {
		key = key[:0]
		for _, w := range v.req[ci] {
			key = binary.LittleEndian.AppendUint64(key, w)
		}
		key = append(key, '|')
		for _, w := range v.viol[ci] {
			key = binary.LittleEndian.AppendUint64(key, w)
		}
		id, dup := byKey[string(key)]
		if !dup {
			id = len(classes)
			byKey[string(key)] = id
			classes = append(classes, nil)
		}
		classOf[ci] = id
		classes[id] = append(classes[id], ci)
		if dup && cands[ci].Cost > 0 {
			skip[ci] = true
			collapsed++
		}
	}
	statSigCollapsed.Add(int64(collapsed))
	return classes, classOf, skip
}
