package asg

import (
	"strings"
	"testing"

	"agenp/internal/asp"
	"agenp/internal/cfg"
)

// TestGenerateAcceptsAgreement: for a family of grammars and contexts,
// every generated policy is accepted (soundness of generation) and every
// accepted string in the CFG's bounded language is generated
// (completeness of generation within the bound).
func TestGenerateAcceptsAgreement(t *testing.T) {
	grammars := []string{
		`
policy -> "accept" task { :- task(overtake)@2, weather(rain). }
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`,
		`
plan -> "go" route { :- threat(high). }
route -> "north" { route(north). }
route -> "river" { route(river). :- time(night). }
`,
		`
s -> "x" s { size(N + 1) :- size(N)@2. :- size(M), M > 2. }
s -> ε { size(0). }
`,
	}
	contexts := []string{
		"",
		"weather(rain).",
		"threat(high). time(night).",
		"weather(rain). threat(low). time(night).",
	}
	for gi, src := range grammars {
		g := mustASG(t, src)
		for ci, ctxSrc := range contexts {
			var ctx *asp.Program
			if ctxSrc != "" {
				p, err := asp.Parse(ctxSrc)
				if err != nil {
					t.Fatal(err)
				}
				ctx = p
			}
			gc := g.WithContext(ctx)
			const maxNodes = 8
			generated, err := gc.Generate(GenerateOptions{MaxNodes: maxNodes})
			if err != nil {
				t.Fatalf("grammar %d ctx %d: %v", gi, ci, err)
			}
			genSet := make(map[string]struct{}, len(generated))
			for _, p := range generated {
				genSet[p.Text()] = struct{}{}
				ok, err := gc.Accepts(p.Tokens, AcceptOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("grammar %d ctx %d: generated %q not accepted", gi, ci, p.Text())
				}
			}
			// Completeness: every CFG string within the bound that the
			// ASG accepts must have been generated.
			for _, s := range gc.CFG.GenerateStrings(cfg.GenerateOptions{MaxNodes: maxNodes}) {
				tokens := strings.Fields(s)
				ok, err := gc.Accepts(tokens, AcceptOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if _, wasGenerated := genSet[s]; ok && !wasGenerated {
					t.Errorf("grammar %d ctx %d: accepted %q missing from generation", gi, ci, s)
				}
				if !ok && s != "" {
					if _, wasGenerated := genSet[s]; wasGenerated {
						t.Errorf("grammar %d ctx %d: rejected %q was generated", gi, ci, s)
					}
				}
			}
		}
	}
}

// TestContextMonotonicityOfConstraints: adding a pure-constraint
// annotation can only shrink the language.
func TestContextMonotonicityOfConstraints(t *testing.T) {
	g := mustASG(t, `
policy -> "a" | "b" | "c"
`)
	all, err := g.Generate(GenerateOptions{MaxNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := asp.ParseRule(":- blocked.")
	if err != nil {
		t.Fatal(err)
	}
	for prodID := 0; prodID < 3; prodID++ {
		constrained, err := g.WithHypothesis([]HypothesisRule{{Rule: r, ProdID: prodID}})
		if err != nil {
			t.Fatal(err)
		}
		// Without blocked in context: language unchanged.
		out, err := constrained.Generate(GenerateOptions{MaxNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(all) {
			t.Errorf("prod %d: vacuous constraint changed language: %d vs %d", prodID, len(out), len(all))
		}
		// With blocked: exactly one string removed.
		blocked, _ := asp.Parse("blocked.")
		out, err = constrained.WithContext(blocked).Generate(GenerateOptions{MaxNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(all)-1 {
			t.Errorf("prod %d: blocked context left %d strings, want %d", prodID, len(out), len(all)-1)
		}
	}
}
