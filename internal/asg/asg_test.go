package asg

import (
	"strings"
	"testing"

	"agenp/internal/asp"
	"agenp/internal/cfg"
)

// anbncn is the flagship ASG from Law et al.: the non-context-free
// language a^n b^n c^n, obtained by annotating a CFG for a*b*c* with size
// counters and equality constraints.
const anbncn = `
start -> as bs cs {
    :- size(X)@1, size(Y)@2, X != Y.
    :- size(X)@2, size(Y)@3, X != Y.
}
as -> "a" as { size(X + 1) :- size(X)@2. }
as -> ε { size(0). }
bs -> "b" bs { size(X + 1) :- size(X)@2. }
bs -> ε { size(0). }
cs -> "c" cs { size(X + 1) :- size(X)@2. }
cs -> ε { size(0). }
`

func mustASG(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := ParseASG(src)
	if err != nil {
		t.Fatalf("ParseASG: %v", err)
	}
	return g
}

func toks(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Fields(s)
}

func TestParseASGStructure(t *testing.T) {
	g := mustASG(t, anbncn)
	if g.CFG.Start != "start" {
		t.Errorf("start = %q", g.CFG.Start)
	}
	if len(g.CFG.Productions) != 7 {
		t.Fatalf("got %d productions, want 7", len(g.CFG.Productions))
	}
	if g.Annotations[0] == nil || len(g.Annotations[0].Rules) != 2 {
		t.Errorf("start production should carry 2 constraints")
	}
	for id := 1; id <= 6; id++ {
		if g.Annotations[id] == nil || len(g.Annotations[id].Rules) != 1 {
			t.Errorf("production %d should carry 1 rule", id)
		}
	}
}

func TestAnBnCnMembership(t *testing.T) {
	g := mustASG(t, anbncn)
	tests := []struct {
		give string
		want bool
	}{
		{give: "", want: true}, // n = 0
		{give: "a b c", want: true},
		{give: "a a b b c c", want: true},
		{give: "a a a b b b c c c", want: true},
		{give: "a b", want: false},
		{give: "a b b c", want: false},
		{give: "a a b c c", want: false},
		{give: "b a c", want: false}, // not even in the CFG
		{give: "a c", want: false},
	}
	for _, tt := range tests {
		name := tt.give
		if name == "" {
			name = "(empty)"
		}
		t.Run(name, func(t *testing.T) {
			got, err := g.Accepts(toks(tt.give), AcceptOptions{})
			if err != nil {
				t.Fatalf("Accepts: %v", err)
			}
			if got != tt.want {
				t.Errorf("Accepts(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestCFGLanguageIsSuperset(t *testing.T) {
	g := mustASG(t, anbncn)
	// "a b b c" is in the CFG language but not the ASG language.
	s := toks("a b b c")
	if !g.CFG.Accepts(s) {
		t.Fatal("CFG should accept a b b c")
	}
	ok, err := g.Accepts(s, AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ASG should reject a b b c")
	}
}

func TestTreeProgramLocalization(t *testing.T) {
	g := mustASG(t, `
s -> "x" s { size(N + 1) :- size(N)@2. }
s -> ε { size(0). }
`)
	tree, err := g.CFG.Parse(toks("x x"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := g.TreeProgram(tree)
	if err != nil {
		t.Fatal(err)
	}
	// Expect rules at traces [] and [2], plus fact at [2,2].
	s := prog.String()
	for _, want := range []string{"size@r", "size@r_2", "size@r_2_2"} {
		if !strings.Contains(s, want) {
			t.Errorf("tree program missing localized predicate %q:\n%s", want, s)
		}
	}
	models, err := asp.Solve(prog, asp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("got %d models, want 1", len(models))
	}
	// The root should carry size(2).
	rootSize := asp.NewAtom("size@r", asp.Integer{Value: 2})
	if !models[0].Contains(rootSize) {
		t.Errorf("root size missing; model = %s", models[0])
	}
}

func TestDelocalizeAtom(t *testing.T) {
	a := asp.NewAtom("size@r_2", asp.Integer{Value: 1})
	plain, key := DelocalizeAtom(a)
	if plain.Predicate != "size" || key != "r_2" {
		t.Errorf("got %v / %q", plain, key)
	}
	b := asp.NewAtom("plain")
	plain2, key2 := DelocalizeAtom(b)
	if plain2.Predicate != "plain" || key2 != "" {
		t.Errorf("got %v / %q", plain2, key2)
	}
}

func TestWithContext(t *testing.T) {
	// A policy grammar where "fly" tasks are only valid when the context
	// says the weather is clear.
	g := mustASG(t, `
policy -> "fly" { :- not weather(clear). }
policy -> "drive"
`)
	clear := asp.NewProgram(asp.NewFact(asp.NewAtom("weather", asp.Constant{Name: "clear"})))
	storm := asp.NewProgram(asp.NewFact(asp.NewAtom("weather", asp.Constant{Name: "storm"})))

	tests := []struct {
		name string
		ctx  *asp.Program
		give string
		want bool
	}{
		{name: "fly in clear", ctx: clear, give: "fly", want: true},
		{name: "fly in storm", ctx: storm, give: "fly", want: false},
		{name: "drive in storm", ctx: storm, give: "drive", want: true},
		{name: "fly no context", ctx: asp.NewProgram(), give: "fly", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := g.WithContext(tt.ctx).Accepts(toks(tt.give), AcceptOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
	// The original grammar must be unchanged by WithContext.
	ok, err := g.Accepts(toks("fly"), AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("original grammar mutated by WithContext")
	}
}

func TestWithHypothesis(t *testing.T) {
	g := mustASG(t, `
policy -> "fly"
policy -> "drive"
`)
	// Initially everything is valid.
	for _, s := range []string{"fly", "drive"} {
		ok, err := g.Accepts(toks(s), AcceptOptions{})
		if err != nil || !ok {
			t.Fatalf("Accepts(%q) = %v, %v", s, ok, err)
		}
	}
	// Learn a constraint forbidding "fly" unless the context clears it.
	r, err := asp.ParseRule(":- not weather(clear).")
	if err != nil {
		t.Fatal(err)
	}
	h := []HypothesisRule{{Rule: r, ProdID: 0}}
	gh, err := g.WithHypothesis(h)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := gh.Accepts(toks("fly"), AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("hypothesis constraint not applied")
	}
	ok, err = gh.Accepts(toks("drive"), AcceptOptions{})
	if err != nil || !ok {
		t.Errorf("drive should stay valid: %v, %v", ok, err)
	}
	// Out-of-range production id.
	if _, err := g.WithHypothesis([]HypothesisRule{{Rule: r, ProdID: 99}}); err == nil {
		t.Error("expected error for unknown production id")
	}
}

func TestHypothesisRuleCost(t *testing.T) {
	r1, _ := asp.ParseRule("ok.")
	r2, _ := asp.ParseRule("ok :- a, not b.")
	r3, _ := asp.ParseRule(":- a.")
	tests := []struct {
		rule asp.Rule
		want int
	}{
		{rule: r1, want: 1},
		{rule: r2, want: 3},
		{rule: r3, want: 1},
	}
	for _, tt := range tests {
		h := HypothesisRule{Rule: tt.rule}
		if got := h.Cost(); got != tt.want {
			t.Errorf("Cost(%s) = %d, want %d", DisplayRule(tt.rule), got, tt.want)
		}
	}
}

func TestGenerate(t *testing.T) {
	g := mustASG(t, `
policy -> "permit" who { :- who(bob)@2. }
policy -> "deny" who
who -> "alice" { who(alice). }
who -> "bob" { who(bob). }
`)
	out, err := g.Generate(GenerateOptions{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(out))
	for _, o := range out {
		got[o.Text()] = true
	}
	want := []string{"permit alice", "deny alice", "deny bob"}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing %q in generated language %v", w, got)
		}
	}
	if got["permit bob"] {
		t.Error("permit bob should be filtered by the annotation")
	}
	if len(out) != 3 {
		t.Errorf("got %d strings, want 3", len(out))
	}
}

func TestGenerateMaxStrings(t *testing.T) {
	g := mustASG(t, `
s -> "x" | "x" s
`)
	out, err := g.Generate(GenerateOptions{MaxNodes: 20, MaxStrings: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Errorf("got %d strings, want 4", len(out))
	}
}

func TestGenerateContextDependent(t *testing.T) {
	g := mustASG(t, `
policy -> "fly" { :- not weather(clear). }
policy -> "drive"
`)
	clear := asp.NewProgram(asp.NewFact(asp.NewAtom("weather", asp.Constant{Name: "clear"})))
	out, err := g.WithContext(clear).Generate(GenerateOptions{MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("clear context: got %d policies, want 2 (%v)", len(out), out)
	}
	out, err = g.Generate(GenerateOptions{MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Text() != "drive" {
		t.Errorf("no context: got %v, want [drive]", out)
	}
}

func TestAnnotationValidation(t *testing.T) {
	// @3 out of range for a 2-symbol production.
	_, err := ParseASG(`
s -> "x" s { size(N) :- size(N)@3. }
s -> ε { size(0). }
`)
	if err == nil {
		t.Error("expected out-of-range annotation error")
	}
	// @0 invalid.
	_, err = ParseASG(`
s -> "x" { ok :- size(N)@0. }
`)
	if err == nil {
		t.Error("expected @0 annotation error")
	}
}

func TestParseASGErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "missing arrow", give: "s \"x\""},
		{name: "unterminated block", give: "s -> \"x\" { ok."},
		{name: "bad asp", give: "s -> \"x\" { ok :- . }"},
		{name: "empty", give: "  # nothing\n"},
		{name: "undefined nonterminal", give: "s -> t\n"},
		{name: "unterminated terminal", give: "s -> \"x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseASG(tt.give); err == nil {
				t.Errorf("ParseASG(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestDisplayRule(t *testing.T) {
	g := mustASG(t, `
s -> "x" s { size(N + 1) :- size(N)@2, not stop. }
s -> ε { size(0). }
`)
	r := g.Annotations[0].Rules[0]
	got := DisplayRule(r)
	want := "size((N + 1)) :- size(N)@2, not stop."
	if got != want {
		t.Errorf("DisplayRule = %q, want %q", got, want)
	}
}

func TestASGString(t *testing.T) {
	g := mustASG(t, `
s -> "x" s { size(N + 1) :- size(N)@2. }
s -> ε { size(0). }
`)
	s := g.String()
	for _, want := range []string{`s -> "x" s {`, "size((N + 1)) :- size(N)@2.", "s -> ε"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestASGAlternationShorthand(t *testing.T) {
	g := mustASG(t, `
s -> "a" | "b" | "c" t
t -> "d"
`)
	if len(g.CFG.Productions) != 4 {
		t.Fatalf("got %d productions, want 4", len(g.CFG.Productions))
	}
	ok, err := g.Accepts([]string{"c", "d"}, AcceptOptions{})
	if err != nil || !ok {
		t.Errorf("Accepts(c d) = %v, %v", ok, err)
	}
}

func TestCloneIsolation(t *testing.T) {
	g := mustASG(t, `
s -> "x" { ok. }
`)
	c := g.Clone()
	r, _ := asp.ParseRule(":- ok.")
	c.Annotations[0].Add(r)
	if len(g.Annotations[0].Rules) != 1 {
		t.Error("Clone shares annotation storage with original")
	}
}

func TestNewValidations(t *testing.T) {
	base, err := cfg.ParseGrammar("s -> \"x\"\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(base, map[int]*asp.Program{5: asp.NewProgram()}); err == nil {
		t.Error("expected unknown production error")
	}
}

// TestChoiceAnnotation exercises ASP choice rules inside annotations: a
// node may optionally mark itself, and a constraint prunes unmarked
// trees.
func TestChoiceAnnotation(t *testing.T) {
	g := mustASG(t, `
s -> "x" {
    {mark}.
    :- not mark.
}
`)
	ok, err := g.Accepts([]string{"x"}, AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("choice + constraint should still admit the marked model")
	}
}
