package asg

import (
	"fmt"
	"strings"

	"agenp/internal/asp"
	"agenp/internal/cfg"
)

// ParseASG parses the textual answer set grammar format:
//
//	start -> policy_list {
//	    :- not ok@1.
//	}
//	policy_list -> policy policy_list {
//	    ok :- ok@1, ok@2.
//	}
//	policy_list -> policy { ok :- ok@1. }
//	policy -> "permit" "(" subject ")"
//	subject -> "alice" | "bob"
//
// Each production is `lhs -> sym...` optionally followed by an ASP
// annotation in braces (atoms may carry `@i` child annotations, 1-based).
// The `|` alternation shorthand is only allowed for productions without
// an annotation block. '#' comments outside blocks, '%' comments inside
// ASP blocks. The first production's left-hand side is the start symbol.
func ParseASG(src string) (*Grammar, error) {
	s := &asgScanner{src: src, line: 1}
	var (
		prods    []cfg.Production
		anns     = make(map[int]*asp.Program)
		annLines = make(map[int]int)
		start    string
	)
	for {
		s.skipSpace()
		if s.eof() {
			break
		}
		lhs, err := s.ident()
		if err != nil {
			return nil, err
		}
		if start == "" {
			start = lhs
		}
		if err := s.arrow(); err != nil {
			return nil, err
		}
		// Read alternatives.
		for {
			syms, err := s.symbols()
			if err != nil {
				return nil, err
			}
			id := len(prods)
			prods = append(prods, cfg.Production{Lhs: lhs, Rhs: syms})
			s.skipSpace()
			if s.peek() == '{' {
				blockLine := s.line
				raw, err := s.braceBlock()
				if err != nil {
					return nil, err
				}
				prog, err := asp.ParseAnnotated(raw, AnnotationHook)
				if err != nil {
					return nil, fmt.Errorf("asg: annotation of %s -> ... (block at line %d): %w", lhs, blockLine, err)
				}
				anns[id] = prog
				annLines[id] = blockLine
				break
			}
			if s.peek() == '|' {
				s.next()
				continue
			}
			break
		}
	}
	if start == "" {
		return nil, fmt.Errorf("asg: empty grammar")
	}
	g, err := cfg.New(start, prods)
	if err != nil {
		return nil, fmt.Errorf("asg: %w", err)
	}
	out, err := New(g, anns)
	if err != nil {
		return nil, err
	}
	out.AnnLines = make([]int, len(g.Productions))
	for id, line := range annLines {
		out.AnnLines[id] = line
	}
	return out, nil
}

// MustParseASG parses an ASG or panics; for tests and package-level
// grammar literals in examples.
func MustParseASG(src string) *Grammar {
	g, err := ParseASG(src)
	if err != nil {
		panic(err)
	}
	return g
}

type asgScanner struct {
	src  string
	pos  int
	line int
}

func (s *asgScanner) eof() bool { return s.pos >= len(s.src) }

func (s *asgScanner) peek() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.pos]
}

func (s *asgScanner) next() byte {
	c := s.src[s.pos]
	s.pos++
	if c == '\n' {
		s.line++
	}
	return c
}

func (s *asgScanner) errf(format string, args ...any) error {
	return fmt.Errorf("asg: line %d: %s", s.line, fmt.Sprintf(format, args...))
}

// skipSpace skips whitespace and '#' comments.
func (s *asgScanner) skipSpace() {
	for !s.eof() {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			s.next()
		case c == '#':
			for !s.eof() && s.peek() != '\n' {
				s.next()
			}
		default:
			return
		}
	}
}

// skipInlineSpace skips spaces/tabs and comments but NOT newlines.
func (s *asgScanner) skipInlineSpace() {
	for !s.eof() {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			s.next()
		case c == '#':
			for !s.eof() && s.peek() != '\n' {
				s.next()
			}
		default:
			return
		}
	}
}

func (s *asgScanner) ident() (string, error) {
	s.skipSpace()
	startPos := s.pos
	for !s.eof() {
		c := s.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '-' || c == '"' || c == '{' || c == '|' || c == '#' {
			break
		}
		s.next()
	}
	if s.pos == startPos {
		return "", s.errf("expected identifier")
	}
	return s.src[startPos:s.pos], nil
}

func (s *asgScanner) arrow() error {
	s.skipSpace()
	if s.pos+1 < len(s.src) && s.src[s.pos] == '-' && s.src[s.pos+1] == '>' {
		s.pos += 2
		return nil
	}
	return s.errf("expected '->'")
}

// symbols reads RHS symbols on the current logical line: terminals
// (quoted) and nonterminals, until '{', '|', newline followed by a new
// production, or EOF.
func (s *asgScanner) symbols() ([]cfg.Symbol, error) {
	var syms []cfg.Symbol
	for {
		s.skipInlineSpace()
		if s.eof() {
			return syms, nil
		}
		c := s.peek()
		switch {
		case c == '\n':
			// Newline ends the RHS unless the next non-space char is '{'
			// (annotation on the following line).
			save, saveLine := s.pos, s.line
			s.skipSpace()
			if s.peek() == '{' || s.peek() == '|' {
				continue
			}
			s.pos, s.line = save, saveLine
			return syms, nil
		case c == '{' || c == '|':
			return syms, nil
		case c == '"':
			s.next()
			var sb strings.Builder
			for {
				if s.eof() {
					return nil, s.errf("unterminated terminal")
				}
				c := s.next()
				if c == '\\' && !s.eof() {
					sb.WriteByte(s.next())
					continue
				}
				if c == '"' {
					break
				}
				sb.WriteByte(c)
			}
			syms = append(syms, cfg.T(sb.String()))
		default:
			word, err := s.ident()
			if err != nil {
				return nil, err
			}
			if word != "ε" && word != "epsilon" {
				syms = append(syms, cfg.NT(word))
			}
		}
	}
}

// braceBlock consumes a balanced '{...}' block and returns the inner
// text. Nested braces (ASP choice rules) and quoted strings are handled;
// '%' comments inside the block are preserved for the ASP parser.
func (s *asgScanner) braceBlock() (string, error) {
	if s.peek() != '{' {
		return "", s.errf("expected '{'")
	}
	s.next()
	depth := 1
	start := s.pos
	for !s.eof() {
		c := s.next()
		switch c {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return s.src[start : s.pos-1], nil
			}
		case '"':
			for !s.eof() {
				c := s.next()
				if c == '\\' && !s.eof() {
					s.next()
					continue
				}
				if c == '"' {
					break
				}
			}
		case '%':
			for !s.eof() && s.peek() != '\n' {
				s.next()
			}
		}
	}
	return "", s.errf("unterminated annotation block")
}
