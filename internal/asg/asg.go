// Package asg implements Answer Set Grammars (ASGs), the core formalism
// of the AGENP paper (Section II): context-free grammars whose production
// rules are annotated with ASP programs. An annotated atom `a@i` refers
// to the i-th child of the parse-tree node at which the production is
// applied; unannotated atoms refer to the node itself.
//
// For a parse tree PT of the underlying CFG, the grammar induces the ASP
// program G[PT] that localizes every annotation to the node's trace
// (Definition 2 / the G[PT] mapping of Law et al., AAAI-19). A string s
// is in the language L(G) iff some parse tree's program has an answer
// set. Adding a context program C to every production yields G(C), the
// set of policies valid in context C — the paper's generative policy
// model reading of an ASG.
package asg

import (
	"fmt"
	"strconv"
	"strings"

	"agenp/internal/asp"
	"agenp/internal/cfg"
)

// annSep separates a predicate name from its annotation index in the
// intermediate (pre-trace) encoding produced by the ASG parser. It cannot
// occur in source programs.
const annSep = "\x00"

// traceSep separates a predicate name from its trace key in localized
// (ground-tree) programs.
const traceSep = "@"

// Grammar is an answer set grammar: a CFG plus one annotation program per
// production (possibly empty).
type Grammar struct {
	CFG *cfg.Grammar

	// Annotations[i] is the ASP annotation of production i, with atoms in
	// the intermediate encoding (predicate + annSep + childIndex for
	// annotated atoms). May be nil.
	Annotations []*asp.Program

	// AnnLines[i], when non-zero, is the 1-based line of the source .asg
	// file where production i's annotation block starts. Positions inside
	// Annotations[i] are relative to the block; adding AnnLines[i]-1 maps
	// them back to the grammar file. Nil for programmatically built
	// grammars.
	AnnLines []int
}

// AnnLine returns the source line where production i's annotation block
// starts, or 0 when unknown.
func (g *Grammar) AnnLine(i int) int {
	if i < 0 || i >= len(g.AnnLines) {
		return 0
	}
	return g.AnnLines[i]
}

// Clone returns a deep-enough copy: the CFG is shared (immutable by
// convention), annotation programs are copied.
func (g *Grammar) Clone() *Grammar {
	ann := make([]*asp.Program, len(g.Annotations))
	for i, p := range g.Annotations {
		if p != nil {
			ann[i] = p.Clone()
		}
	}
	var lines []int
	if g.AnnLines != nil {
		lines = append([]int(nil), g.AnnLines...)
	}
	return &Grammar{CFG: g.CFG, Annotations: ann, AnnLines: lines}
}

// encodeAnn encodes an annotated atom's predicate in the intermediate
// form.
func encodeAnn(pred string, child int) string {
	return pred + annSep + strconv.Itoa(child)
}

// decodeAnn splits an intermediate-form predicate into name and child
// annotation; ok is false for unannotated predicates.
func decodeAnn(pred string) (name string, child int, ok bool) {
	i := strings.IndexByte(pred, annSep[0])
	if i < 0 {
		return pred, 0, false
	}
	c, err := strconv.Atoi(pred[i+1:])
	if err != nil {
		return pred, 0, false
	}
	return pred[:i], c, true
}

// EncodeAnnotated returns the intermediate-form predicate for `pred@child`,
// for building annotation rules and hypothesis spaces programmatically.
func EncodeAnnotated(pred string, child int) string { return encodeAnn(pred, child) }

// DecodeAnnotated splits an intermediate-form predicate into its surface
// name and child annotation; ok is false for unannotated predicates. It
// is the inverse of EncodeAnnotated, used when rendering diagnostics
// about annotation programs.
func DecodeAnnotated(pred string) (name string, child int, ok bool) { return decodeAnn(pred) }

// AnnotationHook is the asp.ParseAnnotated hook that encodes annotations
// in the intermediate form.
func AnnotationHook(a asp.Atom, ann int, has bool) asp.Atom {
	if has {
		a.Predicate = encodeAnn(a.Predicate, ann)
	}
	return a
}

// New builds an ASG from a CFG and per-production annotation programs
// (map from production ID). Annotation indices are validated against
// production arity.
func New(g *cfg.Grammar, annotations map[int]*asp.Program) (*Grammar, error) {
	out := &Grammar{CFG: g, Annotations: make([]*asp.Program, len(g.Productions))}
	for id, prog := range annotations {
		if id < 0 || id >= len(g.Productions) {
			return nil, fmt.Errorf("asg: annotation for unknown production %d", id)
		}
		if err := validateAnnotation(g.Productions[id], prog); err != nil {
			return nil, err
		}
		out.Annotations[id] = prog
	}
	return out, nil
}

func validateAnnotation(p cfg.Production, prog *asp.Program) error {
	if prog == nil {
		return nil
	}
	check := func(a asp.Atom) error {
		if _, child, ok := decodeAnn(a.Predicate); ok {
			if child < 1 || child > len(p.Rhs) {
				return fmt.Errorf("asg: annotation @%d out of range for production %q (arity %d)", child, p.String(), len(p.Rhs))
			}
		}
		return nil
	}
	for _, r := range prog.Rules {
		if r.Head != nil {
			if err := check(*r.Head); err != nil {
				return err
			}
		}
		for _, a := range r.Choice {
			if err := check(a); err != nil {
				return err
			}
		}
		for _, l := range r.Body {
			if l.IsCmp {
				continue
			}
			if err := check(l.Atom); err != nil {
				return err
			}
		}
	}
	return nil
}

// localizePredicate attaches a trace key to a predicate name.
func localizePredicate(pred string, tr cfg.Trace) string {
	return pred + traceSep + tr.Key()
}

// DelocalizeAtom strips the trace suffix from a localized atom, returning
// the original predicate and the trace key ("" when the atom was not
// localized). Useful for rendering answer sets of tree programs.
func DelocalizeAtom(a asp.Atom) (asp.Atom, string) {
	i := strings.LastIndex(a.Predicate, traceSep)
	if i < 0 {
		return a, ""
	}
	key := a.Predicate[i+1:]
	a.Predicate = a.Predicate[:i]
	return a, key
}

// localizeRule rewrites one annotation rule for the node at trace tr:
// `a@i` atoms move to the i-th child's trace, unannotated atoms to tr.
func localizeRule(r asp.Rule, tr cfg.Trace) asp.Rule {
	localAtom := func(a asp.Atom) asp.Atom {
		name, child, ok := decodeAnn(a.Predicate)
		if ok {
			a.Predicate = localizePredicate(name, tr.Child(child))
		} else {
			a.Predicate = localizePredicate(name, tr)
		}
		return a
	}
	out := asp.Rule{Pos: r.Pos}
	if r.Head != nil {
		h := localAtom(*r.Head)
		out.Head = &h
	}
	if len(r.Choice) > 0 {
		out.Choice = make([]asp.Atom, len(r.Choice))
		for i, a := range r.Choice {
			out.Choice[i] = localAtom(a)
		}
	}
	out.Body = make([]asp.Literal, len(r.Body))
	for i, l := range r.Body {
		if l.IsCmp {
			out.Body[i] = l
			continue
		}
		out.Body[i] = asp.Literal{Atom: localAtom(l.Atom), Negated: l.Negated, Pos: l.Pos}
	}
	return out
}

// TreeProgram builds G[PT]: the union over all interior nodes n (with
// trace t and production p) of the annotation of p localized at t.
// Terminal leaves contribute nothing.
func (g *Grammar) TreeProgram(t *cfg.Tree) (*asp.Program, error) {
	// Pre-count the localized rules (a trace-free walk) so the program's
	// rule slice is allocated once; membership checks build a fresh tree
	// program per parse tree, making append growth here a hot cost.
	total := 0
	var count func(node *cfg.Tree)
	count = func(node *cfg.Tree) {
		if node.Prod != nil {
			if id := node.Prod.ID; id >= 0 && id < len(g.Annotations) && g.Annotations[id] != nil {
				total += len(g.Annotations[id].Rules)
			}
		}
		for _, c := range node.Children {
			count(c)
		}
	}
	count(t)
	prog := &asp.Program{Rules: make([]asp.Rule, 0, total)}
	var err error
	t.Walk(func(node *cfg.Tree, tr cfg.Trace) bool {
		if node.Prod == nil {
			return true
		}
		id := node.Prod.ID
		if id < 0 || id >= len(g.Annotations) {
			err = fmt.Errorf("asg: tree uses unknown production id %d", id)
			return false
		}
		ann := g.Annotations[id]
		if ann == nil {
			return true
		}
		for _, r := range ann.Rules {
			prog.Add(localizeRule(r, tr))
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// TreeValid reports whether the parse tree satisfies the grammar's
// semantic conditions: G[PT] has at least one answer set.
func (g *Grammar) TreeValid(t *cfg.Tree) (bool, error) {
	prog, err := g.TreeProgram(t)
	if err != nil {
		return false, err
	}
	return asp.HasAnswerSet(prog)
}

// AcceptOptions configures membership checks and generation.
type AcceptOptions struct {
	// MaxTrees caps the parse trees considered per string (ambiguity cap;
	// 0 = cfg.DefaultMaxTrees).
	MaxTrees int
}

// Accepts reports whether the token string is in L(G): some parse tree of
// the underlying CFG has a satisfiable tree program.
func (g *Grammar) Accepts(tokens []string, opts AcceptOptions) (bool, error) {
	trees := g.CFG.ParseAll(tokens, cfg.ParseOptions{MaxTrees: opts.MaxTrees})
	for _, t := range trees {
		ok, err := g.TreeValid(t)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// WithContext returns G(C): the grammar with the context program's rules
// added to the annotation of every production (paper Section III.A.1).
// Context atoms are unannotated, so each node sees the context at its own
// trace.
func (g *Grammar) WithContext(c *asp.Program) *Grammar {
	if c == nil || len(c.Rules) == 0 {
		return g
	}
	// Build each extended annotation in one exact-size allocation rather
	// than Clone (one copy) followed by Extend (a second, growing copy).
	ann := make([]*asp.Program, len(g.Annotations))
	for i, p := range g.Annotations {
		n := 0
		if p != nil {
			n = len(p.Rules)
		}
		rules := make([]asp.Rule, 0, n+len(c.Rules))
		if p != nil {
			rules = append(rules, p.Rules...)
		}
		rules = append(rules, c.Rules...)
		ann[i] = &asp.Program{Rules: rules}
	}
	var lines []int
	if g.AnnLines != nil {
		lines = append([]int(nil), g.AnnLines...)
	}
	return &Grammar{CFG: g.CFG, Annotations: ann, AnnLines: lines}
}

// HypothesisRule is a learnable annotation rule attached to a specific
// production (an element of the hypothesis space S_M of Definition 3).
type HypothesisRule struct {
	Rule   asp.Rule
	ProdID int
}

func (h HypothesisRule) String() string {
	return fmt.Sprintf("[prod %d] %s", h.ProdID, DisplayRule(h.Rule))
}

// Cost is the rule's length: 1 for the head plus 1 per body literal.
// Matches the minimality objective of ILASP-style learning.
func (h HypothesisRule) Cost() int {
	c := len(h.Rule.Body)
	if h.Rule.Head != nil || len(h.Rule.Choice) > 0 {
		c++
	}
	if c == 0 {
		c = 1
	}
	return c
}

// WithHypothesis returns G : H — the grammar extended by adding each
// hypothesis rule to its production's annotation.
func (g *Grammar) WithHypothesis(h []HypothesisRule) (*Grammar, error) {
	out := g.Clone()
	for _, hr := range h {
		if hr.ProdID < 0 || hr.ProdID >= len(out.Annotations) {
			return nil, fmt.Errorf("asg: hypothesis rule for unknown production %d", hr.ProdID)
		}
		if err := validateAnnotation(out.CFG.Productions[hr.ProdID], asp.NewProgram(hr.Rule)); err != nil {
			return nil, err
		}
		if out.Annotations[hr.ProdID] == nil {
			out.Annotations[hr.ProdID] = asp.NewProgram()
		}
		out.Annotations[hr.ProdID].Add(hr.Rule)
	}
	return out, nil
}

// Generated is one element of the (bounded) language of an ASG.
type Generated struct {
	Tokens []string
	Tree   *cfg.Tree
}

// Text returns the generated tokens joined by spaces.
func (g Generated) Text() string { return strings.Join(g.Tokens, " ") }

// GenerateOptions bounds ASG language enumeration.
type GenerateOptions struct {
	// MaxNodes bounds derivation tree size.
	MaxNodes int
	// MaxStrings caps the number of *valid* strings returned
	// (0 = unlimited within MaxNodes).
	MaxStrings int
	// MaxCandidates caps the number of candidate trees examined
	// (0 = unlimited).
	MaxCandidates int
}

// Generate enumerates the strings of L(G) derivable with trees of at most
// MaxNodes nodes: it enumerates CFG derivation trees and keeps those
// whose tree program has an answer set. Duplicate strings (from distinct
// trees) are suppressed.
func (g *Grammar) Generate(opts GenerateOptions) ([]Generated, error) {
	var (
		out        []Generated
		seen       = make(map[string]struct{})
		candidates int
		firstErr   error
	)
	g.CFG.Generate(cfg.GenerateOptions{MaxNodes: opts.MaxNodes}, func(t *cfg.Tree) bool {
		candidates++
		if opts.MaxCandidates > 0 && candidates > opts.MaxCandidates {
			return false
		}
		text := t.Text()
		if _, dup := seen[text]; dup {
			return true
		}
		ok, err := g.TreeValid(t)
		if err != nil {
			firstErr = err
			return false
		}
		if ok {
			seen[text] = struct{}{}
			out = append(out, Generated{Tokens: t.Tokens(), Tree: t})
			if opts.MaxStrings > 0 && len(out) >= opts.MaxStrings {
				return false
			}
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DisplayRule renders a rule in the intermediate encoding back in `a@i`
// surface syntax.
func DisplayRule(r asp.Rule) string {
	display := func(a asp.Atom) string {
		name, child, ok := decodeAnn(a.Predicate)
		s := asp.Atom{Predicate: name, Args: a.Args}.String()
		if ok {
			s += "@" + strconv.Itoa(child)
		}
		return s
	}
	var head string
	switch {
	case len(r.Choice) > 0:
		parts := make([]string, len(r.Choice))
		for i, a := range r.Choice {
			parts[i] = display(a)
		}
		head = "{" + strings.Join(parts, "; ") + "}"
	case r.Head != nil:
		head = display(*r.Head)
	}
	if len(r.Body) == 0 {
		return head + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		switch {
		case l.IsCmp:
			parts[i] = l.String()
		case l.Negated:
			parts[i] = "not " + display(l.Atom)
		default:
			parts[i] = display(l.Atom)
		}
	}
	if head == "" {
		return ":- " + strings.Join(parts, ", ") + "."
	}
	return head + " :- " + strings.Join(parts, ", ") + "."
}

// String renders the ASG in its source syntax.
func (g *Grammar) String() string {
	var sb strings.Builder
	for i, p := range g.CFG.Productions {
		sb.WriteString(p.String())
		if i < len(g.Annotations) && g.Annotations[i] != nil && len(g.Annotations[i].Rules) > 0 {
			sb.WriteString(" {\n")
			for _, r := range g.Annotations[i].Rules {
				sb.WriteString("  ")
				sb.WriteString(DisplayRule(r))
				sb.WriteByte('\n')
			}
			sb.WriteString("}")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
