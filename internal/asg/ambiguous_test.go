package asg

import (
	"testing"

	"agenp/internal/asp"
)

// TestAmbiguousMembershipSomeTree checks the existential semantics of
// Definition 2: a string is in L(G) if at least one of its parse trees
// has a satisfiable program, even when other trees of the same string
// are contradictory.
func TestAmbiguousMembershipSomeTree(t *testing.T) {
	// Two productions derive the same string "x": one annotated with an
	// unsatisfiable program, one clean.
	g := mustASG(t, `
s -> bad | good
bad -> "x" { p. :- p. }
good -> "x"
`)
	ok, err := g.Accepts([]string{"x"}, AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the good parse tree should admit the string")
	}
	// Remove the good route: now no tree is satisfiable.
	g2 := mustASG(t, `
s -> bad | bad2
bad -> "x" { p. :- p. }
bad2 -> "x" { q. :- q. }
`)
	ok, err = g2.Accepts([]string{"x"}, AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("every parse tree is contradictory; string must be rejected")
	}
}

// TestAmbiguousTreeCapRespected: membership under a tight MaxTrees cap
// still works when the satisfiable tree is among the first returned.
func TestAmbiguousTreeCap(t *testing.T) {
	g := mustASG(t, `
s -> a | b
a -> "x"
b -> "x" { p. :- p. }
`)
	ok, err := g.Accepts([]string{"x"}, AcceptOptions{MaxTrees: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("first tree (production order) should be the satisfiable one")
	}
}

// TestAmbiguousGenerationDedup: generation suppresses duplicate strings
// from distinct trees but keeps the string if any tree validates.
func TestAmbiguousGenerationDedup(t *testing.T) {
	g := mustASG(t, `
s -> bad | good
bad -> "x" { p. :- p. }
good -> "x"
`)
	out, err := g.Generate(GenerateOptions{MaxNodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Text() != "x" {
		t.Errorf("generated %v, want exactly [x]", out)
	}
}

// TestAnnotationsAcrossAmbiguousTreesDoNotLeak: the programs of distinct
// parse trees are solved independently; an atom derived in one tree must
// not satisfy a constraint of another.
func TestAnnotationsAcrossTreesIndependent(t *testing.T) {
	g := mustASG(t, `
s -> l r {
    :- not lmark@1.
    :- rmark@2.
}
l -> "x" { lmark. }
r -> "y" { rmark. }
`)
	// rmark IS derived at child 2, so the constraint fires: reject.
	ok, err := g.Accepts([]string{"x", "y"}, AcceptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("rmark@2 constraint should reject the string")
	}
	// Localization check via the tree program itself.
	tree, err := g.CFG.Parse([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := g.TreeProgram(tree)
	if err != nil {
		t.Fatal(err)
	}
	models, err := asp.Solve(prog, asp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Errorf("tree program should be unsatisfiable, got %v", models)
	}
}
