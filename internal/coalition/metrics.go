package coalition

import "agenp/internal/obs"

// Telemetry for the policy-sharing layer. Party counters advance once
// per shared policy; hub counters once per relayed frame.
var (
	statPublished = obs.C("coalition.policies.published")
	statAdopted   = obs.C("coalition.policies.adopted")
	statRejected  = obs.C("coalition.policies.rejected")
	// statVetDur is the end-to-end vetting latency of one incoming
	// shared policy (queue hand-off to PCP verdict), as seen by the
	// consuming party.
	statVetDur = obs.H("coalition.vet.duration")

	statHubMsgs  = obs.C("coalition.hub.messages")
	statHubBytes = obs.C("coalition.hub.bytes")
)
