package coalition

import (
	"testing"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/policy"
)

const drivingGrammar = `
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

// rainConstrained builds a grammar whose accept-production carries the
// rain constraint already (a "learned" model).
const rainConstrained = `
policy -> "accept" task { :- task(overtake)@2, weather(rain). }
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

func newAMS(t *testing.T, name, grammar, ctxSrc string) *agenp.AMS {
	t.Helper()
	model, err := core.ParseGPM(grammar)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := asp.Parse(ctxSrc)
	if err != nil {
		t.Fatal(err)
	}
	ams, err := agenp.New(agenp.Config{
		Name:        name,
		Model:       model,
		Context:     &agenp.StaticContext{Program: ctx},
		Interpreter: &agenp.TokenInterpreter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ams
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBusSharingBetweenParties(t *testing.T) {
	bus := NewBus()
	defer func() { _ = bus.Close() }()

	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	b := newAMS(t, "b", drivingGrammar, "weather(clear).")
	if _, _, err := a.Regenerate(); err != nil {
		t.Fatal(err)
	}
	// b generates nothing yet; it will adopt a's policies.
	pa, err := Join(a, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Leave()
	pb, err := Join(b, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Leave()

	if err := pa.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b to import 4 policies", func() bool {
		imported, _ := pb.ImportStats()
		return imported == 4
	})
	if b.Repository().Len() != 4 {
		t.Errorf("b repository = %d", b.Repository().Len())
	}
	p, ok := b.Repository().Get("accept_overtake")
	if !ok || p.Source != policy.SourceShared || p.Origin != "a" {
		t.Errorf("shared policy = %+v, %v", p, ok)
	}
	// a did not receive its own publications.
	importedA, _ := pa.ImportStats()
	if importedA != 0 {
		t.Errorf("a imported its own policies: %d", importedA)
	}
}

func TestPCPRejectsSharedPoliciesInvalidLocally(t *testing.T) {
	bus := NewBus()
	defer func() { _ = bus.Close() }()

	// a operates in clear weather with the plain grammar; b has the
	// rain-constrained model and rainy weather, so accept_overtake must
	// be rejected by b's PCP while other policies are adopted.
	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	b := newAMS(t, "b", rainConstrained, "weather(rain).")
	if _, _, err := a.Regenerate(); err != nil {
		t.Fatal(err)
	}
	pa, err := Join(a, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Leave()
	pb, err := Join(b, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Leave()

	if err := pa.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b to process 4 policies", func() bool {
		imported, rejected := pb.ImportStats()
		return imported+rejected == 4
	})
	imported, rejected := pb.ImportStats()
	if imported != 3 || rejected != 1 {
		t.Errorf("imported=%d rejected=%d, want 3/1", imported, rejected)
	}
	if _, ok := b.Repository().Get("accept_overtake"); ok {
		t.Error("accept_overtake adopted despite rain constraint")
	}
}

func TestSharePoliciesSkipsSharedOnes(t *testing.T) {
	bus := NewBus()
	defer func() { _ = bus.Close() }()
	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	a.Repository().Put(policy.Policy{ID: "x", Tokens: []string{"accept", "park"}, Source: policy.SourceShared, Origin: "c"})
	a.Repository().Put(policy.Policy{ID: "y", Tokens: []string{"reject", "park"}, Source: policy.SourceGenerated})

	b := newAMS(t, "b", drivingGrammar, "weather(clear).")
	pa, _ := Join(a, bus)
	defer pa.Leave()
	pb, _ := Join(b, bus)
	defer pb.Leave()
	if err := pa.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b to import 1", func() bool {
		imported, _ := pb.ImportStats()
		return imported == 1
	})
	if _, ok := b.Repository().Get("x"); ok {
		t.Error("re-broadcast of shared policy")
	}
}

func TestBusClosedErrors(t *testing.T) {
	bus := NewBus()
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(SharedPolicy{From: "a"}); err == nil {
		t.Error("publish on closed bus should fail")
	}
	if _, _, err := bus.Subscribe("a", 1); err == nil {
		t.Error("subscribe on closed bus should fail")
	}
	if err := bus.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()

	ta, err := DialTCP(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	tb, err := DialTCP(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tb.Close() }()

	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	b := newAMS(t, "b", drivingGrammar, "weather(clear).")
	if _, _, err := a.Regenerate(); err != nil {
		t.Fatal(err)
	}
	pa, err := Join(a, ta)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Leave()
	pb, err := Join(b, tb)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Leave()

	if err := pa.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b to import 4 policies over TCP", func() bool {
		imported, _ := pb.ImportStats()
		return imported == 4
	})
	if b.Repository().Len() != 4 {
		t.Errorf("b repository = %d", b.Repository().Len())
	}
}

func TestTCPThreeParties(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()

	names := []string{"a", "b", "c"}
	parties := make([]*Party, len(names))
	amss := make([]*agenp.AMS, len(names))
	for i, n := range names {
		tr, err := DialTCP(hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = tr.Close() }()
		amss[i] = newAMS(t, n, drivingGrammar, "weather(clear).")
		parties[i], err = Join(amss[i], tr)
		if err != nil {
			t.Fatal(err)
		}
		defer parties[i].Leave()
	}
	if _, _, err := amss[0].Regenerate(); err != nil {
		t.Fatal(err)
	}
	if err := parties[0].SharePolicies(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		i := i
		waitFor(t, "import at party "+names[i], func() bool {
			imported, _ := parties[i].ImportStats()
			return imported == 4
		})
	}
}

func TestTCPPublishAfterHubClose(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	// Publishing into a closed hub eventually errors (TCP buffering may
	// delay the first failure).
	deadline := time.Now().Add(2 * time.Second)
	var pubErr error
	for time.Now().Before(deadline) {
		if pubErr = tr.Publish(SharedPolicy{From: "a", ID: "x"}); pubErr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pubErr == nil {
		t.Error("publish kept succeeding after hub close")
	}
}
