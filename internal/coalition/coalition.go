// Package coalition implements the distributed policy-sharing layer of
// the paper (Sections III.A.3 and IV.D): multiple Autonomous Management
// Systems exchanging policies over a transport, in the community-based
// CASWiki style — each party vets incoming policies through its own
// Policy Checking Point before adopting them.
//
// Two transports are provided: an in-process bus for simulation and
// tests, and a TCP transport (JSON lines over net) for actually
// distributed deployments.
package coalition

import (
	"fmt"
	"sync"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/obs"
	"agenp/internal/policy"
)

// SharedPolicy is a policy in flight between coalition parties.
type SharedPolicy struct {
	// From names the publishing party.
	From string `json:"from"`
	// ID is the policy id at the publisher.
	ID string `json:"id"`
	// Tokens is the policy string.
	Tokens []string `json:"tokens"`
}

// Transport moves shared policies between parties.
type Transport interface {
	// Publish broadcasts a policy to every other party.
	Publish(sp SharedPolicy) error
	// Subscribe returns a channel of policies published by other
	// parties (the subscriber's own publications are filtered out) and
	// a cancel function.
	Subscribe(name string, buffer int) (<-chan SharedPolicy, func(), error)
	// Close shuts the transport down.
	Close() error
}

// Bus is an in-process Transport.
type Bus struct {
	mu     sync.Mutex
	subs   map[string][]chan SharedPolicy
	closed bool
}

var _ Transport = (*Bus)(nil)

// NewBus builds an in-process transport.
func NewBus() *Bus {
	return &Bus{subs: make(map[string][]chan SharedPolicy)}
}

// Publish implements Transport.
func (b *Bus) Publish(sp SharedPolicy) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("coalition: bus closed")
	}
	for name, chans := range b.subs {
		if name == sp.From {
			continue
		}
		for _, ch := range chans {
			select {
			case ch <- sp:
			default: // slow subscriber: drop rather than block the bus
			}
		}
	}
	return nil
}

// Subscribe implements Transport.
func (b *Bus) Subscribe(name string, buffer int) (<-chan SharedPolicy, func(), error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, nil, fmt.Errorf("coalition: bus closed")
	}
	ch := make(chan SharedPolicy, buffer)
	b.subs[name] = append(b.subs[name], ch)
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		chans := b.subs[name]
		for i, c := range chans {
			if c == ch {
				b.subs[name] = append(chans[:i], chans[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, cancel, nil
}

// Close implements Transport.
func (b *Bus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, chans := range b.subs {
		for _, ch := range chans {
			close(ch)
		}
	}
	b.subs = make(map[string][]chan SharedPolicy)
	return nil
}

// Party is one coalition member: an AMS connected to a transport.
type Party struct {
	AMS *agenp.AMS

	transport Transport
	incoming  <-chan SharedPolicy
	cancel    func()
	done      chan struct{}

	mu       sync.Mutex
	imported int
	rejected int
}

// Join connects an AMS to the coalition transport and starts consuming
// shared policies in the background; each incoming policy is vetted by
// the AMS's PCP (ImportShared). Call Leave to disconnect.
func Join(ams *agenp.AMS, t Transport) (*Party, error) {
	ch, cancel, err := t.Subscribe(ams.Name(), 64)
	if err != nil {
		return nil, err
	}
	p := &Party{
		AMS:       ams,
		transport: t,
		incoming:  ch,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	go p.consume()
	return p, nil
}

func (p *Party) consume() {
	defer close(p.done)
	for sp := range p.incoming {
		t0 := time.Now()
		err := p.AMS.ImportShared(policy.Policy{ID: sp.ID, Tokens: sp.Tokens}, sp.From)
		statVetDur.ObserveSince(t0)
		p.mu.Lock()
		if err != nil {
			p.rejected++
			statRejected.Inc()
		} else {
			p.imported++
			statAdopted.Inc()
		}
		p.mu.Unlock()
		// Adopted-policy imports are audit events: they change what the
		// decision path will serve, so the flight recorder keeps them
		// alongside decision anomalies.
		if rec := p.AMS.Recorder(); rec != nil {
			kind := uint8(obs.EventImportAdopted)
			if err != nil {
				kind = obs.EventImportRejected
			}
			rec.Event(kind, sp.ID, p.AMS.Engine().Generation(), time.Since(t0))
		}
	}
}

// SharePolicies publishes the party's current generated policies to the
// coalition. It iterates the repository's immutable snapshot directly —
// one consistent generation, no copy.
func (p *Party) SharePolicies() error {
	for _, pol := range p.AMS.Repository().Snapshot().Policies {
		if pol.Source == policy.SourceShared {
			continue // don't re-broadcast other parties' policies
		}
		sp := SharedPolicy{From: p.AMS.Name(), ID: pol.ID, Tokens: pol.Tokens}
		if err := p.transport.Publish(sp); err != nil {
			return fmt.Errorf("coalition: sharing %s: %w", pol.ID, err)
		}
		statPublished.Inc()
	}
	return nil
}

// ImportStats reports how many shared policies were adopted vs rejected
// by the PCP.
func (p *Party) ImportStats() (imported, rejected int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.imported, p.rejected
}

// Leave disconnects the party and waits for the consumer to stop.
func (p *Party) Leave() {
	p.cancel()
	<-p.done
}
