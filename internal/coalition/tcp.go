package coalition

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// TCPHub is a hub-and-spoke TCP transport: one party (or a dedicated
// process) runs the hub, every party connects a TCPTransport to it, and
// the hub relays each published policy to every other connection. Wire
// format: one JSON-encoded SharedPolicy per line.
type TCPHub struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPHub starts a hub listening on addr (use "127.0.0.1:0" to pick a
// free port; see Addr).
func NewTCPHub(addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coalition: hub listen: %w", err)
	}
	h := &TCPHub{ln: ln, conns: make(map[net.Conn]struct{})}
	h.wg.Add(1)
	go h.accept()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

func (h *TCPHub) accept() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		h.conns[conn] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go h.serve(conn)
	}
}

// serve relays every line from one connection to all others.
func (h *TCPHub) serve(conn net.Conn) {
	defer h.wg.Done()
	defer func() {
		h.mu.Lock()
		delete(h.conns, conn)
		h.mu.Unlock()
		_ = conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		line := append([]byte{}, scanner.Bytes()...)
		line = append(line, '\n')
		statHubMsgs.Inc()
		statHubBytes.Add(int64(len(line)))
		h.mu.Lock()
		for other := range h.conns {
			if other == conn {
				continue
			}
			_, _ = other.Write(line)
		}
		h.mu.Unlock()
	}
}

// Close stops the hub and closes every connection.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]net.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
	return err
}

// TCPTransport connects a party to a TCPHub.
type TCPTransport struct {
	conn net.Conn

	mu     sync.Mutex
	subs   []subscriber
	closed bool
	done   chan struct{}
}

type subscriber struct {
	name string
	ch   chan SharedPolicy
}

var _ Transport = (*TCPTransport)(nil)

// DialTCP connects to a hub.
func DialTCP(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coalition: dial hub: %w", err)
	}
	t := &TCPTransport{conn: conn, done: make(chan struct{})}
	go t.read()
	return t, nil
}

func (t *TCPTransport) read() {
	defer close(t.done)
	scanner := bufio.NewScanner(t.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		var sp SharedPolicy
		if err := json.Unmarshal(scanner.Bytes(), &sp); err != nil {
			continue // skip malformed frames
		}
		t.mu.Lock()
		for _, sub := range t.subs {
			if sub.name == sp.From {
				continue
			}
			select {
			case sub.ch <- sp:
			default:
			}
		}
		t.mu.Unlock()
	}
	// Connection closed: close subscriber channels.
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		for _, sub := range t.subs {
			close(sub.ch)
		}
		t.subs = nil
	}
}

// Publish implements Transport.
func (t *TCPTransport) Publish(sp SharedPolicy) error {
	data, err := json.Marshal(sp)
	if err != nil {
		return fmt.Errorf("coalition: encode policy: %w", err)
	}
	data = append(data, '\n')
	if _, err := t.conn.Write(data); err != nil {
		return fmt.Errorf("coalition: publish: %w", err)
	}
	return nil
}

// Subscribe implements Transport.
func (t *TCPTransport) Subscribe(name string, buffer int) (<-chan SharedPolicy, func(), error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, nil, fmt.Errorf("coalition: transport closed")
	}
	ch := make(chan SharedPolicy, buffer)
	t.subs = append(t.subs, subscriber{name: name, ch: ch})
	cancel := func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		for i, sub := range t.subs {
			if sub.ch == ch {
				t.subs = append(t.subs[:i], t.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, cancel, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	alreadyClosed := t.closed
	t.closed = true
	subs := t.subs
	t.subs = nil
	t.mu.Unlock()
	if !alreadyClosed {
		for _, sub := range subs {
			close(sub.ch)
		}
	}
	err := t.conn.Close()
	<-t.done
	return err
}
