package coalition

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// coalitionGoroutines counts live goroutines running one of the
// package's background workers (hub accept/serve, transport readers,
// party consumers) — all methods, so matching the receiver syntax keeps
// the test goroutines themselves out of the count.
func coalitionGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "internal/coalition.(*") {
			count++
		}
	}
	return count
}

// waitNoCoalitionGoroutines polls until every coalition goroutine has
// exited; shutdown is supposed to be deterministic (Leave and Close wait
// on their workers), so one scheduler yield is normally enough.
func waitNoCoalitionGoroutines(t *testing.T, phase string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := coalitionGoroutines(); n == 0 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("%s: %d coalition goroutines still alive:\n%s",
				phase, coalitionGoroutines(), buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPShutdownLeavesNoGoroutines drives a full hub + two-party round
// over TCP and asserts that teardown in the daemon's order (Leave,
// transport Close, hub Close) reaps every background goroutine the
// package started, and that each close is idempotent.
func TestTCPShutdownLeavesNoGoroutines(t *testing.T) {
	if n := coalitionGoroutines(); n != 0 {
		t.Fatalf("pre-existing coalition goroutines: %d", n)
	}

	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta, err := DialTCP(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := DialTCP(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}

	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	b := newAMS(t, "b", drivingGrammar, "weather(clear).")
	if _, _, err := a.Regenerate(); err != nil {
		t.Fatal(err)
	}
	pa, err := Join(a, ta)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Join(b, tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b to adopt a's policies", func() bool {
		imported, _ := pb.ImportStats()
		return imported == a.Repository().Len()
	})

	// Daemon teardown order: parties leave, transports close, hub closes.
	pa.Leave()
	pb.Leave()
	if err := ta.Close(); err != nil {
		t.Fatalf("transport a close: %v", err)
	}
	if err := tb.Close(); err != nil {
		t.Fatalf("transport b close: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}
	waitNoCoalitionGoroutines(t, "after ordered teardown")

	// Idempotence: closing again must not panic or double-close channels.
	if err := ta.Close(); err == nil {
		// A second Close reports the underlying net error; either way it
		// must return without panicking.
		t.Log("second transport close returned nil")
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("second hub close: %v", err)
	}
}

// TestTCPShutdownHubFirst kills the hub while parties are still attached:
// the transports' readers must observe EOF, close their subscriber
// channels exactly once, and Leave/Close must still return.
func TestTCPShutdownHubFirst(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	pa, err := Join(a, tr)
	if err != nil {
		t.Fatal(err)
	}

	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}
	// The reader sees the hub-side close, shuts the subscriber channel,
	// and the consumer drains out; Leave must not hang even though the
	// channel was closed by the reader rather than cancel.
	done := make(chan struct{})
	go func() {
		pa.Leave()
		_ = tr.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Leave/Close hung after hub died first")
	}
	waitNoCoalitionGoroutines(t, "after hub-first teardown")
}

// TestBusShutdownLeavesNoGoroutines covers the in-process transport:
// closing the bus ends every party consumer, and Leave stays safe after
// the bus already closed the channels.
func TestBusShutdownLeavesNoGoroutines(t *testing.T) {
	bus := NewBus()
	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	b := newAMS(t, "b", drivingGrammar, "weather(clear).")
	pa, err := Join(a, bus)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Join(b, bus)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	pa.Leave()
	pb.Leave()
	waitNoCoalitionGoroutines(t, "after bus teardown")
}
