package coalition

import (
	"testing"

	"agenp/internal/agenp"
	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/policy"
)

// newVerifiedAMS builds an AMS with the symbolic verification gate on:
// shared policies that introduce a permit/deny conflict against the
// installed snapshot are rejected at import, even when they pass the
// membership PCP.
func newVerifiedAMS(t *testing.T, name, grammar, ctxSrc string) *agenp.AMS {
	t.Helper()
	model, err := core.ParseGPM(grammar)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := asp.Parse(ctxSrc)
	if err != nil {
		t.Fatal(err)
	}
	ams, err := agenp.New(agenp.Config{
		Name:           name,
		Model:          model,
		Context:        &agenp.StaticContext{Program: ctx},
		Interpreter:    &agenp.TokenInterpreter{},
		VerifyPolicies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ams
}

func TestVerifyGateRejectsConflictingSharedPolicy(t *testing.T) {
	bus := NewBus()
	defer func() { _ = bus.Close() }()

	// a shares from the full two-verb grammar; b verifies imports. b
	// already permits overtake, so a's reject_overtake is in b's model
	// language (passes membership) but conflicts symbolically.
	a := newAMS(t, "a", drivingGrammar, "weather(clear).")
	b := newVerifiedAMS(t, "b", drivingGrammar, "weather(clear).")
	b.Repository().Put(policy.Policy{ID: "accept_overtake", Tokens: []string{"accept", "overtake"}})
	if _, _, err := a.Regenerate(); err != nil {
		t.Fatal(err)
	}
	pa, err := Join(a, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Leave()
	pb, err := Join(b, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Leave()

	if err := pa.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b to process 4 policies", func() bool {
		imported, rejected := pb.ImportStats()
		return imported+rejected == 4
	})
	// Policies arrive in repository order: accept_overtake (already
	// installed, re-adopted cleanly), accept_park (adopted), then
	// reject_overtake and reject_park — each conflicting with the
	// accept of the same task by the time it arrives, so the gate
	// rejects both and b's surface stays permit-only.
	if _, ok := b.Repository().Get("reject_overtake"); ok {
		t.Error("conflicting shared policy reject_overtake was adopted")
	}
	if _, ok := b.Repository().Get("reject_park"); ok {
		t.Error("conflicting shared policy reject_park was adopted")
	}
	if _, ok := b.Repository().Get("accept_park"); !ok {
		t.Error("non-conflicting shared policy accept_park was rejected")
	}
	imported, rejected := pb.ImportStats()
	if imported != 2 || rejected != 2 {
		t.Errorf("imported=%d rejected=%d, want 2/2", imported, rejected)
	}

	// The decision surface reflects only adopted policies.
	rep, err := b.VerifySnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasErrors() {
		t.Errorf("post-import snapshot has conflicts: %v", rep)
	}
}
