package core

import (
	"sync"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/asglearn"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
)

const drivingGrammar = `
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
`

func newGPM(t *testing.T) *GPM {
	t.Helper()
	m, err := ParseGPM(drivingGrammar)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func ctxProg(t *testing.T, src string) *asp.Program {
	t.Helper()
	p, err := asp.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLint(t *testing.T) {
	// The driving grammar is clean.
	if fs := newGPM(t).Lint(nil); fs.HasErrors() {
		t.Errorf("clean model has lint errors: %v", fs)
	}
	// A model referencing a context-supplied predicate warns without a
	// context and is quiet with one.
	m, err := ParseGPM(`policy -> "fly" { :- not weather(clear). }`)
	if err != nil {
		t.Fatal(err)
	}
	fs := m.Lint(nil)
	warned := false
	for _, f := range fs {
		if f.Code == "asg-underivable" {
			warned = true
		}
	}
	if !warned {
		t.Errorf("context dependency not surfaced: %v", fs)
	}
	if fs := m.Lint(ctxProg(t, "weather(clear).")); len(fs) != 0 {
		t.Errorf("findings under satisfying context: %v", fs)
	}
	// An unsafe annotation is an error.
	m, err = ParseGPM(`policy -> "fly" { grant(X). }`)
	if err != nil {
		t.Fatal(err)
	}
	if fs := m.Lint(nil); !fs.HasErrors() {
		t.Errorf("unsafe model not rejected: %v", fs)
	}
}

func TestGenerateAllPolicies(t *testing.T) {
	m := newGPM(t)
	ps, err := m.Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d policies, want 4", len(ps))
	}
	ids := make(map[string]bool)
	for _, p := range ps {
		ids[p.ID] = true
	}
	for _, want := range []string{"accept_overtake", "accept_park", "reject_overtake", "reject_park"} {
		if !ids[want] {
			t.Errorf("missing policy %s in %v", want, ids)
		}
	}
}

func TestGenerateBounded(t *testing.T) {
	m := newGPM(t)
	m.MaxPolicies = 2
	ps, err := m.Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Errorf("MaxPolicies ignored: %d", len(ps))
	}
}

func TestValidate(t *testing.T) {
	m := newGPM(t)
	ok, err := m.Validate([]string{"accept", "overtake"}, nil)
	if err != nil || !ok {
		t.Errorf("Validate = %v, %v", ok, err)
	}
	ok, err = m.Validate([]string{"accept", "fly"}, nil)
	if err != nil || ok {
		t.Errorf("invalid string accepted: %v, %v", ok, err)
	}
}

func TestEvolveLearnsConstraintAndRegenerates(t *testing.T) {
	m := newGPM(t)
	space := []asg.HypothesisRule{
		asglearn.MustParseHypothesisRule(":- task(overtake)@2, weather(rain).", 0),
		asglearn.MustParseHypothesisRule(":- weather(rain).", 0),
	}
	examples := []asglearn.Example{
		{ID: "p1", Tokens: []string{"accept", "overtake"}, Context: ctxProg(t, "weather(clear)."), Positive: true},
		{ID: "p2", Tokens: []string{"accept", "park"}, Context: ctxProg(t, "weather(rain)."), Positive: true},
		{ID: "n1", Tokens: []string{"accept", "overtake"}, Context: ctxProg(t, "weather(rain)."), Positive: false},
	}
	evo, err := m.Evolve(space, examples, EvolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evo.Hypothesis) != 1 {
		t.Fatalf("hypothesis = %v", evo.Hypothesis)
	}
	if evo.Covered != 3 || evo.Total != 3 || evo.Checks == 0 {
		t.Errorf("evolution stats = %+v", evo)
	}

	// The evolved model generates context-dependent policy sets.
	rain, err := evo.Model.Generate(ctxProg(t, "weather(rain)."))
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, p := range rain {
		ids[p.ID] = true
	}
	if ids["accept_overtake"] {
		t.Error("rain context must not generate accept overtake")
	}
	if !ids["accept_park"] || !ids["reject_overtake"] {
		t.Errorf("rain policies = %v", ids)
	}

	clear, err := evo.Model.Generate(ctxProg(t, "weather(clear)."))
	if err != nil {
		t.Fatal(err)
	}
	if len(clear) != 4 {
		t.Errorf("clear context policies = %d, want 4", len(clear))
	}

	// Original model unchanged.
	all, err := m.Generate(ctxProg(t, "weather(rain)."))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Errorf("Evolve mutated the receiver (got %d policies)", len(all))
	}
}

func TestEvolveNoSolution(t *testing.T) {
	m := newGPM(t)
	examples := []asglearn.Example{
		{ID: "p", Tokens: []string{"accept", "overtake"}, Positive: true},
		{ID: "n", Tokens: []string{"accept", "overtake"}, Positive: false},
	}
	if _, err := m.Evolve(nil, examples, EvolveOptions{Learn: ilasp.LearnOptions{}}); err == nil {
		t.Error("contradictory examples should fail")
	}
}

func TestExamplesFromFeedback(t *testing.T) {
	fb := []Feedback{
		{Tokens: []string{"accept", "park"}, Valid: true},
		{Tokens: []string{"accept", "overtake"}, Valid: false, Weight: 5},
	}
	ex := ExamplesFromFeedback(fb)
	if len(ex) != 2 || !ex[0].Positive || ex[1].Positive || ex[1].Weight != 5 {
		t.Errorf("examples = %+v", ex)
	}
	if ex[0].ID == ex[1].ID {
		t.Error("examples share ids")
	}
}

func TestRepresentations(t *testing.T) {
	m := newGPM(t)
	r := NewRepresentations(m)
	if r.Version() != 1 || r.Latest() != m {
		t.Fatalf("initial state wrong")
	}
	m2 := newGPM(t)
	r.Push(m2)
	if r.Version() != 2 || r.Latest() != m2 {
		t.Errorf("push state wrong")
	}
	got, err := r.At(0)
	if err != nil || got != m {
		t.Errorf("At(0) = %v, %v", got, err)
	}
	if _, err := r.At(5); err == nil {
		t.Error("At(5) should fail")
	}
}

func TestRepresentationsConcurrency(t *testing.T) {
	r := NewRepresentations(newGPM(t))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Push(&GPM{})
				r.Latest()
				r.Version()
			}
		}()
	}
	wg.Wait()
	if r.Version() != 201 {
		t.Errorf("Version = %d, want 201", r.Version())
	}
}

func TestPolicyID(t *testing.T) {
	if PolicyID([]string{"accept", "overtake"}) != "accept_overtake" {
		t.Error("PolicyID broken")
	}
}

func TestParseGPMError(t *testing.T) {
	if _, err := ParseGPM("not a grammar"); err == nil {
		t.Error("expected parse error")
	}
}
