package polcheck

import "agenp/internal/obs"

// Telemetry, registered on the Default obs registry. Counters follow
// the package-variable pattern: declared once, poked directly on the
// recording path.
var (
	// statFindings counts every finding emitted, across all analyses.
	statFindings = obs.C("polcheck.findings")
	// statAnalyses counts AnalyzePolicy/AnalyzeSet runs.
	statAnalyses = obs.C("polcheck.analyses")
	// statDiffs counts DiffSets runs.
	statDiffs = obs.C("polcheck.diffs")
	// statBounded counts rules/policies excluded from claims because of
	// an unsupported construct or a vector-cap hit.
	statBounded = obs.C("polcheck.bounded")
	// statAnalysisDur is the per-analysis wall time.
	statAnalysisDur = obs.H("polcheck.analysis_ns")
)
