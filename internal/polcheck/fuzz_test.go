package polcheck

import (
	"testing"

	"agenp/internal/quality"
	"agenp/internal/xacml"
)

// Differential fuzzing against the enumeration oracle of
// internal/quality: random small policy sets over a domain of at most 4
// values per attribute are analyzed symbolically and by exhaustive
// request enumeration, and the two must agree — every enumerated
// conflict must be found symbolically, every symbolic claim of
// redundancy or irrelevance must hold pointwise on the enumerated
// domain, and every conflict witness must reproduce through the
// tree-walk and the compiled engine (AnalyzeSet validates witnesses
// with both when SkipValidation is off).

// fuzzSlots is the attribute universe of the generated policies; the
// enumeration domain assigns every attribute all of its values.
var fuzzSlots = []struct {
	cat   xacml.Category
	attr  string
	isInt bool
}{
	{xacml.Subject, "role", false},
	{xacml.Subject, "lvl", true},
	{xacml.Action, "id", false},
}

var fuzzStrings = []string{"a", "b", "c"}

func fuzzDomain() *quality.Domain {
	d := quality.NewDomain()
	for _, s := range fuzzSlots {
		if s.isInt {
			d.Add(s.cat, s.attr, xacml.I(0), xacml.I(1), xacml.I(2), xacml.I(3))
		} else {
			d.Add(s.cat, s.attr, xacml.S("a"), xacml.S("b"), xacml.S("c"))
		}
	}
	return d
}

// byteFeed decodes fuzz data into bounded choices, cycling when the
// input runs short so every prefix decodes to a complete policy set.
type byteFeed struct {
	data []byte
	pos  int
}

func (f *byteFeed) next() int {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[f.pos%len(f.data)]
	f.pos++
	return int(b)
}

func fuzzMatch(f *byteFeed) xacml.Match {
	s := fuzzSlots[f.next()%len(fuzzSlots)]
	m := xacml.Match{Category: s.cat, Attr: s.attr}
	if s.isInt {
		ops := []xacml.MatchOp{xacml.OpEq, xacml.OpNeq, xacml.OpLt, xacml.OpLeq, xacml.OpGt, xacml.OpGeq}
		m.Op = ops[f.next()%len(ops)]
		m.Value = xacml.I(f.next() % 4)
	} else {
		ops := []xacml.MatchOp{xacml.OpEq, xacml.OpNeq}
		m.Op = ops[f.next()%len(ops)]
		m.Value = xacml.S(fuzzStrings[f.next()%len(fuzzStrings)])
	}
	return m
}

var fuzzAlgs = []xacml.CombiningAlg{xacml.DenyOverrides, xacml.PermitOverrides, xacml.FirstApplicable}

func fuzzSet(data []byte) *xacml.PolicySet {
	f := &byteFeed{data: data}
	ps := &xacml.PolicySet{ID: "fuzz", Combining: fuzzAlgs[f.next()%len(fuzzAlgs)]}
	nPol := 1 + f.next()%3
	for pi := 0; pi < nPol; pi++ {
		p := &xacml.Policy{
			ID:        "p" + string(rune('0'+pi)),
			Combining: fuzzAlgs[f.next()%len(fuzzAlgs)],
		}
		if f.next()%4 == 0 {
			p.Target = xacml.Target{fuzzMatch(f)}
		}
		nRules := 1 + f.next()%4
		for ri := 0; ri < nRules; ri++ {
			ru := xacml.Rule{ID: "r" + string(rune('0'+ri)), Effect: xacml.Permit}
			if f.next()%2 == 0 {
				ru.Effect = xacml.Deny
			}
			for t := f.next() % 3; t > 0; t-- {
				ru.Target = append(ru.Target, fuzzMatch(f))
			}
			switch f.next() % 4 {
			case 1:
				m := fuzzMatch(f)
				ru.Condition = &xacml.Condition{Match: &m}
			case 2:
				m := fuzzMatch(f)
				ru.Condition = &xacml.Condition{Not: &xacml.Condition{Match: &m}}
			case 3:
				m1, m2 := fuzzMatch(f), fuzzMatch(f)
				ru.Condition = &xacml.Condition{Or: []xacml.Condition{{Match: &m1}, {Match: &m2}}}
			}
			p.Rules = append(p.Rules, ru)
		}
		ps.Policies = append(ps.Policies, p)
	}
	return ps
}

func FuzzPolcheckVsEnumeration(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 1, 0, 3, 0, 0, 1, 1, 2, 0, 0, 1, 2, 3, 1, 0})
	f.Add([]byte{1, 2, 0, 3, 2, 1, 0, 0, 3, 2, 1, 0, 1, 2, 3, 0, 1, 2, 3, 250})
	f.Add([]byte{7, 13, 42, 99, 3, 0, 1, 250, 128, 17, 5, 5, 5, 77, 200, 6})
	f.Add([]byte{255, 254, 253, 1, 2, 3, 9, 8, 7, 6, 5, 4, 100, 101, 102, 103, 104})

	f.Fuzz(func(t *testing.T, data []byte) {
		ps := fuzzSet(data)
		rep := AnalyzeSet(ps, Options{})

		// Every conflict claim ships a witness that reproduced through
		// both rules/policies, the tree-walk oracle and the compiled
		// engine decider — AnalyzeSet marks it Verified only then.
		for _, fd := range rep.Findings {
			if (fd.Kind == KindConflict || fd.Kind == KindCrossConflict) && !fd.Verified {
				t.Fatalf("unverified conflict witness: %s", fd)
			}
		}

		// The completeness direction needs exact regions.
		if rep.Stats.Bounded > 0 {
			return
		}
		dom := fuzzDomain()
		opts := quality.Options{MaxFindings: 1 << 20}

		// Enumerated cross-policy conflicts must all be found
		// symbolically (pairs are normalized permit-side first in both).
		symCross := make(map[[2]string]bool)
		for _, fd := range rep.Findings {
			if fd.Kind == KindCrossConflict {
				symCross[[2]string{fd.Policy, fd.OtherPolicy}] = true
			}
		}
		for _, c := range quality.AssessSet(ps, dom, opts).Conflicts {
			if !symCross[[2]string{c.PermitPolicy, c.DenyPolicy}] {
				t.Errorf("enumeration found cross-policy conflict %s that polcheck missed", c)
			}
		}

		for _, p := range ps.Policies {
			prep := quality.Assess(p, dom, opts)

			symPairs := make(map[[2]string]bool)
			enumRedundant := make(map[string]bool)
			enumIrrelevant := make(map[string]bool)
			for _, fd := range rep.Findings {
				if fd.Policy == p.ID && fd.Kind == KindConflict {
					symPairs[[2]string{fd.Rule, fd.OtherRule}] = true
				}
			}
			for _, id := range prep.Redundant {
				enumRedundant[id] = true
			}
			for _, id := range prep.Irrelevant {
				enumIrrelevant[id] = true
			}

			// Enumerated intra-policy conflicts ⊆ symbolic conflicts.
			for _, c := range prep.Conflicts {
				if !symPairs[[2]string{c.PermitRule, c.DenyRule}] {
					t.Errorf("policy %s: enumeration found conflict %s that polcheck missed", p.ID, c)
				}
			}

			// Symbolic claims hold pointwise on the enumerated domain:
			// a provably redundant or shadowed rule changes no decision
			// when removed; an unreachable rule never fires.
			for _, fd := range rep.Findings {
				if fd.Policy != p.ID {
					continue
				}
				switch fd.Kind {
				case KindRedundant, KindShadowed:
					if !enumRedundant[fd.Rule] {
						t.Errorf("policy %s: polcheck claims %s removable (%s) but enumeration disagrees", p.ID, fd.Rule, fd.Kind)
					}
				case KindUnreachable:
					if !enumIrrelevant[fd.Rule] {
						t.Errorf("policy %s: polcheck claims %s unreachable but it fired", p.ID, fd.Rule)
					}
				}
			}
		}
	})
}
