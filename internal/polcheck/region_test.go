package polcheck

import (
	"math"
	"testing"

	"agenp/internal/xacml"
)

// slotChoice is one concrete assignment of a slot in exhaustive checks:
// absent, a string, or an integer.
type slotChoice struct {
	absent bool
	v      xacml.Value
}

func choices() []slotChoice {
	return []slotChoice{
		{absent: true},
		{v: xacml.S("a")},
		{v: xacml.S("b")},
		{v: xacml.S("zz")},
		{v: xacml.I(0)},
		{v: xacml.I(1)},
		{v: xacml.I(7)},
		{v: xacml.I(-3)},
	}
}

func (c slotChoice) in(vs *valueSet) bool {
	if vs == nil {
		return true
	}
	if c.absent {
		return vs.absent
	}
	if c.v.IsInt {
		for _, iv := range vs.ints {
			if iv.lo <= int64(c.v.Int) && int64(c.v.Int) <= iv.hi {
				return true
			}
		}
		return false
	}
	if vs.strs.cofinite {
		return !contains(vs.strs.vals, c.v.Str)
	}
	return contains(vs.strs.vals, c.v.Str)
}

func vecHas(v vector, assign []slotChoice) bool {
	for i := range assign {
		if !assign[i].in(v.at(i)) {
			return false
		}
	}
	return true
}

func regionHas(r region, assign []slotChoice) bool {
	for _, v := range r {
		if vecHas(v, assign) {
			return true
		}
	}
	return false
}

// sampleValueSets enumerates a diverse pool of valueSets used as slot
// constraints in the exhaustive algebra checks.
func sampleValueSets(t *testing.T) []*valueSet {
	t.Helper()
	mk := func(m xacml.Match) *valueSet {
		vs, err := matchValues(m)
		if err != nil {
			t.Fatalf("matchValues(%v): %v", m, err)
		}
		return vs
	}
	pool := []*valueSet{
		nil, // top
		topValues(),
		mk(xacml.Match{Op: xacml.OpEq, Value: xacml.S("a")}),
		mk(xacml.Match{Op: xacml.OpNeq, Value: xacml.S("a")}),
		mk(xacml.Match{Op: xacml.OpEq, Value: xacml.I(1)}),
		mk(xacml.Match{Op: xacml.OpNeq, Value: xacml.I(1)}),
		mk(xacml.Match{Op: xacml.OpLt, Value: xacml.I(1)}),
		mk(xacml.Match{Op: xacml.OpGeq, Value: xacml.I(0)}),
	}
	pool = append(pool,
		mk(xacml.Match{Op: xacml.OpEq, Value: xacml.S("a")}).complement(),
		mk(xacml.Match{Op: xacml.OpGt, Value: xacml.I(0)}).complement(),
	)
	return pool
}

// TestVectorAlgebraExhaustive cross-checks conj and subtractVec against
// pointwise membership over every pair of two-slot vectors drawn from
// the sample pool and every concrete assignment.
func TestVectorAlgebraExhaustive(t *testing.T) {
	pool := sampleValueSets(t)
	var vecs []vector
	for _, s0 := range pool {
		for _, s1 := range pool {
			vecs = append(vecs, vector{s0, s1})
		}
	}
	var assigns [][]slotChoice
	for _, c0 := range choices() {
		for _, c1 := range choices() {
			assigns = append(assigns, []slotChoice{c0, c1})
		}
	}
	for _, a := range vecs {
		for _, b := range vecs {
			inter, ok := conj(a, b)
			interReg := region{}
			if ok {
				interReg = region{inter}
			}
			diff := subtractVec(a, b)
			for _, as := range assigns {
				inA, inB := vecHas(a, as), vecHas(b, as)
				if got, want := regionHas(interReg, as), inA && inB; got != want {
					t.Fatalf("conj wrong at %v: got %v want %v (a=%v b=%v)", as, got, want, a, b)
				}
				if got, want := regionHas(region(diff), as), inA && !inB; got != want {
					t.Fatalf("subtractVec wrong at %v: got %v want %v (a=%v b=%v)", as, got, want, a, b)
				}
			}
		}
	}
}

func TestIntSetOps(t *testing.T) {
	s := normalizeInts([]intIv{{1, 3}, {5, 7}, {4, 4}})
	if len(s) != 1 || s[0] != (intIv{1, 7}) {
		t.Fatalf("normalize adjacency: %v", s)
	}
	d := s.subtract(intSet{{3, 5}})
	if len(d) != 2 || d[0] != (intIv{1, 2}) || d[1] != (intIv{6, 7}) {
		t.Fatalf("subtract middle: %v", d)
	}
	if got := fullInts().subtract(fullInts()); !got.empty() {
		t.Fatalf("full minus full: %v", got)
	}
	if got := intNeq(5).intersect(intEq(5)); !got.empty() {
		t.Fatalf("neq∩eq: %v", got)
	}
	// Sentinel saturation: no overflow at the extremes.
	if got := intLt(math.MinInt64); !got.empty() {
		t.Fatalf("lt(min): %v", got)
	}
	if got := intGt(math.MaxInt64); !got.empty() {
		t.Fatalf("gt(max): %v", got)
	}
}

func TestStrSetOps(t *testing.T) {
	a := strMembers("x", "y")
	b := strWithout("x")
	if got := a.intersect(b); len(got.vals) != 1 || got.vals[0] != "y" || got.cofinite {
		t.Fatalf("finite∩cofinite: %+v", got)
	}
	if got := b.subtract(strWithout("x", "z")); len(got.vals) != 1 || got.vals[0] != "z" || got.cofinite {
		t.Fatalf("cofinite∖cofinite: %+v", got)
	}
	if w := strWithout("w0", "w1").pick(); w != "w2" {
		t.Fatalf("cofinite pick: %q", w)
	}
}

// TestWitnessInsideVector asserts witness extraction lands inside the
// vector it was extracted from, across the sample pool.
func TestWitnessInsideVector(t *testing.T) {
	a := newAnalyzer(Options{})
	a.in.intern(xacml.Subject, "s0")
	a.in.intern(xacml.Resource, "s1")
	for _, s0 := range sampleValueSets(t) {
		for _, s1 := range sampleValueSets(t) {
			v := vector{s0, s1}
			if (s0 != nil && s0.empty()) || (s1 != nil && s1.empty()) {
				continue
			}
			w := a.witness(v)
			for i, vs := range v {
				if vs == nil {
					continue
				}
				key := a.in.slots[i]
				val, ok := w.Get(key.cat, key.attr)
				c := slotChoice{absent: !ok, v: val}
				if !c.in(vs) {
					t.Fatalf("witness %v escapes slot %d of %v", w, i, v)
				}
			}
		}
	}
}

// TestMatchValuesSemantics cross-checks the symbolic translation of
// every supported operator against Match.Eval on concrete requests.
func TestMatchValuesSemantics(t *testing.T) {
	matches := []xacml.Match{
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpEq, Value: xacml.S("a")},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpNeq, Value: xacml.S("a")},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpEq, Value: xacml.I(1)},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpNeq, Value: xacml.I(1)},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpLt, Value: xacml.I(1)},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpLeq, Value: xacml.I(1)},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpGt, Value: xacml.I(1)},
		{Category: xacml.Subject, Attr: "x", Op: xacml.OpGeq, Value: xacml.I(1)},
	}
	for _, m := range matches {
		vs, err := matchValues(m)
		if err != nil {
			t.Fatalf("matchValues(%v): %v", m, err)
		}
		for _, c := range choices() {
			req := xacml.NewRequest()
			if !c.absent {
				req.Set(xacml.Subject, "x", c.v)
			}
			if got, want := c.in(vs), m.Eval(req); got != want {
				t.Errorf("%v on %v: symbolic %v, concrete %v", m, c, got, want)
			}
			// The complement must mirror exactly, including absence.
			if got, want := c.in(vs.complement()), !m.Eval(req); got != want {
				t.Errorf("¬(%v) on %v: symbolic %v, concrete %v", m, c, got, want)
			}
		}
	}
	if _, err := matchValues(xacml.Match{Op: xacml.OpLt, Value: xacml.S("m")}); err == nil {
		t.Fatal("string ordering comparison should be unsupported")
	}
}
