package polcheck

import (
	"strings"
	"testing"

	"agenp/internal/xacml"
)

func eq(cat xacml.Category, attr, val string) xacml.Match {
	return xacml.Match{Category: cat, Attr: attr, Op: xacml.OpEq, Value: xacml.S(val)}
}

func rule(id string, eff xacml.Effect, target ...xacml.Match) xacml.Rule {
	return xacml.Rule{ID: id, Effect: eff, Target: xacml.Target(target)}
}

func findKind(rep *Report, k Kind) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

func TestShadowedFirstApplicable(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.FirstApplicable,
		Rules: []xacml.Rule{
			rule("broad", xacml.Permit, eq(xacml.Subject, "role", "doctor")),
			rule("narrow", xacml.Deny, eq(xacml.Subject, "role", "doctor"), eq(xacml.Resource, "kind", "record")),
		},
	}
	rep := AnalyzePolicy(p, Options{})
	sh := findKind(rep, KindShadowed)
	if len(sh) != 1 || sh[0].Rule != "narrow" {
		t.Fatalf("want narrow shadowed, got %v", rep.Findings)
	}
	// The shadowed rule never fires: that is also an exact redundancy.
	red := findKind(rep, KindRedundant)
	if len(red) != 1 || red[0].Rule != "narrow" {
		t.Fatalf("want narrow redundant, got %v", rep.Findings)
	}
}

func TestShadowingRespectsCombining(t *testing.T) {
	rules := []xacml.Rule{
		rule("permit-doc", xacml.Permit, eq(xacml.Subject, "role", "doctor")),
		rule("deny-doc", xacml.Deny, eq(xacml.Subject, "role", "doctor")),
	}
	// Under deny-overrides an earlier *permit* never blocks a deny.
	rep := AnalyzePolicy(&xacml.Policy{ID: "p", Combining: xacml.DenyOverrides, Rules: rules}, Options{})
	if sh := findKind(rep, KindShadowed); len(sh) != 0 {
		t.Fatalf("deny-overrides: unexpected shadowing %v", sh)
	}
	// Under first-applicable the same pair shadows.
	rep = AnalyzePolicy(&xacml.Policy{ID: "p", Combining: xacml.FirstApplicable, Rules: rules}, Options{})
	if sh := findKind(rep, KindShadowed); len(sh) != 1 || sh[0].Rule != "deny-doc" {
		t.Fatalf("first-applicable: want deny-doc shadowed, got %v", rep.Findings)
	}
}

func TestUnreachableRule(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			rule("impossible", xacml.Permit, eq(xacml.Subject, "role", "doctor"), eq(xacml.Subject, "role", "nurse")),
		},
	}
	rep := AnalyzePolicy(p, Options{})
	if un := findKind(rep, KindUnreachable); len(un) != 1 || un[0].Rule != "impossible" {
		t.Fatalf("want impossible unreachable, got %v", rep.Findings)
	}
}

func TestConflictWitnessVerified(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			rule("allow-doctors", xacml.Permit, eq(xacml.Subject, "role", "doctor")),
			rule("deny-records", xacml.Deny, eq(xacml.Resource, "kind", "record")),
		},
	}
	rep := AnalyzePolicy(p, Options{})
	cf := findKind(rep, KindConflict)
	if len(cf) != 1 {
		t.Fatalf("want one conflict, got %v", rep.Findings)
	}
	f := cf[0]
	if f.Rule != "allow-doctors" || f.OtherRule != "deny-records" {
		t.Fatalf("wrong pair: %+v", f)
	}
	if !f.Verified {
		t.Fatalf("witness not verified: %+v", f)
	}
	if f.Resolved != "Deny" {
		t.Fatalf("deny-overrides should resolve witness to Deny, got %q", f.Resolved)
	}
	// The witness must make both rules fire.
	if !p.Rules[0].Applies(f.Request) || !p.Rules[1].Applies(f.Request) {
		t.Fatalf("witness %v does not reproduce the overlap", f.Request)
	}
	if !rep.HasErrors() {
		t.Fatal("conflicts are error severity")
	}
}

func TestRedundantDuplicateRule(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			rule("deny-a", xacml.Deny, eq(xacml.Subject, "role", "guest")),
			rule("deny-b", xacml.Deny, eq(xacml.Subject, "role", "guest")),
		},
	}
	rep := AnalyzePolicy(p, Options{})
	red := findKind(rep, KindRedundant)
	if len(red) != 2 {
		t.Fatalf("each duplicate is individually removable, got %v", rep.Findings)
	}
}

func TestRedundancyNotClaimedWhenLoadBearing(t *testing.T) {
	// permit-guest is the only rule deciding guests: not redundant.
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			rule("permit-guest", xacml.Permit, eq(xacml.Subject, "role", "guest")),
			rule("deny-root", xacml.Deny, eq(xacml.Subject, "role", "root")),
		},
	}
	rep := AnalyzePolicy(p, Options{})
	if red := findKind(rep, KindRedundant); len(red) != 0 {
		t.Fatalf("unexpected redundancy %v", red)
	}
}

func TestCrossPolicyConflictAndSubsumption(t *testing.T) {
	ps := &xacml.PolicySet{
		ID:        "set",
		Combining: xacml.DenyOverrides,
		Policies: []*xacml.Policy{
			{ID: "ours", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
				rule("permit-share", xacml.Permit, eq(xacml.Action, "id", "share")),
			}},
			{ID: "theirs", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
				rule("deny-share", xacml.Deny, eq(xacml.Action, "id", "share")),
			}},
			{ID: "dup", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
				rule("deny-share-too", xacml.Deny, eq(xacml.Action, "id", "share")),
			}},
		},
	}
	rep := AnalyzeSet(ps, Options{})
	cross := findKind(rep, KindCrossConflict)
	if len(cross) != 2 {
		// ours/theirs and ours/dup.
		t.Fatalf("want 2 cross conflicts, got %v", rep.Findings)
	}
	for _, f := range cross {
		if !f.Verified {
			t.Fatalf("cross witness not verified: %+v", f)
		}
		if f.Resolved != "Deny" {
			t.Fatalf("deny-overrides resolves to Deny, got %+v", f)
		}
	}
	// theirs and dup subsume each other; ours is load-bearing… except
	// its permit region is fully overridden, making it removable too.
	sub := findKind(rep, KindSubsumedPolicy)
	ids := map[string]bool{}
	for _, f := range sub {
		ids[f.Policy] = true
	}
	if !ids["theirs"] || !ids["dup"] {
		t.Fatalf("want theirs+dup subsumed, got %v", sub)
	}
}

func TestBoundedStringOrdering(t *testing.T) {
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "lex", Effect: xacml.Permit, Target: xacml.Target{
				{Category: xacml.Subject, Attr: "name", Op: xacml.OpLt, Value: xacml.S("m")},
			}},
		},
	}
	rep := AnalyzePolicy(p, Options{})
	if b := findKind(rep, KindBounded); len(b) != 1 || b[0].Rule != "lex" {
		t.Fatalf("want lex bounded, got %v", rep.Findings)
	}
	if rep.Stats.Bounded == 0 {
		t.Fatal("stats should count bounded items")
	}
}

func TestConditionTranslation(t *testing.T) {
	// not(role=doctor or level<3) ∧ kind=record ⇒ conflicts only with
	// a deny on high-level non-doctors.
	cond := &xacml.Condition{Not: &xacml.Condition{Or: []xacml.Condition{
		{Match: &xacml.Match{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("doctor")}},
		{Match: &xacml.Match{Category: xacml.Subject, Attr: "level", Op: xacml.OpLt, Value: xacml.I(3)}},
	}}}
	p := &xacml.Policy{
		ID:        "p",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "guarded", Effect: xacml.Permit, Target: xacml.Target{eq(xacml.Resource, "kind", "record")}, Condition: cond},
			rule("deny-doctors", xacml.Deny, eq(xacml.Subject, "role", "doctor")),
		},
	}
	rep := AnalyzePolicy(p, Options{})
	// The permit's region excludes role=doctor, so no overlap exists.
	if cf := findKind(rep, KindConflict); len(cf) != 0 {
		t.Fatalf("negated condition should prevent overlap, got %v", cf)
	}

	// Replace the deny with one inside the permit's region: conflict.
	p.Rules[1] = rule("deny-records", xacml.Deny, eq(xacml.Resource, "kind", "record"))
	rep = AnalyzePolicy(p, Options{})
	cf := findKind(rep, KindConflict)
	if len(cf) != 1 || !cf[0].Verified {
		t.Fatalf("want verified conflict, got %v", rep.Findings)
	}
	// Witness must satisfy the negated condition concretely.
	if !p.Rules[0].Applies(cf[0].Request) {
		t.Fatalf("witness %v does not satisfy the condition", cf[0].Request)
	}
}

func TestDiffSets(t *testing.T) {
	oldSet := &xacml.PolicySet{
		ID: "gen-a", Combining: xacml.DenyOverrides,
		Policies: []*xacml.Policy{{ID: "p", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
			rule("permit-share", xacml.Permit, eq(xacml.Action, "id", "share")),
			rule("deny-export", xacml.Deny, eq(xacml.Action, "id", "export")),
		}}},
	}
	newSet := &xacml.PolicySet{
		ID: "gen-b", Combining: xacml.DenyOverrides,
		Policies: []*xacml.Policy{{ID: "p", Combining: xacml.DenyOverrides, Rules: []xacml.Rule{
			rule("deny-share", xacml.Deny, eq(xacml.Action, "id", "share")),
			rule("deny-export", xacml.Deny, eq(xacml.Action, "id", "export")),
		}}},
	}
	d, err := DiffSets(oldSet, newSet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Changed() {
		t.Fatal("diff should report changes")
	}
	flips := d.Flipped(xacml.DecisionDeny)
	if len(flips) != 1 || flips[0].From != xacml.DecisionPermit {
		t.Fatalf("want one Permit->Deny flip, got %v", d.Flips)
	}
	if !flips[0].Verified {
		t.Fatalf("flip witness not verified: %+v", flips[0])
	}
	// Identical generations: no flips.
	d, err = DiffSets(oldSet, oldSet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Changed() {
		t.Fatalf("self-diff should be empty, got %v", d.Flips)
	}
}

func TestReportConflictKeysAndFilter(t *testing.T) {
	rep := &Report{Findings: []Finding{
		{Kind: KindConflict, Severity: Error, Policy: "p", Rule: "a", OtherRule: "b"},
		{Kind: KindShadowed, Severity: Warning, Policy: "p", Rule: "c"},
		{Kind: KindRedundant, Severity: Info, Policy: "p", Rule: "d"},
	}}
	if got := len(rep.Filter(Warning)); got != 2 {
		t.Fatalf("Filter(Warning) = %d", got)
	}
	keys := rep.ConflictKeys()
	if len(keys) != 1 || !keys["conflict|p|a|b"] {
		t.Fatalf("keys: %v", keys)
	}
	if s, err := ParseSeverity("warning"); err != nil || s != Warning {
		t.Fatalf("ParseSeverity: %v %v", s, err)
	}
	if _, err := ParseSeverity("loud"); err == nil {
		t.Fatal("ParseSeverity should reject unknown names")
	}
}

func TestFindingRendering(t *testing.T) {
	f := Finding{Kind: KindConflict, Severity: Error, Policy: "p", Rule: "a", OtherRule: "b", Witness: "action.id=share", Detail: "overlap"}
	s := f.String()
	for _, want := range []string{"error", "conflict", "p/a", "witness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering %q misses %q", s, want)
		}
	}
}
