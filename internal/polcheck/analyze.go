package polcheck

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"agenp/internal/xacml"
)

// Kind classifies a finding.
type Kind int

// Finding kinds.
const (
	// KindConflict: a permit and a deny rule of one policy overlap.
	KindConflict Kind = iota + 1
	// KindCrossConflict: a permit region of one policy overlaps a deny
	// region of another in the same set.
	KindCrossConflict
	// KindShadowed: earlier rules under the combining algorithm take
	// every request the rule could match; it can never fire.
	KindShadowed
	// KindUnreachable: the rule's own target/condition is unsatisfiable.
	KindUnreachable
	// KindRedundant: removing the rule provably leaves every decision
	// of the policy unchanged.
	KindRedundant
	// KindSubsumedPolicy: removing the policy provably leaves every
	// decision of the policy set unchanged.
	KindSubsumedPolicy
	// KindBounded: the rule uses an unsupported construct or exceeded
	// the vector cap; it is excluded from all claims.
	KindBounded
)

func (k Kind) String() string {
	switch k {
	case KindConflict:
		return "conflict"
	case KindCrossConflict:
		return "cross-conflict"
	case KindShadowed:
		return "shadowed"
	case KindUnreachable:
		return "unreachable"
	case KindRedundant:
		return "redundant"
	case KindSubsumedPolicy:
		return "subsumed-policy"
	case KindBounded:
		return "analysis-bounded"
	default:
		return "invalid-kind"
	}
}

// MarshalText renders the kind for JSON output.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name, inverting MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	for c := KindConflict; c <= KindBounded; c++ {
		if c.String() == string(b) {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("polcheck: unknown finding kind %q", b)
}

// Severity grades findings, mirroring asplint's ladder.
type Severity int

// Severities, in ascending order.
const (
	Info Severity = iota + 1
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return "invalid-severity"
	}
}

// MarshalText renders the severity for JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity name, inverting MarshalText.
func (s *Severity) UnmarshalText(b []byte) error {
	v, err := ParseSeverity(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity parses a severity name.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	default:
		return 0, fmt.Errorf("polcheck: unknown severity %q", s)
	}
}

// Finding is one verification result.
type Finding struct {
	Kind     Kind     `json:"kind"`
	Severity Severity `json:"severity"`
	// Policy / Rule locate the finding; Other* name the counterpart
	// (the shadowing rule, the conflicting rule or policy).
	Policy      string `json:"policy,omitempty"`
	Rule        string `json:"rule,omitempty"`
	OtherPolicy string `json:"other_policy,omitempty"`
	OtherRule   string `json:"other_rule,omitempty"`
	// Witness is a concrete request exhibiting the finding (conflicts
	// only), rendered canonically; Request carries it for replay.
	Witness string        `json:"witness,omitempty"`
	Request xacml.Request `json:"-"`
	// Resolved is the decision the combining algorithm settles the
	// witness to (conflicts only).
	Resolved string `json:"resolved,omitempty"`
	// Verified reports that the witness was replayed through both the
	// compiled engine decider and the tree-walk oracle.
	Verified bool   `json:"verified,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

func (f Finding) String() string {
	loc := f.Policy
	if f.Rule != "" {
		loc += "/" + f.Rule
	}
	s := fmt.Sprintf("%s: %s: %s", f.Severity, f.Kind, loc)
	if f.Detail != "" {
		s += ": " + f.Detail
	}
	if f.Witness != "" {
		s += fmt.Sprintf(" (witness: %s)", f.Witness)
	}
	return s
}

// Stats summarizes an analysis run.
type Stats struct {
	Policies int           `json:"policies"`
	Rules    int           `json:"rules"`
	Slots    int           `json:"slots"`
	Vectors  int           `json:"vectors"`
	Bounded  int           `json:"bounded"`
	Duration time.Duration `json:"duration_ns"`
}

// Report is the outcome of analyzing a policy or policy set.
type Report struct {
	Findings []Finding `json:"findings"`
	Stats    Stats     `json:"stats"`
}

// HasErrors reports whether any finding is error-severity.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity >= Error {
			return true
		}
	}
	return false
}

// Filter returns the findings at or above the given severity.
func (r *Report) Filter(min Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// Conflicts returns the conflict findings (intra- and cross-policy).
func (r *Report) Conflicts() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == KindConflict || f.Kind == KindCrossConflict {
			out = append(out, f)
		}
	}
	return out
}

// ConflictKeys returns stable identifiers for the conflict pairs, used
// by the regeneration gate to distinguish new conflicts from
// pre-existing ones.
func (r *Report) ConflictKeys() map[string]bool {
	out := make(map[string]bool)
	for _, f := range r.Findings {
		switch f.Kind {
		case KindConflict:
			out[fmt.Sprintf("conflict|%s|%s|%s", f.Policy, f.Rule, f.OtherRule)] = true
		case KindCrossConflict:
			out[fmt.Sprintf("cross|%s|%s", f.Policy, f.OtherPolicy)] = true
		}
	}
	return out
}

func (r *Report) String() string {
	if len(r.Findings) == 0 {
		return "ok: no findings"
	}
	lines := make([]string, len(r.Findings))
	for i, f := range r.Findings {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// Options bounds and tunes the analysis.
type Options struct {
	// MaxVectors caps every region's DNF size (default 256). Exceeding
	// it degrades the affected item to a Bounded finding instead of an
	// unsound claim.
	MaxVectors int
	// Validate replays every conflict witness through the compiled
	// engine decider and the tree-walk oracle (default true; set
	// SkipValidation to disable).
	SkipValidation bool
}

func (o Options) cap() int {
	if o.MaxVectors <= 0 {
		return 256
	}
	return o.MaxVectors
}

// ---------------------------------------------------------------------
// Rule and policy translation.

// ruleInfo is one rule's symbolic form.
type ruleInfo struct {
	id     string
	effect xacml.Effect
	// region is target ∧ condition as a DNF over slots. Valid only
	// when supported.
	region    region
	supported bool
}

// policyInfo is one policy's symbolic form: per-rule regions plus the
// exact permit/deny decision regions under the rule-combining
// algorithm.
type policyInfo struct {
	id        string
	combining xacml.CombiningAlg
	target    region // the policy target as a (single-vector) region
	rules     []ruleInfo
	// permit/deny are the exact request regions on which the policy
	// evaluates to Permit / Deny. exact is false when any rule is
	// unsupported or a cap was hit; the regions are then unusable.
	permit, deny region
	exact        bool
}

type analyzer struct {
	in   *interner
	opts Options
}

func newAnalyzer(opts Options) *analyzer {
	return &analyzer{in: newInterner(), opts: opts}
}

// targetRegion translates a conjunction of matches.
func (a *analyzer) targetRegion(t xacml.Target) (region, error) {
	vec := vector{}
	for _, m := range t {
		vs, err := matchValues(m)
		if err != nil {
			return nil, err
		}
		slot := a.in.intern(m.Category, m.Attr)
		cur := vec.at(slot)
		if cur == nil {
			vec = vec.withSlot(slot, vs)
			continue
		}
		iv := cur.intersect(vs)
		if iv.empty() {
			return nil, nil // unsatisfiable target: empty region
		}
		vec = vec.withSlot(slot, iv)
	}
	return region{vec}, nil
}

// condRegion translates a condition (negated when neg), mirroring
// Condition.Eval's branch precedence exactly.
func (a *analyzer) condRegion(c *xacml.Condition, neg bool) (region, error) {
	andAll := func(parts []xacml.Condition, negParts bool) (region, error) {
		out := topRegion()
		for i := range parts {
			r, err := a.condRegion(&parts[i], negParts)
			if err != nil {
				return nil, err
			}
			if out, err = intersectRegions(out, r, a.opts.cap()); err != nil {
				return nil, err
			}
			if out.empty() {
				return nil, nil
			}
		}
		return out, nil
	}
	orAll := func(parts []xacml.Condition, negParts bool) (region, error) {
		var out region
		for i := range parts {
			r, err := a.condRegion(&parts[i], negParts)
			if err != nil {
				return nil, err
			}
			out = unionRegions(out, r)
			if len(out) > a.opts.cap() {
				return nil, errBounded
			}
		}
		return out, nil
	}
	switch {
	case c == nil:
		if neg {
			return nil, nil
		}
		return topRegion(), nil
	case c.Match != nil:
		vs, err := matchValues(*c.Match)
		if err != nil {
			return nil, err
		}
		if neg {
			vs = vs.complement()
		}
		slot := a.in.intern(c.Match.Category, c.Match.Attr)
		if vs.empty() {
			return nil, nil
		}
		return region{vector{}.withSlot(slot, vs)}, nil
	case c.Not != nil:
		return a.condRegion(c.Not, !neg)
	case len(c.And) > 0:
		if neg { // ¬(A ∧ B) = ¬A ∨ ¬B
			return orAll(c.And, true)
		}
		return andAll(c.And, false)
	case len(c.Or) > 0:
		if neg { // ¬(A ∨ B) = ¬A ∧ ¬B
			return andAll(c.Or, true)
		}
		return orAll(c.Or, false)
	default:
		if neg {
			return nil, nil
		}
		return topRegion(), nil
	}
}

// buildRule translates target ∧ condition into a region.
func (a *analyzer) buildRule(ru xacml.Rule) ruleInfo {
	info := ruleInfo{id: ru.ID, effect: ru.Effect}
	tr, err := a.targetRegion(ru.Target)
	if err != nil {
		return info
	}
	cr, err := a.condRegion(ru.Condition, false)
	if err != nil {
		return info
	}
	reg, err := intersectRegions(tr, cr, a.opts.cap())
	if err != nil {
		return info
	}
	info.region = reg
	info.supported = true
	return info
}

// buildPolicy translates a policy and computes its exact decision
// regions under the rule-combining algorithm.
func (a *analyzer) buildPolicy(p *xacml.Policy) *policyInfo {
	info := &policyInfo{id: p.ID, combining: p.Combining, exact: true}
	tr, err := a.targetRegion(p.Target)
	if err != nil {
		info.exact = false
		tr = topRegion() // over-approximate; only used when exact
	}
	info.target = tr
	for _, ru := range p.Rules {
		ri := a.buildRule(ru)
		// Restrict each rule to the policy target up front: every
		// downstream question is asked within the target.
		if ri.supported {
			if reg, err := intersectRegions(ri.region, info.target, a.opts.cap()); err == nil {
				ri.region = reg
			} else {
				ri.supported = false
			}
		}
		if !ri.supported {
			info.exact = false
		}
		info.rules = append(info.rules, ri)
	}
	if info.exact {
		info.permit, info.deny, info.exact = a.decisionRegions(info)
	}
	return info
}

// decisionRegions computes the exact Permit and Deny regions of a
// policy, resolving the combining algorithm symbolically:
//
//   - deny-overrides: Deny wherever any deny rule applies; Permit
//     wherever a permit rule applies and no deny rule does;
//   - permit-overrides: the mirror image;
//   - first-applicable: walk the rules in order, assigning each rule
//     its residual region (what earlier rules left uncovered).
func (a *analyzer) decisionRegions(p *policyInfo) (permit, deny region, exact bool) {
	cap := a.opts.cap()
	switch p.combining {
	case xacml.DenyOverrides, xacml.PermitOverrides:
		var permits, denies region
		for _, ru := range p.rules {
			if ru.effect == xacml.Permit {
				permits = unionRegions(permits, ru.region)
			} else {
				denies = unionRegions(denies, ru.region)
			}
		}
		if p.combining == xacml.DenyOverrides {
			permit, err := subtractRegions(permits, denies, cap)
			if err != nil {
				return nil, nil, false
			}
			return permit, denies, true
		}
		deny, err := subtractRegions(denies, permits, cap)
		if err != nil {
			return nil, nil, false
		}
		return permits, deny, true
	case xacml.FirstApplicable:
		var permit, deny region
		var seen region
		for _, ru := range p.rules {
			residual, err := subtractRegions(ru.region, seen, cap)
			if err != nil {
				return nil, nil, false
			}
			if ru.effect == xacml.Permit {
				permit = unionRegions(permit, residual)
			} else {
				deny = unionRegions(deny, residual)
			}
			seen = unionRegions(seen, ru.region)
			if len(seen) > cap {
				return nil, nil, false
			}
		}
		return permit, deny, true
	default:
		return nil, nil, false
	}
}

// ---------------------------------------------------------------------
// Intra-policy analyses.

// AnalyzePolicy verifies a single policy: unreachable and shadowed
// rules, permit/deny conflict pairs with validated witnesses, and
// redundant rules.
func AnalyzePolicy(p *xacml.Policy, opts Options) *Report {
	t0 := time.Now()
	a := newAnalyzer(opts)
	info := a.buildPolicy(p)
	rep := &Report{}
	a.analyzePolicy(rep, info, func(f *Finding) {
		if f.Request != nil && !opts.SkipValidation {
			f.Verified = validatePolicyConflict(p, f)
		}
	})
	a.finish(rep, t0, []*policyInfo{info})
	return rep
}

// analyzePolicy appends intra-policy findings; onConflict lets callers
// validate witnesses against the owning policy or set.
func (a *analyzer) analyzePolicy(rep *Report, p *policyInfo, onConflict func(*Finding)) {
	cap := a.opts.cap()

	for i := range p.rules {
		ru := &p.rules[i]
		if !ru.supported {
			rep.add(Finding{
				Kind: KindBounded, Severity: Info, Policy: p.id, Rule: ru.id,
				Detail: "rule uses an unsupported construct or exceeded the vector cap; excluded from claims",
			})
			continue
		}
		if ru.region.empty() {
			rep.add(Finding{
				Kind: KindUnreachable, Severity: Warning, Policy: p.id, Rule: ru.id,
				Detail: "target and condition are unsatisfiable; the rule can never apply",
			})
			continue
		}
		// Shadowing: the rules evaluated before this one that end the
		// policy evaluation when they fire (the early-return slots the
		// compiler resolves): every earlier rule under
		// first-applicable, earlier deny rules under deny-overrides,
		// earlier permit rules under permit-overrides.
		var blockers region
		blocked := true
		var by []string
		for j := 0; j < i; j++ {
			other := &p.rules[j]
			returns := p.combining == xacml.FirstApplicable ||
				(p.combining == xacml.DenyOverrides && other.effect == xacml.Deny) ||
				(p.combining == xacml.PermitOverrides && other.effect == xacml.Permit)
			if !returns {
				continue
			}
			if !other.supported {
				blocked = false // cannot rely on an unknown region
				break
			}
			blockers = unionRegions(blockers, other.region)
			by = append(by, other.id)
		}
		if blocked && len(by) > 0 {
			if cov, err := covered(ru.region, blockers, cap); err == nil && cov {
				rep.add(Finding{
					Kind: KindShadowed, Severity: Warning, Policy: p.id, Rule: ru.id,
					OtherRule: strings.Join(by, ","),
					Detail:    fmt.Sprintf("every matching request is taken by earlier rules under %s", p.combining),
				})
			}
		}
	}

	// Conflict pairs: overlapping permit/deny rules, witness included.
	for i := range p.rules {
		ri := &p.rules[i]
		if !ri.supported || ri.effect != xacml.Permit {
			continue
		}
		for j := range p.rules {
			rj := &p.rules[j]
			if !rj.supported || rj.effect != xacml.Deny {
				continue
			}
			overlap, err := intersectRegions(ri.region, rj.region, cap)
			if err != nil || overlap.empty() {
				continue
			}
			w := a.witness(overlap[0])
			f := Finding{
				Kind: KindConflict, Severity: Error, Policy: p.id,
				Rule: ri.id, OtherRule: rj.id,
				Witness: w.Key(), Request: w,
				Detail: fmt.Sprintf("permit rule %q and deny rule %q overlap on %s", ri.id, rj.id, a.renderVector(overlap[0])),
			}
			if onConflict != nil {
				onConflict(&f)
			}
			rep.add(f)
		}
	}

	// Redundancy. Exact per-combining reasoning (see package doc):
	// under the overrides algorithms a rule of the winning effect is
	// redundant iff other same-effect rules cover it, and a rule of the
	// losing effect is redundant iff any other rules cover it; under
	// first-applicable, walk the residual through the later rules.
	if p.exact {
		for i := range p.rules {
			ru := &p.rules[i]
			if !ru.supported || ru.region.empty() {
				continue // unreachable already reported
			}
			if a.ruleRedundant(p, i) {
				rep.add(Finding{
					Kind: KindRedundant, Severity: Info, Policy: p.id, Rule: ru.id,
					Detail: "removing the rule provably changes no decision",
				})
			}
		}
	}
}

func (a *analyzer) ruleRedundant(p *policyInfo, i int) bool {
	cap := a.opts.cap()
	ru := &p.rules[i]
	switch p.combining {
	case xacml.DenyOverrides, xacml.PermitOverrides:
		winning := xacml.Deny
		if p.combining == xacml.PermitOverrides {
			winning = xacml.Permit
		}
		var others region
		for j := range p.rules {
			if j == i {
				continue
			}
			o := &p.rules[j]
			// Winning-effect rules are only covered by same-effect
			// rules; losing-effect rules by any other rule.
			if ru.effect == winning && o.effect != winning {
				continue
			}
			others = unionRegions(others, o.region)
		}
		cov, err := covered(ru.region, others, cap)
		return err == nil && cov
	case xacml.FirstApplicable:
		// Residual of rule i: requests it actually decides.
		var earlier region
		for j := 0; j < i; j++ {
			earlier = unionRegions(earlier, p.rules[j].region)
		}
		rem, err := subtractRegions(ru.region, earlier, cap)
		if err != nil {
			return false
		}
		if rem.empty() {
			return true // shadowed rules are trivially removable
		}
		// After removal, each residual request falls to the first
		// applicable later rule, which must carry the same effect; any
		// residual left at the end would become NotApplicable.
		for j := i + 1; j < len(p.rules); j++ {
			o := &p.rules[j]
			hit, err := intersectRegions(rem, o.region, cap)
			if err != nil {
				return false
			}
			if !hit.empty() && o.effect != ru.effect {
				return false
			}
			if rem, err = subtractRegions(rem, o.region, cap); err != nil {
				return false
			}
			if rem.empty() {
				return true
			}
		}
		return rem.empty()
	default:
		return false
	}
}

// ---------------------------------------------------------------------
// Set-level analyses.

// setInfo is a policy set's symbolic form.
type setInfo struct {
	target   region
	policies []*policyInfo
	// permit/deny: exact set-level decision regions; exact is false
	// when any member policy is inexact or a cap was hit.
	permit, deny region
	exact        bool
}

func (a *analyzer) buildSet(ps *xacml.PolicySet) *setInfo {
	info := &setInfo{exact: true}
	tr, err := a.targetRegion(ps.Target)
	if err != nil {
		info.exact = false
		tr = topRegion()
	}
	info.target = tr
	for _, p := range ps.Policies {
		pi := a.buildPolicy(p)
		if pi.exact {
			// Member decisions only happen within the set target.
			if pi.permit, err = intersectRegions(pi.permit, info.target, a.opts.cap()); err != nil {
				pi.exact = false
			}
			if pi.deny, err = intersectRegions(pi.deny, info.target, a.opts.cap()); err != nil {
				pi.exact = false
			}
		}
		if !pi.exact {
			info.exact = false
		}
		info.policies = append(info.policies, pi)
	}
	if info.exact {
		info.permit, info.deny, info.exact = a.setDecisionRegions(info.policies, ps.Combining)
	}
	return info
}

// setDecisionRegions resolves the policy-combining algorithm over the
// member policies' exact decision regions.
func (a *analyzer) setDecisionRegions(policies []*policyInfo, alg xacml.CombiningAlg) (permit, deny region, exact bool) {
	cap := a.opts.cap()
	switch alg {
	case xacml.DenyOverrides, xacml.PermitOverrides:
		var permits, denies region
		for _, p := range policies {
			permits = append(permits, p.permit...)
			denies = append(denies, p.deny...)
		}
		if alg == xacml.DenyOverrides {
			permit, err := subtractRegions(permits, denies, cap)
			if err != nil {
				return nil, nil, false
			}
			return permit, denies, true
		}
		deny, err := subtractRegions(denies, permits, cap)
		if err != nil {
			return nil, nil, false
		}
		return permits, deny, true
	case xacml.FirstApplicable:
		var permit, deny, seen region
		for _, p := range policies {
			pr, err := subtractRegions(p.permit, seen, cap)
			if err != nil {
				return nil, nil, false
			}
			dr, err := subtractRegions(p.deny, seen, cap)
			if err != nil {
				return nil, nil, false
			}
			permit = append(permit, pr...)
			deny = append(deny, dr...)
			seen = append(append(seen, p.permit...), p.deny...)
			if len(seen) > cap {
				return nil, nil, false
			}
		}
		return permit, deny, true
	default:
		return nil, nil, false
	}
}

// AnalyzeSet verifies a policy set: every intra-policy finding of
// AnalyzePolicy for each member, plus cross-policy permit/deny
// conflicts and policies whose removal provably changes no decision
// (subsumption — the check the coalition import gate runs after
// ImportShared).
func AnalyzeSet(ps *xacml.PolicySet, opts Options) *Report {
	t0 := time.Now()
	a := newAnalyzer(opts)
	info := a.buildSet(ps)
	rep := &Report{}

	// The validator compiles the whole set through the engine, so build
	// it lazily on the first witness-bearing finding: a clean analysis
	// (the steady-state AMS gate case) never pays for compilation.
	var validator *setValidator
	getValidator := func() *setValidator {
		if validator == nil && !opts.SkipValidation {
			validator = newSetValidator(ps)
		}
		return validator
	}

	for pi, p := range ps.Policies {
		p := p
		a.analyzePolicy(rep, info.policies[pi], func(f *Finding) {
			if f.Request != nil && !opts.SkipValidation {
				f.Verified = validatePolicyConflict(p, f)
			}
		})
	}

	cap := opts.cap()
	// Cross-policy conflicts: permit region of one policy vs deny
	// region of another. Pairs are normalized permit-side first, so a
	// symmetric duplicate cannot be emitted.
	for i, p := range info.policies {
		if !p.exact {
			continue
		}
		for j, q := range info.policies {
			if i == j || !q.exact {
				continue
			}
			overlap, err := intersectRegions(p.permit, q.deny, cap)
			if err != nil || overlap.empty() {
				continue
			}
			w := a.witness(overlap[0])
			f := Finding{
				Kind: KindCrossConflict, Severity: Error,
				Policy: p.id, OtherPolicy: q.id,
				Witness: w.Key(), Request: w,
				Detail: fmt.Sprintf("policy %q permits and policy %q denies on %s", p.id, q.id, a.renderVector(overlap[0])),
			}
			if v := getValidator(); v != nil {
				d, ok := v.replay(w)
				f.Resolved = d.String()
				f.Verified = ok && validateSetConflict(ps, p.id, q.id, w)
			}
			rep.add(f)
		}
	}

	// Policy subsumption: under the overrides algorithms, a policy is
	// removable iff its winning-effect region is covered by the other
	// policies' same-effect regions and its losing-effect region is
	// covered by the other policies' same-effect regions or overridden
	// anyway. first-applicable recomputes the set without the policy
	// and diffs.
	if info.exact && len(info.policies) > 1 {
		permits := newSegmentedUnion(info.policies, func(p *policyInfo) region { return p.permit })
		denies := newSegmentedUnion(info.policies, func(p *policyInfo) region { return p.deny })
		for i := range info.policies {
			if a.policySubsumed(info, ps.Combining, i, permits, denies) {
				rep.add(Finding{
					Kind: KindSubsumedPolicy, Severity: Info, Policy: info.policies[i].id,
					Detail: "removing the policy provably changes no set decision",
				})
			}
		}
	}

	a.finish(rep, t0, info.policies)
	return rep
}

// segmentedUnion concatenates per-policy regions into one flat region
// and records each policy's segment, so the "all policies but i" union
// is two copies instead of a per-candidate incremental rebuild (which
// made the subsumption sweep cubic in the policy count).
type segmentedUnion struct {
	flat region
	seg  [][2]int
}

func newSegmentedUnion(policies []*policyInfo, pick func(*policyInfo) region) *segmentedUnion {
	u := &segmentedUnion{seg: make([][2]int, len(policies))}
	for i, p := range policies {
		start := len(u.flat)
		u.flat = append(u.flat, pick(p)...)
		u.seg[i] = [2]int{start, len(u.flat)}
	}
	return u
}

// without returns the union of every segment except policy i's.
func (u *segmentedUnion) without(i int) region {
	lo, hi := u.seg[i][0], u.seg[i][1]
	if lo == hi {
		return u.flat
	}
	out := make(region, 0, len(u.flat)-(hi-lo))
	out = append(out, u.flat[:lo]...)
	return append(out, u.flat[hi:]...)
}

// policySubsumed reports whether removing policy i provably leaves the
// set's decision regions unchanged. permits and denies hold the
// precomputed per-policy segments for the overrides algorithms.
func (a *analyzer) policySubsumed(info *setInfo, alg xacml.CombiningAlg, i int, permits, denies *segmentedUnion) bool {
	cap := a.opts.cap()
	p := info.policies[i]
	switch alg {
	case xacml.DenyOverrides, xacml.PermitOverrides:
		otherPermit, otherDeny := permits.without(i), denies.without(i)
		winning, losing := p.deny, p.permit
		otherWinning, otherLosing := otherDeny, otherPermit
		if alg == xacml.PermitOverrides {
			winning, losing = p.permit, p.deny
			otherWinning, otherLosing = otherPermit, otherDeny
		}
		// The winning-effect region must be re-decided identically by
		// another policy's winning region.
		if cov, err := covered(winning, otherWinning, cap); err != nil || !cov {
			return false
		}
		// The losing-effect region is either overridden regardless, or
		// re-decided by another policy's losing region.
		effective, err := subtractRegions(losing, otherWinning, cap)
		if err != nil {
			return false
		}
		cov, err := covered(effective, otherLosing, cap)
		return err == nil && cov
	case xacml.FirstApplicable:
		rest := append([]*policyInfo(nil), info.policies[:i]...)
		rest = append(rest, info.policies[i+1:]...)
		permit2, deny2, ok := a.setDecisionRegions(rest, alg)
		if !ok {
			return false
		}
		return regionsEqual(info.permit, permit2, cap) && regionsEqual(info.deny, deny2, cap)
	default:
		return false
	}
}

func regionsEqual(a, b region, cap int) bool {
	d1, err := subtractRegions(a, b, cap)
	if err != nil || !d1.empty() {
		return false
	}
	d2, err := subtractRegions(b, a, cap)
	return err == nil && d2.empty()
}

// ---------------------------------------------------------------------

func (r *Report) add(f Finding) {
	statFindings.Inc()
	r.Findings = append(r.Findings, f)
}

// finish sorts findings into a stable order and fills stats.
func (a *analyzer) finish(rep *Report, t0 time.Time, policies []*policyInfo) {
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		fi, fj := &rep.Findings[i], &rep.Findings[j]
		if fi.Severity != fj.Severity {
			return fi.Severity > fj.Severity
		}
		if fi.Policy != fj.Policy {
			return fi.Policy < fj.Policy
		}
		if fi.Rule != fj.Rule {
			return fi.Rule < fj.Rule
		}
		return fi.Kind < fj.Kind
	})
	st := &rep.Stats
	st.Policies = len(policies)
	st.Slots = len(a.in.slots)
	for _, p := range policies {
		st.Rules += len(p.rules)
		for _, ru := range p.rules {
			st.Vectors += len(ru.region)
			if !ru.supported {
				st.Bounded++
			}
		}
		if !p.exact {
			st.Bounded++
		}
	}
	st.Duration = time.Since(t0)
	statAnalyses.Inc()
	statAnalysisDur.Observe(st.Duration)
	if st.Bounded > 0 {
		statBounded.Add(int64(st.Bounded))
	}
}
