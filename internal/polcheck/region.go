// Package polcheck statically verifies compiled policy sets without
// enumerating the attribute domain (the paper's Section V.A calls for
// static identification of policy conflicts ahead of runtime
// resolution). In the style of Margrave and XACML change-impact
// analysis, every rule's target and condition is translated into a
// disjunction of constraint vectors over interned (category, attribute)
// slots — the same slot identity the compiled form in internal/xacml
// interns — and all verification questions reduce to interval/set
// reasoning on those vectors:
//
//   - shadowing / unreachability: a rule (or policy) can never fire
//     because the combining algorithm routes every request it could
//     match to an earlier rule;
//   - conflict pairs: a permit and a deny rule overlap; each conflict
//     is reported with a concrete witness request, validated by
//     replaying it through the compiled engine and the tree-walk
//     oracle;
//   - redundancy: removing the rule provably leaves every decision of
//     the policy unchanged, on every possible request;
//   - cross-policy subsumption and conflicts after coalition sharing;
//   - generation change-impact: a symbolic diff of two policy-set
//     generations listing the request regions whose decision flipped.
//
// The analyses are exact for the supported match language (equality,
// inequality and integer ordering over string/int attribute values,
// arbitrary and/or/not conditions): when Analyze reports no finding and
// no Bounded note, the property holds for every request, not just a
// sampled domain. Policies using ordering comparisons over string
// constants, or whose condition DNF exceeds Options.MaxVectors, degrade
// soundly: the affected rules are reported as Bounded and excluded from
// claims instead of guessed at. internal/quality keeps the enumeration
// checker as a differential oracle on small domains (see the
// FuzzPolcheckVsEnumeration harness).
package polcheck

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"agenp/internal/xacml"
)

// slotKey identifies one interned (category, attribute) pair.
type slotKey struct {
	cat  xacml.Category
	attr string
}

func (k slotKey) String() string { return string(k.cat) + "." + k.attr }

// interner assigns dense ids to (category, attribute) pairs, mirroring
// the attribute interner of the compiled evaluator.
type interner struct {
	slots []slotKey
	ids   map[slotKey]int
}

func newInterner() *interner {
	return &interner{ids: make(map[slotKey]int)}
}

func (in *interner) intern(cat xacml.Category, attr string) int {
	key := slotKey{cat, attr}
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := len(in.slots)
	in.slots = append(in.slots, key)
	in.ids[key] = id
	return id
}

// ---------------------------------------------------------------------
// Integer sets: sorted disjoint closed intervals over int64, with
// math.MinInt64/MaxInt64 as the unbounded sentinels.

type intIv struct{ lo, hi int64 }

// intSet is a union of disjoint, sorted, non-overlapping intervals.
// nil/empty means the empty set.
type intSet []intIv

func fullInts() intSet { return intSet{{math.MinInt64, math.MaxInt64}} }

func (s intSet) empty() bool { return len(s) == 0 }

// normalizeInts sorts and merges overlapping or adjacent intervals.
func normalizeInts(ivs []intIv) intSet {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := intSet{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi || (last.hi != math.MaxInt64 && iv.lo == last.hi+1) {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func (s intSet) intersect(o intSet) intSet {
	var out intSet
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		lo := max64(s[i].lo, o[j].lo)
		hi := min64(s[i].hi, o[j].hi)
		if lo <= hi {
			out = append(out, intIv{lo, hi})
		}
		if s[i].hi < o[j].hi {
			i++
		} else {
			j++
		}
	}
	return out
}

func (s intSet) subtract(o intSet) intSet {
	if len(s) == 0 || len(o) == 0 {
		return s
	}
	var out intSet
	for _, a := range s {
		parts := intSet{a}
		for _, b := range o {
			var next intSet
			for _, p := range parts {
				if b.hi < p.lo || b.lo > p.hi {
					next = append(next, p)
					continue
				}
				if b.lo > p.lo {
					next = append(next, intIv{p.lo, b.lo - 1})
				}
				if b.hi < p.hi {
					next = append(next, intIv{b.hi + 1, p.hi})
				}
			}
			parts = next
			if len(parts) == 0 {
				break
			}
		}
		out = append(out, parts...)
	}
	return normalizeInts(out)
}

// pick returns a representative member, preferring small finite bounds.
func (s intSet) pick() int64 {
	iv := s[0]
	switch {
	case iv.lo != math.MinInt64:
		return iv.lo
	case iv.hi != math.MaxInt64:
		return iv.hi
	default:
		return 0
	}
}

// bounded reports whether the set has at least one finite endpoint, so
// witness extraction can prefer values that look intentional.
func (s intSet) boundedPick() (int64, bool) {
	for _, iv := range s {
		if iv.lo != math.MinInt64 {
			return iv.lo, true
		}
		if iv.hi != math.MaxInt64 {
			return iv.hi, true
		}
	}
	return 0, false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// intEq and friends build the primitive sets for each operator. Bounds
// saturate instead of wrapping at the sentinels.
func intEq(v int64) intSet  { return intSet{{v, v}} }
func intNeq(v int64) intSet { return fullInts().subtract(intEq(v)) }
func intLt(v int64) intSet {
	if v == math.MinInt64 {
		return nil
	}
	return intSet{{math.MinInt64, v - 1}}
}
func intLeq(v int64) intSet { return intSet{{math.MinInt64, v}} }
func intGt(v int64) intSet {
	if v == math.MaxInt64 {
		return nil
	}
	return intSet{{v + 1, math.MaxInt64}}
}
func intGeq(v int64) intSet { return intSet{{v, math.MaxInt64}} }

// ---------------------------------------------------------------------
// String sets: either a finite set of members or a cofinite set
// (everything except the listed exclusions). Both forms are closed
// under intersection and difference, which is all the analyses need.

type strSet struct {
	// cofinite: vals are exclusions; otherwise vals are the members.
	cofinite bool
	vals     []string // sorted, deduplicated
}

func fullStrs() strSet  { return strSet{cofinite: true} }
func emptyStrs() strSet { return strSet{} }

func (s strSet) empty() bool { return !s.cofinite && len(s.vals) == 0 }

func sortedUnique(vals []string) []string {
	if len(vals) == 0 {
		return nil
	}
	out := append([]string(nil), vals...)
	sort.Strings(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

func strMembers(vals ...string) strSet { return strSet{vals: sortedUnique(vals)} }

func strWithout(vals ...string) strSet {
	return strSet{cofinite: true, vals: sortedUnique(vals)}
}

func contains(sorted []string, v string) bool {
	i := sort.SearchStrings(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

// setMinus returns the members of a not in b (both sorted).
func setMinus(a, b []string) []string {
	var out []string
	for _, v := range a {
		if !contains(b, v) {
			out = append(out, v)
		}
	}
	return out
}

func (s strSet) intersect(o strSet) strSet {
	switch {
	case !s.cofinite && !o.cofinite:
		var out []string
		for _, v := range s.vals {
			if contains(o.vals, v) {
				out = append(out, v)
			}
		}
		return strSet{vals: out}
	case !s.cofinite: // finite ∩ cofinite
		return strSet{vals: setMinus(s.vals, o.vals)}
	case !o.cofinite:
		return strSet{vals: setMinus(o.vals, s.vals)}
	default: // cofinite ∩ cofinite: union the exclusions
		return strSet{cofinite: true, vals: sortedUnique(append(append([]string(nil), s.vals...), o.vals...))}
	}
}

func (s strSet) subtract(o strSet) strSet {
	switch {
	case !s.cofinite && !o.cofinite:
		return strSet{vals: setMinus(s.vals, o.vals)}
	case !s.cofinite: // finite ∖ cofinite = members also excluded by o
		var out []string
		for _, v := range s.vals {
			if contains(o.vals, v) {
				out = append(out, v)
			}
		}
		return strSet{vals: out}
	case !o.cofinite: // cofinite ∖ finite: add exclusions
		return strSet{cofinite: true, vals: sortedUnique(append(append([]string(nil), s.vals...), o.vals...))}
	default: // cofinite ∖ cofinite = o's exclusions not excluded by s
		return strSet{vals: setMinus(o.vals, s.vals)}
	}
}

// pick returns a representative member; cofinite sets synthesize a
// fresh witness value outside the exclusions.
func (s strSet) pick() string {
	if !s.cofinite {
		return s.vals[0]
	}
	for i := 0; ; i++ {
		cand := fmt.Sprintf("w%d", i)
		if !contains(s.vals, cand) {
			return cand
		}
	}
}

// ---------------------------------------------------------------------
// valueSet: the admissible assignments of one slot. A request either
// omits the attribute (absent), carries an integer, or carries a
// string; the three components are independent.

type valueSet struct {
	absent bool
	ints   intSet
	strs   strSet
}

func topValues() *valueSet {
	return &valueSet{absent: true, ints: fullInts(), strs: fullStrs()}
}

func (v *valueSet) empty() bool {
	return !v.absent && v.ints.empty() && v.strs.empty()
}

func (v *valueSet) isTop() bool {
	return v.absent &&
		len(v.ints) == 1 && v.ints[0].lo == math.MinInt64 && v.ints[0].hi == math.MaxInt64 &&
		v.strs.cofinite && len(v.strs.vals) == 0
}

func (v *valueSet) intersect(o *valueSet) *valueSet {
	return &valueSet{
		absent: v.absent && o.absent,
		ints:   v.ints.intersect(o.ints),
		strs:   v.strs.intersect(o.strs),
	}
}

func (v *valueSet) subtract(o *valueSet) *valueSet {
	return &valueSet{
		absent: v.absent && !o.absent,
		ints:   v.ints.subtract(o.ints),
		strs:   v.strs.subtract(o.strs),
	}
}

// disjoint reports whether v ∩ o is empty without materializing the
// intersection; subtractVec uses it as an allocation-free fast path.
func (v *valueSet) disjoint(o *valueSet) bool {
	if v.absent && o.absent {
		return false
	}
	return v.ints.disjoint(o.ints) && v.strs.disjoint(o.strs)
}

func (s intSet) disjoint(o intSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		if max64(s[i].lo, o[j].lo) <= min64(s[i].hi, o[j].hi) {
			return false
		}
		if s[i].hi < o[j].hi {
			i++
		} else {
			j++
		}
	}
	return true
}

func (s strSet) disjoint(o strSet) bool {
	switch {
	case !s.cofinite && !o.cofinite:
		i, j := 0, 0
		for i < len(s.vals) && j < len(o.vals) {
			switch {
			case s.vals[i] == o.vals[j]:
				return false
			case s.vals[i] < o.vals[j]:
				i++
			default:
				j++
			}
		}
		return true
	case s.cofinite && o.cofinite:
		// Two cofinite sets always share a member: the universe of
		// strings is infinite and each excludes only finitely many.
		return false
	default:
		fin, cof := s, o
		if s.cofinite {
			fin, cof = o, s
		}
		for _, v := range fin.vals {
			if !contains(cof.vals, v) {
				return false
			}
		}
		return true
	}
}

// matchValues translates one attribute test into the slot's admissible
// present values. Ordering comparisons against string constants have
// lexicographic semantics the set representation cannot capture; they
// report errUnsupported and the owning rule degrades to Bounded.
var errUnsupported = fmt.Errorf("polcheck: string ordering comparison not representable")

func matchValues(m xacml.Match) (*valueSet, error) {
	out := &valueSet{} // absent never matches
	if m.Value.IsInt {
		v := int64(m.Value.Int)
		switch m.Op {
		case xacml.OpEq:
			out.ints = intEq(v)
		case xacml.OpNeq:
			// Cross-type values compare not-equal, so all strings match.
			out.ints, out.strs = intNeq(v), fullStrs()
		case xacml.OpLt:
			out.ints = intLt(v)
		case xacml.OpLeq:
			out.ints = intLeq(v)
		case xacml.OpGt:
			out.ints = intGt(v)
		case xacml.OpGeq:
			out.ints = intGeq(v)
		default:
			return nil, fmt.Errorf("polcheck: unknown operator %v", m.Op)
		}
		return out, nil
	}
	switch m.Op {
	case xacml.OpEq:
		out.strs = strMembers(m.Value.Str)
	case xacml.OpNeq:
		out.strs, out.ints = strWithout(m.Value.Str), fullInts()
	default:
		return nil, errUnsupported
	}
	return out, nil
}

// complement returns the assignments on which the match evaluates
// false: the attribute may be absent, or present outside the set.
func (v *valueSet) complement() *valueSet {
	return topValues().subtract(v)
}

// ---------------------------------------------------------------------
// vector: one conjunction of slot constraints. nil entries (or indices
// past the end) are unconstrained. A vector with an empty slot set is
// unsatisfiable and is never stored; the empty *region* means false.

type vector []*valueSet

func (a vector) at(i int) *valueSet {
	if i < len(a) && a[i] != nil {
		return a[i]
	}
	return nil // top
}

func (a vector) clone() vector {
	out := make(vector, len(a))
	copy(out, a)
	return out
}

// withSlot returns a copy of the vector with slot i set (compacting
// top constraints back to nil).
func (a vector) withSlot(i int, vs *valueSet) vector {
	out := a.clone()
	if len(out) <= i {
		grown := make(vector, i+1)
		copy(grown, out)
		out = grown
	}
	if vs != nil && vs.isTop() {
		vs = nil
	}
	out[i] = vs
	return out
}

// conj intersects two vectors; ok is false when the result is empty.
func conj(a, b vector) (vector, bool) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(vector, n)
	for i := 0; i < n; i++ {
		av, bv := a.at(i), b.at(i)
		switch {
		case av == nil:
			out[i] = bv
		case bv == nil:
			out[i] = av
		default:
			iv := av.intersect(bv)
			if iv.empty() {
				return nil, false
			}
			out[i] = iv
		}
	}
	return out, true
}

// subtractVec returns vectors covering a ∖ b, using the standard
// hyperrectangle decomposition: for each constrained slot of b, emit
// the piece that agrees with b on earlier slots and avoids b on this
// one.
func subtractVec(a, b vector) []vector {
	if vecsDisjoint(a, b) {
		return []vector{a}
	}
	var pieces []vector
	acc := a.clone()
	for i := 0; i < len(b); i++ {
		bv := b.at(i)
		if bv == nil {
			continue
		}
		av := acc.at(i)
		if av == nil {
			av = topValues()
		}
		diff := av.subtract(bv)
		if !diff.empty() {
			pieces = append(pieces, acc.withSlot(i, diff))
		}
		inter := av.intersect(bv)
		if inter.empty() {
			// a and b are disjoint from this slot on: the emitted
			// pieces already cover all of a.
			return pieces
		}
		acc = acc.withSlot(i, inter)
	}
	// acc == a ∩ b is nonempty; the pieces cover exactly a ∖ b.
	return pieces
}

// vecsDisjoint reports whether a ∩ b is empty. Checking before
// decomposing keeps the dominant all-disjoint case of subtractRegions
// allocation-free: a ∖ b is just a, unfragmented.
func vecsDisjoint(a, b vector) bool {
	for i := 0; i < len(b); i++ {
		bv := b.at(i)
		if bv == nil {
			continue
		}
		if av := a.at(i); av != nil && av.disjoint(bv) {
			return true
		}
	}
	return false
}

// region: a union (DNF) of vectors. nil means the empty region.
type region []vector

func topRegion() region { return region{vector{}} }

func (r region) empty() bool { return len(r) == 0 }

// errBounded is reported when a region operation would exceed the
// vector cap; callers must stop claiming properties about the operands.
var errBounded = fmt.Errorf("polcheck: region size exceeds MaxVectors")

func intersectRegions(a, b region, cap int) (region, error) {
	var out region
	for _, va := range a {
		for _, vb := range b {
			if vecsDisjoint(va, vb) {
				continue
			}
			if v, ok := conj(va, vb); ok {
				out = append(out, v)
				if len(out) > cap {
					return nil, errBounded
				}
			}
		}
	}
	return out, nil
}

func subtractRegions(a, b region, cap int) (region, error) {
	out := a
	for _, vb := range b {
		// Skip subtrahends disjoint from every remaining vector: the
		// pre-scan keeps large mostly-disjoint unions (the shape policy
		// sets produce) from reallocating out once per vb.
		touches := false
		for _, va := range out {
			if !vecsDisjoint(va, vb) {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		var next region
		for _, va := range out {
			if vecsDisjoint(va, vb) {
				next = append(next, va)
			} else {
				next = append(next, subtractVec(va, vb)...)
			}
			if len(next) > cap {
				return nil, errBounded
			}
		}
		out = next
		if len(out) == 0 {
			return nil, nil
		}
	}
	return out, nil
}

func unionRegions(rs ...region) region {
	var out region
	for _, r := range rs {
		out = append(out, r...)
	}
	return out
}

// covered reports whether a ⊆ b (exactly, when err is nil).
func covered(a, b region, cap int) (bool, error) {
	rest, err := subtractRegions(a, b, cap)
	if err != nil {
		return false, err
	}
	return rest.empty(), nil
}

// ---------------------------------------------------------------------
// Witness extraction.

// witness builds a concrete request inside the vector: each
// constrained slot gets a representative value (preferring explicit
// string members, then finite integer bounds), and slots that only
// admit absence are omitted.
func (a *analyzer) witness(v vector) xacml.Request {
	req := xacml.NewRequest()
	for i, vs := range v {
		if vs == nil {
			continue
		}
		key := a.in.slots[i]
		switch p, bounded := vs.ints.boundedPick(); {
		case !vs.strs.empty() && !vs.strs.cofinite:
			// An explicit string member is the most intentional pick.
			req.Set(key.cat, key.attr, xacml.S(vs.strs.pick()))
		case bounded:
			req.Set(key.cat, key.attr, xacml.I(clampInt(p)))
		case vs.absent:
			// Absence is admissible and nothing better presented: omit.
		case !vs.strs.empty():
			req.Set(key.cat, key.attr, xacml.S(vs.strs.pick()))
		case !vs.ints.empty():
			req.Set(key.cat, key.attr, xacml.I(clampInt(vs.ints.pick())))
		}
	}
	return req
}

func clampInt(v int64) int {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int(v)
}

// renderVector describes a vector for human-readable findings.
func (a *analyzer) renderVector(v vector) string {
	var parts []string
	for i, vs := range v {
		if vs == nil {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s∈%s", a.in.slots[i], renderValues(vs)))
	}
	if len(parts) == 0 {
		return "any request"
	}
	return strings.Join(parts, ", ")
}

func renderValues(vs *valueSet) string {
	var parts []string
	if vs.absent {
		parts = append(parts, "absent")
	}
	for _, iv := range vs.ints {
		switch {
		case iv.lo == math.MinInt64 && iv.hi == math.MaxInt64:
			parts = append(parts, "int")
		case iv.lo == math.MinInt64:
			parts = append(parts, fmt.Sprintf("int≤%d", iv.hi))
		case iv.hi == math.MaxInt64:
			parts = append(parts, fmt.Sprintf("int≥%d", iv.lo))
		case iv.lo == iv.hi:
			parts = append(parts, fmt.Sprintf("%d", iv.lo))
		default:
			parts = append(parts, fmt.Sprintf("%d..%d", iv.lo, iv.hi))
		}
	}
	if vs.strs.cofinite {
		if len(vs.strs.vals) == 0 {
			parts = append(parts, "str")
		} else {
			parts = append(parts, "str∉{"+strings.Join(vs.strs.vals, ",")+"}")
		}
	} else if len(vs.strs.vals) > 0 {
		parts = append(parts, "{"+strings.Join(vs.strs.vals, ",")+"}")
	}
	return "{" + strings.Join(parts, "|") + "}"
}
