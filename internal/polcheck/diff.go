package polcheck

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"agenp/internal/engine"
	"agenp/internal/xacml"
)

// Change-impact analysis: a symbolic diff of two policy-set generations
// (pre/post Evolve or PAdaP adaptation). Both sets are translated over
// one shared interner so their regions speak about the same slots, and
// each of the six possible decision flips (Permit/Deny/NotApplicable
// crossed) is computed as a region intersection or subtraction. A
// non-empty flip region yields a witness request validated against both
// generations' evaluators.

// ErrDiffBounded is reported when a generation uses an unsupported
// construct or the analysis exceeded the vector cap, so an exact diff
// cannot be claimed.
var ErrDiffBounded = errors.New("polcheck: diff bounded — a generation uses an unsupported construct or exceeded the vector cap")

// Flip is one decision change between generations: every request in
// Region decided From under the old set and To under the new one.
type Flip struct {
	From xacml.Decision `json:"-"`
	To   xacml.Decision `json:"-"`
	// FromTo renders the transition, e.g. "Permit->Deny".
	FromTo string `json:"from_to"`
	// Region renders the flipped request region (one line per vector).
	Region []string `json:"region"`
	// Witness is a concrete flipped request; Request carries it for
	// replay; Verified reports replay through both generations agreed.
	Witness  string        `json:"witness"`
	Request  xacml.Request `json:"-"`
	Verified bool          `json:"verified"`
}

func (f Flip) String() string {
	return fmt.Sprintf("%s on %s (witness: %s)", f.FromTo, strings.Join(f.Region, " | "), f.Witness)
}

// Diff is the change-impact between two policy-set generations.
type Diff struct {
	Flips []Flip        `json:"flips"`
	Stats Stats         `json:"stats"`
	Dur   time.Duration `json:"duration_ns"`
}

// Changed reports whether any request's decision flipped.
func (d *Diff) Changed() bool { return len(d.Flips) > 0 }

// Flipped returns the flips landing on the given new decision —
// Flipped(DecisionDeny) is what the adaptation gate inspects for newly
// denied regions.
func (d *Diff) Flipped(to xacml.Decision) []Flip {
	var out []Flip
	for _, f := range d.Flips {
		if f.To == to {
			out = append(out, f)
		}
	}
	return out
}

func (d *Diff) String() string {
	if len(d.Flips) == 0 {
		return "no decision changes"
	}
	lines := make([]string, len(d.Flips))
	for i, f := range d.Flips {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// DiffSets computes the exact change-impact from generation old to
// generation new. It fails with ErrDiffBounded rather than return an
// under-approximate diff.
func DiffSets(oldSet, newSet *xacml.PolicySet, opts Options) (*Diff, error) {
	t0 := time.Now()
	a := newAnalyzer(opts)
	oi := a.buildSet(oldSet)
	ni := a.buildSet(newSet)
	if !oi.exact || !ni.exact {
		statBounded.Inc()
		return nil, ErrDiffBounded
	}
	cap := opts.cap()

	oldApplicable := unionRegions(oi.permit, oi.deny)
	newApplicable := unionRegions(ni.permit, ni.deny)

	type flipSpec struct {
		from, to xacml.Decision
		compute  func() (region, error)
	}
	specs := []flipSpec{
		{xacml.DecisionPermit, xacml.DecisionDeny, func() (region, error) {
			return intersectRegions(oi.permit, ni.deny, cap)
		}},
		{xacml.DecisionPermit, xacml.DecisionNotApplicable, func() (region, error) {
			return subtractRegions(oi.permit, newApplicable, cap)
		}},
		{xacml.DecisionDeny, xacml.DecisionPermit, func() (region, error) {
			return intersectRegions(oi.deny, ni.permit, cap)
		}},
		{xacml.DecisionDeny, xacml.DecisionNotApplicable, func() (region, error) {
			return subtractRegions(oi.deny, newApplicable, cap)
		}},
		{xacml.DecisionNotApplicable, xacml.DecisionPermit, func() (region, error) {
			return subtractRegions(ni.permit, oldApplicable, cap)
		}},
		{xacml.DecisionNotApplicable, xacml.DecisionDeny, func() (region, error) {
			return subtractRegions(ni.deny, oldApplicable, cap)
		}},
	}

	d := &Diff{}
	for _, spec := range specs {
		reg, err := spec.compute()
		if err != nil {
			statBounded.Inc()
			return nil, ErrDiffBounded
		}
		if reg.empty() {
			continue
		}
		w := a.witness(reg[0])
		fl := Flip{
			From:    spec.from,
			To:      spec.to,
			FromTo:  spec.from.String() + "->" + spec.to.String(),
			Witness: w.Key(),
			Request: w,
		}
		for _, v := range reg {
			fl.Region = append(fl.Region, a.renderVector(v))
		}
		if !opts.SkipValidation {
			fl.Verified = validateFlip(oldSet, newSet, spec.from, spec.to, w)
		}
		d.Flips = append(d.Flips, fl)
	}

	d.Stats.Policies = len(oi.policies) + len(ni.policies)
	d.Stats.Slots = len(a.in.slots)
	d.Dur = time.Since(t0)
	statDiffs.Inc()
	statAnalysisDur.Observe(d.Dur)
	return d, nil
}

// validateFlip replays a flip witness through both generations' tree
// walks and compiled deciders: all four evaluations must land on the
// claimed transition.
func validateFlip(oldSet, newSet *xacml.PolicySet, from, to xacml.Decision, r xacml.Request) bool {
	check := func(ps *xacml.PolicySet, want xacml.Decision) bool {
		tree, _ := ps.EvaluateWinner(r)
		if normalizeNA(tree) != want {
			return false
		}
		dec, err := engine.NewXACMLDecider(ps)
		if err != nil {
			return false
		}
		compiled, _ := dec.Decide(r)
		return normalizeNA(compiled) == want
	}
	return check(oldSet, from) && check(newSet, to)
}

// normalizeNA folds the "no rule fired" outcomes together: the diff's
// three-way partition treats anything that is not Permit or Deny as
// NotApplicable.
func normalizeNA(d xacml.Decision) xacml.Decision {
	if d == xacml.DecisionPermit || d == xacml.DecisionDeny {
		return d
	}
	return xacml.DecisionNotApplicable
}
