package polcheck

import (
	"agenp/internal/engine"
	"agenp/internal/xacml"
)

// Witness validation: every conflict finding carries a concrete request
// the symbolic analysis claims exhibits the overlap. Before a finding is
// marked Verified, the witness is replayed through both evaluation
// paths — the compiled engine decider and the tree-walk oracle — so a
// bug in the region algebra surfaces as an unverified finding rather
// than a false report.

// validatePolicyConflict replays an intra-policy conflict witness: both
// named rules must apply to the request, and the policy (wrapped as a
// single-member set so the compiled engine path is exercised too) must
// settle it to Permit or Deny identically under both evaluators. Fills
// f.Resolved with the settled decision.
func validatePolicyConflict(p *xacml.Policy, f *Finding) bool {
	var permitRule, denyRule *xacml.Rule
	for i := range p.Rules {
		switch p.Rules[i].ID {
		case f.Rule:
			permitRule = &p.Rules[i]
		case f.OtherRule:
			denyRule = &p.Rules[i]
		}
	}
	if permitRule == nil || denyRule == nil {
		return false
	}
	if !permitRule.Applies(f.Request) || !denyRule.Applies(f.Request) {
		return false
	}
	wrapped := &xacml.PolicySet{
		ID:        "polcheck-validate",
		Policies:  []*xacml.Policy{p},
		Combining: xacml.FirstApplicable,
	}
	tree, _ := wrapped.EvaluateWinner(f.Request)
	f.Resolved = tree.String()
	dec, err := engine.NewXACMLDecider(wrapped)
	if err != nil {
		return false
	}
	compiled, _ := dec.Decide(f.Request)
	return compiled == tree && (tree == xacml.DecisionPermit || tree == xacml.DecisionDeny)
}

// setValidator replays witnesses against a whole policy set through
// both evaluation paths.
type setValidator struct {
	ps  *xacml.PolicySet
	dec *engine.XACMLDecider
}

func newSetValidator(ps *xacml.PolicySet) *setValidator {
	dec, err := engine.NewXACMLDecider(ps)
	if err != nil {
		return &setValidator{ps: ps}
	}
	return &setValidator{ps: ps, dec: dec}
}

// replay evaluates the request through the compiled decider and the
// tree-walk oracle, reporting the settled decision and whether the two
// paths agree.
func (v *setValidator) replay(r xacml.Request) (xacml.Decision, bool) {
	tree, _ := v.ps.EvaluateWinner(r)
	if v.dec == nil {
		return tree, false
	}
	compiled, _ := v.dec.Decide(r)
	return tree, compiled == tree
}

// validateSetConflict checks a cross-policy witness: the named permit
// policy must evaluate Permit on it and the named deny policy Deny.
func validateSetConflict(ps *xacml.PolicySet, permitPolicy, denyPolicy string, r xacml.Request) bool {
	var permitOK, denyOK bool
	for _, p := range ps.Policies {
		switch p.ID {
		case permitPolicy:
			permitOK = p.Evaluate(r) == xacml.DecisionPermit
		case denyPolicy:
			denyOK = p.Evaluate(r) == xacml.DecisionDeny
		}
	}
	return permitOK && denyOK
}
