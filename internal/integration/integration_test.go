// Package integration exercises the whole stack end to end: intent
// compilation, generative policy models, the AGENP loop, coalition
// sharing, learning, quality assessment and explanation — the flows a
// downstream adopter would wire together.
package integration

import (
	"strings"
	"testing"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/apps/cav"
	"agenp/internal/asg"
	"agenp/internal/asglearn"
	"agenp/internal/asp"
	"agenp/internal/coalition"
	"agenp/internal/core"
	"agenp/internal/explain"
	"agenp/internal/ilasp"
	"agenp/internal/intent"
	"agenp/internal/quality"
	"agenp/internal/workload"
	"agenp/internal/xacml"
)

// TestIntentToCoalition drives: controlled-English intent -> compiled
// ASG -> two AMS parties with different contexts -> coalition sharing
// with PCP vetting.
func TestIntentToCoalition(t *testing.T) {
	grammar, err := intent.CompileSource(`
policy: release or retain report
report: weather, casualty, logistics
never release casualty when audience is public
never release any report when classification is secret
`)
	if err != nil {
		t.Fatal(err)
	}

	mkAMS := func(name, ctxSrc string) *agenp.AMS {
		t.Helper()
		ctx, err := asp.Parse(ctxSrc)
		if err != nil {
			t.Fatal(err)
		}
		ams, err := agenp.New(agenp.Config{
			Name:    name,
			Model:   core.New(grammar),
			Context: &agenp.StaticContext{Program: ctx},
			Interpreter: &agenp.TokenInterpreter{
				PermitVerbs: []string{"release"},
				DenyVerbs:   []string{"retain"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ams
	}
	internalDesk := mkAMS("internal-desk", "audience(internal). classification(open).")
	pressDesk := mkAMS("press-desk", "audience(public). classification(open).")

	if _, _, err := internalDesk.Regenerate(); err != nil {
		t.Fatal(err)
	}
	// Internal desk may release everything (3 release + 3 retain).
	if internalDesk.Repository().Len() != 6 {
		t.Fatalf("internal desk policies = %d", internalDesk.Repository().Len())
	}

	bus := coalition.NewBus()
	defer func() { _ = bus.Close() }()
	pInternal, err := coalition.Join(internalDesk, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pInternal.Leave()
	pPress, err := coalition.Join(pressDesk, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pPress.Leave()

	if err := pInternal.SharePolicies(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		i, r := pPress.ImportStats()
		if i+r == 6 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	imported, rejected := pPress.ImportStats()
	// The press desk's PCP rejects release-casualty (public audience).
	if imported != 5 || rejected != 1 {
		t.Fatalf("press desk imported %d rejected %d, want 5/1", imported, rejected)
	}
	if _, ok := pressDesk.Repository().Get("release_casualty"); ok {
		t.Error("release casualty adopted by the press desk")
	}
}

// TestLearnDeployExplain drives: learn a policy from a decision log,
// deploy it as XACML, assess quality, resolve a conflict, and explain a
// denial.
func TestLearnDeployExplain(t *testing.T) {
	ds := workload.GenXACML(99, 80)
	task := &ilasp.Task{
		Bias:     workload.AccessBias(ds.Schema, nil),
		Examples: workload.LearningExamples(ds.Examples, 0),
	}
	res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 4})
	if err != nil {
		t.Fatal(err)
	}
	learned, err := xacml.PolicyFromHypothesis(res.Hypothesis, "deployed")
	if err != nil {
		t.Fatal(err)
	}

	// Quality gate before deployment.
	reqs := make([]xacml.Request, len(ds.Examples))
	for i, e := range ds.Examples {
		reqs[i] = e.Request
	}
	domain := quality.FromBias(xacml.BiasFromRequests(reqs))
	rep := quality.Assess(learned, domain, quality.Options{})
	if !rep.Consistent {
		t.Fatalf("learned policy inconsistent: %v", rep.Conflicts)
	}
	if len(rep.Irrelevant) != 0 {
		t.Errorf("irrelevant learned rules: %v", rep.Irrelevant)
	}

	// Explanation of a denial, with a counterfactual.
	denied := xacml.NewRequest().
		Set(xacml.Subject, "role", xacml.S("guest")).
		Set(xacml.Subject, "age", xacml.I(30)).
		Set(xacml.Resource, "type", xacml.S("log")).
		Set(xacml.Action, "id", xacml.S("write"))
	trace := explain.Explain(learned, denied)
	if trace.Decision != xacml.DecisionDeny {
		t.Fatalf("expected denial, got %v", trace.Decision)
	}
	cfs := explain.Counterfactuals(learned, denied, domain, explain.CounterfactualOptions{
		Want: xacml.DecisionPermit,
	})
	if len(cfs) == 0 {
		t.Fatal("no counterfactual for the denial")
	}
	// Every counterfactual must actually flip the decision.
	for _, cf := range cfs {
		probe := denied.Clone()
		for k, v := range cf.Changes {
			cat, attr, _ := strings.Cut(k, ".")
			probe.Set(xacml.Category(cat), attr, v)
		}
		if learned.Evaluate(probe) != xacml.DecisionPermit {
			t.Errorf("counterfactual %s does not flip the decision", cf)
		}
	}
}

// TestAdaptationConvergence: repeated violation feedback converges the
// CAV model to the ground truth within two adaptations, and the learned
// model stops producing violations.
func TestAdaptationConvergence(t *testing.T) {
	model, err := core.ParseGPM(cav.LearnableGrammarSource)
	if err != nil {
		t.Fatal(err)
	}
	space, err := cav.HypothesisSpace()
	if err != nil {
		t.Fatal(err)
	}
	rainy := cav.Scenario{Weather: "rain", LOA: 2, RegionMin: 4}
	ctx := rainy.EnvContext()
	ctx.Extend(cav.Background())
	ams, err := agenp.New(agenp.Config{
		Name:    "cav",
		Model:   model,
		Space:   space,
		Context: &agenp.StaticContext{Program: ctx},
		Interpreter: &agenp.TokenInterpreter{
			PermitVerbs: []string{"accept"},
			DenyVerbs:   []string{"reject"},
		},
		AdaptThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ams.Regenerate(); err != nil {
		t.Fatal(err)
	}

	// In this context (rain + LOA below the region minimum) EVERY accept
	// policy is a violation; report two and adapt.
	for _, task := range []string{"overtake", "park"} {
		if _, err := ams.Observe(core.Feedback{
			Tokens:  []string{"accept", task},
			Context: ctx,
			Valid:   false,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if ams.Adaptations() != 1 {
		t.Fatalf("adaptations = %d", ams.Adaptations())
	}
	// After adaptation no accept policy survives in this context.
	for _, p := range ams.Repository().List() {
		if p.Tokens[0] == "accept" {
			t.Errorf("accept policy %q survived adaptation", p.Text())
		}
	}
	// The learned model still admits accepts in a benign context.
	benign := cav.Scenario{Weather: "clear", LOA: 5, RegionMin: 1}
	bctx := benign.EnvContext()
	bctx.Extend(cav.Background())
	policies, err := ams.Models().Latest().Generate(bctx)
	if err != nil {
		t.Fatal(err)
	}
	hasAccept := false
	for _, p := range policies {
		if p.Tokens[0] == "accept" {
			hasAccept = true
		}
	}
	if !hasAccept {
		t.Error("adapted model over-restricts the benign context")
	}
}

// TestDefinitionThreeEquivalence cross-checks the two learner layers:
// learning an ASG constraint via asglearn equals constraining via a flat
// ILASP deny-rule on the same scenarios.
func TestDefinitionThreeEquivalence(t *testing.T) {
	scenarios := cav.Generate(5, 30)

	// Flat ILASP path.
	flat, err := cav.Learn(scenarios, ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// ASG path over the equivalent space.
	initial, err := asg.ParseASG(cav.LearnableGrammarSource)
	if err != nil {
		t.Fatal(err)
	}
	space, err := cav.HypothesisSpace()
	if err != nil {
		t.Fatal(err)
	}
	var examples []asglearn.Example
	for i, s := range scenarios {
		ctx := s.EnvContext()
		ctx.Extend(cav.Background())
		examples = append(examples, asglearn.Example{
			ID:       "s" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Tokens:   []string{"accept", s.Task},
			Context:  ctx,
			Positive: s.Accept,
		})
	}
	asgTask := &asglearn.Task{Initial: initial, Space: space, Examples: examples}
	asgRes, err := asgTask.Learn(ilasp.LearnOptions{MaxRules: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Both models must agree with the ground truth on fresh scenarios.
	test := cav.Generate(6, 120)
	flatAcc, err := flat.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, s := range test {
		ctx := s.EnvContext()
		ctx.Extend(cav.Background())
		ok, err := asgRes.Grammar.WithContext(ctx).Accepts([]string{"accept", s.Task}, asg.AcceptOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ok == s.Accept {
			agree++
		}
	}
	asgAcc := float64(agree) / float64(len(test))
	if flatAcc < 0.95 || asgAcc < 0.95 {
		t.Errorf("accuracies: flat %.3f, asg %.3f", flatAcc, asgAcc)
	}
}
