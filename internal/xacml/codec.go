package xacml

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the policy in the package's compact textual form, the
// same format ParsePolicy reads:
//
//	policy "p1" deny-overrides {
//	  target subject.role = dba
//	  rule "r1" permit {
//	    target resource.type = report, action.id = read
//	    condition subject.age >= 18 and not (subject.temp = 1)
//	  }
//	}
func (p *Policy) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy %q %s {\n", p.ID, p.Combining)
	if len(p.Target) > 0 {
		fmt.Fprintf(&sb, "  target %s\n", formatTarget(p.Target))
	}
	for _, ru := range p.Rules {
		fmt.Fprintf(&sb, "  rule %q %s {\n", ru.ID, strings.ToLower(ru.Effect.String()))
		if len(ru.Target) > 0 {
			fmt.Fprintf(&sb, "    target %s\n", formatTarget(ru.Target))
		}
		if ru.Condition != nil {
			fmt.Fprintf(&sb, "    condition %s\n", ru.Condition.String())
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func formatTarget(t Target) string {
	parts := make([]string, len(t))
	for i, m := range t {
		parts[i] = m.String()
	}
	return strings.Join(parts, ", ")
}

// ParsePolicy parses the compact textual policy form produced by Format.
func ParsePolicy(src string) (*Policy, error) {
	p := &policyParser{toks: tokenizePolicy(src)}
	pol, err := p.policy()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("xacml: trailing input %q", p.peek())
	}
	return pol, nil
}

// ParsePolicies parses a sequence of policy blocks — a whole corpus
// file — in the same textual form. Policy ids must be unique.
func ParsePolicies(src string) ([]*Policy, error) {
	p := &policyParser{toks: tokenizePolicy(src)}
	var out []*Policy
	seen := make(map[string]bool)
	for !p.eof() {
		pol, err := p.policy()
		if err != nil {
			return nil, err
		}
		if seen[pol.ID] {
			return nil, fmt.Errorf("xacml: duplicate policy id %q", pol.ID)
		}
		seen[pol.ID] = true
		out = append(out, pol)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("xacml: no policies in input")
	}
	return out, nil
}

// FormatPolicies renders a sequence of policies in the form
// ParsePolicies reads.
func FormatPolicies(pols []*Policy) string {
	var sb strings.Builder
	for i, p := range pols {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.Format())
	}
	return sb.String()
}

func tokenizePolicy(src string) []string {
	var toks []string
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}' || c == ',' || c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					sb.WriteByte(src[j+1])
					j += 2
					continue
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, "\""+sb.String())
			i = j + 1
		case c == '!' || c == '<' || c == '>' || c == '=':
			j := i + 1
			if j < n && src[j] == '=' {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			j := i
			for j < n && !strings.ContainsRune(" \t\n\r{}(),\"!<>=#", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks
}

type policyParser struct {
	toks []string
	pos  int
}

func (p *policyParser) eof() bool { return p.pos >= len(p.toks) }

func (p *policyParser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *policyParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *policyParser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("xacml: expected %q, found %q", tok, got)
	}
	return nil
}

func (p *policyParser) quoted() (string, error) {
	t := p.next()
	if !strings.HasPrefix(t, "\"") {
		return "", fmt.Errorf("xacml: expected quoted identifier, found %q", t)
	}
	return t[1:], nil
}

func (p *policyParser) policy() (*Policy, error) {
	if err := p.expect("policy"); err != nil {
		return nil, err
	}
	id, err := p.quoted()
	if err != nil {
		return nil, err
	}
	alg, err := CombiningAlgFromString(p.next())
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	pol := &Policy{ID: id, Combining: alg}
	for p.peek() != "}" && !p.eof() {
		switch p.peek() {
		case "target":
			p.next()
			t, err := p.target()
			if err != nil {
				return nil, err
			}
			pol.Target = t
		case "rule":
			ru, err := p.rule()
			if err != nil {
				return nil, err
			}
			pol.Rules = append(pol.Rules, ru)
		default:
			return nil, fmt.Errorf("xacml: unexpected token %q in policy body", p.peek())
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return pol, nil
}

func (p *policyParser) rule() (Rule, error) {
	var ru Rule
	if err := p.expect("rule"); err != nil {
		return ru, err
	}
	id, err := p.quoted()
	if err != nil {
		return ru, err
	}
	ru.ID = id
	switch eff := p.next(); eff {
	case "permit":
		ru.Effect = Permit
	case "deny":
		ru.Effect = Deny
	default:
		return ru, fmt.Errorf("xacml: unknown effect %q", eff)
	}
	if err := p.expect("{"); err != nil {
		return ru, err
	}
	for p.peek() != "}" && !p.eof() {
		switch p.peek() {
		case "target":
			p.next()
			t, err := p.target()
			if err != nil {
				return ru, err
			}
			ru.Target = t
		case "condition":
			p.next()
			c, err := p.orExpr()
			if err != nil {
				return ru, err
			}
			ru.Condition = &c
		default:
			return ru, fmt.Errorf("xacml: unexpected token %q in rule body", p.peek())
		}
	}
	if err := p.expect("}"); err != nil {
		return ru, err
	}
	return ru, nil
}

// target parses a comma-separated list of matches.
func (p *policyParser) target() (Target, error) {
	var t Target
	for {
		m, err := p.match()
		if err != nil {
			return nil, err
		}
		t = append(t, m)
		if p.peek() == "," {
			p.next()
			continue
		}
		return t, nil
	}
}

// orExpr = andExpr ("or" andExpr)*
func (p *policyParser) orExpr() (Condition, error) {
	first, err := p.andExpr()
	if err != nil {
		return Condition{}, err
	}
	terms := []Condition{first}
	for p.peek() == "or" {
		p.next()
		c, err := p.andExpr()
		if err != nil {
			return Condition{}, err
		}
		terms = append(terms, c)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Condition{Or: terms}, nil
}

// andExpr = unary ("and" unary)*
func (p *policyParser) andExpr() (Condition, error) {
	first, err := p.unary()
	if err != nil {
		return Condition{}, err
	}
	terms := []Condition{first}
	for p.peek() == "and" {
		p.next()
		c, err := p.unary()
		if err != nil {
			return Condition{}, err
		}
		terms = append(terms, c)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Condition{And: terms}, nil
}

// unary = "not" unary | "(" orExpr ")" | match
func (p *policyParser) unary() (Condition, error) {
	switch p.peek() {
	case "not":
		p.next()
		inner, err := p.unary()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Not: &inner}, nil
	case "(":
		p.next()
		inner, err := p.orExpr()
		if err != nil {
			return Condition{}, err
		}
		if err := p.expect(")"); err != nil {
			return Condition{}, err
		}
		return inner, nil
	default:
		m, err := p.match()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Match: &m}, nil
	}
}

// match = category "." attr op value  (tokenized as "category.attr")
func (p *policyParser) match() (Match, error) {
	var m Match
	qual := p.next()
	cat, attr, ok := strings.Cut(qual, ".")
	if !ok {
		return m, fmt.Errorf("xacml: expected category.attribute, found %q", qual)
	}
	switch Category(cat) {
	case Subject, Resource, Action, Environment:
		m.Category = Category(cat)
	default:
		return m, fmt.Errorf("xacml: unknown category %q", cat)
	}
	m.Attr = attr
	op, err := matchOpOf(p.next())
	if err != nil {
		return m, err
	}
	m.Op = op
	val := p.next()
	if val == "" {
		return m, fmt.Errorf("xacml: missing value in match for %s", qual)
	}
	if strings.HasPrefix(val, "\"") {
		m.Value = S(val[1:])
	} else if n, err := strconv.Atoi(val); err == nil {
		m.Value = I(n)
	} else {
		m.Value = S(val)
	}
	return m, nil
}

func matchOpOf(s string) (MatchOp, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "!=":
		return OpNeq, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLeq, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGeq, nil
	default:
		return 0, fmt.Errorf("xacml: unknown operator %q", s)
	}
}
