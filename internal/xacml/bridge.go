package xacml

import (
	"fmt"
	"sort"
	"strings"

	"agenp/internal/asp"
)

// This file bridges the XACML model and the ASP learner: requests become
// fact programs, decisions become atoms, and learned ASP hypotheses are
// rendered back as XACML-style rules for display (Figure 3 of the
// paper).

// DecisionPredicate is the predicate of decision atoms in learned
// policies.
const DecisionPredicate = "decision"

// categoryPredicate maps a category to its ASP predicate.
func categoryPredicate(c Category) string {
	if c == Environment {
		return "env"
	}
	return string(c)
}

func categoryFromPredicate(p string) (Category, bool) {
	switch p {
	case "subject":
		return Subject, true
	case "resource":
		return Resource, true
	case "action":
		return Action, true
	case "env", "environment":
		return Environment, true
	default:
		return "", false
	}
}

// valueTerm converts an attribute value to an ASP term.
func valueTerm(v Value) asp.Term {
	if v.IsInt {
		return asp.Integer{Value: v.Int}
	}
	if isIdentifier(v.Str) {
		return asp.Constant{Name: v.Str}
	}
	return asp.Constant{Name: v.Str, Quoted: true}
}

// valueFromTerm converts an ASP term back to an attribute value.
func valueFromTerm(t asp.Term) (Value, error) {
	switch tt := t.(type) {
	case asp.Integer:
		return I(tt.Value), nil
	case asp.Constant:
		return S(tt.Name), nil
	default:
		return Value{}, fmt.Errorf("xacml: term %s is not an attribute value", t)
	}
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r >= 'A' && r <= 'Z'):
		default:
			return false
		}
	}
	return true
}

// RequestFacts encodes a request as ASP facts: one
// `category(attribute, value).` fact per attribute assignment.
func RequestFacts(r Request) *asp.Program {
	prog := asp.NewProgram()
	// Deterministic order for reproducible programs.
	for _, cat := range Categories() {
		attrs := r[cat]
		names := make([]string, 0, len(attrs))
		for a := range attrs {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			prog.Add(asp.NewFact(asp.NewAtom(
				categoryPredicate(cat),
				asp.Constant{Name: a},
				valueTerm(attrs[a]),
			)))
		}
	}
	return prog
}

// DecisionAtom returns the decision atom for an effect.
func DecisionAtom(e Effect) asp.Atom {
	name := "permit"
	if e == Deny {
		name = "deny"
	}
	return asp.NewAtom(DecisionPredicate, asp.Constant{Name: name})
}

// EffectFromAtom inverts DecisionAtom.
func EffectFromAtom(a asp.Atom) (Effect, error) {
	if a.Predicate != DecisionPredicate || len(a.Args) != 1 {
		return 0, fmt.Errorf("xacml: %s is not a decision atom", a)
	}
	c, ok := a.Args[0].(asp.Constant)
	if !ok {
		return 0, fmt.Errorf("xacml: %s is not a decision atom", a)
	}
	switch c.Name {
	case "permit":
		return Permit, nil
	case "deny":
		return Deny, nil
	default:
		return 0, fmt.Errorf("xacml: unknown decision %q", c.Name)
	}
}

// RuleFromASP converts a learned ASP rule with a decision head into a
// XACML rule for display and evaluation. Supported body shapes:
//
//   - category(attr, constant)            -> equality target match
//   - category(attr, V) with V op value   -> comparison match
//   - not category(attr, constant)        -> negated condition
//
// Rules that bind a variable without comparing it are rejected.
func RuleFromASP(r asp.Rule, id string) (Rule, error) {
	if r.Head == nil {
		return Rule{}, fmt.Errorf("xacml: constraint %q has no decision head", r.String())
	}
	effect, err := EffectFromAtom(*r.Head)
	if err != nil {
		return Rule{}, err
	}
	out := Rule{ID: id, Effect: effect}

	// First pass: variable -> (category, attr) bindings.
	varAttr := make(map[string]Match)
	for _, l := range r.Body {
		if l.IsCmp || l.Negated {
			continue
		}
		cat, ok := categoryFromPredicate(l.Atom.Predicate)
		if !ok || len(l.Atom.Args) != 2 {
			return Rule{}, fmt.Errorf("xacml: unsupported body atom %s", l.Atom)
		}
		attrC, ok := l.Atom.Args[0].(asp.Constant)
		if !ok {
			return Rule{}, fmt.Errorf("xacml: attribute position must be constant in %s", l.Atom)
		}
		if v, isVar := l.Atom.Args[1].(asp.Variable); isVar {
			varAttr[v.Name] = Match{Category: cat, Attr: attrC.Name}
		}
	}

	var conds []Condition
	boundVars := make(map[string]bool)
	for _, l := range r.Body {
		switch {
		case l.IsCmp:
			v, isVar := l.Lhs.(asp.Variable)
			rhs := l.Rhs
			op := l.Op
			if !isVar {
				// Allow value op V by flipping.
				v2, isVar2 := l.Rhs.(asp.Variable)
				if !isVar2 {
					return Rule{}, fmt.Errorf("xacml: unsupported comparison %s", l)
				}
				v, rhs, op = v2, l.Lhs, flipOp(l.Op)
			}
			base, ok := varAttr[v.Name]
			if !ok {
				return Rule{}, fmt.Errorf("xacml: comparison %s uses unbound variable", l)
			}
			val, err := valueFromTerm(rhs)
			if err != nil {
				return Rule{}, err
			}
			m := Match{Category: base.Category, Attr: base.Attr, Op: cmpToMatchOp(op), Value: val}
			out.Target = append(out.Target, m)
			boundVars[v.Name] = true
		case l.Negated:
			cat, ok := categoryFromPredicate(l.Atom.Predicate)
			if !ok || len(l.Atom.Args) != 2 {
				return Rule{}, fmt.Errorf("xacml: unsupported negated atom %s", l.Atom)
			}
			attrC, okA := l.Atom.Args[0].(asp.Constant)
			if !okA {
				return Rule{}, fmt.Errorf("xacml: attribute position must be constant in %s", l.Atom)
			}
			val, err := valueFromTerm(l.Atom.Args[1])
			if err != nil {
				return Rule{}, fmt.Errorf("xacml: negated atom %s must be ground", l.Atom)
			}
			m := Match{Category: cat, Attr: attrC.Name, Op: OpEq, Value: val}
			conds = append(conds, Condition{Not: &Condition{Match: &m}})
		default:
			cat, _ := categoryFromPredicate(l.Atom.Predicate)
			attrC := l.Atom.Args[0].(asp.Constant)
			switch arg := l.Atom.Args[1].(type) {
			case asp.Variable:
				// Handled via comparisons; checked below.
			case asp.Integer, asp.Constant:
				val, err := valueFromTerm(arg)
				if err != nil {
					return Rule{}, err
				}
				out.Target = append(out.Target, Match{Category: cat, Attr: attrC.Name, Op: OpEq, Value: val})
			default:
				return Rule{}, fmt.Errorf("xacml: unsupported value term in %s", l.Atom)
			}
		}
	}
	for v := range varAttr {
		if !boundVars[v] {
			return Rule{}, fmt.Errorf("xacml: variable %s bound to %s.%s but never compared", v, varAttr[v].Category, varAttr[v].Attr)
		}
	}
	switch len(conds) {
	case 0:
	case 1:
		out.Condition = &conds[0]
	default:
		out.Condition = &Condition{And: conds}
	}
	return out, nil
}

func flipOp(op asp.CmpOp) asp.CmpOp {
	switch op {
	case asp.CmpLt:
		return asp.CmpGt
	case asp.CmpLeq:
		return asp.CmpGeq
	case asp.CmpGt:
		return asp.CmpLt
	case asp.CmpGeq:
		return asp.CmpLeq
	default:
		return op
	}
}

func cmpToMatchOp(op asp.CmpOp) MatchOp {
	switch op {
	case asp.CmpEq:
		return OpEq
	case asp.CmpNeq:
		return OpNeq
	case asp.CmpLt:
		return OpLt
	case asp.CmpLeq:
		return OpLeq
	case asp.CmpGt:
		return OpGt
	case asp.CmpGeq:
		return OpGeq
	default:
		return OpEq
	}
}

// PolicyFromHypothesis renders a learned hypothesis (decision rules) as a
// XACML policy under deny-overrides.
func PolicyFromHypothesis(rules []asp.Rule, id string) (*Policy, error) {
	pol := &Policy{ID: id, Combining: DenyOverrides}
	for i, r := range rules {
		ru, err := RuleFromASP(r, fmt.Sprintf("%s-r%d", id, i+1))
		if err != nil {
			return nil, err
		}
		pol.Rules = append(pol.Rules, ru)
	}
	return pol, nil
}

// LearningBias builds an ILASP-style attribute alphabet from a request
// domain: for every category/attribute it reports the distinct values
// seen, which callers turn into mode declarations and constant pools.
type LearningBias struct {
	// Values[cat][attr] lists distinct observed values.
	Values map[Category]map[string][]Value
}

// BiasFromRequests scans requests and collects the attribute domain.
func BiasFromRequests(reqs []Request) *LearningBias {
	b := &LearningBias{Values: make(map[Category]map[string][]Value)}
	seen := make(map[string]struct{})
	for _, r := range reqs {
		for cat, attrs := range r {
			for a, v := range attrs {
				key := fmt.Sprintf("%s/%s/%s/%v", cat, a, v, v.IsInt)
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				m, ok := b.Values[cat]
				if !ok {
					m = make(map[string][]Value)
					b.Values[cat] = m
				}
				m[a] = append(m[a], v)
			}
		}
	}
	for _, m := range b.Values {
		for a := range m {
			vals := m[a]
			sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
			m[a] = vals
		}
	}
	return b
}

// Attributes lists the category.attr pairs in the bias, sorted.
func (b *LearningBias) Attributes() []string {
	var out []string
	for cat, attrs := range b.Values {
		for a := range attrs {
			out = append(out, fmt.Sprintf("%s.%s", cat, a))
		}
	}
	sort.Strings(out)
	return out
}

func (b *LearningBias) String() string {
	var sb strings.Builder
	for _, qa := range b.Attributes() {
		cat, attr, _ := strings.Cut(qa, ".")
		vals := b.Values[Category(cat)][attr]
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		fmt.Fprintf(&sb, "%s: {%s}\n", qa, strings.Join(parts, ", "))
	}
	return sb.String()
}
