// Package xacml implements an attribute-based access control engine
// modelled on the XACML core: requests carrying subject / resource /
// action / environment attributes, permit/deny rules with targets and
// conditions, and the standard rule- and policy-combining algorithms
// (deny-overrides, permit-overrides, first-applicable).
//
// It is the substrate for the paper's access-control case study
// (Section IV.C): the ASG learner consumes request/decision examples in
// exactly the shape of the public XACML conformance dataset the paper
// uses, and learned ASP hypotheses are rendered back as XACML-style
// policies (Figure 3). The XML encoding of real XACML is out of scope —
// the learner never sees it; the model semantics are what matter.
package xacml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Category is an attribute category.
type Category string

// The four standard attribute categories.
const (
	Subject     Category = "subject"
	Resource    Category = "resource"
	Action      Category = "action"
	Environment Category = "environment"
)

// Categories lists the standard categories in canonical order.
func Categories() []Category {
	return []Category{Subject, Resource, Action, Environment}
}

// Value is an attribute value: a string or an integer.
type Value struct {
	IsInt bool
	Str   string
	Int   int
}

// S builds a string value.
func S(s string) Value { return Value{Str: s} }

// I builds an integer value.
func I(i int) Value { return Value{IsInt: true, Int: i} }

func (v Value) String() string {
	if v.IsInt {
		return strconv.Itoa(v.Int)
	}
	return v.Str
}

// Equal reports value equality (ints and strings never compare equal).
func (v Value) Equal(o Value) bool {
	if v.IsInt != o.IsInt {
		return false
	}
	if v.IsInt {
		return v.Int == o.Int
	}
	return v.Str == o.Str
}

// Compare orders two values; string/int mismatches order strings last.
func (v Value) Compare(o Value) int {
	if v.IsInt != o.IsInt {
		if v.IsInt {
			return -1
		}
		return 1
	}
	if v.IsInt {
		return v.Int - o.Int
	}
	return strings.Compare(v.Str, o.Str)
}

// Request is an access request: attribute assignments per category.
type Request map[Category]map[string]Value

// NewRequest builds an empty request.
func NewRequest() Request {
	return make(Request)
}

// Set assigns an attribute, allocating the category map as needed, and
// returns the request for chaining.
func (r Request) Set(cat Category, attr string, v Value) Request {
	m, ok := r[cat]
	if !ok {
		m = make(map[string]Value)
		r[cat] = m
	}
	m[attr] = v
	return r
}

// Get looks up an attribute.
func (r Request) Get(cat Category, attr string) (Value, bool) {
	m, ok := r[cat]
	if !ok {
		return Value{}, false
	}
	v, ok := m[attr]
	return v, ok
}

// Clone deep-copies the request.
func (r Request) Clone() Request {
	out := make(Request, len(r))
	for cat, attrs := range r {
		m := make(map[string]Value, len(attrs))
		for k, v := range attrs {
			m[k] = v
		}
		out[cat] = m
	}
	return out
}

// Key returns a canonical string rendering of the request, usable as a
// map key and stable across runs.
func (r Request) Key() string {
	var parts []string
	for _, cat := range Categories() {
		attrs := r[cat]
		names := make([]string, 0, len(attrs))
		for a := range attrs {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			parts = append(parts, fmt.Sprintf("%s.%s=%s", cat, a, attrs[a]))
		}
	}
	return strings.Join(parts, ";")
}

func (r Request) String() string { return r.Key() }

// Digest returns a 64-bit fingerprint of the request's attributes:
// equal-shaped requests digest equally, and the combine is commutative
// so Go's randomized map iteration order does not change the result.
// Zero allocations — this runs per sampled decision on the serving
// path (the flight recorder keys effect-flip detection on it).
func (r Request) Digest() uint64 {
	var h uint64
	for cat, attrs := range r {
		ch := fnv64a(string(cat))
		for a, v := range attrs {
			ah := fnv64a(a)
			var vh uint64
			if v.IsInt {
				vh = mix64(uint64(v.Int) ^ 0x9e3779b97f4a7c15)
			} else {
				vh = fnv64a(v.Str)
			}
			// Per-attribute hash mixes category, name, and value
			// order-sensitively; attributes combine by addition
			// (commutative) so iteration order cancels out.
			h += mix64(ch ^ mix64(ah^vh))
		}
	}
	return h
}

// fnv64a is FNV-1a over a string, inlined to keep Digest allocation-free.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is a 64-bit finalizer (splitmix64) spreading input bits so the
// additive combine in Digest doesn't cluster.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Effect is a rule's effect.
type Effect int

// Rule effects.
const (
	Permit Effect = iota + 1
	Deny
)

func (e Effect) String() string {
	switch e {
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	default:
		return "InvalidEffect"
	}
}

// Decision is an evaluation outcome.
type Decision int

// Evaluation outcomes, following XACML.
const (
	DecisionPermit Decision = iota + 1
	DecisionDeny
	DecisionNotApplicable
	DecisionIndeterminate
)

func (d Decision) String() string {
	switch d {
	case DecisionPermit:
		return "Permit"
	case DecisionDeny:
		return "Deny"
	case DecisionNotApplicable:
		return "NotApplicable"
	case DecisionIndeterminate:
		return "Indeterminate"
	default:
		return "InvalidDecision"
	}
}

// MatchOp is a comparison operator usable in targets and conditions.
type MatchOp int

// Comparison operators.
const (
	OpEq MatchOp = iota + 1
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
)

func (op MatchOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	default:
		return "?"
	}
}

// Match is one attribute test: request[Category][Attr] Op Value. A
// missing attribute never matches.
type Match struct {
	Category Category
	Attr     string
	Op       MatchOp
	Value    Value
}

func (m Match) String() string {
	return fmt.Sprintf("%s.%s %s %s", m.Category, m.Attr, m.Op, m.Value)
}

// Eval evaluates the match against a request.
func (m Match) Eval(r Request) bool {
	v, ok := r.Get(m.Category, m.Attr)
	if !ok {
		return false
	}
	if v.IsInt != m.Value.IsInt && (m.Op != OpEq && m.Op != OpNeq) {
		return false
	}
	c := v.Compare(m.Value)
	switch m.Op {
	case OpEq:
		return v.Equal(m.Value)
	case OpNeq:
		return !v.Equal(m.Value)
	case OpLt:
		return c < 0
	case OpLeq:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGeq:
		return c >= 0
	default:
		return false
	}
}

// Target is a conjunction of matches; an empty target applies to every
// request.
type Target []Match

// Matches reports whether the target applies to the request.
func (t Target) Matches(r Request) bool {
	for _, m := range t {
		if !m.Eval(r) {
			return false
		}
	}
	return true
}

func (t Target) String() string {
	if len(t) == 0 {
		return "any"
	}
	parts := make([]string, len(t))
	for i, m := range t {
		parts[i] = m.String()
	}
	return strings.Join(parts, ", ")
}

// Condition is a boolean expression over matches.
type Condition struct {
	// Exactly one of the following is set.
	Match *Match
	Not   *Condition
	And   []Condition
	Or    []Condition
}

// Eval evaluates the condition; a nil condition is true.
func (c *Condition) Eval(r Request) bool {
	switch {
	case c == nil:
		return true
	case c.Match != nil:
		return c.Match.Eval(r)
	case c.Not != nil:
		return !c.Not.Eval(r)
	case len(c.And) > 0:
		for i := range c.And {
			if !c.And[i].Eval(r) {
				return false
			}
		}
		return true
	case len(c.Or) > 0:
		for i := range c.Or {
			if c.Or[i].Eval(r) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

func (c *Condition) String() string {
	switch {
	case c == nil:
		return "true"
	case c.Match != nil:
		return c.Match.String()
	case c.Not != nil:
		return "not (" + c.Not.String() + ")"
	case len(c.And) > 0:
		parts := make([]string, len(c.And))
		for i := range c.And {
			parts[i] = c.And[i].String()
		}
		return "(" + strings.Join(parts, " and ") + ")"
	case len(c.Or) > 0:
		parts := make([]string, len(c.Or))
		for i := range c.Or {
			parts[i] = c.Or[i].String()
		}
		return "(" + strings.Join(parts, " or ") + ")"
	default:
		return "true"
	}
}

// Rule is a XACML rule: effect, target, optional condition.
type Rule struct {
	ID        string
	Effect    Effect
	Target    Target
	Condition *Condition
}

// Applies reports whether the rule fires on the request.
func (ru Rule) Applies(r Request) bool {
	return ru.Target.Matches(r) && ru.Condition.Eval(r)
}

func (ru Rule) String() string {
	s := fmt.Sprintf("rule %q %s", ru.ID, strings.ToLower(ru.Effect.String()))
	if len(ru.Target) > 0 {
		s += " target " + ru.Target.String()
	}
	if ru.Condition != nil {
		s += " condition " + ru.Condition.String()
	}
	return s
}

// CombiningAlg identifies a combining algorithm.
type CombiningAlg int

// Combining algorithms.
const (
	DenyOverrides CombiningAlg = iota + 1
	PermitOverrides
	FirstApplicable
)

func (a CombiningAlg) String() string {
	switch a {
	case DenyOverrides:
		return "deny-overrides"
	case PermitOverrides:
		return "permit-overrides"
	case FirstApplicable:
		return "first-applicable"
	default:
		return "invalid-combining"
	}
}

// CombiningAlgFromString parses a combining algorithm name.
func CombiningAlgFromString(s string) (CombiningAlg, error) {
	switch s {
	case "deny-overrides":
		return DenyOverrides, nil
	case "permit-overrides":
		return PermitOverrides, nil
	case "first-applicable":
		return FirstApplicable, nil
	default:
		return 0, fmt.Errorf("xacml: unknown combining algorithm %q", s)
	}
}

// Policy is a XACML policy: a target, rules, and a rule-combining
// algorithm.
type Policy struct {
	ID        string
	Target    Target
	Rules     []Rule
	Combining CombiningAlg
}

// Evaluate runs the policy on a request.
func (p *Policy) Evaluate(r Request) Decision {
	d, _ := p.EvaluateTraced(r)
	return d
}

// EvaluateTraced runs the policy and also returns the IDs of the rules
// that fired (matched target and condition), supporting the paper's
// explainability requirement (Section V.B).
func (p *Policy) EvaluateTraced(r Request) (Decision, []string) {
	if !p.Target.Matches(r) {
		return DecisionNotApplicable, nil
	}
	var fired []string
	decision := DecisionNotApplicable
	for _, ru := range p.Rules {
		if !ru.Applies(r) {
			continue
		}
		fired = append(fired, ru.ID)
		switch p.Combining {
		case DenyOverrides:
			if ru.Effect == Deny {
				return DecisionDeny, fired
			}
			decision = DecisionPermit
		case PermitOverrides:
			if ru.Effect == Permit {
				return DecisionPermit, fired
			}
			decision = DecisionDeny
		case FirstApplicable:
			if ru.Effect == Permit {
				return DecisionPermit, fired
			}
			return DecisionDeny, fired
		default:
			return DecisionIndeterminate, fired
		}
	}
	return decision, fired
}

// PolicySet combines policies under a policy-combining algorithm.
type PolicySet struct {
	ID        string
	Target    Target
	Policies  []*Policy
	Combining CombiningAlg
}

// Evaluate runs the policy set on a request.
func (ps *PolicySet) Evaluate(r Request) Decision {
	d, _ := ps.EvaluateWinner(r)
	return d
}

// EvaluateWinner runs the policy set and also returns the id of the
// policy whose decision was combined into the outcome ("" when none
// applied). This is the tree-walk oracle the compiled representation
// (CompilePolicySet) is differential-tested against.
func (ps *PolicySet) EvaluateWinner(r Request) (Decision, string) {
	if !ps.Target.Matches(r) {
		return DecisionNotApplicable, ""
	}
	decision := DecisionNotApplicable
	winner := ""
	for _, p := range ps.Policies {
		d := p.Evaluate(r)
		if d == DecisionNotApplicable {
			continue
		}
		switch ps.Combining {
		case DenyOverrides:
			if d == DecisionDeny {
				return DecisionDeny, p.ID
			}
			decision, winner = d, p.ID
		case PermitOverrides:
			if d == DecisionPermit {
				return DecisionPermit, p.ID
			}
			decision, winner = d, p.ID
		case FirstApplicable:
			return d, p.ID
		default:
			return DecisionIndeterminate, p.ID
		}
	}
	return decision, winner
}
