package xacml

import (
	"fmt"
	"sort"
)

// This file is the compiled counterpart of the tree-walk evaluator in
// model.go: policies and policy sets are translated once into flat,
// directly executable decision structures — the "compile policies into
// decision structures rather than re-interpret per query" direction of
// the serving layer. The tree-walk evaluator is kept unchanged as the
// differential-testing oracle (see compile_test.go and the fuzz
// harness); compiled evaluation must be byte-identical to it.
//
// What compilation buys per request:
//
//   - interned attributes: every (category, attribute) pair in the
//     policy set becomes one slot, and every distinct attribute test
//     becomes one entry in a shared match table, evaluated at most once
//     per request regardless of how many targets and conditions repeat
//     it (memoized in an Evaluator's scratch);
//   - match programs: targets become index lists into the match table
//     and conditions become flat postfix programs — no pointer-chasing
//     through Condition trees;
//   - precompiled combining: the rule- and policy-combining switches
//     are resolved at compile time into "return this decision" /
//     "record this decision" slots per rule and a stop-decision per
//     set;
//   - indexed targets: policies whose target equality-tests the set's
//     most discriminating (category, attribute) slot are bucketed by
//     value, so a request only evaluates the policies its attribute
//     value selects (plus the unindexed rest), in original policy
//     order.

// attrSlot is one interned (category, attribute) pair.
type attrSlot struct {
	Category Category
	Attr     string
}

// attrInterner assigns dense ids to (category, attribute) pairs.
type attrInterner struct {
	slots []attrSlot
	ids   map[attrSlot]int32
}

func newAttrInterner() *attrInterner {
	return &attrInterner{ids: make(map[attrSlot]int32)}
}

func (in *attrInterner) intern(cat Category, attr string) int32 {
	key := attrSlot{cat, attr}
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := int32(len(in.slots))
	in.slots = append(in.slots, key)
	in.ids[key] = id
	return id
}

// compiledMatch is one interned attribute test.
type compiledMatch struct {
	m    Match
	slot int32
}

// matchKey dedups matches: Value is a comparable struct, so the whole
// test (slot, operator, constant) keys a map directly.
type matchKey struct {
	slot  int32
	op    MatchOp
	value Value
}

// condInstr opcodes: a condition is compiled to a postfix program over
// a boolean stack.
const (
	cTrue  uint8 = iota // push true
	cMatch              // push match[arg]
	cNot                // negate top of stack
	cAnd                // pop arg values, push their conjunction
	cOr                 // pop arg values, push their disjunction
)

type condInstr struct {
	op  uint8
	arg uint16
}

// program is the shared compilation state of one policy (set): the
// interner and the deduplicated match table every target and condition
// indexes into.
type program struct {
	interner *attrInterner
	matches  []compiledMatch
	index    map[matchKey]uint16
}

func newProgram() *program {
	return &program{interner: newAttrInterner(), index: make(map[matchKey]uint16)}
}

func (pg *program) matchIndex(m Match) (uint16, error) {
	slot := pg.interner.intern(m.Category, m.Attr)
	key := matchKey{slot: slot, op: m.Op, value: m.Value}
	if i, ok := pg.index[key]; ok {
		return i, nil
	}
	if len(pg.matches) >= 1<<16 {
		return 0, fmt.Errorf("xacml: compile: more than %d distinct matches", 1<<16)
	}
	i := uint16(len(pg.matches))
	pg.matches = append(pg.matches, compiledMatch{m: m, slot: slot})
	pg.index[key] = i
	return i, nil
}

func (pg *program) compileTarget(t Target) ([]uint16, error) {
	if len(t) == 0 {
		return nil, nil
	}
	out := make([]uint16, len(t))
	for i, m := range t {
		mi, err := pg.matchIndex(m)
		if err != nil {
			return nil, err
		}
		out[i] = mi
	}
	return out, nil
}

// compileCond mirrors Condition.Eval's branch precedence exactly
// (Match, then Not, then And, then Or, else true).
func (pg *program) compileCond(c *Condition, out []condInstr) ([]condInstr, error) {
	switch {
	case c == nil:
		return append(out, condInstr{op: cTrue}), nil
	case c.Match != nil:
		mi, err := pg.matchIndex(*c.Match)
		if err != nil {
			return nil, err
		}
		return append(out, condInstr{op: cMatch, arg: mi}), nil
	case c.Not != nil:
		out, err := pg.compileCond(c.Not, out)
		if err != nil {
			return nil, err
		}
		return append(out, condInstr{op: cNot}), nil
	case len(c.And) > 0:
		var err error
		for i := range c.And {
			if out, err = pg.compileCond(&c.And[i], out); err != nil {
				return nil, err
			}
		}
		return append(out, condInstr{op: cAnd, arg: uint16(len(c.And))}), nil
	case len(c.Or) > 0:
		var err error
		for i := range c.Or {
			if out, err = pg.compileCond(&c.Or[i], out); err != nil {
				return nil, err
			}
		}
		return append(out, condInstr{op: cOr, arg: uint16(len(c.Or))}), nil
	default:
		return append(out, condInstr{op: cTrue}), nil
	}
}

// scratch is the per-evaluation working memory: the match memo (one
// byte per interned match: 0 unknown, 1 true, 2 false) and the postfix
// stack. An Evaluator owns one and reuses it across requests.
type scratch struct {
	memo  []int8
	stack []bool
}

func (sc *scratch) reset(n int) {
	if cap(sc.memo) < n {
		sc.memo = make([]int8, n)
		return
	}
	sc.memo = sc.memo[:n]
	clear(sc.memo)
}

func (pg *program) evalMatch(i uint16, r Request, sc *scratch) bool {
	if v := sc.memo[i]; v != 0 {
		return v == 1
	}
	ok := pg.matches[i].m.Eval(r)
	if ok {
		sc.memo[i] = 1
	} else {
		sc.memo[i] = 2
	}
	return ok
}

func (pg *program) evalTarget(t []uint16, r Request, sc *scratch) bool {
	for _, i := range t {
		if !pg.evalMatch(i, r, sc) {
			return false
		}
	}
	return true
}

func (pg *program) evalCond(prog []condInstr, r Request, sc *scratch) bool {
	if len(prog) == 0 {
		return true
	}
	stack := sc.stack[:0]
	for _, in := range prog {
		switch in.op {
		case cTrue:
			stack = append(stack, true)
		case cMatch:
			stack = append(stack, pg.evalMatch(in.arg, r, sc))
		case cNot:
			stack[len(stack)-1] = !stack[len(stack)-1]
		case cAnd:
			n := len(stack) - int(in.arg)
			v := true
			for _, b := range stack[n:] {
				v = v && b
			}
			stack = append(stack[:n], v)
		case cOr:
			n := len(stack) - int(in.arg)
			v := false
			for _, b := range stack[n:] {
				v = v || b
			}
			stack = append(stack[:n], v)
		}
	}
	sc.stack = stack // keep grown capacity for the next evaluation
	return stack[len(stack)-1]
}

// compiledRule is one rule with its combining outcome resolved at
// compile time: when the rule fires, fireReturn (if nonzero) ends the
// policy evaluation with that decision, otherwise fireSet becomes the
// policy's pending decision.
type compiledRule struct {
	id         string
	target     []uint16
	cond       []condInstr
	fireReturn Decision
	fireSet    Decision
}

// CompiledPolicy is the executable form of a Policy.
type CompiledPolicy struct {
	ID     string
	prog   *program
	target []uint16
	rules  []compiledRule
}

// CompilePolicy compiles a single policy with its own match table.
func CompilePolicy(p *Policy) (*CompiledPolicy, error) {
	return compilePolicy(p, newProgram())
}

func compilePolicy(p *Policy, pg *program) (*CompiledPolicy, error) {
	cp := &CompiledPolicy{ID: p.ID, prog: pg}
	var err error
	if cp.target, err = pg.compileTarget(p.Target); err != nil {
		return nil, err
	}
	for _, ru := range p.Rules {
		cr := compiledRule{id: ru.ID}
		if cr.target, err = pg.compileTarget(ru.Target); err != nil {
			return nil, err
		}
		if ru.Condition != nil {
			if cr.cond, err = pg.compileCond(ru.Condition, nil); err != nil {
				return nil, err
			}
		}
		// Resolve the rule-combining switch of Policy.EvaluateTraced at
		// compile time.
		switch p.Combining {
		case DenyOverrides:
			if ru.Effect == Deny {
				cr.fireReturn = DecisionDeny
			} else {
				cr.fireSet = DecisionPermit
			}
		case PermitOverrides:
			if ru.Effect == Permit {
				cr.fireReturn = DecisionPermit
			} else {
				cr.fireSet = DecisionDeny
			}
		case FirstApplicable:
			if ru.Effect == Permit {
				cr.fireReturn = DecisionPermit
			} else {
				cr.fireReturn = DecisionDeny
			}
		default:
			cr.fireReturn = DecisionIndeterminate
		}
		cp.rules = append(cp.rules, cr)
	}
	return cp, nil
}

// Evaluate runs the compiled policy on a request. For repeated
// evaluation prefer compiling into a CompiledPolicySet and using an
// Evaluator, which reuses scratch memory.
func (cp *CompiledPolicy) Evaluate(r Request) Decision {
	var sc scratch
	sc.reset(len(cp.prog.matches))
	return cp.evaluate(r, &sc)
}

func (cp *CompiledPolicy) evaluate(r Request, sc *scratch) Decision {
	pg := cp.prog
	if !pg.evalTarget(cp.target, r, sc) {
		return DecisionNotApplicable
	}
	decision := DecisionNotApplicable
	for i := range cp.rules {
		ru := &cp.rules[i]
		if !pg.evalTarget(ru.target, r, sc) || !pg.evalCond(ru.cond, r, sc) {
			continue
		}
		if ru.fireReturn != 0 {
			return ru.fireReturn
		}
		decision = ru.fireSet
	}
	return decision
}

// CompiledPolicySet is the executable form of a PolicySet: all member
// policies compiled against one shared match table, with an equality
// index over the most discriminating attribute slot.
type CompiledPolicySet struct {
	ID       string
	prog     *program
	target   []uint16
	policies []*CompiledPolicy

	// stopOn resolves the policy-combining switch: an applicable
	// decision equal to stopOn returns immediately; stopAny (for
	// first-applicable) returns on any applicable decision; invalid
	// combining returns Indeterminate on the first applicable policy.
	stopOn  Decision
	stopAny bool
	invalid bool

	// Target index: policies whose target equality-tests discSlot are
	// bucketed by the tested value; the rest are always candidates.
	// Both lists hold policy indices in original (decision) order.
	discSlot int32
	buckets  map[Value][]int32
	rest     []int32
}

// CompileStats describes what compilation produced, for tests and
// observability.
type CompileStats struct {
	// Policies is the number of member policies.
	Policies int
	// Slots is the number of interned (category, attribute) pairs.
	Slots int
	// Matches is the size of the deduplicated match table.
	Matches int
	// Indexed is the number of policies reachable only through the
	// value index (0 when no discriminating slot was found).
	Indexed int
}

// CompilePolicySet compiles a policy set for repeated evaluation.
func CompilePolicySet(ps *PolicySet) (*CompiledPolicySet, error) {
	pg := newProgram()
	cs := &CompiledPolicySet{ID: ps.ID, prog: pg, discSlot: -1}
	var err error
	if cs.target, err = pg.compileTarget(ps.Target); err != nil {
		return nil, err
	}
	for _, p := range ps.Policies {
		cp, err := compilePolicy(p, pg)
		if err != nil {
			return nil, err
		}
		cs.policies = append(cs.policies, cp)
	}
	switch ps.Combining {
	case DenyOverrides:
		cs.stopOn = DecisionDeny
	case PermitOverrides:
		cs.stopOn = DecisionPermit
	case FirstApplicable:
		cs.stopAny = true
	default:
		cs.invalid = true
	}
	cs.buildIndex(ps)
	return cs, nil
}

// buildIndex picks the (category, attribute) slot equality-tested by
// the most policy targets and buckets those policies by tested value.
// Correctness does not depend on the choice: a policy is indexed only
// under a value its target requires with OpEq, so for any request the
// skipped policies are exactly those whose targets cannot match.
func (cs *CompiledPolicySet) buildIndex(ps *PolicySet) {
	type eq struct {
		slot  int32
		value Value
	}
	firstEq := make([]eq, len(ps.Policies))
	perSlot := make(map[int32][]int32) // slot -> policies with an eq target on it
	for pi, p := range ps.Policies {
		firstEq[pi] = eq{slot: -1}
		seen := make(map[int32]bool)
		for _, m := range p.Target {
			if m.Op != OpEq {
				continue
			}
			slot := cs.prog.interner.intern(m.Category, m.Attr)
			if firstEq[pi].slot == -1 {
				firstEq[pi] = eq{slot: slot, value: m.Value}
			}
			if !seen[slot] {
				seen[slot] = true
				perSlot[slot] = append(perSlot[slot], int32(pi))
			}
		}
	}
	best, bestN := int32(-1), 1 // require at least 2 indexed policies
	for slot, pis := range perSlot {
		if len(pis) > bestN || (len(pis) == bestN && best >= 0 && slot < best) {
			best, bestN = slot, len(pis)
		}
	}
	if best < 0 {
		for pi := range ps.Policies {
			cs.rest = append(cs.rest, int32(pi))
		}
		return
	}
	cs.discSlot = best
	cs.buckets = make(map[Value][]int32)
	for pi, p := range ps.Policies {
		var val Value
		indexed := false
		for _, m := range p.Target {
			if m.Op == OpEq && cs.prog.interner.intern(m.Category, m.Attr) == best {
				val, indexed = m.Value, true
				break
			}
		}
		if indexed {
			cs.buckets[val] = append(cs.buckets[val], int32(pi))
		} else {
			cs.rest = append(cs.rest, int32(pi))
		}
	}
}

// Stats reports compilation outcomes.
func (cs *CompiledPolicySet) Stats() CompileStats {
	indexed := 0
	for _, b := range cs.buckets {
		indexed += len(b)
	}
	return CompileStats{
		Policies: len(cs.policies),
		Slots:    len(cs.prog.interner.slots),
		Matches:  len(cs.prog.matches),
		Indexed:  indexed,
	}
}

// Evaluate runs the compiled set on a request, allocating fresh
// scratch. Hot paths should use an Evaluator.
func (cs *CompiledPolicySet) Evaluate(r Request) Decision {
	d, _ := cs.EvaluateWinner(r)
	return d
}

// EvaluateWinner mirrors PolicySet.EvaluateWinner on the compiled form.
func (cs *CompiledPolicySet) EvaluateWinner(r Request) (Decision, string) {
	var sc scratch
	sc.reset(len(cs.prog.matches))
	return cs.evaluate(r, &sc)
}

func (cs *CompiledPolicySet) evaluate(r Request, sc *scratch) (Decision, string) {
	pg := cs.prog
	if !pg.evalTarget(cs.target, r, sc) {
		return DecisionNotApplicable, ""
	}
	// Candidate policies: the bucket selected by the request's value at
	// the discriminating slot, merged in original order with the
	// unindexed rest.
	var bucket []int32
	if cs.discSlot >= 0 {
		slot := pg.interner.slots[cs.discSlot]
		if v, ok := r.Get(slot.Category, slot.Attr); ok {
			bucket = cs.buckets[v]
		}
	}
	decision := DecisionNotApplicable
	winner := ""
	rest := cs.rest
	i, j := 0, 0
	for i < len(bucket) || j < len(rest) {
		var pi int32
		if j >= len(rest) || (i < len(bucket) && bucket[i] < rest[j]) {
			pi = bucket[i]
			i++
		} else {
			pi = rest[j]
			j++
		}
		p := cs.policies[pi]
		d := p.evaluate(r, sc)
		if d == DecisionNotApplicable {
			continue
		}
		if cs.invalid {
			return DecisionIndeterminate, p.ID
		}
		if cs.stopAny || d == cs.stopOn {
			return d, p.ID
		}
		decision, winner = d, p.ID
	}
	return decision, winner
}

// Evaluator evaluates one compiled policy set repeatedly, reusing the
// match memo and condition stack across requests. Not safe for
// concurrent use — create one per goroutine (they share the immutable
// compiled set).
type Evaluator struct {
	cs *CompiledPolicySet
	sc scratch
}

// NewEvaluator builds an evaluator over the set.
func (cs *CompiledPolicySet) NewEvaluator() *Evaluator {
	ev := &Evaluator{cs: cs}
	ev.sc.reset(len(cs.prog.matches))
	return ev
}

// Evaluate returns the decision and winning policy id for a request.
func (ev *Evaluator) Evaluate(r Request) (Decision, string) {
	ev.sc.reset(len(ev.cs.prog.matches))
	return ev.cs.evaluate(r, &ev.sc)
}

// Slots lists the interned (category, attribute) pairs in intern order,
// rendered "category.attr" — primarily for tests and diagnostics.
func (cs *CompiledPolicySet) Slots() []string {
	out := make([]string, len(cs.prog.interner.slots))
	for i, s := range cs.prog.interner.slots {
		out[i] = string(s.Category) + "." + s.Attr
	}
	sort.Strings(out)
	return out
}
