package xacml

import "testing"

func TestDigestOrderIndependent(t *testing.T) {
	// Build the same logical request twice with different insertion
	// orders; map iteration randomization means repeated Digest calls
	// exercise different walk orders too.
	a := NewRequest().
		Set(Subject, "role", S("medic")).
		Set(Subject, "clearance", I(3)).
		Set(Action, "id", S("overtake")).
		Set(Resource, "zone", S("north"))
	b := NewRequest().
		Set(Resource, "zone", S("north")).
		Set(Action, "id", S("overtake")).
		Set(Subject, "clearance", I(3)).
		Set(Subject, "role", S("medic"))
	da := a.Digest()
	for i := 0; i < 50; i++ {
		if got := a.Digest(); got != da {
			t.Fatalf("Digest unstable across calls: %x vs %x", got, da)
		}
		if got := b.Digest(); got != da {
			t.Fatalf("Digest depends on insertion order: %x vs %x", got, da)
		}
	}
}

func TestDigestDiscriminates(t *testing.T) {
	base := NewRequest().Set(Action, "id", S("overtake"))
	cases := []Request{
		NewRequest().Set(Action, "id", S("share")),                                 // different value
		NewRequest().Set(Action, "verb", S("overtake")),                            // different attribute
		NewRequest().Set(Subject, "id", S("overtake")),                             // different category
		NewRequest().Set(Action, "id", I(7)),                                       // different type
		NewRequest().Set(Action, "id", S("overtake")).Set(Subject, "role", S("x")), // extra attribute
		NewRequest(), // empty
	}
	d0 := base.Digest()
	for i, r := range cases {
		if r.Digest() == d0 {
			t.Fatalf("case %d digests equal to base", i)
		}
	}
}

func TestDigestZeroAllocs(t *testing.T) {
	r := NewRequest().
		Set(Subject, "role", S("medic")).
		Set(Action, "id", S("overtake"))
	allocs := testing.AllocsPerRun(100, func() {
		_ = r.Digest()
	})
	if allocs != 0 {
		t.Fatalf("Digest allocates %v per op, want 0", allocs)
	}
}

func TestDigestIntVsStringValue(t *testing.T) {
	// An int value must not collide with its decimal string rendering.
	a := NewRequest().Set(Action, "id", I(42))
	b := NewRequest().Set(Action, "id", S("42"))
	if a.Digest() == b.Digest() {
		t.Fatalf("int and string values collide")
	}
}
