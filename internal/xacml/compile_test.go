package xacml

import (
	"fmt"
	"testing"
)

// --- deterministic generator for differential testing ---------------------
//
// A byteStream turns a byte slice (fuzz input or a seeded pattern) into
// structural decisions; when the bytes run out every draw returns zero,
// so generation always terminates.

type byteStream struct {
	data []byte
	pos  int
}

func (bs *byteStream) next() byte {
	if bs.pos >= len(bs.data) {
		return 0
	}
	b := bs.data[bs.pos]
	bs.pos++
	return b
}

func (bs *byteStream) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(bs.next()) % n
}

var (
	genCats  = []Category{Subject, Resource, Action, Environment}
	genAttrs = []string{"id", "role", "level"}
)

func (bs *byteStream) value() Value {
	if bs.next()%2 == 0 {
		return S([]string{"a", "b", "c"}[bs.intn(3)])
	}
	return I(bs.intn(4))
}

func (bs *byteStream) match() Match {
	return Match{
		Category: genCats[bs.intn(len(genCats))],
		Attr:     genAttrs[bs.intn(len(genAttrs))],
		Op:       MatchOp(bs.intn(6) + 1),
		Value:    bs.value(),
	}
}

func (bs *byteStream) target(max int) Target {
	n := bs.intn(max + 1)
	t := make(Target, 0, n)
	for i := 0; i < n; i++ {
		t = append(t, bs.match())
	}
	return t
}

func (bs *byteStream) condition(depth int) *Condition {
	if depth <= 0 {
		m := bs.match()
		return &Condition{Match: &m}
	}
	switch bs.intn(5) {
	case 0:
		m := bs.match()
		return &Condition{Match: &m}
	case 1:
		return &Condition{Not: bs.condition(depth - 1)}
	case 2:
		n := bs.intn(3) + 1
		c := &Condition{}
		for i := 0; i < n; i++ {
			c.And = append(c.And, *bs.condition(depth - 1))
		}
		return c
	case 3:
		n := bs.intn(3) + 1
		c := &Condition{}
		for i := 0; i < n; i++ {
			c.Or = append(c.Or, *bs.condition(depth - 1))
		}
		return c
	default:
		return &Condition{} // zero value: constant true
	}
}

// policySet draws a policy set, deliberately including out-of-range
// combining algorithms and effects so the compiled form must reproduce
// the tree-walk's default branches too.
func (bs *byteStream) policySet() *PolicySet {
	ps := &PolicySet{
		ID:        "ps",
		Target:    bs.target(1),
		Combining: CombiningAlg(bs.intn(5)), // includes invalid 0 and 4
	}
	nPolicies := bs.intn(6) + 1
	for i := 0; i < nPolicies; i++ {
		p := &Policy{
			ID:        fmt.Sprintf("p%d", i),
			Target:    bs.target(3),
			Combining: CombiningAlg(bs.intn(5)),
		}
		nRules := bs.intn(3) + 1
		for j := 0; j < nRules; j++ {
			ru := Rule{
				ID:     fmt.Sprintf("p%d-r%d", i, j),
				Effect: Effect(bs.intn(4)), // includes invalid 0 and 3
				Target: bs.target(2),
			}
			if bs.next()%2 == 0 {
				ru.Condition = bs.condition(2)
			}
			p.Rules = append(p.Rules, ru)
		}
		ps.Policies = append(ps.Policies, p)
	}
	return ps
}

func (bs *byteStream) request() Request {
	r := NewRequest()
	n := bs.intn(6)
	for i := 0; i < n; i++ {
		r.Set(genCats[bs.intn(len(genCats))], genAttrs[bs.intn(len(genAttrs))], bs.value())
	}
	return r
}

// diffOne compiles a generated set and checks decision and winner
// equality against the tree-walk oracle over several requests.
func diffOne(t *testing.T, data []byte) {
	t.Helper()
	bs := &byteStream{data: data}
	ps := bs.policySet()
	cs, err := CompilePolicySet(ps)
	if err != nil {
		t.Fatalf("CompilePolicySet: %v", err)
	}
	ev := cs.NewEvaluator()
	for k := 0; k < 8; k++ {
		r := bs.request()
		wantD, wantW := ps.EvaluateWinner(r)
		gotD, gotW := cs.EvaluateWinner(r)
		if gotD != wantD || gotW != wantW {
			t.Fatalf("compiled EvaluateWinner(%s) = %v, %q; tree-walk %v, %q\nset: %+v",
				r, gotD, gotW, wantD, wantW, ps)
		}
		evD, evW := ev.Evaluate(r)
		if evD != wantD || evW != wantW {
			t.Fatalf("Evaluator.Evaluate(%s) = %v, %q; tree-walk %v, %q", r, evD, evW, wantD, wantW)
		}
		if got := cs.Evaluate(r); got != ps.Evaluate(r) {
			t.Fatalf("compiled Evaluate(%s) = %v; tree-walk %v", r, got, ps.Evaluate(r))
		}
		// Per-policy differential, standalone compilation path.
		for _, p := range ps.Policies {
			cp, err := CompilePolicy(p)
			if err != nil {
				t.Fatalf("CompilePolicy(%s): %v", p.ID, err)
			}
			if got, want := cp.Evaluate(r), p.Evaluate(r); got != want {
				t.Fatalf("compiled policy %s(%s) = %v; tree-walk %v", p.ID, r, got, want)
			}
		}
	}
}

func TestCompiledDifferentialSeeds(t *testing.T) {
	// A deterministic sweep over pseudo-random byte patterns; the fuzz
	// target below explores beyond these.
	for seed := 0; seed < 500; seed++ {
		data := make([]byte, 128)
		x := uint32(seed)*2654435761 + 1
		for i := range data {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			data[i] = byte(x)
		}
		diffOne(t, data)
	}
}

func FuzzCompiledVsTreeWalk(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte("deny-overrides-first-applicable-permit"))
	f.Fuzz(func(t *testing.T, data []byte) {
		diffOne(t, data)
	})
}

// --- targeted semantics the compiler must preserve ------------------------

func TestCompiledCombiningAlgorithms(t *testing.T) {
	mkRule := func(id string, e Effect, m Match) Rule {
		return Rule{ID: id, Effect: e, Target: Target{m}}
	}
	matchAll := Match{Category: Subject, Attr: "id", Op: OpEq, Value: S("a")}
	r := NewRequest().Set(Subject, "id", S("a"))
	for _, tt := range []struct {
		name      string
		combining CombiningAlg
		rules     []Rule
		want      Decision
	}{
		{"deny-overrides/deny-wins", DenyOverrides,
			[]Rule{mkRule("p", Permit, matchAll), mkRule("d", Deny, matchAll)}, DecisionDeny},
		{"deny-overrides/permit-when-no-deny", DenyOverrides,
			[]Rule{mkRule("p", Permit, matchAll)}, DecisionPermit},
		{"permit-overrides/permit-wins", PermitOverrides,
			[]Rule{mkRule("d", Deny, matchAll), mkRule("p", Permit, matchAll)}, DecisionPermit},
		{"permit-overrides/deny-when-no-permit", PermitOverrides,
			[]Rule{mkRule("d", Deny, matchAll)}, DecisionDeny},
		{"first-applicable/first-wins", FirstApplicable,
			[]Rule{mkRule("d", Deny, matchAll), mkRule("p", Permit, matchAll)}, DecisionDeny},
		{"invalid-combining/indeterminate", CombiningAlg(0),
			[]Rule{mkRule("p", Permit, matchAll)}, DecisionIndeterminate},
		{"no-rule-applies/not-applicable", DenyOverrides,
			[]Rule{mkRule("p", Permit, Match{Category: Subject, Attr: "id", Op: OpEq, Value: S("z")})},
			DecisionNotApplicable},
	} {
		t.Run(tt.name, func(t *testing.T) {
			p := &Policy{ID: "p", Rules: tt.rules, Combining: tt.combining}
			if got := p.Evaluate(r); got != tt.want {
				t.Fatalf("tree-walk oracle = %v, want %v (test is wrong)", got, tt.want)
			}
			cp, err := CompilePolicy(p)
			if err != nil {
				t.Fatal(err)
			}
			if got := cp.Evaluate(r); got != tt.want {
				t.Errorf("compiled = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCompiledSetWinnerAndShortCircuit(t *testing.T) {
	mkPolicy := func(id string, e Effect, val string) *Policy {
		return &Policy{
			ID:        id,
			Target:    Target{{Category: Action, Attr: "id", Op: OpEq, Value: S(val)}},
			Rules:     []Rule{{ID: id + "-r", Effect: e}},
			Combining: DenyOverrides,
		}
	}
	ps := &PolicySet{
		ID:        "s",
		Combining: DenyOverrides,
		Policies: []*Policy{
			mkPolicy("a-permit", Permit, "read"),
			mkPolicy("b-deny", Deny, "read"),
			mkPolicy("c-permit", Permit, "write"),
		},
	}
	cs, err := CompilePolicySet(ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		action string
		want   Decision
		winner string
	}{
		{"read", DecisionDeny, "b-deny"},
		{"write", DecisionPermit, "c-permit"},
		{"nope", DecisionNotApplicable, ""},
	} {
		r := NewRequest().Set(Action, "id", S(tt.action))
		d, w := cs.EvaluateWinner(r)
		if d != tt.want || w != tt.winner {
			t.Errorf("EvaluateWinner(%s) = %v, %q; want %v, %q", tt.action, d, w, tt.want, tt.winner)
		}
		od, ow := ps.EvaluateWinner(r)
		if od != d || ow != w {
			t.Errorf("oracle disagrees for %s: %v, %q", tt.action, od, ow)
		}
	}
}

func TestCompileStatsDedupAndIndex(t *testing.T) {
	// Three policies sharing the same action.id equality test and two
	// distinct values: the match table dedups the repeated test and the
	// index buckets by value.
	m := func(val string) Match {
		return Match{Category: Action, Attr: "id", Op: OpEq, Value: S(val)}
	}
	ps := &PolicySet{
		Combining: DenyOverrides,
		Policies: []*Policy{
			{ID: "p1", Target: Target{m("read")}, Rules: []Rule{{Effect: Permit}}, Combining: DenyOverrides},
			{ID: "p2", Target: Target{m("read")}, Rules: []Rule{{Effect: Deny, Target: Target{m("read")}}}, Combining: DenyOverrides},
			{ID: "p3", Target: Target{m("write")}, Rules: []Rule{{Effect: Permit}}, Combining: DenyOverrides},
			{ID: "p4", Rules: []Rule{{Effect: Permit}}, Combining: DenyOverrides}, // unindexed
		},
	}
	cs, err := CompilePolicySet(ps)
	if err != nil {
		t.Fatal(err)
	}
	st := cs.Stats()
	if st.Policies != 4 {
		t.Errorf("Policies = %d", st.Policies)
	}
	if st.Slots != 1 {
		t.Errorf("Slots = %d, want 1 (single interned action.id)", st.Slots)
	}
	if st.Matches != 2 {
		t.Errorf("Matches = %d, want 2 (read/write deduped)", st.Matches)
	}
	if st.Indexed != 3 {
		t.Errorf("Indexed = %d, want 3", st.Indexed)
	}
	if got := cs.Slots(); len(got) != 1 || got[0] != "action.id" {
		t.Errorf("Slots() = %v", got)
	}
	// Index correctness: p4 (unindexed) still decides for unmatched values.
	d, w := cs.EvaluateWinner(NewRequest().Set(Action, "id", S("other")))
	if d != DecisionPermit || w != "p4" {
		t.Errorf("unindexed fallback = %v, %q", d, w)
	}
	// Missing discriminating attribute: only unindexed policies apply.
	d, w = cs.EvaluateWinner(NewRequest())
	if d != DecisionPermit || w != "p4" {
		t.Errorf("missing attr = %v, %q", d, w)
	}
}

// --- Request.Clone and Value.Compare edges the compiler relies on ---------

func TestRequestCloneIndependence(t *testing.T) {
	orig := NewRequest().
		Set(Subject, "id", S("alice")).
		Set(Resource, "level", I(3))
	cl := orig.Clone()
	cl.Set(Subject, "id", S("bob"))
	cl.Set(Action, "id", S("read"))
	if v, _ := orig.Get(Subject, "id"); v.Str != "alice" {
		t.Errorf("Clone shares subject map: %v", v)
	}
	if _, ok := orig.Get(Action, "id"); ok {
		t.Error("Clone shares category map allocation")
	}
	if orig.Key() == cl.Key() {
		t.Error("keys should differ after divergence")
	}
	// Cloning an empty request yields an independent empty request.
	empty := NewRequest().Clone()
	empty.Set(Subject, "id", S("x"))
	if len(empty) != 1 {
		t.Errorf("empty clone unusable: %v", empty)
	}
}

func TestValueCompareMixedTypes(t *testing.T) {
	for _, tt := range []struct {
		a, b Value
		want int // sign
	}{
		{I(1), I(2), -1},
		{I(2), I(1), 1},
		{I(2), I(2), 0},
		{S("a"), S("b"), -1},
		{S("b"), S("a"), 1},
		{S("a"), S("a"), 0},
		{I(99), S("a"), -1}, // ints order before strings
		{S("a"), I(99), 1},
		{I(0), S(""), -1},
	} {
		got := tt.a.Compare(tt.b)
		switch {
		case tt.want < 0 && got >= 0, tt.want > 0 && got <= 0, tt.want == 0 && got != 0:
			t.Errorf("Compare(%v, %v) = %d, want sign %d", tt.a, tt.b, got, tt.want)
		}
		if (tt.want == 0) != tt.a.Equal(tt.b) {
			t.Errorf("Equal(%v, %v) inconsistent with Compare", tt.a, tt.b)
		}
	}
}

func TestCompiledMatchMissingAndMismatched(t *testing.T) {
	// Missing attributes never match; int/string mismatches match only
	// under equality ops (as inequality). The compiled form must keep
	// both behaviours.
	p := &Policy{
		ID:        "p",
		Combining: DenyOverrides,
		Rules: []Rule{
			{ID: "neq", Effect: Permit, Target: Target{
				{Category: Subject, Attr: "level", Op: OpNeq, Value: I(3)},
			}},
		},
	}
	cp, err := CompilePolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name string
		req  Request
		want Decision
	}{
		{"missing-attr", NewRequest(), DecisionNotApplicable},
		{"string-vs-int-neq", NewRequest().Set(Subject, "level", S("high")), DecisionPermit},
		{"equal-int", NewRequest().Set(Subject, "level", I(3)), DecisionNotApplicable},
		{"other-int", NewRequest().Set(Subject, "level", I(4)), DecisionPermit},
	} {
		if got := p.Evaluate(tt.req); got != tt.want {
			t.Fatalf("%s: tree-walk oracle = %v, want %v (test is wrong)", tt.name, got, tt.want)
		}
		if got := cp.Evaluate(tt.req); got != tt.want {
			t.Errorf("%s: compiled = %v, want %v", tt.name, got, tt.want)
		}
	}
	// Ordering ops on mismatched types never match.
	lt := &Policy{ID: "lt", Combining: DenyOverrides, Rules: []Rule{
		{ID: "r", Effect: Permit, Target: Target{
			{Category: Subject, Attr: "level", Op: OpLt, Value: I(3)},
		}},
	}}
	clt, err := CompilePolicy(lt)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := NewRequest().Set(Subject, "level", S("2"))
	if got := clt.Evaluate(mismatch); got != lt.Evaluate(mismatch) || got != DecisionNotApplicable {
		t.Errorf("ordering op on mismatched types = %v, want NotApplicable", got)
	}
}
