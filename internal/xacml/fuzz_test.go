package xacml

import (
	"testing"
)

// FuzzParsePolicy checks the policy codec never panics and that
// successful parses are format/re-parse stable.
func FuzzParsePolicy(f *testing.F) {
	seeds := []string{
		`policy "p" deny-overrides { rule "r" permit { target subject.role = dba } }`,
		`policy "p" first-applicable { target resource.type = report
  rule "r" deny { condition subject.age >= 18 and not ( subject.x = 1 ) } }`,
		`policy "" permit-overrides {}`,
		`policy "p" deny-overrides { rule "r" permit { condition subject.a = 1 or subject.b = 2 } }`,
		"policy",
		`policy "p" deny-overrides { target crowd.x = 1 }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePolicy(src)
		if err != nil {
			return
		}
		formatted := p.Format()
		again, err := ParsePolicy(formatted)
		if err != nil {
			t.Fatalf("formatted policy does not re-parse: %q: %v", formatted, err)
		}
		if again.Format() != formatted {
			t.Fatalf("format not stable:\n%q\nvs\n%q", formatted, again.Format())
		}
	})
}
