package xacml

import (
	"strings"
	"testing"
	"testing/quick"

	"agenp/internal/asp"
)

func req(pairs ...any) Request {
	r := NewRequest()
	for i := 0; i+2 < len(pairs)+1 && i+2 <= len(pairs); i += 3 {
		cat, _ := pairs[i].(Category)
		attr, _ := pairs[i+1].(string)
		switch v := pairs[i+2].(type) {
		case int:
			r.Set(cat, attr, I(v))
		case string:
			r.Set(cat, attr, S(v))
		}
	}
	return r
}

func TestValueBasics(t *testing.T) {
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Error("string equality broken")
	}
	if !I(3).Equal(I(3)) || I(3).Equal(I(4)) {
		t.Error("int equality broken")
	}
	if S("3").Equal(I(3)) {
		t.Error("string 3 must not equal int 3")
	}
	if I(2).Compare(I(10)) >= 0 {
		t.Error("int compare broken")
	}
	if S("a").Compare(S("b")) >= 0 {
		t.Error("string compare broken")
	}
	if I(1).String() != "1" || S("x").String() != "x" {
		t.Error("String broken")
	}
}

func TestRequestAccessors(t *testing.T) {
	r := req(Subject, "role", "dba", Subject, "age", 30, Resource, "type", "report")
	if v, ok := r.Get(Subject, "age"); !ok || v.Int != 30 {
		t.Errorf("Get age = %v, %v", v, ok)
	}
	if _, ok := r.Get(Action, "id"); ok {
		t.Error("missing attribute should not be found")
	}
	c := r.Clone()
	c.Set(Subject, "age", I(99))
	if v, _ := r.Get(Subject, "age"); v.Int != 30 {
		t.Error("Clone not isolated")
	}
	key := r.Key()
	if !strings.Contains(key, "subject.age=30") || !strings.Contains(key, "resource.type=report") {
		t.Errorf("Key = %q", key)
	}
	// Key must be deterministic.
	if key != r.Key() {
		t.Error("Key unstable")
	}
}

func TestMatchEval(t *testing.T) {
	r := req(Subject, "age", 21, Subject, "role", "dev")
	tests := []struct {
		m    Match
		want bool
	}{
		{m: Match{Subject, "age", OpGeq, I(18)}, want: true},
		{m: Match{Subject, "age", OpLt, I(18)}, want: false},
		{m: Match{Subject, "age", OpEq, I(21)}, want: true},
		{m: Match{Subject, "role", OpEq, S("dev")}, want: true},
		{m: Match{Subject, "role", OpNeq, S("dba")}, want: true},
		{m: Match{Subject, "missing", OpEq, S("x")}, want: false},
		{m: Match{Resource, "age", OpEq, I(21)}, want: false},
		// Type mismatch on ordering operators never matches.
		{m: Match{Subject, "role", OpGt, I(3)}, want: false},
		{m: Match{Subject, "age", OpNeq, S("21")}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.m.String(), func(t *testing.T) {
			if got := tt.m.Eval(r); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConditionEval(t *testing.T) {
	r := req(Subject, "age", 21, Subject, "role", "dev")
	ageOK := Match{Subject, "age", OpGeq, I(18)}
	isDBA := Match{Subject, "role", OpEq, S("dba")}
	var nilCond *Condition
	if !nilCond.Eval(r) {
		t.Error("nil condition must be true")
	}
	and := Condition{And: []Condition{{Match: &ageOK}, {Not: &Condition{Match: &isDBA}}}}
	if !and.Eval(r) {
		t.Errorf("and = false; cond %s", and.String())
	}
	or := Condition{Or: []Condition{{Match: &isDBA}, {Match: &ageOK}}}
	if !or.Eval(r) {
		t.Error("or = false")
	}
	bad := Condition{And: []Condition{{Match: &isDBA}}}
	if bad.Eval(r) {
		t.Error("and(isDBA) should fail for dev")
	}
}

func samplePolicy() *Policy {
	return &Policy{
		ID:        "p1",
		Combining: DenyOverrides,
		Rules: []Rule{
			{
				ID:     "permit-dba-read",
				Effect: Permit,
				Target: Target{
					{Subject, "role", OpEq, S("dba")},
					{Action, "id", OpEq, S("read")},
				},
			},
			{
				ID:     "deny-minors",
				Effect: Deny,
				Target: Target{{Subject, "age", OpLt, I(18)}},
			},
		},
	}
}

func TestPolicyEvaluate(t *testing.T) {
	p := samplePolicy()
	tests := []struct {
		name string
		r    Request
		want Decision
	}{
		{
			name: "dba read permitted",
			r:    req(Subject, "role", "dba", Subject, "age", 40, Action, "id", "read"),
			want: DecisionPermit,
		},
		{
			name: "minor dba denied by deny-overrides",
			r:    req(Subject, "role", "dba", Subject, "age", 16, Action, "id", "read"),
			want: DecisionDeny,
		},
		{
			name: "unrelated request not applicable",
			r:    req(Subject, "role", "dev", Subject, "age", 30, Action, "id", "write"),
			want: DecisionNotApplicable,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.Evaluate(tt.r); got != tt.want {
				t.Errorf("Evaluate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCombiningAlgorithms(t *testing.T) {
	permitAll := Rule{ID: "p", Effect: Permit}
	denyAll := Rule{ID: "d", Effect: Deny}
	r := req(Subject, "x", 1)
	tests := []struct {
		name  string
		alg   CombiningAlg
		rules []Rule
		want  Decision
	}{
		{name: "deny-overrides", alg: DenyOverrides, rules: []Rule{permitAll, denyAll}, want: DecisionDeny},
		{name: "permit-overrides", alg: PermitOverrides, rules: []Rule{denyAll, permitAll}, want: DecisionPermit},
		{name: "first-applicable permit", alg: FirstApplicable, rules: []Rule{permitAll, denyAll}, want: DecisionPermit},
		{name: "first-applicable deny", alg: FirstApplicable, rules: []Rule{denyAll, permitAll}, want: DecisionDeny},
		{name: "no rules", alg: DenyOverrides, rules: nil, want: DecisionNotApplicable},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := &Policy{ID: "t", Combining: tt.alg, Rules: tt.rules}
			if got := p.Evaluate(r); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPolicyTargetGates(t *testing.T) {
	p := samplePolicy()
	p.Target = Target{{Resource, "type", OpEq, S("report")}}
	r := req(Subject, "role", "dba", Subject, "age", 40, Action, "id", "read")
	if got := p.Evaluate(r); got != DecisionNotApplicable {
		t.Errorf("policy target not gating: %v", got)
	}
}

func TestEvaluateTraced(t *testing.T) {
	p := samplePolicy()
	r := req(Subject, "role", "dba", Subject, "age", 16, Action, "id", "read")
	d, fired := p.EvaluateTraced(r)
	if d != DecisionDeny {
		t.Fatalf("decision = %v", d)
	}
	// Both rules fire; deny-overrides reports both in order.
	if len(fired) != 2 || fired[0] != "permit-dba-read" || fired[1] != "deny-minors" {
		t.Errorf("fired = %v", fired)
	}
}

func TestPolicySetCombining(t *testing.T) {
	pPermit := &Policy{ID: "a", Combining: FirstApplicable, Rules: []Rule{{ID: "r", Effect: Permit}}}
	pDeny := &Policy{ID: "b", Combining: FirstApplicable, Rules: []Rule{{ID: "r", Effect: Deny}}}
	r := req(Subject, "x", 1)
	ps := &PolicySet{ID: "s", Combining: DenyOverrides, Policies: []*Policy{pPermit, pDeny}}
	if got := ps.Evaluate(r); got != DecisionDeny {
		t.Errorf("deny-overrides set = %v", got)
	}
	ps.Combining = PermitOverrides
	if got := ps.Evaluate(r); got != DecisionPermit {
		t.Errorf("permit-overrides set = %v", got)
	}
	ps.Combining = FirstApplicable
	if got := ps.Evaluate(r); got != DecisionPermit {
		t.Errorf("first-applicable set = %v", got)
	}
	ps.Target = Target{{Resource, "none", OpEq, S("x")}}
	if got := ps.Evaluate(r); got != DecisionNotApplicable {
		t.Errorf("gated set = %v", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := samplePolicy()
	cond := Condition{And: []Condition{
		{Match: &Match{Environment, "time", OpLt, I(18)}},
		{Not: &Condition{Match: &Match{Subject, "suspended", OpEq, S("yes")}}},
	}}
	p.Rules[0].Condition = &cond
	p.Target = Target{{Resource, "type", OpEq, S("report")}}

	text := p.Format()
	parsed, err := ParsePolicy(text)
	if err != nil {
		t.Fatalf("ParsePolicy:\n%s\n%v", text, err)
	}
	if parsed.Format() != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, parsed.Format())
	}
	// Behavioral equivalence on a few requests.
	reqs := []Request{
		req(Subject, "role", "dba", Subject, "age", 40, Action, "id", "read", Resource, "type", "report", Environment, "time", 9),
		req(Subject, "role", "dba", Subject, "age", 16, Action, "id", "read", Resource, "type", "report"),
		req(Subject, "role", "dev", Resource, "type", "report"),
	}
	for _, r := range reqs {
		if p.Evaluate(r) != parsed.Evaluate(r) {
			t.Errorf("decision mismatch for %s", r)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "bad keyword", give: `policie "x" deny-overrides {}`},
		{name: "bad combining", give: `policy "x" sometimes {}`},
		{name: "bad effect", give: `policy "x" deny-overrides { rule "r" maybe {} }`},
		{name: "bad category", give: `policy "x" deny-overrides { target crowd.size = 3 }`},
		{name: "bad op", give: `policy "x" deny-overrides { rule "r" permit { target subject.a ~ 3 } }`},
		{name: "trailing", give: `policy "x" deny-overrides {} extra`},
		{name: "missing brace", give: `policy "x" deny-overrides {`},
		{name: "unqualified attr", give: `policy "x" deny-overrides { target role = dba }`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParsePolicy(tt.give); err == nil {
				t.Errorf("ParsePolicy(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestRequestFacts(t *testing.T) {
	r := req(Subject, "role", "dba", Subject, "age", 30, Environment, "time", 9)
	prog := RequestFacts(r)
	s := prog.String()
	for _, want := range []string{"subject(role,dba).", "subject(age,30).", "env(time,9)."} {
		if !strings.Contains(s, want) {
			t.Errorf("facts missing %q:\n%s", want, s)
		}
	}
	// Deterministic ordering.
	if prog.String() != RequestFacts(r).String() {
		t.Error("RequestFacts not deterministic")
	}
}

func TestRequestFactsQuotedValues(t *testing.T) {
	r := req(Subject, "name", "Alice Smith")
	s := RequestFacts(r).String()
	if !strings.Contains(s, `subject(name,"Alice Smith").`) {
		t.Errorf("non-identifier value should be quoted:\n%s", s)
	}
}

func TestDecisionAtomRoundTrip(t *testing.T) {
	for _, e := range []Effect{Permit, Deny} {
		a := DecisionAtom(e)
		got, err := EffectFromAtom(a)
		if err != nil || got != e {
			t.Errorf("round trip %v: %v, %v", e, got, err)
		}
	}
	bad, _ := asp.ParseAtom("weather(rain)")
	if _, err := EffectFromAtom(bad); err == nil {
		t.Error("expected error for non-decision atom")
	}
}

func TestRuleFromASP(t *testing.T) {
	r, err := asp.ParseRule("decision(permit) :- subject(role, dba), subject(age, V1), V1 >= 18, not subject(suspended, yes).")
	if err != nil {
		t.Fatal(err)
	}
	ru, err := RuleFromASP(r, "learned-1")
	if err != nil {
		t.Fatal(err)
	}
	if ru.Effect != Permit {
		t.Errorf("effect = %v", ru.Effect)
	}
	// Behavioral check.
	adultDBA := req(Subject, "role", "dba", Subject, "age", 30)
	if !ru.Applies(adultDBA) {
		t.Error("rule should apply to adult dba")
	}
	minor := req(Subject, "role", "dba", Subject, "age", 15)
	if ru.Applies(minor) {
		t.Error("rule should not apply to minor")
	}
	suspended := req(Subject, "role", "dba", Subject, "age", 30, Subject, "suspended", "yes")
	if ru.Applies(suspended) {
		t.Error("rule should not apply to suspended subject")
	}
}

func TestRuleFromASPErrors(t *testing.T) {
	tests := []string{
		":- subject(role, dba).",                                               // no head
		"decision(permit) :- weather(rain).",                                   // unknown predicate
		"decision(permit) :- subject(role, dba), V1 >= 18.",                    // unbound comparison var
		"decision(permit) :- subject(age, V1).",                                // bound but never compared
		"decision(maybe) :- subject(role, dba).",                               // bad decision
		"decision(permit) :- not subject(age, V1), subject(age, V1), V1 >= 3.", // non-ground negated atom
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			r, err := asp.ParseRule(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := RuleFromASP(r, "x"); err == nil {
				t.Errorf("RuleFromASP(%q) succeeded, want error", src)
			}
		})
	}
}

func TestPolicyFromHypothesis(t *testing.T) {
	r1, _ := asp.ParseRule("decision(permit) :- subject(role, dba).")
	r2, _ := asp.ParseRule("decision(deny) :- subject(age, V1), V1 < 18.")
	pol, err := PolicyFromHypothesis([]asp.Rule{r1, r2}, "learned")
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Rules) != 2 || pol.Combining != DenyOverrides {
		t.Fatalf("policy = %+v", pol)
	}
	minorDBA := req(Subject, "role", "dba", Subject, "age", 15)
	if got := pol.Evaluate(minorDBA); got != DecisionDeny {
		t.Errorf("minor dba = %v, want Deny", got)
	}
	adultDBA := req(Subject, "role", "dba", Subject, "age", 30)
	if got := pol.Evaluate(adultDBA); got != DecisionPermit {
		t.Errorf("adult dba = %v, want Permit", got)
	}
}

func TestBiasFromRequests(t *testing.T) {
	reqs := []Request{
		req(Subject, "role", "dba", Subject, "age", 30),
		req(Subject, "role", "dev", Subject, "age", 20),
		req(Subject, "role", "dba"),
	}
	b := BiasFromRequests(reqs)
	roles := b.Values[Subject]["role"]
	if len(roles) != 2 {
		t.Errorf("roles = %v", roles)
	}
	ages := b.Values[Subject]["age"]
	if len(ages) != 2 || !ages[0].IsInt || ages[0].Int != 20 {
		t.Errorf("ages = %v (must be sorted)", ages)
	}
	attrs := b.Attributes()
	if len(attrs) != 2 || attrs[0] != "subject.age" {
		t.Errorf("attributes = %v", attrs)
	}
	if !strings.Contains(b.String(), "subject.role: {dba, dev}") {
		t.Errorf("String = %q", b.String())
	}
}

// TestEvalDecisionTotal (property): Evaluate never returns Indeterminate
// for well-formed policies, and target matching is monotone in the sense
// that removing a target match can only widen applicability.
func TestEvalDecisionTotal(t *testing.T) {
	p := samplePolicy()
	f := func(age uint8, role uint8, action uint8) bool {
		roles := []string{"dba", "dev", "guest"}
		actions := []string{"read", "write"}
		r := req(
			Subject, "role", roles[int(role)%len(roles)],
			Subject, "age", int(age),
			Action, "id", actions[int(action)%len(actions)],
		)
		d := p.Evaluate(r)
		if d == DecisionIndeterminate {
			return false
		}
		// Widening: dropping the policy's rule targets can only move
		// NotApplicable toward an applicable decision.
		open := &Policy{ID: "open", Combining: p.Combining}
		for _, ru := range p.Rules {
			open.Rules = append(open.Rules, Rule{ID: ru.ID, Effect: ru.Effect})
		}
		if d != DecisionNotApplicable && open.Evaluate(r) == DecisionNotApplicable {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if DecisionPermit.String() != "Permit" || DecisionNotApplicable.String() != "NotApplicable" {
		t.Error("Decision.String broken")
	}
	if Permit.String() != "Permit" || Deny.String() != "Deny" {
		t.Error("Effect.String broken")
	}
	if DenyOverrides.String() != "deny-overrides" {
		t.Error("CombiningAlg.String broken")
	}
	ru := samplePolicy().Rules[1]
	if !strings.Contains(ru.String(), "deny") || !strings.Contains(ru.String(), "subject.age < 18") {
		t.Errorf("Rule.String = %q", ru.String())
	}
	var empty Target
	if empty.String() != "any" {
		t.Errorf("empty target = %q", empty.String())
	}
}
