package xacml

import (
	"strings"
	"testing"

	"agenp/internal/asp"
)

func TestRuleFromASPFlippedComparison(t *testing.T) {
	// value op V form flips the operator.
	tests := []struct {
		rule    string
		age     int
		applies bool
	}{
		{rule: "decision(permit) :- subject(age, V1), 18 <= V1.", age: 20, applies: true},
		{rule: "decision(permit) :- subject(age, V1), 18 <= V1.", age: 10, applies: false},
		{rule: "decision(permit) :- subject(age, V1), 30 > V1.", age: 20, applies: true},
		{rule: "decision(permit) :- subject(age, V1), 30 > V1.", age: 40, applies: false},
		{rule: "decision(permit) :- subject(age, V1), 30 >= V1.", age: 30, applies: true},
		{rule: "decision(permit) :- subject(age, V1), 18 < V1.", age: 19, applies: true},
		{rule: "decision(permit) :- subject(age, V1), V1 != 18.", age: 19, applies: true},
		{rule: "decision(permit) :- subject(age, V1), V1 != 18.", age: 18, applies: false},
		{rule: "decision(permit) :- subject(age, V1), V1 = 18.", age: 18, applies: true},
	}
	for _, tt := range tests {
		t.Run(tt.rule, func(t *testing.T) {
			r, err := asp.ParseRule(tt.rule)
			if err != nil {
				t.Fatal(err)
			}
			ru, err := RuleFromASP(r, "x")
			if err != nil {
				t.Fatal(err)
			}
			req := NewRequest().Set(Subject, "age", I(tt.age))
			if got := ru.Applies(req); got != tt.applies {
				t.Errorf("Applies(age=%d) = %v, want %v", tt.age, got, tt.applies)
			}
		})
	}
}

func TestCategoryPredicateRoundTrip(t *testing.T) {
	for _, cat := range Categories() {
		pred := categoryPredicate(cat)
		got, ok := categoryFromPredicate(pred)
		if !ok || got != cat {
			t.Errorf("round trip %s -> %s -> %v, %v", cat, pred, got, ok)
		}
	}
	if _, ok := categoryFromPredicate("weather"); ok {
		t.Error("weather is not a category predicate")
	}
	if got, ok := categoryFromPredicate("environment"); !ok || got != Environment {
		t.Error("long environment form not recognized")
	}
}

func TestCombiningAlgFromString(t *testing.T) {
	for _, alg := range []CombiningAlg{DenyOverrides, PermitOverrides, FirstApplicable} {
		got, err := CombiningAlgFromString(alg.String())
		if err != nil || got != alg {
			t.Errorf("round trip %v: %v, %v", alg, got, err)
		}
	}
	if _, err := CombiningAlgFromString("coin-flip"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if CombiningAlg(0).String() != "invalid-combining" {
		t.Error("invalid combining String")
	}
}

func TestStringersExhaustive(t *testing.T) {
	if Effect(0).String() != "InvalidEffect" {
		t.Error("invalid effect")
	}
	if Decision(0).String() != "InvalidDecision" {
		t.Error("invalid decision")
	}
	if DecisionIndeterminate.String() != "Indeterminate" {
		t.Error("indeterminate")
	}
	if MatchOp(0).String() != "?" {
		t.Error("invalid op")
	}
	for _, op := range []MatchOp{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq} {
		if op.String() == "?" {
			t.Errorf("op %d has no rendering", op)
		}
	}
	if PermitOverrides.String() != "permit-overrides" || FirstApplicable.String() != "first-applicable" {
		t.Error("combining strings")
	}
}

func TestConditionStringForms(t *testing.T) {
	m := Match{Subject, "a", OpEq, S("x")}
	var nilCond *Condition
	if nilCond.String() != "true" {
		t.Error("nil condition string")
	}
	empty := &Condition{}
	if empty.String() != "true" || !empty.Eval(NewRequest()) {
		t.Error("empty condition")
	}
	or := Condition{Or: []Condition{{Match: &m}, {Match: &m}}}
	if !strings.Contains(or.String(), " or ") {
		t.Errorf("or string = %q", or.String())
	}
	not := Condition{Not: &Condition{Match: &m}}
	if !strings.Contains(not.String(), "not (") {
		t.Errorf("not string = %q", not.String())
	}
}

func TestParsePolicyConditionForms(t *testing.T) {
	src := `
policy "p" first-applicable {
  rule "r" permit {
    condition subject.a = 1 or ( subject.b = 2 and not ( subject.c = 3 ) )
  }
}
`
	p, err := ParsePolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	cond := p.Rules[0].Condition
	tests := []struct {
		name string
		r    Request
		want bool
	}{
		{name: "first disjunct", r: NewRequest().Set(Subject, "a", I(1)), want: true},
		{name: "second disjunct", r: NewRequest().Set(Subject, "b", I(2)), want: true},
		{name: "negation blocks", r: NewRequest().Set(Subject, "b", I(2)).Set(Subject, "c", I(3)), want: false},
		{name: "nothing matches", r: NewRequest().Set(Subject, "z", I(9)), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := cond.Eval(tt.r); got != tt.want {
				t.Errorf("Eval = %v, want %v (cond %s)", got, tt.want, cond)
			}
		})
	}
}

func TestParsePolicyAllOps(t *testing.T) {
	src := `
policy "p" deny-overrides {
  target subject.a != x, subject.n <= 5, subject.n < 9, subject.m >= 2, subject.m > 1
  rule "r" deny { }
}
`
	p, err := ParsePolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Target) != 5 {
		t.Fatalf("target size = %d", len(p.Target))
	}
	r := NewRequest().
		Set(Subject, "a", S("y")).
		Set(Subject, "n", I(4)).
		Set(Subject, "m", I(2))
	if got := p.Evaluate(r); got != DecisionDeny {
		t.Errorf("Evaluate = %v", got)
	}
}

func TestPolicySetIndeterminate(t *testing.T) {
	ps := &PolicySet{
		ID:        "s",
		Combining: CombiningAlg(99),
		Policies: []*Policy{{
			ID: "p", Combining: FirstApplicable,
			Rules: []Rule{{ID: "r", Effect: Permit}},
		}},
	}
	if got := ps.Evaluate(NewRequest()); got != DecisionIndeterminate {
		t.Errorf("invalid combining = %v", got)
	}
	pol := &Policy{ID: "p", Combining: CombiningAlg(99), Rules: []Rule{{ID: "r", Effect: Permit}}}
	if got := pol.Evaluate(NewRequest()); got != DecisionIndeterminate {
		t.Errorf("invalid rule combining = %v", got)
	}
}

func TestMatchEvalTypeMismatchEquality(t *testing.T) {
	r := NewRequest().Set(Subject, "x", S("5"))
	eq := Match{Subject, "x", OpEq, I(5)}
	if eq.Eval(r) {
		t.Error("string '5' equals int 5")
	}
	neq := Match{Subject, "x", OpNeq, I(5)}
	if !neq.Eval(r) {
		t.Error("string '5' should be != int 5")
	}
}

func TestValueTermQuotedAndFromTerm(t *testing.T) {
	if _, err := valueFromTerm(asp.Variable{Name: "X"}); err == nil {
		t.Error("variable is not a value")
	}
	v, err := valueFromTerm(asp.Integer{Value: 3})
	if err != nil || !v.IsInt || v.Int != 3 {
		t.Errorf("int term: %v, %v", v, err)
	}
	if isIdentifier("") || isIdentifier("Hello") || isIdentifier("a b") || isIdentifier("9a") {
		t.Error("isIdentifier too lax")
	}
	if !isIdentifier("abc_1X") {
		t.Error("isIdentifier too strict")
	}
}
