package experiments

import (
	"fmt"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/apps/cav"
	"agenp/internal/apps/datashare"
	"agenp/internal/apps/federated"
	"agenp/internal/apps/resupply"
	"agenp/internal/asp"
	"agenp/internal/coalition"
	"agenp/internal/core"
	"agenp/internal/explain"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/quality"
	"agenp/internal/xacml"
)

// RunE7 reproduces the Section IV.A claim: learning curves of the
// symbolic learner versus shallow ML on the CAV policy task. The
// expected shape is the paper's — the ASG-based learner reaches high
// accuracy with an order of magnitude fewer examples.
func RunE7(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   Title("E7"),
		Columns: []string{"train size", "symbolic", "decision tree", "naive bayes", "majority"},
	}
	sizes := []int{5, 10, 20, 40, 80}
	testN := 250
	if opts.Quick {
		sizes = []int{5, 20}
		testN = 120
	}
	total := sizes[len(sizes)-1] + testN
	scenarios := cav.Generate(opts.seed(), total)
	test := scenarios[sizes[len(sizes)-1]:]
	testInst := cav.Instances(test)

	for _, n := range sizes {
		train := scenarios[:n]
		symAcc := -1.0
		learned, err := cav.Learn(train, ilasp.LearnOptions{Parallelism: opts.Parallelism})
		if err == nil {
			symAcc, err = learned.Accuracy(test)
			if err != nil {
				return nil, err
			}
		}
		trainInst := cav.Instances(train)
		treeAcc := mlbase.Accuracy(mlbase.TrainID3(trainInst, mlbase.TreeOptions{}), testInst)
		nbAcc := mlbase.Accuracy(mlbase.TrainNaiveBayes(trainInst), testInst)
		majAcc := mlbase.Accuracy(mlbase.TrainMajority(trainInst), testInst)
		t.AddRow(n, symAcc, treeAcc, nbAcc, majAcc)
	}
	t.Note("expected shape per the paper: the symbolic column dominates at small train sizes")
	return t, nil
}

// RunE8 measures learner and solver scalability (the paper's
// Performance Optimization challenge, Section III.B): learning latency
// against example count and hypothesis-space size, and the fast path
// versus the exhaustive search.
func RunE8(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   Title("E8"),
		Columns: []string{"workload", "size", "space", "checks", "time"},
	}
	sizes := []int{10, 20, 40, 80}
	if opts.Quick {
		sizes = []int{10, 20}
	}
	for _, n := range sizes {
		scenarios := cav.Generate(opts.seed(), n)
		start := time.Now()
		learned, err := cav.Learn(scenarios, ilasp.LearnOptions{Parallelism: opts.Parallelism})
		if err != nil {
			return nil, err
		}
		space, err := cav.Bias().Space()
		if err != nil {
			return nil, err
		}
		t.AddRow("cav learn (fast path)", n, len(space), learned.Result.Checks, time.Since(start))
	}
	// Exhaustive vs fast path on a small fixed task.
	small := cav.Generate(opts.seed()+1, 8)
	exTask := &ilasp.Task{
		Background: cav.Background(),
		Bias:       cav.Bias(),
		Examples:   cav.LearningExamples(small, 0),
	}
	start := time.Now()
	fast, err := exTask.LearnIndependent(ilasp.LearnOptions{MaxRules: 3, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	t.AddRow("fast path (8 examples)", 8, "-", fast.Checks, time.Since(start))
	if !opts.Quick {
		exTask2 := &ilasp.Task{
			Background: cav.Background(),
			Bias:       cav.Bias(),
			Examples:   cav.LearningExamples(small, 0),
		}
		start = time.Now()
		exact, err := exTask2.Learn(ilasp.LearnOptions{MaxRules: 2, MaxCost: fast.Cost, MaxChecks: 2_000_000, Parallelism: opts.Parallelism})
		if err != nil {
			t.AddRow("exhaustive (8 examples)", 8, "-", "budget exhausted", time.Since(start))
		} else {
			t.AddRow("exhaustive (8 examples)", 8, "-", exact.Checks, time.Since(start))
		}
	}
	// Solver scalability: graph coloring of growing cycles.
	cycles := []int{4, 6, 8}
	if opts.Quick {
		cycles = []int{4, 6}
	}
	for _, k := range cycles {
		prog := coloringProgram(k)
		start := time.Now()
		models, err := asp.Solve(prog, asp.SolveOptions{MaxModels: 0})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("solver: 3-color C%d", k), k, "-", len(models), time.Since(start))
	}
	return t, nil
}

func coloringProgram(n int) *asp.Program {
	src := "col(r). col(g). col(b).\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("node(n%d).\n", i)
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, (i+1)%n)
	}
	src += `
		{color(N, C)} :- node(N), col(C).
		colored(N) :- color(N, C).
		:- node(N), not colored(N).
		:- color(N, C1), color(N, C2), C1 != C2.
		:- edge(X, Y), color(X, C), color(Y, C).
	`
	p, err := asp.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// RunE9 exercises the Section V.A quality requirements on a deliberately
// flawed policy set: consistency, relevance, minimality, completeness,
// enforceability and risk.
func RunE9(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   Title("E9"),
		Columns: []string{"requirement", "finding"},
	}
	pol := &xacml.Policy{
		ID:        "flawed",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{ID: "permit-dba", Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
			{ID: "deny-minors", Effect: xacml.Deny,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "age", Op: xacml.OpLt, Value: xacml.I(18)}}},
			{ID: "permit-dba-dup", Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}}},
			{ID: "ghost-role", Effect: xacml.Deny,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("wizard")}}},
			{ID: "needs-sensor", Effect: xacml.Deny,
				Target: xacml.Target{{Category: xacml.Environment, Attr: "threat_level", Op: xacml.OpGt, Value: xacml.I(3)}}},
		},
	}
	domain := quality.NewDomain().
		Add(xacml.Subject, "role", xacml.S("dba"), xacml.S("dev"), xacml.S("guest")).
		Add(xacml.Subject, "age", xacml.I(15), xacml.I(30))
	rep := quality.Assess(pol, domain, quality.Options{})
	t.AddRow("consistency", fmt.Sprintf("consistent=%v, %d conflict(s) sampled (minor dba: permit-dba vs deny-minors)", rep.Consistent, len(rep.Conflicts)))
	t.AddRow("relevance", fmt.Sprintf("irrelevant rules: %v", rep.Irrelevant))
	t.AddRow("minimality", fmt.Sprintf("redundant rules: %v", rep.Redundant))
	t.AddRow("completeness", fmt.Sprintf("%.3f of the domain decided; %d uncovered sampled", rep.Completeness, len(rep.Uncovered)))

	enf := quality.CheckEnforceability(pol, quality.NewAttributeSet("subject.role", "subject.age"))
	t.AddRow("enforceability", fmt.Sprintf("enforceable=%v, missing=%v", enf.Enforceable(), enf.Missing))

	// Risk assessment discriminates between the policy with and without
	// its protective deny rule (paper: "a restrictive access control
	// policy may prevent ... risks that may result from the application
	// of a policy").
	minorRisk := quality.RiskFunc(func(r xacml.Request, d xacml.Decision) float64 {
		if d == xacml.DecisionPermit {
			if v, ok := r.Get(xacml.Subject, "age"); ok && v.Int < 18 {
				return 1 // permitting minors is the risk
			}
		}
		return 0
	})
	risk := quality.AssessRisk(pol, domain, minorRisk, 0)
	unguarded := *pol
	unguarded.Rules = append([]xacml.Rule{}, pol.Rules...)
	unguarded.Rules = append(unguarded.Rules[:1], unguarded.Rules[2:]...) // drop deny-minors
	riskWithout := quality.AssessRisk(&unguarded, domain, minorRisk, 0)
	t.AddRow("risk", fmt.Sprintf("mean risk %.3f with deny-minors, %.3f without it", risk, riskWithout))
	return t, nil
}

// RunE10 reproduces the Section V.B explainability artefacts: rule-level
// decision traces and the paper's loan-style counterfactual explanation.
func RunE10(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   Title("E10"),
		Columns: []string{"artefact", "content"},
	}
	pol := &xacml.Policy{
		ID:        "loan",
		Combining: xacml.FirstApplicable,
		Rules: []xacml.Rule{
			{ID: "permit-high-income", Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "income", Op: xacml.OpGeq, Value: xacml.I(45000)}}},
			{ID: "deny-low-income", Effect: xacml.Deny,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "income", Op: xacml.OpLt, Value: xacml.I(45000)}}},
		},
	}
	req := xacml.NewRequest().Set(xacml.Subject, "income", xacml.I(40000))
	trace := explain.Explain(pol, req)
	t.AddRow("decision", trace.Decision.String())
	for _, f := range trace.Fired {
		marker := ""
		if f.Decisive {
			marker = " (decisive)"
		}
		t.AddRow("fired rule", f.RuleID+marker)
	}
	domain := quality.NewDomain().
		Add(xacml.Subject, "income", xacml.I(40000), xacml.I(45000), xacml.I(50000))
	cfs := explain.Counterfactuals(pol, req, domain, explain.CounterfactualOptions{Want: xacml.DecisionPermit})
	for _, cf := range cfs {
		t.AddRow("counterfactual", cf.String())
	}
	t.Note(`paper's exemplar: "if your income had been $45,000, you would have been offered a loan"`)
	return t, nil
}

// RunE11 covers the Section IV.D/IV.E applications: learned data-sharing
// policies exchanged across a simulated coalition, and the federated
// model-fusion simulation with and without the learned gate policy.
func RunE11(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   Title("E11"),
		Columns: []string{"metric", "value"},
	}
	// Data sharing: learn the policy, then share generated policies.
	trainN, testN := 60, 200
	if opts.Quick {
		trainN, testN = 30, 80
	}
	offers := datashare.Generate(opts.seed(), trainN+testN)
	learned, err := datashare.Learn(offers[:trainN], ilasp.LearnOptions{Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	acc, err := learned.Accuracy(offers[trainN:])
	if err != nil {
		return nil, err
	}
	t.AddRow("datashare policy accuracy", acc)
	for _, r := range learned.Result.Hypothesis {
		t.AddRow("datashare learned rule", r.String())
	}

	// Coalition sharing: party A's generated policies flow to party B,
	// whose PCP rejects those invalid under its stricter context.
	imported, rejected, err := coalitionShareDemo()
	if err != nil {
		return nil, err
	}
	t.AddRow("coalition: policies adopted by partner", imported)
	t.AddRow("coalition: policies rejected by partner PCP", rejected)

	// Federated fusion.
	histN, futN := 40, 120
	if opts.Quick {
		histN, futN = 24, 60
	}
	history := federated.Generate(opts.seed()+1, histN)
	future := federated.Generate(opts.seed()+2, futN)
	gate, err := federated.Learn(history, ilasp.LearnOptions{Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	withPolicy, _, err := federated.Simulate(future, gate)
	if err != nil {
		return nil, err
	}
	acceptAll, _, err := federated.Simulate(future, federated.AcceptAll())
	if err != nil {
		return nil, err
	}
	oracle, _, err := federated.Simulate(future, federated.Oracle())
	if err != nil {
		return nil, err
	}
	t.AddRow("federated: final model quality, accept-all", acceptAll)
	t.AddRow("federated: final model quality, learned policy", withPolicy)
	t.AddRow("federated: final model quality, oracle", oracle)
	return t, nil
}

func coalitionShareDemo() (imported, rejected int, err error) {
	bus := coalition.NewBus()
	defer func() { _ = bus.Close() }()

	mkAMS := func(name, ctxSrc string) (*agenp.AMS, error) {
		model, err := core.ParseGPM(datashare.GrammarSource)
		if err != nil {
			return nil, err
		}
		ctx, err := asp.Parse(ctxSrc)
		if err != nil {
			return nil, err
		}
		return agenp.New(agenp.Config{
			Name:    name,
			Model:   model,
			Context: &agenp.StaticContext{Program: ctx},
			Interpreter: &agenp.TokenInterpreter{
				PermitVerbs: []string{"share"},
				DenyVerbs:   []string{"withhold"},
			},
		})
	}
	a, err := mkAMS("party-a", "trust(high). quality(5).")
	if err != nil {
		return 0, 0, err
	}
	b, err := mkAMS("party-b", "trust(medium). quality(5).")
	if err != nil {
		return 0, 0, err
	}
	if _, _, err := a.Regenerate(); err != nil {
		return 0, 0, err
	}
	pa, err := coalition.Join(a, bus)
	if err != nil {
		return 0, 0, err
	}
	defer pa.Leave()
	pb, err := coalition.Join(b, bus)
	if err != nil {
		return 0, 0, err
	}
	defer pb.Leave()
	if err := pa.SharePolicies(); err != nil {
		return 0, 0, err
	}
	total := a.Repository().Len()
	deadline := time.Now().Add(3 * time.Second)
	for {
		i, r := pb.ImportStats()
		if i+r == total || time.Now().After(deadline) {
			return i, r, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// RunE12 reproduces the Section IV.B shape: resupply policy accuracy as
// a function of completed missions ("the coalition is able to learn from
// previous experience").
func RunE12(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   Title("E12"),
		Columns: []string{"missions", "symbolic", "decision tree", "learned rules"},
	}
	sizes := []int{4, 8, 16, 32, 64}
	testN := 250
	if opts.Quick {
		sizes = []int{4, 16}
		testN = 100
	}
	all := resupply.Generate(opts.seed(), sizes[len(sizes)-1]+testN)
	test := all[sizes[len(sizes)-1]:]
	testInst := resupply.Instances(test)
	for _, n := range sizes {
		train := all[:n]
		learned, err := resupply.Learn(train, ilasp.LearnOptions{Parallelism: opts.Parallelism})
		symAcc := -1.0
		nRules := 0
		if err == nil {
			symAcc, err = learned.Accuracy(test)
			if err != nil {
				return nil, err
			}
			nRules = len(learned.Result.Hypothesis)
		}
		tree := mlbase.TrainID3(resupply.Instances(train), mlbase.TreeOptions{})
		t.AddRow(n, symAcc, mlbase.Accuracy(tree, testInst), nRules)
	}
	t.Note("accuracy grows with mission count; the symbolic learner converges first")
	return t, nil
}
