// Package experiments implements the reproduction harness: one runner
// per experiment of DESIGN.md (E1–E13), each regenerating a table or
// figure-equivalent of the paper. The cmd/experiments binary and the
// root-level benchmarks drive these runners; EXPERIMENTS.md records the
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table is one regenerated result: the rows the paper's figure/table
// reports (or the closest structured equivalent for prose claims).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks datasets and sweeps for fast CI/bench runs.
	Quick bool
	// Seed drives every generator.
	Seed uint64
	// Parallelism is forwarded to every learner invocation
	// (ilasp.LearnOptions.Parallelism: 0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20260704
	}
	return o.Seed
}

// Runner executes one experiment.
type Runner func(Options) (*Table, error)

// registry returns the experiment table. (A function rather than a
// package variable: the runners call Title, which would otherwise form
// an initialization cycle.)
func registry() map[string]struct {
	title  string
	runner Runner
} {
	return map[string]struct {
		title  string
		runner Runner
	}{
		"E1":  {title: "Fig.1 workflow: initial ASG + examples -> ILASP -> learned ASG", runner: RunE1},
		"E2":  {title: "Fig.2 architecture: PReP/PDP/PEP/PAdaP autonomic loop", runner: RunE2},
		"E3":  {title: "Fig.3a: correctly learned XACML policies from clean examples", runner: RunE3},
		"E4":  {title: "Fig.3b-1: overfitting without background knowledge", runner: RunE4},
		"E5":  {title: "Fig.3b-2: unsafe generalization without target restrictions", runner: RunE5},
		"E6":  {title: "Fig.3b-3: noisy examples and low-quality filtering", runner: RunE6},
		"E7":  {title: "IV.A claim: symbolic vs shallow-ML learning curves (CAV)", runner: RunE7},
		"E8":  {title: "III.B claim: learner/solver scalability", runner: RunE8},
		"E9":  {title: "V.A: policy quality assessment metrics", runner: RunE9},
		"E10": {title: "V.B: decision traces and counterfactual explanations", runner: RunE10},
		"E11": {title: "IV.D/IV.E: data sharing and federated-learning policies", runner: RunE11},
		"E12": {title: "IV.B: resupply accuracy vs completed missions", runner: RunE12},
		"E13": {title: "III.A cost model: PDP throughput, interpreter vs compiled engine", runner: RunE13},
	}
}

// IDs lists the experiment ids in order.
func IDs() []string {
	reg := registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// Title returns an experiment's title.
func Title(id string) string { return registry()[id].title }

// Run executes one experiment by id.
func Run(id string, opts Options) (*Table, error) {
	e, ok := registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.runner(opts)
}

// RunAll executes every experiment in order.
func RunAll(opts Options) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, opts)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
