package experiments

import (
	"fmt"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/engine"
	"agenp/internal/policy"
	"agenp/internal/xacml"
)

// RunE13 measures the compile-once, serve-many refactor: decision
// throughput of the seed PDP path (copy the repository and re-interpret
// every policy string per request) against the compiled DecisionEngine,
// single-request and batched, on a 100-policy repository. The paper's
// cost model (Section III.A) regenerates policies rarely but enforces
// them on every request; the engine restores that asymmetry.
func RunE13(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   Title("E13"),
		Columns: []string{"path", "requests", "total", "ns/request", "speedup"},
	}
	const nPolicies = 100
	n := 200_000
	if opts.Quick {
		n = 20_000
	}

	repo := policy.NewRepository()
	verbs := []string{"permit", "deny"}
	for i := 0; i < nPolicies; i++ {
		repo.Put(policy.Policy{
			ID:     fmt.Sprintf("p%03d", i),
			Tokens: []string{verbs[i%2], "do", fmt.Sprintf("task-%03d", i/2)},
		})
	}
	var reqs []xacml.Request
	for i := 0; i < nPolicies/2; i++ {
		reqs = append(reqs, xacml.NewRequest().
			Set(xacml.Action, "id", xacml.S(fmt.Sprintf("do task-%03d", i))))
	}
	reqs = append(reqs, xacml.NewRequest().Set(xacml.Action, "id", xacml.S("do nothing")))

	ti := &agenp.TokenInterpreter{}

	// Seed path: the pre-engine PDP copied the repository and scanned
	// every policy on every request.
	start := time.Now()
	for i := 0; i < n; i++ {
		pols := repo.List()
		ti.Decide(pols, reqs[i%len(reqs)])
	}
	legacy := time.Since(start)
	t.AddRow("interpreter+List (seed)", n, legacy, legacy.Nanoseconds()/int64(n), "1.0x")

	eng := engine.New(repo, ti.CompileDecider)
	if _, err := eng.Refresh(); err != nil {
		return nil, err
	}

	// Differential gate: both paths must agree on every request before
	// any timing is reported.
	for _, r := range reqs {
		wantD, wantID := ti.Decide(repo.List(), r)
		gotD, gotID, err := eng.Decide(r)
		if err != nil {
			return nil, err
		}
		if gotD != wantD || gotID != wantID {
			return nil, fmt.Errorf("E13: engine diverges on %s: %v %q vs %v %q",
				r, gotD, gotID, wantD, wantID)
		}
	}

	start = time.Now()
	for i := 0; i < n; i++ {
		if _, _, err := eng.Decide(reqs[i%len(reqs)]); err != nil {
			return nil, err
		}
	}
	single := time.Since(start)
	t.AddRow("engine single", n, single, single.Nanoseconds()/int64(n),
		fmt.Sprintf("%.1fx", float64(legacy)/float64(single)))

	const batch = 64
	buf := make([]xacml.Request, batch)
	var out []engine.Result
	start = time.Now()
	for i := 0; i < n; i += batch {
		k := batch
		if rem := n - i; rem < k {
			k = rem
		}
		for j := 0; j < k; j++ {
			buf[j] = reqs[(i+j)%len(reqs)]
		}
		var err error
		out, err = eng.DecideBatch(buf[:k], out[:0])
		if err != nil {
			return nil, err
		}
	}
	batched := time.Since(start)
	t.AddRow("engine batch(64)", n, batched, batched.Nanoseconds()/int64(n),
		fmt.Sprintf("%.1fx", float64(legacy)/float64(batched)))

	speedup := float64(legacy) / float64(single)
	t.Note("policies=%d, engine generation=%d, single-request speedup %.1fx (target >= 5x)",
		nPolicies, eng.Generation(), speedup)
	if speedup < 5 {
		t.Note("WARNING: below the 5x tentpole target")
	}
	return t, nil
}
