package experiments

import (
	"time"

	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/workload"
	"agenp/internal/xacml"
)

// RunE3 reproduces Figure 3a: the learner recovers the ground-truth
// XACML policies from a clean request/response dataset, rendered back in
// XACML form like the figure.
func RunE3(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   Title("E3"),
		Columns: []string{"train size", "learned rules", "domain accuracy", "learn time"},
	}
	sizes := []int{10, 20, 40, 80}
	if opts.Quick {
		sizes = []int{10, 40}
	}
	ds := workload.GenXACML(opts.seed(), sizes[len(sizes)-1])
	domain := fullDomainRequests(ds.Schema)
	gt := workload.GroundTruthPolicy()

	var lastLearned *xacml.Policy
	for _, n := range sizes {
		task := &ilasp.Task{
			Bias:     workload.AccessBias(ds.Schema, nil),
			Examples: workload.LearningExamples(ds.Examples[:n], 0),
		}
		start := time.Now()
		res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 4, Parallelism: opts.Parallelism})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		learned, err := xacml.PolicyFromHypothesis(res.Hypothesis, "learned")
		if err != nil {
			return nil, err
		}
		lastLearned = learned
		acc := domainAgreement(learned, gt, domain)
		t.AddRow(n, len(res.Hypothesis), acc, elapsed)
	}
	if lastLearned != nil {
		t.Note("final learned policy (cf. Fig. 3a):")
		for _, ru := range lastLearned.Rules {
			t.Note("  %s", ru.String())
		}
	}
	return t, nil
}

// RunE4 reproduces Figure 3b Policy 1 (overfitting): on a biased sample
// where permitted roles happen to cluster in an age band, the minimal
// hypothesis without background knowledge is an age-interval policy that
// fails to transfer; adding role-ontology background knowledge yields
// the role-based policy, exactly the paper's mitigation.
func RunE4(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   Title("E4"),
		Columns: []string{"variant", "learned policy", "train acc", "transfer acc"},
	}
	// Ground truth: senior roles (dba, analyst) are permitted.
	permittedRole := map[string]bool{"dba": true, "analyst": true}
	mkReq := func(role string, age int) xacml.Request {
		return xacml.NewRequest().
			Set(xacml.Subject, "role", xacml.S(role)).
			Set(xacml.Subject, "age", xacml.I(age))
	}
	label := func(r xacml.Request) xacml.Decision {
		role, _ := r.Get(xacml.Subject, "role")
		if permittedRole[role.Str] {
			return xacml.DecisionPermit
		}
		return xacml.DecisionDeny
	}
	// Biased training population: permitted roles aged 25–45, others
	// either minors or seniors (so a single threshold cannot fit, but an
	// age interval can).
	var train []workload.LabeledRequest
	for _, c := range []struct {
		role string
		age  int
	}{
		{role: "dba", age: 25}, {role: "dba", age: 40}, {role: "analyst", age: 30},
		{role: "analyst", age: 45}, {role: "guest", age: 16}, {role: "guest", age: 60},
		{role: "clerk", age: 20}, {role: "clerk", age: 70},
	} {
		r := mkReq(c.role, c.age)
		train = append(train, workload.LabeledRequest{Request: r, Decision: label(r)})
	}
	// Transfer population: ages no longer correlate with role.
	var transfer []workload.LabeledRequest
	for _, c := range []struct {
		role string
		age  int
	}{
		{role: "dba", age: 55}, {role: "dba", age: 20}, {role: "analyst", age: 60},
		{role: "guest", age: 30}, {role: "clerk", age: 35}, {role: "analyst", age: 18},
	} {
		r := mkReq(c.role, c.age)
		transfer = append(transfer, workload.LabeledRequest{Request: r, Decision: label(r)})
	}

	bias := ilasp.Bias{
		Head: []ilasp.ModeAtom{ilasp.M("decision", ilasp.Const("effect"))},
		Body: []ilasp.ModeAtom{
			ilasp.M("subject", ilasp.Const("ageattr"), ilasp.Var("num")),
		},
		Constants: map[string][]asp.Term{
			"effect":  {asp.Constant{Name: "permit"}, asp.Constant{Name: "deny"}},
			"ageattr": {asp.Constant{Name: "age"}},
		},
		Comparisons: []ilasp.CmpSpec{{
			Type:   "num",
			Ops:    []asp.CmpOp{asp.CmpGeq, asp.CmpLt},
			Values: []asp.Term{asp.Integer{Value: 25}, asp.Integer{Value: 50}},
		}},
		MaxVars:     1,
		MaxBody:     3,
		RequireBody: true,
	}

	run := func(variant string, b ilasp.Bias, background *asp.Program) error {
		task := &ilasp.Task{
			Background: background,
			Bias:       b,
			Examples:   workload.LearningExamples(train, 0),
		}
		res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 3, Parallelism: opts.Parallelism})
		if err != nil {
			return err
		}
		rules := make([]string, len(res.Hypothesis))
		for i, r := range res.Hypothesis {
			rules[i] = r.String()
		}
		trainAcc := hypothesisAccuracy(res.Hypothesis, background, train)
		transferAcc := hypothesisAccuracy(res.Hypothesis, background, transfer)
		t.AddRow(variant, joinRules(rules), trainAcc, transferAcc)
		return nil
	}

	// Variant 1: no background knowledge — the age-interval policy wins
	// on cost and overfits the sample (Fig. 3b Policy 1).
	if err := run("no background", bias, nil); err != nil {
		return nil, err
	}
	// Variant 2: role-ontology background knowledge ("prior knowledge
	// about the role of a user") plus a senior-role mode.
	withRoles := bias
	withRoles.Body = append([]ilasp.ModeAtom{
		ilasp.M("subject", ilasp.Const("roleattr"), ilasp.Var("role")),
		ilasp.M("senior", ilasp.Var("role")),
	}, bias.Body...)
	withRoles.Constants["roleattr"] = []asp.Term{asp.Constant{Name: "role"}}
	withRoles.MaxVars = 2
	withRoles.AllowNegation = true
	background, err := asp.Parse("senior(dba). senior(analyst).")
	if err != nil {
		return nil, err
	}
	if err := run("with role background", withRoles, background); err != nil {
		return nil, err
	}
	t.Note("overfitted variant matches training but drops on transfer; background-informed variant generalizes")
	return t, nil
}

// RunE5 reproduces Figure 3b Policy 2 (unsafe generalization): without
// target-based restrictions the learner emits a permit rule whose
// subject is not well-specified; restricting the hypothesis space to
// rules that name a subject attribute yields the safe policy.
func RunE5(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   Title("E5"),
		Columns: []string{"variant", "learned policy", "unsafe grants on test"},
	}
	mkReq := func(role, action, resource string) xacml.Request {
		return xacml.NewRequest().
			Set(xacml.Subject, "role", xacml.S(role)).
			Set(xacml.Action, "id", xacml.S(action)).
			Set(xacml.Resource, "type", xacml.S(resource))
	}
	// Ground truth: only analysts may read records.
	label := func(r xacml.Request) xacml.Decision {
		role, _ := r.Get(xacml.Subject, "role")
		act, _ := r.Get(xacml.Action, "id")
		res, _ := r.Get(xacml.Resource, "type")
		if role.Str == "analyst" && act.Str == "read" && res.Str == "record" {
			return xacml.DecisionPermit
		}
		return xacml.DecisionNotApplicable
	}
	// Training sample: every read-record request happens to come from an
	// analyst, so the subject is never needed to fit the data.
	var train []workload.LabeledRequest
	for _, c := range [][3]string{
		{"analyst", "read", "record"},
		{"analyst", "read", "record"},
		{"analyst", "write", "log"},
		{"guest", "write", "record"},
		{"guest", "read", "log"},
	} {
		r := mkReq(c[0], c[1], c[2])
		train = append(train, workload.LabeledRequest{Request: r, Decision: label(r)})
	}
	// Test set includes non-analysts reading records: the unsafe policy
	// grants them access.
	var unsafeProbes []xacml.Request
	for _, role := range []string{"guest", "clerk", "contractor"} {
		unsafeProbes = append(unsafeProbes, mkReq(role, "read", "record"))
	}

	schema := workload.XACMLSchema{
		Roles:     []string{"analyst", "guest"},
		Resources: []string{"record", "log"},
		Actions:   []string{"read", "write"},
	}
	bias := workload.AccessBias(schema, nil)
	run := func(variant string, requireSubject bool) error {
		space, err := bias.Space()
		if err != nil {
			return err
		}
		if requireSubject {
			space = filterSpace(space, func(c ilasp.Candidate) bool {
				if c.Rule.Head != nil && c.Rule.Head.String() == "decision(permit)" {
					return ruleMentionsPredicate(c.Rule, "subject")
				}
				return true
			})
		}
		task := &ilasp.Task{
			Space:    space,
			Examples: workload.LearningExamples(train, 0),
		}
		res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 2, Parallelism: opts.Parallelism})
		if err != nil {
			return err
		}
		learned, err := xacml.PolicyFromHypothesis(res.Hypothesis, "learned")
		if err != nil {
			return err
		}
		unsafe := 0
		for _, r := range unsafeProbes {
			if learned.Evaluate(r) == xacml.DecisionPermit {
				unsafe++
			}
		}
		rules := make([]string, len(res.Hypothesis))
		for i, ru := range res.Hypothesis {
			rules[i] = ru.String()
		}
		t.AddRow(variant, joinRules(rules), itoa(unsafe)+"/"+itoa(len(unsafeProbes)))
		return nil
	}
	if err := run("unrestricted", false); err != nil {
		return nil, err
	}
	if err := run("target-based restriction", true); err != nil {
		return nil, err
	}
	t.Note("the unrestricted permit rule omits the subject (Fig. 3b Policy 2); the restriction forces a well-specified target")
	return t, nil
}

// RunE6 reproduces Figure 3b Policy 3 (noisy examples): with NotApplicable
// and flipped responses injected, exact learning fails or degrades;
// noise-tolerant learning absorbs some damage; filtering low-quality
// examples first restores the correct policy.
func RunE6(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   Title("E6"),
		Columns: []string{"variant", "examples", "status", "domain accuracy"},
	}
	n := 80
	if opts.Quick {
		n = 40
	}
	// E6 uses a *complete* ground truth (every request decided by role,
	// first-applicable) so that injected NotApplicable responses are
	// genuinely "irrelevant responses" in the paper's sense, not
	// legitimate labels.
	gt := e6Policy()
	schema := workload.DefaultSchema()
	domain := fullDomainRequests(schema)

	clean := workload.GenXACMLWith(opts.seed(), n, schema, gt)
	noisy := workload.GenXACMLWith(opts.seed(), n, schema, gt)
	corrupted := workload.InjectNoise(noisy, 0.15, opts.seed()+1)

	type variant struct {
		name     string
		examples []workload.LabeledRequest
		noiseOpt bool
		weight   int
	}
	variants := []variant{
		{name: "clean, exact", examples: clean.Examples},
		{name: "noisy, exact", examples: noisy.Examples},
		{name: "noisy, noise-tolerant", examples: noisy.Examples, noiseOpt: true, weight: 10},
		{name: "noisy, filtered first", examples: workload.FilterLowQuality(noisy.Examples), noiseOpt: true, weight: 10},
	}
	for _, v := range variants {
		task := &ilasp.Task{
			Bias:     workload.AccessBias(schema, nil),
			Examples: workload.LearningExamples(v.examples, v.weight),
		}
		res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 4, Noise: v.noiseOpt, Parallelism: opts.Parallelism})
		if err != nil {
			t.AddRow(v.name, len(v.examples), "no consistent hypothesis", "-")
			continue
		}
		// Score the hypothesis by ASP evaluation over the whole domain
		// (noisy hypotheses need not render as clean XACML rules).
		labelled := make([]workload.LabeledRequest, len(domain))
		for i, r := range domain {
			labelled[i] = workload.LabeledRequest{Request: r, Decision: gt.Evaluate(r)}
		}
		acc := hypothesisAccuracy(res.Hypothesis, nil, labelled)
		t.AddRow(v.name, len(v.examples), "learned "+itoa(len(res.Hypothesis))+" rules", acc)
	}
	t.Note("%d of %d examples were corrupted (flips + NotApplicable)", len(corrupted), n)
	return t, nil
}

// e6Policy partitions the request space by role: seniors permitted,
// juniors denied, no NotApplicable region.
func e6Policy() *xacml.Policy {
	roleIs := func(role string) xacml.Target {
		return xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S(role)}}
	}
	return &xacml.Policy{
		ID:        "e6-ground-truth",
		Combining: xacml.FirstApplicable,
		Rules: []xacml.Rule{
			{ID: "permit-dba", Effect: xacml.Permit, Target: roleIs("dba")},
			{ID: "permit-analyst", Effect: xacml.Permit, Target: roleIs("analyst")},
			{ID: "deny-guest", Effect: xacml.Deny, Target: roleIs("guest")},
			{ID: "deny-dev", Effect: xacml.Deny, Target: roleIs("dev")},
		},
	}
}

// --- helpers ---

func fullDomainRequests(schema workload.XACMLSchema) []xacml.Request {
	var out []xacml.Request
	for _, role := range schema.Roles {
		for _, age := range schema.Ages {
			for _, res := range schema.Resources {
				for _, act := range schema.Actions {
					r := xacml.NewRequest().
						Set(xacml.Subject, "role", xacml.S(role)).
						Set(xacml.Resource, "type", xacml.S(res)).
						Set(xacml.Action, "id", xacml.S(act))
					if len(schema.Ages) > 0 {
						r.Set(xacml.Subject, "age", xacml.I(age))
					}
					out = append(out, r)
				}
			}
			if len(schema.Ages) == 0 {
				break
			}
		}
	}
	return out
}

func domainAgreement(a, b *xacml.Policy, domain []xacml.Request) float64 {
	if len(domain) == 0 {
		return 0
	}
	same := 0
	for _, r := range domain {
		if a.Evaluate(r) == b.Evaluate(r) {
			same++
		}
	}
	return float64(same) / float64(len(domain))
}

// hypothesisAccuracy evaluates learned decision rules directly via ASP
// one-step evaluation against each labelled request.
func hypothesisAccuracy(rules []asp.Rule, background *asp.Program, test []workload.LabeledRequest) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for _, e := range test {
		prog := asp.NewProgram()
		if background != nil {
			prog.Extend(background)
		}
		prog.Extend(xacml.RequestFacts(e.Request))
		models, err := asp.Solve(prog, asp.SolveOptions{MaxModels: 1})
		if err != nil || len(models) == 0 {
			continue
		}
		permit, deny := false, false
		for _, r := range rules {
			heads, err := asp.EvalRule(r, models[0])
			if err != nil {
				continue
			}
			for _, h := range heads {
				if h.String() == "decision(permit)" {
					permit = true
				}
				if h.String() == "decision(deny)" {
					deny = true
				}
			}
		}
		var got xacml.Decision
		switch {
		case deny:
			got = xacml.DecisionDeny
		case permit:
			got = xacml.DecisionPermit
		default:
			got = xacml.DecisionNotApplicable
		}
		if got == e.Decision {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}

func filterSpace(space []ilasp.Candidate, keep func(ilasp.Candidate) bool) []ilasp.Candidate {
	var out []ilasp.Candidate
	for _, c := range space {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

func ruleMentionsPredicate(r asp.Rule, pred string) bool {
	for _, l := range r.Body {
		if !l.IsCmp && l.Atom.Predicate == pred {
			return true
		}
	}
	return false
}
