package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("got %d experiments, want 13", len(ids))
	}
	if ids[0] != "E1" || ids[12] != "E13" {
		t.Errorf("ordering = %v", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", Options{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 0.5)
	tb.AddRow("long-value", "x")
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "long-value", "0.500", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// runQuick executes an experiment in quick mode and sanity-checks the
// table.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	tb, err := Run(id, Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tb
}

func TestRunE1(t *testing.T) {
	tb := runQuick(t, "E1")
	s := tb.String()
	if !strings.Contains(s, "correctly rejected") {
		t.Errorf("E1 probe failed:\n%s", s)
	}
}

func TestRunE2(t *testing.T) {
	tb := runQuick(t, "E2")
	s := tb.String()
	if strings.Contains(s, "WARNING") {
		t.Errorf("E2 reported warnings:\n%s", s)
	}
	if !strings.Contains(s, "after PAdaP adaptation") {
		t.Errorf("E2 missing adaptation phase:\n%s", s)
	}
}

func TestRunE3(t *testing.T) {
	tb := runQuick(t, "E3")
	// The largest training size must reach full domain agreement.
	last := tb.Rows[len(tb.Rows)-1]
	if last[2] != "1.000" {
		t.Errorf("E3 final accuracy = %s, want 1.000\n%s", last[2], tb)
	}
}

func TestRunE4(t *testing.T) {
	tb := runQuick(t, "E4")
	if len(tb.Rows) != 2 {
		t.Fatalf("E4 rows = %d", len(tb.Rows))
	}
	noBg, withBg := tb.Rows[0], tb.Rows[1]
	// Both fit the training sample.
	if noBg[2] != "1.000" || withBg[2] != "1.000" {
		t.Errorf("train accuracies: %s vs %s\n%s", noBg[2], withBg[2], tb)
	}
	// Only the background-informed variant transfers.
	if withBg[3] != "1.000" {
		t.Errorf("background variant transfer = %s\n%s", withBg[3], tb)
	}
	if noBg[3] >= withBg[3] {
		t.Errorf("overfitted variant should transfer worse: %s vs %s\n%s", noBg[3], withBg[3], tb)
	}
	if !strings.Contains(noBg[1], "age") {
		t.Errorf("overfitted policy should be age-based: %s", noBg[1])
	}
	if !strings.Contains(withBg[1], "senior") {
		t.Errorf("informed policy should be role-based: %s", withBg[1])
	}
}

func TestRunE5(t *testing.T) {
	tb := runQuick(t, "E5")
	unrestricted, restricted := tb.Rows[0], tb.Rows[1]
	if unrestricted[2] != "3/3" {
		t.Errorf("unrestricted unsafe grants = %s, want 3/3\n%s", unrestricted[2], tb)
	}
	if restricted[2] != "0/3" {
		t.Errorf("restricted unsafe grants = %s, want 0/3\n%s", restricted[2], tb)
	}
	if !strings.Contains(restricted[1], "subject") {
		t.Errorf("restricted policy should mention the subject: %s", restricted[1])
	}
}

func TestRunE6(t *testing.T) {
	tb := runQuick(t, "E6")
	if len(tb.Rows) != 4 {
		t.Fatalf("E6 rows = %d", len(tb.Rows))
	}
	clean := tb.Rows[0]
	filtered := tb.Rows[3]
	if clean[3] != "1.000" {
		t.Errorf("clean accuracy = %s\n%s", clean[3], tb)
	}
	if filtered[3] != "1.000" {
		t.Errorf("filtered accuracy = %s, want recovery to 1.000\n%s", filtered[3], tb)
	}
}

func TestRunE7(t *testing.T) {
	tb := runQuick(t, "E7")
	// At modest training sizes (the larger quick row) the symbolic
	// learner dominates; at the very smallest everything is noisy.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] <= last[2] {
		t.Errorf("symbolic %s should beat tree %s at %s examples\n%s", last[1], last[2], last[0], tb)
	}
}

func TestRunE8(t *testing.T) {
	tb := runQuick(t, "E8")
	if len(tb.Rows) < 4 {
		t.Errorf("E8 rows = %d\n%s", len(tb.Rows), tb)
	}
}

func TestRunE9(t *testing.T) {
	tb := runQuick(t, "E9")
	s := tb.String()
	for _, want := range []string{"consistent=false", "ghost-role", "permit-dba-dup", "environment.threat_level"} {
		if !strings.Contains(s, want) {
			t.Errorf("E9 missing %q:\n%s", want, s)
		}
	}
}

func TestRunE10(t *testing.T) {
	tb := runQuick(t, "E10")
	s := tb.String()
	if !strings.Contains(s, "deny-low-income (decisive)") {
		t.Errorf("E10 trace missing decisive rule:\n%s", s)
	}
	if !strings.Contains(s, "subject.income = 45000 then Permit") {
		t.Errorf("E10 counterfactual missing:\n%s", s)
	}
}

func TestRunE11(t *testing.T) {
	tb := runQuick(t, "E11")
	s := tb.String()
	if !strings.Contains(s, "datashare policy accuracy") {
		t.Errorf("E11 missing accuracy row:\n%s", s)
	}
	// Federated: learned policy beats accept-all.
	var acceptAll, withPolicy string
	for _, row := range tb.Rows {
		switch row[0] {
		case "federated: final model quality, accept-all":
			acceptAll = row[1]
		case "federated: final model quality, learned policy":
			withPolicy = row[1]
		}
	}
	if acceptAll == "" || withPolicy == "" {
		t.Fatalf("missing federated rows:\n%s", s)
	}
	if !(parseF(t, withPolicy) > parseF(t, acceptAll)) {
		t.Errorf("learned gate %s should beat accept-all %s", withPolicy, acceptAll)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestRunE12(t *testing.T) {
	tb := runQuick(t, "E12")
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if last[1] < first[1] {
		t.Errorf("accuracy should not fall with more missions: %s -> %s\n%s", first[1], last[1], tb)
	}
}

func TestRunE13(t *testing.T) {
	tb := runQuick(t, "E13")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows:\n%s", tb)
	}
	// The differential gate ran (a divergence is an error, not a row);
	// the compiled paths must beat the seed path. The 5x target is not
	// asserted here — quick mode on a loaded CI machine is noisy; the
	// benchmark guard owns that bound.
	seed := parseF(t, tb.Rows[0][3])
	for _, row := range tb.Rows[1:] {
		if got := parseF(t, row[3]); got >= seed {
			t.Errorf("%s: %v ns/request did not beat the seed path %v\n%s", row[0], got, seed, tb)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in non-short mode only")
	}
	tables, err := RunAll(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Errorf("got %d tables", len(tables))
	}
}
