package experiments

import (
	"strings"
	"time"

	"agenp/internal/agenp"
	"agenp/internal/apps/cav"
	"agenp/internal/asg"
	"agenp/internal/asglearn"
	"agenp/internal/asp"
	"agenp/internal/core"
	"agenp/internal/ilasp"
	"agenp/internal/workload"
	"agenp/internal/xacml"
)

// RunE1 reproduces the Figure 1 workflow: an initial generative policy
// model (CAV grammar, syntax only), context-dependent policy examples,
// the ILASP-based ASG learner, and the resulting learned GPM.
func RunE1(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   Title("E1"),
		Columns: []string{"stage", "detail"},
	}
	initial, err := asg.ParseASG(cav.LearnableGrammarSource)
	if err != nil {
		return nil, err
	}
	space, err := cav.HypothesisSpace()
	if err != nil {
		return nil, err
	}

	// Context-dependent examples of valid/invalid policies, as produced
	// by monitoring in the architecture.
	n := 24
	if opts.Quick {
		n = 12
	}
	scenarios := cav.Generate(opts.seed(), n)
	examples := make([]asglearn.Example, 0, 2*len(scenarios))
	for i, s := range scenarios {
		ctx := s.EnvContext()
		ctx.Extend(cav.Background())
		examples = append(examples, asglearn.Example{
			ID:       "acc" + itoa(i),
			Tokens:   []string{"accept", s.Task},
			Context:  ctx,
			Positive: s.Accept,
		})
	}

	task := &asglearn.Task{Initial: initial, Space: space, Examples: examples}
	start := time.Now()
	res, err := task.Learn(ilasp.LearnOptions{MaxRules: 2, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	t.AddRow("initial GPM", "CAV policy grammar, no semantic conditions")
	t.AddRow("examples", itoa(len(examples))+" context-dependent policy labels")
	t.AddRow("hypothesis space", itoa(len(space))+" candidate annotation rules")
	for _, h := range res.Hypothesis {
		t.AddRow("learned rule", h.String())
	}
	t.AddRow("coverage", itoa(res.Covered)+"/"+itoa(res.Total))
	t.AddRow("membership checks", itoa(res.Checks))
	t.AddRow("learning time", elapsed)

	// Verify the learned GPM behaves per the ground truth on a probe.
	rainy := cav.Scenario{Weather: "rain", Task: "overtake", LOA: 5, RegionMin: 1}
	ctx := rainy.EnvContext()
	ctx.Extend(cav.Background())
	ok, err := res.Grammar.WithContext(ctx).Accepts([]string{"accept", "overtake"}, asg.AcceptOptions{})
	if err != nil {
		return nil, err
	}
	t.AddRow("probe accept-overtake-in-rain", boolStr(!ok, "correctly rejected", "WRONGLY accepted"))
	return t, nil
}

// RunE2 drives the Figure 2 architecture end to end on a live AMS: the
// PReP generates policies for the context, the PDP/PEP serve and monitor
// requests, violations accumulate, the PAdaP evolves the model, and the
// repository is regenerated.
func RunE2(opts Options) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   Title("E2"),
		Columns: []string{"phase", "policies", "model version", "decisions", "violations", "adaptations"},
	}
	model, err := core.ParseGPM(cav.LearnableGrammarSource)
	if err != nil {
		return nil, err
	}
	space, err := cav.HypothesisSpace()
	if err != nil {
		return nil, err
	}
	rainyEnv := cav.Scenario{Weather: "rain", LOA: 5, RegionMin: 1}
	ctx := rainyEnv.EnvContext()
	ctx.Extend(cav.Background())

	// The effector flags execution of risky tasks in the rainy context
	// as violations — the monitoring signal of the architecture.
	ams, err := agenp.New(agenp.Config{
		Name:    "cav-ams",
		Model:   model,
		Space:   space,
		Context: &agenp.StaticContext{Program: ctx},
		Interpreter: &agenp.TokenInterpreter{
			PermitVerbs: []string{"accept"},
			DenyVerbs:   []string{"reject"},
		},
		Effector: agenp.EffectorFunc(func(req xacml.Request, d xacml.Decision) (bool, error) {
			task, _ := req.Get(xacml.Action, "id")
			return d == xacml.DecisionPermit && cav.RiskyTasks[task.Str], nil
		}),
		AdaptThreshold: 3,
	})
	if err != nil {
		return nil, err
	}
	snapshot := func(phase string) {
		s := ams.Stats()
		t.AddRow(phase, s.Policies, s.ModelVersions, s.Decisions, s.Violations, s.Adaptations)
	}
	if _, _, err := ams.Regenerate(); err != nil {
		return nil, err
	}
	snapshot("after initial PReP generation")

	// The permissive initial model generated both accept and reject for
	// each task; drop the rejects so permits flow and violations occur.
	for _, p := range ams.Repository().List() {
		if p.Tokens[0] == "reject" {
			ams.Repository().Delete(p.ID)
		}
	}
	rng := workload.NewRNG(opts.seed())
	for i := 0; i < 12; i++ {
		task := cav.Tasks[rng.Intn(len(cav.Tasks))]
		ams.Enforce(xacml.NewRequest().Set(xacml.Action, "id", xacml.S(task)))
	}
	snapshot("after serving requests")

	fb := ams.FeedbackFromViolations(func(string) *asp.Program { return ctx })
	adapted := false
	for _, f := range fb {
		a, err := ams.Observe(f)
		if err != nil {
			return nil, err
		}
		adapted = adapted || a
	}
	snapshot("after PAdaP adaptation")
	if !adapted {
		t.Note("WARNING: no adaptation was triggered")
	}
	// Post-adaptation: risky accepts are gone from the repository.
	for _, p := range ams.Repository().List() {
		if p.Tokens[0] == "accept" && cav.RiskyTasks[p.Tokens[1]] {
			t.Note("WARNING: %s survived adaptation", p.Text())
		}
	}
	t.Note("risky accept-policies removed from repository after adaptation: %v", adapted)
	return t, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var sb [20]byte
	i := len(sb)
	for n > 0 {
		i--
		sb[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		sb[i] = '-'
	}
	return string(sb[i:])
}

func boolStr(cond bool, yes, no string) string {
	if cond {
		return yes
	}
	return no
}

func joinRules(rules []string) string {
	return strings.Join(rules, " | ")
}
