package asp

import (
	"fmt"
	"strings"
)

// Range is an integer interval term `lo..hi` (clingo-style). A rule
// containing range terms stands for the family of rules obtained by
// substituting every integer of each interval; expansion happens before
// grounding and requires ground integer bounds.
type Range struct {
	Lo, Hi Term
}

var _ Term = Range{}

func (r Range) String() string { return fmt.Sprintf("%s..%s", r.Lo, r.Hi) }

// Ground reports whether the bounds are ground.
func (r Range) Ground() bool { return r.Lo.Ground() && r.Hi.Ground() }

func (r Range) collectVars(vars map[string]struct{}) {
	r.Lo.collectVars(vars)
	r.Hi.collectVars(vars)
}

func (r Range) substitute(b Binding) Term {
	return Range{Lo: r.Lo.substitute(b), Hi: r.Hi.substitute(b)}
}

func (r Range) key(sb *strings.Builder) {
	sb.WriteByte('r')
	r.Lo.key(sb)
	sb.WriteString("..")
	r.Hi.key(sb)
}

// expandRanges rewrites every rule containing range terms into its
// instances. Rules without ranges are passed through unchanged.
func expandRanges(p *Program) (*Program, error) {
	needsWork := false
	for _, r := range p.Rules {
		if ruleHasRange(r) {
			needsWork = true
			break
		}
	}
	if !needsWork {
		return p, nil
	}
	out := &Program{Rules: make([]Rule, 0, len(p.Rules))}
	for _, r := range p.Rules {
		if !ruleHasRange(r) {
			out.Rules = append(out.Rules, r)
			continue
		}
		expanded, err := expandRule(r)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, expanded...)
	}
	return out, nil
}

func ruleHasRange(r Rule) bool {
	hasRange := false
	visitRuleTerms(r, func(t Term) {
		if _, ok := t.(Range); ok {
			hasRange = true
		}
	})
	return hasRange
}

// visitRuleTerms walks every term of the rule (not descending into
// compound arguments beyond what replaceFirstRange handles; the visit is
// recursive for detection).
func visitRuleTerms(r Rule, visit func(Term)) {
	var walk func(t Term)
	walk = func(t Term) {
		visit(t)
		switch tt := t.(type) {
		case Compound:
			for _, a := range tt.Args {
				walk(a)
			}
		case Arith:
			walk(tt.L)
			walk(tt.R)
		case Range:
			walk(tt.Lo)
			walk(tt.Hi)
		}
	}
	if r.Head != nil {
		for _, t := range r.Head.Args {
			walk(t)
		}
	}
	for _, a := range r.Choice {
		for _, t := range a.Args {
			walk(t)
		}
	}
	for _, l := range r.Body {
		if l.IsCmp {
			walk(l.Lhs)
			walk(l.Rhs)
			continue
		}
		for _, t := range l.Atom.Args {
			walk(t)
		}
	}
}

// expandRule replaces the first range term with each of its values and
// recurses until no ranges remain (cartesian expansion).
func expandRule(r Rule) ([]Rule, error) {
	lo, hi, found, err := firstRangeBounds(r)
	if err != nil {
		return nil, err
	}
	if !found {
		return []Rule{r}, nil
	}
	if hi < lo {
		return nil, nil // empty interval: the rule family is empty
	}
	if hi-lo > 100_000 {
		return nil, fmt.Errorf("asp: range %d..%d too large to expand", lo, hi)
	}
	var out []Rule
	for v := lo; v <= hi; v++ {
		inst := substituteFirstRange(r, Integer{Value: v})
		rest, err := expandRule(inst)
		if err != nil {
			return nil, err
		}
		out = append(out, rest...)
	}
	return out, nil
}

// firstRangeBounds locates the first range term and evaluates its
// bounds.
func firstRangeBounds(r Rule) (lo, hi int, found bool, err error) {
	visitRuleTerms(r, func(t Term) {
		if found || err != nil {
			return
		}
		rng, ok := t.(Range)
		if !ok {
			return
		}
		loT, e := EvalArith(rng.Lo)
		if e != nil {
			err = e
			return
		}
		hiT, e := EvalArith(rng.Hi)
		if e != nil {
			err = e
			return
		}
		loI, okLo := loT.(Integer)
		hiI, okHi := hiT.(Integer)
		if !okLo || !okHi {
			err = fmt.Errorf("asp: range bounds must be ground integers, got %s", rng)
			return
		}
		lo, hi, found = loI.Value, hiI.Value, true
	})
	return lo, hi, found, err
}

// substituteFirstRange replaces the first range term encountered (in the
// same traversal order as firstRangeBounds) with the value.
func substituteFirstRange(r Rule, value Term) Rule {
	done := false
	var rewrite func(t Term) Term
	rewrite = func(t Term) Term {
		if done {
			return t
		}
		switch tt := t.(type) {
		case Range:
			done = true
			return value
		case Compound:
			args := make([]Term, len(tt.Args))
			for i, a := range tt.Args {
				args[i] = rewrite(a)
			}
			return Compound{Functor: tt.Functor, Args: args}
		case Arith:
			return Arith{Op: tt.Op, L: rewrite(tt.L), R: rewrite(tt.R)}
		default:
			return t
		}
	}
	rewriteAtom := func(a Atom) Atom {
		args := make([]Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = rewrite(t)
		}
		return Atom{Predicate: a.Predicate, Args: args, Pos: a.Pos}
	}
	out := Rule{Pos: r.Pos}
	if r.Head != nil {
		h := rewriteAtom(*r.Head)
		out.Head = &h
	}
	if len(r.Choice) > 0 {
		out.Choice = make([]Atom, len(r.Choice))
		for i, a := range r.Choice {
			out.Choice[i] = rewriteAtom(a)
		}
	}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		if l.IsCmp {
			out.Body[i] = Literal{IsCmp: true, Op: l.Op, Lhs: rewrite(l.Lhs), Rhs: rewrite(l.Rhs), Pos: l.Pos}
			continue
		}
		out.Body[i] = Literal{Atom: rewriteAtom(l.Atom), Negated: l.Negated, Pos: l.Pos}
	}
	return out
}
