// Package asp implements a self-contained Answer Set Programming system:
// an abstract syntax for the language subset used by the AGENP paper
// (normal rules, constraints and choice rules with arithmetic and
// comparison built-ins), a parser, a dependency-ordered semi-naive
// grounder, and a stable-model solver.
//
// The package replaces the paper's dependency on the clingo system. Any
// program expressible in the paper's subset ("normal rules and
// constraints", Section II.A) is grounded and solved under the standard
// stable-model semantics.
package asp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Term is a first-order term: a constant symbol, an integer, a variable,
// a compound term, or an arithmetic expression to be evaluated during
// grounding.
type Term interface {
	fmt.Stringer

	// Ground reports whether the term contains no variables.
	Ground() bool

	// collectVars appends the names of variables occurring in the term.
	collectVars(vars map[string]struct{})

	// substitute applies a binding to the term.
	substitute(b Binding) Term

	// key returns a canonical encoding used for hashing and equality of
	// ground terms.
	key(sb *strings.Builder)
}

// Constant is a symbolic constant, written as a lowercase identifier or a
// double-quoted string.
type Constant struct {
	Name string
	// Quoted marks constants that must be rendered with double quotes
	// (e.g. terminal tokens of a grammar embedded in ASP programs).
	Quoted bool
}

// Integer is an integer constant.
type Integer struct {
	Value int
}

// Variable is a first-order variable, written with a leading uppercase
// letter or underscore.
type Variable struct {
	Name string

	// Pos is the source position of this occurrence when parsed from
	// text; zero for programmatically built variables. It is ignored by
	// String, key and all equality checks.
	Pos Pos
}

// Compound is a function term f(t1, ..., tn) with n >= 1.
type Compound struct {
	Functor string
	Args    []Term
}

// ArithOp enumerates the arithmetic operators usable in terms.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "\\"
	default:
		return "?"
	}
}

// Arith is an arithmetic expression term (L op R). It is evaluated during
// grounding; a ground program never contains Arith terms.
type Arith struct {
	Op   ArithOp
	L, R Term
}

var (
	_ Term = Constant{}
	_ Term = Integer{}
	_ Term = Variable{}
	_ Term = Compound{}
	_ Term = Arith{}
)

func (c Constant) String() string {
	if c.Quoted {
		return quoteASP(c.Name)
	}
	return c.Name
}

// quoteASP renders a quoted constant exactly as the lexer reads it: only
// '"' and '\\' are escaped, every other byte (including control
// characters) passes through raw. Using Go-style \xNN escapes here would
// break print/re-parse stability, since the ASP lexer treats a
// backslash as "take the next byte literally".
func quoteASP(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}
func (c Constant) Ground() bool                    { return true }
func (c Constant) collectVars(map[string]struct{}) {}

// substTerm is substitute without re-boxing terms the binding cannot
// change: constants and integers return the original interface value,
// variables return the stored binding (or the original), and compound
// terms fall back to substitute. Hot paths (matching, one-step
// evaluation) use this to avoid an interface allocation per probe.
func substTerm(t Term, b Binding) Term {
	switch x := t.(type) {
	case Constant, Integer:
		return t
	case Variable:
		if val, ok := b[x.Name]; ok {
			return val
		}
		return t
	}
	return t.substitute(b)
}

func (c Constant) substitute(Binding) Term { return c }
func (c Constant) key(sb *strings.Builder) { sb.WriteByte('c'); sb.WriteString(c.Name) }

func (i Integer) String() string                  { return strconv.Itoa(i.Value) }
func (i Integer) Ground() bool                    { return true }
func (i Integer) collectVars(map[string]struct{}) {}
func (i Integer) substitute(Binding) Term         { return i }
func (i Integer) key(sb *strings.Builder)         { sb.WriteByte('i'); sb.WriteString(strconv.Itoa(i.Value)) }

func (v Variable) String() string                       { return v.Name }
func (v Variable) Ground() bool                         { return false }
func (v Variable) collectVars(vars map[string]struct{}) { vars[v.Name] = struct{}{} }
func (v Variable) substitute(b Binding) Term {
	if t, ok := b[v.Name]; ok {
		return t
	}
	return v
}
func (v Variable) key(sb *strings.Builder) { sb.WriteByte('v'); sb.WriteString(v.Name) }

func (c Compound) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Functor + "(" + strings.Join(parts, ",") + ")"
}

func (c Compound) Ground() bool {
	for _, a := range c.Args {
		if !a.Ground() {
			return false
		}
	}
	return true
}

func (c Compound) collectVars(vars map[string]struct{}) {
	for _, a := range c.Args {
		a.collectVars(vars)
	}
}

func (c Compound) substitute(b Binding) Term {
	args := make([]Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.substitute(b)
	}
	return Compound{Functor: c.Functor, Args: args}
}

func (c Compound) key(sb *strings.Builder) {
	sb.WriteByte('f')
	sb.WriteString(c.Functor)
	sb.WriteByte('(')
	for _, a := range c.Args {
		a.key(sb)
		sb.WriteByte(',')
	}
	sb.WriteByte(')')
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

func (a Arith) Ground() bool { return a.L.Ground() && a.R.Ground() }

func (a Arith) collectVars(vars map[string]struct{}) {
	a.L.collectVars(vars)
	a.R.collectVars(vars)
}

func (a Arith) substitute(b Binding) Term {
	return Arith{Op: a.Op, L: a.L.substitute(b), R: a.R.substitute(b)}
}

func (a Arith) key(sb *strings.Builder) {
	sb.WriteByte('a')
	sb.WriteString(a.Op.String())
	a.L.key(sb)
	a.R.key(sb)
}

// Binding maps variable names to terms.
type Binding map[string]Term

// clone returns a copy of the binding.
func (b Binding) clone() Binding {
	nb := make(Binding, len(b))
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// EvalArith evaluates a ground term to an integer or leaves it unchanged.
// It returns an error for arithmetic over non-integers or division by
// zero.
func EvalArith(t Term) (Term, error) {
	a, ok := t.(Arith)
	if !ok {
		if c, ok := t.(Compound); ok {
			args := make([]Term, len(c.Args))
			for i, x := range c.Args {
				ev, err := EvalArith(x)
				if err != nil {
					return nil, err
				}
				args[i] = ev
			}
			return Compound{Functor: c.Functor, Args: args}, nil
		}
		return t, nil
	}
	lt, err := EvalArith(a.L)
	if err != nil {
		return nil, err
	}
	rt, err := EvalArith(a.R)
	if err != nil {
		return nil, err
	}
	li, lok := lt.(Integer)
	ri, rok := rt.(Integer)
	if !lok || !rok {
		return nil, fmt.Errorf("arithmetic over non-integer terms %s %s %s", lt, a.Op, rt)
	}
	switch a.Op {
	case OpAdd:
		return Integer{Value: li.Value + ri.Value}, nil
	case OpSub:
		return Integer{Value: li.Value - ri.Value}, nil
	case OpMul:
		return Integer{Value: li.Value * ri.Value}, nil
	case OpDiv:
		if ri.Value == 0 {
			return nil, fmt.Errorf("division by zero in %s", a)
		}
		return Integer{Value: li.Value / ri.Value}, nil
	case OpMod:
		if ri.Value == 0 {
			return nil, fmt.Errorf("modulo by zero in %s", a)
		}
		return Integer{Value: li.Value % ri.Value}, nil
	default:
		return nil, fmt.Errorf("unknown arithmetic operator in %s", a)
	}
}

// TermKey returns a canonical string key for a term, usable as a map key.
func TermKey(t Term) string {
	var sb strings.Builder
	t.key(&sb)
	return sb.String()
}

// appendTermKey appends the canonical key of a term (the same encoding
// as Term.key / TermKey) to dst, letting hot paths build map probes in a
// reusable buffer instead of allocating a string per lookup.
func appendTermKey(dst []byte, t Term) []byte {
	switch tt := t.(type) {
	case Constant:
		dst = append(dst, 'c')
		dst = append(dst, tt.Name...)
	case Integer:
		dst = append(dst, 'i')
		dst = strconv.AppendInt(dst, int64(tt.Value), 10)
	case Variable:
		dst = append(dst, 'v')
		dst = append(dst, tt.Name...)
	case Compound:
		dst = append(dst, 'f')
		dst = append(dst, tt.Functor...)
		dst = append(dst, '(')
		for _, a := range tt.Args {
			dst = appendTermKey(dst, a)
			dst = append(dst, ',')
		}
		dst = append(dst, ')')
	case Arith:
		dst = append(dst, 'a')
		dst = append(dst, tt.Op.String()...)
		dst = appendTermKey(dst, tt.L)
		dst = appendTermKey(dst, tt.R)
	case Range:
		dst = append(dst, 'r')
		dst = appendTermKey(dst, tt.Lo)
		dst = append(dst, ".."...)
		dst = appendTermKey(dst, tt.Hi)
	default:
		dst = append(dst, TermKey(t)...)
	}
	return dst
}

// TermsEqual reports whether two terms are structurally identical.
func TermsEqual(a, b Term) bool { return termEq(a, b) }

// termEq is structural term equality without building string keys. It
// matches TermKey equality exactly (in particular, Constant.Quoted and
// Variable.Pos are ignored).
func termEq(a, b Term) bool {
	switch ta := a.(type) {
	case Constant:
		tb, ok := b.(Constant)
		return ok && ta.Name == tb.Name
	case Integer:
		tb, ok := b.(Integer)
		return ok && ta.Value == tb.Value
	case Variable:
		tb, ok := b.(Variable)
		return ok && ta.Name == tb.Name
	case Compound:
		tb, ok := b.(Compound)
		if !ok || ta.Functor != tb.Functor || len(ta.Args) != len(tb.Args) {
			return false
		}
		for i := range ta.Args {
			if !termEq(ta.Args[i], tb.Args[i]) {
				return false
			}
		}
		return true
	case Arith:
		tb, ok := b.(Arith)
		return ok && ta.Op == tb.Op && termEq(ta.L, tb.L) && termEq(ta.R, tb.R)
	default:
		return TermKey(a) == TermKey(b)
	}
}

// CompareTerms imposes a total order on ground terms: integers first (by
// value), then constants (lexicographic), then compound terms.
func CompareTerms(a, b Term) int {
	ra, rb := termRank(a), termRank(b)
	if ra != rb {
		return ra - rb
	}
	switch ta := a.(type) {
	case Integer:
		tb := b.(Integer)
		return ta.Value - tb.Value
	case Constant:
		tb := b.(Constant)
		return strings.Compare(ta.Name, tb.Name)
	case Compound:
		tb := b.(Compound)
		if c := strings.Compare(ta.Functor, tb.Functor); c != 0 {
			return c
		}
		if c := len(ta.Args) - len(tb.Args); c != 0 {
			return c
		}
		for i := range ta.Args {
			if c := CompareTerms(ta.Args[i], tb.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	default:
		return strings.Compare(TermKey(a), TermKey(b))
	}
}

func termRank(t Term) int {
	switch t.(type) {
	case Integer:
		return 0
	case Constant:
		return 1
	case Compound:
		return 2
	case Variable:
		return 3
	default:
		return 4
	}
}

// SortTerms sorts terms in place by CompareTerms.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return CompareTerms(ts[i], ts[j]) < 0 })
}
