package asp

import (
	"errors"
	"strings"
	"testing"
)

func TestPosString(t *testing.T) {
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("String() = %q, want 3:7", got)
	}
	if got := (Pos{}).String(); got != "-" {
		t.Errorf("zero Pos String() = %q, want -", got)
	}
	if (Pos{}).Valid() {
		t.Error("zero Pos is Valid")
	}
	if !(Pos{Line: 1, Col: 1}).Valid() {
		t.Error("1:1 not Valid")
	}
}

func TestParsedPositions(t *testing.T) {
	prog, err := Parse("p(a).\n\nq(X, Y) :- r(X), s(Y).")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}

	fact := prog.Rules[0]
	if fact.Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("fact rule pos = %s, want 1:1", fact.Pos)
	}
	if fact.Head.Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("fact head pos = %s, want 1:1", fact.Head.Pos)
	}

	r := prog.Rules[1]
	if r.Pos != (Pos{Line: 3, Col: 1}) {
		t.Errorf("rule pos = %s, want 3:1", r.Pos)
	}
	if r.Head.Pos != (Pos{Line: 3, Col: 1}) {
		t.Errorf("head pos = %s, want 3:1", r.Head.Pos)
	}
	// q(X, Y) :- r(X), s(Y).
	// 123456789012345678
	if r.Body[0].Pos != (Pos{Line: 3, Col: 12}) {
		t.Errorf("body[0] pos = %s, want 3:12", r.Body[0].Pos)
	}
	if r.Body[1].Pos != (Pos{Line: 3, Col: 18}) {
		t.Errorf("body[1] pos = %s, want 3:18", r.Body[1].Pos)
	}
	// Variable positions ride on the terms.
	x, ok := r.Head.Args[0].(Variable)
	if !ok {
		t.Fatalf("head arg 0 is %T", r.Head.Args[0])
	}
	if x.Pos != (Pos{Line: 3, Col: 3}) {
		t.Errorf("X pos = %s, want 3:3", x.Pos)
	}
}

func TestNegatedLiteralPosition(t *testing.T) {
	prog, err := Parse("p :- q, not r.")
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Rules[0].Body[1]
	if !l.Negated {
		t.Fatal("literal not negated")
	}
	// The literal position is the `not` keyword; the atom's is `r`.
	if l.Pos != (Pos{Line: 1, Col: 9}) {
		t.Errorf("literal pos = %s, want 1:9", l.Pos)
	}
	if l.Atom.Pos != (Pos{Line: 1, Col: 13}) {
		t.Errorf("atom pos = %s, want 1:13", l.Atom.Pos)
	}
}

func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src       string
		line, col int
	}{
		{"p(a)", 1, 5},             // missing period reported right after the last token
		{"p :- q r.", 1, 8},        // unexpected token after literal
		{"p(a).\nq :- ,.", 2, 6},   // bad body start on line 2
		{"p(a).\n  r(] ).", 2, 5},  // lexical error mid-line
		{"s(\"unterminated", 1, 3}, // unterminated string at its start
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %T is not *ParseError: %v", c.src, err, err)
			continue
		}
		if pe.Line != c.line || pe.Col != c.col {
			t.Errorf("Parse(%q) error at %d:%d, want %d:%d (%v)", c.src, pe.Line, pe.Col, c.line, c.col, err)
		}
		if !strings.Contains(err.Error(), "line") {
			t.Errorf("Parse(%q) error lacks position text: %v", c.src, err)
		}
	}
}

func TestSafetyErrorOccurrences(t *testing.T) {
	prog, err := Parse("bad(X, Y) :- q(Y), X > 0.")
	if err != nil {
		t.Fatal(err)
	}
	err = CheckSafety(prog.Rules[0])
	if err == nil {
		t.Fatal("rule reported safe")
	}
	var se *SafetyError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *SafetyError", err)
	}
	if len(se.Vars) != 1 || se.Vars[0] != "X" {
		t.Fatalf("Vars = %v, want [X]", se.Vars)
	}
	var got []Pos
	for _, o := range se.Occurrences {
		if o.Name == "X" {
			got = append(got, o.Pos)
		}
	}
	want := []Pos{{Line: 1, Col: 5}, {Line: 1, Col: 20}}
	if len(got) != len(want) {
		t.Fatalf("X occurrences = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("occurrence %d = %s, want %s", i, got[i], want[i])
		}
	}
	msg := err.Error()
	if !strings.Contains(msg, "at 1:1") || !strings.Contains(msg, "X (1:5, 1:20)") {
		t.Errorf("error message lacks positions: %s", msg)
	}
}

func TestSafetyErrorWithoutPositions(t *testing.T) {
	// Rules built programmatically have no positions; the message must
	// degrade to bare variable names.
	r := NewRule(Atom{Predicate: "p", Args: []Term{Variable{Name: "V"}}})
	err := CheckSafety(r)
	if err == nil {
		t.Fatal("rule reported safe")
	}
	msg := err.Error()
	if strings.Contains(msg, " at ") || strings.Contains(msg, "0:0") {
		t.Errorf("message leaks invalid positions: %s", msg)
	}
	if !strings.Contains(msg, "V") {
		t.Errorf("message does not name the variable: %s", msg)
	}
}

func TestPositionsSurviveRangeExpansion(t *testing.T) {
	prog, err := Parse("n(1..3).\np(X) :- n(X).")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(prog, GroundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAtoms() == 0 {
		t.Fatal("nothing grounded")
	}
}

func TestChoicePositionPropagation(t *testing.T) {
	// An unsafe choice head must report the choice rule's position.
	prog, err := Parse("ok.\n{a(X)} :- ok.")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Ground(prog, GroundingOptions{})
	if err == nil {
		t.Fatal("unsafe choice grounded")
	}
	var se *SafetyError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *SafetyError", err)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("choice safety error lost line 2 position: %v", err)
	}
}
