package asp

// Incremental clause-form maintenance: the clause form of an
// IncrementalGrounder's base program is compiled once, and each
// Extend's rules are appended under a journal that rollback undoes —
// new variables, new bodies, new clauses, grown support/head lists, and
// superseded (disabled) base support clauses all revert, so the next
// extension starts from the pristine base clauses instead of
// recompiling them.

// cpJournal records what one extension added to a CompiledProgram. It
// is a reusable buffer: reset truncates every list in place, so the
// per-coverage-check extend/rollback cycle stays allocation-free once
// the buffers have grown.
type cpJournal struct {
	baseAtoms   int32
	baseBodies  int32
	baseVars    int32
	baseArena   int32
	baseBodyLit int32

	// Extension bodies are interned here instead of the shared bodyKey
	// map (probe the map, then scan these — extensions have only a
	// handful of bodies), avoiding per-extension map and string churn.
	extKeyBuf []byte  // concatenated canonical keys
	extKeyOff []int32 // extKeyBuf offsets, len = extension bodies + 1

	addedPreds []string // posBodyPreds entries to delete

	supGrown  []int32 // base atoms whose support list grew (parallel lens)
	supLens   []int32
	headGrown []int32 // base bodies whose head list grew (parallel lens)
	headLens  []int32

	supRefAtoms []int32 // base atoms whose support clause was replaced
	supRefs     []int32 // their previous (now disabled) clause refs

	prevCyclic       []bool
	prevNCyclic      int32
	cyclicRecomputed bool
}

// reset re-arms the journal for a fresh extension of cp.
func (j *cpJournal) reset(cp *CompiledProgram) {
	j.baseAtoms = cp.nAtoms
	j.baseBodies = cp.nBodies()
	j.baseVars = cp.nVars
	j.baseArena = int32(len(cp.arena))
	j.baseBodyLit = int32(len(cp.bodyLit))
	j.extKeyBuf = j.extKeyBuf[:0]
	j.extKeyOff = append(j.extKeyOff[:0], 0)
	j.addedPreds = j.addedPreds[:0]
	j.supGrown = j.supGrown[:0]
	j.supLens = j.supLens[:0]
	j.headGrown = j.headGrown[:0]
	j.headLens = j.headLens[:0]
	j.supRefAtoms = j.supRefAtoms[:0]
	j.supRefs = j.supRefs[:0]
	j.prevCyclic = cp.cyclic
	j.prevNCyclic = cp.nCyclic
	j.cyclicRecomputed = false
}

// lookupExt scans the journal's extension bodies for key, returning the
// body id or -1.
func (j *cpJournal) lookupExt(key []byte) int32 {
	for i := 0; i+1 < len(j.extKeyOff); i++ {
		k := j.extKeyBuf[j.extKeyOff[i]:j.extKeyOff[i+1]]
		if string(k) == string(key) { // compiles to a bytes compare, no alloc
			return j.baseBodies + int32(i)
		}
	}
	return -1
}

func (j *cpJournal) addExtKey(key []byte) {
	j.extKeyBuf = append(j.extKeyBuf, key...)
	j.extKeyOff = append(j.extKeyOff, int32(len(j.extKeyBuf)))
}

// noteSupportGrowth journals the pre-extension lengths of a base atom's
// support list and a base body's head list before they grow.
func (j *cpJournal) noteSupportGrowth(cp *CompiledProgram, head, b int32) {
	if head < j.baseAtoms && !containsInt32(j.supGrown, head) {
		j.supGrown = append(j.supGrown, head)
		j.supLens = append(j.supLens, int32(len(cp.supports[head])))
	}
	if b < j.baseBodies && !containsInt32(j.headGrown, b) {
		j.headGrown = append(j.headGrown, b)
		j.headLens = append(j.headLens, int32(len(cp.heads[b])))
	}
}

// replaceSupport disables an atom's current support clause and emits a
// fresh one covering its grown body list.
func (cp *CompiledProgram) replaceSupport(a int32, j *cpJournal) {
	old := cp.supRef[a]
	cp.arena[old+1] |= clauseDisabled
	j.supRefAtoms = append(j.supRefAtoms, a)
	j.supRefs = append(j.supRefs, old)
	cp.supRef[a] = cp.emitSupport(a)
}

// extend compiles extRules (the rules of gp beyond the shared base
// prefix) into the clause form. gp's atom table must be a superset of
// the base's — the incremental grounder's append-only interner
// guarantees it. The returned journal undoes the extension.
func (cp *CompiledProgram) extend(gp *GroundProgram, extRules []GroundRule, j *cpJournal) *cpJournal {
	if j == nil {
		j = &cpJournal{}
	}
	j.reset(cp)
	nA := int32(len(gp.Atoms))
	for a := cp.nAtoms; a < nA; a++ {
		v := cp.nVars
		cp.nVars++
		cp.atomVar = append(cp.atomVar, v)
		cp.varAtom = append(cp.varAtom, a)
		cp.supports = append(cp.supports, nil)
		cp.supRef = append(cp.supRef, -1)
	}
	cp.nAtoms = nA
	cp.addRules(extRules, gp, j)
	// Base atoms that gained bodies need their support clause replaced;
	// extension atoms get theirs emitted for the first time.
	for _, a := range j.supGrown {
		cp.replaceSupport(a, j)
	}
	cp.finishAtoms(j.baseAtoms, nA)

	// A new positive cycle needs an edge into an extension head: some
	// body, somewhere, must mention an extension head predicate
	// positively. posBodyPreds already includes the extension bodies
	// (addRules ran), so the predicate probe is complete.
	needSCC := false
	for ri := range extRules {
		h := extRules[ri].Head
		if h < 0 {
			continue
		}
		if _, ok := cp.posBodyPreds[gp.Atoms[h].Predicate]; ok {
			needSCC = true
			break
		}
	}
	if needSCC {
		j.cyclicRecomputed = true
		cp.computeCyclic()
	} else {
		// No new cycles possible: keep the base marks and pad the new
		// atoms as acyclic (rollback restores the old slice header).
		cyc := cp.cyclic
		for int32(len(cyc)) < nA {
			cyc = append(cyc, false)
		}
		cp.cyclic = cyc
	}
	return j
}

// rollback reverts an extension, restoring the base clause form.
func (cp *CompiledProgram) rollback(j *cpJournal) {
	cp.arena = cp.arena[:j.baseArena]
	for i, a := range j.supRefAtoms {
		ref := j.supRefs[i]
		cp.arena[ref+1] &^= clauseDisabled
		cp.supRef[a] = ref
	}
	for i, a := range j.supGrown {
		cp.supports[a] = cp.supports[a][:j.supLens[i]]
	}
	for i, b := range j.headGrown {
		cp.heads[b] = cp.heads[b][:j.headLens[i]]
	}
	for _, p := range j.addedPreds {
		delete(cp.posBodyPreds, p)
	}
	cp.bodyLit = cp.bodyLit[:j.baseBodyLit]
	cp.bodyOff = cp.bodyOff[:j.baseBodies+1]
	cp.bodyVarID = cp.bodyVarID[:j.baseBodies]
	cp.heads = cp.heads[:j.baseBodies]
	cp.supports = cp.supports[:j.baseAtoms]
	cp.supRef = cp.supRef[:j.baseAtoms]
	cp.atomVar = cp.atomVar[:j.baseAtoms]
	cp.varAtom = cp.varAtom[:j.baseVars]
	cp.nAtoms = j.baseAtoms
	cp.nVars = j.baseVars
	cp.cyclic = j.prevCyclic
	cp.nCyclic = j.prevNCyclic
}
