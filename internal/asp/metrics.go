package asp

import "agenp/internal/obs"

// Telemetry for the grounding/solving core. Metrics are package
// variables recorded with single atomic adds; per-operation totals are
// accumulated in plain struct fields on the grounder/solver and flushed
// once per Ground/Solve/Extend call, so inner loops (join steps, unit
// propagations) never touch an atomic.
var (
	statGroundCalls     = obs.C("asp.ground.calls")
	statGroundDur       = obs.H("asp.ground.duration")
	statAtomsInterned   = obs.C("asp.ground.atoms_interned")
	statRulesInstances  = obs.C("asp.ground.rules_instantiated")
	statGroundRulesKept = obs.C("asp.ground.rules_finalized")
	statPlansCompiled   = obs.C("asp.ground.plans_compiled")
	statPlanCacheHits   = obs.C("asp.ground.plan_cache_hits")
	statCandScanned     = obs.C("asp.ground.candidates_scanned")

	statSolveCalls     = obs.C("asp.solve.calls")
	statSolveDur       = obs.H("asp.solve.duration")
	statDecisions      = obs.C("asp.solve.decisions")
	statConflicts      = obs.C("asp.solve.conflicts")
	statPropagations   = obs.C("asp.solve.propagations")
	statBackjumps      = obs.C("asp.solve.backjumps")
	statLearnedNogoods = obs.C("asp.solve.learned_nogoods")
	statModelsFound    = obs.C("asp.solve.models")

	statIncrExtends    = obs.C("asp.incremental.extends")
	statIncrRollbacks  = obs.C("asp.incremental.rollbacks")
	statIncrAtomsAdded = obs.C("asp.incremental.atoms_added")
	statIncrExtendDur  = obs.H("asp.incremental.extend.duration")
)

// flushPlanStats publishes the grounder's per-call plan/scan
// accumulators and zeroes them, so long-lived incremental grounders
// report per-Extend increments rather than lifetime totals.
func (g *grounder) flushPlanStats() {
	if g.planCompiles > 0 {
		statPlansCompiled.Add(g.planCompiles)
		g.planCompiles = 0
	}
	if g.planHits > 0 {
		statPlanCacheHits.Add(g.planHits)
		g.planHits = 0
	}
	if g.scanned > 0 {
		statCandScanned.Add(g.scanned)
		g.scanned = 0
	}
}
