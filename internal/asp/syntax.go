package asp

import (
	"fmt"
	"strings"
)

// Atom is a predicate applied to terms. A propositional atom has no
// arguments.
type Atom struct {
	Predicate string
	Args      []Term

	// Pos is the source position of the predicate name when the atom was
	// parsed from text; zero for programmatically built atoms. It is
	// ignored by String, Key and all equality checks.
	Pos Pos
}

// NewAtom builds an atom from a predicate name and terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Predicate: pred, Args: args}
}

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Predicate
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Predicate + "(" + strings.Join(parts, ",") + ")"
}

// Ground reports whether all argument terms are ground.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if !t.Ground() {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding of the atom for hashing/equality.
func (a Atom) Key() string {
	var sb strings.Builder
	sb.WriteString(a.Predicate)
	sb.WriteByte('/')
	for _, t := range a.Args {
		t.key(&sb)
		sb.WriteByte(';')
	}
	return sb.String()
}

// Substitute applies a binding to all argument terms.
func (a Atom) Substitute(b Binding) Atom {
	if len(b) == 0 || len(a.Args) == 0 {
		return a
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.substitute(b)
	}
	return Atom{Predicate: a.Predicate, Args: args, Pos: a.Pos}
}

// Variables returns the set of variable names occurring in the atom.
func (a Atom) Variables() map[string]struct{} {
	vars := make(map[string]struct{})
	for _, t := range a.Args {
		t.collectVars(vars)
	}
	return vars
}

// CmpOp enumerates comparison operators for built-in literals.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota + 1
	CmpNeq
	CmpLt
	CmpLeq
	CmpGt
	CmpGeq
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLeq:
		return "<="
	case CmpGt:
		return ">"
	case CmpGeq:
		return ">="
	default:
		return "?"
	}
}

// Literal is a body element: either an atom literal (possibly under
// negation as failure) or a comparison between two terms.
type Literal struct {
	// Comparison literal when IsCmp is true: Lhs Op Rhs.
	IsCmp bool
	Op    CmpOp
	Lhs   Term
	Rhs   Term

	// Atom literal otherwise.
	Atom    Atom
	Negated bool // negation as failure ("not")

	// Pos is the source position of the literal's first token when parsed
	// from text; zero otherwise. Ignored by String and equality.
	Pos Pos
}

// PosLit builds a positive atom literal.
func PosLit(a Atom) Literal { return Literal{Atom: a} }

// Neg builds a negation-as-failure literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Cmp builds a comparison literal.
func Cmp(l Term, op CmpOp, r Term) Literal {
	return Literal{IsCmp: true, Op: op, Lhs: l, Rhs: r}
}

func (l Literal) String() string {
	if l.IsCmp {
		return fmt.Sprintf("%s %s %s", l.Lhs, l.Op, l.Rhs)
	}
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Substitute applies a binding to the literal.
func (l Literal) Substitute(b Binding) Literal {
	if l.IsCmp {
		return Literal{IsCmp: true, Op: l.Op, Lhs: l.Lhs.substitute(b), Rhs: l.Rhs.substitute(b), Pos: l.Pos}
	}
	return Literal{Atom: l.Atom.Substitute(b), Negated: l.Negated, Pos: l.Pos}
}

// Variables returns the variable names occurring in the literal.
func (l Literal) Variables() map[string]struct{} {
	vars := make(map[string]struct{})
	if l.IsCmp {
		l.Lhs.collectVars(vars)
		l.Rhs.collectVars(vars)
		return vars
	}
	for _, t := range l.Atom.Args {
		t.collectVars(vars)
	}
	return vars
}

// EvalCmp evaluates a ground comparison literal. Arithmetic subterms are
// evaluated first. Comparisons other than = and != require both sides to
// evaluate to integers or both to constants (compared lexicographically).
func EvalCmp(l Literal) (bool, error) {
	if !l.IsCmp {
		return false, fmt.Errorf("EvalCmp on atom literal %s", l)
	}
	lt, err := EvalArith(l.Lhs)
	if err != nil {
		return false, err
	}
	rt, err := EvalArith(l.Rhs)
	if err != nil {
		return false, err
	}
	if !lt.Ground() || !rt.Ground() {
		return false, fmt.Errorf("comparison %s is not ground", l)
	}
	c := CompareTerms(lt, rt)
	switch l.Op {
	case CmpEq:
		return c == 0, nil
	case CmpNeq:
		return c != 0, nil
	case CmpLt:
		return c < 0, nil
	case CmpLeq:
		return c <= 0, nil
	case CmpGt:
		return c > 0, nil
	case CmpGeq:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("unknown comparison operator in %s", l)
	}
}

// Rule is a normal rule, a constraint, or a choice rule.
//
//   - Normal rule: Head != nil, Choice empty.
//   - Constraint:  Head == nil, Choice empty.
//   - Choice rule: Choice non-empty ({a1; ...; an} :- body). Each atom in
//     the head may independently be chosen true when the body holds.
type Rule struct {
	Head   *Atom
	Choice []Atom
	Body   []Literal

	// Pos is the source position of the rule's first token when parsed
	// from text; zero otherwise. Ignored by String, Key and equality.
	Pos Pos
}

// NewRule builds a normal rule.
func NewRule(head Atom, body ...Literal) Rule {
	h := head
	return Rule{Head: &h, Body: body}
}

// NewConstraint builds a constraint rule (headless).
func NewConstraint(body ...Literal) Rule {
	return Rule{Body: body}
}

// NewChoice builds a choice rule.
func NewChoice(atoms []Atom, body ...Literal) Rule {
	return Rule{Choice: atoms, Body: body}
}

// NewFact builds a rule with an empty body.
func NewFact(head Atom) Rule {
	h := head
	return Rule{Head: &h}
}

// IsConstraint reports whether the rule is a constraint.
func (r Rule) IsConstraint() bool { return r.Head == nil && len(r.Choice) == 0 }

// IsChoice reports whether the rule is a choice rule.
func (r Rule) IsChoice() bool { return len(r.Choice) > 0 }

// IsFact reports whether the rule is a ground fact.
func (r Rule) IsFact() bool {
	return r.Head != nil && len(r.Body) == 0 && r.Head.Ground()
}

func (r Rule) String() string {
	var head string
	switch {
	case r.IsChoice():
		parts := make([]string, len(r.Choice))
		for i, a := range r.Choice {
			parts[i] = a.String()
		}
		head = "{" + strings.Join(parts, "; ") + "}"
	case r.Head != nil:
		head = r.Head.String()
	}
	if len(r.Body) == 0 {
		return head + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	if head == "" {
		return ":- " + strings.Join(parts, ", ") + "."
	}
	return head + " :- " + strings.Join(parts, ", ") + "."
}

// Substitute applies a binding to the whole rule.
func (r Rule) Substitute(b Binding) Rule {
	out := Rule{Pos: r.Pos}
	if r.Head != nil {
		h := r.Head.Substitute(b)
		out.Head = &h
	}
	if len(r.Choice) > 0 {
		out.Choice = make([]Atom, len(r.Choice))
		for i, a := range r.Choice {
			out.Choice[i] = a.Substitute(b)
		}
	}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		out.Body[i] = l.Substitute(b)
	}
	return out
}

// Variables returns all variable names in the rule.
func (r Rule) Variables() map[string]struct{} {
	vars := make(map[string]struct{})
	if r.Head != nil {
		for _, t := range r.Head.Args {
			t.collectVars(vars)
		}
	}
	for _, a := range r.Choice {
		for _, t := range a.Args {
			t.collectVars(vars)
		}
	}
	for _, l := range r.Body {
		for v := range l.Variables() {
			vars[v] = struct{}{}
		}
	}
	return vars
}

// Key returns a canonical encoding of a rule (after normalizing nothing;
// rules differing only in variable names have different keys).
func (r Rule) Key() string {
	return r.String()
}

// Program is a list of rules.
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program {
	return &Program{Rules: rules}
}

// Add appends rules to the program.
func (p *Program) Add(rules ...Rule) {
	p.Rules = append(p.Rules, rules...)
}

// Extend appends all rules of another program.
func (p *Program) Extend(q *Program) {
	if q == nil {
		return
	}
	p.Rules = append(p.Rules, q.Rules...)
}

// Clone returns a shallow copy of the program (rules are immutable by
// convention).
func (p *Program) Clone() *Program {
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	return &Program{Rules: rules}
}

func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Predicates returns the set of predicate/arity signatures occurring in
// the program, formatted "name/arity".
func (p *Program) Predicates() map[string]struct{} {
	sigs := make(map[string]struct{})
	add := func(a Atom) { sigs[fmt.Sprintf("%s/%d", a.Predicate, len(a.Args))] = struct{}{} }
	for _, r := range p.Rules {
		if r.Head != nil {
			add(*r.Head)
		}
		for _, a := range r.Choice {
			add(a)
		}
		for _, l := range r.Body {
			if !l.IsCmp {
				add(l.Atom)
			}
		}
	}
	return sigs
}
