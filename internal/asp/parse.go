package asp

import (
	"fmt"
)

// ParseError reports a syntax or lexical error with its source position
// (1-based line and byte column).
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("parse error at line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("parse error at line %d: %s", e.Line, e.Msg)
}

// Pos returns the error position.
func (e *ParseError) Pos() Pos { return Pos{Line: e.Line, Col: e.Col} }

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int

	// annotations enables the `atom@k` suffix syntax used by answer set
	// grammars. When disabled, '@' is a syntax error.
	annotations bool

	// onAnnotation receives (atom, annotation, hasAnnotation) callbacks;
	// when nil, annotations are rejected.
	atomHook func(a Atom, ann int, hasAnn bool) Atom
}

// Parse parses an ASP program: a sequence of rules, constraints, facts,
// and choice rules, each terminated by '.'.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

// ParseRule parses a single rule (terminated by '.').
func ParseRule(src string) (Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return Rule{}, err
	}
	if len(prog.Rules) != 1 {
		return Rule{}, fmt.Errorf("expected exactly one rule, got %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

// ParseAtom parses a single atom, e.g. "p(a, X)".
func ParseAtom(src string) (Atom, error) {
	toks, err := lex(src)
	if err != nil {
		return Atom{}, err
	}
	p := &parser{toks: toks}
	a, err := p.atom()
	if err != nil {
		return Atom{}, err
	}
	if p.peek().kind != tokEOF {
		return Atom{}, p.errf("trailing input after atom")
	}
	return a, nil
}

// ParseTerm parses a single term.
func ParseTerm(src string) (Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after term")
	}
	return t, nil
}

// ParseAnnotated parses an ASP program in which atoms may carry integer
// annotations written `atom@k` (answer set grammar syntax). The hook is
// called for every atom parsed; it may rewrite the atom (e.g. mangle the
// predicate with the annotation).
func ParseAnnotated(src string, hook func(a Atom, ann int, hasAnn bool) Atom) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, annotations: true, atomHook: hook}
	return p.program()
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errf("expected %s, found %q", what, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// posOf converts a token to a source position.
func posOf(t token) Pos { return Pos{Line: t.line, Col: t.col} }

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for !p.at(tokEOF) {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// rule parses: head. | head :- body. | :- body. | {a; b} :- body.
func (p *parser) rule() (Rule, error) {
	var r Rule
	r.Pos = posOf(p.peek())
	switch {
	case p.at(tokIf): // constraint
		p.next()
		body, err := p.body()
		if err != nil {
			return r, err
		}
		r.Body = body
	case p.at(tokLBrace): // choice
		p.next()
		for {
			a, err := p.atom()
			if err != nil {
				return r, err
			}
			r.Choice = append(r.Choice, a)
			if p.at(tokSemi) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return r, err
		}
		if p.at(tokIf) {
			p.next()
			body, err := p.body()
			if err != nil {
				return r, err
			}
			r.Body = body
		}
	default: // normal rule or fact
		a, err := p.atom()
		if err != nil {
			return r, err
		}
		r.Head = &a
		if p.at(tokIf) {
			p.next()
			body, err := p.body()
			if err != nil {
				return r, err
			}
			r.Body = body
		}
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return r, err
	}
	return r, nil
}

func (p *parser) body() ([]Literal, error) {
	var lits []Literal
	for {
		l, err := p.literal()
		if err != nil {
			return nil, err
		}
		lits = append(lits, l)
		if p.at(tokComma) {
			p.next()
			continue
		}
		return lits, nil
	}
}

// literal parses `not atom`, `atom`, or a comparison `t op t`.
func (p *parser) literal() (Literal, error) {
	pos := posOf(p.peek())
	if p.at(tokNot) {
		p.next()
		a, err := p.atom()
		if err != nil {
			return Literal{}, err
		}
		l := Neg(a)
		l.Pos = pos
		return l, nil
	}
	// Could be an atom or a comparison; an atom starts with an ident,
	// while a comparison may start with any term. Parse a term first when
	// the lookahead cannot be a plain atom, otherwise parse an atom and
	// check for a following comparison operator (which means the "atom"
	// was actually a constant term).
	if p.at(tokIdent) {
		save := p.pos
		a, err := p.atom()
		if err != nil {
			return Literal{}, err
		}
		if p.at(tokCmp) || p.at(tokArith) {
			// Re-parse as a term expression.
			p.pos = save
			l, err := p.comparison()
			l.Pos = pos
			return l, err
		}
		l := PosLit(a)
		l.Pos = pos
		return l, nil
	}
	l, err := p.comparison()
	l.Pos = pos
	return l, err
}

func (p *parser) comparison() (Literal, error) {
	lhs, err := p.termExpr()
	if err != nil {
		return Literal{}, err
	}
	opTok, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return Literal{}, err
	}
	op, err := cmpOpOf(opTok.text)
	if err != nil {
		return Literal{}, p.errf("%v", err)
	}
	rhs, err := p.termExpr()
	if err != nil {
		return Literal{}, err
	}
	return Cmp(lhs, op, rhs), nil
}

func cmpOpOf(s string) (CmpOp, error) {
	switch s {
	case "=":
		return CmpEq, nil
	case "!=":
		return CmpNeq, nil
	case "<":
		return CmpLt, nil
	case "<=":
		return CmpLeq, nil
	case ">":
		return CmpGt, nil
	case ">=":
		return CmpGeq, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}

// atom parses predicate(args) with optional @k annotation.
func (p *parser) atom() (Atom, error) {
	tok, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Predicate: tok.text, Pos: posOf(tok)}
	if p.at(tokLParen) {
		p.next()
		for {
			t, err := p.termExpr()
			if err != nil {
				return Atom{}, err
			}
			a.Args = append(a.Args, t)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Atom{}, err
		}
	}
	if p.at(tokAt) {
		if !p.annotations {
			return Atom{}, p.errf("annotation '@' not allowed here")
		}
		p.next()
		it, err := p.expect(tokInt, "annotation index")
		if err != nil {
			return Atom{}, err
		}
		if p.atomHook != nil {
			a = p.atomHook(a, mustInt(it.text), true)
		}
		return a, nil
	}
	if p.annotations && p.atomHook != nil {
		a = p.atomHook(a, 0, false)
	}
	return a, nil
}

// termExpr parses a term with left-associative +,- over *,/,\ precedence
// and clingo-style `lo..hi` ranges at the lowest precedence.
func (p *parser) termExpr() (Term, error) {
	t, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.at(tokRange) {
		p.next()
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Range{Lo: t, Hi: hi}, nil
	}
	return t, nil
}

func (p *parser) addExpr() (Term, error) {
	t, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokArith) && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			t = Arith{Op: OpAdd, L: t, R: r}
		} else {
			t = Arith{Op: OpSub, L: t, R: r}
		}
	}
	return t, nil
}

func (p *parser) mulExpr() (Term, error) {
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.at(tokArith) && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "\\") {
		op := p.next().text
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		switch op {
		case "*":
			t = Arith{Op: OpMul, L: t, R: r}
		case "/":
			t = Arith{Op: OpDiv, L: t, R: r}
		default:
			t = Arith{Op: OpMod, L: t, R: r}
		}
	}
	return t, nil
}

// term parses a primary term: integer, negative integer, variable,
// constant, compound, string, or parenthesized expression.
func (p *parser) term() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		return Integer{Value: mustInt(t.text)}, nil
	case tokArith:
		if t.text == "-" {
			p.next()
			inner, err := p.term()
			if err != nil {
				return nil, err
			}
			if iv, ok := inner.(Integer); ok {
				return Integer{Value: -iv.Value}, nil
			}
			return Arith{Op: OpSub, L: Integer{Value: 0}, R: inner}, nil
		}
		return nil, p.errf("unexpected operator %q", t.text)
	case tokVariable:
		p.next()
		return Variable{Name: t.text, Pos: posOf(t)}, nil
	case tokString:
		p.next()
		return Constant{Name: t.text, Quoted: true}, nil
	case tokLParen:
		p.next()
		inner, err := p.termExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		p.next()
		if p.at(tokLParen) {
			p.next()
			var args []Term
			for {
				a, err := p.termExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at(tokComma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return Compound{Functor: t.text, Args: args}, nil
		}
		return Constant{Name: t.text}, nil
	default:
		return nil, p.errf("expected term, found %q", t.text)
	}
}
