package asp

import (
	"testing"
)

func model(t *testing.T, atoms ...string) *AnswerSet {
	t.Helper()
	parsed := make([]Atom, len(atoms))
	for i, s := range atoms {
		a, err := ParseAtom(s)
		if err != nil {
			t.Fatalf("ParseAtom(%q): %v", s, err)
		}
		parsed[i] = a
	}
	return NewAnswerSet(parsed...)
}

func evalHeads(t *testing.T, ruleSrc string, m *AnswerSet) map[string]bool {
	t.Helper()
	r, err := ParseRule(ruleSrc)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", ruleSrc, err)
	}
	heads, err := EvalRule(r, m)
	if err != nil {
		t.Fatalf("EvalRule(%q): %v", ruleSrc, err)
	}
	out := make(map[string]bool, len(heads))
	for _, h := range heads {
		out[h.String()] = true
	}
	return out
}

func TestEvalRuleBasicJoin(t *testing.T) {
	m := model(t, "edge(a,b)", "edge(b,c)")
	got := evalHeads(t, "start(X) :- edge(X, Y).", m)
	if len(got) != 2 || !got["start(a)"] || !got["start(b)"] {
		t.Errorf("heads = %v", got)
	}
}

func TestEvalRuleNegationAndComparison(t *testing.T) {
	m := model(t, "n(1)", "n(2)", "n(3)", "blocked(2)")
	got := evalHeads(t, "ok(X) :- n(X), not blocked(X), X < 3.", m)
	if len(got) != 1 || !got["ok(1)"] {
		t.Errorf("heads = %v", got)
	}
}

func TestEvalRuleArithmeticBinder(t *testing.T) {
	m := model(t, "n(2)", "n(5)")
	got := evalHeads(t, "double(Y) :- n(X), Y = X * 2.", m)
	if len(got) != 2 || !got["double(4)"] || !got["double(10)"] {
		t.Errorf("heads = %v", got)
	}
}

func TestEvalRuleFact(t *testing.T) {
	got := evalHeads(t, "p(a).", model(t))
	if len(got) != 1 || !got["p(a)"] {
		t.Errorf("heads = %v", got)
	}
}

func TestEvalRuleConstraintMarker(t *testing.T) {
	m := model(t, "p", "q")
	got := evalHeads(t, ":- p, q.", m)
	if len(got) != 1 || !got["_violated"] {
		t.Errorf("violated constraint should yield marker: %v", got)
	}
	got = evalHeads(t, ":- p, not q.", m)
	if len(got) != 0 {
		t.Errorf("satisfied constraint should yield nothing: %v", got)
	}
}

func TestEvalRuleDeduplicatesHeads(t *testing.T) {
	m := model(t, "edge(a,b)", "edge(a,c)")
	got := evalHeads(t, "out(X) :- edge(X, Y).", m)
	if len(got) != 1 || !got["out(a)"] {
		t.Errorf("heads = %v", got)
	}
}

func TestEvalRuleErrors(t *testing.T) {
	r, err := ParseRule("p(X) :- q.")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalRule(r, model(t, "q")); err == nil {
		t.Error("unsafe rule should fail")
	}
	choice, err := ParseRule("{a; b}.")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalRule(choice, model(t)); err == nil {
		t.Error("choice rule should fail")
	}
}

// TestEvalRuleMatchesGrounding: EvalRule on the model of a definite
// program agrees with deriving through the full grounder+solver.
func TestEvalRuleMatchesGrounding(t *testing.T) {
	base := mustParse(t, `
		subject(role, dba). subject(age, 20).
		resource(type, report). action(id, read).
	`)
	models, err := Solve(base, SolveOptions{})
	if err != nil || len(models) != 1 {
		t.Fatalf("base solve: %v %d", err, len(models))
	}
	ruleSrc := "decision(permit) :- subject(role, dba), subject(age, V), V >= 18."
	heads := evalHeads(t, ruleSrc, models[0])

	full := mustParse(t, base.String()+ruleSrc)
	fullModels, err := Solve(full, SolveOptions{})
	if err != nil || len(fullModels) != 1 {
		t.Fatalf("full solve: %v %d", err, len(fullModels))
	}
	want, _ := ParseAtom("decision(permit)")
	if !fullModels[0].Contains(want) {
		t.Fatal("full program should derive the decision")
	}
	if len(heads) != 1 || !heads["decision(permit)"] {
		t.Errorf("EvalRule disagrees with solver: %v", heads)
	}
}
