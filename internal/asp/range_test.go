package asp

import (
	"strings"
	"testing"
)

func TestRangeFacts(t *testing.T) {
	models := solveSrc(t, "n(1..4).", SolveOptions{})
	if len(models) != 1 {
		t.Fatalf("models = %d", len(models))
	}
	if models[0].Len() != 4 {
		t.Errorf("expanded to %d atoms, want 4: %s", models[0].Len(), models[0])
	}
	for _, want := range []string{"n(1)", "n(4)"} {
		a, _ := ParseAtom(want)
		if !models[0].Contains(a) {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRangeMultipleCartesian(t *testing.T) {
	models := solveSrc(t, "cell(1..2, 1..3).", SolveOptions{})
	if len(models) != 1 || models[0].Len() != 6 {
		t.Fatalf("want 6 cells, got %v", models)
	}
}

func TestRangeInBodyAndChoice(t *testing.T) {
	models := solveSrc(t, "{pick(1..3)}. :- pick(X), pick(Y), X != Y.", SolveOptions{})
	// Empty set plus 3 singletons.
	if len(models) != 4 {
		t.Fatalf("models = %d, want 4", len(models))
	}
}

func TestRangeArithmeticBounds(t *testing.T) {
	models := solveSrc(t, "n(1 + 1..2 * 2).", SolveOptions{})
	if len(models) != 1 || models[0].Len() != 3 {
		t.Fatalf("want n(2..4) = 3 atoms, got %v", models)
	}
}

func TestRangeEmptyInterval(t *testing.T) {
	models := solveSrc(t, "n(5..3). p.", SolveOptions{})
	if len(models) != 1 {
		t.Fatal("program should still solve")
	}
	if models[0].Len() != 1 {
		t.Errorf("empty range should produce no atoms: %s", models[0])
	}
}

func TestRangeErrors(t *testing.T) {
	// Non-ground bounds.
	_, err := Ground(mustParse(t, "n(X..3) :- m(X). m(a)."), GroundingOptions{})
	if err == nil {
		t.Error("variable range bound should fail")
	}
	// Oversized range.
	_, err = Ground(mustParse(t, "n(1..100000000)."), GroundingOptions{})
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Errorf("oversized range: %v", err)
	}
	// Non-integer bounds.
	_, err = Ground(mustParse(t, "n(a..b)."), GroundingOptions{})
	if err == nil {
		t.Error("constant range bounds should fail")
	}
}

func TestRangeString(t *testing.T) {
	prog := mustParse(t, "n(1..4).")
	if got := prog.Rules[0].String(); got != "n(1..4)." {
		t.Errorf("String = %q", got)
	}
}

func TestRangeColoringProgram(t *testing.T) {
	// The range syntax makes coloring programs compact; check it solves
	// identically to the explicit version.
	src := `
		node(1..3).
		edge(X, X + 1) :- node(X), X < 3.
		edge(3, 1).
		col(r). col(g). col(b).
		{color(N, C)} :- node(N), col(C).
		colored(N) :- color(N, C).
		:- node(N), not colored(N).
		:- color(N, C1), color(N, C2), C1 != C2.
		:- edge(X, Y), color(X, C), color(Y, C).
	`
	models := solveSrc(t, src, SolveOptions{})
	if len(models) != 6 {
		t.Errorf("triangle colorings = %d, want 6", len(models))
	}
}
