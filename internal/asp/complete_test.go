package asp

import (
	"testing"
	"testing/quick"
)

// bruteForceAnswerSets enumerates every subset of the ground atoms and
// keeps exactly the stable models — the definition, with no search
// cleverness. Only usable for tiny programs.
func bruteForceAnswerSets(g *GroundProgram) []map[int]bool {
	n := g.NumAtoms()
	var out []map[int]bool
	for mask := 0; mask < 1<<n; mask++ {
		inSet := func(a int32) bool { return mask&(1<<a) != 0 }
		// Least model of the reduct.
		derived := make([]bool, n)
		changed := true
		for changed {
			changed = false
			for _, r := range g.Rules {
				if r.Head < 0 {
					continue
				}
				ok := true
				for _, a := range r.NegBody {
					if inSet(a) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, a := range r.PosBody {
					if !derived[a] {
						ok = false
						break
					}
				}
				if ok && !derived[r.Head] {
					derived[r.Head] = true
					changed = true
				}
			}
		}
		stable := true
		for a := int32(0); a < int32(n); a++ {
			if derived[a] != inSet(a) {
				stable = false
				break
			}
		}
		if !stable {
			continue
		}
		// Constraints.
		for _, r := range g.Rules {
			if r.Head >= 0 {
				continue
			}
			sat := true
			for _, a := range r.PosBody {
				if !inSet(a) {
					sat = false
					break
				}
			}
			for _, a := range r.NegBody {
				if inSet(a) {
					sat = false
					break
				}
			}
			if sat {
				stable = false
				break
			}
		}
		if !stable {
			continue
		}
		m := make(map[int]bool)
		for a := int32(0); a < int32(n); a++ {
			if inSet(a) {
				m[int(a)] = true
			}
		}
		out = append(out, m)
	}
	return out
}

// TestSolverSoundAndComplete compares the solver against brute-force
// enumeration on randomized small propositional programs (soundness AND
// completeness, unlike the stability check which is soundness only).
func TestSolverSoundAndComplete(t *testing.T) {
	f := func(seed uint16) bool {
		src := randomProgram(int(seed))
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		g, err := Ground(prog, GroundingOptions{})
		if err != nil {
			return false
		}
		if g.NumAtoms() > 12 {
			return true // brute force too large; skip
		}
		want := bruteForceAnswerSets(g)
		got, err := SolveGround(g, SolveOptions{})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			t.Logf("program:\n%s\nsolver found %d models, brute force %d", src, len(got), len(want))
			return false
		}
		// Match each brute-force model to a solver model.
		for _, w := range want {
			matched := false
			for _, m := range got {
				if modelMatches(g, m, w) {
					matched = true
					break
				}
			}
			if !matched {
				t.Logf("program:\n%s\nbrute-force model %v missing from solver output", src, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func modelMatches(g *GroundProgram, m *AnswerSet, want map[int]bool) bool {
	for id, a := range g.Atoms {
		if isInternalAtom(a) {
			continue
		}
		if m.Contains(a) != want[id] {
			return false
		}
	}
	return true
}

// TestSolverSoundAndCompleteWithConstraints repeats the comparison on
// programs extended with random constraints.
func TestSolverSoundAndCompleteWithConstraints(t *testing.T) {
	f := func(seed uint16) bool {
		base := randomProgram(int(seed))
		// Derive a constraint deterministically from the seed.
		atoms := []string{"a", "b", "c"}
		c1 := atoms[int(seed)%3]
		c2 := atoms[int(seed/3)%3]
		src := base + ":- " + c1 + ", not " + c2 + ".\n"
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		g, err := Ground(prog, GroundingOptions{})
		if err != nil {
			return false
		}
		if g.NumAtoms() > 12 {
			return true
		}
		want := bruteForceAnswerSets(g)
		got, err := SolveGround(g, SolveOptions{})
		if err != nil {
			return false
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSolverSeededPruningSound: seeded pruning must not lose models
// compared with naive branching (which uses the same prune but explores
// every atom) on choice-rule programs.
func TestSolverSeededPruningSound(t *testing.T) {
	srcs := []string{
		"node(a). node(b). {in(X)} :- node(X).",
		"node(a). node(b). node(c). {in(X)} :- node(X). :- in(a), in(b).",
		"{p; q; r}. :- p, q. :- q, r. s :- p, not q.",
		"col(x). col(y). n(1). n(2). {c(N, C)} :- n(N), col(C). :- c(N, C1), c(N, C2), C1 != C2.",
	}
	for _, src := range srcs {
		prog := mustParse(t, src)
		fast, err := Solve(prog, SolveOptions{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		naive, err := Solve(prog, SolveOptions{NaiveBranching: true})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(fast) != len(naive) {
			t.Errorf("%q: fast %d models, naive %d", src, len(fast), len(naive))
		}
	}
}
