package asp

// Brave and cautious consequences, the two classical entailment modes of
// answer set programming. The ILASP-style learner covers positive
// examples bravely (some answer set satisfies the partial
// interpretation); policy analysis often wants the cautious view
// ("which decisions hold no matter how the choices resolve").

// BraveConsequences returns the atoms true in at least one answer set.
// The second result reports whether the program has any answer set at
// all (no answer sets means no brave consequences, which is different
// from "entails nothing").
func BraveConsequences(p *Program, opts SolveOptions) ([]Atom, bool, error) {
	models, err := Solve(p, opts)
	if err != nil {
		return nil, false, err
	}
	if len(models) == 0 {
		return nil, false, nil
	}
	seen := make(map[string]Atom)
	for _, m := range models {
		for _, a := range m.Atoms() {
			seen[a.Key()] = a
		}
	}
	return sortedAtoms(seen), true, nil
}

// CautiousConsequences returns the atoms true in every answer set. The
// second result reports whether the program has any answer set (an
// inconsistent program cautiously entails everything; callers usually
// want to treat that case specially, so it is surfaced instead of
// returning the whole Herbrand base).
func CautiousConsequences(p *Program, opts SolveOptions) ([]Atom, bool, error) {
	models, err := Solve(p, opts)
	if err != nil {
		return nil, false, err
	}
	if len(models) == 0 {
		return nil, false, nil
	}
	counts := make(map[string]int)
	atoms := make(map[string]Atom)
	for _, m := range models {
		for _, a := range m.Atoms() {
			counts[a.Key()]++
			atoms[a.Key()] = a
		}
	}
	common := make(map[string]Atom)
	for k, n := range counts {
		if n == len(models) {
			common[k] = atoms[k]
		}
	}
	return sortedAtoms(common), true, nil
}

func sortedAtoms(m map[string]Atom) []Atom {
	out := make([]Atom, 0, len(m))
	for _, a := range m {
		out = append(out, a)
	}
	// Reuse AnswerSet's deterministic ordering.
	return NewAnswerSet(out...).Atoms()
}
