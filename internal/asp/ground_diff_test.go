package asp

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// canonicalGroundForm renders a ground program order-insensitively:
// one line per rule (atoms printed, not numbered), lines sorted.
// Planned and naive grounding agree up to atom numbering and rule
// order, so equal canonical forms mean equal ground programs.
func canonicalGroundForm(g *GroundProgram) string {
	lines := strings.Split(strings.TrimRight(g.String(), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// groundBothPlans grounds the program with compiled plans and with the
// greedy oracle and requires identical canonical output. Returns the
// planned program for further checks.
func groundBothPlans(t *testing.T, label string, p *Program, opts GroundingOptions) *GroundProgram {
	t.Helper()
	planned, errP := Ground(p, opts)
	naiveOpts := opts
	naiveOpts.NaivePlan = true
	naive, errN := Ground(p, naiveOpts)
	if (errP != nil) != (errN != nil) {
		t.Fatalf("%s: error mismatch: planned=%v naive=%v", label, errP, errN)
	}
	if errP != nil {
		return nil
	}
	cp, cn := canonicalGroundForm(planned), canonicalGroundForm(naive)
	if cp != cn {
		t.Fatalf("%s: planned and naive grounding differ\nplanned:\n%s\n\nnaive:\n%s", label, cp, cn)
	}
	return planned
}

// TestGroundDifferentialCorpus checks planned ≡ naive grounding over the
// corpus, in every grounder mode (semi-naive, naive rounds, unindexed).
func TestGroundDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.lp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/corpus")
	}
	modes := []struct {
		name string
		opts GroundingOptions
	}{
		{"seminaive", GroundingOptions{}},
		{"naive-rounds", GroundingOptions{Naive: true}},
		{"unindexed", GroundingOptions{StringKeyed: true}},
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, m := range modes {
			g := groundBothPlans(t, filepath.Base(f)+"/"+m.name, prog, m.opts)
			if g != nil && len(g.Rules) == 0 {
				t.Fatalf("%s: corpus program grounded to nothing", f)
			}
		}
	}
}

// TestIncrementalDifferential checks planned ≡ naive through the
// incremental path: base grounding, CompileExtension, repeated Extend
// with journal rollback in between, and Base after extensions.
func TestIncrementalDifferential(t *testing.T) {
	base := mustParse(t, `
		n(1..3).
		p(X) :- seed(X).
		p(Y) :- p(X), link(X,Y).
		link(1,2). link(2,3).
		q(X) :- n(X), not p(X).
		:- p(3), not ok.
	`)
	exts := []string{
		"seed(1). ok.",
		"seed(2).",
		"seed(X) :- n(X), X > 2.",
	}

	type lane struct {
		name string
		opts GroundingOptions
		ig   *IncrementalGrounder
		ce   []*CompiledRules
	}
	lanes := []*lane{
		{name: "planned", opts: GroundingOptions{}},
		{name: "naive", opts: GroundingOptions{NaivePlan: true}},
	}
	for _, ln := range lanes {
		ig, err := NewIncrementalGrounder(base, ln.opts)
		if err != nil {
			t.Fatalf("%s: %v", ln.name, err)
		}
		ln.ig = ig
		for i, src := range exts {
			ce, err := CompileExtension(mustParse(t, src).Rules, "")
			if err != nil {
				t.Fatalf("%s ext %d: %v", ln.name, i, err)
			}
			ln.ce = append(ln.ce, ce)
		}
	}

	for i, src := range exts {
		// The batch oracle: base ∪ extension ground from scratch, with
		// planned/naive equivalence checked along the way.
		whole := base.Clone()
		whole.Extend(mustParse(t, src))
		want := canonicalGroundForm(groundBothPlans(t, "batch ext", whole, GroundingOptions{}))

		for _, ln := range lanes {
			got, err := ln.ig.Extend(ln.ce[i]) // implicit rollback of the previous extension
			if err != nil {
				t.Fatalf("%s ext %d: %v", ln.name, i, err)
			}
			if c := canonicalGroundForm(got); c != want {
				t.Fatalf("%s ext %d: incremental and batch grounding differ\nincremental:\n%s\n\nbatch:\n%s",
					ln.name, i, c, want)
			}
		}
	}

	// After all extensions and rollbacks, Base must equal a fresh batch
	// grounding of the base program in both lanes.
	wantBase := canonicalGroundForm(groundBothPlans(t, "batch base", base, GroundingOptions{}))
	for _, ln := range lanes {
		if c := canonicalGroundForm(ln.ig.Base()); c != wantBase {
			t.Fatalf("%s: Base after extensions differs from batch grounding\ngot:\n%s\n\nwant:\n%s",
				ln.name, c, wantBase)
		}
	}
}

// FuzzGroundDifferential grounds every parseable program with compiled
// plans and with the greedy oracle and requires identical canonical
// output whenever both succeed. Error cases are not compared: the two
// paths visit candidates in different orders, so an arithmetic
// evaluation error (or a stuck rule behind an empty relation, which the
// planner reports at compile time) can surface on one path and be
// pruned past on the other.
func FuzzGroundDifferential(f *testing.F) {
	seeds := []string{
		"p(a). q(X) :- p(X).",
		"n(1..4). s(X,Y) :- n(X), Y = X + 1, n(Y).",
		"e(1,2). e(2,3). t(X,Z) :- e(X,Y), e(Y,Z).",
		"a(1..3). b(2..4). j(X) :- a(X), b(X), X > 1.",
		"item(a). item(b). ok(X) :- item(X), not bad(X). bad(b).",
		"{x; y} :- c. c. :- x, y.",
		"n(1..5). even(X) :- n(X), X \\ 2 = 0.",
		"p(f(a)). q(X) :- p(f(X)).",
		"a(1). b(1). :- a(X), b(Y), X != Y.",
		"n(1..3). d(D) :- n(X), n(Y), D = X - Y, D > 0.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 300 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		opts := GroundingOptions{MaxAtoms: 300}
		planned, errP := Ground(prog, opts)
		opts.NaivePlan = true
		naive, errN := Ground(prog, opts)
		if errP != nil || errN != nil {
			return
		}
		cp, cn := canonicalGroundForm(planned), canonicalGroundForm(naive)
		if cp != cn {
			t.Fatalf("planned and naive grounding differ for %q\nplanned:\n%s\n\nnaive:\n%s", src, cp, cn)
		}
	})
}
