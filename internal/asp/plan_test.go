package asp

import (
	"strings"
	"testing"
)

// plansFor grounds the program with plan tracing and returns the
// compiled plans.
func plansFor(t *testing.T, src string, opts GroundingOptions) []PlanInfo {
	t.Helper()
	p := mustParse(t, src)
	_, plans, err := GroundWithPlans(p, opts)
	if err != nil {
		t.Fatalf("GroundWithPlans: %v", err)
	}
	return plans
}

// planWithDelta returns the plan for the given rule whose delta literal
// renders as delta ("" = the full-join plan).
func planWithDelta(t *testing.T, plans []PlanInfo, rule, delta string) PlanInfo {
	t.Helper()
	for _, pi := range plans {
		if pi.Rule == rule && pi.Delta == delta {
			return pi
		}
	}
	t.Fatalf("no plan for rule %q with delta %q; have %+v", rule, delta, plans)
	return PlanInfo{}
}

// TestPlanDeltaPinning: in a semi-naive plan the delta literal is
// scheduled first — its candidates are the round's delta, typically the
// smallest relation in the join.
func TestPlanDeltaPinning(t *testing.T) {
	plans := plansFor(t, "a(1..5). b(1..5). h(X,Y) :- a(X), b(Y).", GroundingOptions{})
	rule := "h(X,Y) :- a(X), b(Y)."
	for _, delta := range []string{"a(X)", "b(Y)"} {
		pi := planWithDelta(t, plans, rule, delta)
		if len(pi.Join) == 0 || pi.Join[0] != delta {
			t.Errorf("delta %s not pinned first: join order %v", delta, pi.Join)
		}
		if !strings.HasPrefix(pi.Steps[0], "delta-scan ") {
			t.Errorf("delta %s: first step %q is not a delta scan", delta, pi.Steps[0])
		}
	}
}

// TestPlanSmallestRelationFirst: with no delta and no bound arguments,
// the smaller relation is scanned first, and the second scan probes the
// argument index with the now-bound shared variable.
func TestPlanSmallestRelationFirst(t *testing.T) {
	plans := plansFor(t, "big(1..20). small(1). :- big(X), small(X).", GroundingOptions{})
	pi := planWithDelta(t, plans, ":- big(X), small(X).", "")
	if len(pi.Join) != 2 || pi.Join[0] != "small(X)" {
		t.Errorf("smallest relation not scanned first: join order %v", pi.Join)
	}
	found := false
	for _, s := range pi.Steps {
		if s == "scan big(X) [probe arg0]" {
			found = true
		}
	}
	if !found {
		t.Errorf("bound argument of big(X) not probed: steps %v", pi.Steps)
	}
}

// TestPlanBinderHoisting: a binder equality and a dependent comparison
// are hoisted directly after the scan that makes them evaluable.
func TestPlanBinderHoisting(t *testing.T) {
	plans := plansFor(t, "n(1..5). h(Y) :- n(X), Y = X + 1, Y > 0.", GroundingOptions{})
	pi := planWithDelta(t, plans, "h(Y) :- n(X), Y = (X + 1), Y > 0.", "n(X)")
	want := []string{"delta-scan n(X)", "bind Y := (X + 1)", "test Y > 0", "emit h(Y)"}
	if strings.Join(pi.Steps, "; ") != strings.Join(want, "; ") {
		t.Errorf("binder not hoisted:\n got %v\nwant %v", pi.Steps, want)
	}
}

// TestPlanComparisonEarlyFiltering: a comparison over already-bound
// variables runs before the next scan, pruning the cross product.
func TestPlanComparisonEarlyFiltering(t *testing.T) {
	plans := plansFor(t, "a(1..4). b(1..4). h(X,Y) :- a(X), b(Y), X < 3.", GroundingOptions{})
	pi := planWithDelta(t, plans, "h(X,Y) :- a(X), b(Y), X < 3.", "a(X)")
	testIdx, scanIdx := -1, -1
	for i, s := range pi.Steps {
		switch {
		case strings.HasPrefix(s, "test "):
			testIdx = i
		case strings.HasPrefix(s, "scan b(Y)"):
			scanIdx = i
		}
	}
	if testIdx == -1 || scanIdx == -1 || testIdx > scanIdx {
		t.Errorf("comparison not hoisted before second scan: steps %v", pi.Steps)
	}
}

// TestPlanArithArgGating: a positive literal with a variable inside an
// arithmetic argument cannot be scheduled until that variable is bound,
// even when it is textually first and delta-pinned.
func TestPlanArithArgGating(t *testing.T) {
	plans := plansFor(t, "a(1..3). bump(2,x). bump(3,y). p(Y) :- bump(X + 1, Y), a(X).", GroundingOptions{})
	rule := "p(Y) :- bump(X + 1, Y), a(X)."
	for _, pi := range plans {
		if pi.Rule != rule {
			continue
		}
		if len(pi.Join) != 2 || pi.Join[0] != "a(X)" {
			t.Errorf("delta %q: arith-gated literal scheduled before its binder: join order %v",
				pi.Delta, pi.Join)
		}
	}
}

// TestStuckRuleErrorDiagnostics: a rule the grounder cannot schedule
// reports its source position, the unresolved literals, and their
// unbound variables — identically on the planned and greedy paths.
// Ground itself rejects such rules in the safety check, so this drives
// the two instantiation paths directly (the error is the backstop for
// rules that reach the grounder without a safety pass).
func TestStuckRuleErrorDiagnostics(t *testing.T) {
	p := mustParse(t, "h :- q(X + 1), X < 2.")
	pr := newPlannedRule(p.Rules[0])
	g := newGrounder(GroundingOptions{})
	defer g.release()

	_, errP := pr.compilePlan(-1, g)
	errN := g.instantiateAgainst(p.Rules[0], -1, nil)
	if errP == nil || errN == nil {
		t.Fatalf("expected stuck-rule errors, got planned=%v greedy=%v", errP, errN)
	}
	if errP.Error() != errN.Error() {
		t.Errorf("planned and greedy stuck errors differ:\nplanned: %v\ngreedy:  %v", errP, errN)
	}
	for _, want := range []string{"grounder stuck", "at 1:1", "q((X + 1)) (unbound X)", "X < 2 (unbound X)"} {
		if !strings.Contains(errP.Error(), want) {
			t.Errorf("stuck error missing %q: %v", want, errP)
		}
	}
}

// TestPlanInfoString smoke-tests the asolve -plan rendering.
func TestPlanInfoString(t *testing.T) {
	plans := plansFor(t, "a(1). h(X) :- a(X).", GroundingOptions{})
	var sb strings.Builder
	for _, pi := range plans {
		sb.WriteString(pi.String())
	}
	out := sb.String()
	for _, want := range []string{"h(X) :- a(X).", "delta-scan a(X)", "emit h(X)"} {
		if !strings.Contains(out, want) {
			t.Errorf("PlanInfo rendering missing %q:\n%s", want, out)
		}
	}
}
