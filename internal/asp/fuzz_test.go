package asp

import (
	"testing"
)

// FuzzParse checks the ASP parser never panics and that successful
// parses are print/re-parse stable.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q(X), not r(X).",
		":- a, b.",
		"{a; b} :- c.",
		"n(1..4).",
		"p(Y) :- q(X), Y = X * 2 + 1.",
		`s("quoted \" string").`,
		"p(f(g(a), 1)).",
		"% comment\np.",
		"p :- 1 < 2.",
		"p(-3).",
		"broken(",
		":-:-.",
		"..",
		"p@q.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %q -> %q: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print not stable: %q vs %q", printed, again.String())
		}
	})
}

// FuzzSolveSmall checks grounding+solving never panics on parseable
// input (errors are fine) and that every returned model verifies stable.
func FuzzSolveSmall(f *testing.F) {
	seeds := []string{
		"a :- not b. b :- not a.",
		"p :- not p.",
		"{x; y}. :- x, y.",
		"n(1..3). e(X) :- n(X), X \\ 2 = 0.",
		"p(X) :- q(X). q(a).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 200 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		g, err := Ground(prog, GroundingOptions{MaxAtoms: 200})
		if err != nil {
			return
		}
		if g.NumAtoms() > 24 {
			return
		}
		// verifyStable reconstructs the reduct from the visible model, so
		// it cannot check programs with hidden choice-complement atoms.
		for _, a := range g.Atoms {
			if isInternalAtom(a) {
				return
			}
		}
		models, err := SolveGround(g, SolveOptions{MaxModels: 8, MaxDecisions: 100_000})
		if err != nil {
			return
		}
		for _, m := range models {
			if !verifyStable(g, m) {
				t.Fatalf("unstable model %s for %q", m, src)
			}
		}
	})
}
