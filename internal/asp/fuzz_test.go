package asp

import (
	"fmt"
	"testing"
)

// FuzzParse checks the ASP parser never panics and that successful
// parses are print/re-parse stable.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q(X), not r(X).",
		":- a, b.",
		"{a; b} :- c.",
		"n(1..4).",
		"p(Y) :- q(X), Y = X * 2 + 1.",
		`s("quoted \" string").`,
		"p(f(g(a), 1)).",
		"% comment\np.",
		"p :- 1 < 2.",
		"p(-3).",
		"broken(",
		":-:-.",
		"..",
		"p@q.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %q -> %q: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print not stable: %q vs %q", printed, again.String())
		}
	})
}

// FuzzSolveSmall checks grounding+solving never panics on parseable
// input (errors are fine) and that every returned model verifies stable.
func FuzzSolveSmall(f *testing.F) {
	seeds := []string{
		"a :- not b. b :- not a.",
		"p :- not p.",
		"{x; y}. :- x, y.",
		"n(1..3). e(X) :- n(X), X \\ 2 = 0.",
		"p(X) :- q(X). q(a).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 200 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		g, err := Ground(prog, GroundingOptions{MaxAtoms: 200})
		if err != nil {
			return
		}
		if g.NumAtoms() > 24 {
			return
		}
		// verifyStable reconstructs the reduct from the visible model, so
		// it cannot check programs with hidden choice-complement atoms.
		for _, a := range g.Atoms {
			if isInternalAtom(a) {
				return
			}
		}
		models, err := SolveGround(g, SolveOptions{MaxModels: 8, MaxDecisions: 100_000})
		if err != nil {
			return
		}
		for _, m := range models {
			if !verifyStable(g, m) {
				t.Fatalf("unstable model %s for %q", m, src)
			}
		}
	})
}

// FuzzSolveDifferential runs every parseable ground program through both
// solving engines and requires identical answer-set sets: the legacy DFS
// engine is the oracle for the CDNL engine. Seeds include non-tight
// (positive-loop) programs, where the two engines take entirely
// different paths (unfounded-set check vs least-model-of-reduct).
func FuzzSolveDifferential(f *testing.F) {
	seeds := []string{
		"a :- not b. b :- not a.",
		"p :- not p.",
		"{x; y}. :- x, y.",
		"n(1..3). e(X) :- n(X), X \\ 2 = 0.",
		"p(X) :- q(X). q(a).",
		// Non-tight: positive loops, externally supported or not.
		"p :- p.",
		"a :- b. b :- a.",
		"a :- b. b :- a. a :- not c. c :- not a.",
		"x :- y. y :- x. x :- not z. z :- not x.",
		"p :- q. q :- p. r :- not r, not p.",
		"a :- b. b :- c. c :- a. b :- not d. d :- not b.",
		"{g}. p :- q. q :- p. p :- g. :- not p.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 200 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		g, err := Ground(prog, GroundingOptions{MaxAtoms: 200})
		if err != nil {
			return
		}
		if g.NumAtoms() > 24 {
			return
		}
		// No MaxModels: a truncated enumeration could legitimately pick
		// different subsets per engine. The decision budget guards
		// runaway inputs; budget aborts are skipped, not compared.
		opts := SolveOptions{MaxDecisions: 200_000}
		opts.Engine = EngineCDNL
		mc, errC := SolveGround(g, opts)
		opts.Engine = EngineDFS
		md, errD := SolveGround(g, opts)
		if errC != nil || errD != nil {
			return
		}
		sc, sd := modelSet(mc), modelSet(md)
		if fmt.Sprint(sc) != fmt.Sprint(sd) {
			t.Fatalf("engines disagree for %q:\ncdnl: %v\ndfs:  %v", src, sc, sd)
		}
		for _, m := range mc {
			if !verifyStable(g, m) && !hasInternal(g) {
				t.Fatalf("unstable cdnl model %s for %q", m, src)
			}
		}
	})
}

func hasInternal(g *GroundProgram) bool {
	for _, a := range g.Atoms {
		if isInternalAtom(a) {
			return true
		}
	}
	return false
}
