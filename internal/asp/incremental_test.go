package asp

import (
	"sort"
	"testing"
)

// incModelStrings solves a ground program for all models and returns
// their canonical textual forms, sorted.
func incModelStrings(t *testing.T, g *GroundProgram) []string {
	t.Helper()
	models, err := SolveGround(g, SolveOptions{})
	if err != nil {
		t.Fatalf("SolveGround: %v", err)
	}
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.String()
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIncrementalExtendMatchesGround(t *testing.T) {
	cases := []struct {
		name string
		base string
		ext  string
	}{
		{
			name: "fact propagation through base chain",
			base: `p(X) :- q(X). q(1). q(2). r(X) :- p(X), s(X).`,
			ext:  `s(1). s(3).`,
		},
		{
			name: "extension rule over base facts",
			base: `edge(a,b). edge(b,c). edge(c,a).`,
			ext:  `path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).`,
		},
		{
			name: "negative literal leaves domain stable",
			base: `ok :- not bad. item(1). item(2).`,
			ext:  `good(X) :- item(X), not bad.`,
		},
		{
			name: "extension derives base negative atom (refinalize)",
			base: `decision(allow) :- not decision(deny). req(1).`,
			ext:  `decision(deny) :- req(1).`,
		},
		{
			name: "inclusion constraint flips once hypothesis fires",
			base: `req(1). :- not decision(deny).`,
			ext:  `decision(deny) :- req(1).`,
		},
		{
			name: "base constraint gains instances from new atoms",
			base: `p(1). p(2). :- p(X), q(X).`,
			ext:  `q(2).`,
		},
		{
			name: "choice rules on both sides",
			base: `node(1..3). {in(X)} :- node(X).`,
			ext:  `{pick(X)} :- in(X). :- pick(1), pick(2).`,
		},
		{
			name: "arithmetic and comparisons in extension",
			base: `n(1). n(2). n(3).`,
			ext:  `big(X) :- n(X), X > 1. double(Y) :- n(X), Y = X * 2.`,
		},
		{
			name: "extension feeds recursive base rule",
			base: `reach(X) :- start(X). reach(Y) :- reach(X), edge(X,Y). edge(a,b). edge(b,c).`,
			ext:  `start(a).`,
		},
		{
			name: "empty extension",
			base: `p :- not q. q :- not p.`,
			ext:  ``,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Parse(tc.base)
			if err != nil {
				t.Fatalf("parse base: %v", err)
			}
			extProg, err := Parse(tc.ext)
			if err != nil {
				t.Fatalf("parse ext: %v", err)
			}

			// Reference: ground the union monolithically.
			union := base.Clone()
			union.Extend(extProg)
			gRef, err := Ground(union, GroundingOptions{})
			if err != nil {
				t.Fatalf("Ground(union): %v", err)
			}
			want := incModelStrings(t, gRef)

			ig, err := NewIncrementalGrounder(base, GroundingOptions{})
			if err != nil {
				t.Fatalf("NewIncrementalGrounder: %v", err)
			}
			ext, err := CompileExtension(extProg.Rules, "h0")
			if err != nil {
				t.Fatalf("CompileExtension: %v", err)
			}

			// Extend twice: the second run exercises rollback.
			for round := 0; round < 2; round++ {
				gInc, err := ig.Extend(ext)
				if err != nil {
					t.Fatalf("Extend round %d: %v", round, err)
				}
				got := incModelStrings(t, gInc)
				if !equalStrings(got, want) {
					t.Fatalf("round %d: models differ:\n got %v\nwant %v", round, got, want)
				}
			}

			// Base() must match grounding the base alone.
			gBase, err := Ground(base, GroundingOptions{})
			if err != nil {
				t.Fatalf("Ground(base): %v", err)
			}
			wantBase := incModelStrings(t, gBase)
			gotBase := incModelStrings(t, ig.Base())
			if !equalStrings(gotBase, wantBase) {
				t.Fatalf("base models differ:\n got %v\nwant %v", gotBase, wantBase)
			}
		})
	}
}

// TestIncrementalAlternatingExtensions checks that rollback isolates
// extensions from each other: interleaving two different extensions gives
// each one's monolithic result every time.
func TestIncrementalAlternatingExtensions(t *testing.T) {
	base, err := Parse(`p(X) :- q(X). q(1). q(2). :- p(X), veto(X).`)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := NewIncrementalGrounder(base, GroundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseAtoms := ig.g.in.Len()

	ext1Prog, _ := Parse(`veto(1).`)
	ext2Prog, _ := Parse(`q(3). r(X) :- p(X).`)
	ext1, err := CompileExtension(ext1Prog.Rules, "h0")
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := CompileExtension(ext2Prog.Rules, "h1")
	if err != nil {
		t.Fatal(err)
	}

	want := func(ext *Program) []string {
		union := base.Clone()
		union.Extend(ext)
		g, err := Ground(union, GroundingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return incModelStrings(t, g)
	}
	want1 := want(ext1Prog)
	want2 := want(ext2Prog)
	wantBoth := func() []string {
		union := base.Clone()
		union.Extend(ext1Prog)
		union.Extend(ext2Prog)
		g, err := Ground(union, GroundingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return incModelStrings(t, g)
	}()

	for round := 0; round < 3; round++ {
		g1, err := ig.Extend(ext1)
		if err != nil {
			t.Fatalf("Extend ext1: %v", err)
		}
		if got := incModelStrings(t, g1); !equalStrings(got, want1) {
			t.Fatalf("ext1 round %d: got %v want %v", round, got, want1)
		}
		g2, err := ig.Extend(ext2)
		if err != nil {
			t.Fatalf("Extend ext2: %v", err)
		}
		if got := incModelStrings(t, g2); !equalStrings(got, want2) {
			t.Fatalf("ext2 round %d: got %v want %v", round, got, want2)
		}
		gBoth, err := ig.Extend(ext1, ext2)
		if err != nil {
			t.Fatalf("Extend both: %v", err)
		}
		if got := incModelStrings(t, gBoth); !equalStrings(got, wantBoth) {
			t.Fatalf("both round %d: got %v want %v", round, got, wantBoth)
		}
	}

	ig.Reset()
	if got := ig.g.in.Len(); got != baseAtoms {
		t.Fatalf("after Reset interner holds %d atoms, want %d", got, baseAtoms)
	}
}

// TestIncrementalUnsafeExtension checks that unsafe extension rules fail
// at compile time, mirroring Ground's safety error.
func TestIncrementalUnsafeExtension(t *testing.T) {
	r, err := ParseRule(`p(X) :- not q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileExtension([]Rule{r}, "h0"); err == nil {
		t.Fatal("expected safety error for unsafe extension rule")
	}
}
