package asp

import "fmt"

// Pos is a 1-based source position (line and byte column) attached to
// AST nodes by the parser. The zero value means "position unknown",
// which is what programmatically constructed nodes carry.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// Valid reports whether the position is known.
func (p Pos) Valid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.Valid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}
